package delineation

import (
	"wbsn/internal/dsp"
)

// PanTompkins implements the classic Pan-Tompkins QRS detector
// (band-pass → derivative → squaring → moving-window integration →
// adaptive thresholds with search-back), the standard baseline that the
// comparative evaluation of embedded delineation methods in ref [11]
// measures candidate algorithms against. It detects R peaks only — wave
// boundaries need one of the full delineators — and is therefore used
// here as the reference QRS stage for comparison benches.
type PanTompkins struct {
	cfg Config
	bp  dsp.Chain
}

// NewPanTompkins builds the detector for the configured sampling rate.
func NewPanTompkins(cfg Config) (*PanTompkins, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// 5-15 Hz band-pass: where QRS energy concentrates.
	hp, err := dsp.Butterworth2Highpass(5, c.Fs)
	if err != nil {
		return nil, err
	}
	lp, err := dsp.Butterworth2Lowpass(15, c.Fs)
	if err != nil {
		return nil, err
	}
	return &PanTompkins{cfg: c, bp: dsp.Chain{hp, lp}}, nil
}

// DetectQRS returns the R-peak sample indices of the signal.
func (p *PanTompkins) DetectQRS(x []float64) []int {
	if len(x) < int(p.cfg.Fs) {
		return nil
	}
	fs := p.cfg.Fs
	// Stage 1: band-pass.
	f := p.bp.Apply(x)
	// Stage 2: five-point derivative.
	n := len(f)
	deriv := make([]float64, n)
	for i := 2; i < n-2; i++ {
		deriv[i] = (2*f[i+2] + f[i+1] - f[i-1] - 2*f[i-2]) / 8
	}
	// Stage 3: squaring.
	for i := range deriv {
		deriv[i] *= deriv[i]
	}
	// Stage 4: moving-window integration over ~150 ms.
	w := int(0.150 * fs)
	if w < 1 {
		w = 1
	}
	integ := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += deriv[i]
		if i >= w {
			sum -= deriv[i-w]
		}
		integ[i] = sum / float64(w)
	}
	// Stage 5: adaptive thresholding with running signal/noise estimates
	// and search-back for missed beats.
	var peaks []int
	spki, npki := 0.0, 0.0
	// Initialise from the first two seconds.
	init := int(2 * fs)
	if init > n {
		init = n
	}
	_, maxInit := dsp.MinMax(integ[:init])
	spki = 0.25 * maxInit
	npki = 0.06 * maxInit
	threshold := npki + 0.25*(spki-npki)
	refractory := int(0.2 * fs)
	lastPeak := -refractory
	var rrAvg float64 = 0.8 * fs // running RR in samples
	searchBackFrom := 0
	for i := 1; i < n-1; i++ {
		if !(integ[i] > integ[i-1] && integ[i] >= integ[i+1]) {
			continue // not a local peak of the integrated signal
		}
		if i-lastPeak < refractory {
			continue
		}
		if integ[i] >= threshold {
			// Refine: local max of the band-passed signal near the
			// integrator peak (the integrator lags by ~w/2).
			r := refineRPeak(x, i-w/2, int(0.05*fs), n)
			peaks = append(peaks, r)
			if len(peaks) > 1 {
				rr := float64(r - peaks[len(peaks)-2])
				rrAvg = 0.875*rrAvg + 0.125*rr
			}
			lastPeak = i
			spki = 0.125*integ[i] + 0.875*spki
			searchBackFrom = i
		} else {
			npki = 0.125*integ[i] + 0.875*npki
		}
		threshold = npki + 0.25*(spki-npki)
		// Search-back: no beat for 1.66×RR — rescan at half threshold.
		if float64(i-searchBackFrom) > 1.66*rrAvg && searchBackFrom > 0 {
			best, bestV := -1, threshold/2
			for j := searchBackFrom + refractory; j < i; j++ {
				if integ[j] > bestV && j-lastPeak >= refractory {
					best, bestV = j, integ[j]
				}
			}
			if best > 0 {
				r := refineRPeak(x, best-w/2, int(0.05*fs), n)
				peaks = append(peaks, r)
				lastPeak = best
				spki = 0.25*integ[best] + 0.75*spki
				threshold = npki + 0.25*(spki-npki)
			}
			searchBackFrom = i
		}
	}
	// Peaks may be slightly out of order after refinement; enforce order
	// and uniqueness.
	out := peaks[:0]
	prev := -refractory
	for _, r := range peaks {
		if r-prev >= refractory {
			out = append(out, r)
			prev = r
		}
	}
	return out
}

// refineRPeak finds the local |max| of the raw signal in ±win around c.
func refineRPeak(x []float64, c, win, n int) int {
	lo, hi := c-win, c+win+1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return c
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

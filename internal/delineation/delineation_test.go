package delineation

import (
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/morpho"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewWaveletDelineator(Config{}); err != ErrConfig {
		t.Error("missing Fs should fail (wavelet)")
	}
	if _, err := NewMorphDelineator(Config{}); err != ErrConfig {
		t.Error("missing Fs should fail (morph)")
	}
	if _, err := NewWaveletDelineator(Config{Fs: 256}); err != nil {
		t.Error("valid config should succeed")
	}
}

func TestShortSignalGivesNoBeats(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	beats, err := wd.Delineate(make([]float64, 10))
	if err != nil || beats != nil {
		t.Error("short signal should return nil, nil")
	}
	md, _ := NewMorphDelineator(Config{Fs: 256})
	beats, err = md.Delineate(make([]float64, 10))
	if err != nil || beats != nil {
		t.Error("short signal should return nil, nil (morph)")
	}
}

func TestFlatSignalGivesNoBeats(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	beats, err := wd.Delineate(make([]float64, 5120))
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) != 0 {
		t.Errorf("flat signal produced %d beats", len(beats))
	}
}

// delineatorCase runs one delineator over clean NSR records and checks
// the paper's >90% Se/PPV claim with margin.
func checkAccuracy(t *testing.T, name string, delineate func([]float64) ([]BeatFiducials, error)) {
	t.Helper()
	var total Report
	for seed := int64(0); seed < 3; seed++ {
		rec := ecg.Generate(ecg.Config{Seed: seed, Duration: 40})
		combined := dsp.CombineRMS(rec.Clean)
		beats, err := delineate(combined)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total = Merge(total, Evaluate(rec, beats, DefaultTolerances()))
	}
	if !total.AllAbove(0.90) {
		t.Errorf("%s below 90%% target:\n%s", name, total.String())
	}
	if total.R.Se() < 0.99 {
		t.Errorf("%s R-peak sensitivity %.3f, want >= 0.99", name, total.R.Se())
	}
}

func TestWaveletDelineatorCleanAccuracy(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	checkAccuracy(t, "wavelet", wd.Delineate)
}

func TestMorphDelineatorCleanAccuracy(t *testing.T) {
	md, _ := NewMorphDelineator(Config{Fs: 256})
	checkAccuracy(t, "morph", md.Delineate)
}

func TestWaveletDelineatorNoisyAccuracy(t *testing.T) {
	// The paper's Section V claim (>90% with noise handled by the
	// morphological conditioning filter).
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	var total Report
	for seed := int64(0); seed < 3; seed++ {
		rec := ecg.Generate(ecg.Config{Seed: seed, Duration: 40, Noise: ecg.AmbulatoryNoise()})
		filtered, err := morpho.FilterLeads(rec.Leads, morpho.FilterConfig{Fs: 256})
		if err != nil {
			t.Fatal(err)
		}
		combined := dsp.CombineRMS(filtered)
		beats, err := wd.Delineate(combined)
		if err != nil {
			t.Fatal(err)
		}
		total = Merge(total, Evaluate(rec, beats, DefaultTolerances()))
	}
	if !total.AllAbove(0.90) {
		t.Errorf("noisy delineation below 90%%:\n%s", total.String())
	}
}

func TestDelineatorSuppressesPInAF(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	rec := ecg.Generate(ecg.Config{Seed: 9, Duration: 60, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	combined := dsp.CombineRMS(rec.Clean)
	beats, err := wd.Delineate(combined)
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 {
		t.Fatal("no beats detected in AF record")
	}
	pFound := 0
	for _, b := range beats {
		if b.P.Peak >= 0 {
			pFound++
		}
	}
	frac := float64(pFound) / float64(len(beats))
	if frac > 0.5 {
		t.Errorf("P 'detected' in %.0f%% of AF beats; fibrillation should suppress most", 100*frac)
	}
	// NSR baseline: nearly all beats have P.
	nsr := ecg.Generate(ecg.Config{Seed: 9, Duration: 60})
	nb, _ := wd.Delineate(dsp.CombineRMS(nsr.Clean))
	pN := 0
	for _, b := range nb {
		if b.P.Peak >= 0 {
			pN++
		}
	}
	if float64(pN)/float64(len(nb)) < 0.9 {
		t.Errorf("NSR P detection rate %.2f too low", float64(pN)/float64(len(nb)))
	}
}

func TestDelineatorHandlesEctopy(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	rec := ecg.Generate(ecg.Config{Seed: 4, Duration: 120, Rhythm: ecg.RhythmConfig{PVCRate: 0.08}})
	beats, err := wd.Delineate(dsp.CombineRMS(rec.Clean))
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(rec, beats, DefaultTolerances())
	if rep.R.Se() < 0.95 {
		t.Errorf("R sensitivity with PVCs = %.3f", rep.R.Se())
	}
	if rep.R.PPV() < 0.95 {
		t.Errorf("R PPV with PVCs = %.3f", rep.R.PPV())
	}
}

func TestRMSCombinationImprovesNoisyDelineation(t *testing.T) {
	// Ref [11]: combining leads reduces noise before delineation.
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	noise := ecg.NoiseConfig{EMG: 0.12}
	var seSingle, seComb float64
	n := 0
	for seed := int64(20); seed < 24; seed++ {
		rec := ecg.Generate(ecg.Config{Seed: seed, Duration: 40, Noise: noise})
		bs, err := wd.Delineate(rec.Leads[2]) // weakest Einthoven lead
		if err != nil {
			t.Fatal(err)
		}
		bc, err := wd.Delineate(dsp.CombineRMS(rec.Leads))
		if err != nil {
			t.Fatal(err)
		}
		rs := Evaluate(rec, bs, DefaultTolerances())
		rc := Evaluate(rec, bc, DefaultTolerances())
		seSingle += rs.R.Se() + rs.R.PPV()
		seComb += rc.R.Se() + rc.R.PPV()
		n++
	}
	if seComb < seSingle {
		t.Errorf("RMS combination did not help: combined %.3f vs single %.3f",
			seComb/float64(n), seSingle/float64(n))
	}
}

func TestEvaluateCounts(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 2, Duration: 20})
	// Perfect detections straight from ground truth.
	var beats []BeatFiducials
	for _, b := range rec.Beats {
		beats = append(beats, BeatFiducials{
			R:   b.Fid.RPeak,
			QRS: Wave{On: b.Fid.QRSOn, Peak: b.Fid.RPeak, Off: b.Fid.QRSOff},
			P:   Wave{On: b.Fid.POn, Peak: b.Fid.PPeak, Off: b.Fid.POff},
			T:   Wave{On: b.Fid.TOn, Peak: b.Fid.TPeak, Off: b.Fid.TOff},
		})
	}
	rep := Evaluate(rec, beats, DefaultTolerances())
	if rep.R.Se() != 1 || rep.R.PPV() != 1 || rep.R.MeanErrMs() != 0 {
		t.Error("perfect detections should score Se=PPV=1, err=0")
	}
	if !rep.AllAbove(0.999) {
		t.Error("perfect detections fail AllAbove")
	}
	// Remove half the detections: Se drops, PPV stays 1.
	rep2 := Evaluate(rec, beats[:len(beats)/2], DefaultTolerances())
	if rep2.R.Se() >= 0.75 {
		t.Errorf("halved detections Se = %v", rep2.R.Se())
	}
	if rep2.R.PPV() != 1 {
		t.Errorf("halved detections PPV = %v", rep2.R.PPV())
	}
	// Shift detections beyond tolerance: all FP+FN.
	shifted := make([]BeatFiducials, len(beats))
	copy(shifted, beats)
	for i := range shifted {
		shifted[i].R += 100
	}
	rep3 := Evaluate(rec, shifted, DefaultTolerances())
	if rep3.R.TP != 0 {
		t.Errorf("shifted detections still matched: TP=%d", rep3.R.TP)
	}
}

func TestMergeAddsCounters(t *testing.T) {
	a := Report{R: PointScore{TP: 3, FP: 1, FN: 2, ErrSumMs: 9}}
	b := Report{R: PointScore{TP: 2, FP: 0, FN: 1, ErrSumMs: 4}}
	m := Merge(a, b)
	if m.R.TP != 5 || m.R.FP != 1 || m.R.FN != 3 || m.R.ErrSumMs != 13 {
		t.Errorf("Merge result %+v", m.R)
	}
}

func TestPointScoreEdgeCases(t *testing.T) {
	var s PointScore
	if !isNaN(s.Se()) || !isNaN(s.PPV()) || !isNaN(s.MeanErrMs()) {
		t.Error("empty score should be NaN everywhere")
	}
	s = PointScore{TP: 8, FN: 2, FP: 2, ErrSumMs: 40}
	if s.Se() != 0.8 || s.PPV() != 0.8 || s.MeanErrMs() != 5 {
		t.Errorf("score math wrong: %v %v %v", s.Se(), s.PPV(), s.MeanErrMs())
	}
}

func isNaN(f float64) bool { return f != f }

func TestMeasureIntervals(t *testing.T) {
	fs := 256.0
	rec := ecg.Generate(ecg.Config{Seed: 15, Duration: 40})
	wd, _ := NewWaveletDelineator(Config{Fs: fs})
	beats, err := wd.Delineate(dsp.CombineRMS(rec.Clean))
	if err != nil {
		t.Fatal(err)
	}
	ivs := MeasureIntervals(beats, fs)
	if len(ivs) != len(beats) {
		t.Fatalf("interval count %d vs %d beats", len(ivs), len(beats))
	}
	s := Summarize(ivs)
	// The generator's textbook morphology: PR ≈ 110-190 ms, QRS ≈
	// 60-140 ms, QT ≈ 300-480 ms, QTc in the normal range.
	if s.MeanPR < 0.10 || s.MeanPR > 0.20 {
		t.Errorf("mean PR = %.3f s", s.MeanPR)
	}
	if s.MeanQRS < 0.05 || s.MeanQRS > 0.15 {
		t.Errorf("mean QRS = %.3f s", s.MeanQRS)
	}
	// The generator places T-offset at ~430 ms after R (T centred at
	// 300 ms with σ=55 ms), so the true QT is ≈470-490 ms and QTc sits
	// just above 0.5 — measured values must agree with that construction.
	if s.MeanQT < 0.40 || s.MeanQT > 0.55 {
		t.Errorf("mean QT = %.3f s", s.MeanQT)
	}
	if s.MeanQTc < 0.42 || s.MeanQTc > 0.58 {
		t.Errorf("mean QTc = %.3f s", s.MeanQTc)
	}
	if s.MeanRR < 0.7 || s.MeanRR > 1.0 {
		t.Errorf("mean RR = %.3f s", s.MeanRR)
	}
	// First beat has no RR/QTc.
	if !isNaN(ivs[0].RR) || !isNaN(ivs[0].QTc) {
		t.Error("first beat should have NaN RR and QTc")
	}
}

func TestIntervalsWithMissingWaves(t *testing.T) {
	beats := []BeatFiducials{
		{R: 100, QRS: Wave{On: 90, Peak: 100, Off: 112}, P: Wave{On: -1, Peak: -1, Off: -1}, T: Wave{On: -1, Peak: -1, Off: -1}},
		{R: 300, QRS: Wave{On: 290, Peak: 300, Off: 312}, P: Wave{On: 260, Peak: 266, Off: 272}, T: Wave{On: 360, Peak: 380, Off: 400}},
	}
	ivs := MeasureIntervals(beats, 256)
	if !isNaN(ivs[0].PR) || !isNaN(ivs[0].QT) {
		t.Error("missing waves should give NaN intervals")
	}
	if isNaN(ivs[1].PR) || isNaN(ivs[1].QT) || isNaN(ivs[1].QTc) {
		t.Error("complete beat should have all intervals")
	}
	s := Summarize(ivs)
	if s.Beats != 2 {
		t.Error("summary beat count wrong")
	}
	if isNaN(s.MeanPR) {
		t.Error("summary should average the defined intervals")
	}
	if got := Summarize(nil); !isNaN(got.MeanPR) || got.Beats != 0 {
		t.Error("empty summary should be NaN/0")
	}
}

// Package delineation locates the fiducial points of each heartbeat —
// onset, peak and end of the P wave, QRS complex and T wave (Figure 2 of
// the paper) — implementing both strategies surveyed in Section III.C:
//
//   - the wavelet-based delineator of ref [12] (Rincón et al., BSN 2009),
//     which finds QRS complexes as modulus-maxima pairs of the à-trous
//     quadratic-spline wavelet transform and brackets every wave by
//     threshold crossings of the transform at the scale where that wave's
//     frequency content peaks;
//
//   - the morphological delineator of ref [13], which finds wave peaks as
//     minima of the multiscale morphological-derivative transform and
//     wave boundaries as the flanking maxima.
//
// Both run in streaming-compatible windowed form with integer-friendly
// arithmetic; evaluation against ground truth lives in eval.go.
package delineation

import (
	"errors"
	"math"
	"sync"

	"wbsn/internal/dsp"
	"wbsn/internal/wavelet"
)

// ErrConfig is returned for invalid delineator configurations.
var ErrConfig = errors.New("delineation: invalid configuration")

// Wave identifies one detected characteristic wave.
type Wave struct {
	// On, Peak, Off are sample indices; On/Off are -1 when the wave's
	// boundaries could not be established, Peak is always valid.
	On, Peak, Off int
}

// BeatFiducials is the delineation output for a single detected beat.
type BeatFiducials struct {
	// R is the R-peak sample index.
	R int
	// QRS is the QRS complex (On/Peak/Off with Peak == R).
	QRS Wave
	// P and T hold the detected P and T waves; a Peak of -1 means the
	// wave was not found (e.g. absent P during atrial fibrillation).
	P, T Wave
}

// Config parameterises the wavelet delineator.
type Config struct {
	// Fs is the sampling rate in Hz. Required.
	Fs float64
	// QRSThreshold scales the adaptive QRS detection threshold relative
	// to the RMS of the detection scale (default 2.6).
	QRSThreshold float64
	// RefractoryMs is the post-detection blanking interval (default 250).
	RefractoryMs float64
	// BoundaryFrac is the fraction of the bracketing modulus maximum at
	// which a wave's onset/offset is declared (default 0.12 QRS, applied
	// as-is to QRS; P and T use 0.25).
	BoundaryFrac float64
	// PSearchMs and TSearchMs bound the P and T search windows relative
	// to the QRS (defaults 240 and 480).
	PSearchMs, TSearchMs float64
	// MinWaveAmp is the minimum |transform| for accepting a P or T wave,
	// relative to the QRS modulus maximum (default 0.05). It rejects
	// noise "waves" when the atria do not contract (AF).
	MinWaveAmp float64
}

func (c Config) withDefaults() (Config, error) {
	out := c
	if out.Fs <= 0 {
		return out, ErrConfig
	}
	if out.QRSThreshold <= 0 {
		out.QRSThreshold = 2.6
	}
	if out.RefractoryMs <= 0 {
		out.RefractoryMs = 250
	}
	if out.BoundaryFrac <= 0 {
		out.BoundaryFrac = 0.12
	}
	if out.PSearchMs <= 0 {
		out.PSearchMs = 240
	}
	if out.TSearchMs <= 0 {
		out.TSearchMs = 480
	}
	if out.MinWaveAmp <= 0 {
		out.MinWaveAmp = 0.05
	}
	return out, nil
}

// WaveletDelineator implements ref [12]. It is safe for concurrent use:
// per-call transform buffers come from an internal pool.
type WaveletDelineator struct {
	cfg  Config
	pool sync.Pool // *delineateScratch
}

// delineateScratch holds the reusable à-trous buffers of one Delineate
// call.
type delineateScratch struct {
	details [][]float64
	ws      wavelet.Scratch
}

// NewWaveletDelineator validates the configuration and returns a
// delineator.
func NewWaveletDelineator(cfg Config) (*WaveletDelineator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &WaveletDelineator{cfg: c}
	d.pool.New = func() any { return new(delineateScratch) }
	return d, nil
}

// ms converts milliseconds to samples at the configured rate.
func (d *WaveletDelineator) ms(v float64) int {
	return int(v * d.cfg.Fs / 1000)
}

// Delineate processes one signal (a single lead, or the RMS combination
// of several leads per ref [11]) and returns the detected beats in
// temporal order.
func (d *WaveletDelineator) Delineate(x []float64) ([]BeatFiducials, error) {
	if len(x) < 32 {
		return nil, nil
	}
	s := d.pool.Get().(*delineateScratch)
	defer d.pool.Put(s)
	w, err := wavelet.AtrousInto(x, wavelet.AtrousScales, s.details, &s.ws)
	if err != nil {
		return nil, err
	}
	s.details = w // keep the (possibly regrown) buffers for reuse
	return d.DelineateCoeffs(w)
}

// MinInputLen is the shortest signal Delineate will process; shorter
// inputs return no beats.
const MinInputLen = 32

// DelineateCoeffs runs detection and wave bracketing over a precomputed
// à-trous transform (wavelet.AtrousScales equal-length scales of one
// signal, as produced by wavelet.AtrousInto). Callers that already own
// the transform — e.g. a compiled pipeline whose arena holds the detail
// buffers — skip the internal transform pool entirely; Delineate is
// exactly AtrousInto followed by this.
func (d *WaveletDelineator) DelineateCoeffs(w [][]float64) ([]BeatFiducials, error) {
	if len(w) < 4 {
		return nil, ErrConfig
	}
	n := len(w[0])
	for _, ws := range w {
		if len(ws) != n {
			return nil, ErrConfig
		}
	}
	if n < MinInputLen {
		return nil, nil
	}
	rPeaks, qrsMM := d.detectQRS(w)
	beats := make([]BeatFiducials, 0, len(rPeaks))
	for i, r := range rPeaks {
		b := BeatFiducials{R: r}
		b.QRS = d.bracketQRS(w, r)
		b.QRS.Peak = r
		prevEnd := 0
		if i > 0 {
			prevEnd = rPeaks[i-1]
		}
		nextStart := n
		if i+1 < len(rPeaks) {
			nextStart = rPeaks[i+1]
		}
		b.T = d.findT(w, b.QRS, nextStart, qrsMM[i])
		b.P = d.findP(w, b.QRS, prevEnd, qrsMM[i])
		beats = append(beats, b)
	}
	return beats, nil
}

// detectQRS finds R peaks as zero-crossings between opposite-sign
// modulus-maxima pairs on detection scale 2² that co-occur at scale 2³,
// with a block-adaptive threshold and refractory blanking. It also
// returns each beat's QRS modulus-maximum magnitude (used to scale the
// P/T acceptance thresholds).
func (d *WaveletDelineator) detectQRS(w [][]float64) (rs []int, mm []float64) {
	w2 := w[1] // scale 2²: QRS energy peaks here
	w3 := w[2]
	n := len(w2)
	refractory := d.ms(d.cfg.RefractoryMs)
	pairWin := d.ms(120) // max separation of the modulus-maxima pair
	block := int(2 * d.cfg.Fs)
	if block < 1 {
		block = 1
	}
	i := 0
	lastR := -refractory
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		thr := d.cfg.QRSThreshold * dsp.RMS(w2[start:end])
		if thr == 0 {
			continue
		}
		i = start
		for i < end {
			if math.Abs(w2[i]) < thr || i-lastR < refractory {
				i++
				continue
			}
			// Found the first modulus maximum of a candidate pair: walk to
			// its local extremum.
			sign := 1.0
			if w2[i] < 0 {
				sign = -1
			}
			p1 := i
			for p1+1 < n && w2[p1+1]*sign > w2[p1]*sign {
				p1++
			}
			// Search the opposite-signed extremum within the pair window.
			p2, best := -1, 0.0
			for j := p1 + 1; j < n && j <= p1+pairWin; j++ {
				v := -w2[j] * sign
				if v > best {
					best, p2 = v, j
				}
			}
			if p2 == -1 || best < thr*0.6 {
				i = p1 + 1
				continue
			}
			// Confirm at the next scale up (rejects high-frequency noise
			// spikes that vanish at coarser scales).
			peakW3 := 0.0
			for j := maxInt(0, p1-pairWin); j < minInt(n, p2+pairWin); j++ {
				if a := math.Abs(w3[j]); a > peakW3 {
					peakW3 = a
				}
			}
			if peakW3 < 0.4*math.Abs(w2[p1]) {
				i = p1 + 1
				continue
			}
			// R peak: zero-crossing between the pair.
			r := p1
			for j := p1; j < p2; j++ {
				if w2[j]*sign >= 0 && w2[j+1]*sign < 0 {
					r = j
					break
				}
			}
			// The à-trous bank is causal: outputs lag the input by about
			// one sample per tap at this scale; compensate.
			r -= d.qrsLag()
			if r < 0 {
				r = 0
			}
			if r-lastR >= refractory {
				rs = append(rs, r)
				mm = append(mm, math.Abs(w2[p1]))
				lastR = r
			}
			i = p2 + 1
		}
	}
	return rs, mm
}

// qrsLag is the group delay, in samples, of the scale-2² transform.
func (d *WaveletDelineator) qrsLag() int { return 2 }

// bracketQRS finds QRS onset and offset: walking outward from the R
// peak's modulus-maxima pair on scale 2², onset is where |w2| falls below
// BoundaryFrac of the first maximum (symmetrically for offset).
func (d *WaveletDelineator) bracketQRS(w [][]float64, r int) Wave {
	w2 := w[1]
	n := len(w2)
	out := Wave{On: -1, Peak: r, Off: -1}
	win := d.ms(90)
	// Local modulus maxima straddling r.
	lIdx, lVal := -1, 0.0
	for j := maxInt(0, r-win); j <= r && j < n; j++ {
		if a := math.Abs(w2[j]); a > lVal {
			lVal, lIdx = a, j
		}
	}
	rIdx, rVal := -1, 0.0
	for j := r; j < n && j <= r+win; j++ {
		if a := math.Abs(w2[j]); a > rVal {
			rVal, rIdx = a, j
		}
	}
	if lIdx == -1 || rIdx == -1 {
		return out
	}
	thrOn := d.cfg.BoundaryFrac * lVal
	thrOff := d.cfg.BoundaryFrac * rVal
	on := lIdx
	for on > 0 && on > lIdx-win && math.Abs(w2[on]) > thrOn {
		on--
	}
	off := rIdx
	for off < n-1 && off < rIdx+win && math.Abs(w2[off]) > thrOff {
		off++
	}
	out.On = maxInt(0, on-d.qrsLag())
	out.Off = maxInt(0, off-d.qrsLag())
	if out.On > r {
		out.On = r
	}
	if out.Off < r {
		out.Off = r
	}
	return out
}

// findT searches for the T wave after the QRS offset on scale 2⁴, where
// the slow repolarisation wave dominates.
func (d *WaveletDelineator) findT(w [][]float64, qrs Wave, nextStart int, qrsMM float64) Wave {
	w4 := w[3]
	n := len(w4)
	none := Wave{On: -1, Peak: -1, Off: -1}
	from := qrs.Off + d.ms(60)
	to := qrs.Peak + d.ms(d.cfg.TSearchMs)
	if to > nextStart-d.ms(80) {
		to = nextStart - d.ms(80)
	}
	if from >= to || from < 0 || to > n {
		return none
	}
	return d.bracketSlowWave(w4, from, to, qrsMM, 4)
}

// findP searches for the P wave before the QRS onset on scale 2⁴.
func (d *WaveletDelineator) findP(w [][]float64, qrs Wave, prevEnd int, qrsMM float64) Wave {
	w4 := w[3]
	none := Wave{On: -1, Peak: -1, Off: -1}
	to := qrs.On - d.ms(20)
	from := qrs.Peak - d.ms(d.cfg.PSearchMs)
	if from < prevEnd+d.ms(120) {
		from = prevEnd + d.ms(120)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return none
	}
	return d.bracketSlowWave(w4, from, to, qrsMM, 4)
}

// bracketSlowWave locates a smooth wave inside [from, to) of the given
// transform scale. It enumerates the local extrema of the transform
// within the window, picks the consecutive opposite-signed pair with the
// largest joint magnitude (a wave produces exactly such a modulus-maxima
// pair), places the peak at the zero-crossing between them, and walks
// outward to the 25%-of-maximum boundary crossings. The wave is rejected
// when the pair magnitude is below MinWaveAmp·qrsMM.
func (d *WaveletDelineator) bracketSlowWave(ws []float64, from, to int, qrsMM float64, scaleIdx int) Wave {
	none := Wave{On: -1, Peak: -1, Off: -1}
	if from < 1 {
		from = 1
	}
	if to > len(ws)-1 {
		to = len(ws) - 1
	}
	if to-from < 3 {
		return none
	}
	// The à-trous bank is causal; its group delay at scale 2^(k+1) is
	// about 2^k samples.
	lag := 1 << uint(scaleIdx-1)
	// Collect local extrema (index, value) inside the window.
	type extremum struct {
		idx int
		val float64
	}
	var exts []extremum
	for j := from; j < to; j++ {
		if (ws[j] > ws[j-1] && ws[j] >= ws[j+1]) || (ws[j] < ws[j-1] && ws[j] <= ws[j+1]) {
			exts = append(exts, extremum{j, ws[j]})
		}
	}
	// Best opposite-signed consecutive pair by min(|a|,|b|).
	best := -1
	bestScore := 0.0
	for i := 0; i+1 < len(exts); i++ {
		a, b := exts[i], exts[i+1]
		if a.val*b.val >= 0 {
			continue
		}
		score := math.Min(math.Abs(a.val), math.Abs(b.val))
		if score > bestScore {
			bestScore, best = score, i
		}
	}
	if best < 0 || bestScore < d.cfg.MinWaveAmp*qrsMM {
		return none
	}
	first, second := exts[best].idx, exts[best+1].idx
	// Peak at the zero-crossing between the pair.
	peak := (first + second) / 2
	s := 1.0
	if ws[first] < 0 {
		s = -1
	}
	for j := first; j < second; j++ {
		if ws[j]*s >= 0 && ws[j+1]*s < 0 {
			peak = j
			break
		}
	}
	// Boundaries at 25% of the bracketing maxima, bounded to the window
	// plus a small margin.
	margin := (to - from) / 2
	on := first
	thr := 0.25 * math.Abs(ws[first])
	for on > 1 && on > first-margin && math.Abs(ws[on]) > thr {
		on--
	}
	off := second
	thr = 0.25 * math.Abs(ws[second])
	for off < len(ws)-1 && off < second+margin && math.Abs(ws[off]) > thr {
		off++
	}
	return Wave{
		On:   maxInt(0, on-lag),
		Peak: maxInt(0, peak-lag),
		Off:  maxInt(0, off-lag),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package delineation

import (
	"math"

	"wbsn/internal/dsp"
	"wbsn/internal/morpho"
)

// MorphDelineator implements the morphological-transform delineator of
// ref [13] (Sun, Chan, Krishnan 2005), Section III.C's alternative to the
// wavelet approach: peaks of characteristic waves appear as extrema of
// the multiscale morphological derivative (MMD), and wave boundaries as
// the flanking opposite extrema. QRS complexes are found at a small scale
// (where only sharp waves respond), P and T waves at a larger scale
// between consecutive QRS complexes. This is the "3L-MMD" application of
// Figure 7 when run on each of three leads.
type MorphDelineator struct {
	cfg Config
	// qrsScale and waveScale are the MMD scales in samples.
	qrsScale, waveScale int
}

// NewMorphDelineator validates the configuration and returns a
// delineator. The MMD scales default to 20 ms (QRS) and 70 ms (P/T).
func NewMorphDelineator(cfg Config) (*MorphDelineator, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &MorphDelineator{cfg: c}
	d.qrsScale = maxInt(2, int(0.020*c.Fs))
	d.waveScale = maxInt(4, int(0.070*c.Fs))
	return d, nil
}

func (d *MorphDelineator) ms(v float64) int { return int(v * d.cfg.Fs / 1000) }

// Delineate processes one signal and returns the detected beats. The
// input is expected to be baseline-corrected (e.g. by morpho.Filter or
// the RMS lead combination); the MMD transform itself is insensitive to
// slow drift but the adaptive thresholds work best on a conditioned
// signal.
func (d *MorphDelineator) Delineate(x []float64) ([]BeatFiducials, error) {
	if len(x) < 4*d.waveScale {
		return nil, nil
	}
	mQRS, err := morpho.MMDTransform(x, d.qrsScale)
	if err != nil {
		return nil, err
	}
	mWave, err := morpho.MMDTransform(x, d.waveScale)
	if err != nil {
		return nil, err
	}
	rs := d.detectQRS(x, mQRS)
	var beats []BeatFiducials
	for i, r := range rs {
		b := BeatFiducials{R: r}
		b.QRS = d.bracketQRS(mQRS, r)
		b.QRS.Peak = r
		prevEnd := 0
		if i > 0 {
			prevEnd = rs[i-1]
		}
		nextStart := len(x)
		if i+1 < len(rs) {
			nextStart = rs[i+1]
		}
		// T wave: dominant MMD extremum after QRS offset.
		tFrom := b.QRS.Off + d.ms(60)
		tTo := minInt(r+d.ms(d.cfg.TSearchMs), nextStart-d.ms(80))
		b.T = d.bracketWave(mWave, tFrom, tTo)
		// P wave: dominant extremum before QRS onset.
		pFrom := maxInt(r-d.ms(d.cfg.PSearchMs), prevEnd+d.ms(120))
		pTo := b.QRS.On - d.ms(15)
		b.P = d.bracketWave(mWave, pFrom, pTo)
		beats = append(beats, b)
	}
	return beats, nil
}

// detectQRS finds R peaks as MMD minima below a block-adaptive negative
// threshold (ref [13]: "minima in the transformed signal indicate the
// presence of peaks in the original wave"), with refractory blanking and
// a local-peak refinement on the raw signal.
func (d *MorphDelineator) detectQRS(x, m []float64) []int {
	n := len(m)
	refractory := d.ms(d.cfg.RefractoryMs)
	block := int(2 * d.cfg.Fs)
	if block < 1 {
		block = 1
	}
	var rs []int
	lastR := -refractory
	for start := 0; start < n; start += block {
		end := minInt(start+block, n)
		// Adaptive threshold on the negative excursions.
		minV := 0.0
		for _, v := range m[start:end] {
			if v < minV {
				minV = v
			}
		}
		thr := 0.4 * minV // negative
		if thr >= 0 {
			continue
		}
		i := start
		for i < end {
			if m[i] > thr || i-lastR < refractory {
				i++
				continue
			}
			// Walk to the local minimum of the MMD response.
			p := i
			for p+1 < n && m[p+1] < m[p] {
				p++
			}
			// Refine to the raw-signal local max within the QRS scale.
			r := p
			lo, hi := maxInt(0, p-d.qrsScale), minInt(n, p+d.qrsScale+1)
			rel := dsp.ArgMax(x[lo:hi])
			if rel >= 0 {
				r = lo + rel
			}
			if r-lastR >= refractory {
				rs = append(rs, r)
				lastR = r
			}
			i = p + refractory
		}
	}
	return rs
}

// bracketQRS finds QRS onset/offset as the positive MMD maxima flanking
// the deep minimum at the R peak ("maxima delimit the start and end point
// of each wave").
func (d *MorphDelineator) bracketQRS(m []float64, r int) Wave {
	n := len(m)
	win := d.ms(90)
	out := Wave{On: -1, Peak: r, Off: -1}
	// Left flanking maximum.
	onIdx, onVal := -1, 0.0
	for j := maxInt(1, r-win); j < r; j++ {
		if m[j] > m[j-1] && m[j] >= m[j+1] && m[j] > onVal {
			onVal, onIdx = m[j], j
		}
	}
	offIdx, offVal := -1, 0.0
	for j := r + 1; j < minInt(n-1, r+win); j++ {
		if m[j] > m[j-1] && m[j] >= m[j+1] && m[j] > offVal {
			offVal, offIdx = m[j], j
		}
	}
	if onIdx >= 0 {
		out.On = onIdx
	} else {
		out.On = maxInt(0, r-d.ms(50))
	}
	if offIdx >= 0 {
		out.Off = offIdx
	} else {
		out.Off = minInt(n-1, r+d.ms(50))
	}
	return out
}

// bracketWave locates a smooth wave in [from, to) as the dominant MMD
// extremum with its flanking opposite extrema as boundaries. Returns an
// absent wave when the window is degenerate or the response is too weak.
func (d *MorphDelineator) bracketWave(m []float64, from, to int) Wave {
	none := Wave{On: -1, Peak: -1, Off: -1}
	if from < 1 {
		from = 1
	}
	if to > len(m)-1 {
		to = len(m) - 1
	}
	if to-from < 3 {
		return none
	}
	// A positive wave gives a negative MMD extremum at its peak (ref
	// [13]: "minima ... indicate the presence of peaks"), while the
	// flanks of a neighbouring QRS leak in as positive values; search the
	// deepest local minimum first and fall back to the strongest positive
	// extremum only for inverted waves.
	peak, val := -1, 0.0
	for j := from; j < to; j++ {
		if m[j] < m[j-1] && m[j] <= m[j+1] && -m[j] > val {
			val, peak = -m[j], j
		}
	}
	if peak < 0 {
		for j := from; j < to; j++ {
			if m[j] > m[j-1] && m[j] >= m[j+1] && m[j] > val {
				val, peak = m[j], j
			}
		}
	}
	if peak < 0 {
		return none
	}
	val = math.Abs(m[peak])
	// Reject weak responses relative to the strongest response in a
	// wider neighbourhood (noise floor).
	lo, hi := maxInt(0, from-(to-from)), minInt(len(m), to+(to-from))
	strongest := 0.0
	for _, v := range m[lo:hi] {
		if a := math.Abs(v); a > strongest {
			strongest = a
		}
	}
	if val < 0.05*strongest {
		return none
	}
	sign := 1.0
	if m[peak] > 0 {
		sign = -1 // inverted wave: boundaries are minima
	}
	margin := to - from
	onIdx := -1
	onVal := 0.0
	for j := peak - 1; j > maxInt(1, peak-margin); j-- {
		v := m[j] * sign // flanking extrema have opposite sign to peak
		if v > onVal && v > 0 {
			onVal, onIdx = v, j
		}
		// Stop early when far past the first clear flank.
		if onIdx >= 0 && peak-j > 2*d.waveScale {
			break
		}
	}
	offIdx := -1
	offVal := 0.0
	for j := peak + 1; j < minInt(len(m)-1, peak+margin); j++ {
		v := m[j] * sign
		if v > offVal && v > 0 {
			offVal, offIdx = v, j
		}
		if offIdx >= 0 && j-peak > 2*d.waveScale {
			break
		}
	}
	if onIdx < 0 {
		onIdx = maxInt(0, peak-d.waveScale)
	}
	if offIdx < 0 {
		offIdx = minInt(len(m)-1, peak+d.waveScale)
	}
	return Wave{On: onIdx, Peak: peak, Off: offIdx}
}

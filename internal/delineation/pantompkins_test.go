package delineation

import (
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

func scoreQRS(t *testing.T, rec *ecg.Record, detected []int, tolMs float64) (se, ppv float64) {
	t.Helper()
	var sc PointScore
	tol := int(tolMs * rec.Fs / 1000)
	truth := rec.RPeaks()
	scorePoints(truth, detected, tol, rec.Fs, &sc)
	return sc.Se(), sc.PPV()
}

func TestPanTompkinsValidation(t *testing.T) {
	if _, err := NewPanTompkins(Config{}); err != ErrConfig {
		t.Error("missing Fs should fail")
	}
	pt, err := NewPanTompkins(Config{Fs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.DetectQRS(make([]float64, 10)); got != nil {
		t.Error("short signal should give no peaks")
	}
}

func TestPanTompkinsCleanAccuracy(t *testing.T) {
	pt, _ := NewPanTompkins(Config{Fs: 256})
	rec := ecg.Generate(ecg.Config{Seed: 1, Duration: 60})
	peaks := pt.DetectQRS(dsp.CombineRMS(rec.Clean))
	se, ppv := scoreQRS(t, rec, peaks, 50)
	if se < 0.98 || ppv < 0.98 {
		t.Errorf("Pan-Tompkins clean: Se=%.3f PPV=%.3f", se, ppv)
	}
}

func TestPanTompkinsNoisyAccuracy(t *testing.T) {
	pt, _ := NewPanTompkins(Config{Fs: 256})
	rec := ecg.Generate(ecg.Config{Seed: 2, Duration: 60, Noise: ecg.AmbulatoryNoise()})
	peaks := pt.DetectQRS(dsp.CombineRMS(rec.Leads))
	se, ppv := scoreQRS(t, rec, peaks, 50)
	if se < 0.90 || ppv < 0.90 {
		t.Errorf("Pan-Tompkins ambulatory: Se=%.3f PPV=%.3f", se, ppv)
	}
}

func TestPanTompkinsIrregularRhythm(t *testing.T) {
	// Search-back must keep up with AF's irregular RR.
	pt, _ := NewPanTompkins(Config{Fs: 256})
	rec := ecg.Generate(ecg.Config{Seed: 3, Duration: 60, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	peaks := pt.DetectQRS(dsp.CombineRMS(rec.Clean))
	se, ppv := scoreQRS(t, rec, peaks, 50)
	if se < 0.95 || ppv < 0.95 {
		t.Errorf("Pan-Tompkins AF: Se=%.3f PPV=%.3f", se, ppv)
	}
}

// The ref [11] comparison: both QRS stages (wavelet and Pan-Tompkins)
// must be clinically usable; the wavelet stage should be at least as
// good while also providing wave boundaries.
func TestComparativeQRSEvaluation(t *testing.T) {
	wd, _ := NewWaveletDelineator(Config{Fs: 256})
	pt, _ := NewPanTompkins(Config{Fs: 256})
	var seW, seP, n float64
	for seed := int64(10); seed < 13; seed++ {
		rec := ecg.Generate(ecg.Config{Seed: seed, Duration: 40, Noise: ecg.NoiseConfig{EMG: 0.04}})
		combined := dsp.CombineRMS(rec.Leads)
		beats, err := wd.Delineate(combined)
		if err != nil {
			t.Fatal(err)
		}
		var rw []int
		for _, b := range beats {
			rw = append(rw, b.R)
		}
		sw, _ := scoreQRS(t, rec, rw, 50)
		sp, _ := scoreQRS(t, rec, pt.DetectQRS(combined), 50)
		seW += sw
		seP += sp
		n++
	}
	seW /= n
	seP /= n
	if seP < 0.9 {
		t.Errorf("Pan-Tompkins baseline Se=%.3f below usability", seP)
	}
	if seW < seP-0.02 {
		t.Errorf("wavelet QRS stage (%.3f) should not trail the baseline (%.3f)", seW, seP)
	}
}

package delineation

import (
	"math"

	"wbsn/internal/dsp"
)

// This file derives the clinical interval measurements from delineated
// fiducials — the "information [that] enables the diagnosis of a large
// set of cardiac conditions" (Section III.C). Intervals are the primary
// payload a delineation-mode node transmits, and QT prolongation
// monitoring is one of the morphology-level applications the paper's
// Section II contrasts with rhythm-level ones.

// Intervals holds one beat's interval measurements in seconds. NaN marks
// intervals whose fiducials were not detected.
type Intervals struct {
	// PR is P onset to QRS onset.
	PR float64
	// QRS is QRS onset to QRS offset.
	QRS float64
	// QT is QRS onset to T offset.
	QT float64
	// QTc is the Bazett-corrected QT (QT/√RR); NaN for the first beat
	// (no preceding RR) or missing fiducials.
	QTc float64
	// RR is the interval to the previous beat.
	RR float64
}

// MeasureIntervals converts a delineated beat sequence into per-beat
// interval measurements at the given sampling rate.
func MeasureIntervals(beats []BeatFiducials, fs float64) []Intervals {
	out := make([]Intervals, len(beats))
	nan := math.NaN()
	for i, b := range beats {
		iv := Intervals{PR: nan, QRS: nan, QT: nan, QTc: nan, RR: nan}
		if b.P.On >= 0 && b.QRS.On >= 0 {
			iv.PR = float64(b.QRS.On-b.P.On) / fs
		}
		if b.QRS.On >= 0 && b.QRS.Off >= 0 {
			iv.QRS = float64(b.QRS.Off-b.QRS.On) / fs
		}
		if b.QRS.On >= 0 && b.T.Off >= 0 {
			iv.QT = float64(b.T.Off-b.QRS.On) / fs
		}
		if i > 0 {
			iv.RR = float64(b.R-beats[i-1].R) / fs
			if !math.IsNaN(iv.QT) && iv.RR > 0 {
				iv.QTc = iv.QT / math.Sqrt(iv.RR)
			}
		}
		out[i] = iv
	}
	return out
}

// IntervalSummary aggregates per-beat intervals into means over the
// defined (non-NaN) values, for the record-level report.
type IntervalSummary struct {
	MeanPR, MeanQRS, MeanQT, MeanQTc, MeanRR float64
	// Beats counts the measured beats.
	Beats int
}

// Summarize averages the defined intervals.
func Summarize(ivs []Intervals) IntervalSummary {
	var s IntervalSummary
	s.Beats = len(ivs)
	mean := func(get func(Intervals) float64) float64 {
		var vals []float64
		for _, iv := range ivs {
			if v := get(iv); !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return math.NaN()
		}
		return dsp.Mean(vals)
	}
	s.MeanPR = mean(func(iv Intervals) float64 { return iv.PR })
	s.MeanQRS = mean(func(iv Intervals) float64 { return iv.QRS })
	s.MeanQT = mean(func(iv Intervals) float64 { return iv.QT })
	s.MeanQTc = mean(func(iv Intervals) float64 { return iv.QTc })
	s.MeanRR = mean(func(iv Intervals) float64 { return iv.RR })
	return s
}

package delineation

import (
	"fmt"
	"math"

	"wbsn/internal/ecg"
)

// This file scores a delineator against a record's ground truth. The
// paper (Section V) reports that "the measured sensitivity and
// specificity of retrieved fiducial points are above 90% in all cases,
// which is at the target level for medical use". Following the
// delineation-evaluation convention (CSE/Martínez), a detected fiducial
// matches a true one when it falls within a tolerance window; Se counts
// matched truths, PPV (reported as "specificity" in this literature)
// counts matched detections.

// Tolerances holds the per-fiducial matching tolerances in milliseconds.
type Tolerances struct {
	RPeak, QRSBound float64
	PPeak, PBound   float64
	TPeak, TBound   float64
}

// DefaultTolerances returns the CSE-style tolerance set used in the
// embedded-delineation literature.
func DefaultTolerances() Tolerances {
	return Tolerances{
		RPeak: 40, QRSBound: 50,
		PPeak: 60, PBound: 70,
		TPeak: 70, TBound: 80,
	}
}

// PointScore accumulates matching statistics for one fiducial type.
type PointScore struct {
	TP, FP, FN int
	// ErrSumMs accumulates |detected - truth| in ms over matches, for the
	// mean absolute error.
	ErrSumMs float64
}

// Se returns the sensitivity TP/(TP+FN), or NaN with no truths.
func (s PointScore) Se() float64 {
	if s.TP+s.FN == 0 {
		return math.NaN()
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// PPV returns the positive predictive value TP/(TP+FP), or NaN with no
// detections.
func (s PointScore) PPV() float64 {
	if s.TP+s.FP == 0 {
		return math.NaN()
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// MeanErrMs returns the mean absolute timing error over matches.
func (s PointScore) MeanErrMs() float64 {
	if s.TP == 0 {
		return math.NaN()
	}
	return s.ErrSumMs / float64(s.TP)
}

// Report aggregates the per-fiducial scores of one evaluation.
type Report struct {
	R, QRSOn, QRSOff PointScore
	POn, PPeak, POff PointScore
	TOn, TPeak, TOff PointScore
}

// String renders the report as the table printed by cmd/delineate.
func (r Report) String() string {
	row := func(name string, s PointScore) string {
		return fmt.Sprintf("%-7s Se=%5.1f%%  PPV=%5.1f%%  err=%5.1f ms  (TP=%d FP=%d FN=%d)\n",
			name, 100*s.Se(), 100*s.PPV(), s.MeanErrMs(), s.TP, s.FP, s.FN)
	}
	out := row("R", r.R)
	out += row("QRSon", r.QRSOn) + row("QRSoff", r.QRSOff)
	out += row("Pon", r.POn) + row("Ppeak", r.PPeak) + row("Poff", r.POff)
	out += row("Ton", r.TOn) + row("Tpeak", r.TPeak) + row("Toff", r.TOff)
	return out
}

// AllAbove reports whether every defined Se and PPV in the report clears
// the threshold (NaN entries — waves absent from both truth and
// detection — are skipped).
func (r Report) AllAbove(thr float64) bool {
	ok := true
	for _, s := range []PointScore{r.R, r.QRSOn, r.QRSOff, r.POn, r.PPeak, r.POff, r.TOn, r.TPeak, r.TOff} {
		if se := s.Se(); !math.IsNaN(se) && se < thr {
			ok = false
		}
		if ppv := s.PPV(); !math.IsNaN(ppv) && ppv < thr {
			ok = false
		}
	}
	return ok
}

// matchState pairs each truth index with at most one detection, greedily
// in temporal order.
func scorePoints(truth, detected []int, tolSamples int, fs float64, sc *PointScore) {
	used := make([]bool, len(detected))
	for _, tr := range truth {
		best, bestDist := -1, tolSamples+1
		for di, de := range detected {
			if used[di] {
				continue
			}
			dist := de - tr
			if dist < 0 {
				dist = -dist
			}
			if dist <= tolSamples && dist < bestDist {
				best, bestDist = di, dist
			}
		}
		if best >= 0 {
			used[best] = true
			sc.TP++
			sc.ErrSumMs += float64(bestDist) / fs * 1000
		} else {
			sc.FN++
		}
	}
	for _, u := range used {
		if !u {
			sc.FP++
		}
	}
}

// Evaluate scores detected beats against the record's ground truth.
func Evaluate(rec *ecg.Record, beats []BeatFiducials, tol Tolerances) Report {
	fs := rec.Fs
	toSamp := func(ms float64) int { return int(ms * fs / 1000) }
	collect := func(get func(ecg.Fiducials) int) []int {
		var out []int
		for _, b := range rec.Beats {
			if v := get(b.Fid); v >= 0 {
				out = append(out, v)
			}
		}
		return out
	}
	collectDet := func(get func(BeatFiducials) int) []int {
		var out []int
		for _, b := range beats {
			if v := get(b); v >= 0 {
				out = append(out, v)
			}
		}
		return out
	}
	var rep Report
	scorePoints(collect(func(f ecg.Fiducials) int { return f.RPeak }),
		collectDet(func(b BeatFiducials) int { return b.R }),
		toSamp(tol.RPeak), fs, &rep.R)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.QRSOn }),
		collectDet(func(b BeatFiducials) int { return b.QRS.On }),
		toSamp(tol.QRSBound), fs, &rep.QRSOn)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.QRSOff }),
		collectDet(func(b BeatFiducials) int { return b.QRS.Off }),
		toSamp(tol.QRSBound), fs, &rep.QRSOff)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.POn }),
		collectDet(func(b BeatFiducials) int { return b.P.On }),
		toSamp(tol.PBound), fs, &rep.POn)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.PPeak }),
		collectDet(func(b BeatFiducials) int { return b.P.Peak }),
		toSamp(tol.PPeak), fs, &rep.PPeak)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.POff }),
		collectDet(func(b BeatFiducials) int { return b.P.Off }),
		toSamp(tol.PBound), fs, &rep.POff)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.TOn }),
		collectDet(func(b BeatFiducials) int { return b.T.On }),
		toSamp(tol.TBound), fs, &rep.TOn)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.TPeak }),
		collectDet(func(b BeatFiducials) int { return b.T.Peak }),
		toSamp(tol.TPeak), fs, &rep.TPeak)
	scorePoints(collect(func(f ecg.Fiducials) int { return f.TOff }),
		collectDet(func(b BeatFiducials) int { return b.T.Off }),
		toSamp(tol.TBound), fs, &rep.TOff)
	return rep
}

// Merge combines two reports by summing their counters.
func Merge(a, b Report) Report {
	add := func(x, y PointScore) PointScore {
		return PointScore{TP: x.TP + y.TP, FP: x.FP + y.FP, FN: x.FN + y.FN, ErrSumMs: x.ErrSumMs + y.ErrSumMs}
	}
	return Report{
		R:      add(a.R, b.R),
		QRSOn:  add(a.QRSOn, b.QRSOn),
		QRSOff: add(a.QRSOff, b.QRSOff),
		POn:    add(a.POn, b.POn),
		PPeak:  add(a.PPeak, b.PPeak),
		POff:   add(a.POff, b.POff),
		TOn:    add(a.TOn, b.TOn),
		TPeak:  add(a.TPeak, b.TPeak),
		TOff:   add(a.TOff, b.TOff),
	}
}

// Package core assembles the substrates into the paper's system: a
// wireless body sensor node that acquires multi-lead ECG, conditions it,
// and — depending on the application — streams it raw, compresses it
// with CS, delineates it, classifies heartbeats or raises atrial-
// fibrillation alarms. Each step up this ladder (Figure 1 of the paper)
// raises the abstraction level of the transmitted data and cuts the
// radio bandwidth, which is what extends the battery life of the node.
//
// The Node type is the library's main entry point; see examples/ for
// runnable scenarios.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"wbsn/internal/af"
	"wbsn/internal/classify"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/energy"
	"wbsn/internal/graph"
	"wbsn/internal/link"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
	"wbsn/internal/wavelet"
)

// Errors returned by the node.
var (
	ErrConfig       = errors.New("core: invalid node configuration")
	ErrNoClassifier = errors.New("core: classification mode requires a trained classifier")
)

// Mode selects the node's application — one rung of the Figure 1 ladder.
type Mode int

// Operating modes, in increasing order of on-node abstraction.
const (
	// ModeRawStreaming transmits every raw sample (the unsustainable
	// baseline of Section I).
	ModeRawStreaming Mode = iota
	// ModeCS transmits compressed-sensing measurements (Section III.A).
	ModeCS
	// ModeDelineation transmits per-beat fiducial points (Section III.C).
	ModeDelineation
	// ModeClassification transmits per-beat class labels (Section III.D).
	ModeClassification
	// ModeAFAlarm transmits only AF episode alarms (Section V).
	ModeAFAlarm
)

// String returns the mode's display name.
func (m Mode) String() string {
	switch m {
	case ModeRawStreaming:
		return "raw-streaming"
	case ModeCS:
		return "compressed-sensing"
	case ModeDelineation:
		return "delineation"
	case ModeClassification:
		return "classification"
	case ModeAFAlarm:
		return "af-alarm"
	default:
		return "unknown"
	}
}

// Config parameterises a Node.
type Config struct {
	// Mode selects the application.
	Mode Mode
	// Fs is the sampling rate in Hz (default 256).
	Fs float64
	// Leads is the lead count (default 3).
	Leads int
	// CSWindow is the compression window length (default 512).
	CSWindow int
	// CSRatio is the compression ratio in percent (default 65.9, the
	// paper's single-lead good-quality operating point).
	CSRatio float64
	// CSDensity is the sparse-binary column density (default 4).
	CSDensity int
	// Filter enables morphological conditioning before analysis
	// (default true for the analysis modes; never used for raw/CS
	// which transmit the acquired signal).
	DisableFilter bool
	// Classifier is required in ModeClassification.
	Classifier *classify.Classifier
	// BitsPerSample quantises raw samples and CS measurements
	// (default 12).
	BitsPerSample int
	// QuantBits, when positive, passes streamed CS measurements through
	// an explicit uniform quantiser of that many bits before
	// transmission (the payload knob of Figure 6); 0 transmits at
	// BitsPerSample without modelling the rounding.
	QuantBits int
	// Seed drives sensing-matrix generation.
	Seed int64
	// GateLeads enables per-lead signal-quality gating in the analysis
	// modes: leads whose SQI falls below LeadGateMin (lead-off,
	// saturation, heavy artifacts) are excluded from lead combination,
	// so the node degrades from 3-lead to fewer-lead operation instead
	// of delineating a corrupted composite.
	GateLeads bool
	// LeadGateMin is the minimum per-lead SQI to keep a lead (default
	// 0.7 when GateLeads is set).
	LeadGateMin float64
}

func (c Config) withDefaults() Config {
	out := c
	if out.Fs <= 0 {
		out.Fs = 256
	}
	if out.Leads <= 0 {
		out.Leads = 3
	}
	if out.CSWindow <= 0 {
		out.CSWindow = 512
	}
	if out.CSRatio <= 0 {
		out.CSRatio = 65.9
	}
	if out.CSDensity <= 0 {
		out.CSDensity = 4
	}
	if out.BitsPerSample <= 0 {
		out.BitsPerSample = 12
	}
	if out.GateLeads && out.LeadGateMin <= 0 {
		out.LeadGateMin = 0.7
	}
	return out
}

// validate rejects configuration fields that would otherwise propagate
// silently into the DSP chain: NaN or infinite rates poison every
// filter coefficient downstream, and negative values would be masked
// by the zero-means-default convention. Zero stays "use the default";
// anything negative or non-finite fails fast.
func (c Config) validate() error {
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: %s must be finite and non-negative, got %v", ErrConfig, name, v)
		}
		return nil
	}
	if err := finite("Fs", c.Fs); err != nil {
		return err
	}
	if err := finite("CSRatio", c.CSRatio); err != nil {
		return err
	}
	if c.CSRatio >= 100 {
		return fmt.Errorf("%w: CSRatio %v leaves no measurements (must be < 100)", ErrConfig, c.CSRatio)
	}
	if err := finite("LeadGateMin", c.LeadGateMin); err != nil {
		return err
	}
	if c.LeadGateMin > 1 {
		return fmt.Errorf("%w: LeadGateMin %v outside [0, 1]", ErrConfig, c.LeadGateMin)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Leads", c.Leads}, {"CSWindow", c.CSWindow}, {"CSDensity", c.CSDensity},
		{"BitsPerSample", c.BitsPerSample}, {"QuantBits", c.QuantBits},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s must be non-negative, got %d", ErrConfig, f.name, f.v)
		}
	}
	if c.BitsPerSample > 32 || c.QuantBits > 32 {
		return fmt.Errorf("%w: sample quantisation beyond 32 bits", ErrConfig)
	}
	return nil
}

// Node is one configured wireless body sensor node.
type Node struct {
	cfg     Config
	enc     *cs.Encoder
	del     *delineation.WaveletDelineator
	afd     *af.Detector
	energy  energy.NodeModel
	beatWin classify.BeatWindow
	// plan is the node's per-chunk pipeline compiled into a fused,
	// arena-planned execution plan. It is immutable and shared: every
	// Stream (and every pooled fleet rig) of this node runs it through
	// its own graph.Exec.
	plan *graph.Plan
}

// NewNode validates the configuration and builds the processing chain.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if c.Mode < ModeRawStreaming || c.Mode > ModeAFAlarm {
		return nil, ErrConfig
	}
	if c.Mode == ModeClassification && c.Classifier == nil {
		return nil, ErrNoClassifier
	}
	n := &Node{cfg: c, energy: energy.DefaultNode(), beatWin: classify.DefaultBeatWindow(c.Fs)}
	if c.Mode == ModeCS {
		m := cs.MeasurementsForCR(c.CSWindow, c.CSRatio)
		d := c.CSDensity
		if d > m {
			d = m
		}
		phi, err := cs.NewSparseBinary(m, c.CSWindow, d, rand.New(rand.NewSource(c.Seed)))
		if err != nil {
			return nil, err
		}
		n.enc = cs.NewEncoder(phi)
	}
	if c.Mode >= ModeDelineation {
		dcfg := delineation.Config{Fs: c.Fs}
		if c.Mode == ModeAFAlarm {
			// The conditioning filter smooths fibrillatory f-waves into
			// P-like bumps; a stricter P acceptance threshold keeps the
			// P-absence evidence discriminative.
			dcfg.MinWaveAmp = 0.10
		}
		del, err := delineation.NewWaveletDelineator(dcfg)
		if err != nil {
			return nil, err
		}
		n.del = del
	}
	if c.Mode == ModeAFAlarm {
		afd, err := af.NewDetector(af.Config{Fs: c.Fs})
		if err != nil {
			return nil, err
		}
		n.afd = afd
	}
	plan, err := n.buildPlan()
	if err != nil {
		return nil, err
	}
	n.plan = plan
	return n, nil
}

// buildPlan assembles the node's per-chunk pipeline as a typed graph and
// compiles it: one plan per configuration, shared by every stream. The
// stage-lap tags declared here are the single clock reading taken per
// boundary (DESIGN §10); in particular the fused filter+combine stage
// carries one StageFilter tag, so lead combination folds into the filter
// lap instead of double-timing the boundary.
func (n *Node) buildPlan() (*graph.Plan, error) {
	c := n.cfg
	b := graph.NewBuilder()
	switch c.Mode {
	case ModeRawStreaming:
		v := b.Input(c.Leads, c.CSWindow)
		b.Packetize(v, c.BitsPerSample)
	case ModeCS:
		v := b.Input(c.Leads, c.CSWindow)
		v = b.CSEncode(v, n.enc)
		bits := c.BitsPerSample
		if c.QuantBits > 0 {
			bits = c.QuantBits
			v = b.Quantize(v, bits)
		}
		v = b.Packetize(v, bits)
		b.Lap(v, telemetry.StageCS)
	default:
		// Analysis chunk: 4 s with 1 s overlap (the stream's hop) keeps
		// every beat fully inside at least one chunk.
		v := b.Input(c.Leads, int(4*c.Fs))
		if c.GateLeads {
			v = b.GateLeads(v, c.Fs, c.LeadGateMin)
		}
		if !c.DisableFilter {
			v = b.MorphFilter(v, morpho.FilterConfig{Fs: c.Fs})
			b.Lap(v, telemetry.StageFilter)
		}
		series := b.CombineRMS(v)
		w := b.Atrous(series, wavelet.AtrousScales)
		beats := b.Delineate(w, n.del)
		b.Lap(beats, telemetry.StageDelineate)
		if c.Mode == ModeClassification {
			cv := b.Classify(series, c.Classifier, n.beatWin)
			b.Lap(cv, telemetry.StageClassify)
		}
	}
	return b.Build()
}

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Plan returns the node's compiled execution plan (immutable, shared by
// all of the node's streams).
func (n *Node) Plan() *graph.Plan { return n.plan }

// BeatOutput is one transmitted beat event.
type BeatOutput struct {
	Fiducials delineation.BeatFiducials
	// Label is the predicted class in ModeClassification (-1 otherwise).
	Label int
	// Membership is the classifier confidence.
	Membership float64
}

// Result is the outcome of processing one record.
type Result struct {
	Mode Mode
	// DurationS is the processed signal duration.
	DurationS float64
	// TxBytes is the total transmitted payload.
	TxBytes int
	// TxBytesPerSecond is the resulting radio bandwidth.
	TxBytesPerSecond float64
	// Beats holds the delineated beats (analysis modes).
	Beats []BeatOutput
	// AFDecisions holds the windowed AF verdicts (ModeAFAlarm).
	AFDecisions []af.Decision
	// AFAlarm reports whether the record triggered an AF alarm.
	AFAlarm bool
	// LeadsUsed marks which leads survived signal-quality gating (all
	// true when gating is disabled or in the raw/CS modes).
	LeadsUsed []bool
	// Energy is the per-record node energy estimate.
	Energy energy.Breakdown
	// EnergyAvgPowerW is the average node power over the record.
	EnergyAvgPowerW float64
	// BatteryLifetimeH extrapolates the battery lifetime at this power.
	BatteryLifetimeH float64
}

// Process runs the node's pipeline over a full record.
func (n *Node) Process(rec *ecg.Record) (*Result, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Mode: n.cfg.Mode, DurationS: rec.Duration()}
	samples := rec.Len() * len(rec.Leads)
	compOps := 0
	switch n.cfg.Mode {
	case ModeRawStreaming:
		res.TxBytes = (samples*n.cfg.BitsPerSample + 7) / 8
	case ModeCS:
		windows := rec.Len() / n.cfg.CSWindow
		mPerWin := n.enc.MeasurementLen() * len(rec.Leads)
		res.TxBytes = windows * ((mPerWin*n.cfg.BitsPerSample + 7) / 8)
		compOps = windows * n.enc.Matrix().(*cs.SparseBinary).AddsPerWindow() * len(rec.Leads)
	default:
		beats, used, ops, err := n.analyze(rec)
		if err != nil {
			return nil, err
		}
		compOps = ops
		res.Beats = beats
		res.LeadsUsed = used
		switch n.cfg.Mode {
		case ModeDelineation:
			// 9 fiducials at 2 bytes each, plus a 2-byte beat header.
			res.TxBytes = len(beats) * (9*2 + 2)
		case ModeClassification:
			// Label byte + 3-byte R-peak offset per beat.
			res.TxBytes = len(beats) * 4
		case ModeAFAlarm:
			dels := make([]delineation.BeatFiducials, len(beats))
			for i, b := range beats {
				dels[i] = b.Fiducials
			}
			res.AFDecisions = n.afd.Detect(dels)
			res.AFAlarm = af.RecordVerdict(res.AFDecisions, 0.5)
			// One status byte per decision window; alarms piggy-back.
			res.TxBytes = len(res.AFDecisions)
		}
	}
	if res.DurationS > 0 {
		res.TxBytesPerSecond = float64(res.TxBytes) / res.DurationS
	}
	res.Energy = energy.Breakdown{
		Label:   n.cfg.Mode.String(),
		RadioJ:  n.energy.Radio.TxEnergyJ(res.TxBytes),
		SampleJ: n.energy.ADC.SamplingEnergyJ(samples),
		CompJ:   n.energy.CPU.ComputeEnergyJ(compOps),
		OSJ:     n.energy.OS.EnergyPerWindowJ * res.DurationS,
	}
	if res.DurationS > 0 {
		res.EnergyAvgPowerW = res.Energy.TotalJ() / res.DurationS
		res.BatteryLifetimeH = energy.DefaultBattery().LifetimeHours(res.EnergyAvgPowerW)
	}
	return res, nil
}

// gateLeads applies signal-quality gating: it returns the leads to
// analyse, the per-lead usage mask, and the abstract operation count of
// the quality checks. With gating disabled every lead passes through.
func (n *Node) gateLeads(leads [][]float64) ([][]float64, []bool, int) {
	used := make([]bool, len(leads))
	for i := range used {
		used[i] = true
	}
	if !n.cfg.GateLeads || len(leads) < 2 {
		return leads, used, 0
	}
	mask := link.GoodLeads(leads, n.cfg.Fs, link.SQIConfig{}, n.cfg.LeadGateMin)
	ops := 0
	if len(leads) > 0 {
		ops = len(leads) * len(leads[0]) * 3 // mean/RMS/peak passes
	}
	kept := make([][]float64, 0, len(leads))
	for li, ok := range mask {
		if ok {
			kept = append(kept, leads[li])
		}
	}
	if len(kept) == 0 { // GoodLeads guarantees one lead, but be safe
		return leads, used, ops
	}
	return kept, mask, ops
}

// analyze runs signal-quality gating, conditioning, lead combination,
// delineation and (in classification mode) per-beat labelling, and
// returns the beats, the per-lead usage mask, plus an abstract
// operation count for the energy model.
func (n *Node) analyze(rec *ecg.Record) ([]BeatOutput, []bool, int, error) {
	leads, used, ops := n.gateLeads(rec.Leads)
	if !n.cfg.DisableFilter {
		filtered, err := morpho.FilterLeads(leads, morpho.FilterConfig{Fs: n.cfg.Fs})
		if err != nil {
			return nil, nil, 0, err
		}
		leads = filtered
		ops += rec.Len() * len(leads) * 24 // van Herk stages per sample
	}
	combined := dsp.CombineRMS(leads)
	ops += rec.Len() * (len(leads) + 2)
	beats, err := n.del.Delineate(combined)
	if err != nil {
		return nil, nil, 0, err
	}
	ops += rec.Len() * 30 // à-trous bank + threshold logic
	out := make([]BeatOutput, 0, len(beats))
	for _, b := range beats {
		bo := BeatOutput{Fiducials: b, Label: -1}
		if n.cfg.Mode == ModeClassification {
			beat := n.beatWin.Extract(combined, b.R)
			if beat != nil {
				label, mem, err := n.cfg.Classifier.Predict(beat)
				if err != nil {
					return nil, nil, 0, err
				}
				bo.Label = label
				bo.Membership = mem
				ops += n.cfg.Classifier.RP().AddsPerProjection() + 400
			}
		}
		out = append(out, bo)
	}
	return out, used, ops, nil
}

// TrainClassifier builds a heartbeat classifier from labelled records —
// the off-line training stage whose product is deployed on the node
// (ref [14] trains on MIT-BIH and ports the network to the WBSN).
// Training beats pass through the same conditioning the node applies at
// inference time (morphological filtering and RMS lead combination), so
// the deployed prototypes match the on-node feature distribution.
func TrainClassifier(records []*ecg.Record, fs float64, seed int64) (*classify.Classifier, error) {
	w := classify.DefaultBeatWindow(fs)
	rp, err := classify.NewRPMatrix(16, w.Len(), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: fs})
	if err != nil {
		return nil, err
	}
	byClass := make(map[int][][]float64)
	for _, rec := range records {
		filtered, err := morpho.FilterLeads(rec.Leads, morpho.FilterConfig{Fs: fs})
		if err != nil {
			return nil, err
		}
		combined := dsp.CombineRMS(filtered)
		// Train on beats anchored at *detected* R peaks (labelled by the
		// nearest ground-truth beat): random projections are not
		// shift-invariant, so the training anchors must match the
		// inference-time detector's alignment.
		detected, err := del.Delineate(combined)
		if err != nil {
			return nil, err
		}
		for _, db := range detected {
			label, ok := nearestLabel(rec, db.R, int(0.06*fs))
			if !ok {
				continue
			}
			beat := w.Extract(combined, db.R)
			if beat == nil {
				continue
			}
			z, err := rp.Project(beat)
			if err != nil {
				return nil, err
			}
			byClass[label] = append(byClass[label], z)
		}
	}
	cl, err := classify.Train(rp, byClass, classify.TrainConfig{PrototypesPerClass: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	cl.UseLinExp = true // the embedded kernel path
	return cl, nil
}

// nearestLabel returns the label of the ground-truth beat closest to
// sample r, if one lies within tol samples.
func nearestLabel(rec *ecg.Record, r, tol int) (int, bool) {
	best, bestD := -1, tol+1
	for _, b := range rec.Beats {
		d := b.Fid.RPeak - r
		if d < 0 {
			d = -d
		}
		if d < bestD {
			bestD = d
			best = int(b.Label)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

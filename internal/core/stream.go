package core

import (
	"errors"
	"time"

	"wbsn/internal/af"
	"wbsn/internal/delineation"
	"wbsn/internal/graph"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// ErrStream is returned for invalid streaming usage.
var ErrStream = errors.New("core: invalid stream input")

// EventKind tags a streaming output event.
type EventKind int

// Event kinds.
const (
	// EventPacket is a radio payload ready for transmission (raw or CS
	// measurements).
	EventPacket EventKind = iota
	// EventBeat is a delineated (and possibly classified) heartbeat.
	EventBeat
	// EventAF is a windowed atrial-fibrillation decision.
	EventAF
)

// Event is one output of the streaming node.
type Event struct {
	Kind EventKind
	// At is the absolute sample index the event refers to (window start
	// for packets, R peak for beats, window start for AF decisions).
	At int
	// Bytes is the payload size for EventPacket.
	Bytes int
	// Measurements holds the per-lead CS measurement vectors of a
	// ModeCS packet (nil for raw packets), for receiver-side
	// reconstruction.
	Measurements [][]float64
	// Beat is set for EventBeat.
	Beat BeatOutput
	// AF is set for EventAF.
	AF af.Decision
	// Trace is the window's end-to-end trace ID, minted for CS packet
	// events when a trace ring is attached (zero otherwise — untraced
	// streams emit bit-identical events with these fields zero-valued).
	Trace trace.ID
	// EncodeNs is the node-side encode span duration that produced a
	// traced packet, for transports that forward it to the gateway.
	EncodeNs int64
}

// Stream is the on-line form of the node: samples are pushed as they are
// acquired and events come out with bounded latency. Analysis modes
// process overlapping chunks internally so beats crossing chunk borders
// are not lost.
//
// Each chunk runs through the node's compiled execution plan (see
// internal/graph): the per-mode DSP chain is fused and arena-planned at
// NewNode time, and the stream owns one executor over that shared plan,
// so steady-state chunk processing does not allocate work buffers.
type Stream struct {
	node *Node
	// exec runs the node's compiled plan; it owns every per-stream work
	// buffer (scratch arena, filter states, classification windows).
	exec *graph.Exec
	// absolute index of the next sample to be pushed.
	pos int
	// per-lead buffered samples (absolute start at bufStart).
	buf      [][]float64
	bufStart int
	// chunkLen and hop control the analysis windowing.
	chunkLen, hop int
	// lastBeatR is the absolute R of the last emitted beat (dedup).
	lastBeatR int
	// beats accumulated for AF windowing (absolute Rs).
	afBeats []delineation.BeatFiducials
	afEmit  int // beats already covered by emitted AF windows
	// chunk is the reusable per-drain view of the buffered leads.
	chunk [][]float64
	// tel, when set, receives per-chunk counters and per-stage timings.
	// Nothing is recorded per sample, so the Push hot path is identical
	// with telemetry attached (TestStreamPushSteadyStateAllocs pins the
	// instrumented path at 0 allocs mid-chunk).
	tel *telemetry.NodeMetrics
	// telCursor chains the per-stage timings within one chunk: each
	// stage boundary takes a single clock reading and spans from the
	// previous boundary (clock reads dominate telemetry cost on
	// paravirtualised hosts, so stages share boundaries instead of each
	// paying a start and an end read).
	telCursor time.Time
	// trRing, when set, receives one encode span per emitted CS packet
	// and the packet events carry freshly minted trace IDs. trHi tags
	// this stream's IDs; trSeq counts minted windows (1-based so the
	// reserved zero ID never occurs); trT0 is the current chunk's encode
	// span start.
	trRing *trace.Ring
	trHi   uint32
	trSeq  uint32
	trT0   time.Time
}

// Lap implements graph.Lapper: it records the span from the previous lap
// point to now under the given stage and advances the cursor — one clock
// read per stage boundary. The executor only calls it when telemetry is
// attached (the stream passes a nil Lapper otherwise).
func (s *Stream) Lap(stage telemetry.Stage, at int64) {
	now := time.Now()
	s.tel.Stages.Record(stage, at, s.telCursor.UnixNano(), int64(now.Sub(s.telCursor)))
	s.telCursor = now
}

// SetTelemetry attaches (or detaches, with nil) the node metric family.
// Call before pushing samples; the stream records chunk counts, event
// counts and per-stage latencies into it. Telemetry is observation
// only — the emitted events are bit-identical either way.
func (s *Stream) SetTelemetry(tm *telemetry.NodeMetrics) { s.tel = tm }

// SetTrace attaches (or detaches, with nil) the end-to-end window
// trace ring. hi tags this stream's trace IDs (patient or record
// index); window sequence numbers within the stream count from 1 so
// the reserved zero ID never occurs. Like telemetry, tracing is
// observation only — the events' signal content is bit-identical, only
// the Trace/EncodeNs tags differ.
func (s *Stream) SetTrace(r *trace.Ring, hi uint32) {
	s.trRing = r
	s.trHi = hi
	s.trSeq = 0
}

// NewStream creates a streaming processor for the node's mode, running
// the node's shared compiled plan through a private executor.
func (n *Node) NewStream() (*Stream, error) {
	s := &Stream{node: n, exec: n.plan.NewExec(), lastBeatR: -1}
	s.buf = make([][]float64, n.cfg.Leads)
	s.chunkLen = n.plan.ChunkLen()
	switch n.cfg.Mode {
	case ModeRawStreaming, ModeCS:
		s.hop = s.chunkLen // packetise at window granularity
	default:
		// Analysis chunks overlap by 1 s (see Node.buildPlan).
		s.hop = s.chunkLen - int(1*n.cfg.Fs)
	}
	return s, nil
}

// Reset returns the stream to its initial state (as if freshly created)
// while keeping its allocated buffers, so one stream can replay many
// records without reconstruction cost.
func (s *Stream) Reset() {
	s.pos = 0
	s.bufStart = 0
	s.lastBeatR = -1
	s.afBeats = s.afBeats[:0]
	s.afEmit = 0
	s.trSeq = 0
	for i := range s.buf {
		s.buf[i] = s.buf[i][:0]
	}
}

// Push appends one multi-lead sample (one value per lead) and returns
// any events that became ready.
func (s *Stream) Push(sample []float64) ([]Event, error) {
	if len(sample) != len(s.buf) {
		return nil, ErrStream
	}
	for i, v := range sample {
		s.buf[i] = append(s.buf[i], v)
	}
	s.pos++
	return s.drain(false)
}

// PushBlock appends a block of samples per lead (lead-major:
// block[lead][i]) and returns the events that became ready.
func (s *Stream) PushBlock(block [][]float64) ([]Event, error) {
	if len(block) != len(s.buf) {
		return nil, ErrStream
	}
	n := len(block[0])
	for _, l := range block {
		if len(l) != n {
			return nil, ErrStream
		}
	}
	for i := range block {
		s.buf[i] = append(s.buf[i], block[i]...)
	}
	s.pos += n
	return s.drain(false)
}

// Flush processes whatever remains in the buffer (end of acquisition).
func (s *Stream) Flush() ([]Event, error) {
	return s.drain(true)
}

// drain emits events for every complete chunk in the buffer.
func (s *Stream) drain(flush bool) ([]Event, error) {
	var events []Event
	for {
		have := len(s.buf[0])
		if have < s.chunkLen && !(flush && have > 0) {
			break
		}
		take := s.chunkLen
		if take > have {
			take = have
		}
		if cap(s.chunk) < len(s.buf) {
			s.chunk = make([][]float64, len(s.buf))
		}
		s.chunk = s.chunk[:len(s.buf)]
		for i := range s.buf {
			s.chunk[i] = s.buf[i][:take]
		}
		if s.tel != nil || s.trRing != nil {
			now := time.Now()
			s.telCursor = now
			s.trT0 = now
		}
		evs, err := s.processChunk(s.chunk, s.bufStart)
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
		// Advance by hop (or everything on a final short flush).
		adv := s.hop
		if take < s.chunkLen {
			adv = take
		}
		// Compact instead of reslicing forward: the backing array keeps
		// its full capacity, so once warm the per-sample appends in
		// Push/PushBlock never reallocate (steady-state O(1) allocations).
		for i := range s.buf {
			kept := copy(s.buf[i], s.buf[i][adv:])
			s.buf[i] = s.buf[i][:kept]
		}
		if tm := s.tel; tm != nil {
			// The acquire lap covers event assembly plus the compaction
			// above (everything since the last stage boundary).
			s.Lap(telemetry.StageAcquire, int64(s.bufStart))
			tm.Samples.Add(uint64(adv))
			tm.Chunks.Inc()
			tm.Events.Add(uint64(len(evs)))
		}
		s.bufStart += adv
		if take < s.chunkLen {
			break
		}
	}
	return events, nil
}

// processChunk runs the compiled plan over one chunk starting at
// absolute sample index base and assembles the mode's events from the
// plan result.
func (s *Stream) processChunk(chunk [][]float64, base int) ([]Event, error) {
	n := s.node
	var lp graph.Lapper
	if s.tel != nil {
		lp = s
	}
	res, err := s.exec.Run(chunk, base, lp)
	if err != nil {
		return nil, err
	}
	var events []Event
	switch n.cfg.Mode {
	case ModeRawStreaming, ModeCS:
		// A CS plan produces no packet for a partial trailing window.
		if res.HasPacket {
			ev := Event{Kind: EventPacket, At: base, Bytes: res.PacketBytes, Measurements: res.Measurements}
			if s.trRing != nil && res.Measurements != nil {
				// Mint the window's end-to-end trace ID and record the
				// encode span (everything from the chunk boundary to here:
				// the DSP chain plus CS projection and packetising).
				s.trSeq++
				ev.Trace = trace.NewID(s.trHi, s.trSeq)
				ev.EncodeNs = int64(time.Since(s.trT0))
				s.trRing.Record(ev.Trace, trace.KindEncode, s.trT0.UnixNano(), ev.EncodeNs)
			}
			events = append(events, ev)
			if tm := s.tel; tm != nil {
				tm.Packets.Inc()
				tm.TxBytes.Add(uint64(res.PacketBytes))
			}
		}
	default:
		refractory := int(0.2 * n.cfg.Fs)
		for _, b := range res.Beats {
			absR := b.R + base
			if absR <= s.lastBeatR+refractory {
				continue // already emitted by the previous overlapping chunk
			}
			// Skip beats in the trailing overlap region; the next chunk
			// sees them with full context (unless this is the last data).
			if b.R >= s.hop && len(chunk[0]) == s.chunkLen {
				continue
			}
			s.lastBeatR = absR
			bo := BeatOutput{Fiducials: offsetBeat(b, base), Label: -1}
			if n.cfg.Mode == ModeClassification {
				label, mem, ok, err := s.exec.ClassifyBeat(b.R, int64(absR), lp)
				if err != nil {
					return nil, err
				}
				if ok {
					bo.Label = label
					bo.Membership = mem
				}
			}
			if tm := s.tel; tm != nil {
				tm.Beats.Inc()
			}
			events = append(events, Event{Kind: EventBeat, At: absR, Beat: bo})
			if n.cfg.Mode == ModeAFAlarm {
				s.afBeats = append(s.afBeats, bo.Fiducials)
			}
		}
		if n.cfg.Mode == ModeAFAlarm {
			w := 24 // detector window
			for s.afEmit+w <= len(s.afBeats) {
				f := af.ExtractFeatures(s.afBeats[s.afEmit:s.afEmit+w], n.cfg.Fs)
				score := n.afd.Score(f)
				events = append(events, Event{
					Kind: EventAF,
					At:   s.afBeats[s.afEmit].R,
					AF:   af.Decision{StartBeat: s.afEmit, Score: score, AF: score >= 0.5, Features: f},
				})
				s.afEmit += w / 2
			}
		}
	}
	return events, nil
}

// offsetBeat shifts a beat's fiducials by the chunk base (absent waves
// stay -1).
func offsetBeat(b delineation.BeatFiducials, base int) delineation.BeatFiducials {
	sh := func(v int) int {
		if v < 0 {
			return -1
		}
		return v + base
	}
	out := b
	out.R = b.R + base
	out.QRS = delineation.Wave{On: sh(b.QRS.On), Peak: sh(b.QRS.Peak), Off: sh(b.QRS.Off)}
	out.P = delineation.Wave{On: sh(b.P.On), Peak: sh(b.P.Peak), Off: sh(b.P.Off)}
	out.T = delineation.Wave{On: sh(b.T.On), Peak: sh(b.T.Peak), Off: sh(b.T.Off)}
	return out
}

package core

import "testing"

func TestModeControllerValidation(t *testing.T) {
	if _, err := NewModeController(Mode(99), DegradeConfig{}); err != ErrConfig {
		t.Error("bad start mode accepted")
	}
	if _, err := NewModeController(ModeCS, DegradeConfig{MinMode: ModeDelineation, MaxMode: ModeCS}); err != ErrConfig {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewModeController(ModeCS, DegradeConfig{DowngradeBelow: 0.9, UpgradeAbove: 0.8}); err != ErrConfig {
		t.Error("inverted thresholds accepted")
	}
}

func TestModeControllerDowngradesAndRecovers(t *testing.T) {
	mc, err := NewModeController(ModeCS, DegradeConfig{Window: 2, HoldGood: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Mode() != ModeCS {
		t.Fatalf("start mode %v", mc.Mode())
	}
	// A healthy link holds the mode.
	for i := 0; i < 5; i++ {
		if m, changed := mc.Observe(i, 1.0); changed || m != ModeCS {
			t.Fatalf("healthy link switched mode at %d", i)
		}
	}
	// A bad observation drags the smoothed ratio under 0.85 and the
	// controller downgrades one rung.
	mc.Observe(5, 0.5)
	mc.Observe(6, 0.5)
	if mc.Mode() != ModeDelineation {
		t.Fatalf("degraded link did not downgrade: mode %v", mc.Mode())
	}
	// Default MaxMode stops at delineation.
	for i := 7; i < 12; i++ {
		if m, _ := mc.Observe(i, 0); m != ModeDelineation {
			t.Fatalf("downgrade overshot MaxMode: %v", m)
		}
	}
	// Recovery requires the hold streak before upgrading.
	mc.Observe(12, 1.0)
	if mc.Mode() != ModeDelineation {
		t.Fatal("upgraded without holding")
	}
	found := false
	for i := 13; i < 20; i++ {
		if m, changed := mc.Observe(i, 1.0); changed {
			if m != ModeCS {
				t.Fatalf("recovered to %v, want ModeCS", m)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("sustained good link never upgraded")
	}
	tr := mc.Transitions()
	if len(tr) != 2 || tr[0].From != ModeCS || tr[0].To != ModeDelineation || tr[1].To != ModeCS {
		t.Errorf("transitions %v", tr)
	}
	if tr[0].String() == "" {
		t.Error("empty transition string")
	}
}

func TestModeControllerRespectsBounds(t *testing.T) {
	mc, err := NewModeController(ModeRawStreaming, DegradeConfig{
		Window: 1, MinMode: ModeRawStreaming, MaxMode: ModeAFAlarm, HoldGood: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keep observing a dead link: must walk the whole ladder and stop.
	for i := 0; i < 10; i++ {
		mc.Observe(i, 0)
	}
	if mc.Mode() != ModeAFAlarm {
		t.Errorf("mode %v, want ModeAFAlarm at full degradation", mc.Mode())
	}
	// And climb all the way back.
	for i := 10; i < 30; i++ {
		mc.Observe(i, 1)
	}
	if mc.Mode() != ModeRawStreaming {
		t.Errorf("mode %v, want ModeRawStreaming after recovery", mc.Mode())
	}
}

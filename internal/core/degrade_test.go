package core

import (
	"testing"

	"wbsn/internal/telemetry"
)

func TestModeControllerValidation(t *testing.T) {
	if _, err := NewModeController(Mode(99), DegradeConfig{}); err != ErrConfig {
		t.Error("bad start mode accepted")
	}
	if _, err := NewModeController(ModeCS, DegradeConfig{MinMode: ModeDelineation, MaxMode: ModeCS}); err != ErrConfig {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewModeController(ModeCS, DegradeConfig{DowngradeBelow: 0.9, UpgradeAbove: 0.8}); err != ErrConfig {
		t.Error("inverted thresholds accepted")
	}
}

func TestModeControllerDowngradesAndRecovers(t *testing.T) {
	mc, err := NewModeController(ModeCS, DegradeConfig{Window: 2, HoldGood: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Mode() != ModeCS {
		t.Fatalf("start mode %v", mc.Mode())
	}
	// A healthy link holds the mode.
	for i := 0; i < 5; i++ {
		if m, changed := mc.Observe(i, 1.0); changed || m != ModeCS {
			t.Fatalf("healthy link switched mode at %d", i)
		}
	}
	// A bad observation drags the smoothed ratio under 0.85 and the
	// controller downgrades one rung.
	mc.Observe(5, 0.5)
	mc.Observe(6, 0.5)
	if mc.Mode() != ModeDelineation {
		t.Fatalf("degraded link did not downgrade: mode %v", mc.Mode())
	}
	// Default MaxMode stops at delineation.
	for i := 7; i < 12; i++ {
		if m, _ := mc.Observe(i, 0); m != ModeDelineation {
			t.Fatalf("downgrade overshot MaxMode: %v", m)
		}
	}
	// Recovery requires the hold streak before upgrading.
	mc.Observe(12, 1.0)
	if mc.Mode() != ModeDelineation {
		t.Fatal("upgraded without holding")
	}
	found := false
	for i := 13; i < 20; i++ {
		if m, changed := mc.Observe(i, 1.0); changed {
			if m != ModeCS {
				t.Fatalf("recovered to %v, want ModeCS", m)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("sustained good link never upgraded")
	}
	tr := mc.Transitions()
	if len(tr) != 2 || tr[0].From != ModeCS || tr[0].To != ModeDelineation || tr[1].To != ModeCS {
		t.Errorf("transitions %v", tr)
	}
	if tr[0].String() == "" {
		t.Error("empty transition string")
	}
}

func TestModeControllerRespectsBounds(t *testing.T) {
	mc, err := NewModeController(ModeRawStreaming, DegradeConfig{
		Window: 1, MinMode: ModeRawStreaming, MaxMode: ModeAFAlarm, HoldGood: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keep observing a dead link: must walk the whole ladder and stop.
	for i := 0; i < 10; i++ {
		mc.Observe(i, 0)
	}
	if mc.Mode() != ModeAFAlarm {
		t.Errorf("mode %v, want ModeAFAlarm at full degradation", mc.Mode())
	}
	// And climb all the way back.
	for i := 10; i < 30; i++ {
		mc.Observe(i, 1)
	}
	if mc.Mode() != ModeRawStreaming {
		t.Errorf("mode %v, want ModeRawStreaming after recovery", mc.Mode())
	}
}

// TestModeControllerTelemetryLadderEdges walks the full ladder up and
// back down and checks every edge emits exactly one telemetry event
// with the correct from/to modes — the invariant the mode dashboard
// depends on (a missed or doubled edge would desynchronise the
// current-mode gauge from the controller).
func TestModeControllerTelemetryLadderEdges(t *testing.T) {
	reg := telemetry.NewRegistry()
	mm := telemetry.NewModeMetrics(reg, ModeNames())
	mc, err := NewModeController(ModeRawStreaming, DegradeConfig{
		Window:   1,
		HoldGood: 1,
		MinMode:  ModeRawStreaming,
		MaxMode:  ModeAFAlarm,
	})
	if err != nil {
		t.Fatal(err)
	}
	mc.SetTelemetry(mm)
	if got := mm.Current.Value(); got != int64(ModeRawStreaming) {
		t.Fatalf("current gauge seeded to %d, want %d", got, ModeRawStreaming)
	}

	// Quality 0 forces one upgrade-the-ladder step per observation;
	// quality 1 (with HoldGood=1) one recovery step per observation.
	at := 0
	for i := 0; i < int(ModeAFAlarm); i++ {
		if _, changed := mc.Observe(at, 0); !changed {
			t.Fatalf("observation %d did not climb the ladder", at)
		}
		at++
	}
	for i := 0; i < int(ModeAFAlarm); i++ {
		if _, changed := mc.Observe(at, 1); !changed {
			t.Fatalf("observation %d did not recover", at)
		}
		at++
	}

	wantEdges := 2 * int(ModeAFAlarm)
	if got := mm.Transitions.Value(); got != uint64(wantEdges) {
		t.Fatalf("transition counter %d, want %d", got, wantEdges)
	}
	evs := mm.Events()
	trs := mc.Transitions()
	if len(evs) != wantEdges || len(trs) != wantEdges {
		t.Fatalf("events %d / transitions %d, want %d each", len(evs), len(trs), wantEdges)
	}
	for i, ev := range evs {
		// Expected edge i: up 0->1..3->4, then down 4->3..1->0.
		wantFrom, wantTo := i, i+1
		if i >= int(ModeAFAlarm) {
			wantFrom = 2*int(ModeAFAlarm) - i
			wantTo = wantFrom - 1
		}
		if ev.From != wantFrom || ev.To != wantTo {
			t.Errorf("event %d edge %d->%d, want %d->%d", i, ev.From, ev.To, wantFrom, wantTo)
		}
		if ev.At != trs[i].At || ev.From != int(trs[i].From) || ev.To != int(trs[i].To) {
			t.Errorf("event %d diverges from controller history: %+v vs %+v", i, ev, trs[i])
		}
		if ev.FromName != Mode(ev.From).String() || ev.ToName != Mode(ev.To).String() {
			t.Errorf("event %d names %q->%q do not match modes", i, ev.FromName, ev.ToName)
		}
	}
	// Exactly one hit per directed edge, both directions of every rung.
	for m := int(ModeRawStreaming); m < int(ModeAFAlarm); m++ {
		if got := mm.Edge(m, m+1).Value(); got != 1 {
			t.Errorf("edge %d->%d counter %d, want 1", m, m+1, got)
		}
		if got := mm.Edge(m+1, m).Value(); got != 1 {
			t.Errorf("edge %d->%d counter %d, want 1", m+1, m, got)
		}
	}
	if got := mm.Current.Value(); got != int64(ModeRawStreaming) {
		t.Errorf("current gauge %d after round trip, want %d", got, ModeRawStreaming)
	}
}

package core

import (
	"testing"

	"wbsn/internal/ecg"
	"wbsn/internal/telemetry"
)

// TestAdaptiveStreamLadder degrades a CS node to delineation under a
// failing link and recovers it, checking that rung switches swap the
// executing plan, flush the outgoing rung's tail, and that both rungs
// emit their mode's events.
func TestAdaptiveStreamLadder(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 81, Duration: 20})
	a, err := NewAdaptiveStream(Config{Mode: ModeCS, CSRatio: 60, Seed: 81},
		DegradeConfig{Window: 1, HoldGood: 1})
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.NewSet(telemetry.NewRegistry())
	mm := telemetry.NewModeMetrics(set.Registry, ModeNames())
	a.SetTelemetry(set.Node, mm)
	if a.Mode() != ModeCS {
		t.Fatalf("start mode %v, want %v", a.Mode(), ModeCS)
	}
	csPlan := a.Plan()

	push := func(nSamples, from int) []Event {
		block := make([][]float64, len(rec.Leads))
		for li := range rec.Leads {
			block[li] = rec.Leads[li][from : from+nSamples]
		}
		evs, err := a.PushBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}

	evs := push(1024, 0)
	packets := 0
	for _, e := range evs {
		if e.Kind == EventPacket {
			packets++
		}
	}
	if packets != 2 {
		t.Fatalf("CS rung emitted %d packets over 2 windows, want 2", packets)
	}

	// Push a partial window, then degrade: the switch must flush the
	// outgoing CS rung's tail as a (raw-length) packetless remainder.
	push(100, 1024)
	tail, mode, changed, err := a.Observe(1124, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || mode != ModeDelineation {
		t.Fatalf("Observe(0.2) -> mode %v changed %v, want switch to %v", mode, changed, ModeDelineation)
	}
	for _, e := range tail {
		if e.Kind != EventPacket {
			t.Fatalf("CS tail emitted %v event, want only packets", e.Kind)
		}
	}
	if a.Plan() == csPlan {
		t.Fatal("plan did not change across the rung switch")
	}
	if a.Plan().HasClassifier() {
		t.Fatal("delineation rung's plan carries a classifier")
	}

	// The delineation rung must produce beats from fresh samples.
	evs = push(int(8*256), 1124)
	beats := 0
	for _, e := range evs {
		if e.Kind == EventBeat {
			beats++
		}
	}
	if beats < 4 {
		t.Fatalf("delineation rung emitted %d beats over 8 s, want >= 4", beats)
	}

	// Recover: one good observation (HoldGood=1) steps back down.
	if _, mode, changed, err = a.Observe(3172, 1.0); err != nil {
		t.Fatal(err)
	}
	if !changed || mode != ModeCS {
		t.Fatalf("recovery -> mode %v changed %v, want switch back to %v", mode, changed, ModeCS)
	}
	if a.Plan() != csPlan {
		t.Fatal("recovered rung does not reuse its prebuilt plan")
	}
	if got := len(a.Transitions()); got != 2 {
		t.Fatalf("recorded %d transitions, want 2", got)
	}
	// A steady link must not flush or switch anything.
	if tail, _, changed, _ := a.Observe(3300, 1.0); changed || tail != nil {
		t.Fatalf("steady observation changed=%v tail=%v, want no-op", changed, tail)
	}
}

// TestAdaptiveStreamClassifierRequired checks that an excursion covering
// ModeClassification without a classifier fails at construction, not at
// the first switch.
func TestAdaptiveStreamClassifierRequired(t *testing.T) {
	_, err := NewAdaptiveStream(Config{Mode: ModeCS},
		DegradeConfig{MinMode: ModeCS, MaxMode: ModeClassification})
	if err == nil {
		t.Fatal("NewAdaptiveStream spanning classification without a classifier succeeded")
	}
}

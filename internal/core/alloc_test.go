package core

import (
	"fmt"
	"testing"

	"wbsn/internal/ecg"
	"wbsn/internal/telemetry"
)

// TestStreamPushSteadyStateAllocs is the allocation regression guard for
// the node hot path: once the stream's buffers are warm, pushing samples
// must average well under 2 allocations per Push across every mode
// (chunk-boundary work — the events slice, CS measurement vectors that
// escape into events, delineator bookkeeping — amortises over the hop).
func TestStreamPushSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skipped under -race (pool caching disabled)")
	}
	rec := ecg.Generate(ecg.Config{Seed: 21, Duration: 40})
	cl, err := TrainClassifier([]*ecg.Record{ecg.Generate(ecg.Config{Seed: 22, Duration: 30})}, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"raw", Config{Mode: ModeRawStreaming}},
		{"cs", Config{Mode: ModeCS, CSRatio: 60, Seed: 3}},
		{"delineation", Config{Mode: ModeDelineation}},
		{"classification", Config{Mode: ModeClassification, Classifier: cl}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			node, err := NewNode(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := node.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			hop := streamHop(stream)
			sample := make([]float64, len(rec.Leads))
			pos := 0
			pushOne := func() {
				for li := range sample {
					sample[li] = rec.Leads[li][pos%rec.Len()]
				}
				pos++
				if _, err := stream.Push(sample); err != nil {
					t.Fatal(err)
				}
			}
			// Warm up: several chunks so every scratch buffer, the lead
			// buffers and the delineator pool reach steady state.
			for i := 0; i < 4*hop; i++ {
				pushOne()
			}
			// Each measured run is one hop — exactly one chunk of work.
			allocs := testing.AllocsPerRun(8, func() {
				for i := 0; i < hop; i++ {
					pushOne()
				}
			})
			perPush := allocs / float64(hop)
			t.Logf("%s: %.0f allocs per chunk (%.4f per Push, hop=%d)", tc.name, allocs, perPush, hop)
			if perPush > 2 {
				t.Fatalf("steady-state Push averages %.3f allocs (> 2): %s", perPush, tc.name)
			}
			// Tighter absolute guard so a per-chunk regression (e.g. the
			// chunk header or lead buffers reallocating every drain) cannot
			// hide under the generous per-push budget.
			if allocs > 200 {
				t.Fatalf("chunk processing allocates %.0f times (> 200): %s", allocs, tc.name)
			}
		})
	}
}

// streamHop exposes the stream's hop for test pacing.
func streamHop(s *Stream) int { return s.hop }

// TestStreamBufferCapacityStable verifies the compaction fix: the lead
// buffers must stop growing once the first chunk has been processed, so
// long-running streams do not reallocate per chunk.
func TestStreamBufferCapacityStable(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 23, Duration: 30})
	node, err := NewNode(Config{Mode: ModeDelineation})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Leads[li][:6*stream.chunkLen]
	}
	if _, err := stream.PushBlock(chunk); err != nil {
		t.Fatal(err)
	}
	capAfterWarmup := cap(stream.buf[0])
	for li := range chunk {
		chunk[li] = rec.Leads[li][:stream.chunkLen]
	}
	for r := 0; r < 8; r++ {
		if _, err := stream.PushBlock(chunk); err != nil {
			t.Fatal(err)
		}
		if got := cap(stream.buf[0]); got != capAfterWarmup {
			t.Fatalf("round %d: buffer capacity changed %d -> %d", r, capAfterWarmup, got)
		}
	}
}

// eventsEqual deep-compares two event streams.
func eventsEqual(a, b []Event) error {
	if len(a) != len(b) {
		return fmt.Errorf("event count %d != %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.At != y.At || x.Bytes != y.Bytes {
			return fmt.Errorf("event %d header mismatch: %+v vs %+v", i, x, y)
		}
		if x.Beat != y.Beat {
			return fmt.Errorf("event %d beat mismatch", i)
		}
		if x.AF.AF != y.AF.AF || x.AF.Score != y.AF.Score || x.AF.StartBeat != y.AF.StartBeat {
			return fmt.Errorf("event %d AF mismatch", i)
		}
		if len(x.Measurements) != len(y.Measurements) {
			return fmt.Errorf("event %d lead count mismatch", i)
		}
		for li := range x.Measurements {
			if len(x.Measurements[li]) != len(y.Measurements[li]) {
				return fmt.Errorf("event %d lead %d length mismatch", i, li)
			}
			for j := range x.Measurements[li] {
				if x.Measurements[li][j] != y.Measurements[li][j] {
					return fmt.Errorf("event %d lead %d sample %d not bit-identical", i, li, j)
				}
			}
		}
	}
	return nil
}

// TestStreamResetReplayTwoRecords drives one pooled stream across two
// different records with a Reset in between and checks the second
// record's event stream is bit-identical to a fresh stream's — no state
// (buffers, dedup history, AF windows, scratch) bleeds across patients.
func TestStreamResetReplayTwoRecords(t *testing.T) {
	recA := ecg.Generate(ecg.Config{Seed: 31, Duration: 20})
	recB := ecg.Generate(ecg.Config{Seed: 32, Duration: 20, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	for _, mode := range []Mode{ModeCS, ModeDelineation, ModeAFAlarm} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{Mode: mode, Seed: 9}
			if mode == ModeCS {
				cfg.CSRatio = 60
			}
			node, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			run := func(s *Stream, rec *ecg.Record) []Event {
				events, err := s.PushBlock(rec.Leads)
				if err != nil {
					t.Fatal(err)
				}
				tail, err := s.Flush()
				if err != nil {
					t.Fatal(err)
				}
				return append(events, tail...)
			}
			pooled, err := node.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			run(pooled, recA) // pollute every internal buffer with record A
			pooled.Reset()
			got := run(pooled, recB)

			fresh, err := node.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			want := run(fresh, recB)
			if err := eventsEqual(got, want); err != nil {
				t.Fatalf("reset replay diverged from fresh stream: %v", err)
			}
		})
	}
}

// TestStreamPushInstrumentedAllocs proves the telemetry layer keeps its
// "free when idle, amortised at chunk boundaries" promise: with a full
// metric family attached, (a) per-chunk allocation behaviour stays
// within the same budget as the uninstrumented stream, and (b) mid-chunk
// pushes — the overwhelmingly common case, where the instrumentation
// executes no code at all — allocate exactly zero.
func TestStreamPushInstrumentedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skipped under -race (pool caching disabled)")
	}
	rec := ecg.Generate(ecg.Config{Seed: 41, Duration: 40})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"raw", Config{Mode: ModeRawStreaming}},
		{"cs", Config{Mode: ModeCS, CSRatio: 60, Seed: 3}},
		{"delineation", Config{Mode: ModeDelineation}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			node, err := NewNode(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := node.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			set := telemetry.NewSet(reg)
			stream.SetTelemetry(set.Node)
			hop := streamHop(stream)
			sample := make([]float64, len(rec.Leads))
			pos := 0
			pushOne := func() {
				for li := range sample {
					sample[li] = rec.Leads[li][pos%rec.Len()]
				}
				pos++
				if _, err := stream.Push(sample); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 4*hop; i++ {
				pushOne()
			}
			// Same per-chunk budget as the uninstrumented guard above.
			allocs := testing.AllocsPerRun(8, func() {
				for i := 0; i < hop; i++ {
					pushOne()
				}
			})
			perPush := allocs / float64(hop)
			t.Logf("%s instrumented: %.0f allocs per chunk (%.4f per Push)", tc.name, allocs, perPush)
			if perPush > 2 {
				t.Fatalf("instrumented steady-state Push averages %.3f allocs (> 2): %s", perPush, tc.name)
			}
			if allocs > 200 {
				t.Fatalf("instrumented chunk processing allocates %.0f times (> 200): %s", allocs, tc.name)
			}
			// Strict zero-allocation guard for mid-chunk pushes: align to
			// the just-drained state (the buffer holds exactly the
			// chunkLen-hop overlap), then measure hop-1 pushes — one short
			// of the next drain, so telemetry must do literally nothing.
			// AllocsPerRun calls the body runs+1 times.
			for len(stream.buf[0]) != stream.chunkLen-stream.hop {
				pushOne()
			}
			if hop > 2 {
				if a := testing.AllocsPerRun(hop-2, pushOne); a != 0 {
					t.Fatalf("mid-chunk instrumented Push allocates %.2f/op, want exactly 0", a)
				}
			}
			// The attached family actually observed the traffic.
			if set.Node.Chunks.Value() == 0 || set.Node.Samples.Value() == 0 {
				t.Error("node metrics not populated")
			}
			if set.Stages.Stage(telemetry.StageAcquire).Count() == 0 {
				t.Error("acquire stage histogram empty")
			}
		})
	}
}

//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because it defeats sync.Pool
// caching in the downstream kernels (pooled items are dropped to widen
// the race surface) and inflates every count.
const raceEnabled = true

package core

import (
	"fmt"

	"wbsn/internal/telemetry"
)

// This file implements channel-quality-driven graceful mode
// degradation: the Figure 1 ladder traversed in reverse. When the
// radio link degrades, the node climbs to a higher abstraction level
// (e.g. ModeCS → ModeDelineation) — fewer transmitted bytes mean fewer
// frames exposed to the failing channel and fewer retransmissions —
// and climbs back down once the link recovers, restoring the richer
// data product. This mirrors the adaptive IoMT node of Scrugli et al.
// (arXiv:2106.06498), which switches operating modes as measured
// conditions change.

// DegradeConfig parameterises the ModeController.
type DegradeConfig struct {
	// Window is how many delivery-ratio observations are averaged per
	// decision (default 4).
	Window int
	// DowngradeBelow is the smoothed delivery ratio under which the
	// node moves one rung up the ladder (default 0.85).
	DowngradeBelow float64
	// UpgradeAbove is the smoothed delivery ratio the link must hold —
	// for HoldGood consecutive decisions — before the node moves one
	// rung back down toward MinMode (defaults 0.97 and 3).
	UpgradeAbove float64
	HoldGood     int
	// MinMode and MaxMode bound the excursion: MinMode is the
	// preferred (data-richest) mode, MaxMode the deepest degradation
	// allowed (default ModeDelineation — fiducials remain clinically
	// useful when the link cannot carry waveforms).
	MinMode Mode
	MaxMode Mode
}

func (c DegradeConfig) withDefaults(start Mode) DegradeConfig {
	out := c
	if out.Window <= 0 {
		out.Window = 4
	}
	if out.DowngradeBelow <= 0 {
		out.DowngradeBelow = 0.85
	}
	if out.UpgradeAbove <= 0 {
		out.UpgradeAbove = 0.97
	}
	if out.HoldGood <= 0 {
		out.HoldGood = 3
	}
	if out.MinMode == 0 && out.MaxMode == 0 {
		out.MinMode = start
		out.MaxMode = ModeDelineation
		if out.MaxMode < start {
			out.MaxMode = start
		}
	}
	return out
}

// ModeTransition records one mode change and the link quality that
// caused it.
type ModeTransition struct {
	// At is the caller-supplied position (e.g. absolute sample index).
	At int
	// From and To are the modes before and after the switch.
	From, To Mode
	// Quality is the smoothed delivery ratio at the decision.
	Quality float64
}

// String renders the transition for logs.
func (t ModeTransition) String() string {
	return fmt.Sprintf("at %d: %s -> %s (delivery %.2f)", t.At, t.From, t.To, t.Quality)
}

// ModeController turns link delivery-ratio observations into mode
// switches. Feed it one observation per reporting interval (e.g. the
// fraction of windows delivered within the ARQ retry budget) and run
// the node at whatever Mode() returns.
type ModeController struct {
	cfg         DegradeConfig
	mode        Mode
	history     []float64
	goodStreak  int
	transitions []ModeTransition
	// tel, when set, receives exactly one event per ladder transition
	// (edge counter, current-mode gauge, bounded event history).
	tel *telemetry.ModeMetrics
}

// ModeNames returns the display names of every mode in ladder order —
// the argument telemetry.NewModeMetrics wants so edge counters carry
// readable names.
func ModeNames() []string {
	names := make([]string, 0, int(ModeAFAlarm)+1)
	for m := ModeRawStreaming; m <= ModeAFAlarm; m++ {
		names = append(names, m.String())
	}
	return names
}

// SetTelemetry attaches (or detaches, with nil) the mode metric family
// and seeds the current-mode gauge. Every subsequent ladder edge
// records exactly one transition event.
func (mc *ModeController) SetTelemetry(mm *telemetry.ModeMetrics) {
	mc.tel = mm
	if mm != nil {
		mm.Current.Set(int64(mc.mode))
	}
}

// NewModeController builds a controller starting at the given mode.
func NewModeController(start Mode, cfg DegradeConfig) (*ModeController, error) {
	if start < ModeRawStreaming || start > ModeAFAlarm {
		return nil, ErrConfig
	}
	c := cfg.withDefaults(start)
	if c.MinMode > c.MaxMode || start < c.MinMode || start > c.MaxMode {
		return nil, ErrConfig
	}
	if c.DowngradeBelow > c.UpgradeAbove {
		return nil, ErrConfig
	}
	return &ModeController{cfg: c, mode: start}, nil
}

// Mode returns the controller's current operating mode.
func (mc *ModeController) Mode() Mode { return mc.mode }

// Transitions returns every mode change so far, in order.
func (mc *ModeController) Transitions() []ModeTransition { return mc.transitions }

// Observe feeds one delivery-ratio sample (0..1) tagged with a stream
// position and returns the mode to use next plus whether it changed.
func (mc *ModeController) Observe(at int, deliveryRatio float64) (Mode, bool) {
	if deliveryRatio < 0 {
		deliveryRatio = 0
	}
	if deliveryRatio > 1 {
		deliveryRatio = 1
	}
	mc.history = append(mc.history, deliveryRatio)
	if len(mc.history) > mc.cfg.Window {
		mc.history = mc.history[len(mc.history)-mc.cfg.Window:]
	}
	sum := 0.0
	for _, v := range mc.history {
		sum += v
	}
	avg := sum / float64(len(mc.history))
	switch {
	case avg < mc.cfg.DowngradeBelow && mc.mode < mc.cfg.MaxMode:
		mc.goodStreak = 0
		return mc.switchTo(at, mc.mode+1, avg), true
	case avg >= mc.cfg.UpgradeAbove:
		mc.goodStreak++
		if mc.goodStreak >= mc.cfg.HoldGood && mc.mode > mc.cfg.MinMode {
			mc.goodStreak = 0
			// Recovery resets the smoothing window so one good burst
			// does not cascade straight back to MinMode.
			mc.history = mc.history[:0]
			return mc.switchTo(at, mc.mode-1, avg), true
		}
	default:
		mc.goodStreak = 0
	}
	return mc.mode, false
}

func (mc *ModeController) switchTo(at int, to Mode, quality float64) Mode {
	mc.transitions = append(mc.transitions, ModeTransition{At: at, From: mc.mode, To: to, Quality: quality})
	mc.tel.RecordTransition(at, int(mc.mode), int(to), quality)
	mc.mode = to
	return to
}

package core

import (
	"wbsn/internal/graph"
	"wbsn/internal/telemetry"
)

// AdaptiveStream runs the Figure 1 ladder on-line: one node (and one
// compiled execution plan) is prebuilt per rung of the controller's
// [MinMode, MaxMode] excursion, and link-quality observations move the
// active rung up and down the ladder. Because every rung's plan is
// compiled once at construction, a mode switch costs a stream reset —
// no graph rebuild, no allocation of work buffers — which is what makes
// degradation viable mid-acquisition on the node.
type AdaptiveStream struct {
	ctrl  *ModeController
	rungs map[Mode]*Stream
	cur   *Stream
}

// NewAdaptiveStream prebuilds a node and stream for every rung the
// controller may visit. The base configuration's Mode is the starting
// rung; its other fields are shared by every rung (so a classifier must
// be supplied whenever ModeClassification lies inside the excursion).
func NewAdaptiveStream(cfg Config, dc DegradeConfig) (*AdaptiveStream, error) {
	ctrl, err := NewModeController(cfg.Mode, dc)
	if err != nil {
		return nil, err
	}
	a := &AdaptiveStream{ctrl: ctrl, rungs: make(map[Mode]*Stream)}
	for m := ctrl.cfg.MinMode; m <= ctrl.cfg.MaxMode; m++ {
		c := cfg
		c.Mode = m
		node, err := NewNode(c)
		if err != nil {
			return nil, err
		}
		st, err := node.NewStream()
		if err != nil {
			return nil, err
		}
		a.rungs[m] = st
	}
	a.cur = a.rungs[ctrl.Mode()]
	return a, nil
}

// Mode returns the active rung.
func (a *AdaptiveStream) Mode() Mode { return a.ctrl.Mode() }

// Transitions returns every rung change so far, in order.
func (a *AdaptiveStream) Transitions() []ModeTransition { return a.ctrl.Transitions() }

// Plan returns the compiled execution plan of the active rung.
func (a *AdaptiveStream) Plan() *graph.Plan { return a.cur.node.Plan() }

// SetTelemetry attaches the node metric family to every rung's stream
// and the mode metric family (either may be nil) to the controller.
func (a *AdaptiveStream) SetTelemetry(nm *telemetry.NodeMetrics, mm *telemetry.ModeMetrics) {
	for _, st := range a.rungs {
		st.SetTelemetry(nm)
	}
	a.ctrl.SetTelemetry(mm)
}

// Push appends one multi-lead sample to the active rung.
func (a *AdaptiveStream) Push(sample []float64) ([]Event, error) {
	return a.cur.Push(sample)
}

// PushBlock appends a lead-major block to the active rung.
func (a *AdaptiveStream) PushBlock(block [][]float64) ([]Event, error) {
	return a.cur.PushBlock(block)
}

// Flush processes whatever remains buffered in the active rung.
func (a *AdaptiveStream) Flush() ([]Event, error) {
	return a.cur.Flush()
}

// Observe feeds one link delivery-ratio sample (0..1) tagged with a
// stream position. When the controller decides to change rungs, the
// outgoing rung is flushed — its tail events are returned so no buffered
// samples are silently dropped — and the incoming rung starts fresh
// (events it emits are indexed from the switch point).
func (a *AdaptiveStream) Observe(at int, deliveryRatio float64) ([]Event, Mode, bool, error) {
	mode, changed := a.ctrl.Observe(at, deliveryRatio)
	if !changed {
		return nil, mode, false, nil
	}
	tail, err := a.cur.Flush()
	if err != nil {
		return nil, mode, true, err
	}
	a.cur = a.rungs[mode]
	a.cur.Reset()
	return tail, mode, true, nil
}

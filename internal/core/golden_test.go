package core

import (
	"fmt"
	"testing"

	"wbsn/internal/ecg"
	"wbsn/internal/telemetry"
)

// The golden suite pins the compiled-plan stream to the legacy
// hard-wired chain (legacy_ref_test.go): for every ladder mode and
// config permutation the two must produce byte-identical event streams
// and identical telemetry counts. fmt's %#v rendering of float64 is
// bijective (shortest round-trip form, signed zero preserved), so equal
// strings mean bit-identical events.

// eventSource is the surface shared by Stream and legacyStream.
type eventSource interface {
	PushBlock([][]float64) ([]Event, error)
	Flush() ([]Event, error)
	Reset()
	SetTelemetry(*telemetry.NodeMetrics)
}

// feed replays leads through the source in fixed-size blocks plus a
// final flush.
func feed(t *testing.T, s eventSource, leads [][]float64, block int) []Event {
	t.Helper()
	var events []Event
	n := len(leads[0])
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		chunk := make([][]float64, len(leads))
		for i := range chunk {
			chunk[i] = leads[i][start:end]
		}
		evs, err := s.PushBlock(chunk)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	evs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(events, evs...)
}

// runGolden pushes the same signal through the compiled stream and the
// legacy chain and requires identical events and telemetry counts.
func runGolden(t *testing.T, cfg Config, leads [][]float64, block int) {
	t.Helper()
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	legacy := newLegacyStream(node)
	setNew := telemetry.NewSet(telemetry.NewRegistry())
	setOld := telemetry.NewSet(telemetry.NewRegistry())
	compiled.SetTelemetry(setNew.Node)
	legacy.SetTelemetry(setOld.Node)

	evNew := feed(t, compiled, leads, block)
	evOld := feed(t, legacy, leads, block)

	if len(evNew) != len(evOld) {
		t.Fatalf("compiled emitted %d events, legacy %d", len(evNew), len(evOld))
	}
	for i := range evNew {
		got := fmt.Sprintf("%#v", evNew[i])
		want := fmt.Sprintf("%#v", evOld[i])
		if got != want {
			t.Fatalf("event %d diverged\ncompiled: %s\nlegacy:   %s", i, got, want)
		}
	}
	counters := []struct {
		name string
		a, b *telemetry.Counter
	}{
		{"samples", setNew.Node.Samples, setOld.Node.Samples},
		{"chunks", setNew.Node.Chunks, setOld.Node.Chunks},
		{"events", setNew.Node.Events, setOld.Node.Events},
		{"beats", setNew.Node.Beats, setOld.Node.Beats},
		{"packets", setNew.Node.Packets, setOld.Node.Packets},
		{"tx_bytes", setNew.Node.TxBytes, setOld.Node.TxBytes},
	}
	for _, c := range counters {
		if c.a.Value() != c.b.Value() {
			t.Errorf("counter %s: compiled %d, legacy %d", c.name, c.a.Value(), c.b.Value())
		}
	}
	for i := 0; i < telemetry.NumStages; i++ {
		st := telemetry.Stage(i)
		if g, w := setNew.Stages.Stage(st).Count(), setOld.Stages.Stage(st).Count(); g != w {
			t.Errorf("stage %v lap count: compiled %d, legacy %d", st, g, w)
		}
	}
}

// corruptLeads returns a copy of the leads with every lead but the
// first flattened, so SQI gating drops them.
func corruptLeads(leads [][]float64) [][]float64 {
	out := make([][]float64, len(leads))
	for li := range leads {
		out[li] = append([]float64(nil), leads[li]...)
		if li > 0 {
			for i := range out[li] {
				out[li][i] = 0.001
			}
		}
	}
	return out
}

func TestGoldenBitIdentity(t *testing.T) {
	// 21.3 s at 256 Hz: not a multiple of the CS window or the analysis
	// hop, so every mode exercises a partial trailing flush chunk.
	rec := ecg.Generate(ecg.Config{Seed: 42, Duration: 21.3, Noise: ecg.NoiseConfig{EMG: 0.01}})
	clean := rec.Leads
	corrupted := corruptLeads(clean)
	train := ecg.Generate(ecg.Config{Seed: 43, Duration: 20})
	cls, err := TrainClassifier([]*ecg.Record{train}, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	afRec := ecg.Generate(ecg.Config{Seed: 44, Duration: 60, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})

	cases := []struct {
		name  string
		cfg   Config
		leads [][]float64
		block int
	}{
		{"raw", Config{Mode: ModeRawStreaming}, clean, 257},
		{"cs", Config{Mode: ModeCS, CSRatio: 60, Seed: 7}, clean, 511},
		{"cs-quant8", Config{Mode: ModeCS, CSRatio: 60, QuantBits: 8, Seed: 7}, clean, 512},
		{"delineation", Config{Mode: ModeDelineation}, clean, 64},
		{"delineation-gated", Config{Mode: ModeDelineation, GateLeads: true}, corrupted, 257},
		{"delineation-gated-clean", Config{Mode: ModeDelineation, GateLeads: true}, clean, 128},
		{"delineation-nofilter", Config{Mode: ModeDelineation, DisableFilter: true}, clean, 128},
		{"classification", Config{Mode: ModeClassification, Classifier: cls}, clean, 256},
		{"classification-gated", Config{Mode: ModeClassification, Classifier: cls, GateLeads: true}, corrupted, 300},
		{"af-alarm", Config{Mode: ModeAFAlarm}, afRec.Leads, 128},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runGolden(t, c.cfg, c.leads, c.block)
		})
	}
}

// TestStreamEdgeCasesMatchLegacy pins the buffer-management corners on
// both paths: zero-length blocks, Flush on an empty buffer (fresh, after
// Reset, and twice in a row), and a partial trailing chunk.
func TestStreamEdgeCasesMatchLegacy(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 45, Duration: 6})
	for _, mode := range []Mode{ModeRawStreaming, ModeCS, ModeDelineation} {
		t.Run(mode.String(), func(t *testing.T) {
			node, err := NewNode(Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := node.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			legacy := newLegacyStream(node)
			for _, s := range []eventSource{compiled, legacy} {
				empty := make([][]float64, len(rec.Leads))
				for i := range empty {
					empty[i] = []float64{}
				}
				if evs, err := s.PushBlock(empty); err != nil || len(evs) != 0 {
					t.Fatalf("zero-length block: events %v err %v, want none", evs, err)
				}
				if evs, err := s.Flush(); err != nil || len(evs) != 0 {
					t.Fatalf("flush of empty stream: events %v err %v, want none", evs, err)
				}
			}
			// Partial trailing chunk: 700 samples is 1 CS window + 188, or
			// a single short analysis chunk; both paths must agree on the
			// flush events.
			part := make([][]float64, len(rec.Leads))
			for i := range part {
				part[i] = rec.Leads[i][:700]
			}
			evNew, err := compiled.PushBlock(part)
			if err != nil {
				t.Fatal(err)
			}
			evOld, err := legacy.PushBlock(part)
			if err != nil {
				t.Fatal(err)
			}
			fNew, err := compiled.Flush()
			if err != nil {
				t.Fatal(err)
			}
			fOld, err := legacy.Flush()
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%#v%#v", evNew, fNew)
			want := fmt.Sprintf("%#v%#v", evOld, fOld)
			if got != want {
				t.Fatalf("partial-chunk events diverged\ncompiled: %s\nlegacy:   %s", got, want)
			}
			// Flush right after Reset (and a second Flush) stays silent.
			compiled.Reset()
			legacy.Reset()
			for _, s := range []eventSource{compiled, legacy} {
				for i := 0; i < 2; i++ {
					if evs, err := s.Flush(); err != nil || len(evs) != 0 {
						t.Fatalf("flush %d after reset: events %v err %v, want none", i, evs, err)
					}
				}
			}
		})
	}
}

// TestFilterCombineSingleLap pins the satellite fix: with lead gating
// dropping all but one lead, the fused filter+combine stage must record
// exactly one StageFilter lap per chunk — a single clock reading per
// boundary (DESIGN §10), no duplicate timing at the filter->combine
// seam.
func TestFilterCombineSingleLap(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 46, Duration: 16})
	node, err := NewNode(Config{Mode: ModeDelineation, GateLeads: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.NewSet(telemetry.NewRegistry())
	s.SetTelemetry(set.Node)
	feed(t, s, corruptLeads(rec.Leads), 256)
	chunks := set.Node.Chunks.Value()
	if chunks == 0 {
		t.Fatal("no chunks processed")
	}
	if laps := set.Stages.Stage(telemetry.StageFilter).Count(); laps != chunks {
		t.Errorf("StageFilter laps %d over %d chunks, want exactly one per chunk", laps, chunks)
	}
	if laps := set.Stages.Stage(telemetry.StageDelineate).Count(); laps != chunks {
		t.Errorf("StageDelineate laps %d over %d chunks, want exactly one per chunk", laps, chunks)
	}
}

package core

import (
	"testing"

	"wbsn/internal/ecg"
)

func testRecord(seed int64, dur float64) *ecg.Record {
	return ecg.Generate(ecg.Config{Seed: seed, Duration: dur, Noise: ecg.NoiseConfig{EMG: 0.015}})
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Mode: Mode(99)}); err != ErrConfig {
		t.Error("unknown mode should fail")
	}
	if _, err := NewNode(Config{Mode: ModeClassification}); err != ErrNoClassifier {
		t.Error("classification without classifier should fail")
	}
	n, err := NewNode(Config{Mode: ModeCS})
	if err != nil {
		t.Fatal(err)
	}
	if n.Config().Fs != 256 || n.Config().CSRatio != 65.9 {
		t.Error("defaults not applied")
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeRawStreaming:   "raw-streaming",
		ModeCS:             "compressed-sensing",
		ModeDelineation:    "delineation",
		ModeClassification: "classification",
		ModeAFAlarm:        "af-alarm",
		Mode(42):           "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestRawStreamingBandwidth(t *testing.T) {
	rec := testRecord(1, 30)
	n, _ := NewNode(Config{Mode: ModeRawStreaming})
	res, err := n.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	// 3 leads × 256 Hz × 12 bits = 1152 B/s.
	if res.TxBytesPerSecond < 1100 || res.TxBytesPerSecond > 1200 {
		t.Errorf("raw bandwidth %.0f B/s, want ~1152", res.TxBytesPerSecond)
	}
	if res.Energy.RadioJ <= 0 || res.Energy.SampleJ <= 0 {
		t.Error("energy shares missing")
	}
	if res.Energy.CompJ != 0 {
		t.Error("raw streaming should not charge compression energy")
	}
}

func TestCSReducesBandwidth(t *testing.T) {
	rec := testRecord(2, 30)
	raw, _ := NewNode(Config{Mode: ModeRawStreaming})
	csn, _ := NewNode(Config{Mode: ModeCS})
	rr, err := raw.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := csn.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rc.TxBytesPerSecond / rr.TxBytesPerSecond
	// CR 65.9% -> ~34% of the raw bytes (windowing quantisation aside).
	if ratio < 0.25 || ratio > 0.45 {
		t.Errorf("CS bandwidth ratio %.3f, want ~0.34", ratio)
	}
	if rc.Energy.CompJ <= 0 {
		t.Error("CS must charge compression energy")
	}
	if rc.Energy.TotalJ() >= rr.Energy.TotalJ() {
		t.Error("CS should reduce total node energy (Figure 6)")
	}
}

func TestDelineationModeEmitsBeats(t *testing.T) {
	rec := testRecord(3, 30)
	n, _ := NewNode(Config{Mode: ModeDelineation})
	res, err := n.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beats) < len(rec.Beats)-2 || len(res.Beats) > len(rec.Beats)+2 {
		t.Errorf("delineated %d beats, truth %d", len(res.Beats), len(rec.Beats))
	}
	// 20 bytes per beat at ~1.2 beats/s: tens of bytes per second.
	if res.TxBytesPerSecond > 60 {
		t.Errorf("delineation bandwidth %.1f B/s too high", res.TxBytesPerSecond)
	}
	for _, b := range res.Beats {
		if b.Label != -1 {
			t.Error("delineation mode should not label beats")
		}
	}
}

func TestClassificationMode(t *testing.T) {
	train := ecg.GenerateSet(ecg.Config{
		Duration: 90,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.1, APBRate: 0.05},
	}, 800, 3)
	cl, err := TrainClassifier(train, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := ecg.Generate(ecg.Config{Seed: 900, Duration: 60, Rhythm: ecg.RhythmConfig{PVCRate: 0.1}})
	n, err := NewNode(Config{Mode: ModeClassification, Classifier: cl})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	labelled := 0
	correctV := 0
	totalV := 0
	for i, b := range res.Beats {
		if b.Label >= 0 {
			labelled++
		}
		_ = i
	}
	if labelled < len(res.Beats)*8/10 {
		t.Errorf("only %d/%d beats labelled", labelled, len(res.Beats))
	}
	// Align detected beats to truth by nearest R and check PVC recall.
	for _, tb := range rec.Beats {
		if tb.Label != ecg.LabelPVC {
			continue
		}
		totalV++
		for _, db := range res.Beats {
			d := db.Fiducials.R - tb.Fid.RPeak
			if d < 0 {
				d = -d
			}
			if d <= 10 && db.Label == int(ecg.LabelPVC) {
				correctV++
				break
			}
		}
	}
	if totalV > 0 && float64(correctV)/float64(totalV) < 0.7 {
		t.Errorf("node-level PVC recall %d/%d", correctV, totalV)
	}
}

func TestAFAlarmMode(t *testing.T) {
	n, err := NewNode(Config{Mode: ModeAFAlarm})
	if err != nil {
		t.Fatal(err)
	}
	nsr := testRecord(4, 60)
	resN, err := n.Process(nsr)
	if err != nil {
		t.Fatal(err)
	}
	if resN.AFAlarm {
		t.Error("NSR record raised an AF alarm")
	}
	afRec := ecg.Generate(ecg.Config{Seed: 5, Duration: 60, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	resA, err := n.Process(afRec)
	if err != nil {
		t.Fatal(err)
	}
	if !resA.AFAlarm {
		t.Error("AF record did not raise an alarm")
	}
	if len(resA.AFDecisions) == 0 {
		t.Error("no AF decisions recorded")
	}
	// Alarm mode transmits almost nothing.
	if resA.TxBytesPerSecond > 5 {
		t.Errorf("AF-alarm bandwidth %.2f B/s", resA.TxBytesPerSecond)
	}
}

func TestProcessRejectsCorruptRecord(t *testing.T) {
	n, _ := NewNode(Config{Mode: ModeRawStreaming})
	bad := &ecg.Record{}
	if _, err := n.Process(bad); err == nil {
		t.Error("empty record should fail validation")
	}
}

func TestLadderMonotonicity(t *testing.T) {
	// The Figure 1 claim: bandwidth and power fall as abstraction rises.
	rec := ecg.Generate(ecg.Config{Seed: 7, Duration: 60, Rhythm: ecg.RhythmConfig{PVCRate: 0.05}})
	rungs, err := Ladder(rec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rungs) != 5 {
		t.Fatalf("ladder has %d rungs", len(rungs))
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i].TxBytesPerSecond >= rungs[i-1].TxBytesPerSecond {
			t.Errorf("bandwidth did not fall from %s (%.1f) to %s (%.1f)",
				rungs[i-1].Mode, rungs[i-1].TxBytesPerSecond,
				rungs[i].Mode, rungs[i].TxBytesPerSecond)
		}
	}
	// Battery lifetime grows up the ladder; the top rungs must beat a
	// week (the SmartCardia claim).
	if rungs[0].BatteryLifetimeH >= rungs[len(rungs)-1].BatteryLifetimeH {
		t.Error("battery lifetime should grow with abstraction")
	}
	if rungs[2].BatteryLifetimeH < 7*24 {
		t.Errorf("delineation-mode lifetime %.0f h, want >= one week", rungs[2].BatteryLifetimeH)
	}
}

package core

import (
	"testing"

	"wbsn/internal/ecg"
)

// pushRecord feeds a whole record through a stream in blocks and returns
// all events including the flush.
func pushRecord(t *testing.T, s *Stream, rec *ecg.Record, block int) []Event {
	t.Helper()
	var events []Event
	n := rec.Len()
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		chunk := make([][]float64, len(rec.Leads))
		for i := range chunk {
			chunk[i] = rec.Leads[i][start:end]
		}
		evs, err := s.PushBlock(chunk)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	evs, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(events, evs...)
}

func TestStreamValidation(t *testing.T) {
	node, _ := NewNode(Config{Mode: ModeRawStreaming})
	s, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]float64{1}); err != ErrStream {
		t.Error("wrong lead count should fail")
	}
	if _, err := s.PushBlock([][]float64{{1}, {1}}); err != ErrStream {
		t.Error("wrong block lead count should fail")
	}
	if _, err := s.PushBlock([][]float64{{1, 2}, {1}, {1, 2}}); err != ErrStream {
		t.Error("ragged block should fail")
	}
}

func TestStreamRawPacketisation(t *testing.T) {
	node, _ := NewNode(Config{Mode: ModeRawStreaming})
	s, _ := node.NewStream()
	rec := ecg.Generate(ecg.Config{Seed: 1, Duration: 10})
	events := pushRecord(t, s, rec, 100)
	if len(events) == 0 {
		t.Fatal("no packets emitted")
	}
	total := 0
	for _, e := range events {
		if e.Kind != EventPacket {
			t.Fatal("raw stream should only emit packets")
		}
		total += e.Bytes
	}
	// Whole-record processing gives the same byte count.
	res, err := node.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	if diff := total - res.TxBytes; diff < -100 || diff > 100 {
		t.Errorf("streamed bytes %d vs batch %d", total, res.TxBytes)
	}
}

func TestStreamCSPacketisation(t *testing.T) {
	node, _ := NewNode(Config{Mode: ModeCS})
	s, _ := node.NewStream()
	rec := ecg.Generate(ecg.Config{Seed: 2, Duration: 10})
	events := pushRecord(t, s, rec, 257)
	wantWindows := rec.Len() / node.Config().CSWindow
	if len(events) != wantWindows {
		t.Errorf("got %d CS packets, want %d", len(events), wantWindows)
	}
	for _, e := range events {
		if e.Bytes <= 0 {
			t.Error("empty CS packet")
		}
	}
}

func TestStreamBeatsMatchBatch(t *testing.T) {
	node, _ := NewNode(Config{Mode: ModeDelineation})
	s, _ := node.NewStream()
	rec := ecg.Generate(ecg.Config{Seed: 3, Duration: 30})
	events := pushRecord(t, s, rec, 64)
	var streamed []int
	for _, e := range events {
		if e.Kind != EventBeat {
			continue
		}
		streamed = append(streamed, e.At)
	}
	res, err := node.Process(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Every batch beat must be matched by a streamed beat within 3
	// samples; no large surplus.
	matched := 0
	for _, b := range res.Beats {
		for _, r := range streamed {
			d := r - b.Fiducials.R
			if d < 0 {
				d = -d
			}
			if d <= 3 {
				matched++
				break
			}
		}
	}
	if matched < len(res.Beats)-1 {
		t.Errorf("streamed beats matched %d/%d batch beats", matched, len(res.Beats))
	}
	if len(streamed) > len(res.Beats)+2 {
		t.Errorf("streamed %d beats vs batch %d (duplicates?)", len(streamed), len(res.Beats))
	}
	// Events are time-ordered and strictly increasing.
	for i := 1; i < len(streamed); i++ {
		if streamed[i] <= streamed[i-1] {
			t.Error("streamed beats out of order")
		}
	}
}

func TestStreamAFEvents(t *testing.T) {
	node, _ := NewNode(Config{Mode: ModeAFAlarm})
	s, _ := node.NewStream()
	rec := ecg.Generate(ecg.Config{Seed: 4, Duration: 90, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	events := pushRecord(t, s, rec, 128)
	afEvents := 0
	afPositive := 0
	for _, e := range events {
		if e.Kind == EventAF {
			afEvents++
			if e.AF.AF {
				afPositive++
			}
		}
	}
	if afEvents == 0 {
		t.Fatal("no AF decisions emitted")
	}
	if afPositive < afEvents/2 {
		t.Errorf("only %d/%d streamed windows voted AF on an AF record", afPositive, afEvents)
	}
}

func TestStreamSampleBySample(t *testing.T) {
	// Push one sample at a time: identical behaviour, just slower.
	node, _ := NewNode(Config{Mode: ModeCS})
	s, _ := node.NewStream()
	rec := ecg.Generate(ecg.Config{Seed: 5, Duration: 4})
	var packets int
	for i := 0; i < rec.Len(); i++ {
		sample := make([]float64, len(rec.Leads))
		for li := range sample {
			sample[li] = rec.Leads[li][i]
		}
		evs, err := s.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		packets += len(evs)
	}
	if want := rec.Len() / node.Config().CSWindow; packets != want {
		t.Errorf("sample-by-sample emitted %d packets, want %d", packets, want)
	}
}

func TestStreamQuantizedCS(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 6, Duration: 8})
	run := func(bits int) (bytes int, meas [][]float64) {
		node, _ := NewNode(Config{Mode: ModeCS, QuantBits: bits, Seed: 3})
		s, _ := node.NewStream()
		chunk := make([][]float64, len(rec.Leads))
		for li := range chunk {
			chunk[li] = rec.Clean[li]
		}
		events, err := s.PushBlock(chunk)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			bytes += e.Bytes
			meas = e.Measurements
		}
		return bytes, meas
	}
	bFull, mFull := run(0)
	bQ8, mQ8 := run(8)
	// 8-bit payload is two thirds of the 12-bit payload.
	if bQ8 >= bFull {
		t.Errorf("8-bit payload %d not smaller than 12-bit %d", bQ8, bFull)
	}
	// Quantisation changes measurement values but only slightly.
	var maxRel float64
	for li := range mFull {
		scale := 0.0
		for _, v := range mFull[li] {
			if a := v; a < 0 {
				v = -v
			}
			if v > scale {
				scale = v
			}
		}
		for i := range mFull[li] {
			d := mQ8[li][i] - mFull[li][i]
			if d < 0 {
				d = -d
			}
			if rel := d / scale; rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel == 0 {
		t.Error("quantisation had no effect on the measurements")
	}
	if maxRel > 0.01 {
		t.Errorf("8-bit quantisation error %.4f of full scale, want < 1%%", maxRel)
	}
}

package core

import "wbsn/internal/ecg"

// This file computes the Figure 1 ladder: the transmitted bandwidth and
// estimated node power at every abstraction level for the same input,
// quantifying the paper's central trade — "on-node digital signal
// processing increases the energy efficiency of cardiac monitoring by
// rising the abstraction level and decreasing the bandwidth of
// transmitted data".

// LadderRung is one abstraction level's cost summary.
type LadderRung struct {
	Mode             Mode
	TxBytesPerSecond float64
	AvgPowerW        float64
	BatteryLifetimeH float64
}

// Ladder processes the record at every abstraction level and returns one
// rung per mode, in ladder order. classifierSeed trains a classifier on
// the record itself when the classification rung is requested (adequate
// for bandwidth accounting; deployment would train off-line).
func Ladder(rec *ecg.Record, classifierSeed int64) ([]LadderRung, error) {
	cl, err := TrainClassifier([]*ecg.Record{rec}, rec.Fs, classifierSeed)
	if err != nil {
		return nil, err
	}
	modes := []Mode{ModeRawStreaming, ModeCS, ModeDelineation, ModeClassification, ModeAFAlarm}
	var out []LadderRung
	for _, m := range modes {
		cfg := Config{Mode: m, Fs: rec.Fs, Leads: len(rec.Leads)}
		if m == ModeClassification {
			cfg.Classifier = cl
		}
		node, err := NewNode(cfg)
		if err != nil {
			return nil, err
		}
		res, err := node.Process(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, LadderRung{
			Mode:             m,
			TxBytesPerSecond: res.TxBytesPerSecond,
			AvgPowerW:        res.EnergyAvgPowerW,
			BatteryLifetimeH: res.BatteryLifetimeH,
		})
	}
	return out, nil
}

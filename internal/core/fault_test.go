package core

import (
	"errors"
	"math"
	"testing"

	"wbsn/internal/delineation"
	"wbsn/internal/ecg"
	"wbsn/internal/link"
)

func TestConfigRejectsNonFiniteFields(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	bad := []Config{
		{Mode: ModeCS, Fs: nan},
		{Mode: ModeCS, Fs: inf},
		{Mode: ModeCS, Fs: -256},
		{Mode: ModeCS, CSRatio: nan},
		{Mode: ModeCS, CSRatio: -5},
		{Mode: ModeCS, CSRatio: 100},
		{Mode: ModeCS, CSRatio: inf},
		{Mode: ModeDelineation, Leads: -1},
		{Mode: ModeCS, CSWindow: -512},
		{Mode: ModeCS, CSDensity: -4},
		{Mode: ModeCS, BitsPerSample: -12},
		{Mode: ModeCS, BitsPerSample: 48},
		{Mode: ModeCS, QuantBits: -1},
		{Mode: ModeDelineation, GateLeads: true, LeadGateMin: 1.5},
		{Mode: ModeDelineation, GateLeads: true, LeadGateMin: nan},
	}
	for i, cfg := range bad {
		if _, err := NewNode(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d (%+v): got %v, want ErrConfig", i, cfg, err)
		}
	}
	// Zero still means "use the default".
	n, err := NewNode(Config{Mode: ModeCS})
	if err != nil {
		t.Fatal(err)
	}
	if n.Config().Fs != 256 {
		t.Error("zero fields should default, not fail")
	}
}

// runDelineation processes the faulted record at ModeDelineation and
// scores the detected beats against the original ground truth.
func runDelineation(t *testing.T, truth *ecg.Record, faulted [][]float64, gate bool) (delineation.Report, *Result) {
	t.Helper()
	frec := *truth
	frec.Leads = faulted
	node, err := NewNode(Config{Mode: ModeDelineation, GateLeads: gate})
	if err != nil {
		t.Fatal(err)
	}
	res, err := node.Process(&frec)
	if err != nil {
		t.Fatal(err)
	}
	dets := make([]delineation.BeatFiducials, len(res.Beats))
	for i, b := range res.Beats {
		dets[i] = b.Fiducials
	}
	return delineation.Evaluate(truth, dets, delineation.DefaultTolerances()), res
}

// TestLeadGatingSurvivesSaturatedLead pins one lead to the front-end
// rail for the whole record: the SQI must drop it and the node keep
// diagnosing on the remaining two.
func TestLeadGatingSurvivesSaturatedLead(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 61, Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.01}})
	faulted, _, err := link.InjectFaults(rec.Leads, rec.Fs, link.FaultConfig{
		Schedule: []link.LeadFault{{Lead: 1, Start: 0, End: rec.Len(), Kind: link.FaultSaturation, Level: 3.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gated, resGated := runDelineation(t, rec, faulted, true)
	if want := []bool{true, false, true}; len(resGated.LeadsUsed) != 3 ||
		resGated.LeadsUsed[0] != want[0] || resGated.LeadsUsed[1] != want[1] || resGated.LeadsUsed[2] != want[2] {
		t.Errorf("LeadsUsed = %v, want %v", resGated.LeadsUsed, want)
	}
	if se := gated.R.Se(); se < 0.9 {
		t.Errorf("gated QRS Se %.3f with saturated lead, want >= 0.9", se)
	}
}

// TestLeadGatingRejectsArtifactLead rides dense 5 mV motion spikes on
// one lead. Ungated, the spikes dominate the RMS lead combination and
// delineation collapses into garbage; gated, the SQI drops the lead
// and the diagnosis survives — the exact "degrade instead of emitting
// garbage" behaviour the fault model exists to prove.
func TestLeadGatingRejectsArtifactLead(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 61, Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.01}})
	fs := rec.Fs
	var sched []link.LeadFault
	for start := 0; start+int(0.4*fs) < rec.Len(); start += int(1.2 * fs) {
		sched = append(sched, link.LeadFault{
			Lead: 1, Start: start, End: start + int(0.4*fs), Kind: link.FaultSpike, Level: 5,
		})
	}
	faulted, _, err := link.InjectFaults(rec.Leads, fs, link.FaultConfig{Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	gated, resGated := runDelineation(t, rec, faulted, true)
	ungated, _ := runDelineation(t, rec, faulted, false)
	if resGated.LeadsUsed[1] {
		t.Errorf("artifact lead not gated: %v", resGated.LeadsUsed)
	}
	if se := gated.R.Se(); se < 0.9 {
		t.Errorf("gated QRS Se %.3f under artifact, want >= 0.9", se)
	}
	if ppv := gated.R.PPV(); ppv < 0.9 {
		t.Errorf("gated QRS PPV %.3f under artifact, want >= 0.9", ppv)
	}
	if gated.R.Se() <= ungated.R.Se() && gated.R.PPV() <= ungated.R.PPV() {
		t.Errorf("gating did not help: gated Se=%.3f PPV=%.3f vs ungated Se=%.3f PPV=%.3f",
			gated.R.Se(), gated.R.PPV(), ungated.R.Se(), ungated.R.PPV())
	}
}

// TestLeadGatingFallsBackToSingleLead detaches two of three leads: the
// node must degrade to single-lead operation and still find QRS
// complexes.
func TestLeadGatingFallsBackToSingleLead(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 62, Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.01}})
	faulted, _, err := link.InjectFaults(rec.Leads, rec.Fs, link.FaultConfig{
		Schedule: []link.LeadFault{
			{Lead: 0, Start: 0, End: rec.Len(), Kind: link.FaultLeadOff},
			{Lead: 2, Start: 0, End: rec.Len(), Kind: link.FaultSaturation, Level: 3.3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frec := *rec
	frec.Leads = faulted
	node, err := NewNode(Config{Mode: ModeDelineation, GateLeads: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := node.Process(&frec)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, u := range res.LeadsUsed {
		if u {
			used++
		}
	}
	if used != 1 || !res.LeadsUsed[1] {
		t.Errorf("LeadsUsed = %v, want only lead 1", res.LeadsUsed)
	}
	dets := make([]delineation.BeatFiducials, len(res.Beats))
	for i, b := range res.Beats {
		dets[i] = b.Fiducials
	}
	rep := delineation.Evaluate(rec, dets, delineation.DefaultTolerances())
	if se := rep.R.Se(); se < 0.9 {
		t.Errorf("single-lead fallback QRS Se %.3f, want >= 0.9", se)
	}
}

// TestStreamGatingIsPerChunk faults one lead for only part of the
// record; the streaming node must keep emitting beats throughout.
func TestStreamGatingIsPerChunk(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 63, Duration: 40, Noise: ecg.NoiseConfig{EMG: 0.01}})
	n := rec.Len()
	faulted, _, err := link.InjectFaults(rec.Leads, rec.Fs, link.FaultConfig{
		Schedule: []link.LeadFault{{Lead: 0, Start: n / 4, End: n / 2, Kind: link.FaultSaturation, Level: 3.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(Config{Mode: ModeDelineation, GateLeads: true})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	events, err := stream.PushBlock(faulted)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, tail...)
	var dets []delineation.BeatFiducials
	for _, e := range events {
		if e.Kind == EventBeat {
			dets = append(dets, e.Beat.Fiducials)
		}
	}
	rep := delineation.Evaluate(rec, dets, delineation.DefaultTolerances())
	if se := rep.R.Se(); se < 0.9 {
		t.Errorf("streaming QRS Se %.3f under partial saturation, want >= 0.9", se)
	}
}

package core

import (
	"testing"

	"wbsn/internal/ecg"
)

func benchPush(b *testing.B, s interface {
	Push([]float64) ([]Event, error)
}, rec *ecg.Record) {
	sample := make([]float64, len(rec.Leads))
	pos := 0
	push := func() {
		for li := range sample {
			sample[li] = rec.Leads[li][pos%rec.Len()]
		}
		pos++
		if _, err := s.Push(sample); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4096; i++ {
		push()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
	}
}

func BenchmarkPushCompiledVsLegacy(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 62, Duration: 40})
	for _, mode := range []Mode{ModeCS, ModeDelineation} {
		cfg := Config{Mode: mode}
		if mode == ModeCS {
			cfg.CSRatio = 60
			cfg.Seed = 14
		}
		node, err := NewNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("compiled/"+mode.String(), func(b *testing.B) {
			s, _ := node.NewStream()
			benchPush(b, s, rec)
		})
		b.Run("legacy/"+mode.String(), func(b *testing.B) {
			benchPush(b, newLegacyStream(node), rec)
		})
	}
}

package core

import (
	"time"

	"wbsn/internal/af"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
)

// legacyStream is a verbatim, test-only copy of the pre-graph streaming
// chain (the hard-wired processChunk that shipped before the compiled
// plan). The golden bit-identity tests replay identical inputs through
// it and through the compiled Stream and require byte-identical events
// and telemetry counts. Do not "fix" or modernise this file: its value
// is that it does not change.
type legacyStream struct {
	node             *Node
	pos              int
	buf              [][]float64
	bufStart         int
	chunkLen, hop    int
	lastBeatR        int
	afBeats          []delineation.BeatFiducials
	afEmit           int
	morph            morpho.Scratch
	filtered         [][]float64
	combined         []float64
	chunk            [][]float64
	beatBuf, featBuf []float64
	tel              *telemetry.NodeMetrics
	telCursor        time.Time
}

func (s *legacyStream) stageLap(stage telemetry.Stage, at int64) {
	now := time.Now()
	s.tel.Stages.Record(stage, at, s.telCursor.UnixNano(), int64(now.Sub(s.telCursor)))
	s.telCursor = now
}

func (s *legacyStream) SetTelemetry(tm *telemetry.NodeMetrics) { s.tel = tm }

func newLegacyStream(n *Node) *legacyStream {
	s := &legacyStream{node: n, lastBeatR: -1}
	s.buf = make([][]float64, n.cfg.Leads)
	switch n.cfg.Mode {
	case ModeRawStreaming:
		s.chunkLen = n.cfg.CSWindow
		s.hop = s.chunkLen
	case ModeCS:
		s.chunkLen = n.cfg.CSWindow
		s.hop = s.chunkLen
	default:
		s.chunkLen = int(4 * n.cfg.Fs)
		s.hop = s.chunkLen - int(1*n.cfg.Fs)
	}
	return s
}

func (s *legacyStream) Reset() {
	s.pos = 0
	s.bufStart = 0
	s.lastBeatR = -1
	s.afBeats = s.afBeats[:0]
	s.afEmit = 0
	for i := range s.buf {
		s.buf[i] = s.buf[i][:0]
	}
}

func (s *legacyStream) Push(sample []float64) ([]Event, error) {
	if len(sample) != len(s.buf) {
		return nil, ErrStream
	}
	for i, v := range sample {
		s.buf[i] = append(s.buf[i], v)
	}
	s.pos++
	return s.drain(false)
}

func (s *legacyStream) PushBlock(block [][]float64) ([]Event, error) {
	if len(block) != len(s.buf) {
		return nil, ErrStream
	}
	n := len(block[0])
	for _, l := range block {
		if len(l) != n {
			return nil, ErrStream
		}
	}
	for i := range block {
		s.buf[i] = append(s.buf[i], block[i]...)
	}
	s.pos += n
	return s.drain(false)
}

func (s *legacyStream) Flush() ([]Event, error) {
	return s.drain(true)
}

func (s *legacyStream) drain(flush bool) ([]Event, error) {
	var events []Event
	for {
		have := len(s.buf[0])
		if have < s.chunkLen && !(flush && have > 0) {
			break
		}
		take := s.chunkLen
		if take > have {
			take = have
		}
		if cap(s.chunk) < len(s.buf) {
			s.chunk = make([][]float64, len(s.buf))
		}
		s.chunk = s.chunk[:len(s.buf)]
		for i := range s.buf {
			s.chunk[i] = s.buf[i][:take]
		}
		if s.tel != nil {
			s.telCursor = time.Now()
		}
		evs, err := s.processChunk(s.chunk, s.bufStart)
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
		adv := s.hop
		if take < s.chunkLen {
			adv = take
		}
		for i := range s.buf {
			kept := copy(s.buf[i], s.buf[i][adv:])
			s.buf[i] = s.buf[i][:kept]
		}
		if tm := s.tel; tm != nil {
			s.stageLap(telemetry.StageAcquire, int64(s.bufStart))
			tm.Samples.Add(uint64(adv))
			tm.Chunks.Inc()
			tm.Events.Add(uint64(len(evs)))
		}
		s.bufStart += adv
		if take < s.chunkLen {
			break
		}
	}
	return events, nil
}

func (s *legacyStream) processChunk(chunk [][]float64, base int) ([]Event, error) {
	n := s.node
	var events []Event
	switch n.cfg.Mode {
	case ModeRawStreaming:
		bytes := (len(chunk)*len(chunk[0])*n.cfg.BitsPerSample + 7) / 8
		events = append(events, Event{Kind: EventPacket, At: base, Bytes: bytes})
		if tm := s.tel; tm != nil {
			tm.Packets.Inc()
			tm.TxBytes.Add(uint64(bytes))
		}
	case ModeCS:
		if len(chunk[0]) == n.cfg.CSWindow {
			ys := n.enc.EncodeLeads(chunk)
			bits := n.cfg.BitsPerSample
			if n.cfg.QuantBits > 0 {
				bits = n.cfg.QuantBits
				for li := range ys {
					q, err := cs.NewQuantizer(bits, cs.AutoScale(ys[li], 1.05))
					if err != nil {
						return nil, err
					}
					ys[li], _ = q.QuantizeSlice(ys[li])
				}
			}
			bytes := (n.enc.MeasurementLen()*len(chunk)*bits + 7) / 8
			events = append(events, Event{Kind: EventPacket, At: base, Bytes: bytes, Measurements: ys})
			if tm := s.tel; tm != nil {
				s.stageLap(telemetry.StageCS, int64(base))
				tm.Packets.Inc()
				tm.TxBytes.Add(uint64(bytes))
			}
		}
	default:
		leads, _, _ := n.gateLeads(chunk)
		if !n.cfg.DisableFilter {
			filtered, err := morpho.FilterLeadsInto(leads, morpho.FilterConfig{Fs: n.cfg.Fs}, s.filtered, &s.morph)
			if err != nil {
				return nil, err
			}
			if s.tel != nil {
				s.stageLap(telemetry.StageFilter, int64(base))
			}
			s.filtered = filtered
			leads = filtered
		}
		s.combined = dsp.CombineRMSInto(leads, s.combined)
		combined := s.combined
		beats, err := n.del.Delineate(combined)
		if err != nil {
			return nil, err
		}
		if s.tel != nil {
			s.stageLap(telemetry.StageDelineate, int64(base))
		}
		refractory := int(0.2 * n.cfg.Fs)
		for _, b := range beats {
			absR := b.R + base
			if absR <= s.lastBeatR+refractory {
				continue
			}
			if b.R >= s.hop && len(chunk[0]) == s.chunkLen {
				continue
			}
			s.lastBeatR = absR
			bo := BeatOutput{Fiducials: offsetBeat(b, base), Label: -1}
			if n.cfg.Mode == ModeClassification {
				if beat := n.beatWin.ExtractInto(combined, b.R, s.beatBuf); beat != nil {
					s.beatBuf = beat
					z, err := n.cfg.Classifier.RP().ProjectInto(beat, s.featBuf)
					if err != nil {
						return nil, err
					}
					s.featBuf = z
					label, mem, err := n.cfg.Classifier.PredictProjected(z)
					if err != nil {
						return nil, err
					}
					bo.Label = label
					bo.Membership = mem
				}
				if s.tel != nil {
					s.stageLap(telemetry.StageClassify, int64(absR))
				}
			}
			if tm := s.tel; tm != nil {
				tm.Beats.Inc()
			}
			events = append(events, Event{Kind: EventBeat, At: absR, Beat: bo})
			if n.cfg.Mode == ModeAFAlarm {
				s.afBeats = append(s.afBeats, bo.Fiducials)
			}
		}
		if n.cfg.Mode == ModeAFAlarm {
			w := 24
			for s.afEmit+w <= len(s.afBeats) {
				f := af.ExtractFeatures(s.afBeats[s.afEmit:s.afEmit+w], n.cfg.Fs)
				score := n.afd.Score(f)
				events = append(events, Event{
					Kind: EventAF,
					At:   s.afBeats[s.afEmit].R,
					AF:   af.Decision{StartBeat: s.afEmit, Score: score, AF: score >= 0.5, Features: f},
				})
				s.afEmit += w / 2
			}
		}
	}
	return events, nil
}

package hrv

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/ecg"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(make([]float64, 5)); err != ErrTooFewBeats {
		t.Error("short series should fail")
	}
}

func TestTimeDomainMetrics(t *testing.T) {
	// Alternating 0.7/0.9 s RR: mean 0.8, successive diffs all 0.2.
	rr := make([]float64, 20)
	for i := range rr {
		if i%2 == 0 {
			rr[i] = 0.7
		} else {
			rr[i] = 0.9
		}
	}
	m, err := Analyze(rr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MeanRR-0.8) > 1e-12 {
		t.Errorf("MeanRR = %v", m.MeanRR)
	}
	if math.Abs(m.MeanHR-75) > 1e-9 {
		t.Errorf("MeanHR = %v", m.MeanHR)
	}
	if math.Abs(m.RMSSD-0.2) > 1e-12 {
		t.Errorf("RMSSD = %v", m.RMSSD)
	}
	if m.PNN50 != 1 {
		t.Errorf("PNN50 = %v, want 1 (all diffs 200 ms)", m.PNN50)
	}
	if math.Abs(m.SDNN-0.1) > 1e-12 {
		t.Errorf("SDNN = %v", m.SDNN)
	}
}

func TestConstantRRHasNoVariability(t *testing.T) {
	rr := make([]float64, 30)
	for i := range rr {
		rr[i] = 0.8
	}
	m, err := Analyze(rr)
	if err != nil {
		t.Fatal(err)
	}
	if m.SDNN > 1e-12 || m.RMSSD > 1e-12 || m.PNN50 != 0 {
		t.Errorf("constant RR should have zero variability: %+v", m)
	}
	if m.LF > 1e-9 || m.HF > 1e-9 || m.LFHF != 0 {
		t.Errorf("constant tachogram should have no band power: LF=%v HF=%v LFHF=%v", m.LF, m.HF, m.LFHF)
	}
}

func TestSpectralSeparation(t *testing.T) {
	// RR modulated at 0.1 Hz (LF) vs 0.3 Hz (HF): band powers must land
	// in the right bands.
	mk := func(f float64) []float64 {
		rr := make([]float64, 240)
		t := 0.0
		for i := range rr {
			rr[i] = 0.8 + 0.05*math.Sin(2*math.Pi*f*t)
			t += rr[i]
		}
		return rr
	}
	lfm, err := Analyze(mk(0.1))
	if err != nil {
		t.Fatal(err)
	}
	hfm, err := Analyze(mk(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if lfm.LF < 5*lfm.HF {
		t.Errorf("0.1 Hz modulation: LF=%v HF=%v, LF should dominate", lfm.LF, lfm.HF)
	}
	if hfm.HF < 5*hfm.LF {
		t.Errorf("0.3 Hz modulation: LF=%v HF=%v, HF should dominate", hfm.LF, hfm.HF)
	}
	if lfm.LFHF < 1 || hfm.LFHF > 1 {
		t.Errorf("LF/HF ordering wrong: %v vs %v", lfm.LFHF, hfm.LFHF)
	}
}

func TestResampleTachogram(t *testing.T) {
	rr := []float64{1, 1, 1, 1}
	tach := ResampleTachogram(rr, 4)
	if len(tach) != 16 {
		t.Fatalf("tachogram length %d, want 16 (4 s at 4 Hz)", len(tach))
	}
	for i, v := range tach {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("constant tachogram sample %d = %v", i, v)
		}
	}
	if ResampleTachogram(nil, 4) != nil {
		t.Error("empty RR should give nil")
	}
	if ResampleTachogram(rr, 0) != nil {
		t.Error("zero rate should give nil")
	}
}

func TestSleepStageClassification(t *testing.T) {
	deep := Metrics{LFHF: 0.5, RMSSD: 0.06}
	if ClassifyStage(deep) != StageDeep {
		t.Error("parasympathetic profile should be deep sleep")
	}
	wake := Metrics{LFHF: 4, RMSSD: 0.02}
	if ClassifyStage(wake) != StageWake {
		t.Error("sympathetic profile should be wake")
	}
	light := Metrics{LFHF: 1.8, RMSSD: 0.03}
	if ClassifyStage(light) != StageLight {
		t.Error("intermediate profile should be light sleep")
	}
	for s, want := range map[SleepStage]string{StageWake: "wake", StageLight: "light", StageDeep: "deep", SleepStage(9): "unknown"} {
		if s.String() != want {
			t.Errorf("stage %d string %q", s, s.String())
		}
	}
}

func TestSlidingWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rr := make([]float64, 100)
	for i := range rr {
		rr[i] = 0.8 + 0.02*rng.NormFloat64()
	}
	ws := SlidingWindows(rr, 32, 16)
	if len(ws) != 5 {
		t.Errorf("got %d windows, want 5", len(ws))
	}
	if SlidingWindows(rr, 4, 16) != nil {
		t.Error("window below minimum should give nil")
	}
	if SlidingWindows(rr, 32, 0) != nil {
		t.Error("zero hop should give nil")
	}
}

func TestHRVOnSyntheticECG(t *testing.T) {
	// End-to-end: the generator's RSA modulation must appear in the HF
	// band of the analysed record.
	rec := ecg.Generate(ecg.Config{Seed: 4, Duration: 300, Rhythm: ecg.RhythmConfig{HRVRSA: 0.06, HRVMayer: 0.015}})
	m, err := Analyze(rec.RRIntervals())
	if err != nil {
		t.Fatal(err)
	}
	if m.HF <= 0 {
		t.Fatal("no HF power from RSA-modulated rhythm")
	}
	if m.LFHF > 1.5 {
		t.Errorf("RSA-dominated rhythm has LF/HF = %v, expected HF dominance", m.LFHF)
	}
	// And a Mayer-dominated rhythm flips the ratio.
	rec2 := ecg.Generate(ecg.Config{Seed: 4, Duration: 300, Rhythm: ecg.RhythmConfig{HRVRSA: 0.01, HRVMayer: 0.06}})
	m2, err := Analyze(rec2.RRIntervals())
	if err != nil {
		t.Fatal(err)
	}
	if m2.LFHF <= m.LFHF {
		t.Errorf("Mayer-dominated LF/HF (%v) should exceed RSA-dominated (%v)", m2.LFHF, m.LFHF)
	}
}

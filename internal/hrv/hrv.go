// Package hrv computes heart-rate-variability metrics from RR-interval
// series, the analysis behind the paper's sleep/fatigue monitoring
// applications (Sections I-II: "sleep monitoring applications involve
// the analysis of heart rate variability over a time window of the
// acquired bio-signal", motivating scenarios such as "monitoring of the
// sleep state of airline pilots").
//
// Time-domain metrics (SDNN, RMSSD, pNN50) come straight from the RR
// series; frequency-domain metrics (LF, HF, LF/HF) follow the standard
// HRV methodology: the irregularly-sampled tachogram is resampled to a
// uniform 4 Hz grid and a windowed periodogram integrates the
// low-frequency (0.04-0.15 Hz, sympathetic+parasympathetic) and
// high-frequency (0.15-0.4 Hz, respiratory/parasympathetic) bands. A
// falling LF/HF ratio is the classic marker of deepening sleep.
package hrv

import (
	"errors"
	"math"

	"wbsn/internal/dsp"
)

// ErrTooFewBeats is returned when the RR series is too short to analyse.
var ErrTooFewBeats = errors.New("hrv: need at least 8 RR intervals")

// TachogramRate is the uniform resampling rate of the RR tachogram used
// by the spectral metrics, in Hz.
const TachogramRate = 4.0

// Metrics holds one analysis window's HRV summary.
type Metrics struct {
	// MeanRR is the mean RR interval in seconds; MeanHR the equivalent
	// heart rate in bpm.
	MeanRR, MeanHR float64
	// SDNN is the standard deviation of RR intervals, seconds.
	SDNN float64
	// RMSSD is the root mean square of successive differences, seconds.
	RMSSD float64
	// PNN50 is the fraction of successive differences exceeding 50 ms.
	PNN50 float64
	// LF and HF are the band powers (s²) of the resampled tachogram;
	// LFHF is their ratio (0 when HF vanishes).
	LF, HF, LFHF float64
}

// Analyze computes the metrics over one window of RR intervals
// (seconds). It needs at least 8 intervals.
func Analyze(rr []float64) (Metrics, error) {
	if len(rr) < 8 {
		return Metrics{}, ErrTooFewBeats
	}
	var m Metrics
	m.MeanRR = dsp.Mean(rr)
	if m.MeanRR > 0 {
		m.MeanHR = 60 / m.MeanRR
	}
	m.SDNN = dsp.Std(rr)
	var ss float64
	nn50 := 0
	for i := 1; i < len(rr); i++ {
		d := rr[i] - rr[i-1]
		ss += d * d
		if math.Abs(d) > 0.050 {
			nn50++
		}
	}
	m.RMSSD = math.Sqrt(ss / float64(len(rr)-1))
	m.PNN50 = float64(nn50) / float64(len(rr)-1)
	// Spectral metrics over the uniformly resampled tachogram.
	tach := ResampleTachogram(rr, TachogramRate)
	if len(tach) >= 16 {
		psd := dsp.Periodogram(tach, TachogramRate)
		m.LF = dsp.BandPower(psd, len(tach), TachogramRate, 0.04, 0.15)
		m.HF = dsp.BandPower(psd, len(tach), TachogramRate, 0.15, 0.40)
		// Guard against numerical dust in a flat tachogram.
		if m.HF > 1e-12 {
			m.LFHF = m.LF / m.HF
		}
	}
	return m, nil
}

// ResampleTachogram converts an RR series (seconds) into a uniformly
// sampled tachogram at the given rate: RR value as a function of time,
// linearly interpolated between beat instants.
func ResampleTachogram(rr []float64, rate float64) []float64 {
	if len(rr) == 0 || rate <= 0 {
		return nil
	}
	// Beat times: cumulative RR.
	times := make([]float64, len(rr))
	t := 0.0
	for i, v := range rr {
		t += v
		times[i] = t
	}
	total := times[len(times)-1]
	n := int(total * rate)
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	idx := 0
	for i := 0; i < n; i++ {
		tt := float64(i) / rate
		for idx < len(times)-1 && times[idx] < tt {
			idx++
		}
		if idx == 0 {
			out[i] = rr[0]
			continue
		}
		t0, t1 := times[idx-1], times[idx]
		if t1 == t0 {
			out[i] = rr[idx]
			continue
		}
		frac := (tt - t0) / (t1 - t0)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		out[i] = rr[idx-1]*(1-frac) + rr[idx]*frac
	}
	return out
}

// SleepStage is a coarse autonomic-state classification.
type SleepStage int

// Sleep stages derived from HRV.
const (
	// StageWake: high LF/HF, elevated heart rate.
	StageWake SleepStage = iota
	// StageLight: intermediate autonomic balance.
	StageLight
	// StageDeep: parasympathetic dominance — low LF/HF, high RMSSD.
	StageDeep
)

// String returns the stage name.
func (s SleepStage) String() string {
	switch s {
	case StageWake:
		return "wake"
	case StageLight:
		return "light"
	case StageDeep:
		return "deep"
	default:
		return "unknown"
	}
}

// ClassifyStage maps a window's metrics to a coarse sleep stage with the
// standard autonomic markers: deepening sleep lowers LF/HF and heart
// rate while raising vagally-mediated RMSSD.
func ClassifyStage(m Metrics) SleepStage {
	switch {
	case m.LFHF < 1.0 && m.RMSSD > 0.04:
		return StageDeep
	case m.LFHF < 2.5:
		return StageLight
	default:
		return StageWake
	}
}

// SlidingWindows splits an RR series into windows of `size` beats with
// the given hop and analyses each; windows that fail analysis are
// skipped.
func SlidingWindows(rr []float64, size, hop int) []Metrics {
	if size < 8 || hop < 1 {
		return nil
	}
	var out []Metrics
	for start := 0; start+size <= len(rr); start += hop {
		m, err := Analyze(rr[start : start+size])
		if err == nil {
			out = append(out, m)
		}
	}
	return out
}

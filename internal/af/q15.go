package af

import (
	"wbsn/internal/delineation"
	"wbsn/internal/fixedpt"
)

// This file carries the integer-only feature extraction the node runs
// (Section V: the AF detector operates "in real-time on an embedded
// device" with integer arithmetic only). RR intervals stay in sample
// counts; divisions, square roots and logarithms come from
// internal/fixedpt. Features are returned as Q15 in the same ranges as
// the float extractor, so the same fuzzy rules apply.

// FeaturesQ15 are the Q15-scaled AF evidence values.
type FeaturesQ15 struct {
	// NRMSSD, TPR, RREntropy, PAbsence mirror Features, each as Q15 of
	// the float value (NRMSSD is clamped at 1.0; RREntropy is already
	// normalised to [0,1]).
	NRMSSD, TPR, RREntropy, PAbsence fixedpt.Q15
}

// Float converts the Q15 features to the float form consumed by the
// fuzzy classifier.
func (f FeaturesQ15) Float() Features {
	return Features{
		NRMSSD:    f.NRMSSD.Float(),
		TPR:       f.TPR.Float(),
		RREntropy: f.RREntropy.Float(),
		PAbsence:  f.PAbsence.Float(),
	}
}

// ExtractFeaturesQ15 computes the AF features with integer arithmetic
// only. RR intervals are taken directly as sample-count differences of
// the detected R peaks. Fewer than three beats return zero features.
func ExtractFeaturesQ15(beats []delineation.BeatFiducials, fs float64) FeaturesQ15 {
	var out FeaturesQ15
	if len(beats) < 3 {
		return out
	}
	_ = fs // sample-domain arithmetic is rate-free; kept for API symmetry
	rr := make([]int64, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		rr = append(rr, int64(beats[i].R-beats[i-1].R))
	}
	var sum int64
	for _, v := range rr {
		sum += v
	}
	mean := sum / int64(len(rr))
	if mean <= 0 {
		return out
	}
	// NRMSSD: sqrt(mean of squared successive differences) / mean RR.
	var ss int64
	for i := 1; i < len(rr); i++ {
		d := rr[i] - rr[i-1]
		ss += d * d
	}
	msd := uint64(ss / int64(len(rr)-1))
	rmssd := int64(fixedpt.ISqrt64(msd << 16)) // ×256 for fractional headroom
	nrm := (rmssd << 15) / (mean << 8)         // Q15 of rmssd/mean
	if nrm > 32767 {
		nrm = 32767
	}
	out.NRMSSD = fixedpt.Q15(nrm)
	// Turning-point ratio: pure integer counting.
	turns := 0
	for i := 1; i < len(rr)-1; i++ {
		if (rr[i] > rr[i-1] && rr[i] > rr[i+1]) || (rr[i] < rr[i-1] && rr[i] < rr[i+1]) {
			turns++
		}
	}
	if len(rr) > 2 {
		out.TPR = fixedpt.Q15((int64(turns) << 15) / int64(len(rr)-2))
	}
	// Shannon entropy of the 8-bin RR histogram around the mean, via the
	// integer log2 (bins span ±40% of the mean RR, as the float path).
	const bins = 8
	hist := make([]int64, bins)
	for _, v := range rr {
		// rel = (v/mean - 0.6)/0.8 in Q15: ((v<<15)/mean - 0.6Q15) / 0.8.
		rel := (v << 15) / mean
		b := ((rel - 19661) * bins) / 26214 // 0.6, 0.8 in Q15
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	probs := make([]fixedpt.Q15, bins)
	for i, c := range hist {
		probs[i] = fixedpt.Q15((c << 15) / int64(len(rr)))
	}
	hQ11 := fixedpt.EntropyBitsQ15(probs) // Q11 bits
	// Normalise by log2(8)=3 bits: Q15 = hQ11 / (3<<11) << 15.
	norm := (int64(hQ11) << 15) / (3 << 11)
	if norm > 32767 {
		norm = 32767
	}
	if norm < 0 {
		norm = 0
	}
	out.RREntropy = fixedpt.Q15(norm)
	// P-wave absence: integer fraction.
	absent := int64(0)
	for _, b := range beats {
		if b.P.Peak < 0 {
			absent++
		}
	}
	out.PAbsence = fixedpt.Q15((absent << 15) / int64(len(beats)))
	return out
}

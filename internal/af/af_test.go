package af

import (
	"math"
	"testing"

	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewDetector(Config{}); err != ErrConfig {
		t.Error("missing Fs should fail")
	}
	if _, err := NewDetector(Config{Fs: 256, WindowBeats: 3}); err != ErrConfig {
		t.Error("tiny window should fail")
	}
	if _, err := NewDetector(Config{Fs: 256}); err != nil {
		t.Error("valid config should pass")
	}
}

// mkBeats builds a synthetic delineation output with the given RR pattern
// (in seconds) and P-wave presence flags.
func mkBeats(rrs []float64, hasP []bool, fs float64) []delineation.BeatFiducials {
	beats := make([]delineation.BeatFiducials, len(rrs)+1)
	pos := 100
	for i := range beats {
		beats[i].R = pos
		beats[i].P.Peak = -1
		if i < len(hasP) && hasP[i] {
			beats[i].P.Peak = pos - 40
		}
		if i < len(rrs) {
			pos += int(rrs[i] * fs)
		}
	}
	return beats
}

func TestExtractFeaturesRegularRhythm(t *testing.T) {
	fs := 256.0
	rrs := make([]float64, 30)
	hasP := make([]bool, 31)
	for i := range rrs {
		rrs[i] = 0.8
	}
	for i := range hasP {
		hasP[i] = true
	}
	f := ExtractFeatures(mkBeats(rrs, hasP, fs), fs)
	if f.NRMSSD > 0.02 {
		t.Errorf("regular rhythm NRMSSD = %v", f.NRMSSD)
	}
	if f.PAbsence != 0 {
		t.Errorf("all P present but PAbsence = %v", f.PAbsence)
	}
	if f.TPR > 0.1 {
		t.Errorf("regular rhythm TPR = %v", f.TPR)
	}
}

func TestExtractFeaturesIrregularRhythm(t *testing.T) {
	fs := 256.0
	// Alternating short/long RR: maximal turning-point ratio and large
	// RMSSD.
	rrs := make([]float64, 30)
	for i := range rrs {
		if i%2 == 0 {
			rrs[i] = 0.5
		} else {
			rrs[i] = 1.0
		}
	}
	hasP := make([]bool, 31) // none present
	f := ExtractFeatures(mkBeats(rrs, hasP, fs), fs)
	if f.NRMSSD < 0.3 {
		t.Errorf("alternating rhythm NRMSSD = %v", f.NRMSSD)
	}
	if f.PAbsence != 1 {
		t.Errorf("no P but PAbsence = %v", f.PAbsence)
	}
	if f.TPR < 0.9 {
		t.Errorf("alternating rhythm TPR = %v", f.TPR)
	}
}

func TestExtractFeaturesDegenerate(t *testing.T) {
	fs := 256.0
	if f := ExtractFeatures(nil, fs); f.NRMSSD != 0 || f.PAbsence != 0 {
		t.Error("empty beats should give zero features")
	}
	two := mkBeats([]float64{0.8}, []bool{true, true}, fs)
	if f := ExtractFeatures(two, fs); f.NRMSSD != 0 {
		t.Error("two beats should give zero features")
	}
}

func TestScoreRules(t *testing.T) {
	d, _ := NewDetector(Config{Fs: 256})
	// Regular rhythm with P: no AF evidence.
	low := d.Score(Features{NRMSSD: 0.02, TPR: 0.2, RREntropy: 0.2, PAbsence: 0})
	if low > 0.1 {
		t.Errorf("quiet features score %v", low)
	}
	// Irregular + absent P: strong evidence.
	high := d.Score(Features{NRMSSD: 0.3, TPR: 0.7, RREntropy: 0.9, PAbsence: 0.9})
	if high < 0.9 {
		t.Errorf("full AF evidence scores %v", high)
	}
	// Irregular but P present (ectopy): sub-threshold.
	ect := d.Score(Features{NRMSSD: 0.3, TPR: 0.7, RREntropy: 0.9, PAbsence: 0.05})
	if ect >= 0.5 {
		t.Errorf("ectopy-only evidence scores %v, must stay below threshold", ect)
	}
	if ect <= low {
		t.Error("ectopy should still raise suspicion above quiet baseline")
	}
	// Monotonicity in PAbsence.
	s1 := d.Score(Features{NRMSSD: 0.2, PAbsence: 0.4})
	s2 := d.Score(Features{NRMSSD: 0.2, PAbsence: 0.8})
	if s2 < s1 {
		t.Error("score should not decrease with more absent P waves")
	}
}

func TestRampEdges(t *testing.T) {
	if ramp(0, 0.1, 0.2) != 0 || ramp(0.3, 0.1, 0.2) != 1 {
		t.Error("ramp saturation wrong")
	}
	if v := ramp(0.15, 0.1, 0.2); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("ramp midpoint = %v", v)
	}
}

func TestDetectWindowing(t *testing.T) {
	fs := 256.0
	d, _ := NewDetector(Config{Fs: fs, WindowBeats: 10})
	rrs := make([]float64, 40)
	hasP := make([]bool, 41)
	for i := range rrs {
		rrs[i] = 0.8
	}
	for i := range hasP {
		hasP[i] = true
	}
	beats := mkBeats(rrs, hasP, fs)
	decs := d.Detect(beats)
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	// Hop = 5 beats, 41 beats, windows starting 0,5,...,30: 7 decisions.
	if len(decs) != 7 {
		t.Errorf("got %d decisions, want 7", len(decs))
	}
	for _, dec := range decs {
		if dec.AF {
			t.Error("regular rhythm flagged as AF")
		}
	}
	// Short input: single decision.
	short := d.Detect(beats[:5])
	if len(short) != 1 {
		t.Errorf("short input gave %d decisions", len(short))
	}
	if d.Detect(nil) != nil {
		t.Error("no beats should give no decisions")
	}
}

func TestRecordVerdict(t *testing.T) {
	mk := func(flags ...bool) []Decision {
		out := make([]Decision, len(flags))
		for i, f := range flags {
			out[i].AF = f
		}
		return out
	}
	if RecordVerdict(nil, 0.5) {
		t.Error("empty decisions should be non-AF")
	}
	if !RecordVerdict(mk(true, true, false), 0.5) {
		t.Error("2/3 AF windows should be AF at majority")
	}
	if RecordVerdict(mk(true, false, false), 0.5) {
		t.Error("1/3 AF windows should not be AF at majority")
	}
	if !RecordVerdict(mk(true, false, false), 0.25) {
		t.Error("1/3 windows should be AF at frac=0.25")
	}
}

// TestEndToEndAFDetection is the Text-2 experiment in miniature: the
// detector must separate AF records from NSR records (including ectopic
// ones) with Se and Sp at or above the paper's 96%/93%.
func TestEndToEndAFDetection(t *testing.T) {
	fs := 256.0
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: fs})
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(Config{Fs: fs})
	if err != nil {
		t.Fatal(err)
	}
	var tp, fn, fp, tn int
	for seed := int64(0); seed < 8; seed++ {
		cfgN := ecg.Config{Seed: seed, Duration: 90, Noise: ecg.NoiseConfig{EMG: 0.02}}
		if seed%3 == 0 {
			cfgN.Rhythm.PVCRate = 0.08
			cfgN.Rhythm.APBRate = 0.05
		}
		rec := ecg.Generate(cfgN)
		beats, err := del.Delineate(dsp.CombineRMS(rec.Leads))
		if err != nil {
			t.Fatal(err)
		}
		if RecordVerdict(det.Detect(beats), 0.5) {
			fp++
		} else {
			tn++
		}
		recA := ecg.Generate(ecg.Config{
			Seed: 1000 + seed, Duration: 90,
			Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF},
			Noise:  ecg.NoiseConfig{EMG: 0.02},
		})
		beatsA, err := del.Delineate(dsp.CombineRMS(recA.Leads))
		if err != nil {
			t.Fatal(err)
		}
		if RecordVerdict(det.Detect(beatsA), 0.5) {
			tp++
		} else {
			fn++
		}
	}
	se := float64(tp) / float64(tp+fn)
	sp := float64(tn) / float64(tn+fp)
	if se < 0.96 {
		t.Errorf("AF sensitivity %.2f, want >= 0.96 (paper)", se)
	}
	if sp < 0.93 {
		t.Errorf("AF specificity %.2f, want >= 0.93 (paper)", sp)
	}
}

func TestExtractFeaturesQ15MatchesFloat(t *testing.T) {
	fs := 256.0
	// Irregular rhythm without P waves (AF-like).
	rrs := []float64{0.55, 0.83, 0.61, 0.97, 0.7, 0.58, 0.88, 0.62, 0.79, 0.66,
		0.91, 0.57, 0.73, 0.85, 0.6, 0.78, 0.69, 0.93, 0.64, 0.81}
	hasP := make([]bool, len(rrs)+1)
	for i := range hasP {
		hasP[i] = i%4 == 0 // a quarter of beats show P-like bumps
	}
	beats := mkBeats(rrs, hasP, fs)
	ff := ExtractFeatures(beats, fs)
	fq := ExtractFeaturesQ15(beats, fs).Float()
	if d := math.Abs(fq.NRMSSD - ff.NRMSSD); d > 0.01 {
		t.Errorf("NRMSSD: Q15 %v vs float %v", fq.NRMSSD, ff.NRMSSD)
	}
	if d := math.Abs(fq.TPR - ff.TPR); d > 0.001 {
		t.Errorf("TPR: Q15 %v vs float %v", fq.TPR, ff.TPR)
	}
	if d := math.Abs(fq.RREntropy - ff.RREntropy); d > 0.03 {
		t.Errorf("RREntropy: Q15 %v vs float %v", fq.RREntropy, ff.RREntropy)
	}
	if d := math.Abs(fq.PAbsence - ff.PAbsence); d > 0.001 {
		t.Errorf("PAbsence: Q15 %v vs float %v", fq.PAbsence, ff.PAbsence)
	}
}

func TestQ15FeaturesDriveSameDecisions(t *testing.T) {
	// The Q15 path must produce the same AF verdicts as the float path on
	// real delineation output.
	fs := 256.0
	det, _ := NewDetector(Config{Fs: fs})
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ecg.RhythmKind{ecg.RhythmNSR, ecg.RhythmAF} {
		rec := ecg.Generate(ecg.Config{Seed: 60, Duration: 60, Rhythm: ecg.RhythmConfig{Kind: kind}})
		beats, err := del.Delineate(dsp.CombineRMS(rec.Clean))
		if err != nil {
			t.Fatal(err)
		}
		if len(beats) < 24 {
			t.Fatal("not enough beats")
		}
		w := beats[:24]
		sFloat := det.Score(ExtractFeatures(w, fs))
		sQ15 := det.Score(ExtractFeaturesQ15(w, fs).Float())
		if (sFloat >= 0.5) != (sQ15 >= 0.5) {
			t.Errorf("%v: decisions diverge (float %.3f vs Q15 %.3f)", kind, sFloat, sQ15)
		}
		if math.Abs(sFloat-sQ15) > 0.1 {
			t.Errorf("%v: scores diverge (float %.3f vs Q15 %.3f)", kind, sFloat, sQ15)
		}
	}
}

func TestExtractFeaturesQ15Degenerate(t *testing.T) {
	if f := ExtractFeaturesQ15(nil, 256); f.NRMSSD != 0 || f.PAbsence != 0 {
		t.Error("empty beats should give zero Q15 features")
	}
}

// Package af implements the real-time atrial-fibrillation detector of
// ref [25] (Rincón et al., EMBC 2012) described in Section V of the
// paper: the ECG delineation output feeds an analysis of "the regularity
// of the heart beat rate as well as the shape of the P wave, which
// constitute two characteristic irregularities of AF episodes", and a
// low-complexity fuzzy classifier fuses the evidence. The reference
// implementation reports 96% sensitivity and 93% specificity while
// running in real time on the node.
package af

import (
	"errors"
	"math"

	"wbsn/internal/delineation"
)

// ErrConfig is returned for invalid detector configurations.
var ErrConfig = errors.New("af: invalid configuration")

// Features are the per-window AF evidence values.
type Features struct {
	// NRMSSD is the RMS of successive RR differences normalised by the
	// mean RR — the classic AF irregularity measure.
	NRMSSD float64
	// TPR is the turning-point ratio of the RR series: the fraction of
	// interior beats whose RR is a local extremum. Random (AF) sequences
	// approach 2/3; regular rhythms are much lower.
	TPR float64
	// RREntropy is the Shannon entropy (bits) of the RR histogram over
	// the window, normalised to [0,1] by the maximum possible entropy.
	RREntropy float64
	// PAbsence is the fraction of beats in the window without a detected
	// P wave.
	PAbsence float64
}

// Config parameterises the detector.
type Config struct {
	// WindowBeats is the number of consecutive beats per decision
	// (default 24).
	WindowBeats int
	// Fs is the sampling rate used to convert fiducials to seconds.
	Fs float64
	// Threshold is the fuzzy score above which a window is declared AF
	// (default 0.5).
	Threshold float64
}

func (c Config) withDefaults() (Config, error) {
	out := c
	if out.Fs <= 0 {
		return out, ErrConfig
	}
	if out.WindowBeats <= 0 {
		out.WindowBeats = 24
	}
	if out.WindowBeats < 6 {
		return out, ErrConfig
	}
	if out.Threshold <= 0 {
		out.Threshold = 0.5
	}
	return out, nil
}

// Detector evaluates AF evidence over sliding windows of delineated
// beats.
type Detector struct {
	cfg Config
}

// NewDetector validates the configuration.
func NewDetector(cfg Config) (*Detector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: c}, nil
}

// ExtractFeatures computes the AF features over one window of beats.
// It needs at least three beats; fewer return zero features.
func ExtractFeatures(beats []delineation.BeatFiducials, fs float64) Features {
	var f Features
	if len(beats) < 3 {
		return f
	}
	rr := make([]float64, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		rr = append(rr, float64(beats[i].R-beats[i-1].R)/fs)
	}
	mean := 0.0
	for _, v := range rr {
		mean += v
	}
	mean /= float64(len(rr))
	if mean <= 0 {
		return f
	}
	// RMSSD.
	ss := 0.0
	for i := 1; i < len(rr); i++ {
		d := rr[i] - rr[i-1]
		ss += d * d
	}
	f.NRMSSD = math.Sqrt(ss/float64(len(rr)-1)) / mean
	// Turning-point ratio.
	turns := 0
	for i := 1; i < len(rr)-1; i++ {
		if (rr[i] > rr[i-1] && rr[i] > rr[i+1]) || (rr[i] < rr[i-1] && rr[i] < rr[i+1]) {
			turns++
		}
	}
	if len(rr) > 2 {
		f.TPR = float64(turns) / float64(len(rr)-2)
	}
	// Shannon entropy over an 8-bin histogram of RR around the mean.
	const bins = 8
	hist := make([]int, bins)
	for _, v := range rr {
		// Bin over ±40% of the mean RR.
		rel := (v/mean - 0.6) / 0.8
		b := int(rel * bins)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(len(rr))
		h -= p * math.Log2(p)
	}
	f.RREntropy = h / math.Log2(bins)
	// P-wave absence.
	absent := 0
	for _, b := range beats {
		if b.P.Peak < 0 {
			absent++
		}
	}
	f.PAbsence = float64(absent) / float64(len(beats))
	return f
}

// Membership functions of the fuzzy classifier: smooth ramps mapping a
// feature to a degree of "AF-ness" in [0,1].
func ramp(v, lo, hi float64) float64 {
	if v <= lo {
		return 0
	}
	if v >= hi {
		return 1
	}
	return (v - lo) / (hi - lo)
}

// Score fuses the features into an AF likelihood in [0,1]. The fuzzy
// rules follow ref [25]: strong evidence requires both an irregular
// rhythm AND a missing P wave; either alone yields an intermediate score.
func (d *Detector) Score(f Features) float64 {
	// Rhythm irregularity: OR-combination (max) of the three RR views.
	irr := math.Max(ramp(f.NRMSSD, 0.06, 0.18),
		math.Max(ramp(f.TPR, 0.40, 0.62), ramp(f.RREntropy, 0.45, 0.75)))
	noP := ramp(f.PAbsence, 0.25, 0.75)
	// Fuzzy AND (product) of the two evidence classes, with a sub-
	// threshold floor on rhythm-only evidence: extreme irregularity alone
	// (e.g. frequent ectopy) raises suspicion but cannot cross the AF
	// threshold without the missing-P confirmation — the property that
	// keeps specificity high on ectopic sinus rhythm.
	and := irr * noP
	rhythmOnly := 0.45 * irr
	return math.Max(and, rhythmOnly)
}

// Decision is one windowed AF verdict.
type Decision struct {
	// StartBeat indexes the first beat of the window.
	StartBeat int
	// Score is the fuzzy AF likelihood.
	Score float64
	// AF is Score >= Threshold.
	AF bool
	// Features are the window's evidence values.
	Features Features
}

// Detect slides the window over the delineated beats (hop = half window)
// and returns one decision per window. Fewer beats than one window yield
// a single decision over all of them.
func (d *Detector) Detect(beats []delineation.BeatFiducials) []Decision {
	w := d.cfg.WindowBeats
	if len(beats) == 0 {
		return nil
	}
	if len(beats) < w {
		f := ExtractFeatures(beats, d.cfg.Fs)
		s := d.Score(f)
		return []Decision{{StartBeat: 0, Score: s, AF: s >= d.cfg.Threshold, Features: f}}
	}
	var out []Decision
	hop := w / 2
	if hop < 1 {
		hop = 1
	}
	for start := 0; start+w <= len(beats); start += hop {
		f := ExtractFeatures(beats[start:start+w], d.cfg.Fs)
		s := d.Score(f)
		out = append(out, Decision{StartBeat: start, Score: s, AF: s >= d.cfg.Threshold, Features: f})
	}
	return out
}

// RecordVerdict reduces windowed decisions to one per-record verdict: AF
// when at least frac of the windows vote AF (default majority vote with
// frac=0.5).
func RecordVerdict(decisions []Decision, frac float64) bool {
	if len(decisions) == 0 {
		return false
	}
	if frac <= 0 {
		frac = 0.5
	}
	af := 0
	for _, d := range decisions {
		if d.AF {
			af++
		}
	}
	return float64(af) >= frac*float64(len(decisions))
}

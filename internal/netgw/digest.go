package netgw

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// SignalDigest fingerprints a reconstructed multi-lead signal with
// FNV-1a over the IEEE-754 bit patterns (lead count, then each lead's
// length and samples). It is the bit-identity certificate of the
// networked path: the server computes it over the session receiver's
// accumulated signal, a verifying client computes it over an in-process
// reconstruction of the same windows, and equality proves the TCP path
// changed nothing — including under injected transport faults.
func SignalDigest(signal [][]float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(len(signal)))
	for _, lead := range signal {
		put(uint64(len(lead)))
		for _, v := range lead {
			put(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// Package netgw turns the in-process gateway into a fault-tolerant
// network service: a TCP server that ingests the internal/link packet
// codec over a length-prefixed framing, one session actor per stream
// (own gateway.Receiver, own link.Reassembler, bounded inbox, panic
// isolation), bounded backpressure that sheds frames instead of
// blocking the accept path, and graceful drain that flushes in-flight
// decode work through the shared gateway.Engine before the process
// exits.
//
// The recovery model is deliberately simple: TCP already gives an
// ordered byte stream, so the only losses the server introduces are the
// ones it chooses (shed frames under backpressure) plus whatever the
// transport fault injector does to a connection (resets, truncation,
// bit flips, slowloris pacing). All of them are absorbed by one
// mechanism — the session survives its connection. A client that loses
// its connection redials, replays its Hello and learns the session's
// resume point (the reassembler's next expected sequence number); shed
// or corrupt frames trigger a rewind Ack that tells the client to
// go-back-N within its bounded in-flight window. Duplicates created by
// either path are absorbed by the reassembler's dedup, so the packets
// reaching gateway.Receiver are exactly the in-order, exactly-once
// stream the in-process path consumes — which is why the per-stream
// digests are bit-identical to library runs even under injected faults.
package netgw

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wbsn/internal/link"
)

// ErrFrame is returned for structurally invalid frames (bad magic,
// bad version, oversized or undersized payloads).
var ErrFrame = errors.New("netgw: malformed frame")

// Wire framing: every message is
//
//	magic(2)="WG" | version(1) | type(1) | length(4, BE) | payload
//
// The payload of a data frame is one link packet exactly as
// link.Encode produced it (CRC-32 included), so the body-area codec —
// and its corruption detection — is reused verbatim on the wire.
const (
	frameMagic0  = 'W'
	frameMagic1  = 'G'
	frameVersion = 1
	frameHdrLen  = 8
	// maxFramePayload bounds a frame to slightly above the largest
	// encodable link packet, so a corrupted length field cannot make the
	// reader allocate unbounded buffers or swallow the stream.
	maxFramePayload = 1 << 21
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	frameHello   = 0x01 // streamID(8)
	frameData    = 0x02 // one link.Encode frame
	frameFin     = 0x03 // total windows(4)
	frameWelcome = 0x81 // streamID(8) | nextSeq(4)
	frameAck     = 0x82 // nextSeq(4) | flags(1)
	frameDigest  = 0x83 // digest(8) | samples(4) | delivered(4) | filled(4) | duplicates(4)
)

// Ack flags.
const (
	// ackFlagRewind asks the client to rewind its send cursor to the
	// acked sequence number: a frame was shed under backpressure or
	// arrived corrupt, and everything from nextSeq on must be resent.
	ackFlagRewind = 1 << 0
)

// writeFrame serialises one frame. The header is stack-allocated; the
// payload is written as-is.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return ErrFrame
	}
	var hdr [frameHdrLen]byte
	hdr[0] = frameMagic0
	hdr[1] = frameMagic1
	hdr[2] = frameVersion
	hdr[3] = typ
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads exactly one frame, reusing buf when it is large
// enough. Structural problems return ErrFrame; short reads surface the
// transport error. The returned payload aliases buf (or a fresh
// allocation) and is only valid until the next call with the same buf.
func readFrame(r io.Reader, buf []byte) (byte, []byte, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 || hdr[2] != frameVersion {
		return 0, nil, buf, ErrFrame
	}
	n := int(binary.BigEndian.Uint32(hdr[4:]))
	if n > maxFramePayload {
		return 0, nil, buf, ErrFrame
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if n > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, buf, err
		}
	}
	return hdr[3], payload, buf, nil
}

// Control-payload builders and parsers. All fixed-size, all
// big-endian, mirroring the link codec's conventions.

func helloPayload(streamID uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], streamID)
	return b[:]
}

func parseHello(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrFrame
	}
	return binary.BigEndian.Uint64(p), nil
}

func welcomePayload(streamID uint64, nextSeq uint32) []byte {
	var b [12]byte
	binary.BigEndian.PutUint64(b[:], streamID)
	binary.BigEndian.PutUint32(b[8:], nextSeq)
	return b[:]
}

func parseWelcome(p []byte) (uint64, uint32, error) {
	if len(p) != 12 {
		return 0, 0, ErrFrame
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint32(p[8:]), nil
}

func ackPayload(nextSeq uint32, flags byte) []byte {
	var b [5]byte
	binary.BigEndian.PutUint32(b[:], nextSeq)
	b[4] = flags
	return b[:]
}

func parseAck(p []byte) (uint32, byte, error) {
	if len(p) != 5 {
		return 0, 0, ErrFrame
	}
	return binary.BigEndian.Uint32(p), p[4], nil
}

func finPayload(total uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], total)
	return b[:]
}

func parseFin(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, ErrFrame
	}
	return binary.BigEndian.Uint32(p), nil
}

// StreamReport is the server's end-of-record summary, carried by the
// digest frame: the reconstruction fingerprint plus the reassembly
// counters a client needs to judge the stream's health.
type StreamReport struct {
	// Digest fingerprints the reconstructed multi-lead signal
	// (SignalDigest); equal digests certify bit-identical
	// reconstruction.
	Digest uint64
	// Samples is the per-lead reconstructed length.
	Samples int
	// Delivered, Filled and Duplicates are the session reassembler's
	// counters: windows decoded, gaps zero-filled, duplicate arrivals
	// discarded.
	Delivered  int
	Filled     int
	Duplicates int
}

func (r StreamReport) String() string {
	return fmt.Sprintf("digest %016x samples %d delivered %d filled %d dups %d",
		r.Digest, r.Samples, r.Delivered, r.Filled, r.Duplicates)
}

func digestPayload(rep StreamReport) []byte {
	var b [24]byte
	binary.BigEndian.PutUint64(b[:], rep.Digest)
	binary.BigEndian.PutUint32(b[8:], uint32(rep.Samples))
	binary.BigEndian.PutUint32(b[12:], uint32(rep.Delivered))
	binary.BigEndian.PutUint32(b[16:], uint32(rep.Filled))
	binary.BigEndian.PutUint32(b[20:], uint32(rep.Duplicates))
	return b[:]
}

func parseDigest(p []byte) (StreamReport, error) {
	if len(p) != 24 {
		return StreamReport{}, ErrFrame
	}
	return StreamReport{
		Digest:     binary.BigEndian.Uint64(p),
		Samples:    int(binary.BigEndian.Uint32(p[8:])),
		Delivered:  int(binary.BigEndian.Uint32(p[12:])),
		Filled:     int(binary.BigEndian.Uint32(p[16:])),
		Duplicates: int(binary.BigEndian.Uint32(p[20:])),
	}, nil
}

// DecodeDataFrame validates one data frame's payload through the link
// codec. It exists (exported) for the fuzz target: arbitrary bytes must
// either decode into a structurally valid packet or fail cleanly with
// link.ErrCodec / link.ErrCRC — never panic.
func DecodeDataFrame(payload []byte) (link.Packet, error) {
	return link.Decode(payload)
}

package netgw

import (
	"errors"
	"math/rand"
	"net"
	"time"
)

// Injected transport errors — distinguishable in logs from real
// network failures.
var (
	errInjectedReset    = errors.New("netgw: injected connection reset")
	errInjectedTruncate = errors.New("netgw: injected truncated write")
)

// FaultConfig parameterises the transport fault injector: a layer of
// deliberately hostile plumbing between client and server that
// reproduces, on a real socket, the failure modes a body-area uplink
// suffers — abrupt resets, partial writes, bit corruption, slowloris
// pacing, and duplicate re-attaches. Each Write samples at most one
// fault, so probabilities compose additively.
type FaultConfig struct {
	// PReset aborts the connection before the write (RST-style: linger
	// zeroed so the peer sees a hard reset, not a graceful FIN).
	PReset float64
	// PTruncate writes a prefix of the buffer, then closes — the
	// classic partial-write-then-die, which desynchronises the peer's
	// framing mid-frame.
	PTruncate float64
	// PBitFlip flips one random bit of the written buffer and reports
	// success — silent corruption the receiver must catch by CRC.
	PBitFlip float64
	// PSlowloris paces the write out in SlowChunk-byte dribbles with
	// SlowDelay sleeps — the slow-client attack the server's per-frame
	// read deadline must cut.
	PSlowloris float64
	// PDupHello, sampled at dial time, precedes the real connection
	// with a ghost connection that replays the stream's hello and a few
	// stale frames before vanishing.
	PDupHello float64
	// SlowChunk and SlowDelay shape the slowloris dribble (defaults 7
	// bytes, 2ms).
	SlowChunk int
	SlowDelay time.Duration
}

// Enabled reports whether any per-write fault is armed.
func (f FaultConfig) Enabled() bool {
	return f.PReset > 0 || f.PTruncate > 0 || f.PBitFlip > 0 || f.PSlowloris > 0
}

func (f FaultConfig) withDefaults() FaultConfig {
	out := f
	if out.SlowChunk <= 0 {
		out.SlowChunk = 7
	}
	if out.SlowDelay <= 0 {
		out.SlowDelay = 2 * time.Millisecond
	}
	return out
}

// wrap layers the injector over a connection. The returned conn is for
// single-goroutine use (the client's), matching how SendRecord drives
// its transport.
func (f FaultConfig) wrap(conn net.Conn, rng *rand.Rand) net.Conn {
	return &faultConn{Conn: conn, cfg: f.withDefaults(), rng: rng}
}

type faultConn struct {
	net.Conn
	cfg FaultConfig
	rng *rand.Rand
}

// abort hard-kills the connection: linger zero makes the close send an
// RST instead of a clean shutdown when the transport supports it.
func (f *faultConn) abort() {
	if tc, ok := f.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	f.Conn.Close()
}

func (f *faultConn) Write(b []byte) (int, error) {
	r := f.rng.Float64()
	if r < f.cfg.PReset {
		f.abort()
		return 0, errInjectedReset
	}
	r -= f.cfg.PReset
	if r < f.cfg.PTruncate {
		n := len(b) / 2
		if n > 0 {
			f.Conn.Write(b[:n]) //nolint:errcheck — the fault is the point
		}
		f.abort()
		return n, errInjectedTruncate
	}
	r -= f.cfg.PTruncate
	if r < f.cfg.PBitFlip && len(b) > 0 {
		c := make([]byte, len(b))
		copy(c, b)
		bit := f.rng.Intn(len(c) * 8)
		c[bit/8] ^= 1 << (bit % 8)
		return f.Conn.Write(c)
	}
	r -= f.cfg.PBitFlip
	if r < f.cfg.PSlowloris {
		for off := 0; off < len(b); off += f.cfg.SlowChunk {
			end := off + f.cfg.SlowChunk
			if end > len(b) {
				end = len(b)
			}
			if _, err := f.Conn.Write(b[off:end]); err != nil {
				return off, err
			}
			time.Sleep(f.cfg.SlowDelay)
		}
		return len(b), nil
	}
	return f.Conn.Write(b)
}

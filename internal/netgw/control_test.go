package netgw

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wbsn/internal/telemetry"
)

// TestNetGatewayTraceContinuity is the tentpole's cross-network bar:
// traced loadgen traffic arrives as version-2 link frames, and every
// window tree the collector publishes must stitch the node-side encode
// span (rebuilt from the wire-carried duration) to the gateway-side
// ingest → queue-wait → decode → deliver chain.
func TestNetGatewayTraceContinuity(t *testing.T) {
	srv, set := startServer(t, nil)
	cfg := testLoadgen(srv.Addr(), 4, 2)
	cfg.Trace = true
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Mismatches != 0 {
		t.Fatalf("traced run must stay bit-identical: %s", res)
	}
	snap := set.Trace.Snapshot()
	if snap.Recorded == 0 || len(snap.Recent) == 0 {
		t.Fatalf("no traces collected (recorded %d, recent %d)", snap.Recorded, len(snap.Recent))
	}
	for i, tr := range append(snap.Recent, snap.Slowest...) {
		node := map[string]bool{}
		for _, sp := range tr.Node {
			node[sp.Kind] = true
		}
		gw := map[string]bool{}
		for _, sp := range tr.Gateway {
			gw[sp.Kind] = true
		}
		if !node["encode"] {
			t.Errorf("tree %d (%s): node-side encode span missing: %v", i, tr.Trace, node)
		}
		if !gw["ingest"] || !gw["queue_wait"] || !gw["decode"] || !gw["deliver"] {
			t.Errorf("tree %d (%s): gateway side incomplete: %v", i, tr.Trace, gw)
		}
		if tr.Session == 0 {
			t.Errorf("tree %d (%s): zero session id", i, tr.Trace)
		}
	}
}

// dialSession opens a raw client connection and completes the Hello
// handshake for stream id.
func dialSession(t *testing.T, addr string, id uint64) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, helloPayload(id)); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if typ, _, _, err := readFrame(conn, nil); err != nil || typ != frameWelcome {
		conn.Close()
		t.Fatalf("handshake: type %#x err %v", typ, err)
	}
	return conn
}

// TestNetGatewayControlPlane exercises the real server behind the
// telemetry HTTP mux: /sessions reflects live session stats, and a
// POST evict is observable on the very next poll.
func TestNetGatewayControlPlane(t *testing.T) {
	srv, set := startServer(t, nil)

	// Populate finished sessions with real decode traffic first.
	res, err := RunLoadgen(testLoadgen(srv.Addr(), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Mismatches != 0 {
		t.Fatalf("seed run: %s", res)
	}
	// Then attach one idle live session.
	conn := dialSession(t, srv.Addr(), 4242)
	defer conn.Close()

	reg := telemetry.NewRegistry()
	hts := httptest.NewServer(telemetry.HandlerOpts(reg, telemetry.HTTPOptions{
		Control: srv,
		Trace:   set.Trace,
	}))
	defer hts.Close()

	getSessions := func() map[uint64]telemetry.SessionInfo {
		t.Helper()
		resp, err := http.Get(hts.URL + "/sessions")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Draining bool                    `json:"draining"`
			Sessions []telemetry.SessionInfo `json:"sessions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		out := make(map[uint64]telemetry.SessionInfo, len(body.Sessions))
		for _, s := range body.Sessions {
			out[s.ID] = s
		}
		return out
	}

	// The attach is queued on the actor's control channel; poll briefly
	// for the attached flag.
	var live telemetry.SessionInfo
	deadline := time.Now().Add(2 * time.Second)
	for {
		ss := getSessions()
		if len(ss) != 3 {
			t.Fatalf("sessions listed %d, want 3", len(ss))
		}
		live = ss[4242]
		if live.ID == 4242 && live.Attached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live session never showed attached: %+v", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if live.Finished || live.Delivered != 0 {
		t.Errorf("idle session stats off: %+v", live)
	}
	var finished int
	for id, s := range getSessions() {
		if id == 4242 {
			continue
		}
		if !s.Finished || s.Delivered == 0 || s.SeqHighWater == 0 {
			t.Errorf("finished session %d stats off: %+v", id, s)
		}
		if s.DecodeNsP50 == 0 || s.DecodeNsP99 == 0 {
			t.Errorf("session %d decode quantiles empty: %+v", id, s)
		}
		finished++
	}
	if finished != 2 {
		t.Errorf("finished sessions %d, want 2", finished)
	}

	// Evict the live session over HTTP: the removal must be visible on
	// the immediately following poll.
	resp, err := http.Post(hts.URL+"/sessions/4242/evict", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict status %d", resp.StatusCode)
	}
	if ss := getSessions(); len(ss) != 2 {
		t.Fatalf("evicted session still listed: %v", ss)
	} else if _, ok := ss[4242]; ok {
		t.Fatal("session 4242 survived its eviction")
	}
	if got := set.NetGW.Evictions.Value(); got != 1 {
		t.Errorf("evictions counter %d, want 1", got)
	}
	// Re-evicting is a 404.
	resp, err = http.Post(hts.URL+"/sessions/4242/evict", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double evict status %d, want 404", resp.StatusCode)
	}
	// The actor closes the evicted connection; the client sees EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("evicted connection still open")
	}
}

// TestNetGatewayLifecycleCounters pins the netgw.* session-lifecycle
// family: attaches on every handshake, resume hits on reconnects that
// land on real progress, idle cuts on deadline-cut connections.
func TestNetGatewayLifecycleCounters(t *testing.T) {
	srv, set := startServer(t, func(c *ServerConfig) {
		c.IdleTimeout = 200 * time.Millisecond
		c.AckEvery = 1
	})
	tm := set.NetGW

	// One traced record's frames to replay by hand.
	lc := testLoadgen(srv.Addr(), 1, 1)
	tr, err := buildTraffic(lc.withDefaults())
	if err != nil {
		t.Fatal(err)
	}

	conn := dialSession(t, srv.Addr(), 9001)
	if got := tm.Attaches.Value(); got != 1 {
		t.Fatalf("attaches after first dial %d, want 1", got)
	}
	if tm.ResumeHits.Value() != 0 {
		t.Fatal("resume hit without progress")
	}
	// Deliver one window and wait for its ack so the session holds
	// progress.
	if err := writeFrame(conn, frameData, tr.frames[0][0]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if typ, _, _, err := readFrame(conn, nil); err != nil || typ != frameAck {
		t.Fatalf("ack: type %#x err %v", typ, err)
	}
	conn.Close()

	// Redial the same stream: the attach must count as a resume hit.
	conn2 := dialSession(t, srv.Addr(), 9001)
	defer conn2.Close()
	if got := tm.Attaches.Value(); got != 2 {
		t.Errorf("attaches after redial %d, want 2", got)
	}
	if got := tm.ResumeHits.Value(); got != 1 {
		t.Errorf("resume hits after redial %d, want 1", got)
	}

	// Stall past the idle deadline: the reader cuts the connection and
	// counts it.
	deadline := time.Now().Add(5 * time.Second)
	for tm.IdleCuts.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle cut never counted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package netgw

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// ErrClient is returned when a stream gives up: the configured number
// of consecutive connection attempts failed without progress.
var ErrClient = errors.New("netgw: stream gave up after repeated connection failures")

// ClientConfig parameterises one stream's sender — the wearable side
// of the wire (Ai et al.'s BLE chest belt is the canonical instance):
// it dials, identifies its stream, sends windows under a bounded
// in-flight cap, honours rewind acks, and on any transport failure
// redials with exponential backoff plus jitter and resumes from the
// server's welcome point.
type ClientConfig struct {
	// Addr is the gateway address.
	Addr string
	// StreamID names the session; a reconnect with the same ID resumes
	// the same server-side receiver.
	StreamID uint64
	// Dial overrides the transport (tests inject fault-wrapped
	// connections); nil dials plain TCP.
	Dial func() (net.Conn, error)
	// InFlight caps unacknowledged windows (default 8). It must stay
	// comfortably under the link reassembler's reorder window so a shed
	// frame is rewound before the gap would be declared lost.
	InFlight int
	// Timeout is the per-operation I/O deadline (default 5s): a read or
	// write that cannot finish within it fails the connection over.
	Timeout time.Duration
	// MaxAttempts bounds consecutive failed connection cycles before
	// the stream gives up (default 10); any completed handshake resets
	// the count.
	MaxAttempts int
	// BackoffBase/BackoffFactor/BackoffMax shape the redial backoff
	// (defaults 20ms, ×2, 2s); jitter draws the actual wait uniformly
	// from [0.5, 1.5)× the nominal value so a fleet of reconnecting
	// clients does not stampede.
	BackoffBase   time.Duration
	BackoffFactor float64
	BackoffMax    time.Duration
	// JitterSeed seeds the backoff jitter and the fault injector.
	JitterSeed int64
	// Faults, when enabled, wraps every dialed connection in the
	// transport fault injector.
	Faults FaultConfig
}

func (c ClientConfig) withDefaults() ClientConfig {
	out := c
	if out.InFlight <= 0 {
		out.InFlight = 8
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 10
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 20 * time.Millisecond
	}
	if out.BackoffFactor <= 1 {
		out.BackoffFactor = 2
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 2 * time.Second
	}
	return out
}

// StreamResult summarises one delivered record.
type StreamResult struct {
	// Report is the server's digest frame.
	Report StreamReport
	// Resumes counts re-attaches after the first welcome; Redials all
	// dial attempts beyond the first; Rewinds the go-back-N rewinds
	// honoured; FramesSent every data frame written, retransmits
	// included.
	Resumes    int
	Redials    int
	Rewinds    int
	FramesSent int
}

// SendRecord delivers one record — frames[i] must be the link-encoded
// packet with sequence number i — and returns the server's digest
// report. It survives connection resets, truncated writes, corrupted
// frames and server-side shedding by redialing and resuming; it fails
// only when MaxAttempts consecutive connection cycles make no
// progress.
func SendRecord(cfg ClientConfig, frames [][]byte) (StreamResult, error) {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.JitterSeed ^ int64(c.StreamID*0x9e3779b97f4a7c15)))
	total := uint32(len(frames))
	var res StreamResult
	fails := 0
	attempts := 0
	for {
		if fails >= c.MaxAttempts {
			return res, fmt.Errorf("%w (stream %d, %d attempts)", ErrClient, c.StreamID, fails)
		}
		if attempts > 0 {
			res.Redials++
			backoffSleep(c, rng, fails)
		}
		attempts++
		done, err := runConn(c, rng, frames, total, &res, attempts > 1)
		if done {
			return res, nil
		}
		if err == nil {
			// Progressed to a welcome before failing: reset the giving-up
			// counter so a long record under a flaky transport is not
			// misread as an unreachable server.
			fails = 1
		} else {
			fails++
		}
	}
}

// backoffSleep waits the jittered exponential backoff for the given
// consecutive-failure count.
func backoffSleep(c ClientConfig, rng *rand.Rand, fails int) {
	d := float64(c.BackoffBase)
	for i := 1; i < fails; i++ {
		d *= c.BackoffFactor
		if d >= float64(c.BackoffMax) {
			d = float64(c.BackoffMax)
			break
		}
	}
	d *= 0.5 + rng.Float64() // jitter: [0.5, 1.5) × nominal
	if d > float64(c.BackoffMax) {
		d = float64(c.BackoffMax)
	}
	time.Sleep(time.Duration(d))
}

// runConn runs one connection cycle: dial, handshake, resume, pump
// windows until the record completes or the connection fails. done
// reports completion; err is nil when the cycle at least reached a
// welcome (progress), non-nil otherwise.
func runConn(c ClientConfig, rng *rand.Rand, frames [][]byte, total uint32, res *StreamResult, isResume bool) (bool, error) {
	conn, err := dialStream(c, rng, frames)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.Timeout))
	if err := writeFrame(conn, frameHello, helloPayload(c.StreamID)); err != nil {
		return false, err
	}
	var buf []byte
	typ, payload, buf, err := readFrame(conn, buf)
	if err != nil || typ != frameWelcome {
		if err == nil {
			err = ErrFrame
		}
		return false, err
	}
	id, next, err := parseWelcome(payload)
	if err != nil || id != c.StreamID {
		if err == nil {
			err = ErrFrame
		}
		return false, err
	}
	if isResume {
		res.Resumes++
	}
	// The server's welcome point is authoritative: everything before
	// next is decoded (or deduped), everything from next on is owed.
	acked := next
	cursor := next
	finSent := false
	for {
		conn.SetDeadline(time.Now().Add(c.Timeout))
		for cursor < total && cursor-acked < uint32(c.InFlight) {
			if err := writeFrame(conn, frameData, frames[cursor]); err != nil {
				return false, nil // connection failed after progress
			}
			cursor++
			res.FramesSent++
		}
		if acked == total && !finSent {
			if err := writeFrame(conn, frameFin, finPayload(total)); err != nil {
				return false, nil
			}
			finSent = true
		}
		typ, payload, buf, err = readFrame(conn, buf)
		if err != nil {
			return false, nil
		}
		switch typ {
		case frameAck:
			n, flags, perr := parseAck(payload)
			if perr != nil {
				return false, nil
			}
			acked = n
			if flags&ackFlagRewind != 0 {
				// Go-back-N: everything from the server's next expected
				// sequence number on was shed or corrupt — resend it.
				cursor = n
				res.Rewinds++
			}
			if acked < total {
				finSent = false
			}
		case frameDigest:
			rep, perr := parseDigest(payload)
			if perr != nil {
				return false, nil
			}
			res.Report = rep
			return true, nil
		default:
			return false, nil
		}
	}
}

// dialStream dials the gateway, injecting the duplicate-reconnect
// fault (a ghost connection replaying the stream's hello plus a few
// stale frames) and wrapping the real connection in the transport
// fault injector when faults are enabled.
func dialStream(c ClientConfig, rng *rand.Rand, frames [][]byte) (net.Conn, error) {
	if c.Faults.PDupHello > 0 && rng.Float64() < c.Faults.PDupHello {
		ghostHello(c, frames)
	}
	dial := c.Dial
	if dial == nil {
		dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", c.Addr, c.Timeout)
		}
	}
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	if c.Faults.Enabled() {
		conn = c.Faults.wrap(conn, rng)
	}
	return conn, nil
}

// ghostHello opens a short-lived duplicate connection for the stream —
// the "phone re-attached twice" scenario: it replays the hello and up
// to three stale frames, then vanishes. The server's latest-wins attach
// policy and the reassembler's dedup must absorb it without perturbing
// the real connection's stream.
func ghostHello(c ClientConfig, frames [][]byte) {
	conn, err := net.DialTimeout("tcp", c.Addr, c.Timeout)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.Timeout))
	if err := writeFrame(conn, frameHello, helloPayload(c.StreamID)); err != nil {
		return
	}
	for i := 0; i < 3 && i < len(frames); i++ {
		if err := writeFrame(conn, frameData, frames[i]); err != nil {
			return
		}
	}
	// Give the server a moment to process the ghost attach before the
	// real dial supersedes it.
	time.Sleep(time.Millisecond)
}

package netgw

import (
	"net"
	"sync/atomic"
	"time"

	"wbsn/internal/gateway"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// A session is one stream's actor: it owns the stream's
// gateway.Receiver (and through it any warm solver state), its
// link.Reassembler, and the only goroutine that ever touches either.
// Connections are transient visitors — a session outlives resets,
// truncated writes and reconnects, and is the reason a mid-record
// redial resumes instead of restarting.
//
// Concurrency contract: the reader goroutine of the currently attached
// connection is the only producer into the data inbox; attach/detach
// and drain arrive on a separate control channel so backpressure on
// data can never shed a control message. All writes to the connection
// happen on the actor goroutine, so acks, welcomes and digests are
// never interleaved mid-frame.

// sessionMsg is one data-inbox entry: a decoded link packet, or the
// client's fin request.
type sessionMsg struct {
	pkt link.Packet
	// rxNs is the reader-side arrival timestamp of a traced packet
	// (UnixNano; zero when untraced). The actor turns the inbox dwell
	// into the window's ingest span.
	rxNs int64
	// fin marks an end-of-record request carrying the client's total
	// window count instead of a packet.
	fin      bool
	finTotal uint32
}

// sessionCtl is one control-channel entry.
type sessionCtl struct {
	// attach hands the actor a freshly handshaken connection (nil conn
	// with detach set reverts to detached).
	conn   net.Conn
	detach bool
	// from identifies the connection a detach refers to, so a stale
	// detach cannot drop a newer connection.
	from net.Conn
	// nudge asks the actor to re-check the rewind flag — sent when the
	// reader drops a frame while the inbox is empty, so the rewind ack
	// is not deferred until the next delivery.
	nudge bool
}

// sessionStats is the control-plane view of a session, updated with
// atomics because the HTTP goroutine reads it while the actor (and the
// reader) write. The embedded histogram is the lock-free telemetry one,
// so per-session decode-latency quantiles cost four atomic ops per
// window.
type sessionStats struct {
	startedNs  int64
	seqHW      atomic.Uint32
	delivered  atomic.Uint64
	rewinds    atomic.Uint64
	sheds      atomic.Uint64
	corrupt    atomic.Uint64
	reconnects atomic.Uint64
	attached   atomic.Bool
	finished   atomic.Bool
	decodeNs   telemetry.Histogram
}

// info assembles the /sessions row.
func (st *sessionStats) info(id uint64) telemetry.SessionInfo {
	h := st.decodeNs.Snapshot()
	return telemetry.SessionInfo{
		ID:            id,
		StartedUnixNs: st.startedNs,
		Attached:      st.attached.Load(),
		Finished:      st.finished.Load(),
		SeqHighWater:  st.seqHW.Load(),
		Delivered:     st.delivered.Load(),
		Rewinds:       st.rewinds.Load(),
		Sheds:         st.sheds.Load(),
		Corrupt:       st.corrupt.Load(),
		Reconnects:    st.reconnects.Load(),
		DecodeNsP50:   h.P50,
		DecodeNsP99:   h.P99,
	}
}

type session struct {
	id  uint64
	srv *Server
	rx  *gateway.Receiver
	ra  *link.Reassembler
	// tr is this stream's window-trace ring (nil when the server has no
	// trace collector).
	tr *trace.Ring

	inbox chan sessionMsg
	ctl   chan sessionCtl
	// evict is closed by the control plane after it has removed the
	// session from the server table; the actor exits at its next select.
	evict chan struct{}

	stats sessionStats
	// everAttached distinguishes the first attach from reconnects
	// (actor-owned).
	everAttached bool

	// conn is the currently attached connection (actor-owned).
	conn net.Conn
	// sinceAck counts deliveries since the last cumulative ack.
	sinceAck int
	// rewind is set by the reader (shed or corrupt frame) and consumed
	// by the actor, which answers with a go-back-N ack.
	rewind atomic.Bool
	// finished is set once the record completed; report caches the
	// digest so a re-fin after a lost digest frame is answered
	// idempotently.
	finished bool
	report   StreamReport

	ttl *time.Timer
}

func newSession(srv *Server, id uint64) (*session, error) {
	rx, err := srv.getReceiver()
	if err != nil {
		return nil, err
	}
	s := &session{
		id:    id,
		srv:   srv,
		rx:    rx,
		inbox: make(chan sessionMsg, srv.cfg.InboxDepth),
		ctl:   make(chan sessionCtl, 4),
		evict: make(chan struct{}),
	}
	s.stats.startedNs = time.Now().UnixNano()
	if srv.trc != nil {
		s.tr = srv.trc.Session(id)
		rx.SetTrace(s.tr)
	}
	s.ra = link.NewReassembler(rx)
	return s, nil
}

// run is the actor loop. It exits when the record finishes and the TTL
// passes, when the session idles out with no connection, or when the
// server drains; a panic anywhere in the decode path is contained here
// so one poisoned stream cannot take the process down.
func (s *session) run() {
	defer s.srv.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if tm := s.srv.tel; tm != nil {
				tm.SessionPanics.Inc()
			}
			s.srv.logf("session %d: panic isolated: %v", s.id, r)
			s.detachConn()
			s.srv.removeSession(s.id)
			// The receiver may hold arbitrary broken state — do not
			// return it to the pool.
		}
	}()
	s.ttl = time.NewTimer(s.srv.cfg.SessionTTL)
	defer s.ttl.Stop()
	for {
		select {
		case c := <-s.ctl:
			s.handleCtl(c)
		case m := <-s.inbox:
			s.noteInboxPop()
			s.handleMsg(m)
		case <-s.srv.drainCh:
			s.drainAndExit()
			return
		case <-s.evict:
			// The control plane already removed us from the session table;
			// drop the connection and recycle the receiver. Frames still in
			// the inbox are discarded — eviction is an operator's kill
			// switch, not a graceful drain.
			s.detachConn()
			s.srv.putReceiver(s.rx)
			return
		case <-s.ttl.C:
			// No traffic for a full TTL: a detached (or finished) session
			// is garbage; an attached one keeps waiting — the connection
			// read deadline is the liveness watchdog there.
			if s.conn == nil {
				if tm := s.srv.tel; tm != nil {
					tm.SessionsExpired.Inc()
				}
				s.srv.removeSession(s.id)
				s.srv.putReceiver(s.rx)
				return
			}
			s.ttl.Reset(s.srv.cfg.SessionTTL)
		}
	}
}

func (s *session) touch() {
	if !s.ttl.Stop() {
		select {
		case <-s.ttl.C:
		default:
		}
	}
	s.ttl.Reset(s.srv.cfg.SessionTTL)
}

func (s *session) noteInboxPop() {
	if tm := s.srv.tel; tm != nil {
		tm.InboxDepth.Add(-1)
	}
}

func (s *session) handleCtl(c sessionCtl) {
	s.touch()
	if c.nudge {
		if s.rewind.Swap(false) {
			s.stats.rewinds.Add(1)
			if tm := s.srv.tel; tm != nil {
				tm.Rewinds.Inc()
			}
			s.ack(ackFlagRewind)
		}
		return
	}
	if c.detach {
		if s.conn == c.from {
			s.detachConn()
		}
		return
	}
	// A new connection supersedes whatever was attached — the
	// duplicate-reconnect policy is "latest wins", because the newest
	// dial is the one the living client made.
	s.detachConn()
	s.conn = c.conn
	s.stats.attached.Store(true)
	if s.everAttached {
		s.stats.reconnects.Add(1)
	}
	s.everAttached = true
	s.writeFrame(frameWelcome, welcomePayload(s.id, s.ra.NextSeq()))
}

func (s *session) detachConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.stats.attached.Store(false)
}

func (s *session) handleMsg(m sessionMsg) {
	s.touch()
	if m.fin {
		s.handleFin(m.finTotal)
		return
	}
	if s.finished {
		// Data after fin is a stale retransmit of an already-complete
		// record; the reassembler would count it as a duplicate, but
		// decoding is pointless — drop it.
		return
	}
	if h := s.srv.cfg.poison; h != nil {
		h(s.id, m.pkt)
	}
	var t0 time.Time
	if m.pkt.Trace != 0 && s.tr != nil && m.rxNs > 0 {
		// The ingest span is the frame's dwell between the reader's
		// handoff and the actor picking it up — inbox wait made visible.
		t0 = time.Now()
		s.tr.Record(m.pkt.Trace, trace.KindIngest, m.rxNs, t0.UnixNano()-m.rxNs)
	} else {
		t0 = time.Now()
	}
	if err := s.ra.Offer(m.pkt); err != nil {
		// The packet shape disagrees with the configured decoder
		// (gateway.ErrGateway): this client speaks the wrong geometry.
		// Poison only the connection, not the process.
		if tm := s.srv.tel; tm != nil {
			tm.ProtocolErrors.Inc()
		}
		s.srv.logf("session %d: packet rejected: %v", s.id, err)
		s.detachConn()
		return
	}
	s.stats.decodeNs.ObserveDuration(time.Since(t0))
	s.stats.seqHW.Store(s.ra.NextSeq())
	s.stats.delivered.Add(1)
	if tm := s.srv.tel; tm != nil {
		tm.Delivered.Inc()
	}
	s.sinceAck++
	// Answer a shed/corrupt episode with a go-back-N ack as soon as the
	// actor notices it; otherwise ack cumulatively every AckEvery
	// deliveries and whenever the inbox goes idle (tail flush).
	if s.rewind.Swap(false) {
		s.stats.rewinds.Add(1)
		if tm := s.srv.tel; tm != nil {
			tm.Rewinds.Inc()
		}
		s.ack(ackFlagRewind)
		return
	}
	if s.sinceAck >= s.srv.cfg.AckEvery || len(s.inbox) == 0 {
		s.ack(0)
	}
}

func (s *session) ack(flags byte) {
	s.sinceAck = 0
	s.writeFrame(frameAck, ackPayload(s.ra.NextSeq(), flags))
}

func (s *session) handleFin(total uint32) {
	if !s.finished {
		if s.ra.NextSeq() != total {
			// The client believes it is done but the session has not seen
			// everything (a shed tail, or a fin that raced a rewind).
			// Send the resume point instead of a digest.
			if s.rewind.Swap(false) {
				s.stats.rewinds.Add(1)
				if tm := s.srv.tel; tm != nil {
					tm.Rewinds.Inc()
				}
				s.ack(ackFlagRewind)
			} else {
				s.ack(0)
			}
			return
		}
		if err := s.ra.Flush(); err != nil {
			if tm := s.srv.tel; tm != nil {
				tm.ProtocolErrors.Inc()
			}
			s.detachConn()
			return
		}
		st := s.ra.Stats()
		s.report = StreamReport{
			Digest:     SignalDigest(s.rx.Signal()),
			Samples:    s.rx.SamplesReceived(),
			Delivered:  st.Delivered,
			Filled:     st.Filled,
			Duplicates: st.Duplicates,
		}
		s.finished = true
		s.stats.finished.Store(true)
		if tm := s.srv.tel; tm != nil {
			tm.SessionsFinished.Inc()
		}
	}
	s.writeFrame(frameDigest, digestPayload(s.report))
}

// drainAndExit is the graceful-shutdown path: stop ingesting (detach
// the connection so the reader dies), flush every already-accepted
// frame through the decode engine, then leave. The client sees its
// connection close and will fail over; nothing already accepted is
// thrown away.
func (s *session) drainAndExit() {
	s.detachConn()
	for {
		select {
		case m := <-s.inbox:
			s.noteInboxPop()
			if !m.fin && !s.finished {
				if err := s.ra.Offer(m.pkt); err == nil {
					s.stats.seqHW.Store(s.ra.NextSeq())
					s.stats.delivered.Add(1)
					if tm := s.srv.tel; tm != nil {
						tm.Delivered.Inc()
					}
				}
			}
		default:
			s.srv.removeSession(s.id)
			s.srv.putReceiver(s.rx)
			return
		}
	}
}

// writeFrame sends one frame on the attached connection under the
// configured write deadline; a write failure detaches the connection
// (the client will redial and resume).
func (s *session) writeFrame(typ byte, payload []byte) {
	if s.conn == nil {
		return
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	if err := writeFrame(s.conn, typ, payload); err != nil {
		s.detachConn()
	}
}

// offerData is called by the reader goroutine: a non-blocking handoff
// into the actor's inbox. A full inbox sheds the frame — the accept
// path and the reader never block on a slow decoder — and flags the
// actor to send a rewind ack so the client's go-back-N recovers the
// loss.
func (s *session) offerData(pkt link.Packet, tm *telemetry.NetGWMetrics) {
	m := sessionMsg{pkt: pkt}
	if pkt.Trace != 0 && s.tr != nil {
		m.rxNs = time.Now().UnixNano()
	}
	select {
	case s.inbox <- m:
		if tm != nil {
			tm.InboxDepth.Add(1)
		}
	default:
		s.stats.sheds.Add(1)
		if tm != nil {
			tm.FramesShed.Inc()
		}
		s.rewind.Store(true)
		s.nudge()
	}
}

// nudge non-blockingly pokes the actor to flush a pending rewind ack.
// Dropping the nudge is safe: a busy actor checks the flag on every
// delivery anyway.
func (s *session) nudge() {
	select {
	case s.ctl <- sessionCtl{nudge: true}:
	default:
	}
}

// offerFin is called by the reader goroutine for the final frame; it
// may block (the reader has nothing left to read) but gives up when the
// server starts draining.
func (s *session) offerFin(total uint32, tm *telemetry.NetGWMetrics) {
	select {
	case s.inbox <- sessionMsg{fin: true, finTotal: total}:
		if tm != nil {
			tm.InboxDepth.Add(1)
		}
	case <-s.srv.drainCh:
	}
}

// noteCorrupt is called by the reader when the link CRC rejects a data
// frame: the frame is dropped and the actor owes the client a rewind.
func (s *session) noteCorrupt(tm *telemetry.NetGWMetrics) {
	s.stats.corrupt.Add(1)
	if tm != nil {
		tm.FramesCorrupt.Inc()
	}
	s.rewind.Store(true)
	s.nudge()
}

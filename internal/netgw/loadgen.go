package netgw

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
	"wbsn/internal/link"
	"wbsn/internal/telemetry/trace"
)

// ErrLoadgen is returned for invalid load-generator configurations.
var ErrLoadgen = errors.New("netgw: invalid loadgen configuration")

// GatewayConfigFor derives the matched (node, gateway) configuration
// pair both sides of the wire must share — one sensing-matrix seed,
// one solver setting, like a deployed firmware image. wbsn-gateway and
// wbsn-loadgen both build their configuration through this function,
// so they agree by construction.
func GatewayConfigFor(seed int64, csRatio float64, solverIters int, solverTol float64, warm bool) (core.Config, gateway.Config, error) {
	if csRatio <= 0 {
		csRatio = 60
	}
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: csRatio, Seed: seed})
	if err != nil {
		return core.Config{}, gateway.Config{}, err
	}
	ncfg := node.Config()
	gcfg := gateway.MatchNode(ncfg)
	if solverIters > 0 {
		gcfg.Solver.Iters = solverIters
	}
	gcfg.Solver.Tol = solverTol
	gcfg.WarmStart = warm
	return ncfg, gcfg, nil
}

// LoadgenConfig parameterises a loopback replay of fleet traffic
// against a running gateway server.
type LoadgenConfig struct {
	// Addr is the gateway address.
	Addr string
	// Streams is the concurrent stream count (default 8).
	Streams int
	// Records is the number of distinct synthesised records the streams
	// share round-robin (default min(Streams, 8)) — record synthesis
	// and in-process verification cost scale with Records, not Streams.
	Records int
	// DurationS is the per-record length in seconds (default 8).
	DurationS float64
	// Seed derives record content, stream IDs and per-stream jitter.
	Seed int64
	// IDBase, when nonzero, overrides the base stream ID (default
	// Seed<<32). Successive runs against one server must use distinct
	// bases: a reused ID re-attaches to the finished session and is
	// answered from its cached digest instead of decoding anything.
	IDBase uint64
	// CSRatio, SolverIters, SolverTol, WarmStart mirror the server's
	// flags; they parameterise GatewayConfigFor on this side.
	CSRatio     float64
	SolverIters int
	SolverTol   float64
	WarmStart   bool
	// RunFor, when positive, keeps every stream looping (a fresh
	// session per record) until the deadline; zero sends exactly one
	// record per stream.
	RunFor time.Duration
	// Verify decodes each distinct record once in-process and compares
	// every stream's server digest against it — the bit-identity check.
	Verify bool
	// Trace link-encodes the replay set as version-2 (traced) frames:
	// each window carries its node-minted trace ID and encode duration,
	// so the server's /traces trees span both sides of the wire. The
	// float payload — and therefore every digest — is unchanged.
	// Streams replaying the same record reuse its trace IDs; IDs only
	// need to be unique within a session, and every (stream, record)
	// pass is its own session.
	Trace bool
	// Client is the per-stream sender template (Addr, StreamID and
	// JitterSeed are filled per stream); its Faults field arms the
	// transport fault injector.
	Client ClientConfig
	// Logf, when set, receives per-stream failure lines.
	Logf func(format string, args ...any)
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	out := c
	if out.Streams <= 0 {
		out.Streams = 8
	}
	if out.Records <= 0 {
		out.Records = out.Streams
		if out.Records > 8 {
			out.Records = 8
		}
	}
	if out.DurationS <= 0 {
		out.DurationS = 8
	}
	return out
}

// LoadgenResult aggregates one loadgen run.
type LoadgenResult struct {
	// Streams is the concurrent stream count; RecordsDone the records
	// fully delivered and digested; Failures the streams that gave up;
	// Mismatches the records whose server digest disagreed with the
	// in-process reconstruction (must be zero).
	Streams     int
	RecordsDone int
	Failures    int
	Mismatches  int
	// WindowsDone counts the windows of completed records; FramesSent
	// every data frame written including retransmits; Resumes, Rewinds
	// and Redials the fault-recovery work.
	WindowsDone int
	FramesSent  int
	Resumes     int
	Rewinds     int
	Redials     int
	// Elapsed is the wall time of the replay; RecordsPerSec and
	// WindowsPerSec the sustained server-side completion rates.
	Elapsed       float64
	RecordsPerSec float64
	WindowsPerSec float64
}

func (r *LoadgenResult) String() string {
	return fmt.Sprintf("streams %d records %d (%.1f rec/s, %.1f win/s) failures %d mismatches %d resumes %d rewinds %d redials %d frames %d",
		r.Streams, r.RecordsDone, r.RecordsPerSec, r.WindowsPerSec,
		r.Failures, r.Mismatches, r.Resumes, r.Rewinds, r.Redials, r.FramesSent)
}

// traffic is the pre-encoded replay set: one window batch per distinct
// record, already link-encoded, plus the expected in-process digests.
type traffic struct {
	ncfg    core.Config
	gcfg    gateway.Config
	frames  [][][]byte // [record][seq] -> encoded link packet
	digests []uint64   // expected digest per record (Verify only)
}

// buildTraffic synthesises the records, runs them through the CS node
// to produce the measurement windows, link-encodes each window, and —
// when verify is on — reconstructs each record in-process to pin the
// expected digest.
func buildTraffic(c LoadgenConfig) (*traffic, error) {
	ncfg, gcfg, err := GatewayConfigFor(c.Seed, c.CSRatio, c.SolverIters, c.SolverTol, c.WarmStart)
	if err != nil {
		return nil, err
	}
	t := &traffic{ncfg: ncfg, gcfg: gcfg}
	node, err := core.NewNode(ncfg)
	if err != nil {
		return nil, err
	}
	// A discard collector gives the node streams a ring to mint trace
	// IDs (and measure encode durations) into; nothing reads it — the
	// server side rebuilds the node spans from the wire-carried fields.
	var discard *trace.Collector
	if c.Trace {
		discard = trace.New(64, 1, 1)
	}
	for r := 0; r < c.Records; r++ {
		rec := ecg.Generate(ecg.Config{Seed: c.Seed + int64(r), Duration: c.DurationS})
		stream, err := node.NewStream()
		if err != nil {
			return nil, err
		}
		if discard != nil {
			stream.SetTrace(discard.Session(uint64(r)), uint32(r)+1)
		}
		chunk := make([][]float64, len(rec.Leads))
		for li := range chunk {
			chunk[li] = rec.Clean[li]
		}
		events, err := stream.PushBlock(chunk)
		if err != nil {
			return nil, err
		}
		var frames [][]byte
		var rx *gateway.Receiver
		if c.Verify {
			rx, err = gateway.NewReceiver(gcfg)
			if err != nil {
				return nil, err
			}
		}
		for _, e := range events {
			if e.Kind != core.EventPacket || e.Measurements == nil {
				continue
			}
			seq := uint32(len(frames))
			p := link.Packet{Seq: seq, WindowStart: uint32(e.At), Measurements: e.Measurements}
			if c.Trace {
				p.Trace, p.EncodeNs = e.Trace, e.EncodeNs
			}
			f, err := link.Encode(p)
			if err != nil {
				return nil, err
			}
			frames = append(frames, f)
			if rx != nil {
				// The reference consumes the encoded frame's decode, not the
				// raw measurements: the link codec carries float32 on the
				// wire (as the fleet's radio links do), and bit-identity is
				// judged against the same bytes the server will decode.
				pkt, err := link.Decode(f)
				if err != nil {
					return nil, err
				}
				if err := rx.ConsumePacket(pkt.Measurements); err != nil {
					return nil, err
				}
			}
		}
		if len(frames) == 0 {
			return nil, fmt.Errorf("%w: record %d produced no CS windows", ErrLoadgen, r)
		}
		t.frames = append(t.frames, frames)
		if rx != nil {
			t.digests = append(t.digests, SignalDigest(rx.Signal()))
		}
	}
	return t, nil
}

// RunLoadgen replays fleet traffic over the wire: Streams concurrent
// senders, each delivering records (round-robin over the distinct
// record set) to the gateway at Addr, with optional transport fault
// injection and in-process digest verification.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	c := cfg.withDefaults()
	t, err := buildTraffic(c)
	if err != nil {
		return nil, err
	}
	res := &LoadgenResult{Streams: c.Streams}
	var mu sync.Mutex
	var idCounter atomic.Uint64
	idBase := c.IDBase
	if idBase == 0 {
		idBase = uint64(c.Seed) << 32
	}
	deadline := time.Time{}
	if c.RunFor > 0 {
		deadline = time.Now().Add(c.RunFor)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c.Streams; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := idCounter.Add(1) - 1
				if c.RunFor > 0 {
					if !time.Now().Before(deadline) {
						return
					}
				} else if n >= uint64(c.Streams) {
					return
				}
				rec := int(n % uint64(len(t.frames)))
				ccfg := c.Client
				ccfg.Addr = c.Addr
				ccfg.StreamID = idBase + n
				ccfg.JitterSeed = c.Seed + int64(n)
				sr, err := SendRecord(ccfg, t.frames[rec])
				mu.Lock()
				if err != nil {
					res.Failures++
					if c.Logf != nil {
						c.Logf("stream %d: %v", ccfg.StreamID, err)
					}
				} else {
					res.RecordsDone++
					res.WindowsDone += len(t.frames[rec])
					if c.Verify {
						if sr.Report.Digest != t.digests[rec] || sr.Report.Filled > 0 {
							res.Mismatches++
							if c.Logf != nil {
								c.Logf("stream %d: DIGEST MISMATCH record %d: got %s want %016x",
									ccfg.StreamID, rec, sr.Report, t.digests[rec])
							}
						}
					}
				}
				res.FramesSent += sr.FramesSent
				res.Resumes += sr.Resumes
				res.Rewinds += sr.Rewinds
				res.Redials += sr.Redials
				mu.Unlock()
				if c.RunFor <= 0 {
					return
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start).Seconds()
	if res.Elapsed > 0 {
		res.RecordsPerSec = float64(res.RecordsDone) / res.Elapsed
		res.WindowsPerSec = float64(res.WindowsDone) / res.Elapsed
	}
	return res, nil
}

package netgw

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"wbsn/internal/gateway"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

// testSeed is the shared sensing-matrix seed: the server and the load
// generator both derive their configuration from it, exactly like a
// deployed firmware pair.
const testSeed = 77

// testGatewayConfig is the server-side decode configuration the e2e
// tests run with: fast solver, early exit, cold start.
func testGatewayConfig(t testing.TB) gateway.Config {
	t.Helper()
	_, gcfg, err := GatewayConfigFor(testSeed, 60, 40, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	return gcfg
}

// startServer boots a gateway server on a loopback port with a full
// telemetry set attached; mut tweaks the configuration before Serve.
func startServer(t testing.TB, mut func(*ServerConfig)) (*Server, *telemetry.Set) {
	t.Helper()
	set := telemetry.NewSet(telemetry.NewRegistry())
	cfg := ServerConfig{
		Addr:          "127.0.0.1:0",
		Gateway:       testGatewayConfig(t),
		EngineWorkers: 2,
		Telemetry:     set,
		Logf:          t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, set
}

// testLoadgen is the loadgen template matched to testGatewayConfig:
// same seed, same solver, verification on, short client timeouts so
// recovery paths run at test speed.
func testLoadgen(addr string, streams, records int) LoadgenConfig {
	return LoadgenConfig{
		Addr:        addr,
		Streams:     streams,
		Records:     records,
		DurationS:   4, // two CS windows per record
		Seed:        testSeed,
		SolverIters: 40,
		SolverTol:   1e-3,
		Verify:      true,
		Client: ClientConfig{
			Timeout:     2 * time.Second,
			MaxAttempts: 20,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		},
	}
}

// The correctness bar of the whole package: per-stream reconstruction
// digests from the networked path must be bit-identical to the
// in-process gateway.Receiver path.
func TestNetGatewayCleanBitIdentity(t *testing.T) {
	srv, set := startServer(t, nil)
	cfg := testLoadgen(srv.Addr(), 4, 2)
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Mismatches != 0 {
		t.Fatalf("clean run: %s", res)
	}
	if res.RecordsDone != 4 {
		t.Fatalf("records done %d, want 4 (%s)", res.RecordsDone, res)
	}
	tm := set.NetGW
	if got := tm.SessionsFinished.Value(); got != 4 {
		t.Errorf("sessions finished %d, want 4", got)
	}
	if got := tm.Delivered.Value(); got != uint64(res.WindowsDone) {
		t.Errorf("windows delivered %d, want %d", got, res.WindowsDone)
	}
	if tm.FramesShed.Value() != 0 || tm.FramesCorrupt.Value() != 0 || tm.ProtocolErrors.Value() != 0 {
		t.Errorf("clean run saw shed %d corrupt %d proto %d",
			tm.FramesShed.Value(), tm.FramesCorrupt.Value(), tm.ProtocolErrors.Value())
	}
}

// The same bar under an adversarial transport: connection resets,
// truncated writes, bit flips, slowloris pacing and duplicate
// reconnects must all be absorbed — zero digest mismatches — and the
// faults must demonstrably have fired.
func TestNetGatewayFaultInjection(t *testing.T) {
	srv, set := startServer(t, func(c *ServerConfig) {
		c.IdleTimeout = 5 * time.Second
	})
	cfg := testLoadgen(srv.Addr(), 8, 2)
	cfg.Client.Faults = FaultConfig{
		PReset:     0.08,
		PTruncate:  0.08,
		PBitFlip:   0.12,
		PSlowloris: 0.05,
		PDupHello:  0.5,
		SlowChunk:  256,
		SlowDelay:  time.Millisecond,
	}
	cfg.Logf = t.Logf
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("digest mismatches under faults: %s", res)
	}
	if res.Failures != 0 {
		t.Fatalf("stream failures under faults: %s", res)
	}
	if res.RecordsDone != 8 {
		t.Fatalf("records done %d, want 8 (%s)", res.RecordsDone, res)
	}
	tm := set.NetGW
	faultEvents := res.Redials + res.Rewinds + res.Resumes +
		int(tm.FramesCorrupt.Value()) + int(tm.ProtocolErrors.Value())
	if faultEvents == 0 {
		t.Errorf("fault injector fired nothing (%s) — probabilities too low for the traffic volume", res)
	}
	t.Logf("fault run: %s (corrupt %d, proto errors %d, resumes(srv) %d)",
		res, tm.FramesCorrupt.Value(), tm.ProtocolErrors.Value(), tm.Resumes.Value())
}

// Backpressure contract: a decoder slower than the wire fills the
// bounded inbox, frames are shed (never blocking the reader), the
// rewind ack recovers them, and the digest still matches bit for bit.
func TestNetGatewayBackpressureShed(t *testing.T) {
	srv, set := startServer(t, func(c *ServerConfig) {
		c.InboxDepth = 1
		c.AckEvery = 1
		// Slow every decode enough that an eager client overruns the
		// one-slot inbox.
		c.poison = func(uint64, link.Packet) { time.Sleep(30 * time.Millisecond) }
	})
	cfg := testLoadgen(srv.Addr(), 1, 1)
	cfg.DurationS = 8 // four windows, so the client can run ahead
	cfg.Client.InFlight = 8
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Mismatches != 0 || res.RecordsDone != 1 {
		t.Fatalf("shed run: %s", res)
	}
	tm := set.NetGW
	if tm.FramesShed.Value() == 0 {
		t.Errorf("no frames shed: inbox depth 1 with slow decode should overrun (%s)", res)
	}
	if res.Rewinds == 0 {
		t.Errorf("shed frames recovered without a rewind? (%s)", res)
	}
	t.Logf("shed run: %s (shed %d)", res, tm.FramesShed.Value())
}

// Graceful drain: Shutdown under live load stops accepting, flushes
// what was already accepted and returns within the context deadline;
// afterwards the port is closed.
func TestNetGatewayGracefulDrain(t *testing.T) {
	srv, set := startServer(t, nil)
	cfg := testLoadgen(srv.Addr(), 4, 2)
	cfg.RunFor = 10 * time.Second
	cfg.Client.MaxAttempts = 2
	cfg.Client.BackoffMax = 20 * time.Millisecond
	done := make(chan *LoadgenResult, 1)
	go func() {
		res, _ := RunLoadgen(cfg)
		done <- res
	}()
	// Shut down only once records have demonstrably flowed — fixed
	// sleeps are too fragile under -race, where traffic synthesis alone
	// can take seconds.
	waitUntil := time.Now().Add(8 * time.Second)
	for set.NetGW.SessionsFinished.Value() < 2 {
		if time.Now().After(waitUntil) {
			t.Fatalf("no sessions finished before the drain (finished %d)", set.NetGW.SessionsFinished.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let the digest frames reach their clients
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if set.NetGW.DrainNs.Value() <= 0 {
		t.Error("drain duration gauge not set")
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		t.Error("dial succeeded after Shutdown, want refused")
	}
	res := <-done
	if res == nil {
		t.Fatal("loadgen returned nil")
	}
	if res.Mismatches != 0 {
		t.Fatalf("mismatches across drain: %s", res)
	}
	if res.RecordsDone == 0 {
		t.Errorf("no records completed before the drain (%s)", res)
	}
	// Second Shutdown is a safe no-op.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	t.Logf("drain: %.1fms, %s", float64(set.NetGW.DrainNs.Value())/1e6, res)
}

// Panic isolation: one poisoned stream must kill only its own session
// actor; the client redials into a fresh session and completes, and
// every other stream is untouched.
func TestNetGatewayPanicIsolation(t *testing.T) {
	var poisoned atomic.Bool
	srv, set := startServer(t, func(c *ServerConfig) {
		c.poison = func(id uint64, _ link.Packet) {
			// Poison exactly one delivery of one stream (ids are
			// idBase+n; n==1 is the second stream).
			if id&0xffffffff == 1 && poisoned.CompareAndSwap(false, true) {
				panic("poisoned packet")
			}
		}
	})
	cfg := testLoadgen(srv.Addr(), 4, 2)
	cfg.Client.Timeout = time.Second
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Mismatches != 0 || res.RecordsDone != 4 {
		t.Fatalf("panic run: %s", res)
	}
	if got := set.NetGW.SessionPanics.Value(); got != 1 {
		t.Errorf("session panics %d, want 1", got)
	}
	if res.Redials == 0 {
		t.Errorf("poisoned stream completed without redialing? (%s)", res)
	}
}

// A slowloris client that stalls mid-frame must be cut by the per-frame
// read deadline — it cannot hold a reader goroutine forever.
func TestNetGatewaySlowClientCut(t *testing.T) {
	srv, _ := startServer(t, func(c *ServerConfig) {
		c.IdleTimeout = 200 * time.Millisecond
	})
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHello, helloPayload(99)); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := readFrame(conn, nil)
	if err != nil || typ != frameWelcome {
		t.Fatalf("handshake: type %#x err %v", typ, err)
	}
	// Half a data-frame header, then silence.
	if _, err := conn.Write([]byte{'W', 'G', frameVersion, frameData}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("expected server-side close, got local deadline: %v", err)
	}
	if cut := time.Since(start); cut > 2*time.Second {
		t.Errorf("stalled connection cut after %v, want ~IdleTimeout (200ms)", cut)
	}
}

// A session whose client vanishes must expire after SessionTTL and
// return its receiver to the pool.
func TestNetGatewaySessionExpiry(t *testing.T) {
	srv, set := startServer(t, func(c *ServerConfig) {
		c.IdleTimeout = 100 * time.Millisecond
		c.SessionTTL = 300 * time.Millisecond
	})
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, helloPayload(7)); err != nil {
		t.Fatal(err)
	}
	if typ, _, _, err := readFrame(conn, nil); err != nil || typ != frameWelcome {
		t.Fatalf("handshake: type %#x err %v", typ, err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for set.NetGW.SessionsExpired.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session did not expire (active %d)", set.NetGW.SessionsActive.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := set.NetGW.SessionsActive.Value(); got != 0 {
		t.Errorf("sessions active after expiry = %d, want 0", got)
	}
}

// BenchmarkNetGatewayRecords measures sustained end-to-end server
// throughput on loopback: records (and windows) fully delivered,
// decoded and digested per second, verification off.
func BenchmarkNetGatewayRecords(b *testing.B) {
	srv, _ := startServer(b, nil)
	cfg := testLoadgen(srv.Addr(), 4, 2)
	cfg.Verify = false
	b.ResetTimer()
	records, windows := 0, 0
	for i := 0; i < b.N; i++ {
		// Fresh stream IDs per iteration: reused IDs would re-attach to
		// finished sessions and be answered from cached digests.
		cfg.IDBase = uint64(testSeed)<<32 + uint64(i+1)<<16
		res, err := RunLoadgen(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures: %s", res)
		}
		records += res.RecordsDone
		windows += res.WindowsDone
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(records)/secs, "records/s")
		b.ReportMetric(float64(windows)/secs, "windows/s")
	}
}

package netgw

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"wbsn/internal/gateway"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// ErrServer is returned for invalid server configuration or use.
var ErrServer = errors.New("netgw: invalid server configuration")

// ServerConfig parameterises the networked gateway.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Gateway mirrors the fleet's node configuration — every stream is
	// decoded with this geometry, exactly like a deployed firmware
	// image shares one sensing-matrix seed.
	Gateway gateway.Config
	// EngineWorkers sizes the shared reconstruction pool (0 selects
	// GOMAXPROCS; negative decodes inline on the session actors).
	EngineWorkers int
	// EngineBatch is the most queued windows one engine worker dispatch
	// reconstructs in a single structure-of-arrays solver pass (default
	// 1 — sequential dispatch). Concurrent sessions submitting into the
	// shared pool fill batches opportunistically; per window the output
	// is bit-identical at every batch size.
	EngineBatch int
	// EngineBatchWait bounds how long an engine worker holding a
	// partial batch waits for more windows before dispatching (0
	// dispatches greedily with whatever is queued).
	EngineBatchWait time.Duration
	// InboxDepth bounds each session actor's data inbox (default 32).
	// A full inbox sheds frames — backpressure never blocks a reader.
	InboxDepth int
	// AckEvery is the cumulative-ack cadence in delivered windows
	// (default 4). Rewind acks are sent immediately regardless.
	AckEvery int
	// IdleTimeout is the per-frame read deadline (default 30s): a
	// connection that cannot produce one complete frame within it —
	// idle or slowloris-paced — is cut. The session survives the cut.
	IdleTimeout time.Duration
	// WriteTimeout bounds every server-side frame write (default 10s),
	// so a client that stops reading cannot wedge a session actor.
	WriteTimeout time.Duration
	// SessionTTL is how long a session outlives its last activity
	// (default 2m) — the window a disconnected client has to redial and
	// resume, and the retention of a finished record's digest for
	// idempotent re-fins.
	SessionTTL time.Duration
	// Telemetry, when set, wires the netgw and gateway metric families.
	Telemetry *telemetry.Set
	// Logf, when set, receives one line per notable session event.
	Logf func(format string, args ...any)

	// poison, when set (tests only), runs on the actor goroutine for
	// every delivered packet before decode — the hook used to prove
	// panic isolation.
	poison func(streamID uint64, p link.Packet)
}

func (c ServerConfig) withDefaults() ServerConfig {
	out := c
	if out.InboxDepth <= 0 {
		out.InboxDepth = 32
	}
	if out.AckEvery <= 0 {
		out.AckEvery = 4
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 30 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.SessionTTL <= 0 {
		out.SessionTTL = 2 * time.Minute
	}
	return out
}

// Server is the networked gateway: an accept loop, a session actor per
// stream, and one shared reconstruction engine.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	engine *gateway.Engine
	tel    *telemetry.NetGWMetrics
	// trc is the end-to-end window-trace collector (nil without
	// telemetry); each session records into its own per-stream ring.
	trc *trace.Collector

	mu       sync.Mutex
	sessions map[uint64]*session
	conns    map[net.Conn]struct{}
	freeRx   []*gateway.Receiver
	draining bool

	drainCh   chan struct{}
	drainOnce sync.Once
	acceptWg  sync.WaitGroup
	connWg    sync.WaitGroup
	// wg counts session actors.
	wg sync.WaitGroup
}

// Serve binds the listener and starts accepting. The returned server
// is running; stop it with Shutdown (graceful) or Close.
func Serve(cfg ServerConfig) (*Server, error) {
	c := cfg.withDefaults()
	s := &Server{
		cfg:      c,
		sessions: make(map[uint64]*session),
		conns:    make(map[net.Conn]struct{}),
		drainCh:  make(chan struct{}),
	}
	if c.Telemetry != nil {
		s.tel = c.Telemetry.NetGW
		s.trc = c.Telemetry.Trace
	}
	if c.EngineWorkers >= 0 {
		ecfg := gateway.EngineConfig{Workers: c.EngineWorkers, Batch: c.EngineBatch, BatchWait: c.EngineBatchWait}
		if c.Telemetry != nil {
			ecfg.Metrics = c.Telemetry.Gateway
		}
		eng, err := gateway.NewEngine(c.Gateway, ecfg)
		if err != nil {
			return nil, err
		}
		s.engine = eng
	}
	ln, err := net.Listen("tcp", c.Addr)
	if err != nil {
		if s.engine != nil {
			s.engine.Close()
		}
		return nil, err
	}
	s.ln = ln
	s.acceptWg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown/Close)
		}
		if !s.trackConn(conn) {
			conn.Close()
			continue
		}
		if tm := s.tel; tm != nil {
			tm.ConnsAccepted.Inc()
		}
		s.connWg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn is the per-connection reader: handshake, then decode data
// frames into the session's inbox until the connection dies. It never
// decodes CS windows itself and never blocks on the actor — shedding,
// not blocking, is the backpressure contract.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.logf("conn %v: reader panic isolated: %v", conn.RemoteAddr(), r)
		}
		conn.Close()
		s.untrackConn(conn)
		if tm := s.tel; tm != nil {
			tm.ConnsClosed.Inc()
		}
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var buf []byte
	// Handshake: the first frame must be a Hello naming the stream.
	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	typ, payload, buf, err := readFrame(conn, buf)
	if err != nil || typ != frameHello {
		s.protoErr("handshake")
		return
	}
	id, err := parseHello(payload)
	if err != nil {
		s.protoErr("hello")
		return
	}
	sess, resumed, err := s.attach(id, conn)
	if err != nil {
		return // draining, or receiver construction failed
	}
	if tm := s.tel; tm != nil && resumed {
		tm.Resumes.Inc()
	}
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		typ, payload, buf, err = readFrame(conn, buf)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				s.protoErr("framing")
			} else if ne := net.Error(nil); errors.As(err, &ne) && ne.Timeout() {
				// The deadline fired mid-frame or on an idle line: a
				// slowloris-paced or dead connection was cut.
				if tm := s.tel; tm != nil {
					tm.IdleCuts.Inc()
				}
			}
			break
		}
		switch typ {
		case frameData:
			if tm := s.tel; tm != nil {
				tm.FramesRx.Inc()
			}
			pkt, derr := link.Decode(payload)
			if derr != nil {
				// Corrupt in flight (bit flips): drop the frame, owe the
				// client a rewind. The link CRC is the integrity boundary.
				sess.noteCorrupt(s.tel)
				continue
			}
			sess.offerData(pkt, s.tel)
		case frameFin:
			total, perr := parseFin(payload)
			if perr != nil {
				s.protoErr("fin")
				return
			}
			sess.offerFin(total, s.tel)
		case frameHello:
			// A re-Hello on the same connection re-runs the handshake (a
			// confused client, or a duplicate dialer probing). Same
			// stream only; switching streams mid-connection is an error.
			rid, perr := parseHello(payload)
			if perr != nil || rid != id {
				s.protoErr("re-hello")
				return
			}
			s.sendAttach(sess, conn)
		default:
			s.protoErr("unexpected frame type")
			return
		}
	}
	// Tell the actor this connection is gone (best effort; a stale
	// detach for a superseded connection is ignored by the actor).
	select {
	case sess.ctl <- sessionCtl{detach: true, from: conn}:
	default:
	}
}

func (s *Server) protoErr(what string) {
	if tm := s.tel; tm != nil {
		tm.ProtocolErrors.Inc()
	}
	s.logf("protocol error: %s", what)
}

// attach finds or creates the stream's session and hands it the
// connection. The bool reports whether an existing session resumed.
func (s *Server) attach(id uint64, conn net.Conn) (*session, bool, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrServer
	}
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		// Build the session (and its receiver, which takes s.mu for the
		// pool) outside the lock, then publish it — losing a publish race
		// to a concurrent dial for the same stream just returns the
		// receiver to the pool.
		fresh, err := newSession(s, id)
		if err != nil {
			s.logf("session %d: receiver: %v", id, err)
			return nil, false, err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.putReceiver(fresh.rx)
			return nil, false, ErrServer
		}
		if existing, raced := s.sessions[id]; raced {
			s.mu.Unlock()
			s.putReceiver(fresh.rx)
			sess, ok = existing, true
		} else {
			s.sessions[id] = fresh
			if tm := s.tel; tm != nil {
				tm.SessionsStarted.Inc()
				tm.SessionsActive.Set(int64(len(s.sessions)))
			}
			s.wg.Add(1)
			go fresh.run()
			s.mu.Unlock()
			sess = fresh
		}
	}
	if tm := s.tel; tm != nil {
		tm.Attaches.Inc()
		if ok && sess.stats.seqHW.Load() > 0 {
			// Reconnected to a session holding real progress: the redial
			// resumed mid-record instead of restarting.
			tm.ResumeHits.Inc()
		}
	}
	s.sendAttach(sess, conn)
	return sess, ok, nil
}

// sendAttach queues the attach without blocking: if the actor's control
// channel is saturated the connection is closed instead — the client
// redials, which is always safe.
func (s *Server) sendAttach(sess *session, conn net.Conn) {
	select {
	case sess.ctl <- sessionCtl{conn: conn}:
	default:
		conn.Close()
	}
}

func (s *Server) removeSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	if tm := s.tel; tm != nil {
		tm.SessionsActive.Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
	if s.trc != nil {
		s.trc.DropSession(id)
	}
}

// getReceiver pops a pooled receiver or builds one mirroring the
// server's gateway configuration, engine attached.
func (s *Server) getReceiver() (*gateway.Receiver, error) {
	s.mu.Lock()
	if n := len(s.freeRx); n > 0 {
		rx := s.freeRx[n-1]
		s.freeRx = s.freeRx[:n-1]
		s.mu.Unlock()
		return rx, nil
	}
	s.mu.Unlock()
	rx, err := gateway.NewReceiver(s.cfg.Gateway)
	if err != nil {
		return nil, err
	}
	if s.engine != nil {
		if err := rx.AttachEngine(s.engine); err != nil {
			return nil, err
		}
	}
	return rx, nil
}

// putReceiver resets a session's receiver and returns it to the pool,
// so steady-state session churn reuses decoder state instead of
// regenerating the sensing matrix per connection.
func (s *Server) putReceiver(rx *gateway.Receiver) {
	rx.SetTrace(nil)
	rx.Reset()
	s.mu.Lock()
	s.freeRx = append(s.freeRx, rx)
	s.mu.Unlock()
}

// Shutdown drains the server gracefully: stop accepting, cut the
// transport (clients fail over cleanly), flush every frame already
// accepted into a session inbox through the reconstruction engine,
// then release the engine. ctx bounds the wait; on expiry the engine
// teardown finishes in the background and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	start := time.Now()
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.acceptWg.Wait()
		s.connWg.Wait()
		s.wg.Wait()
		if s.engine != nil {
			s.engine.Close()
		}
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if tm := s.tel; tm != nil {
		tm.DrainNs.Set(time.Since(start).Nanoseconds())
	}
	return err
}

// Close stops the server, waiting indefinitely for the drain to
// complete.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// The Server is the telemetry endpoint's ControlPlane: /sessions and
// /sessions/{id}/evict are answered from the session table below.
var _ telemetry.ControlPlane = (*Server)(nil)

// ControlSessions snapshots the live session table. Stats are atomics
// updated by the session actors, so the snapshot never blocks the data
// path.
func (s *Server) ControlSessions() []telemetry.SessionInfo {
	s.mu.Lock()
	out := make([]telemetry.SessionInfo, 0, len(s.sessions))
	for id, sess := range s.sessions {
		out = append(out, sess.stats.info(id))
	}
	s.mu.Unlock()
	return out
}

// EvictSession removes session id from the table synchronously — the
// next ControlSessions call no longer lists it — and signals its actor
// to exit. Reports whether the session existed. The stream id is not
// banned: a client that redials afterwards starts a fresh session.
func (s *Server) EvictSession(id uint64) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		if tm := s.tel; tm != nil {
			tm.SessionsActive.Set(int64(len(s.sessions)))
		}
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	if s.trc != nil {
		s.trc.DropSession(id)
	}
	if tm := s.tel; tm != nil {
		tm.Evictions.Inc()
	}
	close(sess.evict)
	s.logf("session %d: evicted", id)
	return true
}

// Draining reports whether a graceful shutdown is in progress (drives
// /healthz).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

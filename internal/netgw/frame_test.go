package netgw

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"wbsn/internal/link"
)

// Every control payload must survive a build→parse round trip, and the
// parsers must reject any other length.
func TestControlPayloadRoundTrip(t *testing.T) {
	if id, err := parseHello(helloPayload(0xdeadbeefcafe)); err != nil || id != 0xdeadbeefcafe {
		t.Errorf("hello round trip: id %x err %v", id, err)
	}
	if id, next, err := parseWelcome(welcomePayload(42, 7)); err != nil || id != 42 || next != 7 {
		t.Errorf("welcome round trip: id %d next %d err %v", id, next, err)
	}
	if next, flags, err := parseAck(ackPayload(9, ackFlagRewind)); err != nil || next != 9 || flags != ackFlagRewind {
		t.Errorf("ack round trip: next %d flags %d err %v", next, flags, err)
	}
	if total, err := parseFin(finPayload(31)); err != nil || total != 31 {
		t.Errorf("fin round trip: total %d err %v", total, err)
	}
	rep := StreamReport{Digest: 0x0123456789abcdef, Samples: 5120, Delivered: 10, Filled: 1, Duplicates: 3}
	got, err := parseDigest(digestPayload(rep))
	if err != nil || got != rep {
		t.Errorf("digest round trip: %+v err %v", got, err)
	}
	// Wrong sizes are structural errors, not panics or silent zeroes.
	if _, err := parseHello(nil); !errors.Is(err, ErrFrame) {
		t.Errorf("short hello: %v", err)
	}
	if _, _, err := parseWelcome(make([]byte, 11)); !errors.Is(err, ErrFrame) {
		t.Errorf("short welcome: %v", err)
	}
	if _, _, err := parseAck(make([]byte, 6)); !errors.Is(err, ErrFrame) {
		t.Errorf("long ack: %v", err)
	}
	if _, err := parseFin(make([]byte, 3)); !errors.Is(err, ErrFrame) {
		t.Errorf("short fin: %v", err)
	}
	if _, err := parseDigest(make([]byte, 23)); !errors.Is(err, ErrFrame) {
		t.Errorf("short digest: %v", err)
	}
}

// A frame written by writeFrame must read back with the same type and
// payload, and the reader must reuse a sufficiently large buffer.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xa5}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, frameData, p); err != nil {
			t.Fatalf("write %d bytes: %v", len(p), err)
		}
		scratch := make([]byte, 8192)
		typ, got, scratch2, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("read %d bytes: %v", len(p), err)
		}
		if typ != frameData {
			t.Errorf("type %#x, want %#x", typ, frameData)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("payload mismatch at len %d", len(p))
		}
		if len(p) > 0 && &scratch2[0] != &scratch[0] {
			t.Errorf("len %d: reader reallocated despite large scratch buffer", len(p))
		}
	}
}

// Structural violations must come back as ErrFrame; truncation must
// surface the transport error so the caller treats it as a broken
// connection, not a protocol violation.
func TestFrameStructuralErrors(t *testing.T) {
	good := func() []byte {
		var b bytes.Buffer
		if err := writeFrame(&b, frameHello, helloPayload(1)); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	badMagic := good()
	badMagic[0] = 'X'
	if _, _, _, err := readFrame(bytes.NewReader(badMagic), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("bad magic: %v, want ErrFrame", err)
	}

	badVersion := good()
	badVersion[2] = 99
	if _, _, _, err := readFrame(bytes.NewReader(badVersion), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("bad version: %v, want ErrFrame", err)
	}

	oversize := good()
	oversize[4], oversize[5], oversize[6], oversize[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := readFrame(bytes.NewReader(oversize), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("oversize length: %v, want ErrFrame", err)
	}

	truncated := good()[:frameHdrLen+4]
	if _, _, _, err := readFrame(bytes.NewReader(truncated), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}

	if err := writeFrame(io.Discard, frameData, make([]byte, maxFramePayload+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversize write: %v, want ErrFrame", err)
	}
}

// maxFramePayload must admit the largest packet link.Encode can emit,
// or legitimate data frames would be unsendable.
func TestMaxFramePayloadFitsLinkCodec(t *testing.T) {
	m := make([][]float64, link.MaxLeads)
	per := link.MaxMeasurements / link.MaxLeads
	for i := range m {
		m[i] = make([]float64, per)
	}
	enc, err := link.Encode(link.Packet{Seq: 1, Measurements: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > maxFramePayload {
		t.Fatalf("largest link frame is %d bytes, exceeds maxFramePayload %d", len(enc), maxFramePayload)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through the two wire parsers a
// gateway session runs on untrusted input — readFrame and the link
// packet codec — asserting they never panic and that anything readFrame
// accepts round-trips back to identical bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{'W', 'G', 1, frameData, 0, 0, 0, 0})
	f.Add([]byte{'W', 'G', 1, frameHello, 0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{'X', 'G', 1, frameData, 0, 0, 0, 1, 0})
	if enc, err := link.Encode(link.Packet{Seq: 3, Measurements: [][]float64{{1, 2}, {3, 4}}}); err == nil {
		var b bytes.Buffer
		if writeFrame(&b, frameData, enc) == nil {
			f.Add(b.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, _, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Accepted frames must re-encode to the exact bytes consumed.
		var out bytes.Buffer
		if err := writeFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if want := data[:frameHdrLen+len(payload)]; !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("round trip mismatch: got %x want %x", out.Bytes(), want)
		}
		// The payload parsers must fail cleanly, never panic.
		switch typ {
		case frameHello:
			parseHello(payload)
		case frameFin:
			parseFin(payload)
		case frameWelcome:
			parseWelcome(payload)
		case frameAck:
			parseAck(payload)
		case frameDigest:
			parseDigest(payload)
		case frameData:
			if pkt, err := DecodeDataFrame(payload); err == nil {
				// A decodable packet must re-encode without error.
				if _, err := link.Encode(pkt); err != nil {
					t.Fatalf("decoded packet does not re-encode: %v", err)
				}
			} else if !errors.Is(err, link.ErrCodec) && !errors.Is(err, link.ErrCRC) {
				t.Fatalf("data decode returned foreign error: %v", err)
			}
		}
	})
}

// Package spline implements the cubic-spline baseline-wander estimator of
// ref [10] (Meyer & Keiser 1977), described in Section III.B of the
// paper: the method "searches for 'knots' in a characteristic silent
// region of the acquired signal (before each QRS complex), and
// interpolates three consecutive knots to estimate the baseline".
//
// A knot is placed in the PR segment of each beat — the isoelectric
// interval preceding the QRS onset — where the only signal content is the
// baseline itself. A cubic polynomial through consecutive knots then
// tracks the low-frequency wander, which is subtracted from the signal.
package spline

import (
	"errors"
	"sort"
)

// Errors returned by the spline routines.
var (
	ErrTooFewKnots = errors.New("spline: need at least 2 knots")
	ErrKnotOrder   = errors.New("spline: knot positions must be strictly increasing")
)

// Knot is one baseline sample: position (sample index) and value.
type Knot struct {
	Pos int
	Val float64
}

// Natural is a natural cubic spline through a set of knots.
type Natural struct {
	xs []float64
	ys []float64
	m  []float64 // second derivatives at knots
}

// NewNatural builds a natural cubic spline through the knots, which must
// be strictly increasing in position.
func NewNatural(knots []Knot) (*Natural, error) {
	n := len(knots)
	if n < 2 {
		return nil, ErrTooFewKnots
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, k := range knots {
		if i > 0 && k.Pos <= knots[i-1].Pos {
			return nil, ErrKnotOrder
		}
		xs[i] = float64(k.Pos)
		ys[i] = k.Val
	}
	// Solve the tridiagonal system for second derivatives (natural
	// boundary: m[0] = m[n-1] = 0) by the Thomas algorithm.
	m := make([]float64, n)
	if n > 2 {
		sub := make([]float64, n-2)  // sub-diagonal
		diag := make([]float64, n-2) // main diagonal
		sup := make([]float64, n-2)  // super-diagonal
		rhs := make([]float64, n-2)
		for i := 1; i < n-1; i++ {
			h0 := xs[i] - xs[i-1]
			h1 := xs[i+1] - xs[i]
			sub[i-1] = h0
			diag[i-1] = 2 * (h0 + h1)
			sup[i-1] = h1
			rhs[i-1] = 6 * ((ys[i+1]-ys[i])/h1 - (ys[i]-ys[i-1])/h0)
		}
		// Forward elimination.
		for i := 1; i < n-2; i++ {
			w := sub[i] / diag[i-1]
			diag[i] -= w * sup[i-1]
			rhs[i] -= w * rhs[i-1]
		}
		// Back substitution.
		m[n-2] = rhs[n-3] / diag[n-3]
		for i := n - 4; i >= 0; i-- {
			m[i+1] = (rhs[i] - sup[i]*m[i+2]) / diag[i]
		}
	}
	return &Natural{xs: xs, ys: ys, m: m}, nil
}

// At evaluates the spline at position t (extrapolating linearly outside
// the knot range using the boundary slopes).
func (s *Natural) At(t float64) float64 {
	n := len(s.xs)
	if t <= s.xs[0] {
		// Linear extrapolation with the spline's left boundary slope.
		h := s.xs[1] - s.xs[0]
		slope := (s.ys[1]-s.ys[0])/h - h*(2*s.m[0]+s.m[1])/6
		return s.ys[0] + slope*(t-s.xs[0])
	}
	if t >= s.xs[n-1] {
		h := s.xs[n-1] - s.xs[n-2]
		slope := (s.ys[n-1]-s.ys[n-2])/h + h*(s.m[n-2]+2*s.m[n-1])/6
		return s.ys[n-1] + slope*(t-s.xs[n-1])
	}
	// Find the segment by binary search.
	i := sort.SearchFloat64s(s.xs, t)
	if s.xs[i] > t {
		i--
	}
	if i >= n-1 {
		i = n - 2
	}
	h := s.xs[i+1] - s.xs[i]
	a := (s.xs[i+1] - t) / h
	b := (t - s.xs[i]) / h
	return a*s.ys[i] + b*s.ys[i+1] +
		((a*a*a-a)*s.m[i]+(b*b*b-b)*s.m[i+1])*h*h/6
}

// Sample evaluates the spline at every integer position 0..n-1.
func (s *Natural) Sample(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.At(float64(i))
	}
	return out
}

// FindPRKnots places one knot per beat in the PR silent region: for each
// QRS location, the knot sits prOffset samples before it and its value is
// the mean of x over a window of prWin samples ending there. QRS
// positions too close to the record boundary are skipped. Passing
// prOffset<=0 or prWin<=0 selects defaults for the given sampling rate
// (66 ms offset, 20 ms window).
func FindPRKnots(x []float64, qrs []int, fs float64, prOffset, prWin int) []Knot {
	if prOffset <= 0 {
		prOffset = int(0.066*fs + 0.5)
	}
	if prWin <= 0 {
		prWin = int(0.020*fs + 0.5)
		if prWin < 1 {
			prWin = 1
		}
	}
	var knots []Knot
	for _, q := range qrs {
		end := q - prOffset
		start := end - prWin
		if start < 0 || end > len(x) || end <= start {
			continue
		}
		sum := 0.0
		for i := start; i < end; i++ {
			sum += x[i]
		}
		knots = append(knots, Knot{Pos: (start + end) / 2, Val: sum / float64(end-start)})
	}
	return knots
}

// RemoveBaseline estimates the baseline through the PR knots derived from
// the given QRS positions and subtracts it from x, returning the
// corrected signal and the estimate. If fewer than two knots can be
// placed it returns x unchanged (copy) and a zero baseline.
func RemoveBaseline(x []float64, qrs []int, fs float64) (corrected, baseline []float64) {
	knots := FindPRKnots(x, qrs, fs, 0, 0)
	corrected = make([]float64, len(x))
	baseline = make([]float64, len(x))
	if len(knots) < 2 {
		copy(corrected, x)
		return corrected, baseline
	}
	sp, err := NewNatural(knots)
	if err != nil {
		copy(corrected, x)
		return corrected, baseline
	}
	for i := range x {
		b := sp.At(float64(i))
		baseline[i] = b
		corrected[i] = x[i] - b
	}
	return corrected, baseline
}

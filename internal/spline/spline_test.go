package spline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNaturalRejectsBadKnots(t *testing.T) {
	if _, err := NewNatural([]Knot{{0, 1}}); err != ErrTooFewKnots {
		t.Error("single knot should fail")
	}
	if _, err := NewNatural([]Knot{{5, 1}, {5, 2}}); err != ErrKnotOrder {
		t.Error("duplicate positions should fail")
	}
	if _, err := NewNatural([]Knot{{5, 1}, {3, 2}}); err != ErrKnotOrder {
		t.Error("decreasing positions should fail")
	}
}

func TestSplineInterpolatesKnots(t *testing.T) {
	knots := []Knot{{0, 1}, {10, -2}, {25, 3}, {40, 0.5}}
	sp, err := NewNatural(knots)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range knots {
		if got := sp.At(float64(k.Pos)); math.Abs(got-k.Val) > 1e-10 {
			t.Errorf("spline at knot %d = %v, want %v", k.Pos, got, k.Val)
		}
	}
}

func TestSplineTwoKnotsIsLinear(t *testing.T) {
	sp, err := NewNatural([]Knot{{0, 0}, {10, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 10; i++ {
		want := 0.5 * float64(i)
		if got := sp.At(float64(i)); math.Abs(got-want) > 1e-10 {
			t.Errorf("2-knot spline at %d = %v, want %v", i, got, want)
		}
	}
}

// Property: a natural spline through samples of a straight line
// reproduces the line exactly (splines reproduce degree-1 polynomials).
func TestSplineReproducesLine(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8)/16, float64(b8)/16
		knots := []Knot{}
		for p := 0; p <= 60; p += 15 {
			knots = append(knots, Knot{p, a + b*float64(p)})
		}
		sp, err := NewNatural(knots)
		if err != nil {
			return false
		}
		for x := 0.0; x <= 60; x += 3.7 {
			if math.Abs(sp.At(x)-(a+b*x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplineSmoothTracking(t *testing.T) {
	// Knots on a slow sine: the spline must track it closely between
	// knots.
	var knots []Knot
	for p := 0; p <= 1000; p += 100 {
		knots = append(knots, Knot{p, math.Sin(2 * math.Pi * float64(p) / 1000)})
	}
	sp, err := NewNatural(knots)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for x := 0.0; x <= 1000; x++ {
		e := math.Abs(sp.At(x) - math.Sin(2*math.Pi*x/1000))
		if e > worst {
			worst = e
		}
	}
	if worst > 0.01 {
		t.Errorf("spline tracking error %v, want < 0.01", worst)
	}
}

func TestSplineExtrapolation(t *testing.T) {
	sp, err := NewNatural([]Knot{{10, 0}, {20, 10}, {30, 20}})
	if err != nil {
		t.Fatal(err)
	}
	// Collinear knots: extrapolation continues the line.
	if got := sp.At(0); math.Abs(got-(-10)) > 1e-9 {
		t.Errorf("left extrapolation = %v, want -10", got)
	}
	if got := sp.At(40); math.Abs(got-30) > 1e-9 {
		t.Errorf("right extrapolation = %v, want 30", got)
	}
}

func TestSample(t *testing.T) {
	sp, _ := NewNatural([]Knot{{0, 1}, {4, 5}})
	s := sp.Sample(5)
	if len(s) != 5 {
		t.Fatalf("Sample length %d", len(s))
	}
	if s[0] != 1 || math.Abs(s[4]-5) > 1e-12 {
		t.Errorf("Sample endpoints %v, %v", s[0], s[4])
	}
}

func TestFindPRKnots(t *testing.T) {
	fs := 256.0
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.25 // constant "baseline" level in the PR segments
	}
	qrs := []int{200, 456, 712, 5} // the last is too close to the border
	knots := FindPRKnots(x, qrs, fs, 0, 0)
	if len(knots) != 3 {
		t.Fatalf("got %d knots, want 3 (border QRS skipped)", len(knots))
	}
	for _, k := range knots {
		if math.Abs(k.Val-0.25) > 1e-12 {
			t.Errorf("knot value %v, want 0.25", k.Val)
		}
	}
	// Knot must sit before its QRS.
	for i, k := range knots {
		if k.Pos >= qrs[i] {
			t.Errorf("knot %d at %d not before QRS %d", i, k.Pos, qrs[i])
		}
	}
}

func TestRemoveBaselineCorrectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fs := 256.0
	n := 4096
	drift := make([]float64, n)
	x := make([]float64, n)
	var qrs []int
	for i := range x {
		drift[i] = 0.6 * math.Sin(2*math.Pi*float64(i)/1500)
		x[i] = drift[i] + 0.005*rng.NormFloat64()
	}
	for p := 150; p < n-50; p += 220 {
		for j := -3; j <= 3; j++ {
			x[p+j] += 1.1 * (1 - math.Abs(float64(j))/4)
		}
		qrs = append(qrs, p)
	}
	corrected, baseline := RemoveBaseline(x, qrs, fs)
	// Baseline estimate must track the drift within the knot span.
	lo, hi := qrs[0], qrs[len(qrs)-1]
	worst := 0.0
	for i := lo; i < hi; i++ {
		if e := math.Abs(baseline[i] - drift[i]); e > worst {
			worst = e
		}
	}
	if worst > 0.1 {
		t.Errorf("baseline estimate error %v, want < 0.1", worst)
	}
	// Corrected isoelectric regions near zero.
	for _, q := range qrs[1:] {
		iso := q - 110 // midway between beats
		if math.Abs(corrected[iso]) > 0.12 {
			t.Errorf("corrected isoelectric level at %d = %v", iso, corrected[iso])
		}
	}
}

func TestRemoveBaselineDegenerate(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	corrected, baseline := RemoveBaseline(x, nil, 256)
	for i := range x {
		if corrected[i] != x[i] {
			t.Error("with no knots the signal must pass through unchanged")
		}
		if baseline[i] != 0 {
			t.Error("with no knots the baseline must be zero")
		}
	}
}

package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allWavelets() []*Orthogonal {
	return []*Orthogonal{Haar(), Daubechies4(), Daubechies8(), Symlet8()}
}

func TestForwardRejectsBadArgs(t *testing.T) {
	w := Haar()
	if _, err := w.Forward(make([]float64, 100), 3); err != ErrLength {
		t.Error("length not divisible by 2^levels should fail")
	}
	if _, err := w.Forward(make([]float64, 64), 0); err != ErrLevels {
		t.Error("zero levels should fail")
	}
	if _, err := w.Forward(nil, 1); err != ErrLength {
		t.Error("empty signal should fail")
	}
	if _, err := w.Inverse(make([]float64, 100), 3); err != ErrLength {
		t.Error("inverse with bad length should fail")
	}
	if _, err := w.Inverse(make([]float64, 64), 0); err != ErrLevels {
		t.Error("inverse with zero levels should fail")
	}
}

func TestPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range allWavelets() {
		for _, levels := range []int{1, 2, 4} {
			n := 256
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			c, err := w.Forward(x, levels)
			if err != nil {
				t.Fatalf("%s Forward: %v", w.Name(), err)
			}
			y, err := w.Inverse(c, levels)
			if err != nil {
				t.Fatalf("%s Inverse: %v", w.Name(), err)
			}
			for i := range x {
				if math.Abs(x[i]-y[i]) > 1e-10 {
					t.Fatalf("%s L=%d: reconstruction error %v at %d",
						w.Name(), levels, x[i]-y[i], i)
				}
			}
		}
	}
}

// Property: perfect reconstruction holds for random signals and any valid
// level count (testing/quick drives the inputs).
func TestPerfectReconstructionProperty(t *testing.T) {
	w := Daubechies8()
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, lv uint8) bool {
		levels := int(lv%4) + 1
		n := 512
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * (1 + rng.Float64())
		}
		c, err := w.Forward(x, levels)
		if err != nil {
			return false
		}
		y, err := w.Inverse(c, levels)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: orthogonality — Parseval's identity, energy preserved.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range allWavelets() {
		x := make([]float64, 512)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c, err := w.Forward(x, 4)
		if err != nil {
			t.Fatal(err)
		}
		var ex, ec float64
		for i := range x {
			ex += x[i] * x[i]
			ec += c[i] * c[i]
		}
		if math.Abs(ex-ec)/ex > 1e-10 {
			t.Errorf("%s: energy not preserved: %v vs %v", w.Name(), ex, ec)
		}
	}
}

func TestFilterNormalisation(t *testing.T) {
	// Analysis low-pass must sum to sqrt(2) and have unit energy.
	for _, w := range allWavelets() {
		var sum, energy float64
		for _, h := range w.h {
			sum += h
			energy += h * h
		}
		if math.Abs(sum-math.Sqrt2) > 1e-10 {
			t.Errorf("%s: filter sum %v, want sqrt(2)", w.Name(), sum)
		}
		if math.Abs(energy-1) > 1e-10 {
			t.Errorf("%s: filter energy %v, want 1", w.Name(), energy)
		}
	}
}

func TestConstantSignalConcentratesInApprox(t *testing.T) {
	// A constant signal has all energy in the approximation band; details
	// must vanish (vanishing moments).
	for _, w := range allWavelets() {
		n, levels := 256, 3
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		c, err := w.Forward(x, levels)
		if err != nil {
			t.Fatal(err)
		}
		alen := n >> uint(levels)
		for i := alen; i < n; i++ {
			if math.Abs(c[i]) > 1e-10 {
				t.Errorf("%s: detail coefficient %d = %v for constant input",
					w.Name(), i, c[i])
				break
			}
		}
	}
}

func TestECGLikeSignalIsSparse(t *testing.T) {
	// The CS premise: a spiky quasi-periodic signal compacts most energy
	// into few wavelet coefficients. Build a crude spike train + slow wave
	// and check the top 10% of coefficients carry >99% of the energy.
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * math.Sin(2*math.Pi*float64(i)/256)
	}
	for p := 64; p < n; p += 200 {
		x[p] += 1.5
		x[p-1] += 0.7
		x[p+1] += 0.7
	}
	w := Daubechies8()
	c, err := w.Forward(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	abs := make([]float64, n)
	var total float64
	for i, v := range c {
		abs[i] = v * v
		total += v * v
	}
	// Select top 10% by magnitude (simple partial selection).
	k := n / 10
	top := 0.0
	for sel := 0; sel < k; sel++ {
		best := 0
		for i := 1; i < n; i++ {
			if abs[i] > abs[best] {
				best = i
			}
		}
		top += abs[best]
		abs[best] = -1
	}
	if top/total < 0.99 {
		t.Errorf("ECG-like signal not sparse in db8: top-10%% energy share %.4f", top/total)
	}
}

func TestLevelSlices(t *testing.T) {
	sl, err := LevelSlices(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 8}, {8, 16}, {16, 32}, {32, 64}}
	if len(sl) != len(want) {
		t.Fatalf("LevelSlices count = %d, want %d", len(sl), len(want))
	}
	for i := range want {
		if sl[i] != want[i] {
			t.Errorf("LevelSlices[%d] = %v, want %v", i, sl[i], want[i])
		}
	}
	if _, err := LevelSlices(100, 3); err == nil {
		t.Error("non-divisible length should fail")
	}
	if _, err := LevelSlices(64, 0); err == nil {
		t.Error("zero levels should fail")
	}
}

func TestLevelSlicesCoverWholeVector(t *testing.T) {
	n, levels := 512, 5
	sl, err := LevelSlices(n, levels)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	prevEnd := 0
	for _, r := range sl {
		if r[0] != prevEnd {
			t.Errorf("gap before range %v", r)
		}
		covered += r[1] - r[0]
		prevEnd = r[1]
	}
	if covered != n {
		t.Errorf("ranges cover %d samples, want %d", covered, n)
	}
}

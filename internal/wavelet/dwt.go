// Package wavelet implements the two wavelet machines the paper relies
// on:
//
//   - an orthogonal discrete wavelet transform (DWT) with periodic
//     boundaries, used as the sparsity basis for compressed sensing
//     (Section III.A, refs [4][16]): ECG is sparse in Daubechies wavelets,
//     and the CS solvers in internal/cs minimise the ℓ1 norm of these
//     coefficients;
//
//   - the undecimated à-trous filter bank with the quadratic-spline
//     derivative wavelet used by the embedded delineator (Section III.C,
//     ref [12]): wave boundaries appear as modulus-maxima pairs across
//     scales 2¹..2⁵, and the filter coefficients are dyadic rationals so
//     the whole transform runs with integer shifts and adds on the node
//     (Section IV.A).
package wavelet

import "errors"

// Errors returned by transform constructors and calls.
var (
	ErrLength = errors.New("wavelet: signal length must be divisible by 2^levels")
	ErrLevels = errors.New("wavelet: invalid number of decomposition levels")
)

// Orthogonal holds an orthogonal wavelet's analysis low-pass filter; the
// remaining three filters follow by quadrature-mirror relations. The
// high-pass mirror is derived once at construction so the per-level
// transform kernels never allocate.
type Orthogonal struct {
	name string
	h    []float64 // analysis low-pass
	gf   []float64 // analysis high-pass (alternating-flip of h)
}

// newOrthogonal derives the quadrature-mirror high-pass at construction:
// g[k] = (-1)^k h[L-1-k].
func newOrthogonal(name string, h []float64) *Orthogonal {
	L := len(h)
	g := make([]float64, L)
	for k := 0; k < L; k++ {
		if k%2 == 0 {
			g[k] = h[L-1-k]
		} else {
			g[k] = -h[L-1-k]
		}
	}
	return &Orthogonal{name: name, h: h, gf: g}
}

// Name returns the wavelet's conventional name.
func (w *Orthogonal) Name() string { return w.name }

// Taps returns the number of filter taps.
func (w *Orthogonal) Taps() int { return len(w.h) }

// Haar returns the 2-tap Haar wavelet.
func Haar() *Orthogonal {
	s := 0.7071067811865476
	return newOrthogonal("haar", []float64{s, s})
}

// Daubechies4 returns the 4-tap Daubechies wavelet (db2 in MATLAB
// nomenclature, 2 vanishing moments).
func Daubechies4() *Orthogonal {
	return newOrthogonal("db4", []float64{
		0.48296291314469025, 0.83651630373746899,
		0.22414386804185735, -0.12940952255092145,
	})
}

// Daubechies8 returns the 8-tap Daubechies wavelet (db4 in MATLAB
// nomenclature, 4 vanishing moments) — the standard ECG sparsity basis in
// the CS literature the paper builds on.
func Daubechies8() *Orthogonal {
	return newOrthogonal("db8", []float64{
		0.23037781330885523, 0.71484657055254153,
		0.63088076792959036, -0.02798376941698385,
		-0.18703481171888114, 0.03084138183598697,
		0.03288301166698295, -0.01059740178499728,
	})
}

// Symlet8 returns the 8-tap least-asymmetric Daubechies (sym4) wavelet.
func Symlet8() *Orthogonal {
	return newOrthogonal("sym8", []float64{
		-0.07576571478927333, -0.02963552764599851,
		0.49761866763201545, 0.80373875180591614,
		0.29785779560527736, -0.09921954357684722,
		-0.01260396726203783, 0.03222310060404270,
	})
}

// g returns the analysis high-pass filter (derived at construction).
func (w *Orthogonal) g() []float64 { return w.gf }

// analyzeOne performs one decimating analysis step with periodic
// boundaries, writing approximation into a and detail into d
// (each len(x)/2). len(x) must be even.
func (w *Orthogonal) analyzeOne(x, a, d []float64) {
	n := len(x)
	h := w.h
	g := w.g()
	L := len(h)
	for i := 0; i < n/2; i++ {
		var sa, sd float64
		base := 2 * i
		for k := 0; k < L; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			sa += h[k] * x[j]
			sd += g[k] * x[j]
		}
		a[i] = sa
		d[i] = sd
	}
}

// synthesizeOne inverts one analysis step (periodic boundaries).
func (w *Orthogonal) synthesizeOne(a, d, x []float64) {
	n := len(x)
	h := w.h
	g := w.g()
	L := len(h)
	for i := range x {
		x[i] = 0
	}
	for i := 0; i < n/2; i++ {
		base := 2 * i
		for k := 0; k < L; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			x[j] += h[k]*a[i] + g[k]*d[i]
		}
	}
}

// Scratch holds the ping-pong work buffers the Into transform variants
// use instead of allocating. A zero Scratch is ready to use; buffers grow
// on demand and are reused across calls. A Scratch must not be shared
// between concurrent transforms.
type Scratch struct {
	a, b []float64
}

// buffers returns two independent length-n work slices, growing the
// backing arrays when needed.
func (s *Scratch) buffers(n int) ([]float64, []float64) {
	if cap(s.a) < n {
		s.a = make([]float64, n)
	}
	if cap(s.b) < n {
		s.b = make([]float64, n)
	}
	return s.a[:n], s.b[:n]
}

// Forward computes a 'levels'-deep periodic DWT of x and returns the
// coefficient vector laid out as [a_L | d_L | d_{L-1} | ... | d_1], the
// standard pyramid order. len(x) must be divisible by 2^levels and the
// per-level length must stay >= filter length for a meaningful transform.
func (w *Orthogonal) Forward(x []float64, levels int) ([]float64, error) {
	out := make([]float64, len(x))
	var s Scratch
	if err := w.ForwardInto(x, levels, out, &s); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardInto is Forward writing the pyramid-ordered coefficients into
// out (len(x)) and drawing all intermediates from s — allocation-free in
// steady state.
func (w *Orthogonal) ForwardInto(x []float64, levels int, out []float64, s *Scratch) error {
	if levels < 1 {
		return ErrLevels
	}
	n := len(x)
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return ErrLength
	}
	if len(out) != n {
		return ErrLength
	}
	cur, next := s.buffers(n)
	copy(cur, x)
	pos := n
	curLen := n
	for lev := 0; lev < levels; lev++ {
		half := curLen / 2
		w.analyzeOne(cur[:curLen], next[:half], out[pos-half:pos])
		pos -= half
		curLen = half
		cur, next = next, cur
	}
	copy(out[:curLen], cur[:curLen])
	return nil
}

// Inverse reconstructs the signal from a pyramid-ordered coefficient
// vector produced by Forward with the same number of levels.
func (w *Orthogonal) Inverse(c []float64, levels int) ([]float64, error) {
	out := make([]float64, len(c))
	var s Scratch
	if err := w.InverseInto(c, levels, out, &s); err != nil {
		return nil, err
	}
	return out, nil
}

// InverseInto is Inverse writing the reconstructed signal into out
// (len(c)) and drawing all intermediates from s — allocation-free in
// steady state.
func (w *Orthogonal) InverseInto(c []float64, levels int, out []float64, s *Scratch) error {
	if levels < 1 {
		return ErrLevels
	}
	n := len(c)
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return ErrLength
	}
	if len(out) != n {
		return ErrLength
	}
	alen := n >> uint(levels)
	cur, next := s.buffers(n)
	copy(cur[:alen], c[:alen])
	pos := alen
	curLen := alen
	for lev := levels; lev >= 1; lev-- {
		d := c[pos : pos+curLen]
		dst := next[:2*curLen]
		if lev == 1 {
			dst = out
		}
		w.synthesizeOne(cur[:curLen], d, dst)
		pos += curLen
		curLen *= 2
		cur, next = next, cur
	}
	return nil
}

// LevelSlices describes the pyramid layout: it returns the [start,end)
// ranges of the approximation band followed by detail bands d_L..d_1 for
// a length-n, 'levels'-deep transform. Used by the group-sparse CS solver
// to form coefficient groups.
func LevelSlices(n, levels int) ([][2]int, error) {
	if levels < 1 {
		return nil, ErrLevels
	}
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return nil, ErrLength
	}
	var out [][2]int
	alen := n >> uint(levels)
	out = append(out, [2]int{0, alen})
	pos := alen
	for lev := levels; lev >= 1; lev-- {
		dlen := n >> uint(lev)
		out = append(out, [2]int{pos, pos + dlen})
		pos += dlen
	}
	return out, nil
}

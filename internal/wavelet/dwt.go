// Package wavelet implements the two wavelet machines the paper relies
// on:
//
//   - an orthogonal discrete wavelet transform (DWT) with periodic
//     boundaries, used as the sparsity basis for compressed sensing
//     (Section III.A, refs [4][16]): ECG is sparse in Daubechies wavelets,
//     and the CS solvers in internal/cs minimise the ℓ1 norm of these
//     coefficients;
//
//   - the undecimated à-trous filter bank with the quadratic-spline
//     derivative wavelet used by the embedded delineator (Section III.C,
//     ref [12]): wave boundaries appear as modulus-maxima pairs across
//     scales 2¹..2⁵, and the filter coefficients are dyadic rationals so
//     the whole transform runs with integer shifts and adds on the node
//     (Section IV.A).
package wavelet

import "errors"

// Errors returned by transform constructors and calls.
var (
	ErrLength = errors.New("wavelet: signal length must be divisible by 2^levels")
	ErrLevels = errors.New("wavelet: invalid number of decomposition levels")
)

// Orthogonal holds an orthogonal wavelet's analysis low-pass filter; the
// remaining three filters follow by quadrature-mirror relations.
type Orthogonal struct {
	name string
	h    []float64 // analysis low-pass
}

// Name returns the wavelet's conventional name.
func (w *Orthogonal) Name() string { return w.name }

// Taps returns the number of filter taps.
func (w *Orthogonal) Taps() int { return len(w.h) }

// Haar returns the 2-tap Haar wavelet.
func Haar() *Orthogonal {
	s := 0.7071067811865476
	return &Orthogonal{name: "haar", h: []float64{s, s}}
}

// Daubechies4 returns the 4-tap Daubechies wavelet (db2 in MATLAB
// nomenclature, 2 vanishing moments).
func Daubechies4() *Orthogonal {
	return &Orthogonal{name: "db4", h: []float64{
		0.48296291314469025, 0.83651630373746899,
		0.22414386804185735, -0.12940952255092145,
	}}
}

// Daubechies8 returns the 8-tap Daubechies wavelet (db4 in MATLAB
// nomenclature, 4 vanishing moments) — the standard ECG sparsity basis in
// the CS literature the paper builds on.
func Daubechies8() *Orthogonal {
	return &Orthogonal{name: "db8", h: []float64{
		0.23037781330885523, 0.71484657055254153,
		0.63088076792959036, -0.02798376941698385,
		-0.18703481171888114, 0.03084138183598697,
		0.03288301166698295, -0.01059740178499728,
	}}
}

// Symlet8 returns the 8-tap least-asymmetric Daubechies (sym4) wavelet.
func Symlet8() *Orthogonal {
	return &Orthogonal{name: "sym8", h: []float64{
		-0.07576571478927333, -0.02963552764599851,
		0.49761866763201545, 0.80373875180591614,
		0.29785779560527736, -0.09921954357684722,
		-0.01260396726203783, 0.03222310060404270,
	}}
}

// g returns the analysis high-pass filter by the alternating-flip
// relation g[k] = (-1)^k h[L-1-k].
func (w *Orthogonal) g() []float64 {
	L := len(w.h)
	g := make([]float64, L)
	for k := 0; k < L; k++ {
		if k%2 == 0 {
			g[k] = w.h[L-1-k]
		} else {
			g[k] = -w.h[L-1-k]
		}
	}
	return g
}

// analyzeOne performs one decimating analysis step with periodic
// boundaries, writing approximation into a and detail into d
// (each len(x)/2). len(x) must be even.
func (w *Orthogonal) analyzeOne(x, a, d []float64) {
	n := len(x)
	h := w.h
	g := w.g()
	L := len(h)
	for i := 0; i < n/2; i++ {
		var sa, sd float64
		base := 2 * i
		for k := 0; k < L; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			sa += h[k] * x[j]
			sd += g[k] * x[j]
		}
		a[i] = sa
		d[i] = sd
	}
}

// synthesizeOne inverts one analysis step (periodic boundaries).
func (w *Orthogonal) synthesizeOne(a, d, x []float64) {
	n := len(x)
	h := w.h
	g := w.g()
	L := len(h)
	for i := range x {
		x[i] = 0
	}
	for i := 0; i < n/2; i++ {
		base := 2 * i
		for k := 0; k < L; k++ {
			j := base + k
			if j >= n {
				j -= n
			}
			x[j] += h[k]*a[i] + g[k]*d[i]
		}
	}
}

// Forward computes a 'levels'-deep periodic DWT of x and returns the
// coefficient vector laid out as [a_L | d_L | d_{L-1} | ... | d_1], the
// standard pyramid order. len(x) must be divisible by 2^levels and the
// per-level length must stay >= filter length for a meaningful transform.
func (w *Orthogonal) Forward(x []float64, levels int) ([]float64, error) {
	if levels < 1 {
		return nil, ErrLevels
	}
	n := len(x)
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return nil, ErrLength
	}
	out := make([]float64, n)
	cur := make([]float64, n)
	copy(cur, x)
	pos := n
	for lev := 0; lev < levels; lev++ {
		half := len(cur) / 2
		a := make([]float64, half)
		d := make([]float64, half)
		w.analyzeOne(cur, a, d)
		copy(out[pos-half:pos], d)
		pos -= half
		cur = a
	}
	copy(out[:len(cur)], cur)
	return out, nil
}

// Inverse reconstructs the signal from a pyramid-ordered coefficient
// vector produced by Forward with the same number of levels.
func (w *Orthogonal) Inverse(c []float64, levels int) ([]float64, error) {
	if levels < 1 {
		return nil, ErrLevels
	}
	n := len(c)
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return nil, ErrLength
	}
	alen := n >> uint(levels)
	cur := make([]float64, alen)
	copy(cur, c[:alen])
	pos := alen
	for lev := levels; lev >= 1; lev-- {
		dlen := len(cur)
		d := c[pos : pos+dlen]
		x := make([]float64, 2*dlen)
		w.synthesizeOne(cur, d, x)
		cur = x
		pos += dlen
	}
	return cur, nil
}

// LevelSlices describes the pyramid layout: it returns the [start,end)
// ranges of the approximation band followed by detail bands d_L..d_1 for
// a length-n, 'levels'-deep transform. Used by the group-sparse CS solver
// to form coefficient groups.
func LevelSlices(n, levels int) ([][2]int, error) {
	if levels < 1 {
		return nil, ErrLevels
	}
	if n == 0 || n%(1<<uint(levels)) != 0 {
		return nil, ErrLength
	}
	var out [][2]int
	alen := n >> uint(levels)
	out = append(out, [2]int{0, alen})
	pos := alen
	for lev := levels; lev >= 1; lev-- {
		dlen := n >> uint(lev)
		out = append(out, [2]int{pos, pos + dlen})
		pos += dlen
	}
	return out, nil
}

package wavelet

import (
	"math/rand"
	"testing"
)

// TestBatchMatchesScalar pins the bit-identity contract: every plane of
// a batched forward/inverse transform must equal the scalar transform
// of that stripe alone, for plane counts covering the 4-wide tile and
// its remainder paths.
func TestBatchMatchesScalar(t *testing.T) {
	const n = 256
	const levels = 4
	rng := rand.New(rand.NewSource(11))
	for _, w := range []*Orthogonal{Haar(), Daubechies4(), Daubechies8(), Symlet8()} {
		for _, P := range []int{1, 2, 4, 5, 6, 8, 11} {
			x := make([]float64, P*n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			planes := make([]int, P)
			for p := range planes {
				planes[p] = p
			}
			var s BatchScratch
			fwd := make([]float64, P*n)
			if err := w.ForwardBatchInto(x, n, levels, planes, fwd, &s); err != nil {
				t.Fatalf("%s P=%d: ForwardBatchInto: %v", w.Name(), P, err)
			}
			inv := make([]float64, P*n)
			if err := w.InverseBatchInto(fwd, n, levels, planes, inv, &s); err != nil {
				t.Fatalf("%s P=%d: InverseBatchInto: %v", w.Name(), P, err)
			}
			for p := 0; p < P; p++ {
				stripe := x[p*n : (p+1)*n]
				ref, err := w.Forward(stripe, levels)
				if err != nil {
					t.Fatalf("Forward: %v", err)
				}
				for i, v := range ref {
					if got := fwd[p*n+i]; got != v {
						t.Fatalf("%s P=%d plane %d: forward[%d] = %v, scalar %v", w.Name(), P, p, i, got, v)
					}
				}
				refInv, err := w.Inverse(ref, levels)
				if err != nil {
					t.Fatalf("Inverse: %v", err)
				}
				for i, v := range refInv {
					if got := inv[p*n+i]; got != v {
						t.Fatalf("%s P=%d plane %d: inverse[%d] = %v, scalar %v", w.Name(), P, p, i, got, v)
					}
				}
			}
		}
	}
}

// TestBatchSparsePlanes checks that only listed planes are transformed
// and the other stripes stay untouched.
func TestBatchSparsePlanes(t *testing.T) {
	const n = 128
	const levels = 3
	const P = 7
	w := Daubechies8()
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, P*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	planes := []int{0, 2, 5, 6}
	listed := map[int]bool{}
	for _, p := range planes {
		listed[p] = true
	}
	out := make([]float64, P*n)
	for i := range out {
		out[i] = -99
	}
	var s BatchScratch
	if err := w.ForwardBatchInto(x, n, levels, planes, out, &s); err != nil {
		t.Fatalf("ForwardBatchInto: %v", err)
	}
	for p := 0; p < P; p++ {
		if !listed[p] {
			for i := 0; i < n; i++ {
				if out[p*n+i] != -99 {
					t.Fatalf("inactive plane %d written at %d", p, i)
				}
			}
			continue
		}
		ref, _ := w.Forward(x[p*n:(p+1)*n], levels)
		for i, v := range ref {
			if out[p*n+i] != v {
				t.Fatalf("active plane %d mismatch at %d", p, i)
			}
		}
	}
}

// TestBatchValidation covers the error paths.
func TestBatchValidation(t *testing.T) {
	w := Daubechies8()
	var s BatchScratch
	x := make([]float64, 128)
	out := make([]float64, 128)
	if err := w.ForwardBatchInto(x, 128, 0, []int{0}, out, &s); err != ErrLevels {
		t.Fatalf("levels=0: got %v", err)
	}
	if err := w.ForwardBatchInto(x, 100, 2, []int{0}, out, &s); err != ErrLength {
		t.Fatalf("odd stride: got %v", err)
	}
	if err := w.ForwardBatchInto(x, 64, 2, []int{2}, out, &s); err != ErrLength {
		t.Fatalf("plane out of range: got %v", err)
	}
	if err := w.InverseBatchInto(x, 64, 2, []int{0}, out[:64], &s); err != ErrLength {
		t.Fatalf("len mismatch: got %v", err)
	}
}

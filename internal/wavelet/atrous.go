package wavelet

// This file implements the undecimated (à-trous) filter bank with the
// quadratic-spline derivative wavelet, the transform behind the
// wavelet-based ECG delineator of ref [12] (Rincón et al., BSN 2009) and
// the classic Martínez et al. delineator it descends from.
//
// The prototype filters are
//
//	H(z) = 1/8 (z + 3 + 3 z^{-1} + z^{-2})   (low-pass, smoothing)
//	G(z) = 2 (z - 1)                          (high-pass, derivative)
//
// whose coefficients are dyadic rationals: on the node the whole bank is
// computed with shifts and adds only — the "proper choice of the filter
// bank coefficients" the paper credits for the efficient embedded
// implementation (Section IV.A). At scale 2^k the filters are upsampled
// by inserting 2^(k-1)-1 zeros ("holes", trous). The output at scale 2^k
// is proportional to the smoothed derivative of the input at that scale:
// wave peaks become zero-crossings flanked by a modulus-maxima pair of
// opposite signs.

// AtrousScales is the number of dyadic scales (2^1..2^5) produced by the
// delineation filter bank, matching ref [12].
const AtrousScales = 5

// atrousLow and atrousHigh are the prototype filter taps.
var (
	atrousLow  = []float64{0.125, 0.375, 0.375, 0.125}
	atrousHigh = []float64{2, -2}
)

// Atrous computes the undecimated quadratic-spline wavelet transform of x
// at the given number of dyadic scales (1..8). It returns one
// equal-length signal per scale, w[k] being the transform at scale
// 2^(k+1). Border samples use symmetric extension. An empty input returns
// nil; invalid scale counts return ErrLevels.
func Atrous(x []float64, scales int) ([][]float64, error) {
	if scales < 1 || scales > 8 {
		return nil, ErrLevels
	}
	if len(x) == 0 {
		return nil, nil
	}
	n := len(x)
	out := make([][]float64, scales)
	approx := make([]float64, n)
	copy(approx, x)
	for s := 0; s < scales; s++ {
		hole := 1 << uint(s) // zero-insertion factor at this stage
		// Detail: high-pass of current approximation.
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for k, g := range atrousHigh {
				j := i - k*hole
				acc += g * approx[reflect(j, n)]
			}
			w[i] = acc
		}
		out[s] = w
		// Next approximation: low-pass of current approximation.
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for k, h := range atrousLow {
				j := i - (k-1)*hole // centre the 4-tap kernel
				acc += h * approx[reflect(j, n)]
			}
			next[i] = acc
		}
		approx = next
	}
	return out, nil
}

// AtrousInto is Atrous writing each scale into caller-provided storage:
// details (and each details[k]) is reused when its capacity suffices and
// reallocated otherwise, and all intermediates come from s — so a warm
// (details, s) pair makes the transform allocation-free. It returns the
// (possibly regrown) details slice.
func AtrousInto(x []float64, scales int, details [][]float64, s *Scratch) ([][]float64, error) {
	if scales < 1 || scales > 8 {
		return nil, ErrLevels
	}
	if len(x) == 0 {
		return details[:0], nil
	}
	n := len(x)
	if cap(details) < scales {
		grown := make([][]float64, scales)
		copy(grown, details)
		details = grown
	}
	details = details[:scales]
	for k := range details {
		if cap(details[k]) < n {
			details[k] = make([]float64, n)
		}
		details[k] = details[k][:n]
	}
	cur, next := s.buffers(n)
	copy(cur, x)
	for sc := 0; sc < scales; sc++ {
		hole := 1 << uint(sc)
		atrousStageInto(cur, details[sc], next, hole)
		cur, next = next, cur
	}
	return details, nil
}

// atrousStageInto computes one à-trous stage (detail w and next
// approximation) from cur. Interior samples — where every tap lands
// inside [0,n) — skip the symmetric-reflection index mapping entirely;
// the border loops keep the generic tap iteration. The accumulation
// statement shape (acc += tap * sample, one statement per tap, in tap
// order) matches the generic loop exactly so compilers see the same
// floating-point contraction opportunities and the outputs stay
// bit-identical.
func atrousStageInto(cur, w, next []float64, hole int) {
	n := len(cur)
	// Detail (high-pass): taps at j = i, i-hole. Interior: i >= hole.
	hiLo := hole
	if hiLo > n {
		hiLo = n
	}
	for i := 0; i < hiLo; i++ {
		var acc float64
		for k, g := range atrousHigh {
			j := i - k*hole
			acc += g * cur[reflect(j, n)]
		}
		w[i] = acc
	}
	for i := hiLo; i < n; i++ {
		var acc float64
		acc += 2 * cur[i]
		acc += -2 * cur[i-hole]
		w[i] = acc
	}
	// Next approximation (low-pass): taps at j = i+hole, i, i-hole,
	// i-2*hole. Interior: i >= 2*hole and i+hole < n.
	loLo := 2 * hole
	if loLo > n {
		loLo = n
	}
	loHi := n - hole
	if loHi < loLo {
		loHi = loLo
	}
	for i := 0; i < loLo; i++ {
		var acc float64
		for k, h := range atrousLow {
			j := i - (k-1)*hole // centre the 4-tap kernel
			acc += h * cur[reflect(j, n)]
		}
		next[i] = acc
	}
	for i := loLo; i < loHi; i++ {
		var acc float64
		acc += 0.125 * cur[i+hole]
		acc += 0.375 * cur[i]
		acc += 0.375 * cur[i-hole]
		acc += 0.125 * cur[i-2*hole]
		next[i] = acc
	}
	for i := loHi; i < n; i++ {
		var acc float64
		for k, h := range atrousLow {
			j := i - (k-1)*hole
			acc += h * cur[reflect(j, n)]
		}
		next[i] = acc
	}
}

// AtrousWithApprox is Atrous but additionally returns the final smoothed
// approximation signal, useful for baseline tracking.
func AtrousWithApprox(x []float64, scales int) (details [][]float64, approx []float64, err error) {
	if scales < 1 || scales > 8 {
		return nil, nil, ErrLevels
	}
	if len(x) == 0 {
		return nil, nil, nil
	}
	n := len(x)
	details = make([][]float64, scales)
	cur := make([]float64, n)
	copy(cur, x)
	for s := 0; s < scales; s++ {
		hole := 1 << uint(s)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for k, g := range atrousHigh {
				j := i - k*hole
				acc += g * cur[reflect(j, n)]
			}
			w[i] = acc
		}
		details[s] = w
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for k, h := range atrousLow {
				j := i - (k-1)*hole
				acc += h * cur[reflect(j, n)]
			}
			next[i] = acc
		}
		cur = next
	}
	return details, cur, nil
}

// reflect maps an out-of-range index into [0,n) by symmetric (mirror)
// extension.
func reflect(j, n int) int {
	for j < 0 || j >= n {
		if j < 0 {
			j = -j - 1
		}
		if j >= n {
			j = 2*n - 1 - j
		}
	}
	return j
}

// AtrousInt is the integer-only variant of Atrous used on the node: input
// samples are int32 (raw ADC counts), the low-pass is computed as
// (x[j-1] + 3x[j] + 3x[j+1] + x[j+2]) >> 3 and the high-pass as
// 2(x[j] - x[j+1]), i.e. shifts and adds only. Because of the >>3
// truncation the results differ from the float transform by bounded
// rounding error; the delineator thresholds absorb it. The cycle cost of
// this routine is what the Figure 7 energy model charges for 3L-MMD-style
// kernels.
func AtrousInt(x []int32, scales int) ([][]int32, error) {
	if scales < 1 || scales > 8 {
		return nil, ErrLevels
	}
	if len(x) == 0 {
		return nil, nil
	}
	n := len(x)
	out := make([][]int32, scales)
	cur := make([]int32, n)
	copy(cur, x)
	for s := 0; s < scales; s++ {
		hole := 1 << uint(s)
		w := make([]int32, n)
		for i := 0; i < n; i++ {
			a := cur[reflect(i, n)]
			b := cur[reflect(i-hole, n)]
			w[i] = 2 * (a - b) // matches float path: 2*x[i] - 2*x[i-hole]
		}
		out[s] = w
		next := make([]int32, n)
		for i := 0; i < n; i++ {
			xm1 := int64(cur[reflect(i+hole, n)])
			x0 := int64(cur[reflect(i, n)])
			x1 := int64(cur[reflect(i-hole, n)])
			x2 := int64(cur[reflect(i-2*hole, n)])
			next[i] = int32((x1*3 + x0*3 + xm1 + x2) >> 3)
		}
		cur = next
	}
	return out, nil
}

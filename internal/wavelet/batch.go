package wavelet

// Batched (structure-of-arrays) orthogonal DWT kernels. The CS solver
// reconstructs many windows per engine dispatch; the per-window
// transforms are identical pyramids over different data, so the batch
// variants run one level loop over K coefficient planes laid out as
// contiguous stride-long stripes of a single backing slice. The win is
// instruction-level parallelism: the scalar kernels carry an 8-tap
// floating-point accumulation chain per output sample (latency-bound on
// one window), while the 4-plane tiles below keep eight independent
// accumulators live per tap loop (throughput-bound across windows).
//
// Bit-identity contract: for every plane, the sequence of floating-point
// operations — tap order, accumulation order, scatter order — is exactly
// the sequence ForwardInto/InverseInto perform on that plane alone, so a
// batched transform of K planes is bit-identical to K scalar transforms
// at every K (not just K=1). Tests in batch_test.go pin this.

// BatchScratch holds the ping-pong work buffers of the batch transform
// variants. A zero BatchScratch is ready to use; buffers grow on demand
// and are reused across calls. Not safe for concurrent transforms.
type BatchScratch struct {
	a, b []float64
}

// buffers returns two independent length-size work slices, growing the
// backing arrays when needed.
func (s *BatchScratch) buffers(size int) ([]float64, []float64) {
	if cap(s.a) < size {
		s.a = make([]float64, size)
	}
	if cap(s.b) < size {
		s.b = make([]float64, size)
	}
	return s.a[:size], s.b[:size]
}

// checkBatch validates the shared batch-transform geometry: stripes of
// length stride packed in x and out, every listed plane in range.
func checkBatch(xLen, outLen, stride, levels int, planes []int) error {
	if levels < 1 {
		return ErrLevels
	}
	if stride <= 0 || stride%(1<<uint(levels)) != 0 {
		return ErrLength
	}
	if xLen != outLen || xLen%stride != 0 {
		return ErrLength
	}
	p := xLen / stride
	for _, pl := range planes {
		if pl < 0 || pl >= p {
			return ErrLength
		}
	}
	return nil
}

// ForwardBatchInto computes the 'levels'-deep periodic DWT of every
// listed plane of x (a structure-of-arrays buffer of stride-long
// stripes; plane p occupies x[p*stride:(p+1)*stride]) into the matching
// stripes of out. Stripes of planes not listed are left untouched.
// Per-plane output is bit-identical to ForwardInto on that stripe.
func (w *Orthogonal) ForwardBatchInto(x []float64, stride, levels int, planes []int, out []float64, s *BatchScratch) error {
	if err := checkBatch(len(x), len(out), stride, levels, planes); err != nil {
		return err
	}
	cur, next := s.buffers(len(x))
	for _, p := range planes {
		copy(cur[p*stride:(p+1)*stride], x[p*stride:(p+1)*stride])
	}
	pos := stride
	curLen := stride
	for lev := 0; lev < levels; lev++ {
		half := curLen / 2
		w.analyzeBatch(cur, next, out, stride, curLen, pos, planes)
		pos -= half
		curLen = half
		cur, next = next, cur
	}
	for _, p := range planes {
		copy(out[p*stride:p*stride+curLen], cur[p*stride:p*stride+curLen])
	}
	return nil
}

// analyzeBatch performs one decimating analysis step on every listed
// plane: approximation into next[base:base+curLen/2], detail into
// out[base+pos-curLen/2 : base+pos] (base = plane*stride). Planes are
// processed in tiles of four so the tap loop keeps eight independent
// accumulators in registers; the per-plane accumulation order matches
// analyzeOne exactly.
func (w *Orthogonal) analyzeBatch(cur, next, out []float64, stride, curLen, pos int, planes []int) {
	half := curLen / 2
	h := w.h
	g := w.gf
	L := len(h)
	t := 0
	for ; t+4 <= len(planes); t += 4 {
		b0 := planes[t] * stride
		b1 := planes[t+1] * stride
		b2 := planes[t+2] * stride
		b3 := planes[t+3] * stride
		x0 := cur[b0 : b0+curLen]
		x1 := cur[b1 : b1+curLen]
		x2 := cur[b2 : b2+curLen]
		x3 := cur[b3 : b3+curLen]
		a0 := next[b0 : b0+half]
		a1 := next[b1 : b1+half]
		a2 := next[b2 : b2+half]
		a3 := next[b3 : b3+half]
		d0 := out[b0+pos-half : b0+pos]
		d1 := out[b1+pos-half : b1+pos]
		d2 := out[b2+pos-half : b2+pos]
		d3 := out[b3+pos-half : b3+pos]
		gb := g[:L]
		for i := 0; i < half; i++ {
			var sa0, sd0, sa1, sd1, sa2, sd2, sa3, sd3 float64
			base := 2 * i
			if base+L <= curLen {
				// Interior: no periodic wrap, so the tap windows are plain
				// subslices and the bounds checks vanish.
				xs0 := x0[base : base+L]
				xs1 := x1[base : base+L]
				xs2 := x2[base : base+L]
				xs3 := x3[base : base+L]
				for k, hk := range h {
					gk := gb[k]
					v0 := xs0[k]
					sa0 += hk * v0
					sd0 += gk * v0
					v1 := xs1[k]
					sa1 += hk * v1
					sd1 += gk * v1
					v2 := xs2[k]
					sa2 += hk * v2
					sd2 += gk * v2
					v3 := xs3[k]
					sa3 += hk * v3
					sd3 += gk * v3
				}
			} else {
				for k := 0; k < L; k++ {
					j := base + k
					if j >= curLen {
						j -= curLen
					}
					hk, gk := h[k], g[k]
					v0 := x0[j]
					sa0 += hk * v0
					sd0 += gk * v0
					v1 := x1[j]
					sa1 += hk * v1
					sd1 += gk * v1
					v2 := x2[j]
					sa2 += hk * v2
					sd2 += gk * v2
					v3 := x3[j]
					sa3 += hk * v3
					sd3 += gk * v3
				}
			}
			a0[i], d0[i] = sa0, sd0
			a1[i], d1[i] = sa1, sd1
			a2[i], d2[i] = sa2, sd2
			a3[i], d3[i] = sa3, sd3
		}
	}
	for ; t < len(planes); t++ {
		b := planes[t] * stride
		w.analyzeOne(cur[b:b+curLen], next[b:b+half], out[b+pos-half:b+pos])
	}
}

// InverseBatchInto reconstructs every listed plane of the
// structure-of-arrays coefficient buffer c into the matching stripes of
// out. Per-plane output is bit-identical to InverseInto on that stripe.
func (w *Orthogonal) InverseBatchInto(c []float64, stride, levels int, planes []int, out []float64, s *BatchScratch) error {
	if err := checkBatch(len(c), len(out), stride, levels, planes); err != nil {
		return err
	}
	alen := stride >> uint(levels)
	cur, next := s.buffers(len(c))
	for _, p := range planes {
		copy(cur[p*stride:p*stride+alen], c[p*stride:p*stride+alen])
	}
	pos := alen
	curLen := alen
	for lev := levels; lev >= 1; lev-- {
		w.synthesizeBatch(cur, c, next, out, stride, curLen, pos, lev == 1, planes)
		pos += curLen
		curLen *= 2
		cur, next = next, cur
	}
	return nil
}

// synthesizeBatch inverts one analysis step on every listed plane:
// approximation from cur[base:base+curLen], detail from
// c[base+pos:base+pos+curLen], signal into next (or out when final is
// set). The per-plane scatter order matches synthesizeOne exactly.
func (w *Orthogonal) synthesizeBatch(cur, c, next, out []float64, stride, curLen, pos int, final bool, planes []int) {
	n := 2 * curLen
	h := w.h
	g := w.gf
	L := len(h)
	dstBuf := next
	if final {
		dstBuf = out
	}
	t := 0
	for ; t+4 <= len(planes); t += 4 {
		b0 := planes[t] * stride
		b1 := planes[t+1] * stride
		b2 := planes[t+2] * stride
		b3 := planes[t+3] * stride
		a0 := cur[b0 : b0+curLen]
		a1 := cur[b1 : b1+curLen]
		a2 := cur[b2 : b2+curLen]
		a3 := cur[b3 : b3+curLen]
		d0 := c[b0+pos : b0+pos+curLen]
		d1 := c[b1+pos : b1+pos+curLen]
		d2 := c[b2+pos : b2+pos+curLen]
		d3 := c[b3+pos : b3+pos+curLen]
		x0 := dstBuf[b0 : b0+n]
		x1 := dstBuf[b1 : b1+n]
		x2 := dstBuf[b2 : b2+n]
		x3 := dstBuf[b3 : b3+n]
		for i := range x0 {
			x0[i] = 0
			x1[i] = 0
			x2[i] = 0
			x3[i] = 0
		}
		gb := g[:L]
		for i := 0; i < curLen; i++ {
			base := 2 * i
			av0, dv0 := a0[i], d0[i]
			av1, dv1 := a1[i], d1[i]
			av2, dv2 := a2[i], d2[i]
			av3, dv3 := a3[i], d3[i]
			if base+L <= n {
				// Interior: no periodic wrap, so the scatter windows are
				// plain subslices and the bounds checks vanish.
				xw0 := x0[base : base+L]
				xw1 := x1[base : base+L]
				xw2 := x2[base : base+L]
				xw3 := x3[base : base+L]
				for k, hk := range h {
					gk := gb[k]
					xw0[k] += hk*av0 + gk*dv0
					xw1[k] += hk*av1 + gk*dv1
					xw2[k] += hk*av2 + gk*dv2
					xw3[k] += hk*av3 + gk*dv3
				}
			} else {
				for k := 0; k < L; k++ {
					j := base + k
					if j >= n {
						j -= n
					}
					hk, gk := h[k], g[k]
					x0[j] += hk*av0 + gk*dv0
					x1[j] += hk*av1 + gk*dv1
					x2[j] += hk*av2 + gk*dv2
					x3[j] += hk*av3 + gk*dv3
				}
			}
		}
	}
	for ; t < len(planes); t++ {
		b := planes[t] * stride
		w.synthesizeOne(cur[b:b+curLen], c[b+pos:b+pos+curLen], dstBuf[b:b+n])
	}
}

package wavelet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDenoiseValidation(t *testing.T) {
	if _, err := Denoise(make([]float64, 100), DenoiseConfig{}); err != ErrLength {
		t.Error("non-divisible length should fail")
	}
}

func TestDenoiseImprovesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1024
	clean := make([]float64, n)
	for p := 100; p < n-20; p += 220 {
		for i := -6; i <= 6; i++ {
			clean[p+i] += 1.2 * math.Exp(-float64(i*i)/8)
		}
	}
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = clean[i] + 0.12*rng.NormFloat64()
	}
	den, err := Denoise(noisy, DenoiseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var eNoisy, eDen float64
	for i := range clean {
		dN := noisy[i] - clean[i]
		dD := den[i] - clean[i]
		eNoisy += dN * dN
		eDen += dD * dD
	}
	gain := 10 * math.Log10(eNoisy/eDen)
	if gain < 4 {
		t.Errorf("denoising gain %.1f dB, want >= 4", gain)
	}
	// Peaks survive: the garrote keeps at least two thirds of each wave
	// amplitude at this noise level (soft thresholding loses far more —
	// the reason the garrote rule is used).
	for p := 100; p < n-20; p += 220 {
		if den[p] < 0.65*clean[p] {
			t.Errorf("peak at %d attenuated to %v", p, den[p])
		}
	}
}

func TestDenoiseCleanSignalNearIdentity(t *testing.T) {
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 128)
	}
	den, err := Denoise(x, DenoiseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(den[i] - x[i]); d > worst {
			worst = d
		}
	}
	// A noise-free smooth signal has tiny fine-scale details; the MAD
	// estimate is near zero, so shrinkage barely changes it.
	if worst > 0.05 {
		t.Errorf("clean signal distorted by %v", worst)
	}
}

func TestMedianOfMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		cp := append([]float64(nil), x...)
		got := medianOf(cp)
		sort.Float64s(x)
		var want float64
		if n%2 == 1 {
			want = x[n/2]
		} else {
			want = (x[n/2-1] + x[n/2]) / 2
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("medianOf(n=%d) = %v, want %v", n, got, want)
		}
	}
	if medianOf(nil) != 0 || mad(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

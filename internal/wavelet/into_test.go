package wavelet

import (
	"math/rand"
	"testing"
)

func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// The Into variants must be bit-identical to their allocating
// counterparts: the parallel gateway engine relies on reused scratch
// producing exactly the results of the fresh-allocation path.
func TestForwardIntoMatchesForward(t *testing.T) {
	for _, w := range []*Orthogonal{Haar(), Daubechies4(), Daubechies8(), Symlet8()} {
		for _, levels := range []int{1, 3, 5} {
			x := randSignal(512, 11)
			want, err := w.Forward(x, levels)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]float64, len(x))
			var s Scratch
			for rep := 0; rep < 3; rep++ { // reused scratch must stay exact
				if err := w.ForwardInto(x, levels, out, &s); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("%s L%d rep%d: out[%d]=%g want %g", w.Name(), levels, rep, i, out[i], want[i])
					}
				}
			}
		}
	}
}

func TestInverseIntoMatchesInverse(t *testing.T) {
	for _, w := range []*Orthogonal{Haar(), Daubechies8()} {
		for _, levels := range []int{1, 2, 5} {
			x := randSignal(256, 12)
			c, err := w.Forward(x, levels)
			if err != nil {
				t.Fatal(err)
			}
			want, err := w.Inverse(c, levels)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]float64, len(c))
			var s Scratch
			for rep := 0; rep < 3; rep++ {
				if err := w.InverseInto(c, levels, out, &s); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("%s L%d rep%d: out[%d]=%g want %g", w.Name(), levels, rep, i, out[i], want[i])
					}
				}
			}
		}
	}
}

func TestForwardIntoErrors(t *testing.T) {
	w := Daubechies8()
	var s Scratch
	out := make([]float64, 512)
	if err := w.ForwardInto(randSignal(512, 1), 0, out, &s); err != ErrLevels {
		t.Fatalf("levels=0: got %v", err)
	}
	if err := w.ForwardInto(randSignal(500, 1), 5, out[:500], &s); err != ErrLength {
		t.Fatalf("bad length: got %v", err)
	}
	if err := w.ForwardInto(randSignal(512, 1), 5, out[:256], &s); err != ErrLength {
		t.Fatalf("bad out length: got %v", err)
	}
	if err := w.InverseInto(randSignal(512, 1), 0, out, &s); err != ErrLevels {
		t.Fatalf("inverse levels=0: got %v", err)
	}
	if err := w.InverseInto(randSignal(512, 1), 5, out[:256], &s); err != ErrLength {
		t.Fatalf("inverse bad out length: got %v", err)
	}
}

func TestAtrousIntoMatchesAtrous(t *testing.T) {
	x := randSignal(1000, 13)
	want, err := Atrous(x, AtrousScales)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	var details [][]float64
	for rep := 0; rep < 3; rep++ {
		details, err = AtrousInto(x, AtrousScales, details, &s)
		if err != nil {
			t.Fatal(err)
		}
		if len(details) != len(want) {
			t.Fatalf("got %d scales, want %d", len(details), len(want))
		}
		for k := range want {
			for i := range want[k] {
				if details[k][i] != want[k][i] {
					t.Fatalf("rep%d scale %d sample %d: %g != %g", rep, k, i, details[k][i], want[k][i])
				}
			}
		}
	}
	if _, err := AtrousInto(x, 0, nil, &s); err != ErrLevels {
		t.Fatalf("scales=0: got %v", err)
	}
	if got, err := AtrousInto(nil, 3, details, &s); err != nil || len(got) != 0 {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
}

// Warm Into paths must be allocation-free: this is the contract the
// pooled CS decoder and gateway engine build on.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	w := Daubechies8()
	x := randSignal(512, 14)
	c, err := w.Forward(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 512)
	var s Scratch
	if err := w.ForwardInto(x, 5, out, &s); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		if err := w.ForwardInto(x, 5, out, &s); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Errorf("ForwardInto allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(20, func() {
		if err := w.InverseInto(c, 5, out, &s); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Errorf("InverseInto allocates %.1f/op", a)
	}
	details, err := AtrousInto(x, AtrousScales, nil, &s)
	if err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		if _, err := AtrousInto(x, AtrousScales, details, &s); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Errorf("AtrousInto allocates %.1f/op", a)
	}
}

// Short inputs leave no interior region for the split-loop à-trous
// stage (every tap reflects); outputs must still match the generic
// transform bit for bit at every length around the hole boundaries.
func TestAtrousIntoShortInputsMatch(t *testing.T) {
	var s Scratch
	var details [][]float64
	for n := 1; n <= 70; n++ {
		x := randSignal(n, int64(100+n))
		want, err := Atrous(x, AtrousScales)
		if err != nil {
			t.Fatal(err)
		}
		details, err = AtrousInto(x, AtrousScales, details, &s)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			for i := range want[k] {
				if details[k][i] != want[k][i] {
					t.Fatalf("n=%d scale %d sample %d: %g != %g", n, k, i, details[k][i], want[k][i])
				}
			}
		}
	}
}

package wavelet

import (
	"math"
	"testing"
)

func TestAtrousRejectsBadScales(t *testing.T) {
	if _, err := Atrous(make([]float64, 10), 0); err != ErrLevels {
		t.Error("0 scales should fail")
	}
	if _, err := Atrous(make([]float64, 10), 9); err != ErrLevels {
		t.Error("9 scales should fail")
	}
	if _, err := AtrousInt(make([]int32, 10), 0); err != ErrLevels {
		t.Error("AtrousInt 0 scales should fail")
	}
}

func TestAtrousEmptyInput(t *testing.T) {
	out, err := Atrous(nil, 3)
	if err != nil || out != nil {
		t.Error("empty input should return nil, nil")
	}
}

func TestAtrousShapes(t *testing.T) {
	x := make([]float64, 300)
	out, err := Atrous(x, AtrousScales)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != AtrousScales {
		t.Fatalf("got %d scales, want %d", len(out), AtrousScales)
	}
	for s, w := range out {
		if len(w) != len(x) {
			t.Errorf("scale %d length %d, want %d (undecimated)", s, len(w), len(x))
		}
	}
}

func TestAtrousConstantIsZero(t *testing.T) {
	// The derivative wavelet annihilates constants at every scale.
	x := make([]float64, 200)
	for i := range x {
		x[i] = 5
	}
	out, err := Atrous(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range out {
		for i, v := range w {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("scale %d sample %d = %v for constant input", s, i, v)
			}
		}
	}
}

func TestAtrousStepGivesSingleSignResponse(t *testing.T) {
	// A rising step produces a positive hump at every scale (smoothed
	// derivative): response should be non-negative and peak near the edge.
	n := 256
	x := make([]float64, n)
	for i := n / 2; i < n; i++ {
		x[i] = 1
	}
	out, err := Atrous(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range out {
		peak, peakIdx := 0.0, -1
		for i := 8; i < n-8; i++ {
			if w[i] < -1e-9 {
				t.Fatalf("scale %d: negative response %v at %d for rising step", s, w[i], i)
			}
			if w[i] > peak {
				peak, peakIdx = w[i], i
			}
		}
		if peak <= 0 {
			t.Fatalf("scale %d: no response to step", s)
		}
		if peakIdx < n/2-2 || peakIdx > n/2+(4<<uint(s)) {
			t.Errorf("scale %d: peak at %d, step at %d", s, peakIdx, n/2)
		}
	}
}

func TestAtrousPeakGivesMaxMinPair(t *testing.T) {
	// An isolated positive hump produces a +/- modulus-maxima pair with a
	// zero-crossing at the peak — the property the delineator exploits.
	n := 256
	x := make([]float64, n)
	c := n / 2
	for i := -10; i <= 10; i++ {
		x[c+i] = math.Exp(-float64(i*i) / 20)
	}
	out, err := Atrous(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := out[2] // scale 2^3
	maxIdx, minIdx := 0, 0
	for i := range w {
		if w[i] > w[maxIdx] {
			maxIdx = i
		}
		if w[i] < w[minIdx] {
			minIdx = i
		}
	}
	if !(maxIdx < minIdx) {
		t.Fatalf("expected positive maximum before negative minimum around peak; got max@%d min@%d", maxIdx, minIdx)
	}
	if maxIdx > c || minIdx < c {
		t.Errorf("modulus maxima (%d,%d) should straddle the peak at %d", maxIdx, minIdx, c)
	}
	// Zero crossing between them close to the peak position.
	zc := -1
	for i := maxIdx; i < minIdx; i++ {
		if w[i] >= 0 && w[i+1] < 0 {
			zc = i
			break
		}
	}
	if zc == -1 {
		t.Fatal("no zero-crossing between modulus maxima")
	}
	if d := zc - c; d < -4 || d > 4 {
		t.Errorf("zero-crossing at %d, peak at %d (offset %d)", zc, c, d)
	}
}

func TestAtrousWithApprox(t *testing.T) {
	x := make([]float64, 128)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/64) + 0.5
	}
	details, approx, err := AtrousWithApprox(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != 3 || len(approx) != len(x) {
		t.Fatal("wrong shapes from AtrousWithApprox")
	}
	// Approximation of a smooth signal stays close to the signal mean
	// behaviour; its variance must be <= input variance.
	var vx, va float64
	for i := range x {
		vx += (x[i] - 0.5) * (x[i] - 0.5)
		va += (approx[i] - 0.5) * (approx[i] - 0.5)
	}
	if va > vx {
		t.Errorf("approximation has more energy than input: %v > %v", va, vx)
	}
	if _, _, err := AtrousWithApprox(nil, 3); err != nil {
		t.Error("empty input should not error")
	}
	if _, _, err := AtrousWithApprox(x, 0); err != ErrLevels {
		t.Error("0 scales should fail")
	}
}

func TestAtrousIntMatchesFloatShape(t *testing.T) {
	// The integer transform differs by truncation only; correlation with
	// the float transform must be near 1 at every scale.
	n := 512
	xf := make([]float64, n)
	xi := make([]int32, n)
	for i := range xf {
		v := 1000*math.Exp(-sq(float64(i%170-40))/30) - 300*math.Exp(-sq(float64(i%170-60))/200)
		xf[i] = v
		xi[i] = int32(v)
	}
	fo, err := Atrous(xf, 4)
	if err != nil {
		t.Fatal(err)
	}
	io, err := AtrousInt(xi, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		var sxy, sxx, syy float64
		for i := range fo[s] {
			a, b := fo[s][i], float64(io[s][i])
			sxy += a * b
			sxx += a * a
			syy += b * b
		}
		if sxx == 0 || syy == 0 {
			t.Fatalf("scale %d: degenerate transform", s)
		}
		r := sxy / math.Sqrt(sxx*syy)
		if r < 0.99 {
			t.Errorf("scale %d: int/float correlation %v < 0.99", s, r)
		}
	}
}

func TestReflectIndexing(t *testing.T) {
	n := 5
	cases := map[int]int{-1: 0, -2: 1, 0: 0, 4: 4, 5: 4, 6: 3, -6: 4}
	for in, want := range cases {
		if got := reflect(in, n); got != want {
			t.Errorf("reflect(%d,%d) = %d, want %d", in, n, got, want)
		}
	}
}

func sq(x float64) float64 { return x * x }

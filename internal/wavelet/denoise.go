package wavelet

import "math"

// This file implements wavelet-shrinkage denoising, the transform-domain
// counterpart of the morphological noise suppression of Section III.B:
// the DWT concentrates the cardiac waves into few large coefficients
// while broadband noise spreads thinly, so soft-thresholding the detail
// bands removes noise with little morphological distortion. The noise
// level is estimated per band from the median absolute deviation (MAD)
// of the finest details, and the threshold follows the universal rule
// σ·√(2·ln n) (Donoho-Johnstone).

// DenoiseConfig parameterises wavelet shrinkage.
type DenoiseConfig struct {
	// Wavelet is the orthonormal basis (default Daubechies8).
	Wavelet *Orthogonal
	// Levels is the decomposition depth (default 4).
	Levels int
	// ThresholdScale multiplies the universal threshold (default 1.0).
	ThresholdScale float64
}

func (c DenoiseConfig) withDefaults() DenoiseConfig {
	out := c
	if out.Wavelet == nil {
		out.Wavelet = Daubechies8()
	}
	if out.Levels <= 0 {
		out.Levels = 4
	}
	if out.ThresholdScale <= 0 {
		out.ThresholdScale = 1
	}
	return out
}

// Denoise shrinks the detail bands of x with the non-negative garrote
// rule (v − thr²/v beyond the threshold, zero inside), which kills noise
// like soft thresholding but leaves large wave coefficients nearly
// unbiased, and reconstructs. The input length must be divisible by
// 2^levels; ErrLength otherwise.
func Denoise(x []float64, cfg DenoiseConfig) ([]float64, error) {
	c := cfg.withDefaults()
	coefs, err := c.Wavelet.Forward(x, c.Levels)
	if err != nil {
		return nil, err
	}
	bands, err := LevelSlices(len(x), c.Levels)
	if err != nil {
		return nil, err
	}
	// Noise estimate from the finest detail band (the last range):
	// σ = MAD / 0.6745.
	finest := coefs[bands[len(bands)-1][0]:bands[len(bands)-1][1]]
	sigma := mad(finest) / 0.6745
	thr := c.ThresholdScale * sigma * math.Sqrt(2*math.Log(float64(len(x))))
	// Garrote-shrink every detail band (leave the approximation).
	for _, b := range bands[1:] {
		for i := b[0]; i < b[1]; i++ {
			v := coefs[i]
			if v > thr || v < -thr {
				coefs[i] = v - thr*thr/v
			} else {
				coefs[i] = 0
			}
		}
	}
	return c.Wavelet.Inverse(coefs, c.Levels)
}

// mad returns the median absolute deviation of x.
func mad(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	abs := make([]float64, len(x))
	for i, v := range x {
		abs[i] = math.Abs(v)
	}
	return medianOf(abs)
}

// medianOf returns the median, destructively partial-sorting its input.
func medianOf(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := n / 2
	lo, hi := 0, n-1
	for lo < hi {
		pivot := x[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for x[i] < pivot {
				i++
			}
			for x[j] > pivot {
				j--
			}
			if i <= j {
				x[i], x[j] = x[j], x[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	if n%2 == 1 {
		return x[k]
	}
	// Even length: average the two central order statistics; x[k] is the
	// upper one after selection, find the max of the lower half.
	lower := x[0]
	for _, v := range x[:k] {
		if v > lower {
			lower = v
		}
	}
	return (lower + x[k]) / 2
}

// Package energy models the power consumers of a wireless body sensor
// node — radio, analog front-end/ADC sampling, digital processing — and
// composes them into the per-window energy accounting of Figure 6 and
// the battery-lifetime estimates behind the paper's "mean time between
// charges is typically one week" claim.
//
// The paper's central observation (Sections I, III.A, V) is that "the
// straightforward wireless streaming of raw data to external analysis
// servers" has an unsustainable energy cost because the radio dominates;
// the models here make that dominance explicit and quantify how CS
// compression shifts it.
package energy

import "errors"

// ErrModel is returned for invalid model parameters.
var ErrModel = errors.New("energy: invalid model parameters")

// RadioModel is an IEEE 802.15.4-style narrowband radio with a simple
// MAC, the configuration of the paper's target platform ("simple medium
// access control (MAC) scheme for wireless communication (IEEE 802.15.4)
// between the node and the base station").
type RadioModel struct {
	// BitrateBps is the PHY bitrate (802.15.4: 250 kbit/s).
	BitrateBps float64
	// TxPowerW is the radio's power draw while transmitting.
	TxPowerW float64
	// RxPowerW is the draw while listening (ACK windows, CCA).
	RxPowerW float64
	// MaxPayload is the usable payload per frame after PHY/MAC headers
	// (802.15.4: 127-byte frames, ~102 usable with headers and MIC).
	MaxPayload int
	// OverheadBytes is the per-frame header+footer cost transmitted on
	// air.
	OverheadBytes int
	// StartupJ is the per-burst oscillator/synthesizer startup energy.
	StartupJ float64
	// AckListenS is the post-frame ACK listen window in seconds.
	AckListenS float64
}

// DefaultRadio returns CC2420-class 802.15.4 parameters.
func DefaultRadio() RadioModel {
	return RadioModel{
		BitrateBps:    250e3,
		TxPowerW:      0.031, // ~17 mA at 1.8 V
		RxPowerW:      0.035,
		MaxPayload:    102,
		OverheadBytes: 25,
		StartupJ:      25e-6,
		AckListenS:    0.9e-3,
	}
}

// Frames returns how many MAC frames carry a payload of the given size.
func (r RadioModel) Frames(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 0
	}
	return (payloadBytes + r.MaxPayload - 1) / r.MaxPayload
}

// TxEnergyJ returns the energy to deliver payloadBytes, including frame
// overhead, ACK listening and one startup per burst.
func (r RadioModel) TxEnergyJ(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	frames := r.Frames(payloadBytes)
	airBytes := payloadBytes + frames*r.OverheadBytes
	txTime := float64(airBytes*8) / r.BitrateBps
	ackTime := float64(frames) * r.AckListenS
	return r.StartupJ + txTime*r.TxPowerW + ackTime*r.RxPowerW
}

// ADCModel is the acquisition front-end: instrumentation amplifier plus
// successive-approximation converter.
type ADCModel struct {
	// EnergyPerSampleJ is the per-conversion energy including the analog
	// front-end's share.
	EnergyPerSampleJ float64
	// BitsPerSample is the converter resolution.
	BitsPerSample int
}

// DefaultADC returns a low-power biosignal front-end: 12-bit conversions
// at ~0.65 µJ each. The instrumentation amplifier dominates this figure —
// the SAR conversion itself is tens of nanojoules, but the analog
// front-end must stay biased through the acquisition.
func DefaultADC() ADCModel {
	return ADCModel{EnergyPerSampleJ: 0.65e-6, BitsPerSample: 12}
}

// SamplingEnergyJ returns the acquisition energy for n samples.
func (a ADCModel) SamplingEnergyJ(n int) float64 {
	return float64(n) * a.EnergyPerSampleJ
}

// CPUModel is the node's digital processing cost expressed per
// arithmetic operation (the 16-bit integer MCU of Section V running at a
// few MHz).
type CPUModel struct {
	// EnergyPerOpJ is the energy of one integer ALU operation including
	// its share of fetch and addressing (MSP430-class: ~0.6 nJ at 2.2 V
	// per executed instruction, a few instructions per abstract op).
	EnergyPerOpJ float64
}

// DefaultCPU returns the 16-bit MCU model.
func DefaultCPU() CPUModel {
	return CPUModel{EnergyPerOpJ: 1.2e-9}
}

// ComputeEnergyJ returns the energy of n abstract operations.
func (c CPUModel) ComputeEnergyJ(n int) float64 {
	return float64(n) * c.EnergyPerOpJ
}

// OSModel charges the fixed per-window operating-system overhead
// (FreeRTOS tick handling, driver bookkeeping), visible in Figure 6's
// baseline share.
type OSModel struct {
	// EnergyPerWindowJ is the fixed energy per processing window.
	EnergyPerWindowJ float64
}

// DefaultOS returns the FreeRTOS-class overhead.
func DefaultOS() OSModel {
	return OSModel{EnergyPerWindowJ: 2e-6}
}

// Battery converts average power to lifetime.
type Battery struct {
	// CapacityJ is the usable energy (a 100 mAh Li-Po at 3.7 V with 80%
	// usable depth ≈ 1065 J).
	CapacityJ float64
}

// DefaultBattery returns the wearable-patch battery of the SmartCardia
// class device.
func DefaultBattery() Battery {
	return Battery{CapacityJ: 1065}
}

// LifetimeHours returns the runtime at the given average power.
func (b Battery) LifetimeHours(avgPowerW float64) float64 {
	if avgPowerW <= 0 {
		return 0
	}
	return b.CapacityJ / avgPowerW / 3600
}

// ArqEnergyJ returns the radio energy of delivering payloadBytes with
// the given total number of transmission attempts (1 = delivered first
// try, no retransmission). Unlike TxEnergyWithPER — the *expected* cost
// under a memoryless error rate — this prices an *observed* ARQ
// outcome, so a link simulation can charge exactly the retransmissions
// that happened. Each attempt pays the full burst cost including
// startup: the radio powers down during the backoff between attempts.
func (r RadioModel) ArqEnergyJ(payloadBytes, attempts int) float64 {
	if attempts < 1 {
		return 0
	}
	return float64(attempts) * r.TxEnergyJ(payloadBytes)
}

// TxEnergyWithPER returns the expected delivery energy for payloadBytes
// under a per-frame packet-error rate: each frame is retransmitted until
// acknowledged (geometric distribution, expected 1/(1−per) attempts),
// which is how body-area links spend energy when the channel fades. PER
// is clamped to [0, 0.95].
func (r RadioModel) TxEnergyWithPER(payloadBytes int, per float64) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	if per < 0 {
		per = 0
	}
	if per > 0.95 {
		per = 0.95
	}
	frames := r.Frames(payloadBytes)
	airBytes := payloadBytes + frames*r.OverheadBytes
	txTime := float64(airBytes*8) / r.BitrateBps
	ackTime := float64(frames) * r.AckListenS
	attempts := 1 / (1 - per)
	return r.StartupJ + (txTime*r.TxPowerW+ackTime*r.RxPowerW)*attempts
}

package energy

import (
	"math"
	"testing"

	"wbsn/internal/cs"
)

func TestRadioFrames(t *testing.T) {
	r := DefaultRadio()
	if r.Frames(0) != 0 {
		t.Error("no payload, no frames")
	}
	if r.Frames(1) != 1 || r.Frames(r.MaxPayload) != 1 {
		t.Error("single-frame payloads wrong")
	}
	if r.Frames(r.MaxPayload+1) != 2 {
		t.Error("frame split wrong")
	}
}

func TestRadioEnergyMonotone(t *testing.T) {
	r := DefaultRadio()
	if r.TxEnergyJ(0) != 0 {
		t.Error("zero payload should cost nothing")
	}
	prev := 0.0
	for _, b := range []int{10, 100, 500, 2000} {
		e := r.TxEnergyJ(b)
		if e <= prev {
			t.Fatalf("TxEnergy not monotone at %d bytes", b)
		}
		prev = e
	}
	// Energy per byte roughly constant at scale: 2000 bytes should cost
	// within 3x of 10x the 200-byte cost (overheads amortise).
	e200, e2000 := r.TxEnergyJ(200), r.TxEnergyJ(2000)
	if e2000 > 10*e200*1.5 || e2000 < 10*e200*0.3 {
		t.Errorf("per-byte scaling off: %v vs %v", e2000, 10*e200)
	}
}

func TestSamplingAndComputeLinear(t *testing.T) {
	a := DefaultADC()
	if a.SamplingEnergyJ(100) != 100*a.EnergyPerSampleJ {
		t.Error("ADC energy not linear")
	}
	c := DefaultCPU()
	if c.ComputeEnergyJ(1000) != 1000*c.EnergyPerOpJ {
		t.Error("CPU energy not linear")
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := DefaultBattery()
	if b.LifetimeHours(0) != 0 {
		t.Error("zero power lifetime should be 0 (undefined)")
	}
	// At ~1.7 mW average (the paper's one-week regime), lifetime must be
	// in the multi-day range.
	h := b.LifetimeHours(1.7e-3)
	if h < 5*24 || h > 14*24 {
		t.Errorf("lifetime at 1.7 mW = %.0f h, want roughly one week", h)
	}
}

func TestRawStreamingBreakdownShape(t *testing.T) {
	node := DefaultNode()
	w := WindowSpec{SamplesPerLead: 512, Leads: 3, BitsPerSample: 12}
	raw := node.RawStreamingWindow(w)
	if raw.CompJ != 0 {
		t.Error("raw streaming should have no compression energy")
	}
	// The paper's premise: the radio dominates raw streaming.
	if raw.RadioJ < 0.5*raw.TotalJ() {
		t.Errorf("radio share %.2f of raw streaming, expected dominant", raw.RadioJ/raw.TotalJ())
	}
	if raw.SampleJ <= 0 || raw.OSJ <= 0 {
		t.Error("sampling and OS energies must be positive")
	}
}

func TestFigure6Reductions(t *testing.T) {
	// The Figure 6 shape: CS moves energy out of the radio at a tiny
	// compression cost; multi-lead (higher CR) saves more than
	// single-lead; both reductions land in the paper's 40-60% band.
	node := DefaultNode()
	w := WindowSpec{SamplesPerLead: 512, Leads: 3, BitsPerSample: 12}
	raw := node.RawStreamingWindow(w)
	mSL := cs.MeasurementsForCR(512, 65.9)
	mML := cs.MeasurementsForCR(512, 72.7)
	adds := 4 * 512
	sl := node.CSWindow("SL", w, mSL, adds)
	ml := node.CSWindow("ML", w, mML, adds)
	redSL := PowerReduction(raw, sl)
	redML := PowerReduction(raw, ml)
	if !(redML > redSL) {
		t.Errorf("multi-lead reduction %.3f should beat single-lead %.3f", redML, redSL)
	}
	if redSL < 0.40 || redSL > 0.60 {
		t.Errorf("single-lead reduction %.3f outside the 40-60%% band", redSL)
	}
	if redML < 0.45 || redML > 0.65 {
		t.Errorf("multi-lead reduction %.3f outside the 45-65%% band", redML)
	}
	// Compression must be a small share of the compressed bars.
	if sl.CompJ > 0.05*sl.TotalJ() {
		t.Errorf("compression share %.3f too large", sl.CompJ/sl.TotalJ())
	}
	// Sampling energy is invariant across bars.
	if sl.SampleJ != raw.SampleJ || ml.SampleJ != raw.SampleJ {
		t.Error("sampling energy must not depend on compression")
	}
}

func TestPowerReductionEdge(t *testing.T) {
	if PowerReduction(Breakdown{}, Breakdown{}) != 0 {
		t.Error("zero baseline should return 0")
	}
	base := Breakdown{RadioJ: 100}
	same := Breakdown{RadioJ: 100}
	if PowerReduction(base, same) != 0 {
		t.Error("identical breakdowns should reduce 0")
	}
	if math.Abs(PowerReduction(base, Breakdown{RadioJ: 25})-0.75) > 1e-12 {
		t.Error("75% reduction miscomputed")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{RadioJ: 1, SampleJ: 2, CompJ: 3, OSJ: 4}
	if b.TotalJ() != 10 {
		t.Errorf("TotalJ = %v", b.TotalJ())
	}
}

func TestTxEnergyWithPER(t *testing.T) {
	r := DefaultRadio()
	if r.TxEnergyWithPER(0, 0.5) != 0 {
		t.Error("zero payload should cost nothing")
	}
	base := r.TxEnergyWithPER(500, 0)
	if math.Abs(base-r.TxEnergyJ(500)) > 1e-12 {
		t.Error("PER 0 should equal the plain model")
	}
	prev := base
	for _, per := range []float64{0.1, 0.3, 0.5} {
		e := r.TxEnergyWithPER(500, per)
		if e <= prev {
			t.Fatalf("energy should grow with PER: %v at %v", e, per)
		}
		prev = e
	}
	// 50% PER doubles the per-attempt cost (minus the one-off startup).
	e50 := r.TxEnergyWithPER(500, 0.5)
	perAttempt := base - r.StartupJ
	if math.Abs((e50-r.StartupJ)-2*perAttempt) > 1e-9 {
		t.Errorf("50%% PER cost %v, want startup+2x attempt %v", e50, r.StartupJ+2*perAttempt)
	}
	// Clamp at extreme PER: finite.
	if e := r.TxEnergyWithPER(500, 0.999); math.IsInf(e, 0) || e <= 0 {
		t.Errorf("extreme PER energy %v", e)
	}
}

package energy

// This file composes the component models into the Figure 6 experiment:
// the per-window energy breakdown (Radio / Sampling / Compression) of a
// 3-lead node streaming raw data versus compressing with single-lead or
// multi-lead CS before transmission.

// Breakdown is one bar of Figure 6: the per-window energy shares in
// joules.
type Breakdown struct {
	Label   string
	RadioJ  float64
	SampleJ float64
	CompJ   float64
	OSJ     float64
	// RetxJ is the radio energy spent on ARQ retransmissions beyond the
	// first attempt per frame — zero on a lossless link, and the bar
	// segment that grows when the channel degrades.
	RetxJ float64
}

// TotalJ returns the summed window energy.
func (b Breakdown) TotalJ() float64 { return b.RadioJ + b.SampleJ + b.CompJ + b.OSJ + b.RetxJ }

// NodeModel bundles the component models of one WBSN node.
type NodeModel struct {
	Radio RadioModel
	ADC   ADCModel
	CPU   CPUModel
	OS    OSModel
}

// DefaultNode returns the target-platform model used by the Figure 6
// reproduction.
func DefaultNode() NodeModel {
	return NodeModel{Radio: DefaultRadio(), ADC: DefaultADC(), CPU: DefaultCPU(), OS: DefaultOS()}
}

// WindowSpec describes one processing window of the streaming pipeline.
type WindowSpec struct {
	// SamplesPerLead is the window length n.
	SamplesPerLead int
	// Leads is the lead count (3 for the SmartCardia device).
	Leads int
	// BitsPerSample quantises raw samples and CS measurements alike.
	BitsPerSample int
}

// RawStreamingWindow returns the no-compression bar: every sample of
// every lead is transmitted raw.
func (m NodeModel) RawStreamingWindow(w WindowSpec) Breakdown {
	samples := w.SamplesPerLead * w.Leads
	payload := (samples*w.BitsPerSample + 7) / 8
	return Breakdown{
		Label:   "No Comp.",
		RadioJ:  m.Radio.TxEnergyJ(payload),
		SampleJ: m.ADC.SamplingEnergyJ(samples),
		OSJ:     m.OS.EnergyPerWindowJ,
	}
}

// CSWindow returns a compressed bar: each lead's n samples are projected
// to m measurements costing addsPerLead integer operations, and only the
// measurements are transmitted.
func (m NodeModel) CSWindow(label string, w WindowSpec, measurementsPerLead, addsPerLead int) Breakdown {
	samples := w.SamplesPerLead * w.Leads
	payload := (measurementsPerLead*w.Leads*w.BitsPerSample + 7) / 8
	return Breakdown{
		Label:   label,
		RadioJ:  m.Radio.TxEnergyJ(payload),
		SampleJ: m.ADC.SamplingEnergyJ(samples),
		CompJ:   m.CPU.ComputeEnergyJ(addsPerLead * w.Leads),
		OSJ:     m.OS.EnergyPerWindowJ,
	}
}

// PowerReduction returns the fractional total-energy reduction of b
// versus the baseline (the paper reports 44.7% and 56.1% for single- and
// multi-lead CS against raw streaming).
func PowerReduction(baseline, b Breakdown) float64 {
	t0 := baseline.TotalJ()
	if t0 == 0 {
		return 0
	}
	return (t0 - b.TotalJ()) / t0
}

package dsp

import "math"

// This file implements the reconstruction-quality metrics used in the
// compressed-sensing evaluation of Section V (Figure 5): output SNR in dB
// and the percentage root-mean-square difference (PRD) conventional in the
// ECG-compression literature (refs [4][16]). The paper's "good
// reconstruction quality" threshold is SNR >= 20 dB, equivalent to
// PRD <= 10%.

// SNRdB returns the output signal-to-noise ratio, in decibels, of the
// reconstruction xhat against the reference x:
//
//	SNR = 20 log10( ||x|| / ||x - xhat|| )
//
// A perfect reconstruction returns +Inf. It panics on length mismatch.
func SNRdB(x, xhat []float64) float64 {
	if len(x) != len(xhat) {
		panic("dsp: SNRdB length mismatch")
	}
	var num, den float64
	for i := range x {
		num += x[i] * x[i]
		d := x[i] - xhat[i]
		den += d * d
	}
	if den == 0 {
		return math.Inf(1)
	}
	if num == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(num/den)
}

// PRD returns the percentage root-mean-square difference of the
// reconstruction, 100*||x-xhat||/||x||. It panics on length mismatch.
func PRD(x, xhat []float64) float64 {
	if len(x) != len(xhat) {
		panic("dsp: PRD length mismatch")
	}
	var num, den float64
	for i := range x {
		d := x[i] - xhat[i]
		num += d * d
		den += x[i] * x[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Sqrt(num/den)
}

// SNRFromPRD converts a PRD percentage to the equivalent SNR in dB
// (SNR = -20 log10(PRD/100)).
func SNRFromPRD(prd float64) float64 {
	if prd <= 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(prd/100)
}

// GoodReconstructionSNR is the paper's quality threshold: an averaged SNR
// over 20 dB "corresponds to good reconstruction quality [16]".
const GoodReconstructionSNR = 20.0

// RMSE returns the root-mean-square error between x and xhat. It panics
// on length mismatch.
func RMSE(x, xhat []float64) float64 {
	if len(x) != len(xhat) {
		panic("dsp: RMSE length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i := range x {
		d := x[i] - xhat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

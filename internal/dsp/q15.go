package dsp

import "wbsn/internal/fixedpt"

// This file carries the integer-only IIR filtering the node's 16-bit MCU
// executes (Section IV.A): biquad sections with coefficients quantised
// to Q14 (leaving one integer bit of headroom, since Butterworth biquad
// coefficients reach magnitude 2) and a 32-bit state path.

// BiquadQ15 is a direct-form-II-transposed biquad over Q15 samples with
// Q14 coefficients and 32-bit accumulators.
type BiquadQ15 struct {
	b0, b1, b2 int32 // Q14
	a1, a2     int32 // Q14
	z1, z2     int64 // Q29 state (sample Q15 × coeff Q14)
}

// QuantizeBiquad converts a float biquad design into the integer form.
// Coefficients outside ±2 (impossible for stable biquads in practice)
// saturate.
func QuantizeBiquad(q *Biquad) *BiquadQ15 {
	toQ14 := func(v float64) int32 {
		s := v * 16384
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		if s >= 0 {
			return int32(s + 0.5)
		}
		return int32(s - 0.5)
	}
	return &BiquadQ15{
		b0: toQ14(q.b0), b1: toQ14(q.b1), b2: toQ14(q.b2),
		a1: toQ14(q.a1), a2: toQ14(q.a2),
	}
}

// Reset clears the filter state.
func (f *BiquadQ15) Reset() { f.z1, f.z2 = 0, 0 }

// Step filters one Q15 sample.
func (f *BiquadQ15) Step(x fixedpt.Q15) fixedpt.Q15 {
	xi := int64(x)
	y := (int64(f.b0)*xi + f.z1) >> 14 // Q15
	if y > 32767 {
		y = 32767
	}
	if y < -32768 {
		y = -32768
	}
	f.z1 = int64(f.b1)*xi - int64(f.a1)*y + f.z2
	f.z2 = int64(f.b2)*xi - int64(f.a2)*y
	return fixedpt.Q15(y)
}

// Apply filters a whole Q15 signal after resetting state.
func (f *BiquadQ15) Apply(x []fixedpt.Q15) []fixedpt.Q15 {
	f.Reset()
	out := make([]fixedpt.Q15, len(x))
	for i, v := range x {
		out[i] = f.Step(v)
	}
	return out
}

package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(x))
	}
	if Variance(x) != 4 {
		t.Errorf("Variance = %v, want 4", Variance(x))
	}
	if Std(x) != 2 {
		t.Errorf("Std = %v, want 2", Std(x))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestRMSEnergy(t *testing.T) {
	x := []float64{3, 4}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if Energy(x) != 25 {
		t.Errorf("Energy = %v, want 25", Energy(x))
	}
	if RMS(nil) != 0 {
		t.Error("RMS of empty should be 0")
	}
}

func TestMinMaxArg(t *testing.T) {
	x := []float64{3, -1, 7, 7, -5, 2}
	lo, hi := MinMax(x)
	if lo != -5 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if ArgMax(x) != 2 {
		t.Errorf("ArgMax = %d, want 2 (first max)", ArgMax(x))
	}
	if ArgMin(x) != 4 {
		t.Errorf("ArgMin = %d, want 4", ArgMin(x))
	}
	if ArgAbsMax(x) != 2 {
		t.Errorf("ArgAbsMax = %d, want 2", ArgAbsMax(x))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 || ArgAbsMax(nil) != -1 {
		t.Error("Arg* of empty should be -1")
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median failed")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median failed")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	// Must not modify input.
	x := []float64{5, 1, 4}
	Median(x)
	if x[0] != 5 || x[1] != 1 || x[2] != 4 {
		t.Error("Median modified its input")
	}
}

// Property: Median matches the sort-based definition on random inputs.
func TestMedianProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		m := int(n%200) + 1
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := Median(x)
		s := make([]float64, m)
		copy(s, x)
		sort.Float64s(s)
		var want float64
		if m%2 == 1 {
			want = s[m/2]
		} else {
			want = (s[m/2-1] + s[m/2]) / 2
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	Normalize(x)
	if math.Abs(Mean(x)) > 1e-12 {
		t.Errorf("normalized mean = %v", Mean(x))
	}
	if math.Abs(Std(x)-1) > 1e-12 {
		t.Errorf("normalized std = %v", Std(x))
	}
	c := []float64{7, 7, 7}
	Normalize(c)
	for _, v := range c {
		if v != 0 {
			t.Error("constant signal should normalize to zeros")
		}
	}
}

func TestDetrend(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 3 + 0.5*float64(i) + math.Sin(float64(i))
	}
	Detrend(x)
	// After removing the line, the residual is the sine: mean near 0, no
	// large drift between halves.
	if math.Abs(Mean(x)) > 1e-9 {
		t.Errorf("detrended mean = %v", Mean(x))
	}
	firstHalf := Mean(x[:50])
	secondHalf := Mean(x[50:])
	if math.Abs(firstHalf-secondHalf) > 0.2 {
		t.Errorf("trend remains: %v vs %v", firstHalf, secondHalf)
	}
	short := []float64{5}
	Detrend(short) // must not panic
}

func TestDiff(t *testing.T) {
	d := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Diff[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("Diff of single sample should be nil")
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Correlation(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(a, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if Correlation(a, []float64{5, 5, 5, 5}) != 0 {
		t.Error("correlation with constant should be 0")
	}
}

func TestSNRdB(t *testing.T) {
	x := sine(5, 256, 512)
	if !math.IsInf(SNRdB(x, x), 1) {
		t.Error("perfect reconstruction should give +Inf SNR")
	}
	noisy := make([]float64, len(x))
	for i := range x {
		noisy[i] = x[i] * 1.1 // 10% error => SNR = 20 dB
	}
	if got := SNRdB(x, noisy); math.Abs(got-20) > 1e-9 {
		t.Errorf("SNR of 10%% scaled error = %v, want 20", got)
	}
}

func TestPRDAndSNRRelation(t *testing.T) {
	x := sine(5, 256, 512)
	xhat := make([]float64, len(x))
	for i := range x {
		xhat[i] = x[i] * 0.95
	}
	prd := PRD(x, xhat)
	snr := SNRdB(x, xhat)
	if math.Abs(SNRFromPRD(prd)-snr) > 1e-9 {
		t.Errorf("SNRFromPRD(%v) = %v, want %v", prd, SNRFromPRD(prd), snr)
	}
	// PRD 10% <=> 20 dB, the paper's quality threshold.
	if math.Abs(SNRFromPRD(10)-GoodReconstructionSNR) > 1e-12 {
		t.Error("PRD 10% should equal the 20 dB threshold")
	}
}

func TestRMSE(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 2, 6}
	if got := RMSE(x, y); math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Error("RMSE of empty should be 0")
	}
}

func TestMetricPanicsOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"SNRdB": func() { SNRdB([]float64{1}, []float64{1, 2}) },
		"PRD":   func() { PRD([]float64{1}, []float64{1, 2}) },
		"RMSE":  func() { RMSE([]float64{1}, []float64{1, 2}) },
		"Corr":  func() { Correlation([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

package dsp

import (
	"math"
	"testing"

	"wbsn/internal/fixedpt"
)

func TestBiquadQ15MatchesFloat(t *testing.T) {
	fs := 256.0
	for name, design := range map[string]func() (*Biquad, error){
		"lowpass":  func() (*Biquad, error) { return Butterworth2Lowpass(15, fs) },
		"highpass": func() (*Biquad, error) { return Butterworth2Highpass(5, fs) }, // ≥5 Hz: Q14 coefficients hold; sub-Hz cutoffs need wider coefficients (known 16-bit limitation)
		"notch":    func() (*Biquad, error) { return NotchFilter(50, 20, fs) },
	} {
		fb, err := design()
		if err != nil {
			t.Fatal(err)
		}
		qb := QuantizeBiquad(fb)
		x := sine(8, fs, 2048)
		for i := range x {
			x[i] *= 0.4 // keep Q15 headroom
		}
		yf := fb.Apply(x)
		xq := fixedpt.FromSlice(x)
		yq := qb.Apply(xq)
		worst := 0.0
		for i := 256; i < len(x); i++ {
			if d := math.Abs(yq[i].Float() - yf[i]); d > worst {
				worst = d
			}
		}
		if worst > 0.01 {
			t.Errorf("%s: Q15 biquad deviates by %v", name, worst)
		}
	}
}

func TestBiquadQ15NotchKillsMains(t *testing.T) {
	fs := 256.0
	fb, err := NotchFilter(50, 20, fs)
	if err != nil {
		t.Fatal(err)
	}
	qb := QuantizeBiquad(fb)
	x := sine(50, fs, 8192)
	for i := range x {
		x[i] *= 0.4
	}
	y := qb.Apply(fixedpt.FromSlice(x))
	tail := make([]float64, 2048)
	for i := range tail {
		tail[i] = y[len(y)-2048+i].Float()
	}
	if RMS(tail) > 0.03 {
		t.Errorf("50 Hz survives the Q15 notch: RMS %v", RMS(tail))
	}
	qb.Reset()
	if qb.Step(0) != 0 {
		t.Error("Reset did not clear Q15 state")
	}
}

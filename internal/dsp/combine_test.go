package dsp

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/fixedpt"
)

func TestCombineRMSBasic(t *testing.T) {
	leads := [][]float64{
		{3, 0, 1},
		{4, 0, 1},
	}
	got := CombineRMS(leads)
	want := []float64{math.Sqrt(12.5), 0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CombineRMS[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if CombineRMS(nil) != nil {
		t.Error("empty lead set should return nil")
	}
}

func TestCombineRMSSingleLeadIsAbs(t *testing.T) {
	lead := []float64{1, -2, 3, -4}
	got := CombineRMS([][]float64{lead})
	for i, v := range lead {
		if got[i] != math.Abs(v) {
			t.Errorf("single-lead RMS[%d] = %v, want |%v|", i, got[i], v)
		}
	}
}

func TestCombineRMSImprovesSNR(t *testing.T) {
	// The reason ref [11] uses RMS combination: uncorrelated noise across
	// leads averages down while the common cardiac component survives.
	rng := rand.New(rand.NewSource(42))
	n := 4096
	clean := make([]float64, n)
	for i := range clean {
		clean[i] = math.Abs(2 * math.Sin(2*math.Pi*float64(i)/256))
	}
	mkLead := func() []float64 {
		l := make([]float64, n)
		for i := range l {
			l[i] = clean[i] + 0.3*rng.NormFloat64()
		}
		return l
	}
	leads := [][]float64{mkLead(), mkLead(), mkLead()}
	combined := CombineRMS(leads)
	snrSingle := SNRdB(clean, leads[0])
	// RMS of |clean + noise| is biased but tracks clean; compare residual
	// variance instead of absolute SNR.
	resSingle := RMSE(clean, leads[0])
	resComb := RMSE(clean, combined)
	if resComb >= resSingle {
		t.Errorf("RMS combination did not reduce noise: %v >= %v (single-lead SNR %v dB)",
			resComb, resSingle, snrSingle)
	}
}

func TestCombineRMSQ15MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 256
	fl := make([][]float64, 3)
	qs := make([][]fixedpt.Q15, 3)
	for l := range fl {
		fl[l] = make([]float64, n)
		for i := range fl[l] {
			fl[l][i] = rng.Float64()*1.6 - 0.8
		}
		qs[l] = fixedpt.FromSlice(fl[l])
	}
	want := CombineRMS(fl)
	got := CombineRMSQ15(qs)
	for i := range want {
		if math.Abs(got[i].Float()-want[i]) > 0.002 {
			t.Errorf("Q15 RMS[%d] = %v, want %v", i, got[i].Float(), want[i])
		}
	}
	if CombineRMSQ15(nil) != nil {
		t.Error("empty Q15 lead set should return nil")
	}
}

func TestCombineMean(t *testing.T) {
	got := CombineMean([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("CombineMean = %v", got)
	}
	if CombineMean(nil) != nil {
		t.Error("empty mean combine should be nil")
	}
}

func TestCombineMaxAbs(t *testing.T) {
	got := CombineMaxAbs([][]float64{{1, -5, 2}, {-3, 4, 2}})
	want := []float64{-3, -5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CombineMaxAbs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if CombineMaxAbs(nil) != nil {
		t.Error("empty maxabs combine should be nil")
	}
}

func TestCombinePanicsOnMismatch(t *testing.T) {
	bad := [][]float64{{1, 2}, {1}}
	for name, fn := range map[string]func(){
		"RMS":    func() { CombineRMS(bad) },
		"Mean":   func() { CombineMean(bad) },
		"MaxAbs": func() { CombineMaxAbs(bad) },
		"Q15":    func() { CombineRMSQ15([][]fixedpt.Q15{{1, 2}, {1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Combine%s should panic on ragged leads", name)
				}
			}()
			fn()
		}()
	}
}

// Package dsp provides the basic digital-signal-processing substrate used
// throughout the cardiac-monitoring pipeline: FIR/IIR filtering, moving
// statistics, lead combination (Section III.B of the paper), resampling
// and signal-quality metrics (SNR/PRD) used by the compressed-sensing
// evaluation (Section V).
package dsp

import (
	"errors"
	"math"
)

// ErrBadFilter is returned when a filter is constructed with invalid
// coefficients (empty numerator or a zero leading denominator term).
var ErrBadFilter = errors.New("dsp: invalid filter coefficients")

// FIR is a finite-impulse-response filter defined by its tap coefficients.
// The zero value is unusable; construct with NewFIR.
type FIR struct {
	taps  []float64
	delay []float64 // circular delay line
	pos   int
}

// NewFIR creates an FIR filter with the given tap coefficients
// (b[0] applied to the newest sample).
func NewFIR(taps []float64) (*FIR, error) {
	if len(taps) == 0 {
		return nil, ErrBadFilter
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, delay: make([]float64, len(taps))}, nil
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Reset clears the filter's delay line.
func (f *FIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// Step filters one sample and returns the output.
func (f *FIR) Step(x float64) float64 {
	f.delay[f.pos] = x
	acc := 0.0
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return acc
}

// Apply filters the whole signal, returning a new slice of equal length.
// The filter state is reset first, so Apply is deterministic.
func (f *FIR) Apply(x []float64) []float64 {
	return f.ApplyInto(x, nil)
}

// ApplyInto is Apply writing into out, which is reused when its capacity
// suffices and grown otherwise — allocation-free with a warm buffer. out
// may alias x (each input sample is read before its slot is written).
// It returns the (possibly regrown) result slice.
func (f *FIR) ApplyInto(x, out []float64) []float64 {
	f.Reset()
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	for i, v := range x {
		out[i] = f.Step(v)
	}
	return out
}

// GroupDelay returns the (integer) group delay of a linear-phase FIR,
// (len-1)/2 samples.
func (f *FIR) GroupDelay() int { return (len(f.taps) - 1) / 2 }

// Biquad is a second-order IIR section in direct form II transposed.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewBiquad constructs a biquad from numerator b and denominator a
// coefficients; a[0] must be non-zero and all coefficients are normalised
// by it.
func NewBiquad(b [3]float64, a [3]float64) (*Biquad, error) {
	if a[0] == 0 {
		return nil, ErrBadFilter
	}
	inv := 1 / a[0]
	return &Biquad{
		b0: b[0] * inv, b1: b[1] * inv, b2: b[2] * inv,
		a1: a[1] * inv, a2: a[2] * inv,
	}, nil
}

// Reset clears the biquad state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// Step filters one sample.
func (q *Biquad) Step(x float64) float64 {
	y := q.b0*x + q.z1
	q.z1 = q.b1*x - q.a1*y + q.z2
	q.z2 = q.b2*x - q.a2*y
	return y
}

// Apply filters a whole signal after resetting state.
func (q *Biquad) Apply(x []float64) []float64 {
	return q.ApplyInto(x, nil)
}

// ApplyInto is Apply writing into out (reused when capacity suffices,
// grown otherwise). out may alias x. It returns the result slice.
func (q *Biquad) ApplyInto(x, out []float64) []float64 {
	q.Reset()
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	for i, v := range x {
		out[i] = q.Step(v)
	}
	return out
}

// Chain is a cascade of biquad sections applied in order.
type Chain []*Biquad

// Apply runs the signal through every section in sequence.
func (c Chain) Apply(x []float64) []float64 {
	y := x
	for _, s := range c {
		y = s.Apply(y)
	}
	return y
}

// ApplyInto runs the cascade writing into out: the first section filters
// x into out and the remaining sections run in place on out, so a warm
// buffer makes the whole cascade allocation-free. out may alias x.
// An empty chain copies x. It returns the (possibly regrown) slice.
func (c Chain) ApplyInto(x, out []float64) []float64 {
	if cap(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	if len(c) == 0 {
		copy(out, x)
		return out
	}
	out = c[0].ApplyInto(x, out)
	for _, s := range c[1:] {
		out = s.ApplyInto(out, out)
	}
	return out
}

// Butterworth2Lowpass designs a 2nd-order Butterworth low-pass biquad with
// cut-off fc (Hz) at sampling rate fs (Hz) using the bilinear transform.
func Butterworth2Lowpass(fc, fs float64) (*Biquad, error) {
	if fc <= 0 || fs <= 0 || fc >= fs/2 {
		return nil, ErrBadFilter
	}
	k := math.Tan(math.Pi * fc / fs)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	b0 := k * k * norm
	return NewBiquad(
		[3]float64{b0, 2 * b0, b0},
		[3]float64{1, 2 * (k*k - 1) * norm, (1 - k/q + k*k) * norm},
	)
}

// Butterworth2Highpass designs a 2nd-order Butterworth high-pass biquad.
func Butterworth2Highpass(fc, fs float64) (*Biquad, error) {
	if fc <= 0 || fs <= 0 || fc >= fs/2 {
		return nil, ErrBadFilter
	}
	k := math.Tan(math.Pi * fc / fs)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	return NewBiquad(
		[3]float64{norm, -2 * norm, norm},
		[3]float64{1, 2 * (k*k - 1) * norm, (1 - k/q + k*k) * norm},
	)
}

// NotchFilter designs a biquad notch at frequency f0 (Hz) with the given
// quality factor q, for powerline-interference removal (50/60 Hz).
func NotchFilter(f0, q, fs float64) (*Biquad, error) {
	if f0 <= 0 || fs <= 0 || f0 >= fs/2 || q <= 0 {
		return nil, ErrBadFilter
	}
	w0 := 2 * math.Pi * f0 / fs
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	return NewBiquad(
		[3]float64{1, -2 * cw, 1},
		[3]float64{1 + alpha, -2 * cw, 1 - alpha},
	)
}

// BandpassECG returns the standard monitoring-bandwidth cascade
// (0.5-40 Hz) used as the mandatory filtering stage of Section III before
// any feature extraction.
func BandpassECG(fs float64) (Chain, error) {
	hp, err := Butterworth2Highpass(0.5, fs)
	if err != nil {
		return nil, err
	}
	lp, err := Butterworth2Lowpass(40, fs)
	if err != nil {
		return nil, err
	}
	return Chain{hp, lp}, nil
}

// MovingAverage is an O(1)-per-sample boxcar filter of length n.
type MovingAverage struct {
	buf []float64
	pos int
	sum float64
	n   int // samples seen, saturates at len(buf)
}

// NewMovingAverage creates a moving average of window length n (n >= 1).
func NewMovingAverage(n int) (*MovingAverage, error) {
	if n < 1 {
		return nil, ErrBadFilter
	}
	return &MovingAverage{buf: make([]float64, n)}, nil
}

// Step pushes a sample and returns the mean over the last min(seen, n)
// samples.
func (m *MovingAverage) Step(x float64) float64 {
	m.sum += x - m.buf[m.pos]
	m.buf[m.pos] = x
	m.pos++
	if m.pos == len(m.buf) {
		m.pos = 0
	}
	if m.n < len(m.buf) {
		m.n++
	}
	return m.sum / float64(m.n)
}

// Reset clears state.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.pos, m.n, m.sum = 0, 0, 0
}

// Convolve returns the full convolution of x and h
// (length len(x)+len(h)-1). Either input may be empty, yielding nil.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	y := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			y[i+j] += xv * hv
		}
	}
	return y
}

// Decimate returns every k-th sample of x starting at index 0. A proper
// anti-aliasing filter should be applied first; this is the raw decimator.
func Decimate(x []float64, k int) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, 0, (len(x)+k-1)/k)
	for i := 0; i < len(x); i += k {
		out = append(out, x[i])
	}
	return out
}

// ResampleLinear resamples x from rate fsIn to fsOut with linear
// interpolation. This matches the light-weight rate conversion feasible on
// the node (no polyphase filter bank).
func ResampleLinear(x []float64, fsIn, fsOut float64) []float64 {
	if len(x) == 0 || fsIn <= 0 || fsOut <= 0 {
		return nil
	}
	n := int(math.Ceil(float64(len(x)) * fsOut / fsIn))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		t := float64(i) * fsIn / fsOut
		j := int(t)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := t - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}

// MedianFilter returns the sliding-window median of x with a centred
// window of length k (edge replication). The median filter is the
// classic robust baseline estimator the morphological and spline methods
// of Section III.B are measured against; it is O(n·k log k) and thus too
// heavy for the node, which is part of the paper's argument.
func MedianFilter(x []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadFilter
	}
	n := len(x)
	out := make([]float64, n)
	half := k / 2
	win := make([]float64, k)
	var sortBuf []float64
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			idx := i - half + j
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			win[j] = x[idx]
		}
		out[i], sortBuf = MedianInto(win, sortBuf)
	}
	return out, nil
}

package dsp

import (
	"math"
	"testing"
)

func sine(f, fs float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	return x
}

func TestNewFIRRejectsEmpty(t *testing.T) {
	if _, err := NewFIR(nil); err == nil {
		t.Error("NewFIR(nil) should fail")
	}
}

func TestFIRIdentity(t *testing.T) {
	f, err := NewFIR([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, -4, 5}
	y := f.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("identity FIR altered sample %d: %v != %v", i, y[i], x[i])
		}
	}
}

func TestFIRDelay(t *testing.T) {
	// h = [0, 1] delays by one sample.
	f, _ := NewFIR([]float64{0, 1})
	x := []float64{1, 2, 3, 4}
	y := f.Apply(x)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("delay FIR[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestFIRMatchesConvolution(t *testing.T) {
	taps := []float64{0.25, 0.5, 0.25}
	f, _ := NewFIR(taps)
	x := []float64{1, -1, 2, 0, 3, -2, 1}
	y := f.Apply(x)
	full := Convolve(x, taps)
	for i := range y {
		if math.Abs(y[i]-full[i]) > 1e-12 {
			t.Errorf("FIR vs Convolve mismatch at %d: %v vs %v", i, y[i], full[i])
		}
	}
}

func TestFIRTapsCopy(t *testing.T) {
	taps := []float64{1, 2}
	f, _ := NewFIR(taps)
	got := f.Taps()
	got[0] = 99
	if f.Taps()[0] != 1 {
		t.Error("Taps must return a copy")
	}
}

func TestButterworthLowpassAttenuation(t *testing.T) {
	fs := 256.0
	lp, err := Butterworth2Lowpass(10, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Pass-band tone.
	low := lp.Apply(sine(2, fs, 2048))
	// Stop-band tone.
	high := lp.Apply(sine(80, fs, 2048))
	rl, rh := RMS(low[512:]), RMS(high[512:])
	if rl < 0.6 {
		t.Errorf("2 Hz tone attenuated too much by 10 Hz LP: RMS %v", rl)
	}
	if rh > 0.05 {
		t.Errorf("80 Hz tone not attenuated by 10 Hz LP: RMS %v", rh)
	}
}

func TestButterworthHighpassAttenuation(t *testing.T) {
	fs := 256.0
	hp, err := Butterworth2Highpass(5, fs)
	if err != nil {
		t.Fatal(err)
	}
	low := hp.Apply(sine(0.3, fs, 4096))
	high := hp.Apply(sine(30, fs, 4096))
	if RMS(low[1024:]) > 0.05 {
		t.Errorf("0.3 Hz tone not attenuated by 5 Hz HP: RMS %v", RMS(low[1024:]))
	}
	if RMS(high[1024:]) < 0.6 {
		t.Errorf("30 Hz tone attenuated too much by 5 Hz HP: RMS %v", RMS(high[1024:]))
	}
}

func TestNotchFilter(t *testing.T) {
	fs := 256.0
	nf, err := NotchFilter(50, 30, fs)
	if err != nil {
		t.Fatal(err)
	}
	at50 := nf.Apply(sine(50, fs, 8192))
	at20 := nf.Apply(sine(20, fs, 8192))
	if RMS(at50[4096:]) > 0.05 {
		t.Errorf("50 Hz tone survives notch: RMS %v", RMS(at50[4096:]))
	}
	if RMS(at20[4096:]) < 0.6 {
		t.Errorf("20 Hz tone damaged by 50 Hz notch: RMS %v", RMS(at20[4096:]))
	}
}

func TestFilterDesignRejectsBadParams(t *testing.T) {
	if _, err := Butterworth2Lowpass(200, 256); err == nil {
		t.Error("fc above Nyquist should fail")
	}
	if _, err := Butterworth2Highpass(-1, 256); err == nil {
		t.Error("negative fc should fail")
	}
	if _, err := NotchFilter(50, 0, 256); err == nil {
		t.Error("zero Q should fail")
	}
	if _, err := NewBiquad([3]float64{1, 0, 0}, [3]float64{0, 1, 0}); err == nil {
		t.Error("zero a0 should fail")
	}
}

func TestBandpassECGRemovesBaselineAndHF(t *testing.T) {
	fs := 256.0
	ch, err := BandpassECG(fs)
	if err != nil {
		t.Fatal(err)
	}
	baseline := ch.Apply(sine(0.1, fs, 8192))
	mid := ch.Apply(sine(10, fs, 8192))
	hf := ch.Apply(sine(100, fs, 8192))
	if RMS(baseline[4096:]) > 0.1 {
		t.Errorf("baseline wander survives band-pass: %v", RMS(baseline[4096:]))
	}
	if RMS(mid[4096:]) < 0.5 {
		t.Errorf("10 Hz (QRS band) attenuated: %v", RMS(mid[4096:]))
	}
	if RMS(hf[4096:]) > 0.15 {
		t.Errorf("100 Hz noise survives band-pass: %v", RMS(hf[4096:]))
	}
}

func TestMovingAverage(t *testing.T) {
	m, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{m.Step(3), m.Step(6), m.Step(9), m.Step(0)}
	want := []float64{3, 4.5, 6, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("NewMovingAverage(0) should fail")
	}
	m.Reset()
	if m.Step(10) != 10 {
		t.Error("Reset did not clear MA state")
	}
}

func TestConvolve(t *testing.T) {
	y := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(y) != len(want) {
		t.Fatalf("Convolve length %d, want %d", len(y), len(want))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("Convolve[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve with empty input should return nil")
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Decimate length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Decimate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Decimate(x, 0) != nil {
		t.Error("Decimate with k=0 should return nil")
	}
}

func TestResampleLinear(t *testing.T) {
	// Upsampling a ramp stays a ramp.
	x := []float64{0, 1, 2, 3}
	y := ResampleLinear(x, 100, 200)
	for i := 0; i < len(y)-2; i++ {
		d := y[i+1] - y[i]
		if math.Abs(d-0.5) > 1e-9 {
			t.Errorf("resampled ramp step at %d = %v, want 0.5", i, d)
		}
	}
	// Preserves a tone's RMS approximately.
	fs := 256.0
	tone := sine(5, fs, 1024)
	up := ResampleLinear(tone, fs, 512)
	if math.Abs(RMS(up)-RMS(tone)) > 0.02 {
		t.Errorf("resampling changed RMS: %v vs %v", RMS(up), RMS(tone))
	}
	if ResampleLinear(nil, 100, 200) != nil {
		t.Error("empty input should return nil")
	}
}

func TestMedianFilter(t *testing.T) {
	if _, err := MedianFilter([]float64{1}, 0); err != ErrBadFilter {
		t.Error("k=0 should fail")
	}
	// Impulse removal: a single spike vanishes under a width-3 median.
	x := make([]float64, 20)
	x[10] = 5
	y, err := MedianFilter(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if v != 0 {
			t.Errorf("median filter left %v at %d", v, i)
		}
	}
	// Step preservation: medians do not smear edges like means do.
	s := make([]float64, 20)
	for i := 10; i < 20; i++ {
		s[i] = 1
	}
	ys, _ := MedianFilter(s, 5)
	for i, v := range ys {
		if v != s[i] {
			t.Errorf("median filter distorted the step at %d: %v", i, v)
		}
	}
}

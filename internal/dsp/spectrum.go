package dsp

import "math"

// Periodogram returns the one-sided power spectral density estimate of x
// sampled at fs Hz, computed by direct DFT with a Hann window. The
// result has len(x)/2+1 bins; bin k corresponds to frequency
// k·fs/len(x). Signal lengths here are small (HRV tachograms), so the
// O(n²) DFT is simpler and fast enough — no FFT machinery needed.
func Periodogram(x []float64, fs float64) []float64 {
	n := len(x)
	if n == 0 || fs <= 0 {
		return nil
	}
	// Hann window, mean removed first (the DC bin would otherwise swamp
	// the physiological bands).
	m := Mean(x)
	w := make([]float64, n)
	var wpow float64
	for i := range w {
		win := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		if n == 1 {
			win = 1
		}
		w[i] = (x[i] - m) * win
		wpow += win * win
	}
	if wpow == 0 {
		wpow = 1
	}
	bins := n/2 + 1
	psd := make([]float64, bins)
	for k := 0; k < bins; k++ {
		var re, im float64
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			re += w[i] * math.Cos(ang)
			im += w[i] * math.Sin(ang)
		}
		p := (re*re + im*im) / (wpow * fs)
		if k != 0 && k != bins-1 {
			p *= 2 // one-sided
		}
		psd[k] = p
	}
	return psd
}

// BandPower integrates a one-sided PSD (as returned by Periodogram for a
// signal of length n at rate fs) over [fLo, fHi] using the trapezoid
// rule.
func BandPower(psd []float64, n int, fs, fLo, fHi float64) float64 {
	if len(psd) == 0 || n <= 0 || fs <= 0 || fHi <= fLo {
		return 0
	}
	df := fs / float64(n)
	power := 0.0
	for k := 0; k < len(psd); k++ {
		f := float64(k) * df
		if f < fLo || f > fHi {
			continue
		}
		power += psd[k] * df
	}
	return power
}

package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestFIRApplyIntoMatchesApply(t *testing.T) {
	x := randSignal(300, 1)
	f, err := NewFIR([]float64{0.25, 0.5, 0.25, -0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := f.Apply(x)
	out := make([]float64, 0, len(x))
	out = f.ApplyInto(x, out)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	// Aliased output must agree too.
	alias := append([]float64(nil), x...)
	alias = f.ApplyInto(alias, alias)
	for i := range want {
		if alias[i] != want[i] {
			t.Fatalf("aliased sample %d: %v != %v", i, alias[i], want[i])
		}
	}
	if a := testing.AllocsPerRun(20, func() {
		out = f.ApplyInto(x, out)
	}); a > 0 {
		t.Fatalf("warm FIR.ApplyInto allocates %.0f times", a)
	}
}

func TestChainApplyIntoMatchesApply(t *testing.T) {
	x := randSignal(400, 2)
	ch, err := BandpassECG(256)
	if err != nil {
		t.Fatal(err)
	}
	want := ch.Apply(x)
	var out []float64
	out = ch.ApplyInto(x, out)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	if a := testing.AllocsPerRun(20, func() {
		out = ch.ApplyInto(x, out)
	}); a > 0 {
		t.Fatalf("warm Chain.ApplyInto allocates %.0f times", a)
	}
	// Empty chain degenerates to a copy.
	var empty Chain
	cp := empty.ApplyInto(x, nil)
	for i := range x {
		if cp[i] != x[i] {
			t.Fatalf("empty chain sample %d: %v != %v", i, cp[i], x[i])
		}
	}
}

func TestBiquadApplyIntoAliased(t *testing.T) {
	x := randSignal(200, 3)
	q, err := Butterworth2Lowpass(30, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Apply(x)
	alias := append([]float64(nil), x...)
	alias = q.ApplyInto(alias, alias)
	for i := range want {
		if alias[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, alias[i], want[i])
		}
	}
}

func TestMedianIntoMatchesMedian(t *testing.T) {
	var buf []float64
	for _, n := range []int{0, 1, 2, 5, 16, 33, 200} {
		x := randSignal(n, int64(n)+7)
		want := Median(x)
		got, regrown := MedianInto(x, buf)
		buf = regrown
		if math.IsNaN(want) || math.IsNaN(got) {
			t.Fatalf("n=%d: NaN median", n)
		}
		if got != want {
			t.Fatalf("n=%d: MedianInto %v != Median %v", n, got, want)
		}
		// The input must not be reordered.
		y := randSignal(n, int64(n)+7)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("n=%d: MedianInto mutated its input", n)
			}
		}
	}
	x := randSignal(128, 9)
	if a := testing.AllocsPerRun(20, func() {
		_, buf = MedianInto(x, buf)
	}); a > 0 {
		t.Fatalf("warm MedianInto allocates %.0f times", a)
	}
}

func TestDiffIntoMatchesDiff(t *testing.T) {
	x := randSignal(100, 11)
	want := Diff(x)
	var out []float64
	out = DiffInto(x, out)
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	if got := DiffInto([]float64{1}, out); len(got) != 0 {
		t.Fatalf("short input: got length %d, want 0", len(got))
	}
	if a := testing.AllocsPerRun(20, func() {
		out = DiffInto(x, out)
	}); a > 0 {
		t.Fatalf("warm DiffInto allocates %.0f times", a)
	}
}

package dsp

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// samples.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// MinMax returns the minimum and maximum of x. It panics on empty input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("dsp: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the index of the maximum element of x (-1 if empty).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of x (-1 if empty).
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v < x[best] {
			best = i
		}
	}
	return best
}

// ArgAbsMax returns the index of the element with the largest absolute
// value (-1 if empty).
func ArgAbsMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if math.Abs(v) > math.Abs(x[best]) {
			best = i
		}
	}
	return best
}

// Median returns the median of x without modifying it, or 0 for an empty
// slice.
func Median(x []float64) float64 {
	m, _ := MedianInto(x, nil)
	return m
}

// MedianInto is Median drawing its working copy from buf, which is
// reused when its capacity suffices and grown otherwise — allocation-free
// with a warm scratch. It returns the median and the (possibly regrown)
// scratch for the next call.
func MedianInto(x, buf []float64) (float64, []float64) {
	if len(x) == 0 {
		return 0, buf
	}
	if cap(buf) < len(x) {
		buf = make([]float64, len(x))
	}
	buf = buf[:len(x)]
	copy(buf, x)
	quickSelectSort(buf)
	n := len(buf)
	if n%2 == 1 {
		return buf[n/2], buf
	}
	return (buf[n/2-1] + buf[n/2]) / 2, buf
}

// quickSelectSort sorts in place with insertion sort for small inputs and
// a simple quicksort otherwise; avoids importing sort for hot paths.
func quickSelectSort(x []float64) {
	if len(x) < 16 {
		for i := 1; i < len(x); i++ {
			v := x[i]
			j := i - 1
			for j >= 0 && x[j] > v {
				x[j+1] = x[j]
				j--
			}
			x[j+1] = v
		}
		return
	}
	pivot := x[len(x)/2]
	lt, i, gt := 0, 0, len(x)
	for i < gt {
		switch {
		case x[i] < pivot:
			x[lt], x[i] = x[i], x[lt]
			lt++
			i++
		case x[i] > pivot:
			gt--
			x[gt], x[i] = x[i], x[gt]
		default:
			i++
		}
	}
	quickSelectSort(x[:lt])
	quickSelectSort(x[gt:])
}

// Normalize scales x in place to zero mean and unit standard deviation.
// Constant signals are left mean-removed only.
func Normalize(x []float64) {
	m := Mean(x)
	sd := Std(x)
	for i := range x {
		x[i] -= m
	}
	if sd == 0 {
		return
	}
	inv := 1 / sd
	for i := range x {
		x[i] *= inv
	}
}

// Detrend removes the least-squares straight line from x in place.
func Detrend(x []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	// Fit y = a + b*t with t = 0..n-1.
	var st, sy, stt, sty float64
	for i, v := range x {
		t := float64(i)
		st += t
		sy += v
		stt += t * t
		sty += t * v
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return
	}
	b := (fn*sty - st*sy) / den
	a := (sy - b*st) / fn
	for i := range x {
		x[i] -= a + b*float64(i)
	}
}

// Diff returns the first difference x[i+1]-x[i] (length len(x)-1).
func Diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	return DiffInto(x, nil)
}

// DiffInto is Diff writing into out (reused when capacity suffices,
// grown otherwise). out may alias x. Inputs shorter than two samples
// yield an empty slice. It returns the (possibly regrown) result.
func DiffInto(x, out []float64) []float64 {
	if len(x) < 2 {
		return out[:0]
	}
	if cap(out) < len(x)-1 {
		out = make([]float64, len(x)-1)
	}
	out = out[:len(x)-1]
	for i := range out {
		out[i] = x[i+1] - x[i]
	}
	return out
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length signals, or 0 if either is constant. It panics on length
// mismatch.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dsp: Correlation length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

package dsp

import (
	"math"

	"wbsn/internal/fixedpt"
)

// This file implements multi-lead source combination (Section III.B).
// Ref [11] presents "simple root mean square (RMS) aggregation of inputs
// as a light-weight, yet effective, implementation strategy" for reducing
// noise before delineation: the leads are combined into one signal whose
// sample i is the RMS across leads of sample i.

// CombineRMS aggregates multiple equal-length leads into a single signal
// by per-sample root mean square. It panics if leads have different
// lengths; an empty lead set returns nil.
func CombineRMS(leads [][]float64) []float64 {
	if len(leads) == 0 {
		return nil
	}
	return CombineRMSInto(leads, nil)
}

// CombineRMSInto is CombineRMS writing into out, which is reused when its
// capacity suffices and grown otherwise — allocation-free with a warm
// buffer. It returns the (possibly regrown) result slice.
func CombineRMSInto(leads [][]float64, out []float64) []float64 {
	if len(leads) == 0 {
		return out[:0]
	}
	n := len(leads[0])
	for _, l := range leads[1:] {
		if len(l) != n {
			panic("dsp: CombineRMS lead length mismatch")
		}
	}
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	inv := 1 / float64(len(leads))
	for i := 0; i < n; i++ {
		s := 0.0
		for _, l := range leads {
			s += l[i] * l[i]
		}
		out[i] = math.Sqrt(s * inv)
	}
	return out
}

// CombineRMSQ15 is the integer-only variant executed on the node: each
// sample is sqrt(mean of squares) computed with the wide-accumulator MAC
// pattern and the bit-by-bit integer square root from internal/fixedpt.
// It panics on lead length mismatch; an empty set returns nil.
func CombineRMSQ15(leads [][]fixedpt.Q15) []fixedpt.Q15 {
	if len(leads) == 0 {
		return nil
	}
	n := len(leads[0])
	for _, l := range leads[1:] {
		if len(l) != n {
			panic("dsp: CombineRMSQ15 lead length mismatch")
		}
	}
	out := make([]fixedpt.Q15, n)
	m := uint64(len(leads))
	for i := 0; i < n; i++ {
		var acc uint64
		for _, l := range leads {
			v := int64(l[i])
			acc += uint64(v * v) // Q30 each
		}
		mean := acc / m               // Q30
		root := fixedpt.ISqrt64(mean) // sqrt of Q30 value is Q15
		if root > 32767 {
			root = 32767
		}
		out[i] = fixedpt.Q15(root)
	}
	return out
}

// CombineMean aggregates leads by per-sample arithmetic mean (baseline
// strategy compared against RMS in ref [11]). Panics on length mismatch.
func CombineMean(leads [][]float64) []float64 {
	if len(leads) == 0 {
		return nil
	}
	n := len(leads[0])
	for _, l := range leads[1:] {
		if len(l) != n {
			panic("dsp: CombineMean lead length mismatch")
		}
	}
	out := make([]float64, n)
	inv := 1 / float64(len(leads))
	for i := 0; i < n; i++ {
		s := 0.0
		for _, l := range leads {
			s += l[i]
		}
		out[i] = s * inv
	}
	return out
}

// CombineMaxAbs aggregates leads by taking, per sample, the value with the
// largest magnitude across leads (sign preserved). Another light-weight
// combiner evaluated in the comparative study of ref [11].
func CombineMaxAbs(leads [][]float64) []float64 {
	if len(leads) == 0 {
		return nil
	}
	n := len(leads[0])
	for _, l := range leads[1:] {
		if len(l) != n {
			panic("dsp: CombineMaxAbs lead length mismatch")
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		best := leads[0][i]
		for _, l := range leads[1:] {
			if math.Abs(l[i]) > math.Abs(best) {
				best = l[i]
			}
		}
		out[i] = best
	}
	return out
}

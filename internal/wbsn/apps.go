package wbsn

// This file builds the three Figure 7 workloads as instruction streams
// whose operation counts mirror the actual kernels implemented in
// internal/morpho, internal/wavelet/delineation and internal/classify:
//
//   - 3L-MF   — morphological filtering of 3 ECG leads (ref [9]);
//   - 3L-MMD  — multiscale morphological/wavelet delineation of 3 leads
//     (refs [12][13]);
//   - RP-CLASS — random-projection heartbeat classification (ref [14]).
//
// The per-sample instruction budgets include the address arithmetic,
// loop and branch overhead a 16-bit integer MCU spends around each
// abstract operation (~3-5 machine instructions per kernel op), so the
// cycle counts land in the regime the embedded ports of refs [12][14]
// report.

// AppSpec describes one Figure 7 application workload.
type AppSpec struct {
	// Name is the Figure 7 label.
	Name string
	// Cores is the multi-core mapping width (one lead or feature slice
	// per core).
	Cores int
	// DeadlineS is the real-time window for one batch of work.
	DeadlineS float64
	// DutyCap bounds the active fraction of the deadline.
	DutyCap float64
	// PeriodS is the recurrence interval over which power is averaged
	// (= DeadlineS for streaming apps; the beat interval for per-beat
	// classification).
	PeriodS float64
	// mcProgram and scProgram build the per-core parallel program and the
	// serialized single-core equivalent.
	mcProgram func() (*Program, error)
	scProgram func() (*Program, error)
}

// perSampleMF appends one sample of morphological conditioning: the
// four van Herk sliding stages of the baseline filter plus the short
// open/close noise stage, with one data-dependent branch for the
// monotonic-wedge maintenance.
func perSampleMF(b *Builder) {
	b.Load(8)
	b.Compute(80)
	b.Branch(0.30, func(b *Builder) {
		b.Compute(14)
	})
	b.Compute(20)
	b.Store(6)
}

// perSampleMMD appends one sample of the delineation transform: five
// à-trous scales (shift-add filter bank) plus modulus-maxima threshold
// logic with a data-dependent branch on the detection path.
func perSampleMMD(b *Builder) {
	b.Load(10)
	b.Compute(90)
	b.Branch(0.12, func(b *Builder) {
		b.Compute(25)
		b.Store(2)
	})
	b.Compute(18)
	b.Store(5)
}

// perBeatRPSlice appends one core's slice of the per-beat classification:
// a quarter of the random-projection rows (166-sample window × 3 leads,
// one third of entries non-zero) plus its share of the prototype
// evaluations with the four-segment linearized Gaussian.
func perBeatRPSlice(b *Builder) {
	// RP slice: 4 of 16 rows over 498 inputs, 1/3 density → ~664 MACs.
	b.Repeat(8, func(b *Builder) {
		b.Load(21)
		b.Compute(83)
	})
	// Prototype distances + linearized exponential for 3 of 12 kernels.
	b.Repeat(3, func(b *Builder) {
		b.Load(16)
		b.Compute(52)
		b.Branch(0.5, func(b *Builder) {
			b.Compute(6)
		})
	})
	b.Store(4)
}

// buildStreamApp builds the MC/SC program pair for a per-sample
// streaming kernel over `samples` samples: the MC program is one lead's
// work with a barrier per sample block (the paper's lock-step recovery),
// the SC program is `leads` leads' work serialized.
func buildStreamApp(name string, perSample func(*Builder), samples, blockLen, leads int) (mc, sc func() (*Program, error)) {
	mc = func() (*Program, error) {
		b := NewBuilder(name+"-mc", 0)
		blocks := samples / blockLen
		b.Repeat(blocks, func(b *Builder) {
			b.Repeat(blockLen, perSample)
			b.Barrier()
		})
		return b.Build()
	}
	sc = func() (*Program, error) {
		b := NewBuilder(name+"-sc", 0)
		b.Repeat(leads, func(b *Builder) {
			b.Repeat(samples, perSample)
		})
		return b.Build()
	}
	return mc, sc
}

// App3LMF returns the 3-lead morphological-filtering workload: one
// second of 256 Hz data, three cores in lock-step (one per lead).
func App3LMF() AppSpec {
	mc, sc := buildStreamApp("3L-MF", perSampleMF, 256, 1, 3)
	return AppSpec{
		Name:      "3L-MF",
		Cores:     3,
		DeadlineS: 1.0,
		DutyCap:   0.08,
		PeriodS:   1.0,
		mcProgram: mc,
		scProgram: sc,
	}
}

// App3LMMD returns the 3-lead delineation workload.
func App3LMMD() AppSpec {
	mc, sc := buildStreamApp("3L-MMD", perSampleMMD, 256, 1, 3)
	return AppSpec{
		Name:      "3L-MMD",
		Cores:     3,
		DeadlineS: 1.0,
		DutyCap:   0.08,
		PeriodS:   1.0,
		mcProgram: mc,
		scProgram: sc,
	}
}

// AppRPClass returns the per-beat random-projection classification
// workload: four cores each computing a projection/prototype slice, with
// a 5 ms per-beat latency budget (the classifier must retire before the
// next processing slot of the duty-cycled schedule) and power averaged
// over the mean RR interval.
func AppRPClass() AppSpec {
	mc := func() (*Program, error) {
		b := NewBuilder("RP-CLASS-mc", 0)
		perBeatRPSlice(b)
		b.Barrier()
		// Argmax reduction on one slice's share.
		b.Load(4)
		b.Compute(10)
		b.Barrier()
		return b.Build()
	}
	sc := func() (*Program, error) {
		b := NewBuilder("RP-CLASS-sc", 0)
		b.Repeat(4, perBeatRPSlice)
		b.Load(16)
		b.Compute(40)
		return b.Build()
	}
	return AppSpec{
		Name:      "RP-CLASS",
		Cores:     4,
		DeadlineS: 0.005,
		DutyCap:   1.0,
		PeriodS:   0.8,
		mcProgram: mc,
		scProgram: sc,
	}
}

// Programs materialises the app's multi-core and single-core programs,
// e.g. for memory-footprint accounting.
func (a AppSpec) Programs() (mc, sc *Program, err error) {
	mc, err = a.mcProgram()
	if err != nil {
		return nil, nil, err
	}
	sc, err = a.scProgram()
	if err != nil {
		return nil, nil, err
	}
	return mc, sc, nil
}

// Figure7Apps returns the three workloads of the Figure 7 comparison.
func Figure7Apps() []AppSpec {
	return []AppSpec{App3LMF(), App3LMMD(), AppRPClass()}
}

// AppResult is one app's MC-vs-SC outcome.
type AppResult struct {
	App       string
	MC, SC    PowerBreakdown
	MCStats   Stats
	SCStats   Stats
	Reduction float64
}

// RunApp simulates both configurations of one app on the given energy
// model and machine seed.
func RunApp(app AppSpec, em EnergyModel, seed int64) (AppResult, error) {
	mcProg, err := app.mcProgram()
	if err != nil {
		return AppResult{}, err
	}
	scProg, err := app.scProgram()
	if err != nil {
		return AppResult{}, err
	}
	// MC: every core runs the shared program image (same *Program, so
	// lock-step fetches merge), each on its private data bank.
	mcProgs := make([]*Program, app.Cores)
	for i := range mcProgs {
		mcProgs[i] = mcProg
	}
	mcMachine, err := NewMachine(MachineConfig{
		Cores: app.Cores, IMemBanks: 2, DMemBanks: app.Cores,
		Broadcast: true, Seed: seed,
	}, mcProgs)
	if err != nil {
		return AppResult{}, err
	}
	scMachine, err := NewMachine(MachineConfig{
		Cores: 1, IMemBanks: 2, DMemBanks: 1,
		Broadcast: false, Seed: seed,
	}, []*Program{scProg})
	if err != nil {
		return AppResult{}, err
	}
	const maxCycles = 50_000_000
	mcStats := mcMachine.Run(maxCycles)
	scStats := scMachine.Run(maxCycles)
	mcPow := em.Power(app.Name+"-MC", mcStats, app.Cores, app.DeadlineS, app.DutyCap, app.PeriodS)
	scPow := em.Power(app.Name+"-SC", scStats, 1, app.DeadlineS, app.DutyCap, app.PeriodS)
	return AppResult{
		App: app.Name, MC: mcPow, SC: scPow,
		MCStats: mcStats, SCStats: scStats,
		Reduction: Reduction(scPow, mcPow),
	}, nil
}

// RunFigure7 runs all three apps and returns their results in order.
func RunFigure7(em EnergyModel, seed int64) ([]AppResult, error) {
	var out []AppResult
	for _, app := range Figure7Apps() {
		r, err := RunApp(app, em, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AppCompound returns the whole-pipeline mapping of Figure 3: an 8-core
// platform running the full cardiac chain concurrently — three cores
// condition the three leads (MF), three delineate them (MMD, consuming
// the conditioned samples through shared data banks in the
// producer-consumer style the paper describes), and two run the CS
// encoder and the per-beat classifier slice. The single-core reference
// executes the same work serially.
func AppCompound() AppSpec {
	mkStage := func(name string, bank int, perSample func(*Builder), consumeFrom int) func() (*Program, error) {
		return func() (*Program, error) {
			b := NewBuilder(name, bank)
			b.Repeat(256, func(b *Builder) {
				if consumeFrom >= 0 {
					// Producer-consumer hand-off: read the upstream
					// stage's output from its data bank.
					b.LoadShared(consumeFrom, 2)
				}
				perSample(b)
				b.Barrier()
			})
			return b.Build()
		}
	}
	perSampleCS := func(b *Builder) {
		// Amortised CS encoding (d=4 adds across 3 leads) plus the
		// classifier slice triggered on ~1 sample in 200.
		b.Load(3)
		b.Compute(14)
		b.Branch(0.005, func(b *Builder) {
			b.Repeat(2, func(b *Builder) {
				b.Load(21)
				b.Compute(83)
			})
		})
		b.Store(2)
	}
	cores := 8
	spec := AppSpec{
		Name:      "PIPELINE-8C",
		Cores:     cores,
		DeadlineS: 1.0,
		DutyCap:   0.08,
		PeriodS:   1.0,
	}
	// The generic RunApp replicates one program across cores; the
	// compound mapping needs distinct per-core programs, so it provides
	// its own runner through RunCompound. Keep builders for footprint
	// accounting.
	spec.mcProgram = mkStage("mf", 0, perSampleMF, -1)
	spec.scProgram = func() (*Program, error) {
		b := NewBuilder("pipeline-sc", 0)
		b.Repeat(3, func(b *Builder) { b.Repeat(256, perSampleMF) })
		b.Repeat(3, func(b *Builder) { b.Repeat(256, perSampleMMD) })
		b.Repeat(2, func(b *Builder) { b.Repeat(256, perSampleCS) })
		return b.Build()
	}
	return spec
}

// RunCompound simulates the Figure 3 compound mapping: eight cores with
// per-stage programs against the serial single-core equivalent, and
// returns the MC/SC power comparison.
func RunCompound(em EnergyModel, seed int64) (AppResult, error) {
	spec := AppCompound()
	mkStage := func(name string, bank int, perSample func(*Builder), consumeFrom int) (*Program, error) {
		b := NewBuilder(name, bank)
		b.Repeat(256, func(b *Builder) {
			if consumeFrom >= 0 {
				b.LoadShared(consumeFrom, 2)
			}
			perSample(b)
			b.Barrier()
		})
		return b.Build()
	}
	perSampleCS := func(b *Builder) {
		b.Load(3)
		b.Compute(14)
		b.Branch(0.005, func(b *Builder) {
			b.Repeat(2, func(b *Builder) {
				b.Load(21)
				b.Compute(83)
			})
		})
		b.Store(2)
	}
	mf, err := mkStage("mf", 0, perSampleMF, -1)
	if err != nil {
		return AppResult{}, err
	}
	mmd, err := mkStage("mmd", 1, perSampleMMD, 0)
	if err != nil {
		return AppResult{}, err
	}
	csp, err := mkStage("cs", 2, perSampleCS, 3)
	if err != nil {
		return AppResult{}, err
	}
	progs := []*Program{mf, mf, mf, mmd, mmd, mmd, csp, csp}
	mcMachine, err := NewMachine(MachineConfig{
		Cores: 8, IMemBanks: 3, DMemBanks: 8, Broadcast: true, Seed: seed,
	}, progs)
	if err != nil {
		return AppResult{}, err
	}
	scProg, err := spec.scProgram()
	if err != nil {
		return AppResult{}, err
	}
	scMachine, err := NewMachine(MachineConfig{
		Cores: 1, IMemBanks: 3, DMemBanks: 1, Broadcast: false, Seed: seed,
	}, []*Program{scProg})
	if err != nil {
		return AppResult{}, err
	}
	const maxCycles = 50_000_000
	mcStats := mcMachine.Run(maxCycles)
	scStats := scMachine.Run(maxCycles)
	mcPow := em.Power(spec.Name+"-MC", mcStats, 8, spec.DeadlineS, spec.DutyCap, spec.PeriodS)
	scPow := em.Power(spec.Name+"-SC", scStats, 1, spec.DeadlineS, spec.DutyCap, spec.PeriodS)
	return AppResult{
		App: spec.Name, MC: mcPow, SC: scPow,
		MCStats: mcStats, SCStats: scStats,
		Reduction: Reduction(scPow, mcPow),
	}, nil
}

// RunCoreScaling sweeps the core count for an 8-lead conditioning
// workload (each of P cores filters 8/P leads serially, in lock-step
// with its peers): the curve behind Section IV.B's claim that the high
// degree of parallelism in cardiac workloads converts directly into
// voltage-scaling headroom. Valid core counts divide 8.
func RunCoreScaling(em EnergyModel, seed int64, coreCounts []int) ([]AppResult, error) {
	const leads = 8
	var out []AppResult
	for _, p := range coreCounts {
		if p < 1 || leads%p != 0 {
			return nil, ErrMachine
		}
		perCoreLeads := leads / p
		b := NewBuilder("8L-MF", 0)
		b.Repeat(256, func(b *Builder) {
			b.Repeat(perCoreLeads, func(b *Builder) {
				perSampleMF(b)
				if p > 1 {
					// Re-align after every lead's data-dependent branch
					// (the paper's barrier-insertion technique).
					b.Barrier()
				}
			})
		})
		prog, err := b.Build()
		if err != nil {
			return nil, err
		}
		progs := make([]*Program, p)
		for i := range progs {
			progs[i] = prog
		}
		m, err := NewMachine(MachineConfig{
			Cores: p, IMemBanks: 2, DMemBanks: p, Broadcast: true, Seed: seed,
		}, progs)
		if err != nil {
			return nil, err
		}
		st := m.Run(50_000_000)
		pow := em.Power(labelForCores(p), st, p, 1.0, 0.08, 1.0)
		out = append(out, AppResult{App: labelForCores(p), MC: pow, MCStats: st})
	}
	// Express each point's reduction against the single-core entry.
	for i := range out {
		out[i].SC = out[0].MC
		out[i].SCStats = out[0].MCStats
		out[i].Reduction = Reduction(out[0].MC, out[i].MC)
	}
	return out, nil
}

func labelForCores(p int) string {
	return "8L-MF-" + string(rune('0'+p)) + "c"
}

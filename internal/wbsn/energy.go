package wbsn

import "math"

// EnergyModel converts architectural event counts and a DVFS operating
// point into component powers. Dynamic energies scale with V² (CMOS
// switching); leakage power scales roughly with V² as well over the
// narrow near-/super-threshold range the platform spans.
type EnergyModel struct {
	// VNom is the voltage at which the per-event energies are specified.
	VNom float64
	// CoreOpJ is the per-executed-instruction core energy at VNom.
	CoreOpJ float64
	// CoreIdleJ is the per-cycle clock-gated idle energy at VNom.
	CoreIdleJ float64
	// IMemAccessJ and DMemAccessJ are per-access memory energies at VNom.
	IMemAccessJ, DMemAccessJ float64
	// InterconnectJ is the per-transaction interconnect energy at VNom.
	InterconnectJ float64
	// LeakPerCoreW is the per-core leakage power at VNom.
	LeakPerCoreW float64
	// VMin and VMax bound the DVFS range; FMax is the frequency reachable
	// at VMax.
	VMin, VMax, FMax float64
}

// DefaultEnergy returns a 90 nm-class ultra-low-power operating space:
// a few-MHz signal processor (the platform class of Section IV.A) built
// from high-Vt cells (low leakage), scaling from 1.2 V at 2 MHz down to
// near-threshold 0.7 V.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		VNom:          1.2,
		CoreOpJ:       18e-12,
		CoreIdleJ:     1.5e-12,
		IMemAccessJ:   14e-12,
		DMemAccessJ:   16e-12,
		InterconnectJ: 2.5e-12,
		LeakPerCoreW:  3e-6,
		VMin:          0.7,
		VMax:          1.2,
		FMax:          2e6,
	}
}

// VoltageFor returns the minimum supply voltage sustaining frequency f,
// assuming the linear V-f relation V = VMin + (VMax−VMin)·f/FMax typical
// of the near-threshold regime. Frequencies above FMax clamp to VMax.
func (e EnergyModel) VoltageFor(f float64) float64 {
	if f <= 0 {
		return e.VMin
	}
	if f >= e.FMax {
		return e.VMax
	}
	return e.VMin + (e.VMax-e.VMin)*f/e.FMax
}

// scale returns the dynamic-energy scaling factor (V/VNom)².
func (e EnergyModel) scale(v float64) float64 {
	r := v / e.VNom
	return r * r
}

// PowerBreakdown is one bar of Figure 7: average power per architectural
// component, in watts.
type PowerBreakdown struct {
	Label string
	CoreW float64
	IMemW float64
	DMemW float64
	IntcW float64
	LeakW float64
	// Freq and Voltage record the operating point.
	Freq, Voltage float64
}

// TotalW returns the summed average power.
func (p PowerBreakdown) TotalW() float64 {
	return p.CoreW + p.IMemW + p.DMemW + p.IntcW + p.LeakW
}

// Power converts run statistics into average power for a workload that
// must complete within `deadline` seconds: the operating frequency is
// the lowest that finishes the measured cycle count inside the active
// fraction of the deadline, the voltage follows the DVFS curve, and
// energies are averaged over `period` seconds (the interval at which the
// workload recurs; cores power-gate outside the active burst). Pass
// period <= 0 to average over the deadline itself.
//
// dutyCap bounds the fraction of the deadline available for processing
// (the node must reserve time for radio and sensing; the paper's
// delineation case reports a 7% duty cycle). Pass 1.0 for no cap.
func (e EnergyModel) Power(label string, st Stats, cores int, deadline, dutyCap, period float64) PowerBreakdown {
	if dutyCap <= 0 || dutyCap > 1 {
		dutyCap = 1
	}
	if period <= 0 {
		period = deadline
	}
	tActive := deadline * dutyCap
	f := float64(st.Cycles) / tActive
	v := e.VoltageFor(f)
	s := e.scale(v)
	burst := float64(st.Cycles) / f // == tActive
	coreE := float64(st.Instructions)*e.CoreOpJ*s +
		float64(st.IdleCoreCycles+st.IMemConflictStalls+st.DMemConflictStalls+st.BarrierWaitCycles)*e.CoreIdleJ*s
	imemE := float64(st.FetchAccesses) * e.IMemAccessJ * s
	dmemE := float64(st.DMemAccesses) * e.DMemAccessJ * s
	intcE := float64(st.InterconnectTxns) * e.InterconnectJ * s
	leakE := e.LeakPerCoreW * s * float64(cores) * burst
	return PowerBreakdown{
		Label:   label,
		CoreW:   coreE / period,
		IMemW:   imemE / period,
		DMemW:   dmemE / period,
		IntcW:   intcE / period,
		LeakW:   leakE / period,
		Freq:    f,
		Voltage: v,
	}
}

// Reduction returns the fractional total-power saving of mc versus sc
// (Figure 7 reports "up to 40%").
func Reduction(sc, mc PowerBreakdown) float64 {
	t := sc.TotalW()
	if t == 0 {
		return 0
	}
	return (t - mc.TotalW()) / t
}

// MemoryFootprintBytes estimates the program + data memory footprint of
// a program set: instructions at 2 bytes (16-bit ISA) plus the given data
// bytes. Used by the Text-1 experiment to check the 7.2 kB figure.
func MemoryFootprintBytes(progs []*Program, dataBytes int) int {
	seen := map[*Program]bool{}
	total := dataBytes
	for _, p := range progs {
		if p == nil || seen[p] {
			continue
		}
		seen[p] = true
		total += 2 * len(p.Instrs)
	}
	return total
}

// CyclesForDeadline returns the frequency (Hz) needed to execute the
// given cycle count within the deadline seconds at the duty-cycle cap.
func CyclesForDeadline(cycles int64, deadline, dutyCap float64) float64 {
	if dutyCap <= 0 || dutyCap > 1 {
		dutyCap = 1
	}
	return float64(cycles) / (deadline * dutyCap)
}

// DutyCycleAt returns the active fraction of the deadline when the given
// cycle count runs at frequency f — the figure behind the paper's "7% of
// the duty cycle" delineation result.
func DutyCycleAt(cycles int64, f, deadline float64) float64 {
	if f <= 0 || deadline <= 0 {
		return math.Inf(1)
	}
	return float64(cycles) / f / deadline
}

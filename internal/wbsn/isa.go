// Package wbsn simulates the synchronized ultra-low-power multi-core
// architecture of ref [18] (Braojos et al., DATE 2014) shown in Figure 3
// of the paper: multiple cores attached to multi-bank program and data
// memories through interconnects whose broadcasting mechanism "merges
// multiple identical read requests from different cores into a single
// memory access", with hardware barriers keeping cores in lock-step so
// single-instruction-multiple-data execution persists across
// data-dependent branches.
//
// The simulator executes abstract instruction streams cycle by cycle and
// accounts every architectural event (instruction fetches before and
// after broadcast merging, data-bank accesses and conflicts, barrier
// waits, divergence intervals). An energy model (energy.go) converts the
// event counts plus a DVFS operating point into the per-component power
// decomposition of Figure 7.
package wbsn

import "errors"

// Errors returned by the simulator.
var (
	ErrProgram = errors.New("wbsn: invalid program")
	ErrMachine = errors.New("wbsn: invalid machine configuration")
)

// OpKind is the class of one abstract instruction.
type OpKind uint8

// Instruction kinds.
const (
	// OpCompute is one ALU operation (one cycle, one fetch).
	OpCompute OpKind = iota
	// OpLoad reads one word from a data bank.
	OpLoad
	// OpStore writes one word to a data bank.
	OpStore
	// OpBarrier synchronises all cores in the group: a core arriving at a
	// barrier stalls until every core reaches it (the paper's
	// barrier-insertion technique for lock-step recovery).
	OpBarrier
	// OpBranch is a data-dependent conditional forward branch: each core
	// independently takes it with probability Prob, skipping Offset
	// instructions. Divergent outcomes break fetch merging until the next
	// barrier realigns the cores.
	OpBranch
)

// Instr is one abstract instruction.
type Instr struct {
	Kind OpKind
	// Bank selects the data bank for OpLoad/OpStore. A negative value
	// means "the core's private bank" (resolved at execution).
	Bank int
	// Prob is the per-core taken probability of an OpBranch.
	Prob float64
	// Offset is the number of instructions an OpBranch skips when taken.
	Offset int
}

// Program is an instruction sequence plus the program-memory bank it is
// stored in.
type Program struct {
	// Name labels the program in statistics.
	Name string
	// IMemBank is the program-memory bank holding the code.
	IMemBank int
	Instrs   []Instr
}

// Validate checks structural invariants: branch offsets must stay inside
// the program and probabilities within [0,1].
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return ErrProgram
	}
	for i, in := range p.Instrs {
		if in.Kind == OpBranch {
			if in.Prob < 0 || in.Prob > 1 {
				return ErrProgram
			}
			if in.Offset <= 0 || i+1+in.Offset > len(p.Instrs) {
				return ErrProgram
			}
		}
	}
	return nil
}

// Builder assembles programs from kernel-level descriptions.
type Builder struct {
	p Program
}

// NewBuilder starts a program in the given instruction bank.
func NewBuilder(name string, bank int) *Builder {
	return &Builder{p: Program{Name: name, IMemBank: bank}}
}

// Compute appends n ALU operations.
func (b *Builder) Compute(n int) *Builder {
	for i := 0; i < n; i++ {
		b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpCompute})
	}
	return b
}

// Load appends n loads from the core's private data bank.
func (b *Builder) Load(n int) *Builder {
	for i := 0; i < n; i++ {
		b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpLoad, Bank: -1})
	}
	return b
}

// LoadShared appends n loads from an explicit shared bank.
func (b *Builder) LoadShared(bank, n int) *Builder {
	for i := 0; i < n; i++ {
		b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpLoad, Bank: bank})
	}
	return b
}

// Store appends n stores to the core's private data bank.
func (b *Builder) Store(n int) *Builder {
	for i := 0; i < n; i++ {
		b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpStore, Bank: -1})
	}
	return b
}

// Branch appends a data-dependent forward branch over the instructions
// appended by body (executed with probability 1−prob).
func (b *Builder) Branch(prob float64, body func(*Builder)) *Builder {
	idx := len(b.p.Instrs)
	b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpBranch, Prob: prob})
	body(b)
	b.p.Instrs[idx].Offset = len(b.p.Instrs) - idx - 1
	return b
}

// Barrier appends a synchronisation barrier.
func (b *Builder) Barrier() *Builder {
	b.p.Instrs = append(b.p.Instrs, Instr{Kind: OpBarrier})
	return b
}

// Repeat appends `times` copies of the instructions produced by body.
func (b *Builder) Repeat(times int, body func(*Builder)) *Builder {
	for i := 0; i < times; i++ {
		body(b)
	}
	return b
}

// Build finalises and validates the program.
func (b *Builder) Build() (*Program, error) {
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

package wbsn

import (
	"math"
	"testing"
)

func mustBuild(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderAndValidate(t *testing.T) {
	p := mustBuild(t, NewBuilder("t", 0).Compute(3).Load(2).Store(1).Barrier())
	if len(p.Instrs) != 7 {
		t.Fatalf("program length %d", len(p.Instrs))
	}
	if _, err := NewBuilder("empty", 0).Build(); err != ErrProgram {
		t.Error("empty program should fail validation")
	}
	bad := &Program{Name: "bad", Instrs: []Instr{{Kind: OpBranch, Prob: 0.5, Offset: 5}}}
	if bad.Validate() != ErrProgram {
		t.Error("branch past end should fail")
	}
	bad2 := &Program{Name: "bad2", Instrs: []Instr{{Kind: OpBranch, Prob: 1.5, Offset: 0}, {Kind: OpCompute}}}
	if bad2.Validate() != ErrProgram {
		t.Error("probability > 1 should fail")
	}
}

func TestBuilderBranchOffsets(t *testing.T) {
	p := mustBuild(t, NewBuilder("br", 0).Branch(0.5, func(b *Builder) {
		b.Compute(4)
	}).Compute(1))
	if p.Instrs[0].Kind != OpBranch || p.Instrs[0].Offset != 4 {
		t.Errorf("branch offset = %d, want 4", p.Instrs[0].Offset)
	}
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{}, nil); err != ErrMachine {
		t.Error("zero cores should fail")
	}
	p := mustBuild(t, NewBuilder("t", 0).Compute(1))
	if _, err := NewMachine(MachineConfig{Cores: 2, IMemBanks: 1, DMemBanks: 1}, []*Program{p}); err != ErrMachine {
		t.Error("program count mismatch should fail")
	}
}

func TestSingleCoreCycleCount(t *testing.T) {
	// 10 compute + 5 load + 5 store on one core: one instruction per
	// cycle, no conflicts.
	p := mustBuild(t, NewBuilder("t", 0).Compute(10).Load(5).Store(5))
	m, err := NewMachine(MachineConfig{Cores: 1, IMemBanks: 1, DMemBanks: 1, Seed: 1}, []*Program{p})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1e6)
	if st.Cycles != 20 {
		t.Errorf("cycles = %d, want 20", st.Cycles)
	}
	if st.Instructions != 20 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	if st.DMemAccesses != 10 {
		t.Errorf("dmem accesses = %d, want 10", st.DMemAccesses)
	}
	if st.FetchAccesses != 20 || st.FetchRequests != 20 {
		t.Errorf("fetches = %d/%d, want 20/20", st.FetchAccesses, st.FetchRequests)
	}
}

func TestBroadcastMergesLockstepFetches(t *testing.T) {
	// Three cores, same program, lock-step, no branches: every fetch
	// merges — accesses equal one core's instruction count.
	p := mustBuild(t, NewBuilder("t", 0).Compute(50).Load(10))
	progs := []*Program{p, p, p}
	m, _ := NewMachine(MachineConfig{Cores: 3, IMemBanks: 1, DMemBanks: 3, Broadcast: true, Seed: 1}, progs)
	st := m.Run(1e6)
	if st.FetchRequests != 180 {
		t.Errorf("requests = %d, want 180", st.FetchRequests)
	}
	if st.FetchAccesses != 60 {
		t.Errorf("accesses = %d, want 60 (fully merged)", st.FetchAccesses)
	}
	if r := st.MergeRatio(); math.Abs(r-3) > 1e-9 {
		t.Errorf("merge ratio = %v, want 3", r)
	}
	// Lock-step with private banks: no stalls, cycles equal one core's
	// program length.
	if st.Cycles != 60 {
		t.Errorf("cycles = %d, want 60", st.Cycles)
	}
}

func TestNoBroadcastSerializesFetches(t *testing.T) {
	p := mustBuild(t, NewBuilder("t", 0).Compute(30))
	progs := []*Program{p, p, p}
	m, _ := NewMachine(MachineConfig{Cores: 3, IMemBanks: 1, DMemBanks: 3, Broadcast: false, Seed: 1}, progs)
	st := m.Run(1e6)
	if st.MergeRatio() != 1 {
		t.Errorf("merge ratio without broadcast = %v", st.MergeRatio())
	}
	// Serialization: roughly 3x the lock-step cycles.
	if st.Cycles < 85 {
		t.Errorf("cycles = %d, expected ~90 with serialization", st.Cycles)
	}
}

func TestDataBankConflicts(t *testing.T) {
	// Two cores sharing one data bank: loads serialise.
	p := mustBuild(t, NewBuilder("t", 0).Load(20))
	progs := []*Program{p, p}
	m, _ := NewMachine(MachineConfig{Cores: 2, IMemBanks: 1, DMemBanks: 1, Broadcast: true, Seed: 1}, progs)
	st := m.Run(1e6)
	if st.DMemConflictStalls == 0 {
		t.Error("expected data-bank conflicts with a shared bank")
	}
	if st.DMemAccesses != 40 {
		t.Errorf("dmem accesses = %d, want 40", st.DMemAccesses)
	}
	// With private banks the same workload has no conflicts.
	m2, _ := NewMachine(MachineConfig{Cores: 2, IMemBanks: 1, DMemBanks: 2, Broadcast: true, Seed: 1}, progs)
	st2 := m2.Run(1e6)
	if st2.DMemConflictStalls != 0 {
		t.Errorf("private banks still conflict: %d stalls", st2.DMemConflictStalls)
	}
	if st2.Cycles >= st.Cycles {
		t.Error("multi-bank data memory should be faster")
	}
}

func TestBranchDivergenceAndBarrierRecovery(t *testing.T) {
	// Cores diverge at a data-dependent branch; the barrier realigns
	// them and merging resumes — ref [18]'s core mechanism.
	b := NewBuilder("t", 0)
	b.Repeat(40, func(b *Builder) {
		b.Compute(5)
		b.Branch(0.5, func(b *Builder) {
			b.Compute(10)
		})
		b.Barrier()
	})
	p := mustBuild(t, b)
	progs := []*Program{p, p, p, p}
	m, _ := NewMachine(MachineConfig{Cores: 4, IMemBanks: 1, DMemBanks: 4, Broadcast: true, Seed: 7}, progs)
	st := m.Run(1e6)
	// Divergence must cost something (serialized fetches of distinct PCs
	// and barrier waits)...
	if st.BarrierWaitCycles == 0 {
		t.Error("expected barrier waits from divergent branch outcomes")
	}
	// ...but merging must still do substantial work (lock-step portions).
	if st.MergeRatio() < 1.5 {
		t.Errorf("merge ratio %v, expected > 1.5 with barrier recovery", st.MergeRatio())
	}
	// All cores execute the whole program (instructions bounded by
	// program size per core).
	maxPer := int64(len(p.Instrs))
	if st.Instructions > 4*maxPer || st.Instructions < 4*(maxPer-40*10) {
		t.Errorf("instructions = %d out of expected range", st.Instructions)
	}
}

func TestBarrierAsLastInstruction(t *testing.T) {
	p := mustBuild(t, NewBuilder("t", 0).Compute(3).Barrier())
	progs := []*Program{p, p}
	m, _ := NewMachine(MachineConfig{Cores: 2, IMemBanks: 1, DMemBanks: 2, Broadcast: true, Seed: 1}, progs)
	st := m.Run(1000)
	if st.Cycles >= 1000 {
		t.Error("machine deadlocked on trailing barrier")
	}
}

func TestIdleCoreWithNilProgram(t *testing.T) {
	p := mustBuild(t, NewBuilder("t", 0).Compute(10))
	m, _ := NewMachine(MachineConfig{Cores: 2, IMemBanks: 1, DMemBanks: 2, Broadcast: true, Seed: 1}, []*Program{p, nil})
	st := m.Run(1000)
	if st.IdleCoreCycles == 0 {
		t.Error("nil-program core should accumulate idle cycles")
	}
	if st.Cycles != 10 {
		t.Errorf("cycles = %d, want 10", st.Cycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Stats {
		b := NewBuilder("t", 0)
		b.Repeat(20, func(b *Builder) {
			b.Compute(3)
			b.Branch(0.4, func(b *Builder) { b.Compute(5) })
			b.Barrier()
		})
		p := mustBuild(t, b)
		m, _ := NewMachine(MachineConfig{Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: true, Seed: 42}, []*Program{p, p, p})
		return m.Run(1e6)
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("same seed gave different stats:\n%+v\n%+v", a, b)
	}
}

func TestVoltageForCurve(t *testing.T) {
	e := DefaultEnergy()
	if e.VoltageFor(0) != e.VMin {
		t.Error("zero frequency should give VMin")
	}
	if e.VoltageFor(e.FMax*2) != e.VMax {
		t.Error("beyond FMax should clamp to VMax")
	}
	mid := e.VoltageFor(e.FMax / 2)
	if mid <= e.VMin || mid >= e.VMax {
		t.Error("mid frequency voltage out of range")
	}
	// Monotone.
	prev := 0.0
	for f := 0.0; f <= e.FMax; f += e.FMax / 10 {
		v := e.VoltageFor(f)
		if v < prev {
			t.Fatal("voltage curve not monotone")
		}
		prev = v
	}
}

func TestPowerScalesWithVoltage(t *testing.T) {
	e := DefaultEnergy()
	st := Stats{Cycles: 10000, Instructions: 10000, FetchAccesses: 10000, DMemAccesses: 1000, InterconnectTxns: 11000}
	// Same work, half deadline: higher f, higher V, more than 2x power.
	slow := e.Power("slow", st, 1, 0.1, 1, 0.1)
	fast := e.Power("fast", st, 1, 0.02, 1, 0.02)
	if fast.Freq <= slow.Freq || fast.Voltage <= slow.Voltage {
		t.Fatal("tighter deadline should raise the operating point")
	}
	// Equal work: the dynamic (non-leakage) energy must be strictly
	// higher at the higher operating voltage (V² scaling).
	eDynSlow := (slow.TotalW() - slow.LeakW) * 0.1
	eDynFast := (fast.TotalW() - fast.LeakW) * 0.02
	if eDynFast <= eDynSlow {
		t.Errorf("V² scaling missing: fast dynamic energy %.3g <= slow %.3g", eDynFast, eDynSlow)
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := RunFigure7(DefaultEnergy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("expected 3 apps, got %d", len(res))
	}
	names := map[string]bool{}
	maxRed := 0.0
	for _, r := range res {
		names[r.App] = true
		// The Figure 7 shape: MC always below SC.
		if r.Reduction <= 0.15 {
			t.Errorf("%s: MC reduction %.3f, want clearly positive", r.App, r.Reduction)
		}
		if r.Reduction > 0.60 {
			t.Errorf("%s: MC reduction %.3f implausibly high", r.App, r.Reduction)
		}
		if r.Reduction > maxRed {
			maxRed = r.Reduction
		}
		// Broadcast merging shrinks the IMem share on MC.
		scIMemShare := r.SC.IMemW / r.SC.TotalW()
		mcIMemShare := r.MC.IMemW / r.MC.TotalW()
		if mcIMemShare >= scIMemShare {
			t.Errorf("%s: IMem share did not shrink (%.3f vs %.3f)", r.App, mcIMemShare, scIMemShare)
		}
		// The MC operating point sits at lower V and f.
		if r.MC.Voltage >= r.SC.Voltage || r.MC.Freq >= r.SC.Freq {
			t.Errorf("%s: MC operating point not scaled down", r.App)
		}
		if r.MCStats.MergeRatio() < 2 {
			t.Errorf("%s: merge ratio %.2f, expected near core count", r.App, r.MCStats.MergeRatio())
		}
	}
	for _, want := range []string{"3L-MF", "3L-MMD", "RP-CLASS"} {
		if !names[want] {
			t.Errorf("missing app %s", want)
		}
	}
	// "Up to 40%": the best app must clear 35%.
	if maxRed < 0.35 {
		t.Errorf("max reduction %.3f, want >= 0.35 (paper: up to 40%%)", maxRed)
	}
}

func TestAblationBroadcastOff(t *testing.T) {
	// Disabling the merging interconnect must cost cycles and fetch
	// accesses on the lock-step workload.
	app := App3LMF()
	p, err := app.mcProgram()
	if err != nil {
		t.Fatal(err)
	}
	progs := []*Program{p, p, p}
	on, _ := NewMachine(MachineConfig{Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: true, Seed: 1}, progs)
	off, _ := NewMachine(MachineConfig{Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: false, Seed: 1}, progs)
	stOn := on.Run(50e6)
	stOff := off.Run(50e6)
	if stOff.Cycles <= stOn.Cycles {
		t.Errorf("broadcast off should be slower: %d vs %d", stOff.Cycles, stOn.Cycles)
	}
	if stOff.FetchAccesses <= stOn.FetchAccesses {
		t.Errorf("broadcast off should access IMem more: %d vs %d", stOff.FetchAccesses, stOn.FetchAccesses)
	}
}

func TestMemoryFootprint(t *testing.T) {
	p1 := mustBuild(t, NewBuilder("a", 0).Compute(100))
	p2 := mustBuild(t, NewBuilder("b", 0).Compute(50))
	// Duplicate pointers counted once; 16-bit instructions.
	total := MemoryFootprintBytes([]*Program{p1, p1, p2, nil}, 1000)
	if total != 1000+2*100+2*50 {
		t.Errorf("footprint = %d", total)
	}
}

func TestDutyCycleAt(t *testing.T) {
	if d := DutyCycleAt(70_000, 1e6, 1.0); math.Abs(d-0.07) > 1e-12 {
		t.Errorf("duty cycle = %v, want 0.07", d)
	}
	if !math.IsInf(DutyCycleAt(100, 0, 1), 1) {
		t.Error("zero frequency should give +Inf duty")
	}
}

func TestCyclesForDeadline(t *testing.T) {
	if f := CyclesForDeadline(1000, 1, 0.5); f != 2000 {
		t.Errorf("f = %v, want 2000", f)
	}
	if f := CyclesForDeadline(1000, 1, 0); f != 1000 {
		t.Errorf("f with invalid duty = %v, want 1000", f)
	}
}

func TestReductionEdge(t *testing.T) {
	if Reduction(PowerBreakdown{}, PowerBreakdown{}) != 0 {
		t.Error("zero baseline should return 0")
	}
}

func TestLoadImbalanceIsNotCritical(t *testing.T) {
	// Ref [18] via the paper: "fine-tuned load balancing is not a
	// necessary precondition for energy efficiency in cardiac monitoring
	// systems". Give one core 25% more work than its peers: the
	// multi-core configuration must still clearly beat the single-core
	// one.
	em := DefaultEnergy()
	mkLead := func(compute, bank int) *Program {
		b := NewBuilder("mf-lead", bank)
		b.Repeat(256, func(b *Builder) {
			b.Load(8)
			b.Compute(compute)
			b.Store(6)
			b.Barrier()
		})
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Per the paper, the mapping methodology assigns programs to
	// distinct banks "to avoid program memory conflicts". The heavy lead
	// does 30% more work per sample, so the light cores idle at every
	// barrier.
	heavy := mkLead(130, 0)
	light := mkLead(100, 1)
	mc, err := NewMachine(MachineConfig{
		Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: true, Seed: 1,
	}, []*Program{heavy, light, light})
	if err != nil {
		t.Fatal(err)
	}
	mcStats := mc.Run(50e6)
	// Single-core equivalent: all three leads serially.
	sb := NewBuilder("mf-sc", 0)
	for _, compute := range []int{130, 100, 100} {
		sb.Repeat(256, func(b *Builder) {
			b.Load(8)
			b.Compute(compute)
			b.Store(6)
		})
	}
	scProg, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewMachine(MachineConfig{
		Cores: 1, IMemBanks: 2, DMemBanks: 1, Broadcast: false, Seed: 1,
	}, []*Program{scProg})
	if err != nil {
		t.Fatal(err)
	}
	scStats := sc.Run(50e6)
	mcPow := em.Power("mc-imbalanced", mcStats, 3, 1.0, 0.08, 1.0)
	scPow := em.Power("sc", scStats, 1, 1.0, 0.08, 1.0)
	red := Reduction(scPow, mcPow)
	if red < 0.25 {
		t.Errorf("imbalanced multi-core reduction %.3f, want >= 0.25 (the paper's no-fine-balancing claim)", red)
	}
	// The imbalance shows up as barrier waits on the light cores...
	if mcStats.BarrierWaitCycles == 0 {
		t.Error("expected barrier waits from the imbalanced mapping")
	}
	// ...but fetch merging still happens while all cores are active.
	if mcStats.MergeRatio() < 1.3 {
		t.Errorf("merge ratio %.2f too low even for imbalanced lock-step", mcStats.MergeRatio())
	}
}

func TestPerCoreStats(t *testing.T) {
	p := mustBuild(t, NewBuilder("t", 0).Compute(20).Barrier().Compute(10))
	short := mustBuild(t, NewBuilder("s", 1).Compute(5).Barrier().Compute(10))
	m, err := NewMachine(MachineConfig{Cores: 2, IMemBanks: 2, DMemBanks: 2, Broadcast: true, Seed: 1},
		[]*Program{p, short})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1e6)
	cs := m.CoreStats()
	if len(cs) != 2 {
		t.Fatalf("got %d core stats", len(cs))
	}
	if cs[0].Instructions != 31 || cs[1].Instructions != 16 {
		t.Errorf("per-core instructions %d/%d, want 31/16", cs[0].Instructions, cs[1].Instructions)
	}
	if cs[0].Instructions+cs[1].Instructions != st.Instructions {
		t.Error("per-core instructions do not sum to the total")
	}
	// The short program's core waits at the barrier for the long one.
	if cs[1].BarrierWaitCycles < 10 {
		t.Errorf("short core waited %d cycles, expected ~15", cs[1].BarrierWaitCycles)
	}
	if cs[0].BarrierWaitCycles > 2 {
		t.Errorf("long core should barely wait, got %d", cs[0].BarrierWaitCycles)
	}
	if cs[0].FinishCycle == 0 || cs[1].FinishCycle == 0 {
		t.Error("finish cycles not recorded")
	}
	if cs[1].FinishCycle < cs[0].FinishCycle {
		t.Error("cores released from the final barrier together; short core cannot finish first here")
	}
}

func TestCompoundPipelineMapping(t *testing.T) {
	res, err := RunCompound(DefaultEnergy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The full pipeline on 8 cores must beat the serial single core.
	if res.Reduction < 0.2 {
		t.Errorf("compound mapping reduction %.3f, want >= 0.2", res.Reduction)
	}
	// Lock-step merging within the replicated stages.
	if res.MCStats.MergeRatio() < 1.8 {
		t.Errorf("compound merge ratio %.2f", res.MCStats.MergeRatio())
	}
	// Producer-consumer hand-offs hit shared banks: some conflicts are
	// expected but they must not dominate.
	if res.MCStats.DMemConflictStalls == 0 {
		t.Error("expected some producer-consumer bank contention")
	}
	if res.MCStats.DMemConflictStalls > res.MCStats.Cycles {
		t.Error("bank contention dominates the compound mapping")
	}
	// The imbalanced stages (CS cores are light) idle at barriers without
	// destroying the saving — the no-fine-balancing claim at system scale.
	if res.MCStats.BarrierWaitCycles == 0 {
		t.Error("expected barrier waits from stage imbalance")
	}
}

func TestCoreScalingCurve(t *testing.T) {
	res, err := RunCoreScaling(DefaultEnergy(), 1, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d points", len(res))
	}
	// Power falls monotonically with core count in this regime (the
	// leakage floor is far below the dynamic savings at these loads).
	for i := 1; i < len(res); i++ {
		if res[i].MC.TotalW() >= res[i-1].MC.TotalW() {
			t.Errorf("power did not fall from %d to %d cores: %.3g vs %.3g",
				1<<(i-1), 1<<i, res[i-1].MC.TotalW(), res[i].MC.TotalW())
		}
		if res[i].MC.Voltage >= res[i-1].MC.Voltage {
			t.Error("voltage should fall with more cores")
		}
	}
	// But with diminishing returns: the 4→8 step saves a smaller fraction
	// than the 1→2 step.
	step12 := 1 - res[1].MC.TotalW()/res[0].MC.TotalW()
	step48 := 1 - res[3].MC.TotalW()/res[2].MC.TotalW()
	if step48 >= step12 {
		t.Errorf("expected diminishing returns: 1→2 saves %.3f, 4→8 saves %.3f", step12, step48)
	}
	// Invalid core counts rejected.
	if _, err := RunCoreScaling(DefaultEnergy(), 1, []int{3}); err != ErrMachine {
		t.Error("core count not dividing 8 should fail")
	}
}

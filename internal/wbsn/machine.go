package wbsn

import "math/rand"

// MachineConfig describes the simulated platform instance.
type MachineConfig struct {
	// Cores is the number of processing elements.
	Cores int
	// IMemBanks and DMemBanks are the bank counts of the two memory
	// subsystems (Figure 3 shows independent multi-bank program and data
	// memories).
	IMemBanks, DMemBanks int
	// Broadcast enables the merging interconnect: identical concurrent
	// fetches collapse into one access. Disabling it is the ablation of
	// ref [18]'s key mechanism.
	Broadcast bool
	// Seed drives the per-core branch outcomes.
	Seed int64
}

// Validate checks the configuration.
func (c MachineConfig) Validate() error {
	if c.Cores < 1 || c.IMemBanks < 1 || c.DMemBanks < 1 {
		return ErrMachine
	}
	return nil
}

// Stats aggregates the architectural events of one run.
type Stats struct {
	// Cycles is the wall-clock cycle count (all cores share the clock).
	Cycles int64
	// Instructions is the total executed instruction count over all
	// cores.
	Instructions int64
	// FetchRequests counts instruction fetches before merging;
	// FetchAccesses counts physical program-memory accesses after the
	// broadcast interconnect merged identical requests.
	FetchRequests, FetchAccesses int64
	// IMemConflictStalls counts core-cycles lost to program-memory bank
	// conflicts (distinct addresses, same bank, same cycle).
	IMemConflictStalls int64
	// DMemAccesses counts data-bank accesses; DMemConflictStalls counts
	// core-cycles serialised on data-bank conflicts.
	DMemAccesses, DMemConflictStalls int64
	// BarrierWaitCycles counts core-cycles spent blocked at barriers.
	BarrierWaitCycles int64
	// InterconnectTxns counts transactions on the merging interconnect
	// (one per physical access).
	InterconnectTxns int64
	// ActiveCoreCycles counts core-cycles doing useful work;
	// IdleCoreCycles counts cycles after a core finished its program.
	ActiveCoreCycles, IdleCoreCycles int64
}

// MergeRatio returns FetchRequests/FetchAccesses — the factor by which
// broadcasting reduced program-memory traffic (1.0 = no merging).
func (s Stats) MergeRatio() float64 {
	if s.FetchAccesses == 0 {
		return 1
	}
	return float64(s.FetchRequests) / float64(s.FetchAccesses)
}

// CoreStats is one core's share of the run statistics.
type CoreStats struct {
	// Instructions executed by this core.
	Instructions int64
	// BarrierWaitCycles spent blocked at barriers.
	BarrierWaitCycles int64
	// StallCycles lost to fetch or data-bank arbitration.
	StallCycles int64
	// FinishCycle is the cycle at which the core retired (0 if it never
	// ran or the run was truncated).
	FinishCycle int64
}

// coreState is one core's execution context.
type coreState struct {
	prog      *Program
	pc        int
	dataBank  int
	done      bool
	atBarrier bool
	stalled   bool // lost this cycle's bank arbitration
	rng       *rand.Rand
}

// Machine simulates one platform configuration.
type Machine struct {
	cfg       MachineConfig
	cores     []*coreState
	coreStats []CoreStats
}

// CoreStats returns the per-core statistics of the last Run.
func (m *Machine) CoreStats() []CoreStats {
	out := make([]CoreStats, len(m.coreStats))
	copy(out, m.coreStats)
	return out
}

// NewMachine builds a machine and assigns each core its program. A nil
// program leaves the core idle. Core i's private data bank is
// i % DMemBanks.
func NewMachine(cfg MachineConfig, progs []*Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) != cfg.Cores {
		return nil, ErrMachine
	}
	m := &Machine{cfg: cfg, coreStats: make([]CoreStats, cfg.Cores)}
	for i := 0; i < cfg.Cores; i++ {
		cs := &coreState{
			prog:     progs[i],
			dataBank: i % cfg.DMemBanks,
			rng:      rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		if cs.prog == nil {
			cs.done = true
		}
		m.cores = append(m.cores, cs)
	}
	return m, nil
}

// Run simulates until every core finishes or maxCycles elapses, and
// returns the event statistics.
func (m *Machine) Run(maxCycles int64) Stats {
	var st Stats
	type fetchKey struct {
		prog *Program
		pc   int
	}
	for st.Cycles < maxCycles {
		allDone := true
		for _, c := range m.cores {
			if !c.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		st.Cycles++
		// Phase 1: collect fetch requests from runnable cores.
		requests := make(map[fetchKey][]*coreState)
		barrierArrivals := 0
		barrierWaiters := 0
		for ci, c := range m.cores {
			if c.done {
				st.IdleCoreCycles++
				continue
			}
			if c.atBarrier {
				barrierWaiters++
				m.coreStats[ci].BarrierWaitCycles++
				continue
			}
			key := fetchKey{c.prog, c.pc}
			requests[key] = append(requests[key], c)
		}
		// Phase 2: arbitrate program-memory banks in deterministic
		// (bank, pc) order. Each distinct (program, pc) needs one access
		// to the program's bank; a bank serves one access per cycle. With
		// broadcast, one access feeds every requester; without it, even
		// identical requests serialise.
		keys := make([]fetchKey, 0, len(requests))
		for key := range requests {
			keys = append(keys, key)
		}
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && fetchLess(keys[j], keys[j-1]); j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		// Rotate the arbitration starting point every cycle so divergent
		// groups share the bank fairly instead of starving the core that
		// ran ahead.
		if len(keys) > 1 {
			rot := int(st.Cycles) % len(keys)
			rotated := make([]fetchKey, 0, len(keys))
			rotated = append(rotated, keys[rot:]...)
			rotated = append(rotated, keys[:rot]...)
			keys = rotated
		}
		bankClaimed := make(map[int]bool)
		granted := make(map[*coreState]bool)
		for _, key := range keys {
			cores := requests[key]
			bank := key.prog.IMemBank % m.cfg.IMemBanks
			if bankClaimed[bank] {
				// Bank busy this cycle: all these cores stall and will
				// re-request next cycle.
				st.IMemConflictStalls += int64(len(cores))
				continue
			}
			bankClaimed[bank] = true
			st.FetchAccesses++
			st.InterconnectTxns++
			if m.cfg.Broadcast {
				// One physical access feeds every lock-step requester.
				st.FetchRequests += int64(len(cores))
				for _, c := range cores {
					granted[c] = true
				}
			} else {
				// Serialise: one core served per cycle even at the same
				// address.
				st.FetchRequests++
				granted[cores[0]] = true
				st.IMemConflictStalls += int64(len(cores) - 1)
			}
		}
		// Phase 3: execute granted cores, arbitrating data banks.
		dBankClaimed := make(map[int]bool)
		for ci, c := range m.cores {
			if c.done || c.atBarrier {
				continue
			}
			if !granted[c] {
				m.coreStats[ci].StallCycles++
				continue // stalled on fetch this cycle
			}
			in := c.prog.Instrs[c.pc]
			switch in.Kind {
			case OpLoad, OpStore:
				bank := in.Bank
				if bank < 0 {
					bank = c.dataBank
				}
				bank %= m.cfg.DMemBanks
				if dBankClaimed[bank] {
					st.DMemConflictStalls++
					m.coreStats[ci].StallCycles++
					continue // retry next cycle (fetch repeats)
				}
				dBankClaimed[bank] = true
				st.DMemAccesses++
				st.InterconnectTxns++
				c.pc++
			case OpCompute:
				c.pc++
			case OpBranch:
				if c.rng.Float64() < in.Prob {
					c.pc += 1 + in.Offset
				} else {
					c.pc++
				}
			case OpBarrier:
				c.atBarrier = true
				barrierArrivals++
				c.pc++
			}
			st.Instructions++
			st.ActiveCoreCycles++
			m.coreStats[ci].Instructions++
		}
		// Phase 4: barrier release — when every unfinished core is at a
		// barrier, release them all (single barrier group).
		waiting, unfinished := 0, 0
		for _, c := range m.cores {
			if c.done {
				continue
			}
			unfinished++
			if c.atBarrier {
				waiting++
			}
		}
		if unfinished > 0 && waiting == unfinished {
			for _, c := range m.cores {
				c.atBarrier = false
			}
		} else {
			st.BarrierWaitCycles += int64(waiting)
		}
		// Phase 5: retire finished cores.
		for ci, c := range m.cores {
			if !c.done && c.pc >= len(c.prog.Instrs) && !c.atBarrier {
				c.done = true
				m.coreStats[ci].FinishCycle = st.Cycles
			}
		}
	}
	return st
}

// fetchLess orders fetch keys deterministically: by program bank, then
// program name, then PC.
func fetchLess(a, b struct {
	prog *Program
	pc   int
}) bool {
	if a.prog.IMemBank != b.prog.IMemBank {
		return a.prog.IMemBank < b.prog.IMemBank
	}
	if a.prog.Name != b.prog.Name {
		return a.prog.Name < b.prog.Name
	}
	return a.pc < b.pc
}

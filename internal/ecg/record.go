// Package ecg synthesises multi-lead electrocardiogram records with exact
// ground-truth annotations, standing in for the clinical databases
// (MIT-BIH style records) that the paper's evaluation uses but that are
// not available offline.
//
// The generator layers three models:
//
//   - a beat-morphology model: each characteristic wave (P, Q, R, S, T)
//     is a Gaussian hump with its own amplitude, width and offset from
//     the R peak, and its own spatial dipole direction so that multiple
//     leads see correlated but distinct projections (the property joint
//     multi-lead compressed sensing exploits, ref [6]);
//
//   - a rhythm model: normal sinus rhythm with physiological heart-rate
//     variability (Mayer-wave and respiratory-sinus-arrhythmia
//     components), atrial fibrillation with irregular RR intervals,
//     missing P waves and fibrillatory f-waves, and ectopic beats (PVC,
//     APB) injected at a configurable rate;
//
//   - noise models: baseline wander, electromyographic noise, powerline
//     interference and electrode-motion artifacts (Section II-III of the
//     paper discusses exactly these disturbance classes).
//
// Every stochastic choice flows from one *rand.Rand, so records are
// reproducible from their seed.
package ecg

import (
	"errors"
	"fmt"
)

// BeatLabel classifies a heartbeat, following the AAMI-style grouping
// used by the embedded classifier of ref [14].
type BeatLabel uint8

// Beat classes.
const (
	// LabelNormal is a normal sinus beat.
	LabelNormal BeatLabel = iota
	// LabelPVC is a premature ventricular contraction: wide QRS, no
	// preceding P wave, typically followed by a compensatory pause.
	LabelPVC
	// LabelAPB is an atrial premature beat: early, with a P wave and a
	// narrow QRS.
	LabelAPB
	// LabelAF marks a beat occurring during atrial fibrillation:
	// irregular RR, no P wave.
	LabelAF
)

// String returns the conventional single-letter code for the label.
func (l BeatLabel) String() string {
	switch l {
	case LabelNormal:
		return "N"
	case LabelPVC:
		return "V"
	case LabelAPB:
		return "A"
	case LabelAF:
		return "f"
	default:
		return "?"
	}
}

// Fiducials holds the ground-truth sample indices of the characteristic
// points of one beat (Figure 2 of the paper). A value of -1 means the
// wave is absent (e.g. no P wave during AF or in a PVC).
type Fiducials struct {
	POn, PPeak, POff     int
	QRSOn, RPeak, QRSOff int
	TOn, TPeak, TOff     int
}

// Beat is one annotated heartbeat.
type Beat struct {
	Label BeatLabel
	// Fid holds the ground-truth fiducial sample indices.
	Fid Fiducials
}

// Record is a synthesised multi-lead ECG with its ground truth.
type Record struct {
	// Name identifies the record (seed and generation parameters).
	Name string
	// Fs is the sampling frequency in Hz.
	Fs float64
	// Leads holds one equal-length sample slice per lead, in millivolts.
	Leads [][]float64
	// Clean holds the noise-free version of each lead (for SNR scoring).
	Clean [][]float64
	// Beats are the annotated beats in temporal order.
	Beats []Beat
	// AFSegments lists [start,end) sample ranges that are in atrial
	// fibrillation; empty for pure NSR records.
	AFSegments [][2]int
}

// ErrNoLeads is returned by record utilities when the record is empty.
var ErrNoLeads = errors.New("ecg: record has no leads")

// Len returns the number of samples per lead (0 if no leads).
func (r *Record) Len() int {
	if len(r.Leads) == 0 {
		return 0
	}
	return len(r.Leads[0])
}

// Duration returns the record duration in seconds.
func (r *Record) Duration() float64 {
	if r.Fs == 0 {
		return 0
	}
	return float64(r.Len()) / r.Fs
}

// RPeaks returns the ground-truth R-peak sample indices.
func (r *Record) RPeaks() []int {
	out := make([]int, len(r.Beats))
	for i, b := range r.Beats {
		out[i] = b.Fid.RPeak
	}
	return out
}

// RRIntervals returns successive RR intervals in seconds (length
// len(Beats)-1).
func (r *Record) RRIntervals() []float64 {
	if len(r.Beats) < 2 {
		return nil
	}
	out := make([]float64, len(r.Beats)-1)
	for i := 1; i < len(r.Beats); i++ {
		out[i-1] = float64(r.Beats[i].Fid.RPeak-r.Beats[i-1].Fid.RPeak) / r.Fs
	}
	return out
}

// InAF reports whether sample index i falls inside an annotated AF
// segment.
func (r *Record) InAF(i int) bool {
	for _, seg := range r.AFSegments {
		if i >= seg[0] && i < seg[1] {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: equal lead lengths, ordered
// beats, fiducials within range and internally ordered.
func (r *Record) Validate() error {
	if len(r.Leads) == 0 {
		return ErrNoLeads
	}
	n := len(r.Leads[0])
	for i, l := range r.Leads {
		if len(l) != n {
			return fmt.Errorf("ecg: lead %d length %d != %d", i, len(l), n)
		}
	}
	if len(r.Clean) != 0 && len(r.Clean) != len(r.Leads) {
		return fmt.Errorf("ecg: clean lead count %d != %d", len(r.Clean), len(r.Leads))
	}
	prev := -1
	for bi, b := range r.Beats {
		f := b.Fid
		if f.RPeak <= prev {
			return fmt.Errorf("ecg: beat %d R peak %d not after previous %d", bi, f.RPeak, prev)
		}
		prev = f.RPeak
		if f.RPeak < 0 || f.RPeak >= n {
			return fmt.Errorf("ecg: beat %d R peak %d out of range", bi, f.RPeak)
		}
		checkWave := func(on, peak, off int, name string) error {
			if on == -1 && peak == -1 && off == -1 {
				return nil
			}
			if !(on <= peak && peak <= off) {
				return fmt.Errorf("ecg: beat %d %s fiducials out of order (%d,%d,%d)", bi, name, on, peak, off)
			}
			if on < 0 || off >= n {
				return fmt.Errorf("ecg: beat %d %s fiducials out of range", bi, name)
			}
			return nil
		}
		if err := checkWave(f.POn, f.PPeak, f.POff, "P"); err != nil {
			return err
		}
		if err := checkWave(f.QRSOn, f.RPeak, f.QRSOff, "QRS"); err != nil {
			return err
		}
		if err := checkWave(f.TOn, f.TPeak, f.TOff, "T"); err != nil {
			return err
		}
	}
	for _, seg := range r.AFSegments {
		if seg[0] < 0 || seg[1] > n || seg[0] >= seg[1] {
			return fmt.Errorf("ecg: bad AF segment %v", seg)
		}
	}
	return nil
}

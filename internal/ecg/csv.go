package ecg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV streams the record's leads as CSV: a header row, then one row
// per sample with the time in seconds followed by each lead's value in
// millivolts.
func (r *Record) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := make([]string, 0, len(r.Leads)+1)
	header = append(header, "t")
	for i := range r.Leads {
		header = append(header, fmt.Sprintf("lead%d", i+1))
	}
	if _, err := bw.WriteString(strings.Join(header, ",") + "\n"); err != nil {
		return err
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.Leads)+1)
		row = append(row, strconv.FormatFloat(float64(i)/r.Fs, 'f', 6, 64))
		for _, l := range r.Leads {
			row = append(row, strconv.FormatFloat(l[i], 'f', 6, 64))
		}
		if _, err := bw.WriteString(strings.Join(row, ",") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteAnnotations streams the ground-truth beat annotations as CSV, one
// row per beat: label and the nine fiducial sample indices (-1 = wave
// absent).
func (r *Record) WriteAnnotations(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("label,Pon,Ppeak,Poff,QRSon,Rpeak,QRSoff,Ton,Tpeak,Toff\n"); err != nil {
		return err
	}
	for _, b := range r.Beats {
		f := b.Fid
		if _, err := fmt.Fprintf(bw, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			b.Label, f.POn, f.PPeak, f.POff, f.QRSOn, f.RPeak, f.QRSOff, f.TOn, f.TPeak, f.TOff); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package ecg

import (
	"math"
	"math/rand"
)

// RhythmKind selects the rhythm generator.
type RhythmKind uint8

// Rhythm kinds.
const (
	// RhythmNSR is normal sinus rhythm with physiological HRV.
	RhythmNSR RhythmKind = iota
	// RhythmAF is atrial fibrillation: irregular RR, no P waves,
	// fibrillatory baseline.
	RhythmAF
)

// RhythmConfig parameterises RR-interval generation.
type RhythmConfig struct {
	Kind RhythmKind
	// MeanHR is the mean heart rate in beats per minute (default 72 for
	// NSR, 95 for AF).
	MeanHR float64
	// HRVMayer is the fractional RR modulation by the ~0.1 Hz Mayer wave
	// (default 0.03).
	HRVMayer float64
	// HRVRSA is the fractional RR modulation by respiratory sinus
	// arrhythmia at ~0.25 Hz (default 0.04).
	HRVRSA float64
	// AFIrregularity is the coefficient of variation of AF RR intervals
	// (default 0.22, matching the high irregularity of AF rhythms).
	AFIrregularity float64
	// PVCRate and APBRate are per-beat probabilities of ectopy in NSR
	// (default 0).
	PVCRate, APBRate float64
}

func (c RhythmConfig) withDefaults() RhythmConfig {
	out := c
	if out.MeanHR <= 0 {
		if out.Kind == RhythmAF {
			out.MeanHR = 95
		} else {
			out.MeanHR = 72
		}
	}
	if out.HRVMayer == 0 {
		out.HRVMayer = 0.03
	}
	if out.HRVRSA == 0 {
		out.HRVRSA = 0.04
	}
	if out.AFIrregularity <= 0 {
		out.AFIrregularity = 0.22
	}
	return out
}

// beatPlan is one planned beat: time of the R peak (seconds) and its
// label/morphology.
type beatPlan struct {
	t     float64
	label BeatLabel
	morph Morphology
	// ampJitter scales the beat's amplitudes (inter-beat variability).
	ampJitter float64
	// qtScale stretches the T-wave timing with the preceding RR.
	qtScale float64
}

// planRhythm produces the beat schedule for `dur` seconds of signal.
// baseMorph overrides the normal-beat morphology when non-nil.
func planRhythm(cfg RhythmConfig, baseMorph *Morphology, dur float64, rng *rand.Rand) []beatPlan {
	c := cfg.withDefaults()
	normal := NormalMorphology()
	if baseMorph != nil {
		normal = *baseMorph
	}
	afBase := AFMorphology()
	if baseMorph != nil {
		afBase = normal
		afBase.HasP = false
	}
	meanRR := 60 / c.MeanHR
	var plans []beatPlan
	t := 0.35 + 0.25*rng.Float64() // first beat away from the record edge
	phaseMayer := rng.Float64() * 2 * math.Pi
	phaseRSA := rng.Float64() * 2 * math.Pi
	prevRR := meanRR
	for t < dur-0.55 {
		var rr float64
		label := LabelNormal
		morph := normal
		switch c.Kind {
		case RhythmAF:
			label = LabelAF
			morph = afBase
			// AF RR: lognormal-ish irregularity, bounded to plausible range.
			rr = meanRR * math.Exp(c.AFIrregularity*rng.NormFloat64())
			if rr < 0.30 {
				rr = 0.30
			}
			if rr > 1.8 {
				rr = 1.8
			}
		default:
			// NSR with Mayer + RSA modulation and a little white jitter.
			mod := 1 +
				c.HRVMayer*math.Sin(2*math.Pi*0.1*t+phaseMayer) +
				c.HRVRSA*math.Sin(2*math.Pi*0.25*t+phaseRSA) +
				0.01*rng.NormFloat64()
			rr = meanRR * mod
			// Ectopy.
			u := rng.Float64()
			switch {
			case u < c.PVCRate:
				label = LabelPVC
				morph = PVCMorphology()
				rr = meanRR * (0.55 + 0.15*rng.Float64()) // premature vs sinus rate
			case u < c.PVCRate+c.APBRate:
				label = LabelAPB
				morph = APBMorphology()
				rr = meanRR * (0.65 + 0.15*rng.Float64())
			}
		}
		t += rr
		if t >= dur-0.55 {
			break
		}
		// Bazett-style QT adaptation, clamped to the physiological range
		// so the T wave never collides with its own QRS.
		qt := math.Sqrt(rr / meanRR)
		if qt < 0.75 {
			qt = 0.75
		}
		if qt > 1.25 {
			qt = 1.25
		}
		plans = append(plans, beatPlan{
			t:         t,
			label:     label,
			morph:     morph,
			ampJitter: 1 + 0.05*rng.NormFloat64(),
			qtScale:   qt,
		})
		if label == LabelPVC {
			// Compensatory pause after a PVC.
			t += prevRR * (0.45 + 0.15*rng.Float64())
		}
		prevRR = rr
	}
	return plans
}

// fWaves renders the fibrillatory baseline of AF into the leads: a
// frequency- and amplitude-modulated oscillation around 6 Hz, projected
// onto the atrial (P-wave) dipole direction. Amplitude amp is in mV
// (typical 0.03-0.08).
func fWaves(leads [][]float64, leadVecs []Vec3, lo, hi int, fs, amp float64, rng *rand.Rand) {
	if len(leads) == 0 || lo >= hi {
		return
	}
	phase := rng.Float64() * 2 * math.Pi
	for i := lo; i < hi; i++ {
		t := float64(i) / fs
		f := 6 + 1.2*math.Sin(2*math.Pi*0.31*t)           // wandering f-wave rate
		a := amp * (1 + 0.3*math.Sin(2*math.Pi*0.17*t+1)) // slow AM
		phase += 2 * math.Pi * f / fs
		v := a * math.Sin(phase)
		for li := range leads {
			leads[li][i] += v * leadVecs[li].Dot(dirP)
		}
	}
}

package ecg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a record written by WriteCSV: a header line ("t,lead1,
// lead2,...") followed by one row per sample. The sampling rate is
// recovered from the time column. Annotations are not part of the signal
// file; attach them with ReadAnnotations.
func ReadCSV(r io.Reader) (*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("ecg: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) < 2 || header[0] != "t" {
		return nil, fmt.Errorf("ecg: bad CSV header %q", sc.Text())
	}
	numLeads := len(header) - 1
	rec := &Record{Name: "csv", Leads: make([][]float64, numLeads)}
	var t0, tLast float64
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != numLeads+1 {
			return nil, fmt.Errorf("ecg: row %d has %d fields, want %d", row, len(fields), numLeads+1)
		}
		tv, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("ecg: row %d time: %v", row, err)
		}
		if row == 0 {
			t0 = tv
		}
		tLast = tv
		for li := 0; li < numLeads; li++ {
			v, err := strconv.ParseFloat(fields[li+1], 64)
			if err != nil {
				return nil, fmt.Errorf("ecg: row %d lead %d: %v", row, li, err)
			}
			rec.Leads[li] = append(rec.Leads[li], v)
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if row < 2 {
		return nil, fmt.Errorf("ecg: need at least 2 samples, got %d", row)
	}
	span := tLast - t0
	if span <= 0 {
		return nil, fmt.Errorf("ecg: non-increasing time column")
	}
	// Recover the rate from the full span (robust to the per-row
	// decimal truncation of the time column).
	rec.Fs = float64(row-1) / span
	return rec, nil
}

// ReadAnnotations parses a beat-annotation file written by
// WriteAnnotations and attaches the beats to the record.
func (r *Record) ReadAnnotations(src io.Reader) error {
	sc := bufio.NewScanner(src)
	if !sc.Scan() {
		return fmt.Errorf("ecg: empty annotation file")
	}
	if got := strings.TrimSpace(sc.Text()); got != "label,Pon,Ppeak,Poff,QRSon,Rpeak,QRSoff,Ton,Tpeak,Toff" {
		return fmt.Errorf("ecg: bad annotation header %q", got)
	}
	labelFor := map[string]BeatLabel{"N": LabelNormal, "V": LabelPVC, "A": LabelAPB, "f": LabelAF}
	r.Beats = nil
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 10 {
			return fmt.Errorf("ecg: annotation row %d has %d fields", row, len(fields))
		}
		label, ok := labelFor[fields[0]]
		if !ok {
			return fmt.Errorf("ecg: unknown beat label %q", fields[0])
		}
		vals := make([]int, 9)
		for i := 0; i < 9; i++ {
			v, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return fmt.Errorf("ecg: annotation row %d field %d: %v", row, i+1, err)
			}
			vals[i] = v
		}
		r.Beats = append(r.Beats, Beat{
			Label: label,
			Fid: Fiducials{
				POn: vals[0], PPeak: vals[1], POff: vals[2],
				QRSOn: vals[3], RPeak: vals[4], QRSOff: vals[5],
				TOn: vals[6], TPeak: vals[7], TOff: vals[8],
			},
		})
		row++
	}
	return sc.Err()
}

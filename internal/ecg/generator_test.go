package ecg

import (
	"math"
	"testing"

	"wbsn/internal/dsp"
)

func TestGenerateDefaults(t *testing.T) {
	r := Generate(Config{Seed: 1})
	if r.Fs != 256 {
		t.Errorf("default Fs = %v", r.Fs)
	}
	if r.Len() != 256*30 {
		t.Errorf("default length = %d", r.Len())
	}
	if len(r.Leads) != 3 {
		t.Errorf("default lead count = %d", len(r.Leads))
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(r.Beats) < 25 || len(r.Beats) > 45 {
		t.Errorf("30 s at 72 bpm should give ~36 beats, got %d", len(r.Beats))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, Noise: AmbulatoryNoise()})
	b := Generate(Config{Seed: 42, Noise: AmbulatoryNoise()})
	if a.Len() != b.Len() || len(a.Beats) != len(b.Beats) {
		t.Fatal("same seed produced different structure")
	}
	for li := range a.Leads {
		for i := range a.Leads[li] {
			if a.Leads[li][i] != b.Leads[li][i] {
				t.Fatalf("sample mismatch at lead %d index %d", li, i)
			}
		}
	}
	c := Generate(Config{Seed: 43, Noise: AmbulatoryNoise()})
	same := true
	for i := range a.Leads[0] {
		if a.Leads[0][i] != c.Leads[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical signals")
	}
}

func TestRPeaksAreActualPeaks(t *testing.T) {
	r := Generate(Config{Seed: 7})
	lead := r.Clean[0]
	for _, b := range r.Beats {
		p := b.Fid.RPeak
		if p < 3 || p > len(lead)-4 {
			continue
		}
		// R peak must be a local maximum of the clean lead within ±3
		// samples (lead projection can shift the max slightly).
		localMax := lead[p]
		for d := -3; d <= 3; d++ {
			if lead[p+d] > localMax {
				localMax = lead[p+d]
			}
		}
		window := lead[p-3 : p+4]
		_, hi := dsp.MinMax(window)
		if hi != localMax {
			t.Fatal("inconsistent local max computation")
		}
		// The peak must dominate the surrounding 100 ms.
		lo := p - 25
		if lo < 0 {
			lo = 0
		}
		hi2 := p + 25
		if hi2 > len(lead) {
			hi2 = len(lead)
		}
		_, segMax := dsp.MinMax(lead[lo:hi2])
		if segMax > localMax+1e-9 {
			t.Errorf("R at %d is not the regional max (%v > %v)", p, segMax, localMax)
		}
	}
}

func TestNSRBeatsHavePWaves(t *testing.T) {
	r := Generate(Config{Seed: 3})
	for i, b := range r.Beats {
		if b.Label != LabelNormal {
			continue
		}
		if b.Fid.POn == -1 || b.Fid.PPeak == -1 {
			t.Fatalf("normal beat %d missing P-wave fiducials", i)
		}
		if b.Fid.PPeak >= b.Fid.QRSOn {
			t.Errorf("beat %d: P peak %d not before QRS onset %d", i, b.Fid.PPeak, b.Fid.QRSOn)
		}
	}
}

func TestFiducialOrdering(t *testing.T) {
	r := Generate(Config{Seed: 5, Rhythm: RhythmConfig{PVCRate: 0.08, APBRate: 0.05}, Duration: 120})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// QRS on < R < QRS off < T on for every beat (P checked in Validate).
	for i, b := range r.Beats {
		f := b.Fid
		if !(f.QRSOn < f.RPeak && f.RPeak < f.QRSOff) {
			t.Errorf("beat %d QRS ordering broken: %d %d %d", i, f.QRSOn, f.RPeak, f.QRSOff)
		}
		if f.TOn <= f.RPeak {
			t.Errorf("beat %d T onset %d before R %d", i, f.TOn, f.RPeak)
		}
	}
}

func TestEctopyInjection(t *testing.T) {
	r := Generate(Config{Seed: 11, Duration: 300, Rhythm: RhythmConfig{PVCRate: 0.1, APBRate: 0.05}})
	var nPVC, nAPB, nNorm int
	for _, b := range r.Beats {
		switch b.Label {
		case LabelPVC:
			nPVC++
			if b.Fid.POn != -1 {
				t.Error("PVC should have no P wave")
			}
		case LabelAPB:
			nAPB++
			if b.Fid.POn == -1 {
				t.Error("APB should have a P wave")
			}
		case LabelNormal:
			nNorm++
		}
	}
	if nPVC == 0 || nAPB == 0 {
		t.Fatalf("expected ectopy: %d PVC, %d APB over %d beats", nPVC, nAPB, len(r.Beats))
	}
	if nNorm < len(r.Beats)/2 {
		t.Error("normal beats should dominate")
	}
}

func TestPVCIsWiderThanNormal(t *testing.T) {
	r := Generate(Config{Seed: 13, Duration: 300, Rhythm: RhythmConfig{PVCRate: 0.1}})
	var wN, wV, cN, cV float64
	for _, b := range r.Beats {
		w := float64(b.Fid.QRSOff - b.Fid.QRSOn)
		switch b.Label {
		case LabelNormal:
			wN += w
			cN++
		case LabelPVC:
			wV += w
			cV++
		}
	}
	if cN == 0 || cV == 0 {
		t.Fatal("need both classes")
	}
	if wV/cV < 1.5*(wN/cN) {
		t.Errorf("PVC width %.1f not clearly wider than normal %.1f", wV/cV, wN/cN)
	}
}

func TestAFRecordProperties(t *testing.T) {
	r := Generate(Config{Seed: 17, Duration: 120, Rhythm: RhythmConfig{Kind: RhythmAF}})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.AFSegments) != 1 {
		t.Fatalf("AF record should annotate one AF segment, got %d", len(r.AFSegments))
	}
	if !r.InAF(r.Len() / 2) {
		t.Error("middle of AF record should report InAF")
	}
	for i, b := range r.Beats {
		if b.Label != LabelAF {
			t.Errorf("beat %d label %v in AF record", i, b.Label)
		}
		if b.Fid.POn != -1 {
			t.Error("AF beats must not have P waves")
		}
	}
	// RR irregularity: coefficient of variation well above NSR.
	rrAF := r.RRIntervals()
	cvAF := dsp.Std(rrAF) / dsp.Mean(rrAF)
	nsr := Generate(Config{Seed: 17, Duration: 120})
	rrN := nsr.RRIntervals()
	cvN := dsp.Std(rrN) / dsp.Mean(rrN)
	if cvAF < 3*cvN {
		t.Errorf("AF RR CV %.3f not clearly above NSR %.3f", cvAF, cvN)
	}
	if cvAF < 0.1 {
		t.Errorf("AF RR CV %.3f too regular", cvAF)
	}
}

func TestLeadsAreCorrelatedButDistinct(t *testing.T) {
	r := Generate(Config{Seed: 19})
	c01 := dsp.Correlation(r.Clean[0], r.Clean[1])
	if math.Abs(c01) < 0.3 {
		t.Errorf("leads should share cardiac structure: corr %v", c01)
	}
	if math.Abs(c01) > 0.999 {
		t.Errorf("leads should not be identical: corr %v", c01)
	}
}

func TestNoiseChangesSignalButKeepsClean(t *testing.T) {
	r := Generate(Config{Seed: 23, Noise: AmbulatoryNoise()})
	diff := 0.0
	for i := range r.Leads[0] {
		diff += math.Abs(r.Leads[0][i] - r.Clean[0][i])
	}
	if diff == 0 {
		t.Fatal("noise config did not alter the signal")
	}
	clean := Generate(Config{Seed: 23})
	for i := range clean.Leads[0] {
		if clean.Leads[0][i] != clean.Clean[0][i] {
			t.Fatal("without noise, Leads must equal Clean")
		}
	}
}

func TestGenerateSet(t *testing.T) {
	set := GenerateSet(Config{Duration: 10}, 100, 5)
	if len(set) != 5 {
		t.Fatalf("set size %d", len(set))
	}
	names := map[string]bool{}
	for _, r := range set {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		names[r.Name] = true
	}
	if len(names) != 5 {
		t.Error("records in a set should have distinct names")
	}
}

func TestGenerateMixed(t *testing.T) {
	set := GenerateMixed(Config{Duration: 20}, 7, 3, 2)
	if len(set) != 5 {
		t.Fatalf("mixed set size %d", len(set))
	}
	for i, r := range set {
		isAF := len(r.AFSegments) > 0
		if i < 3 && isAF {
			t.Errorf("record %d should be NSR", i)
		}
		if i >= 3 && !isAF {
			t.Errorf("record %d should be AF", i)
		}
	}
}

func TestRRIntervalsAndRPeaks(t *testing.T) {
	r := Generate(Config{Seed: 29, Duration: 60})
	peaks := r.RPeaks()
	if len(peaks) != len(r.Beats) {
		t.Fatal("RPeaks length mismatch")
	}
	rr := r.RRIntervals()
	if len(rr) != len(peaks)-1 {
		t.Fatal("RRIntervals length mismatch")
	}
	for i, v := range rr {
		if v < 0.3 || v > 2.0 {
			t.Errorf("implausible RR[%d] = %v s", i, v)
		}
	}
	mean := dsp.Mean(rr)
	if mean < 0.7 || mean > 1.0 {
		t.Errorf("mean RR %v s for 72 bpm", mean)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	r := Generate(Config{Seed: 31, Duration: 10})
	r.Leads[1] = r.Leads[1][:10]
	if r.Validate() == nil {
		t.Error("ragged leads must fail validation")
	}
	r = Generate(Config{Seed: 31, Duration: 10})
	r.Beats[0].Fid.RPeak = -5
	if r.Validate() == nil {
		t.Error("negative fiducial must fail validation")
	}
	r = Generate(Config{Seed: 31, Duration: 10})
	if len(r.Beats) >= 2 {
		r.Beats[1].Fid.RPeak = r.Beats[0].Fid.RPeak
		if r.Validate() == nil {
			t.Error("non-increasing R peaks must fail validation")
		}
	}
	empty := &Record{}
	if empty.Validate() != ErrNoLeads {
		t.Error("empty record must return ErrNoLeads")
	}
}

func TestBeatLabelString(t *testing.T) {
	cases := map[BeatLabel]string{
		LabelNormal: "N", LabelPVC: "V", LabelAPB: "A", LabelAF: "f", BeatLabel(99): "?",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("label %d string %q, want %q", l, l.String(), want)
		}
	}
}

func TestDurationAndHelpers(t *testing.T) {
	r := Generate(Config{Seed: 1, Duration: 12})
	if math.Abs(r.Duration()-12) > 0.01 {
		t.Errorf("Duration = %v", r.Duration())
	}
	var empty Record
	if empty.Duration() != 0 || empty.Len() != 0 {
		t.Error("empty record helpers should be zero")
	}
}

func TestLeadSets(t *testing.T) {
	if len(LeadSetEinthoven3()) != 3 || len(LeadSetPseudoOrthogonal()) != 3 {
		t.Error("lead sets should have 3 vectors")
	}
	// Pseudo-orthogonal vectors are orthonormal.
	ls := LeadSetPseudoOrthogonal()
	for i := range ls {
		for j := range ls {
			d := ls[i].Dot(ls[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-12 {
				t.Errorf("dot(%d,%d) = %v", i, j, d)
			}
		}
	}
}

func TestLeadSetStandard12(t *testing.T) {
	ls := LeadSetStandard12()
	if len(ls) != 12 {
		t.Fatalf("12-lead set has %d vectors", len(ls))
	}
	// Einthoven's law: lead II = I + III must hold for the limb vectors.
	for k := 0; k < 3; k++ {
		if math.Abs(ls[1][k]-(ls[0][k]+ls[2][k])) > 1e-9 {
			t.Errorf("Einthoven relation broken in component %d", k)
		}
	}
	// A 12-lead record synthesises and validates.
	rec := Generate(Config{Seed: 5, Duration: 10, Leads: ls})
	if len(rec.Leads) != 12 {
		t.Fatalf("record has %d leads", len(rec.Leads))
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Precordial leads see the dipole differently from limb leads.
	c := dsp.Correlation(rec.Clean[0], rec.Clean[6])
	if math.Abs(c) > 0.98 {
		t.Errorf("V1 should differ from lead I: corr %v", c)
	}
}

func TestRespirationAmplitudeModulation(t *testing.T) {
	// With respiration modulation the per-beat R amplitudes oscillate at
	// the respiratory rate; without it they only carry the 5% jitter.
	mod := Generate(Config{Seed: 70, Duration: 120, Rhythm: RhythmConfig{MeanHR: 72}, RespAmpMod: 0.25})
	flat := Generate(Config{Seed: 70, Duration: 120, Rhythm: RhythmConfig{MeanHR: 72}})
	spread := func(r *Record) float64 {
		var amps []float64
		for _, b := range r.Beats {
			amps = append(amps, r.Clean[0][b.Fid.RPeak])
		}
		return dsp.Std(amps) / dsp.Mean(amps)
	}
	sm, sf := spread(mod), spread(flat)
	if sm < 1.5*sf {
		t.Errorf("respiration modulation not visible: CV %v vs %v", sm, sf)
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStandardDatabase(t *testing.T) {
	db := GenerateDatabase(20, 300)
	if len(db) != 16 {
		t.Fatalf("library has %d records", len(db))
	}
	names := map[string]bool{}
	afCount := 0
	for _, rec := range db {
		if err := rec.Validate(); err != nil {
			t.Fatalf("%s: %v", rec.Name, err)
		}
		if names[rec.Name] {
			t.Errorf("duplicate record name %s", rec.Name)
		}
		names[rec.Name] = true
		if len(rec.AFSegments) > 0 {
			afCount++
		}
	}
	if afCount != 3 {
		t.Errorf("expected 3 AF records, got %d", afCount)
	}
	// Morphology variants: wide-QRS record has broader complexes than
	// nsr-75; low-voltage has smaller R amplitudes.
	byName := map[string]*Record{}
	for _, rec := range db {
		byName[rec.Name] = rec
	}
	qrsWidth := func(r *Record) float64 {
		var w float64
		for _, b := range r.Beats {
			w += float64(b.Fid.QRSOff - b.Fid.QRSOn)
		}
		return w / float64(len(r.Beats))
	}
	if qrsWidth(byName["wide-qrs"]) < 1.4*qrsWidth(byName["nsr-75"]) {
		t.Errorf("wide-qrs record QRS %.1f vs normal %.1f",
			qrsWidth(byName["wide-qrs"]), qrsWidth(byName["nsr-75"]))
	}
	rAmp := func(r *Record) float64 {
		var a float64
		for _, b := range r.Beats {
			a += r.Clean[0][b.Fid.RPeak]
		}
		return a / float64(len(r.Beats))
	}
	if rAmp(byName["low-voltage"]) > 0.6*rAmp(byName["nsr-75"]) {
		t.Errorf("low-voltage record amplitude %.3f vs normal %.3f",
			rAmp(byName["low-voltage"]), rAmp(byName["nsr-75"]))
	}
}

func TestMorphologyOverrideKeepsEctopy(t *testing.T) {
	m := WideQRSMorphology()
	rec := Generate(Config{Seed: 80, Duration: 120, Morphology: &m, Rhythm: RhythmConfig{PVCRate: 0.1}})
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	hasPVC := false
	for _, b := range rec.Beats {
		if b.Label == LabelPVC {
			hasPVC = true
		}
	}
	if !hasPVC {
		t.Error("morphology override should not suppress ectopy")
	}
}

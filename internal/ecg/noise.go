package ecg

import (
	"math"
	"math/rand"
)

// NoiseConfig sets the amplitude (mV RMS unless noted) of each noise
// class added to the synthesised leads. The classes mirror the
// disturbance sources discussed in Sections II and III.B of the paper:
// environmental interference (powerline), biological noise (muscular
// activity), baseline wander and motion artifacts.
type NoiseConfig struct {
	// BaselineWander is the peak amplitude of the slow (< 0.5 Hz)
	// baseline oscillation, mV.
	BaselineWander float64
	// EMG is the RMS of the broadband electromyographic noise, mV.
	EMG float64
	// Powerline is the amplitude of 50 Hz mains interference, mV.
	Powerline float64
	// MotionRate is the expected number of electrode-motion transients
	// per minute; MotionAmp their peak amplitude in mV.
	MotionRate float64
	MotionAmp  float64
}

// CleanNoise returns a NoiseConfig with every source disabled.
func CleanNoise() NoiseConfig { return NoiseConfig{} }

// AmbulatoryNoise returns the default noise mix for ambulatory
// monitoring: visible wander, modest EMG, faint mains pickup, occasional
// motion artifacts.
func AmbulatoryNoise() NoiseConfig {
	return NoiseConfig{
		BaselineWander: 0.25,
		EMG:            0.03,
		Powerline:      0.02,
		MotionRate:     2,
		MotionAmp:      0.4,
	}
}

// addNoise renders all configured noise classes into the leads. Noise is
// generated independently per lead except baseline wander, which is
// strongly correlated across electrodes (common respiration/posture
// origin) and is therefore shared with per-lead gains.
func addNoise(leads [][]float64, cfg NoiseConfig, fs float64, rng *rand.Rand) {
	if len(leads) == 0 {
		return
	}
	n := len(leads[0])
	if cfg.BaselineWander > 0 {
		// Sum of three slow sinusoids with random phases and rates.
		type comp struct{ f, a, ph float64 }
		comps := []comp{
			{0.05 + 0.1*rng.Float64(), 1.0, rng.Float64() * 2 * math.Pi},
			{0.15 + 0.1*rng.Float64(), 0.5, rng.Float64() * 2 * math.Pi},
			{0.30 + 0.1*rng.Float64(), 0.25, rng.Float64() * 2 * math.Pi},
		}
		gains := make([]float64, len(leads))
		for li := range gains {
			gains[li] = 0.7 + 0.6*rng.Float64()
		}
		for i := 0; i < n; i++ {
			t := float64(i) / fs
			v := 0.0
			for _, c := range comps {
				v += c.a * math.Sin(2*math.Pi*c.f*t+c.ph)
			}
			v *= cfg.BaselineWander / 1.75 // normalise to requested peak
			for li := range leads {
				leads[li][i] += gains[li] * v
			}
		}
	}
	if cfg.EMG > 0 {
		// Broadband noise, high-pass shaped by first differencing white
		// noise (EMG energy sits above the ECG band).
		for li := range leads {
			prev := rng.NormFloat64()
			for i := 0; i < n; i++ {
				cur := rng.NormFloat64()
				leads[li][i] += cfg.EMG * (cur - 0.6*prev)
				prev = cur
			}
		}
	}
	if cfg.Powerline > 0 {
		for li := range leads {
			ph := rng.Float64() * 2 * math.Pi
			for i := 0; i < n; i++ {
				leads[li][i] += cfg.Powerline * math.Sin(2*math.Pi*50*float64(i)/fs+ph)
			}
		}
	}
	if cfg.MotionRate > 0 && cfg.MotionAmp > 0 {
		// Poisson-placed exponential transients per lead.
		perSample := cfg.MotionRate / 60 / fs
		tau := 0.15 * fs // decay constant in samples
		for li := range leads {
			for i := 0; i < n; i++ {
				if rng.Float64() < perSample {
					amp := cfg.MotionAmp * (0.5 + rng.Float64())
					if rng.Intn(2) == 0 {
						amp = -amp
					}
					for j := i; j < n && j < i+int(6*tau); j++ {
						leads[li][j] += amp * math.Exp(-float64(j-i)/tau)
					}
				}
			}
		}
	}
}

package ecg

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	rec := Generate(Config{Seed: 9, Duration: 5})
	var sig, ann bytes.Buffer
	if err := rec.WriteCSV(&sig); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteAnnotations(&ann); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&sig)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.ReadAnnotations(&ann); err != nil {
		t.Fatal(err)
	}
	if len(back.Leads) != len(rec.Leads) || back.Len() != rec.Len() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d",
			len(back.Leads), back.Len(), len(rec.Leads), rec.Len())
	}
	if d := back.Fs - rec.Fs; d > 0.01 || d < -0.01 {
		t.Errorf("Fs recovered as %v, want %v", back.Fs, rec.Fs)
	}
	for li := range rec.Leads {
		for i := range rec.Leads[li] {
			d := back.Leads[li][i] - rec.Leads[li][i]
			if d > 1e-5 || d < -1e-5 {
				t.Fatalf("sample %d lead %d differs: %v vs %v",
					i, li, back.Leads[li][i], rec.Leads[li][i])
			}
		}
	}
	if len(back.Beats) != len(rec.Beats) {
		t.Fatalf("beat count %d vs %d", len(back.Beats), len(rec.Beats))
	}
	for i := range rec.Beats {
		if back.Beats[i] != rec.Beats[i] {
			t.Fatalf("beat %d differs: %+v vs %+v", i, back.Beats[i], rec.Beats[i])
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "x,y\n1,2\n",
		"short":      "t,lead1\n0,1\n",
		"ragged":     "t,lead1\n0,1\n0.1,2,3\n",
		"bad number": "t,lead1\n0,a\n0.1,2\n",
		"bad time":   "t,lead1\nz,1\n0.1,2\n",
		"reversed t": "t,lead1\n0.1,1\n0.1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestReadAnnotationsErrors(t *testing.T) {
	rec := Generate(Config{Seed: 9, Duration: 5})
	cases := map[string]string{
		"empty":      "",
		"bad header": "nope\n",
		"ragged":     "label,Pon,Ppeak,Poff,QRSon,Rpeak,QRSoff,Ton,Tpeak,Toff\nN,1,2\n",
		"bad label":  "label,Pon,Ppeak,Poff,QRSon,Rpeak,QRSoff,Ton,Tpeak,Toff\nX,1,2,3,4,5,6,7,8,9\n",
		"bad int":    "label,Pon,Ppeak,Poff,QRSon,Rpeak,QRSoff,Ton,Tpeak,Toff\nN,a,2,3,4,5,6,7,8,9\n",
	}
	for name, in := range cases {
		if err := rec.ReadAnnotations(strings.NewReader(in)); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

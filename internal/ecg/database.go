package ecg

// This file assembles a standard synthetic record library that stands in
// for the clinical databases (MIT-BIH Arrhythmia-style diversity) when
// an experiment asks for results "averaged over all records": subjects
// vary in heart rate, beat morphology (including wide-QRS bundle-branch
// patterns and low-voltage recordings), ectopy load, rhythm and noise.

// WideQRSMorphology returns a bundle-branch-block-like beat: prolonged
// ventricular depolarisation widens the QRS beyond 120 ms while the P
// wave stays normal.
func WideQRSMorphology() Morphology {
	m := NormalMorphology()
	m.Q.Width = 0.018
	m.Q.Offset = -0.045
	m.R.Width = 0.026
	m.S.Width = 0.022
	m.S.Offset = 0.055
	m.T.Amp = -0.25 // discordant repolarisation
	m.T.Dir = m.T.Dir.Scale(-1)
	return m
}

// LowVoltageMorphology returns a low-amplitude subject (e.g. large body
// habitus or pericardial effusion): all waves scaled to 40%.
func LowVoltageMorphology() Morphology {
	m := NormalMorphology()
	m.P.Amp *= 0.4
	m.Q.Amp *= 0.4
	m.R.Amp *= 0.4
	m.S.Amp *= 0.4
	m.T.Amp *= 0.4
	return m
}

// TallTMorphology returns a subject with prominent T waves (a delineation
// stress case: the T rivals the QRS at coarse scales).
func TallTMorphology() Morphology {
	m := NormalMorphology()
	m.T.Amp = 0.6
	m.T.Width = 0.06
	return m
}

// DatabaseEntry names one synthetic subject of the standard library.
type DatabaseEntry struct {
	Name string
	Cfg  Config
}

// StandardDatabase returns the 16-subject synthetic library: a spread of
// heart rates, morphologies, ectopy loads, noise conditions and rhythms
// (records 13-16 are atrial fibrillation). Record durations default to
// `dur` seconds; all records are deterministic in the base seed.
func StandardDatabase(dur float64, baseSeed int64) []DatabaseEntry {
	mk := func(i int, name string, mut func(*Config)) DatabaseEntry {
		cfg := Config{Duration: dur, Seed: baseSeed + int64(i)}
		mut(&cfg)
		return DatabaseEntry{Name: name, Cfg: cfg}
	}
	return []DatabaseEntry{
		mk(0, "nsr-60", func(c *Config) { c.Rhythm.MeanHR = 60 }),
		mk(1, "nsr-75", func(c *Config) { c.Rhythm.MeanHR = 75 }),
		mk(2, "nsr-95", func(c *Config) { c.Rhythm.MeanHR = 95 }),
		mk(3, "nsr-hrv", func(c *Config) { c.Rhythm.HRVRSA = 0.07; c.Rhythm.HRVMayer = 0.05 }),
		mk(4, "pvc-burden", func(c *Config) { c.Rhythm.PVCRate = 0.12 }),
		mk(5, "apb-burden", func(c *Config) { c.Rhythm.APBRate = 0.10 }),
		mk(6, "mixed-ectopy", func(c *Config) { c.Rhythm.PVCRate = 0.06; c.Rhythm.APBRate = 0.06 }),
		mk(7, "noisy-ambulatory", func(c *Config) { c.Noise = AmbulatoryNoise() }),
		mk(8, "emg-heavy", func(c *Config) { c.Noise = NoiseConfig{EMG: 0.08} }),
		mk(9, "wander-heavy", func(c *Config) { c.Noise = NoiseConfig{BaselineWander: 0.4} }),
		mk(10, "wide-qrs", func(c *Config) { c.Morphology = ptr(WideQRSMorphology()) }),
		mk(11, "low-voltage", func(c *Config) { c.Morphology = ptr(LowVoltageMorphology()) }),
		mk(12, "tall-t", func(c *Config) { c.Morphology = ptr(TallTMorphology()) }),
		mk(13, "af-slow", func(c *Config) { c.Rhythm.Kind = RhythmAF; c.Rhythm.MeanHR = 80 }),
		mk(14, "af-fast", func(c *Config) { c.Rhythm.Kind = RhythmAF; c.Rhythm.MeanHR = 110 }),
		mk(15, "af-noisy", func(c *Config) { c.Rhythm.Kind = RhythmAF; c.Noise = NoiseConfig{EMG: 0.04} }),
	}
}

func ptr(m Morphology) *Morphology { return &m }

// GenerateDatabase materialises the standard library.
func GenerateDatabase(dur float64, baseSeed int64) []*Record {
	entries := StandardDatabase(dur, baseSeed)
	out := make([]*Record, len(entries))
	for i, e := range entries {
		rec := Generate(e.Cfg)
		rec.Name = e.Name
		out[i] = rec
	}
	return out
}

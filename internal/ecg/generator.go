package ecg

import (
	"fmt"
	"math"
	"math/rand"
)

// LeadSetEinthoven3 returns the lead vectors of a 3-lead configuration in
// the Einthoven frontal-plane geometry (leads I, II, III at 0°, 60° and
// 120°), the configuration of the SmartCardia device evaluated in
// Section V.
func LeadSetEinthoven3() []Vec3 {
	return []Vec3{
		{1, 0, 0.05},
		{0.5, 0.866, 0.05},
		{-0.5, 0.866, 0.05},
	}
}

// LeadSetPseudoOrthogonal returns a 3-lead pseudo-orthogonal (X,Y,Z)
// configuration used by some holter devices.
func LeadSetPseudoOrthogonal() []Vec3 {
	return []Vec3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Config parameterises record synthesis.
type Config struct {
	// Fs is the sampling rate in Hz (default 256, the rate used by the
	// embedded platform literature the paper builds on).
	Fs float64
	// Duration is the record length in seconds (default 30).
	Duration float64
	// Leads holds the lead direction vectors (default Einthoven 3-lead).
	Leads []Vec3
	// Rhythm selects and parameterises the rhythm generator.
	Rhythm RhythmConfig
	// Noise sets the additive noise mix (default CleanNoise).
	Noise NoiseConfig
	// FWaveAmp is the fibrillatory-wave amplitude in mV for AF rhythms
	// (default 0.05).
	FWaveAmp float64
	// RespAmpMod is the fractional beat-amplitude modulation by
	// respiration (the effect ECG-derived-respiration methods recover);
	// 0 disables it. The modulation frequency follows the RSA rate
	// (~0.25 Hz).
	RespAmpMod float64
	// Morphology overrides the normal-beat morphology for this subject
	// (bundle-branch patterns, low-voltage recordings, ...); nil uses
	// NormalMorphology. Ectopic beats keep their own morphologies.
	Morphology *Morphology
	// Seed drives all randomness; records with equal Config are
	// bit-identical.
	Seed int64
}

func (c Config) withDefaults() Config {
	out := c
	if out.Fs <= 0 {
		out.Fs = 256
	}
	if out.Duration <= 0 {
		out.Duration = 30
	}
	if len(out.Leads) == 0 {
		out.Leads = LeadSetEinthoven3()
	}
	if out.FWaveAmp <= 0 {
		out.FWaveAmp = 0.05
	}
	return out
}

// Generate synthesises one annotated record from the configuration.
func Generate(cfg Config) *Record {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	n := int(c.Duration * c.Fs)
	numLeads := len(c.Leads)
	clean := make([][]float64, numLeads)
	for i := range clean {
		clean[i] = make([]float64, n)
	}
	plans := planRhythm(c.Rhythm, c.Morphology, c.Duration, rng)
	rec := &Record{
		Name: fmt.Sprintf("synth-%s-hr%.0f-seed%d", rhythmName(c.Rhythm.Kind), c.Rhythm.withDefaults().MeanHR, c.Seed),
		Fs:   c.Fs,
	}
	respPhase := rng.Float64() * 2 * math.Pi
	for _, p := range plans {
		r := int(p.t * c.Fs)
		if r < 0 || r >= n {
			continue
		}
		amp := p.ampJitter
		if c.RespAmpMod > 0 {
			amp *= 1 + c.RespAmpMod*math.Sin(2*math.Pi*0.25*p.t+respPhase)
		}
		p.morph.renderInto(clean, c.Leads, r, c.Fs, p.qtScale, amp)
		rec.Beats = append(rec.Beats, Beat{
			Label: p.label,
			Fid:   p.morph.fiducialsAt(r, c.Fs, p.qtScale, n),
		})
	}
	if c.Rhythm.Kind == RhythmAF {
		fWaves(clean, c.Leads, 0, n, c.Fs, c.FWaveAmp, rng)
		rec.AFSegments = [][2]int{{0, n}}
	}
	// Copy clean leads, then add noise on top of the copy.
	noisy := make([][]float64, numLeads)
	for i := range noisy {
		noisy[i] = make([]float64, n)
		copy(noisy[i], clean[i])
	}
	addNoise(noisy, c.Noise, c.Fs, rng)
	rec.Leads = noisy
	rec.Clean = clean
	return rec
}

func rhythmName(k RhythmKind) string {
	if k == RhythmAF {
		return "af"
	}
	return "nsr"
}

// GenerateSet synthesises `count` records with consecutive seeds starting
// at baseSeed, all sharing the same configuration otherwise. This is the
// "averaged over all records" workload of Figure 5.
func GenerateSet(cfg Config, baseSeed int64, count int) []*Record {
	out := make([]*Record, count)
	for i := range out {
		c := cfg
		c.Seed = baseSeed + int64(i)
		out[i] = Generate(c)
	}
	return out
}

// GenerateMixed synthesises a labelled mix of NSR and AF records for the
// AF-detection experiment: nNSR normal records (with the given ectopy
// rates) followed by nAF fibrillation records.
func GenerateMixed(base Config, baseSeed int64, nNSR, nAF int) []*Record {
	var out []*Record
	for i := 0; i < nNSR; i++ {
		c := base
		c.Seed = baseSeed + int64(i)
		c.Rhythm.Kind = RhythmNSR
		out = append(out, Generate(c))
	}
	for i := 0; i < nAF; i++ {
		c := base
		c.Seed = baseSeed + int64(nNSR+i)
		c.Rhythm.Kind = RhythmAF
		out = append(out, Generate(c))
	}
	return out
}

// LeadSetStandard12 returns lead vectors approximating the projections
// of the standard 12-lead ECG (limb leads I, II, III, augmented aVR,
// aVL, aVF and precordial V1-V6) in a simplified torso geometry. The
// augmented and precordial directions follow the conventional frontal
// and horizontal plane angles.
func LeadSetStandard12() []Vec3 {
	return []Vec3{
		{1, 0, 0},         // I
		{0.5, 0.866, 0},   // II
		{-0.5, 0.866, 0},  // III
		{-0.866, -0.5, 0}, // aVR
		{0.866, -0.5, 0},  // aVL
		{0, 1, 0},         // aVF
		{-0.2, 0.1, 0.97}, // V1
		{0.1, 0.15, 0.98}, // V2
		{0.35, 0.2, 0.91}, // V3
		{0.6, 0.25, 0.76}, // V4
		{0.8, 0.25, 0.55}, // V5
		{0.95, 0.2, 0.25}, // V6
	}
}

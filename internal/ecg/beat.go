package ecg

import "math"

// Vec3 is a 3-D spatial vector used to model the cardiac dipole and lead
// directions.
type Vec3 [3]float64

// Dot returns the scalar product of two vectors.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Scale returns v multiplied by k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v[0] * k, v[1] * k, v[2] * k} }

// Wave is one Gaussian component of a beat: the cardiac dipole points in
// direction Dir with scalar amplitude Amp (mV), peaking Offset seconds
// from the R peak with standard deviation Width seconds.
type Wave struct {
	Amp    float64
	Offset float64
	Width  float64
	Dir    Vec3
}

// value returns the wave's scalar contribution at time t (seconds from
// the R peak) before lead projection.
func (w Wave) value(t float64) float64 {
	d := (t - w.Offset) / w.Width
	return w.Amp * math.Exp(-0.5*d*d)
}

// Morphology describes a full beat as a set of named waves. Offsets of
// the T wave adapt to the instantaneous RR interval (QT adaptation)
// during synthesis.
type Morphology struct {
	P, Q, R, S, T Wave
	// HasP disables the P wave when false (PVC, AF beats).
	HasP bool
}

// Default dipole directions: roughly frontal-plane orientations so that
// standard limb leads see distinct projections of the same waves.
var (
	dirP = Vec3{0.8, 0.5, 0.2}
	dirQ = Vec3{-0.4, 0.7, 0.5}
	dirR = Vec3{0.7, 0.7, 0.1}
	dirS = Vec3{-0.5, 0.8, 0.3}
	dirT = Vec3{0.6, 0.6, 0.4}
)

// NormalMorphology returns a textbook normal sinus beat: P-R interval
// 160 ms, QRS width ~90 ms, upright T at ~300 ms.
func NormalMorphology() Morphology {
	return Morphology{
		P:    Wave{Amp: 0.15, Offset: -0.16, Width: 0.022, Dir: dirP},
		Q:    Wave{Amp: -0.12, Offset: -0.028, Width: 0.009, Dir: dirQ},
		R:    Wave{Amp: 1.2, Offset: 0, Width: 0.011, Dir: dirR},
		S:    Wave{Amp: -0.25, Offset: 0.030, Width: 0.010, Dir: dirS},
		T:    Wave{Amp: 0.32, Offset: 0.30, Width: 0.055, Dir: dirT},
		HasP: true,
	}
}

// PVCMorphology returns a premature ventricular contraction: no P wave,
// wide bizarre QRS with a rotated dipole, discordant T wave.
func PVCMorphology() Morphology {
	return Morphology{
		Q:    Wave{Amp: -0.30, Offset: -0.055, Width: 0.022, Dir: dirQ},
		R:    Wave{Amp: 1.45, Offset: 0, Width: 0.030, Dir: Vec3{0.2, 0.9, -0.3}},
		S:    Wave{Amp: -0.55, Offset: 0.065, Width: 0.026, Dir: dirS},
		T:    Wave{Amp: -0.40, Offset: 0.32, Width: 0.070, Dir: dirT.Scale(-1)},
		HasP: false,
	}
}

// APBMorphology returns an atrial premature beat: an earlier, slightly
// different P wave with an otherwise normal QRS-T.
func APBMorphology() Morphology {
	m := NormalMorphology()
	m.P.Amp = 0.11
	m.P.Offset = -0.13
	m.P.Width = 0.018
	m.P.Dir = Vec3{0.5, 0.8, 0.1}
	return m
}

// AFMorphology returns the beat used inside atrial fibrillation: a
// normal ventricular complex with the P wave removed (the atria
// fibrillate instead of contracting; f-waves are added separately by the
// rhythm model).
func AFMorphology() Morphology {
	m := NormalMorphology()
	m.HasP = false
	return m
}

// waveSupport is the half-width, in standard deviations, defining the
// ground-truth onset and offset of a wave. 2.3 sigma covers ~98% of the
// Gaussian lobe's area, matching how human annotators bracket a wave at
// the point it visually leaves the baseline.
const waveSupport = 2.3

// fiducialsAt computes the ground-truth fiducial indices for a beat of
// this morphology whose R peak falls at sample r (sampling rate fs). The
// T-wave offset is stretched by qtScale (Bazett-style QT adaptation).
// Indices are clamped to [0, n).
func (m Morphology) fiducialsAt(r int, fs, qtScale float64, n int) Fiducials {
	toIdx := func(sec float64) int {
		i := r + int(math.Round(sec*fs))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	f := Fiducials{POn: -1, PPeak: -1, POff: -1}
	if m.HasP {
		f.POn = toIdx(m.P.Offset - waveSupport*m.P.Width)
		f.PPeak = toIdx(m.P.Offset)
		f.POff = toIdx(m.P.Offset + waveSupport*m.P.Width)
	}
	f.QRSOn = toIdx(m.Q.Offset - waveSupport*m.Q.Width)
	f.RPeak = toIdx(0)
	f.QRSOff = toIdx(m.S.Offset + waveSupport*m.S.Width)
	tOff := m.T.Offset * qtScale
	f.TOn = toIdx(tOff - waveSupport*m.T.Width)
	f.TPeak = toIdx(tOff)
	f.TOff = toIdx(tOff + waveSupport*m.T.Width)
	return f
}

// renderInto adds the beat's dipole waveform, projected onto the given
// lead vectors, into each lead buffer. r is the R-peak sample index,
// qtScale stretches the T wave, ampJitter scales all amplitudes.
func (m Morphology) renderInto(leads [][]float64, leadVecs []Vec3, r int, fs, qtScale, ampJitter float64) {
	n := len(leads[0])
	waves := []Wave{m.Q, m.R, m.S}
	if m.HasP {
		waves = append(waves, m.P)
	}
	tw := m.T
	tw.Offset *= qtScale
	waves = append(waves, tw)
	for _, w := range waves {
		// Render only the wave's support to keep synthesis O(beats).
		lo := r + int((w.Offset-4*w.Width)*fs)
		hi := r + int((w.Offset+4*w.Width)*fs)
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for i := lo; i <= hi; i++ {
			t := float64(i-r) / fs
			v := w.value(t) * ampJitter
			for li := range leads {
				leads[li][i] += v * leadVecs[li].Dot(w.Dir)
			}
		}
	}
}

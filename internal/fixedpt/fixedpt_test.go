package fixedpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.5, -0.5, 0.25, -0.25, 0.999, -0.999, 1.0 / 32768, -1.0 / 32768}
	for _, f := range cases {
		q := FromFloat(f)
		got := q.Float()
		if math.Abs(got-f) > 1.0/32768 {
			t.Errorf("FromFloat(%v).Float() = %v, want within 1 LSB", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2.0) != MaxQ15 {
		t.Errorf("FromFloat(2.0) = %d, want MaxQ15", FromFloat(2.0))
	}
	if FromFloat(-2.0) != MinQ15 {
		t.Errorf("FromFloat(-2.0) = %d, want MinQ15", FromFloat(-2.0))
	}
	if FromFloat(1.0) != MaxQ15 {
		t.Errorf("FromFloat(1.0) = %d, want MaxQ15 (saturated)", FromFloat(1.0))
	}
}

func TestQ31Conversions(t *testing.T) {
	for _, f := range []float64{0, 0.5, -0.5, 0.123456789, -0.987654321} {
		q := FromFloat31(f)
		if math.Abs(q.Float()-f) > 1e-9 {
			t.Errorf("Q31 round-trip of %v = %v", f, q.Float())
		}
	}
	if FromFloat31(1.5) != MaxQ31 || FromFloat31(-1.5) != MinQ31 {
		t.Error("Q31 saturation failed")
	}
}

func TestSatAddSub(t *testing.T) {
	if SatAdd(MaxQ15, 1) != MaxQ15 {
		t.Error("SatAdd should saturate at MaxQ15")
	}
	if SatAdd(MinQ15, -1) != MinQ15 {
		t.Error("SatAdd should saturate at MinQ15")
	}
	if SatSub(MinQ15, 1) != MinQ15 {
		t.Error("SatSub should saturate at MinQ15")
	}
	if SatSub(MaxQ15, -1) != MaxQ15 {
		t.Error("SatSub should saturate at MaxQ15")
	}
	if SatAdd(100, 200) != 300 {
		t.Errorf("SatAdd(100,200) = %d, want 300", SatAdd(100, 200))
	}
}

// Property: SatAdd never deviates from ideal addition by more than the
// saturation bound, and matches exactly when in range.
func TestSatAddProperty(t *testing.T) {
	f := func(a, b int16) bool {
		s := int32(a) + int32(b)
		got := int32(SatAdd(Q15(a), Q15(b)))
		if s > 32767 {
			return got == 32767
		}
		if s < -32768 {
			return got == -32768
		}
		return got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul(t *testing.T) {
	half := FromFloat(0.5)
	quarter := Mul(half, half)
	if math.Abs(quarter.Float()-0.25) > 1.0/32768 {
		t.Errorf("0.5*0.5 = %v, want 0.25", quarter.Float())
	}
	// MinQ15 * MinQ15 would be +1.0, which must saturate.
	if Mul(MinQ15, MinQ15) != MaxQ15 {
		t.Errorf("MinQ15*MinQ15 = %d, want MaxQ15", Mul(MinQ15, MinQ15))
	}
}

// Property: Q15 multiplication matches float multiplication to 1 LSB.
func TestMulProperty(t *testing.T) {
	f := func(a, b int16) bool {
		fa, fb := Q15(a).Float(), Q15(b).Float()
		want := fa * fb
		if want >= 1.0 {
			want = MaxQ15.Float()
		}
		got := Mul(Q15(a), Q15(b)).Float()
		return math.Abs(got-want) <= 1.5/32768
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	a, b := FromFloat(0.25), FromFloat(0.5)
	if got := Div(a, b).Float(); math.Abs(got-0.5) > 2.0/32768 {
		t.Errorf("0.25/0.5 = %v, want 0.5", got)
	}
	if Div(FromFloat(0.9), FromFloat(0.1)) != MaxQ15 {
		t.Error("overflowing Div should saturate")
	}
	if Div(100, 0) != MaxQ15 || Div(-100, 0) != MinQ15 {
		t.Error("Div by zero should saturate with sign of numerator")
	}
}

func TestAbsNeg(t *testing.T) {
	if Abs(MinQ15) != MaxQ15 {
		t.Error("Abs(MinQ15) must saturate to MaxQ15")
	}
	if Neg(MinQ15) != MaxQ15 {
		t.Error("Neg(MinQ15) must saturate to MaxQ15")
	}
	if Abs(-100) != 100 || Abs(100) != 100 {
		t.Error("Abs basic cases failed")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(50, 0, 40) != 40 {
		t.Error("Clamp upper failed")
	}
	if Clamp(-50, -40, 40) != -40 {
		t.Error("Clamp lower failed")
	}
	if Clamp(10, 0, 40) != 10 {
		t.Error("Clamp passthrough failed")
	}
}

func TestSqrt(t *testing.T) {
	for _, f := range []float64{0.25, 0.5, 0.81, 0.0625, 0.01} {
		q := FromFloat(f)
		got := Sqrt(q).Float()
		want := math.Sqrt(f)
		if math.Abs(got-want) > 2.0/32768 {
			t.Errorf("Sqrt(%v) = %v, want %v", f, got, want)
		}
	}
	if Sqrt(-100) != 0 {
		t.Error("Sqrt of negative should be 0")
	}
	if Sqrt(0) != 0 {
		t.Error("Sqrt(0) should be 0")
	}
}

// Property: Sqrt(q)^2 <= q < (Sqrt(q)+2 LSB)^2 in the float domain.
func TestSqrtProperty(t *testing.T) {
	f := func(a int16) bool {
		if a < 0 {
			a = -a
		}
		if a < 0 { // MinInt16
			a = 0
		}
		q := Q15(a)
		r := Sqrt(q).Float()
		v := q.Float()
		return r*r <= v+2.0/32768 && (r+2.0/32768)*(r+2.0/32768) >= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestISqrt(t *testing.T) {
	cases := []uint32{0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 65535, 65536, 4294967295}
	for _, v := range cases {
		got := uint64(ISqrt32(v))
		if got*got > uint64(v) {
			t.Errorf("ISqrt32(%d) = %d too large", v, got)
		}
		if g1 := got + 1; g1*g1 <= uint64(v) {
			t.Errorf("ISqrt32(%d) = %d too small", v, got)
		}
	}
	for _, v := range []uint64{0, 1, 1 << 40, 1<<62 + 12345, math.MaxUint64} {
		got := ISqrt64(v)
		if got*got > v {
			t.Errorf("ISqrt64(%d) = %d too large", v, got)
		}
	}
}

func TestMACAccumulator(t *testing.T) {
	a := FromSlice([]float64{0.5, 0.25, -0.5})
	b := FromSlice([]float64{0.5, 0.5, 0.5})
	got := DotQ15(a, b).Float()
	want := 0.5*0.5 + 0.25*0.5 - 0.5*0.5
	if math.Abs(got-want) > 3.0/32768 {
		t.Errorf("DotQ15 = %v, want %v", got, want)
	}
}

func TestDotQ15PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DotQ15 should panic on length mismatch")
		}
	}()
	DotQ15(make([]Q15, 3), make([]Q15, 4))
}

func TestSliceConversions(t *testing.T) {
	xs := []float64{0.1, -0.2, 0.3}
	qs := FromSlice(xs)
	back := ToSlice(qs)
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1.0/32768 {
			t.Errorf("slice round-trip [%d]: %v vs %v", i, back[i], xs[i])
		}
	}
}

func TestScaleQ15(t *testing.T) {
	xs := FromSlice([]float64{0.5, -0.5, 0.25})
	ScaleQ15(xs, HalfQ15)
	want := []float64{0.25, -0.25, 0.125}
	for i, w := range want {
		if math.Abs(xs[i].Float()-w) > 2.0/32768 {
			t.Errorf("ScaleQ15[%d] = %v, want %v", i, xs[i].Float(), w)
		}
	}
}

func TestExpNegLin4Breakpoints(t *testing.T) {
	// The approximation interpolates exactly at the breakpoints.
	for _, u := range []float64{0, 0.5, 1.25, 2.25} {
		got := ExpNegLin4(u)
		want := math.Exp(-u)
		if math.Abs(got-want) > 1e-5 {
			t.Errorf("ExpNegLin4(%v) = %v, want %v at breakpoint", u, got, want)
		}
	}
	if ExpNegLin4(5) != 0 {
		t.Error("ExpNegLin4 beyond 4 should be 0")
	}
	if ExpNegLin4(-1) != 1 {
		t.Error("ExpNegLin4 of negative should clamp to 1")
	}
}

func TestExpNegLin4MaxError(t *testing.T) {
	// Ref [14]'s "close-to-optimal" claim: with 4 segments the worst error
	// stays small; chord interpolation of exp(-u) on these breakpoints
	// keeps max error under 0.05.
	maxErr := ExpNegLin4MaxError(4001, math.Exp)
	if maxErr > 0.05 {
		t.Errorf("4-segment linearization max error %v, want <= 0.05", maxErr)
	}
	if maxErr <= 0 {
		t.Errorf("expected a non-zero approximation error, got %v", maxErr)
	}
}

func TestExpNegLin4Q15MatchesFloat(t *testing.T) {
	for u := 0.0; u < 4.0; u += 0.01 {
		uQ12 := int32(u * 4096)
		got := ExpNegLin4Q15(uQ12).Float()
		want := ExpNegLin4(u)
		if math.Abs(got-want) > 0.002 {
			t.Errorf("ExpNegLin4Q15(%v) = %v, want %v", u, got, want)
		}
	}
	if ExpNegLin4Q15(-5) != MaxQ15 {
		t.Error("negative input should clamp to 1.0 (MaxQ15)")
	}
	if ExpNegLin4Q15(4*4096+1) != 0 {
		t.Error("input beyond 4 should return 0")
	}
}

// Property: ExpNegLin4 is monotonically non-increasing.
func TestExpNegLin4Monotone(t *testing.T) {
	prev := math.Inf(1)
	for u := 0.0; u <= 4.5; u += 0.003 {
		v := ExpNegLin4(u)
		if v > prev+1e-12 {
			t.Fatalf("ExpNegLin4 not monotone at u=%v: %v > %v", u, v, prev)
		}
		prev = v
	}
}

func TestLog2Frac(t *testing.T) {
	// Exact powers of two.
	for _, c := range []struct {
		v    uint32
		want int32
	}{{1, 0}, {2, 1 << 8}, {4, 2 << 8}, {1024, 10 << 8}, {1 << 31, 31 << 8}} {
		if got := Log2Frac(c.v, 8); got != c.want {
			t.Errorf("Log2Frac(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Non-powers within 1 LSB of the float answer.
	for _, v := range []uint32{3, 5, 7, 100, 1000, 123456} {
		got := float64(Log2Frac(v, 12)) / 4096
		want := math.Log2(float64(v))
		if math.Abs(got-want) > 1.0/4096*2 {
			t.Errorf("Log2Frac(%d) = %v, want %v", v, got, want)
		}
	}
	if Log2Frac(0, 8) != -(1 << 30) {
		t.Error("log2(0) should saturate")
	}
	// Oversized fracBits clamp rather than overflow.
	if got := Log2Frac(2, 30); got != 1<<16 {
		t.Errorf("clamped fracBits: got %d, want %d", got, 1<<16)
	}
}

func TestLog2Q15(t *testing.T) {
	for _, p := range []float64{1.0 / 32768 * 16384, 0.25, 0.5, 0.999} {
		q := FromFloat(p)
		got := float64(Log2Q15(q)) / 2048
		want := math.Log2(q.Float())
		if math.Abs(got-want) > 0.002 {
			t.Errorf("Log2Q15(%v) = %v, want %v", p, got, want)
		}
	}
	if Log2Q15(0) != -(1 << 30) {
		t.Error("Log2Q15(0) should saturate")
	}
}

func TestEntropyBitsQ15(t *testing.T) {
	// Uniform over 8 bins: exactly 3 bits.
	probs := make([]Q15, 8)
	for i := range probs {
		probs[i] = FromFloat(0.125)
	}
	got := float64(EntropyBitsQ15(probs)) / 2048
	if math.Abs(got-3) > 0.01 {
		t.Errorf("uniform-8 entropy = %v bits, want 3", got)
	}
	// Deterministic distribution: zero entropy.
	certain := []Q15{MaxQ15, 0, 0}
	if e := EntropyBitsQ15(certain); e < 0 || float64(e)/2048 > 0.01 {
		t.Errorf("deterministic entropy = %v", float64(e)/2048)
	}
	// Skewed beats uniform downwards.
	skew := []Q15{FromFloat(0.7), FromFloat(0.1), FromFloat(0.1), FromFloat(0.1)}
	uniform := []Q15{FromFloat(0.25), FromFloat(0.25), FromFloat(0.25), FromFloat(0.25)}
	if EntropyBitsQ15(skew) >= EntropyBitsQ15(uniform) {
		t.Error("skewed distribution should have lower entropy")
	}
}

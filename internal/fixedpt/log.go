package fixedpt

// Log2Frac returns log2(v) with fracBits fractional bits (rounded down),
// computed by the classic integer square-and-compare method: the integer
// part is the position of the highest set bit; each fractional bit comes
// from one squaring of the normalised mantissa. v = 0 returns the most
// negative representable value as a saturated "-inf" stand-in.
//
// The routine uses only shifts, multiplies and compares — the form an
// integer-only MCU runs when the AF detector evaluates the Shannon
// entropy of its RR histogram on-node (Section V, ref [25]).
func Log2Frac(v uint32, fracBits uint) int32 {
	if fracBits > 16 {
		fracBits = 16
	}
	if v == 0 {
		return -(1 << 30)
	}
	// Integer part: floor(log2 v).
	ip := int32(0)
	t := v
	for t > 1 {
		t >>= 1
		ip++
	}
	result := ip << fracBits
	// Normalise the mantissa into [1, 2) as Q16: m = v / 2^ip scaled.
	var m uint64
	if ip >= 16 {
		m = uint64(v) >> uint(ip-16)
	} else {
		m = uint64(v) << uint(16-ip)
	}
	// Fractional bits: square the mantissa; if it reaches 2, emit a 1 and
	// renormalise.
	for b := uint(0); b < fracBits; b++ {
		m = (m * m) >> 16 // still Q16
		if m >= 2<<16 {
			m >>= 1
			result |= 1 << (fracBits - 1 - b)
		}
	}
	return result
}

// Log2Q15 returns log2(p) for a Q15 probability p in (0, 1], with 11
// fractional bits (Q11, range about [-15, 0]). p <= 0 returns the
// saturated "-inf" stand-in from Log2Frac.
func Log2Q15(p Q15) int32 {
	if p <= 0 {
		return -(1 << 30)
	}
	// log2(p/32768) = log2(p) - 15.
	return Log2Frac(uint32(p), 11) - 15<<11
}

// EntropyBitsQ15 computes the Shannon entropy -Σ p·log2(p), in Q11 bits,
// of a Q15 probability vector (entries are clamped at 0; callers
// normalise the histogram so the entries sum to ~1.0). The
// multiply-accumulate runs in 64-bit to avoid overflow.
func EntropyBitsQ15(probs []Q15) int32 {
	var acc int64 // Q15 * Q11 = Q26
	for _, p := range probs {
		if p <= 0 {
			continue
		}
		acc -= int64(p) * int64(Log2Q15(p))
	}
	return int32(acc >> 15) // back to Q11
}

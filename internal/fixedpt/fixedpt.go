// Package fixedpt implements the fixed-point arithmetic used by the
// embedded variants of the signal-processing kernels.
//
// The WBSN platforms targeted by the paper (Section IV.A) operate at a few
// MHz and support only integer arithmetic, so every algorithm that runs
// on-node is expressed over Q15 (16-bit) or Q31 (32-bit) fixed-point
// values. The float64 reference implementations elsewhere in this
// repository are mirrored by Q15 versions whose operation counts drive the
// cycle/energy models in internal/wbsn and internal/energy.
//
// Q15 values represent the range [-1, 1) with 15 fractional bits; Q31
// likewise with 31 fractional bits. All operations saturate rather than
// wrap, matching the saturating DSP extensions of the MCU class described
// in the paper.
package fixedpt

// Q15 is a signed 16-bit fixed-point number with 15 fractional bits,
// representing values in [-1, 1-2^-15].
type Q15 int16

// Q31 is a signed 32-bit fixed-point number with 31 fractional bits,
// representing values in [-1, 1-2^-31].
type Q31 int32

// Fixed-point limits.
const (
	MaxQ15 Q15 = 0x7FFF
	MinQ15 Q15 = -0x8000
	MaxQ31 Q31 = 0x7FFFFFFF
	MinQ31 Q31 = -0x80000000

	// OneQ15 is the closest Q15 representation of +1.0 (saturated).
	OneQ15 = MaxQ15
	// HalfQ15 is the exact Q15 representation of 0.5.
	HalfQ15 Q15 = 0x4000
)

// FromFloat converts a float64 in [-1, 1) to Q15, saturating out-of-range
// inputs and rounding to nearest.
func FromFloat(f float64) Q15 {
	v := f * 32768.0
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	if v > 32767 {
		return MaxQ15
	}
	if v < -32768 {
		return MinQ15
	}
	return Q15(int32(v))
}

// Float converts a Q15 value to float64.
func (q Q15) Float() float64 { return float64(q) / 32768.0 }

// FromFloat31 converts a float64 in [-1, 1) to Q31, saturating.
func FromFloat31(f float64) Q31 {
	v := f * 2147483648.0
	if v >= 2147483647 {
		return MaxQ31
	}
	if v <= -2147483648 {
		return MinQ31
	}
	return Q31(int64(v))
}

// Float converts a Q31 value to float64.
func (q Q31) Float() float64 { return float64(q) / 2147483648.0 }

// SatAdd returns a+b with saturation.
func SatAdd(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return MaxQ15
	}
	if s < -32768 {
		return MinQ15
	}
	return Q15(s)
}

// SatSub returns a-b with saturation.
func SatSub(a, b Q15) Q15 {
	s := int32(a) - int32(b)
	if s > 32767 {
		return MaxQ15
	}
	if s < -32768 {
		return MinQ15
	}
	return Q15(s)
}

// Mul returns the Q15 product a*b with rounding and saturation.
// The only case that saturates is MinQ15*MinQ15.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b) // Q30
	p += 1 << 14             // round
	p >>= 15
	if p > 32767 {
		return MaxQ15
	}
	if p < -32768 {
		return MinQ15
	}
	return Q15(p)
}

// MulQ31 returns the Q31 product of two Q15 values without precision loss
// (a Q30 result shifted into Q31).
func MulQ31(a, b Q15) Q31 {
	return Q31(int32(a)*int32(b)) << 1
}

// MAC returns acc + a*b where acc is a Q30-scaled 64-bit accumulator.
// Embedded inner products keep a wide accumulator and narrow once at the
// end, which is what the MCU's MAC unit does; Acc exposes that pattern.
func MAC(acc int64, a, b Q15) int64 {
	return acc + int64(a)*int64(b)
}

// AccToQ15 narrows a Q30 accumulator (as produced by MAC) to Q15 with
// rounding and saturation.
func AccToQ15(acc int64) Q15 {
	acc += 1 << 14
	acc >>= 15
	if acc > 32767 {
		return MaxQ15
	}
	if acc < -32768 {
		return MinQ15
	}
	return Q15(acc)
}

// Div returns the Q15 quotient a/b, saturating on overflow or division by
// zero (returns MaxQ15 or MinQ15 according to the sign of a).
func Div(a, b Q15) Q15 {
	if b == 0 {
		if a >= 0 {
			return MaxQ15
		}
		return MinQ15
	}
	q := (int32(a) << 15) / int32(b)
	if q > 32767 {
		return MaxQ15
	}
	if q < -32768 {
		return MinQ15
	}
	return Q15(q)
}

// Abs returns |q| with saturation (|MinQ15| saturates to MaxQ15).
func Abs(q Q15) Q15 {
	if q == MinQ15 {
		return MaxQ15
	}
	if q < 0 {
		return -q
	}
	return q
}

// Neg returns -q with saturation.
func Neg(q Q15) Q15 {
	if q == MinQ15 {
		return MaxQ15
	}
	return -q
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi Q15) Q15 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sqrt returns the square root of a non-negative Q15 value, computed with
// the classic bit-by-bit integer algorithm (no floating point, no
// multiply), matching the routine used on multiply-poor MCUs. Negative
// inputs return 0.
func Sqrt(q Q15) Q15 {
	if q <= 0 {
		return 0
	}
	// sqrt over Q15: result r such that r*r = q<<15 in integer domain.
	x := uint32(q) << 15 // Q30 radicand
	var res uint32
	bit := uint32(1) << 30
	for bit > x {
		bit >>= 2
	}
	for bit != 0 {
		if x >= res+bit {
			x -= res + bit
			res = (res >> 1) + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	if res > 32767 {
		res = 32767
	}
	return Q15(res)
}

// ISqrt32 returns floor(sqrt(v)) for an arbitrary unsigned 32-bit integer.
// Used by integer RMS computations (lead combination, feature extraction).
func ISqrt32(v uint32) uint32 {
	var res uint32
	bit := uint32(1) << 30
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = (res >> 1) + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// ISqrt64 returns floor(sqrt(v)) for an unsigned 64-bit integer.
func ISqrt64(v uint64) uint64 {
	var res uint64
	bit := uint64(1) << 62
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = (res >> 1) + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// FromSlice converts a float64 slice to Q15, saturating each element.
func FromSlice(xs []float64) []Q15 {
	out := make([]Q15, len(xs))
	for i, x := range xs {
		out[i] = FromFloat(x)
	}
	return out
}

// ToSlice converts a Q15 slice to float64.
func ToSlice(qs []Q15) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = q.Float()
	}
	return out
}

// DotQ15 computes the saturating Q15 inner product of two equal-length
// vectors using a wide accumulator, the canonical embedded MAC loop.
// It panics if the lengths differ.
func DotQ15(a, b []Q15) Q15 {
	if len(a) != len(b) {
		panic("fixedpt: length mismatch in DotQ15")
	}
	var acc int64
	for i := range a {
		acc = MAC(acc, a[i], b[i])
	}
	return AccToQ15(acc)
}

// ScaleQ15 multiplies every element of xs by k in place.
func ScaleQ15(xs []Q15, k Q15) {
	for i := range xs {
		xs[i] = Mul(xs[i], k)
	}
}

package fixedpt

// This file implements the piecewise-linear approximation of the Gaussian
// kernel described in Section IV.A of the paper: "a four-segments
// linearization is shown to achieve close-to-optimal results [14], while
// vastly simplifying the computational requirements".
//
// The function approximated is g(u) = exp(-u) for u >= 0 (the classifier
// evaluates exp(-d²/2σ²) with the squared distance pre-scaled into u).
// Four line segments cover u in [0, 4); beyond 4 the Gaussian is treated
// as zero, which matches the truncation used by the embedded classifier.

// expSegment is one linear piece a - b*u of the exp(-u) approximation,
// with a and b in Q15 over the segment's local coordinate.
type expSegment struct {
	lo, hi float64 // segment domain
	a, b   float64 // value = a - b*(u-lo)
}

// The four segments interpolate exp(-u) at the breakpoints
// u = 0, 0.5, 1.25, 2.25, 4.0 — spacing chosen denser near zero where the
// curvature is largest, mirroring the design in ref [14].
var expSegments = [4]expSegment{
	{0.00, 0.50, 1.000000, (1.000000 - 0.606531) / 0.50},
	{0.50, 1.25, 0.606531, (0.606531 - 0.286505) / 0.75},
	{1.25, 2.25, 0.286505, (0.286505 - 0.105399) / 1.00},
	{2.25, 4.00, 0.105399, (0.105399 - 0.018316) / 1.75},
}

// ExpNegLin4 approximates exp(-u) for u >= 0 with the paper's four-segment
// linearization. Inputs beyond 4 return 0; negative inputs are clamped to
// 0 (returning 1).
func ExpNegLin4(u float64) float64 {
	if u <= 0 {
		return 1
	}
	if u >= 4 {
		return 0
	}
	for _, s := range expSegments {
		if u < s.hi {
			return s.a - s.b*(u-s.lo)
		}
	}
	return 0
}

// expQ15Seg holds the Q15-quantised segment table used by the integer
// variant. Breakpoints are in Q12 (u scaled by 4096 so the domain [0,4)
// fits int16), values and slopes in Q15.
type expQ15Seg struct {
	loQ12 int32 // breakpoint, Q12
	hiQ12 int32
	aQ15  int32 // value at lo, Q15
	bQ17  int32 // slope per Q12 unit, scaled so (b*(u-lo))>>14 is Q15
}

var expQ15Segments = [4]expQ15Seg{}

func init() {
	for i, s := range expSegments {
		expQ15Segments[i] = expQ15Seg{
			loQ12: int32(s.lo * 4096),
			hiQ12: int32(s.hi * 4096),
			aQ15:  int32(s.a * 32768),
			// u is Q12; the real-valued correction slope*(u-lo) must land
			// in Q15: value = a - slope*du/4096*32768 = a - slope*du*8.
			// Store slope*8 with 11 extra fractional bits for accuracy.
			bQ17: int32(s.b * 8 * 2048),
		}
	}
}

// ExpNegLin4Q15 is the integer-only variant: u is given in Q12
// (i.e. real u = uQ12/4096, valid domain [0, 4)), the result is Q15.
// This is the form executed on the node; its cycle cost is three compares,
// one subtract, one multiply and one shift.
func ExpNegLin4Q15(uQ12 int32) Q15 {
	if uQ12 <= 0 {
		return MaxQ15
	}
	if uQ12 >= 4*4096 {
		return 0
	}
	for _, s := range expQ15Segments {
		if uQ12 < s.hiQ12 {
			du := uQ12 - s.loQ12                // Q12
			v := s.aQ15 - ((du * s.bQ17) >> 11) // Q15
			if v < 0 {
				v = 0
			}
			if v > 32767 {
				v = 32767
			}
			return Q15(v)
		}
	}
	return 0
}

// ExpNegLin4MaxError reports the maximum absolute error of the 4-segment
// approximation against math.Exp over a uniform grid of n points in
// [0, 4]. Exposed for the ablation bench that validates the "close to
// optimal" claim of ref [14]. The exact exponential is passed in by the
// caller to keep this package free of math imports on embedded builds.
func ExpNegLin4MaxError(n int, exact func(float64) float64) float64 {
	if n < 2 {
		n = 2
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		u := 4 * float64(i) / float64(n-1)
		e := ExpNegLin4(u) - exact(-u)
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wbsn/internal/telemetry/trace"
)

// fakeControl is a ControlPlane double for endpoint tests.
type fakeControl struct {
	mu       sync.Mutex
	sessions map[uint64]SessionInfo
	draining bool
}

func (f *fakeControl) ControlSessions() []SessionInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SessionInfo, 0, len(f.sessions))
	for _, s := range f.sessions {
		out = append(out, s)
	}
	return out
}

func (f *fakeControl) EvictSession(id uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.sessions[id]; !ok {
		return false
	}
	delete(f.sessions, id)
	return true
}

func (f *fakeControl) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}

func controlServer(t *testing.T, opts HTTPOptions) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	srv := httptest.NewServer(HandlerOpts(reg, opts))
	t.Cleanup(srv.Close)
	return srv, reg
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestSessionsEndpointListsAndEvicts(t *testing.T) {
	fc := &fakeControl{sessions: map[uint64]SessionInfo{
		7: {ID: 7, SeqHighWater: 40, Delivered: 40, Rewinds: 2, Sheds: 1, Reconnects: 1, Attached: true},
		3: {ID: 3, SeqHighWater: 10, Finished: true},
	}}
	srv, _ := controlServer(t, HTTPOptions{Control: fc})

	var resp sessionsResponse
	if code := getJSON(t, srv.URL+"/sessions", &resp); code != http.StatusOK {
		t.Fatalf("/sessions status %d", code)
	}
	if resp.Draining {
		t.Fatal("draining reported before shutdown")
	}
	if len(resp.Sessions) != 2 || resp.Sessions[0].ID != 3 || resp.Sessions[1].ID != 7 {
		t.Fatalf("sessions not sorted by id: %+v", resp.Sessions)
	}
	if s := resp.Sessions[1]; s.SeqHighWater != 40 || s.Rewinds != 2 || s.Sheds != 1 || s.Reconnects != 1 || !s.Attached {
		t.Fatalf("per-stream stats lost in transit: %+v", s)
	}

	// Evict session 7, then confirm the very next poll no longer lists
	// it (the "observable within one poll" contract).
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/sessions/7/evict", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("evict status %d", r.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/sessions", &resp); code != http.StatusOK {
		t.Fatal("re-poll failed")
	}
	if len(resp.Sessions) != 1 || resp.Sessions[0].ID != 3 {
		t.Fatalf("evicted session still listed: %+v", resp.Sessions)
	}

	// Unknown session and malformed id.
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/sessions/7/evict", nil)
	if r, _ := http.DefaultClient.Do(req); r.StatusCode != http.StatusNotFound {
		t.Fatalf("re-evict status %d, want 404", r.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/sessions/bogus/evict", nil)
	if r, _ := http.DefaultClient.Do(req); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus id status %d, want 400", r.StatusCode)
	}
	// GET on the evict route is method-mismatched.
	if code := getJSON(t, srv.URL+"/sessions/3/evict", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET evict status %d, want 405", code)
	}
}

func TestSessionsEndpointWithoutControlPlane(t *testing.T) {
	srv, _ := controlServer(t, HTTPOptions{})
	var resp sessionsResponse
	if code := getJSON(t, srv.URL+"/sessions", &resp); code != http.StatusOK {
		t.Fatalf("/sessions status %d", code)
	}
	if resp.Sessions == nil || len(resp.Sessions) != 0 {
		t.Fatalf("want empty (not null) session list, got %+v", resp.Sessions)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/sessions/1/evict", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotImplemented {
		t.Fatalf("evict without control plane: status %d, want 501", r.StatusCode)
	}
}

func TestHealthzReflectsDrainState(t *testing.T) {
	fc := &fakeControl{sessions: map[uint64]SessionInfo{}}
	var draining bool
	var mu sync.Mutex
	srv, _ := controlServer(t, HTTPOptions{
		Control:  fc,
		Draining: func() bool { mu.Lock(); defer mu.Unlock(); return draining },
	})
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthy status %d", code)
	}
	// Either drain source flips the endpoint to 503.
	fc.mu.Lock()
	fc.draining = true
	fc.mu.Unlock()
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("control-plane drain status %d, want 503", code)
	}
	fc.mu.Lock()
	fc.draining = false
	fc.mu.Unlock()
	mu.Lock()
	draining = true
	mu.Unlock()
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("callback drain status %d, want 503", code)
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	srv, _ := controlServer(t, HTTPOptions{})
	var bi BuildInfo
	if code := getJSON(t, srv.URL+"/buildinfo", &bi); code != http.StatusOK {
		t.Fatalf("/buildinfo status %d", code)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("go version %q", bi.GoVersion)
	}
	if ReadBuild().String() == "" {
		t.Fatal("startup banner empty")
	}
}

func TestTracesEndpoint(t *testing.T) {
	col := trace.New(64, 8, 2)
	srv, _ := controlServer(t, HTTPOptions{Trace: col})

	// Empty collector: valid JSON, zero trees.
	var snap trace.Snapshot
	if code := getJSON(t, srv.URL+"/traces", &snap); code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	if snap.Recorded != 0 || len(snap.Recent) != 0 {
		t.Fatalf("empty collector snapshot: %+v", snap)
	}

	ring := col.Session(11)
	id := trace.NewID(2, 5)
	ring.Record(id, trace.KindEncode, 10, 100)
	ring.RecordLink(id, 110, 50, 1, 42)
	ring.Record(id, trace.KindIngest, 200, 5)
	ring.RecordDecode(id, 205, 80, 25, 4)
	ring.Record(id, trace.KindDeliver, 285, 1)

	if code := getJSON(t, srv.URL+"/traces", &snap); code != http.StatusOK {
		t.Fatal("/traces re-poll failed")
	}
	if snap.Recorded != 1 || len(snap.Recent) != 1 || len(snap.Slowest) != 1 {
		t.Fatalf("snapshot after one window: %+v", snap)
	}
	tree := snap.Recent[0]
	if tree.Session != 11 || len(tree.Node) != 2 || len(tree.Gateway) != 3 {
		t.Fatalf("tree shape: %+v", tree)
	}
}

// TestTracesEndpointWithoutCollector confirms the endpoint degrades to
// an empty document rather than a 404 when no collector is wired.
func TestTracesEndpointWithoutCollector(t *testing.T) {
	srv, _ := controlServer(t, HTTPOptions{})
	var snap trace.Snapshot
	if code := getJSON(t, srv.URL+"/traces", &snap); code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
}

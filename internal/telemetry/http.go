package telemetry

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// The live inspection endpoint: /metrics renders the registry's JSON
// snapshot, /debug/vars the expvar view of the same registry, and
// /debug/pprof/* the standard Go profiler — so a stalled fleet can be
// profiled in place without rebuilding.

// expvar registration is process-global and panics on duplicate names,
// so the package publishes one Func that follows the most recently
// served registry.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// Handler returns the inspection mux for a registry (control-plane
// surfaces disabled — see HandlerOpts).
func Handler(reg *Registry) http.Handler {
	return HandlerOpts(reg, HTTPOptions{})
}

// Server is a live telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the inspection endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns once the listener is bound; requests are
// served on a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeOpts(addr, reg, HTTPOptions{})
}

// Addr returns the bound listen address (with the real port when addr
// requested :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains the server gracefully: the listener closes
// immediately (no new scrapes), in-flight requests — a scraper
// mid-/metrics, a profiler holding /debug/pprof/profile open — run to
// completion, then idle keep-alive connections are closed. ctx bounds
// the wait; on expiry the remaining connections are cut and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The deadline passed with requests still in flight: cut them so
		// the caller's teardown is bounded either way.
		s.srv.Close()
	}
	return err
}

// Close stops the listener immediately, cutting in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe on a nil receiver (no-ops /
// zero reads), so instrumented code never branches on "is telemetry
// attached".
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter accumulates a float64 sum with a CAS loop — used for
// physical quantities (joules) that do not fit integer counters. The
// zero value is ready to use.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates x.
func (f *FloatCounter) Add(x float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *FloatCounter) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Gauge is an atomic instantaneous value that also tracks its high
// watermark (e.g. queue depth plus the deepest the queue ever got).
// The zero value is ready to use.
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set stores x.
func (g *Gauge) Set(x int64) {
	if g == nil {
		return
	}
	g.v.Store(x)
	g.raise(x)
}

// Add adjusts the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	x := g.v.Add(d)
	g.raise(x)
	return x
}

func (g *Gauge) raise(x int64) {
	for {
		hi := g.hi.Load()
		if x <= hi || g.hi.CompareAndSwap(hi, x) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high watermark.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the binary's provenance as served by /buildinfo and
// printed at startup: the Go toolchain plus whatever VCS stamping the
// build embedded (absent for plain `go test` binaries).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"revision,omitempty"`
	// CommitTime is the committer timestamp of Revision (RFC 3339).
	CommitTime string `json:"commit_time,omitempty"`
	// Dirty marks a build from a modified working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// ReadBuild extracts the build info embedded in the running binary.
func ReadBuild() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.CommitTime = s.Value
		case "vcs.modified":
			bi.Dirty = s.Value == "true"
		}
	}
	return bi
}

// String renders the build info as a one-line startup banner.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "+dirty"
	}
	mod := b.Module
	if mod == "" {
		mod = "wbsn"
	}
	return fmt.Sprintf("%s %s (%s)", mod, rev, b.GoVersion)
}

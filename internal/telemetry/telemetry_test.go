package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFloat(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter %d, want 5", c.Value())
	}
	var g Gauge
	g.Add(3)
	g.Add(4)
	g.Add(-6)
	if g.Value() != 1 || g.High() != 7 {
		t.Errorf("gauge %d/hi%d, want 1/hi7", g.Value(), g.High())
	}
	g.Set(10)
	if g.Value() != 10 || g.High() != 10 {
		t.Errorf("gauge after Set %d/hi%d", g.Value(), g.High())
	}
	var f FloatCounter
	f.Add(0.5)
	f.Add(1.25)
	if f.Value() != 1.75 {
		t.Errorf("float counter %v, want 1.75", f.Value())
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var f *FloatCounter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var ss *StageSet
	var mm *ModeMetrics
	var fm *FleetMetrics
	c.Inc()
	c.Add(2)
	f.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	tr.Record(StageFilter, 0, 0, 1)
	ss.Record(StageFilter, 0, 0, 1)
	mm.RecordTransition(0, 0, 1, 0.5)
	fm.Shard(0).Inc()
	if c.Value() != 0 || f.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Error("nil receivers mutated state")
	}
	if got := h.Snapshot(); got.Count != 0 {
		t.Error("nil histogram snapshot non-empty")
	}
	if tr.Snapshot(8) != nil || mm.Events() != nil {
		t.Error("nil snapshots non-nil")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 0 lands in bucket 0; 1..2^k-1 in power-of-two buckets.
	values := []uint64{0, 1, 3, 7, 100, 1000, 1000, 1000}
	for _, v := range values {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Errorf("min/max %d/%d, want 0/1000", s.Min, s.Max)
	}
	wantSum := uint64(0 + 1 + 3 + 7 + 100 + 3000)
	if s.Sum != wantSum {
		t.Errorf("sum %d, want %d", s.Sum, wantSum)
	}
	// p50 should sit near 100 (rank 4 of 8: 0,1,3,7,|100|,...), p99 in
	// the 1000 bucket, clamped to max.
	if s.P50 < 7 || s.P50 > 127 {
		t.Errorf("p50 %d outside [7,127]", s.P50)
	}
	if s.P99 != 1000 {
		t.Errorf("p99 %d, want 1000 (clamped to max)", s.P99)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 8 {
		t.Errorf("bucket counts sum %d, want 8", total)
	}
	// Monotone bucket bounds.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Errorf("bucket bounds not increasing: %v", s.Buckets)
		}
	}
}

func TestHistogramMinTracksSmallest(t *testing.T) {
	var h Histogram
	h.Observe(500)
	h.Observe(20)
	h.Observe(300)
	if s := h.Snapshot(); s.Min != 20 || s.Max != 500 {
		t.Errorf("min/max %d/%d, want 20/500", s.Min, s.Max)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Record(StageCS, int64(i), int64(100+i), int64(i))
	}
	spans := tr.Snapshot(100)
	if len(spans) != 16 {
		t.Fatalf("snapshot kept %d spans, want 16", len(spans))
	}
	// Oldest-first: the ring must hold spans 24..39.
	for i, s := range spans {
		if want := int64(24 + i); s.At != want {
			t.Fatalf("span %d At=%d, want %d", i, s.At, want)
		}
		if s.StageName != "cs" {
			t.Fatalf("span stage name %q", s.StageName)
		}
	}
	if got := tr.Snapshot(4); len(got) != 4 || got[3].At != 39 {
		t.Errorf("bounded snapshot wrong: %+v", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("counter not shared by name")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Error("histogram not shared by name")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Error("gauge not shared by name")
	}
	if reg.FloatCounter("f") != reg.FloatCounter("f") {
		t.Error("float counter not shared by name")
	}
	reg.Counter("a").Add(2)
	s := reg.Snapshot()
	if s.Counters["a"] != 2 {
		t.Errorf("snapshot counter a=%d", s.Counters["a"])
	}
	if _, ok := s.Histograms["h"]; !ok {
		t.Error("snapshot missing pre-registered histogram")
	}
}

func TestStageSetRecords(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64)
	ss := NewStageSet(reg, tr)
	ss.Record(StageDelineate, 123, 1, 5000)
	if ss.Stage(StageDelineate).Count() != 1 {
		t.Error("stage histogram not recorded")
	}
	if reg.Histogram("pipeline.stage.delineate.ns").Count() != 1 {
		t.Error("stage histogram not registered under pipeline.stage name")
	}
	if tr.Len() != 1 {
		t.Error("span not traced")
	}
}

func TestModeMetricsEdgesAndEvents(t *testing.T) {
	reg := NewRegistry()
	names := []string{"raw", "cs", "delineation"}
	mm := NewModeMetrics(reg, names)
	mm.RecordTransition(10, 1, 2, 0.5)
	mm.RecordTransition(20, 2, 1, 0.99)
	if mm.Transitions.Value() != 2 {
		t.Errorf("transitions %d", mm.Transitions.Value())
	}
	if mm.Current.Value() != 1 {
		t.Errorf("current %d, want 1", mm.Current.Value())
	}
	if mm.Edge(1, 2).Value() != 1 || mm.Edge(2, 1).Value() != 1 {
		t.Error("edge counters wrong")
	}
	evs := mm.Events()
	if len(evs) != 2 || evs[0].FromName != "cs" || evs[0].ToName != "delineation" || evs[1].Quality != 0.99 {
		t.Errorf("events %+v", evs)
	}
	// Pre-registered edge names visible before any traffic.
	if _, ok := reg.Snapshot().Counters["mode.edge.raw->cs"]; !ok {
		t.Error("adjacent edge not pre-registered")
	}
}

func TestModeMetricsRingBounds(t *testing.T) {
	reg := NewRegistry()
	mm := NewModeMetrics(reg, []string{"a", "b"})
	for i := 0; i < modeEventRing+10; i++ {
		mm.RecordTransition(i, 0, 1, 0)
	}
	evs := mm.Events()
	if len(evs) != modeEventRing {
		t.Fatalf("ring kept %d events, want %d", len(evs), modeEventRing)
	}
	if evs[0].At != 10 || evs[len(evs)-1].At != modeEventRing+9 {
		t.Errorf("ring order wrong: first %d last %d", evs[0].At, evs[len(evs)-1].At)
	}
}

func TestSummaryLine(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x.count").Add(7)
	reg.Gauge("x.depth").Set(3)
	reg.Histogram("x.ns").Observe(100)
	reg.FloatCounter("x.j").Add(0.25)
	line := SummaryLine(reg, "x.count", "x.depth", "x.ns", "x.j", "missing")
	for _, want := range []string{"x.count=7", "x.depth=3/hi3", "x.ns=1@p50=", "x.j=0.25", "missing=?"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}

func TestStartSummaryStops(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Inc()
	var sb safeBuffer
	stop := StartSummary(&sb, reg, 10*time.Millisecond, "n")
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	if got := sb.String(); !strings.Contains(got, "n=1") {
		t.Errorf("summary output %q", got)
	}
}

// safeBuffer is a mutex-guarded strings.Builder for cross-goroutine
// test writes.
type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

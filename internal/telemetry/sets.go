package telemetry

import (
	"fmt"
	"sync"

	"wbsn/internal/telemetry/trace"
)

// StageSet bundles the per-stage latency histograms with the shared
// trace ring. Every pipeline layer records into the same StageSet, so
// one /metrics snapshot shows the full chain's latency profile.
type StageSet struct {
	hist   [NumStages]*Histogram
	tracer *Tracer
}

// NewStageSet registers one latency histogram per pipeline stage
// (pipeline.stage.<name>.ns) and wires the trace ring.
func NewStageSet(reg *Registry, tracer *Tracer) *StageSet {
	ss := &StageSet{tracer: tracer}
	for i := 0; i < NumStages; i++ {
		s := Stage(i)
		ss.hist[i] = reg.Histogram("pipeline.stage." + s.String() + ".ns")
	}
	return ss
}

// Record observes one stage execution: duration into the stage's
// histogram plus a span in the trace ring. Nil-safe and
// allocation-free.
func (ss *StageSet) Record(stage Stage, at int64, startNs, durNs int64) {
	if ss == nil {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	ss.hist[stage].Observe(uint64(durNs))
	ss.tracer.Record(stage, at, startNs, durNs)
}

// Stage returns the latency histogram of one stage (for tests and
// summaries).
func (ss *StageSet) Stage(s Stage) *Histogram {
	if ss == nil {
		return nil
	}
	return ss.hist[s]
}

// NodeMetrics instruments core.Stream: per-stage timings are recorded
// through Stages; the counters advance per processed chunk so the
// per-sample Push path stays untouched.
type NodeMetrics struct {
	// Samples counts samples consumed by chunk processing; Chunks the
	// processed chunks; Events/Beats/Packets the emitted events by kind;
	// TxBytes the packetised payload bytes.
	Samples *Counter
	Chunks  *Counter
	Events  *Counter
	Beats   *Counter
	Packets *Counter
	TxBytes *Counter
	Stages  *StageSet
}

// NewNodeMetrics registers the node metric family (node.*).
func NewNodeMetrics(reg *Registry, stages *StageSet) *NodeMetrics {
	return &NodeMetrics{
		Samples: reg.Counter("node.samples"),
		Chunks:  reg.Counter("node.chunks"),
		Events:  reg.Counter("node.events"),
		Beats:   reg.Counter("node.beats"),
		Packets: reg.Counter("node.packets"),
		TxBytes: reg.Counter("node.tx_bytes"),
		Stages:  stages,
	}
}

// LinkMetrics instruments link.Link: ARQ outcome counters, the
// Gilbert–Elliott state occupancy of transmission attempts, and the
// radio energy ledger.
type LinkMetrics struct {
	Packets         *Counter
	Delivered       *Counter
	Lost            *Counter
	Attempts        *Counter
	Retransmissions *Counter
	AcksLost        *Counter
	// FramesGood/FramesBad count transmission attempts by the channel
	// state they saw — the Gilbert–Elliott occupancy.
	FramesGood *Counter
	FramesBad  *Counter
	// RadioEnergyJ accumulates the spent radio energy; PacketMicroJ is
	// the per-packet energy distribution (µJ, retransmissions included);
	// PacketAttempts the attempts-per-packet distribution.
	RadioEnergyJ   *FloatCounter
	PacketMicroJ   *Histogram
	PacketAttempts *Histogram
	Stages         *StageSet
}

// NewLinkMetrics registers the link metric family (link.*).
func NewLinkMetrics(reg *Registry, stages *StageSet) *LinkMetrics {
	return &LinkMetrics{
		Packets:         reg.Counter("link.packets"),
		Delivered:       reg.Counter("link.delivered"),
		Lost:            reg.Counter("link.lost"),
		Attempts:        reg.Counter("link.attempts"),
		Retransmissions: reg.Counter("link.retransmissions"),
		AcksLost:        reg.Counter("link.acks_lost"),
		FramesGood:      reg.Counter("link.frames.good_state"),
		FramesBad:       reg.Counter("link.frames.bad_state"),
		RadioEnergyJ:    reg.FloatCounter("link.radio.energy_j"),
		PacketMicroJ:    reg.Histogram("link.radio.packet_uj"),
		PacketAttempts:  reg.Histogram("link.packet.attempts"),
		Stages:          stages,
	}
}

// GatewayMetrics instruments gateway.Engine: queue depth (with high
// watermark), worker utilisation and decode latency.
type GatewayMetrics struct {
	Submitted    *Counter
	Decoded      *Counter
	DecodeErrors *Counter
	// QueueDepth is jobs submitted but not yet picked up; BusyWorkers
	// the workers currently decoding; Workers the pool size.
	QueueDepth  *Gauge
	BusyWorkers *Gauge
	Workers     *Gauge
	DecodeNs    *Histogram
	// BatchWindows is the windows-per-dispatch distribution of the
	// batch-forming worker path; BatchFillPct the same dispatch sizes as
	// a percentage of the configured batch capacity (100 = every slot
	// filled) — together they show how full opportunistic batches
	// actually run.
	BatchWindows *Histogram
	BatchFillPct *Histogram
	// Solver tracks the convergence behaviour of the decodes this
	// gateway runs (solver.*).
	Solver *SolverMetrics
	Stages *StageSet
}

// NewGatewayMetrics registers the gateway metric family (gateway.*).
func NewGatewayMetrics(reg *Registry, stages *StageSet) *GatewayMetrics {
	return &GatewayMetrics{
		Submitted:    reg.Counter("gateway.submitted"),
		Decoded:      reg.Counter("gateway.decoded"),
		DecodeErrors: reg.Counter("gateway.decode_errors"),
		QueueDepth:   reg.Gauge("gateway.queue.depth"),
		BusyWorkers:  reg.Gauge("gateway.workers.busy"),
		Workers:      reg.Gauge("gateway.workers.total"),
		DecodeNs:     reg.Histogram("gateway.decode.ns"),
		BatchWindows: reg.Histogram("gateway.batch.windows"),
		BatchFillPct: reg.Histogram("gateway.batch.fill_pct"),
		Solver:       NewSolverMetrics(reg),
		Stages:       stages,
	}
}

// SolverMetrics instruments the convergence-aware FISTA path: how many
// iterations reconstructions actually spend, how often the early exit
// and adaptive restarts fire, and how often a warm seed is used,
// dropped (reset) or rejected (cold fallback). Counters take plain
// scalars so this package stays dependency-free.
type SolverMetrics struct {
	// Solves counts reconstructions; WarmSolves the subset seeded from a
	// previous window; EarlyExits those that stopped before the
	// iteration budget; Restarts the adaptive momentum restarts summed
	// over all solves; ColdFallbacks warm solves that diverged and were
	// redone cold; WarmResets explicit warm-state invalidations (stream
	// reset or sequence gap).
	Solves        *Counter
	WarmSolves    *Counter
	EarlyExits    *Counter
	Restarts      *Counter
	ColdFallbacks *Counter
	WarmResets    *Counter
	// Iters is the iterations-to-converge distribution, one observation
	// per reconstruction.
	Iters *Histogram
}

// NewSolverMetrics registers the solver metric family (solver.*).
func NewSolverMetrics(reg *Registry) *SolverMetrics {
	return &SolverMetrics{
		Solves:        reg.Counter("solver.solves"),
		WarmSolves:    reg.Counter("solver.warm_solves"),
		EarlyExits:    reg.Counter("solver.early_exits"),
		Restarts:      reg.Counter("solver.restarts"),
		ColdFallbacks: reg.Counter("solver.cold_fallbacks"),
		WarmResets:    reg.Counter("solver.warm_resets"),
		Iters:         reg.Histogram("solver.iters"),
	}
}

// Record observes one reconstruction's convergence stats. Nil-safe and
// allocation-free.
func (s *SolverMetrics) Record(iters, restarts int, earlyExit, warm, coldFallback bool) {
	if s == nil {
		return
	}
	s.Solves.Inc()
	if iters >= 0 {
		s.Iters.Observe(uint64(iters))
	}
	if restarts > 0 {
		s.Restarts.Add(uint64(restarts))
	}
	if earlyExit {
		s.EarlyExits.Inc()
	}
	if warm {
		s.WarmSolves.Inc()
	}
	if coldFallback {
		s.ColdFallbacks.Inc()
	}
}

// RecordReset counts one warm-state invalidation. Nil-safe.
func (s *SolverMetrics) RecordReset() {
	if s == nil {
		return
	}
	s.WarmResets.Inc()
}

// NetGWMetrics instruments the networked gateway (internal/netgw):
// connection and session churn, the shed/corrupt/rewind counters of the
// backpressure protocol, per-session inbox pressure and the drain
// latency of a graceful shutdown.
type NetGWMetrics struct {
	// ConnsAccepted/ConnsClosed count transport connections;
	// ProtocolErrors counts connections dropped for framing or handshake
	// violations (bad magic, oversized frames, data before Hello).
	ConnsAccepted  *Counter
	ConnsClosed    *Counter
	ProtocolErrors *Counter
	// SessionsActive is the live session-actor count;
	// Started/Finished/Expired count session lifecycle edges and Panics
	// the actors that died to an isolated panic.
	SessionsActive   *Gauge
	SessionsStarted  *Counter
	SessionsFinished *Counter
	SessionsExpired  *Counter
	SessionPanics    *Counter
	// Resumes counts re-attaches of an existing session (reconnects);
	// FramesRx all data frames read off the wire; FramesCorrupt the ones
	// the link CRC rejected; FramesShed the ones dropped because a
	// session inbox was full; Rewinds the go-back-N acks those two
	// triggered; Delivered the windows handed to a receiver in order.
	Resumes       *Counter
	FramesRx      *Counter
	FramesCorrupt *Counter
	FramesShed    *Counter
	Rewinds       *Counter
	Delivered     *Counter
	// InboxDepth is the summed depth of all session inboxes — the
	// server-side backpressure gauge (High() is the watermark).
	InboxDepth *Gauge
	// DrainNs is the duration of the last graceful drain.
	DrainNs *Gauge
	// Attaches counts every connection→session attach (first attach plus
	// every resume); ResumeHits the resumes that found delivered windows
	// to skip (resume-on-reconnect actually saving work); Evictions the
	// sessions removed through the control plane; IdleCuts the
	// connections cut by the slowloris idle timeout.
	Attaches   *Counter
	ResumeHits *Counter
	Evictions  *Counter
	IdleCuts   *Counter
}

// NewNetGWMetrics registers the networked-gateway family (netgw.*).
func NewNetGWMetrics(reg *Registry) *NetGWMetrics {
	return &NetGWMetrics{
		ConnsAccepted:    reg.Counter("netgw.conns.accepted"),
		ConnsClosed:      reg.Counter("netgw.conns.closed"),
		ProtocolErrors:   reg.Counter("netgw.protocol_errors"),
		SessionsActive:   reg.Gauge("netgw.sessions.active"),
		SessionsStarted:  reg.Counter("netgw.sessions.started"),
		SessionsFinished: reg.Counter("netgw.sessions.finished"),
		SessionsExpired:  reg.Counter("netgw.sessions.expired"),
		SessionPanics:    reg.Counter("netgw.sessions.panics"),
		Resumes:          reg.Counter("netgw.resumes"),
		FramesRx:         reg.Counter("netgw.frames.rx"),
		FramesCorrupt:    reg.Counter("netgw.frames.corrupt"),
		FramesShed:       reg.Counter("netgw.frames.shed"),
		Rewinds:          reg.Counter("netgw.rewinds"),
		Delivered:        reg.Counter("netgw.windows.delivered"),
		InboxDepth:       reg.Gauge("netgw.inbox.depth"),
		DrainNs:          reg.Gauge("netgw.drain_ns"),
		Attaches:         reg.Counter("netgw.attaches"),
		ResumeHits:       reg.Counter("netgw.resume_hits"),
		Evictions:        reg.Counter("netgw.sessions.evicted"),
		IdleCuts:         reg.Counter("netgw.conns.idle_cuts"),
	}
}

// FleetMetrics instruments fleet.Engine: population rollups plus lazy
// per-shard patient counters.
type FleetMetrics struct {
	reg *Registry
	// PatientsDone counts completed patient simulations; the histograms
	// are per-patient rollups in scaled integer units (permille for the
	// ratios, PRD in hundredths of a percent, energy in µJ).
	PatientsDone     *Counter
	EventsTotal      *Counter
	DeliveryPermille *Histogram
	SePermille       *Histogram
	PPVPermille      *Histogram
	PRDCentiPct      *Histogram
	PatientMicroJ    *Histogram
	RadioEnergyJ     *FloatCounter
	// RTFMilli is the last run's real-time factor ×1000.
	RTFMilli *Gauge

	mu     sync.Mutex
	shards map[int]*Counter
}

// NewFleetMetrics registers the fleet metric family (fleet.*).
func NewFleetMetrics(reg *Registry) *FleetMetrics {
	return &FleetMetrics{
		reg:              reg,
		PatientsDone:     reg.Counter("fleet.patients.done"),
		EventsTotal:      reg.Counter("fleet.events"),
		DeliveryPermille: reg.Histogram("fleet.patient.delivery_permille"),
		SePermille:       reg.Histogram("fleet.patient.se_permille"),
		PPVPermille:      reg.Histogram("fleet.patient.ppv_permille"),
		PRDCentiPct:      reg.Histogram("fleet.patient.prd_centipct"),
		PatientMicroJ:    reg.Histogram("fleet.patient.radio_uj"),
		RadioEnergyJ:     reg.FloatCounter("fleet.radio.energy_j"),
		RTFMilli:         reg.Gauge("fleet.rtf_milli"),
	}
}

// FleetBatch is the bounded fan-in recorder for population-scale runs:
// one batch per shard worker accumulates the per-patient rollups
// locally and folds them into the shared FleetMetrics in one Flush per
// scheduling slice. At a million patients the per-patient atomic
// observes would serialize every worker through the same few
// cachelines; batching keeps recording worker-local while the flushed
// totals stay exactly equal to per-patient recording. Not safe for
// concurrent use — one batch per worker.
type FleetBatch struct {
	fm       *FleetMetrics
	shard    *Counter
	patients uint64
	events   uint64
	radioJ   float64
	delivery *HistogramBatch
	se       *HistogramBatch
	ppv      *HistogramBatch
	prd      *HistogramBatch
	microJ   *HistogramBatch
}

// NewBatch returns a local rollup batch for one shard worker. Nil-safe:
// a nil FleetMetrics yields a nil batch whose methods are no-ops.
func (f *FleetMetrics) NewBatch(shard int) *FleetBatch {
	if f == nil {
		return nil
	}
	return &FleetBatch{
		fm:       f,
		shard:    f.Shard(shard),
		delivery: f.DeliveryPermille.Batch(),
		se:       f.SePermille.Batch(),
		ppv:      f.PPVPermille.Batch(),
		prd:      f.PRDCentiPct.Batch(),
		microJ:   f.PatientMicroJ.Batch(),
	}
}

// RecordPatient accumulates one completed patient session. The ratio
// arguments are pre-scaled integers (permille / centi-percent / µJ)
// with negative values meaning "not applicable" (NaN score, no radio
// hop).
func (b *FleetBatch) RecordPatient(events uint64, radioJ float64, deliveryPermille, sePermille, ppvPermille, prdCentiPct, microJ int64) {
	if b == nil {
		return
	}
	b.patients++
	b.events += events
	b.radioJ += radioJ
	if deliveryPermille >= 0 {
		b.delivery.Observe(uint64(deliveryPermille))
	}
	if sePermille >= 0 {
		b.se.Observe(uint64(sePermille))
	}
	if ppvPermille >= 0 {
		b.ppv.Observe(uint64(ppvPermille))
	}
	if prdCentiPct >= 0 {
		b.prd.Observe(uint64(prdCentiPct))
	}
	if microJ >= 0 {
		b.microJ.Observe(uint64(microJ))
	}
}

// Flush folds the batch into the shared fleet metrics and clears it for
// reuse.
func (b *FleetBatch) Flush() {
	if b == nil || b.patients == 0 {
		return
	}
	b.fm.PatientsDone.Add(b.patients)
	b.fm.EventsTotal.Add(b.events)
	b.shard.Add(b.patients)
	if b.radioJ != 0 {
		b.fm.RadioEnergyJ.Add(b.radioJ)
	}
	b.delivery.Flush()
	b.se.Flush()
	b.ppv.Flush()
	b.prd.Flush()
	b.microJ.Flush()
	b.patients, b.events, b.radioJ = 0, 0, 0
}

// Shard returns shard i's completed-patients counter
// (fleet.shard.<i>.patients), creating it on first use. Cold path: one
// lookup per patient.
func (f *FleetMetrics) Shard(i int) *Counter {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shards == nil {
		f.shards = make(map[int]*Counter)
	}
	c, ok := f.shards[i]
	if !ok {
		c = f.reg.Counter(fmt.Sprintf("fleet.shard.%02d.patients", i))
		f.shards[i] = c
	}
	return c
}

// ModeEvent is one recorded degradation-ladder transition.
type ModeEvent struct {
	At       int     `json:"at"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	FromName string  `json:"from_name"`
	ToName   string  `json:"to_name"`
	Quality  float64 `json:"quality"`
}

// modeEventRing bounds the kept transition history.
const modeEventRing = 256

// ModeMetrics instruments core.ModeController: one counter per ladder
// edge, the current-mode gauge and a bounded event history. Mode names
// are supplied by the caller so this package stays dependency-free.
type ModeMetrics struct {
	names []string
	// Transitions counts every mode change; Current is the mode index
	// after the latest change.
	Transitions *Counter
	Current     *Gauge
	edges       [][]*Counter

	mu     sync.Mutex
	events []ModeEvent
	next   int
	filled bool
}

// NewModeMetrics registers the mode metric family (mode.*): edge
// counters are pre-registered for every adjacent mode pair in both
// directions, so /metrics exposes the full ladder before any
// transition fires.
func NewModeMetrics(reg *Registry, names []string) *ModeMetrics {
	m := &ModeMetrics{
		names:       names,
		Transitions: reg.Counter("mode.transitions"),
		Current:     reg.Gauge("mode.current"),
		edges:       make([][]*Counter, len(names)),
	}
	for i := range m.edges {
		m.edges[i] = make([]*Counter, len(names))
	}
	for i := 0; i+1 < len(names); i++ {
		m.edges[i][i+1] = reg.Counter("mode.edge." + names[i] + "->" + names[i+1])
		m.edges[i+1][i] = reg.Counter("mode.edge." + names[i+1] + "->" + names[i])
	}
	return m
}

// Edge returns the counter of the from→to ladder edge (nil when out of
// range or non-adjacent).
func (m *ModeMetrics) Edge(from, to int) *Counter {
	if m == nil || from < 0 || to < 0 || from >= len(m.edges) || to >= len(m.edges) {
		return nil
	}
	return m.edges[from][to]
}

// RecordTransition logs one ladder transition.
func (m *ModeMetrics) RecordTransition(at, from, to int, quality float64) {
	if m == nil {
		return
	}
	m.Transitions.Inc()
	m.Current.Set(int64(to))
	m.Edge(from, to).Inc()
	ev := ModeEvent{At: at, From: from, To: to, Quality: quality}
	if from >= 0 && from < len(m.names) {
		ev.FromName = m.names[from]
	}
	if to >= 0 && to < len(m.names) {
		ev.ToName = m.names[to]
	}
	m.mu.Lock()
	if len(m.events) < modeEventRing {
		m.events = append(m.events, ev)
	} else {
		m.events[m.next] = ev
		m.filled = true
	}
	m.next = (m.next + 1) % modeEventRing
	m.mu.Unlock()
}

// Events returns the recorded transitions, oldest first (bounded by the
// ring size).
func (m *ModeMetrics) Events() []ModeEvent {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.filled {
		out := make([]ModeEvent, len(m.events))
		copy(out, m.events)
		return out
	}
	out := make([]ModeEvent, 0, modeEventRing)
	for i := 0; i < modeEventRing; i++ {
		out = append(out, m.events[(m.next+i)%modeEventRing])
	}
	return out
}

// Set bundles one registry with every layer's metric family — the
// one-stop wiring object callers hand to fleet.Config.Telemetry or
// attach layer by layer.
type Set struct {
	Registry *Registry
	Tracer   *Tracer
	Stages   *StageSet
	Node     *NodeMetrics
	Link     *LinkMetrics
	Gateway  *GatewayMetrics
	// Solver aliases Gateway.Solver — the convergence family lives with
	// the decoding side.
	Solver *SolverMetrics
	Fleet  *FleetMetrics
	NetGW  *NetGWMetrics
	// Runtime mirrors process health (heap residency, goroutines) into
	// /metrics; the gauges refresh on every snapshot.
	Runtime *RuntimeMetrics
	// Trace is the end-to-end window-trace collector (per-session span
	// rings plus the recent/slowest exemplar stores) served by /traces.
	Trace *trace.Collector
}

// traceRingSpans sizes the Set's trace ring.
const traceRingSpans = 4096

// Window-trace collector defaults: per-session in-flight ring, recent
// completed-window ring, and slowest-N exemplar reservoir.
const (
	traceWindowRing  = 256
	traceRecentTrees = 64
	traceSlowestN    = 8
)

// NewSet builds the full metric family over one registry and attaches
// the trace ring to it.
func NewSet(reg *Registry) *Set {
	tracer := NewTracer(traceRingSpans)
	reg.AttachTracer(tracer)
	stages := NewStageSet(reg, tracer)
	gw := NewGatewayMetrics(reg, stages)
	return &Set{
		Registry: reg,
		Tracer:   tracer,
		Stages:   stages,
		Node:     NewNodeMetrics(reg, stages),
		Link:     NewLinkMetrics(reg, stages),
		Gateway:  gw,
		Solver:   gw.Solver,
		Fleet:    NewFleetMetrics(reg),
		NetGW:    NewNetGWMetrics(reg),
		Runtime:  NewRuntimeMetrics(reg),
		Trace:    trace.New(traceWindowRing, traceRecentTrees, traceSlowestN),
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Get-or-create lookups take
// a mutex and may allocate — layers resolve their metric pointers once
// at attach time, so the mutex never appears on a hot path. Snapshot
// and the JSON renderers are read-side and allocate freely.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	fcounters map[string]*FloatCounter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	tracer    *Tracer
	// collectors run at the start of every Snapshot, before the metric
	// maps are read — the hook that lets lazily-sampled families
	// (runtime.MemStats gauges) refresh exactly when a scraper looks.
	collectors []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		fcounters: make(map[string]*FloatCounter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first
// use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fcounters[name]
	if !ok {
		f = &FloatCounter{}
		r.fcounters[name] = f
	}
	return f
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AttachTracer includes the tracer's recent spans in snapshots.
func (r *Registry) AttachTracer(t *Tracer) {
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// AddCollector registers a hook that runs before every Snapshot.
// Collectors refresh pull-style metrics (runtime gauges) so scrapers
// always read current values; they must be cheap and must not call
// back into Snapshot.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// GaugeSnapshot is the read-side view of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// Snapshot is one consistent-enough copy of every registered metric,
// shaped for JSON rendering (map keys sort on marshal, so output is
// stable).
type Snapshot struct {
	TakenUnixNs int64                        `json:"taken_unix_ns"`
	Counters    map[string]uint64            `json:"counters"`
	Floats      map[string]float64           `json:"floats"`
	Gauges      map[string]GaugeSnapshot     `json:"gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
	Trace       []Span                       `json:"trace,omitempty"`
}

// traceSnapshotSpans bounds how many ring spans a snapshot carries.
const traceSnapshotSpans = 128

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	collectors := r.collectors
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		Counters:    make(map[string]uint64, len(r.counters)),
		Floats:      make(map[string]float64, len(r.fcounters)),
		Gauges:      make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, f := range r.fcounters {
		s.Floats[name] = f.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), High: g.High()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	s.Trace = r.tracer.Snapshot(traceSnapshotSpans)
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

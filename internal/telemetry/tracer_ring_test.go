package telemetry

import (
	"sync"
	"testing"
)

// TestTracerWraparoundOrdering drives the ring well past capacity and
// checks that Snapshot returns exactly the newest ring-full of spans,
// oldest first, with no stale or duplicated slots.
func TestTracerWraparoundOrdering(t *testing.T) {
	const size = 16 // NewTracer's minimum
	tr := NewTracer(size)
	const total = size*3 + 5 // strictly past capacity, misaligned on purpose
	for i := 0; i < total; i++ {
		tr.Record(StageCS, int64(i), int64(1000+i), int64(i))
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	snap := tr.Snapshot(size * 2) // asking past capacity returns one ring-full
	if len(snap) != size {
		t.Fatalf("snapshot len = %d, want %d", len(snap), size)
	}
	for i, s := range snap {
		want := int64(total - size + i)
		if s.At != want {
			t.Fatalf("snapshot[%d].At = %d, want %d (not oldest-first after wrap)", i, s.At, want)
		}
		if s.StartNs != 1000+want || s.DurNs != want {
			t.Fatalf("snapshot[%d] slot mixed: %+v", i, s)
		}
		if s.StageName != StageCS.String() {
			t.Fatalf("snapshot[%d] stage name %q", i, s.StageName)
		}
	}
	// A bounded snapshot still ends at the newest span.
	tail := tr.Snapshot(4)
	if len(tail) != 4 || tail[3].At != total-1 || tail[0].At != total-4 {
		t.Fatalf("bounded snapshot: %+v", tail)
	}
}

// TestTracerConcurrentRecord races many writers against snapshot
// readers (run with -race in CI) and then checks every slot survived
// with internally consistent fields — a torn multi-word slot write
// would mix one writer's At with another's StartNs.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Encode the writer in every field so torn writes are
				// detectable: At == StartNs == DurNs for each span.
				v := int64(wtr*perWriter + i)
				tr.Record(Stage(wtr%NumStages), v, v, v)
			}
		}(wtr)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range tr.Snapshot(64) {
					if s.At != s.StartNs || s.At != s.DurNs {
						panic("torn span observed mid-run")
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if got := tr.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d (lost records under contention)", got, writers*perWriter)
	}
	for _, s := range tr.Snapshot(64) {
		if s.At != s.StartNs || s.At != s.DurNs {
			t.Fatalf("torn span in final ring: %+v", s)
		}
	}
}

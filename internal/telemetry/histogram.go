package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds values whose
// bit length is i, i.e. bucket 0 is exactly 0 and bucket i (i ≥ 1)
// covers [2^(i-1), 2^i − 1]. 65 buckets span the whole uint64 range,
// so no configuration, no resizing and no allocation ever happens on
// the record path.
const histBuckets = 65

// Histogram is a lock-free fixed-bucket power-of-two histogram for
// latencies (nanoseconds) and sizes (bytes). Recording is four atomic
// operations; Snapshot assembles a consistent-enough view for
// monitoring (buckets are read without a barrier, so a snapshot taken
// mid-record may be off by the in-flight sample — acceptable for
// observability, and the price of a hot path with no locks).
// The zero value is ready to use; write methods are nil-safe.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as value+1 so 0 means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		m := h.min.Load()
		if m != 0 && v+1 >= m || h.min.CompareAndSwap(m, v+1) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a latency.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// saturationBucket is the index of the final bucket, covering
// [2^63, 2^64-1]. No honest measurement lands there — a nanosecond
// duration of 2^63 is three centuries — so its occupancy flags a
// corrupted observation (most commonly a negative int64 cast to
// uint64). The soak watcher treats any saturated histogram as a
// failure signal.
const saturationBucket = histBuckets - 1

// Saturated returns the number of observations that landed in the
// overflow bucket (values ≥ 2^63).
func (h *Histogram) Saturated() uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[saturationBucket].Load()
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// were ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the read-side view of a histogram. Saturated is
// the overflow-bucket count (observations ≥ 2^63): always rendered,
// even at zero, so monitors can assert on its presence.
type HistogramSnapshot struct {
	Count     uint64   `json:"count"`
	Sum       uint64   `json:"sum"`
	Min       uint64   `json:"min"`
	Max       uint64   `json:"max"`
	Mean      float64  `json:"mean"`
	P50       uint64   `json:"p50"`
	P90       uint64   `json:"p90"`
	P99       uint64   `json:"p99"`
	Saturated uint64   `json:"saturated"`
	Buckets   []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	s.Max = h.max.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var counts [histBuckets]uint64
	for i := range counts {
		if n := h.buckets[i].Load(); n > 0 {
			counts[i] = n
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: n})
		}
	}
	s.Saturated = counts[saturationBucket]
	s.P50 = quantile(counts[:], s.Count, 0.50, s.Min, s.Max)
	s.P90 = quantile(counts[:], s.Count, 0.90, s.Min, s.Max)
	s.P99 = quantile(counts[:], s.Count, 0.99, s.Min, s.Max)
	return s
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// HistogramBatch accumulates observations locally — plain fields, no
// atomics — and folds them into a shared Histogram in one Flush. It is
// the bounded fan-in path for population-scale loops: a million
// per-patient observations from dozens of shard workers would otherwise
// contend on the same few cachelines, so each worker batches locally
// and flushes once per scheduling slice. The shared histogram's final
// contents are identical to per-observation recording (counts, sum,
// min/max and every bucket are additive); only the interleaving of the
// atomic adds changes. Not safe for concurrent use — one batch per
// worker.
type HistogramBatch struct {
	h       *Histogram
	count   uint64
	sum     uint64
	min     uint64 // value+1, 0 = unset (same convention as Histogram)
	max     uint64
	buckets [histBuckets]uint64
}

// Batch returns a local accumulator that flushes into h. A nil
// histogram yields a nil batch, whose methods are no-ops, so call sites
// thread optional telemetry without branching.
func (h *Histogram) Batch() *HistogramBatch {
	if h == nil {
		return nil
	}
	return &HistogramBatch{h: h}
}

// Observe records one value locally.
func (b *HistogramBatch) Observe(v uint64) {
	if b == nil {
		return
	}
	b.count++
	b.sum += v
	b.buckets[bits.Len64(v)]++
	if b.min == 0 || v+1 < b.min {
		b.min = v + 1
	}
	if v > b.max {
		b.max = v
	}
}

// Flush folds the batch into the shared histogram and clears it for
// reuse.
func (b *HistogramBatch) Flush() {
	if b == nil || b.count == 0 {
		return
	}
	h := b.h
	h.count.Add(b.count)
	h.sum.Add(b.sum)
	for i := range b.buckets {
		if n := b.buckets[i]; n > 0 {
			h.buckets[i].Add(n)
			b.buckets[i] = 0
		}
	}
	for {
		m := h.min.Load()
		if m != 0 && b.min >= m || h.min.CompareAndSwap(m, b.min) {
			break
		}
	}
	for {
		m := h.max.Load()
		if b.max <= m || h.max.CompareAndSwap(m, b.max) {
			break
		}
	}
	b.count, b.sum, b.min, b.max = 0, 0, 0, 0
}

// quantile estimates the q-quantile from the bucket counts: it walks to
// the bucket containing the rank and reports that bucket's upper bound,
// clamped to the observed min/max so single-bucket histograms stay
// exact-ish.
func quantile(counts []uint64, total uint64, q float64, lo, hi uint64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum > rank {
			u := bucketUpper(i)
			if u < lo {
				u = lo
			}
			if hi > 0 && u > hi {
				u = hi
			}
			return u
		}
	}
	return hi
}

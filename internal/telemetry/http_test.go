package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServeMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	set := NewSet(reg)
	set.Link.Retransmissions.Add(3)
	set.Gateway.QueueDepth.Set(2)
	set.Stages.Record(StageCS, 0, 1, 1500)
	set.Link.RadioEnergyJ.Add(0.012)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("invalid /metrics JSON: %v", err)
	}
	if snap.Counters["link.retransmissions"] != 3 {
		t.Errorf("retx counter %d", snap.Counters["link.retransmissions"])
	}
	if snap.Gauges["gateway.queue.depth"].Value != 2 {
		t.Errorf("queue gauge %+v", snap.Gauges["gateway.queue.depth"])
	}
	if h := snap.Histograms["pipeline.stage.cs.ns"]; h.Count != 1 {
		t.Errorf("cs stage histogram %+v", h)
	}
	if snap.Floats["link.radio.energy_j"] != 0.012 {
		t.Errorf("radio energy %v", snap.Floats["link.radio.energy_j"])
	}
	if len(snap.Trace) != 1 {
		t.Errorf("trace spans %d, want 1", len(snap.Trace))
	}

	// The expvar and pprof surfaces respond too.
	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		r, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
	}
}

// Shutdown must let an in-flight scrape finish, refuse new connections,
// and stay callable twice without panicking.
func TestServerShutdownDrains(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.shutdown").Add(7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// Open a scrape, then shut down while its response may still be in
	// flight; the request must complete with the full JSON body.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("in-flight scrape: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["test.shutdown"] != 7 {
		t.Errorf("scrape during shutdown returned %d, want 7", snap.Counters["test.shutdown"])
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The listener is gone: new scrapes must fail.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("scrape after Shutdown succeeded, want connection error")
	}

	// Second Shutdown and Close after Shutdown are safe no-ops.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck — must simply not panic
	srv.Close()       //nolint:errcheck
}

func TestServeTwiceDoesNotPanic(t *testing.T) {
	// expvar registration is global and panics on duplicates; Serve must
	// absorb repeated use (tests, multiple runs in one process).
	a, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
}

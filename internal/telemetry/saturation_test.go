package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// TestHistogramSaturationVisible overflows a histogram into the final
// bucket and asserts the saturation is explicit at every read level:
// the accessor, the snapshot struct and the rendered /metrics JSON.
// Saturation (an observation ≥ 2^63, i.e. a negative duration cast to
// uint64 or similar corruption) is a soak failure signal, so it must
// never be inferable only from bucket archaeology.
func TestHistogramSaturationVisible(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.saturating")
	h.Observe(17)
	if h.Saturated() != 0 {
		t.Fatalf("clean histogram reports saturated=%d", h.Saturated())
	}
	if s := h.Snapshot(); s.Saturated != 0 {
		t.Fatalf("clean snapshot saturated=%d", s.Saturated)
	}

	h.Observe(1 << 63)            // smallest saturating value
	h.Observe(math.MaxUint64)     // the classic: uint64(-1)
	h.Observe(uint64(1<<63) + 42) // anywhere in the top bucket
	if got := h.Saturated(); got != 3 {
		t.Fatalf("saturated=%d, want 3", got)
	}
	s := h.Snapshot()
	if s.Saturated != 3 {
		t.Fatalf("snapshot saturated=%d, want 3", s.Saturated)
	}
	if s.Count != 4 {
		t.Fatalf("count=%d, want 4", s.Count)
	}

	// The JSON a scraper reads must carry the field — and carry it even
	// for unsaturated histograms, so watchers can assert on presence.
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"saturated": 3`) {
		t.Errorf("rendered JSON lacks saturated count:\n%s", buf.String())
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["test.saturating"].Saturated != 3 {
		t.Errorf("round-tripped snapshot saturated=%d, want 3",
			snap.Histograms["test.saturating"].Saturated)
	}
	reg.Histogram("test.clean").Observe(1)
	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"saturated": 0`) {
		t.Errorf("unsaturated histogram omits the saturated field:\n%s", buf.String())
	}
}

// TestHistogramBatchEquivalence drives the same observation stream
// through direct recording and through a HistogramBatch and asserts the
// final snapshots are identical — the bounded fan-in path must change
// scheduling, never contents.
func TestHistogramBatchEquivalence(t *testing.T) {
	direct := &Histogram{}
	batched := &Histogram{}
	b := batched.Batch()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63n(1 << uint(rng.Intn(40))))
		direct.Observe(v)
		b.Observe(v)
		if i%257 == 0 {
			b.Flush() // interleave partial flushes
		}
	}
	b.Flush()
	ds, bs := direct.Snapshot(), batched.Snapshot()
	if ds.Count != bs.Count || ds.Sum != bs.Sum || ds.Min != bs.Min || ds.Max != bs.Max {
		t.Fatalf("summary diverged: direct %+v batched %+v", ds, bs)
	}
	if len(ds.Buckets) != len(bs.Buckets) {
		t.Fatalf("bucket shapes diverged: %d vs %d", len(ds.Buckets), len(bs.Buckets))
	}
	for i := range ds.Buckets {
		if ds.Buckets[i] != bs.Buckets[i] {
			t.Errorf("bucket %d: direct %+v batched %+v", i, ds.Buckets[i], bs.Buckets[i])
		}
	}
	// Nil-safety: a nil batch swallows everything.
	var nb *HistogramBatch
	nb.Observe(1)
	nb.Flush()
}

// TestFleetBatchEquivalence checks the fleet rollup batch: totals after
// Flush equal per-patient direct recording.
func TestFleetBatchEquivalence(t *testing.T) {
	regD, regB := NewRegistry(), NewRegistry()
	fmD, fmB := NewFleetMetrics(regD), NewFleetMetrics(regB)
	batch := fmB.NewBatch(3)
	for p := 0; p < 100; p++ {
		ev, dj := uint64(10+p), float64(p)*1e-4
		fmD.PatientsDone.Inc()
		fmD.EventsTotal.Add(ev)
		fmD.Shard(3).Inc()
		fmD.DeliveryPermille.Observe(uint64(900 + p%100))
		fmD.SePermille.Observe(uint64(950))
		fmD.RadioEnergyJ.Add(dj)
		batch.RecordPatient(ev, dj, int64(900+p%100), 950, -1, -1, -1)
	}
	batch.Flush()
	if fmD.PatientsDone.Value() != fmB.PatientsDone.Value() {
		t.Errorf("patients: %d vs %d", fmD.PatientsDone.Value(), fmB.PatientsDone.Value())
	}
	if fmD.EventsTotal.Value() != fmB.EventsTotal.Value() {
		t.Errorf("events: %d vs %d", fmD.EventsTotal.Value(), fmB.EventsTotal.Value())
	}
	if fmD.Shard(3).Value() != fmB.Shard(3).Value() {
		t.Errorf("shard counter: %d vs %d", fmD.Shard(3).Value(), fmB.Shard(3).Value())
	}
	if math.Abs(fmD.RadioEnergyJ.Value()-fmB.RadioEnergyJ.Value()) > 1e-12 {
		t.Errorf("energy: %g vs %g", fmD.RadioEnergyJ.Value(), fmB.RadioEnergyJ.Value())
	}
	d, b := fmD.DeliveryPermille.Snapshot(), fmB.DeliveryPermille.Snapshot()
	if d.Count != b.Count || d.Sum != b.Sum || d.Min != b.Min || d.Max != b.Max {
		t.Errorf("delivery histogram diverged: %+v vs %+v", d, b)
	}
	if fmB.PPVPermille.Count() != 0 {
		t.Errorf("negative (N/A) scores must not be observed")
	}
	var nilBatch *FleetBatch
	nilBatch.RecordPatient(1, 1, 1, 1, 1, 1, 1)
	nilBatch.Flush()
}

// TestRuntimeGauges asserts the runtime family lands in snapshots with
// live values and refreshes on every snapshot via the collector hook.
func TestRuntimeGauges(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	s := reg.Snapshot()
	heap, ok := s.Gauges["runtime.heap_inuse_bytes"]
	if !ok || heap.Value <= 0 {
		t.Fatalf("runtime.heap_inuse_bytes missing or zero: %+v", heap)
	}
	if g := s.Gauges["runtime.goroutines"]; g.Value < 1 {
		t.Fatalf("runtime.goroutines=%d", g.Value)
	}
	if g := s.Gauges["runtime.heap_sys_bytes"]; g.Value <= 0 {
		t.Fatalf("runtime.heap_sys_bytes=%d", g.Value)
	}

	// The collector must refresh values at snapshot time: allocate a
	// visible amount and check heap_objects moved without calling Update
	// ourselves.
	before := s.Gauges["runtime.total_alloc_mb"].Value
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1<<20)
	}
	runtime.KeepAlive(sink)
	after := reg.Snapshot().Gauges["runtime.total_alloc_mb"].Value
	if after < before+32 {
		t.Errorf("total_alloc_mb did not refresh on snapshot: %d -> %d", before, after)
	}
	rm.Update() // direct call is also allowed
}

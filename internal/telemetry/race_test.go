package telemetry

import (
	"sync"
	"testing"
)

// TestTelemetryRaceHammer drives every metric type from many writer
// goroutines while readers snapshot concurrently — the interleavings
// the fleet produces when shards, link sessions and gateway workers
// all record into one registry while /metrics is being scraped. Run
// under -race in CI.
func TestTelemetryRaceHammer(t *testing.T) {
	const (
		writers = 8
		rounds  = 400
	)
	reg := NewRegistry()
	set := NewSet(reg)
	mm := NewModeMetrics(reg, []string{"raw", "cs", "delineation"})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				set.Node.Samples.Add(uint64(i))
				set.Link.Retransmissions.Inc()
				set.Link.RadioEnergyJ.Add(1e-6)
				set.Gateway.QueueDepth.Add(1)
				set.Gateway.QueueDepth.Add(-1)
				set.Stages.Record(Stage(i%NumStages), int64(i), int64(i), int64(i%1024))
				set.Fleet.Shard(w % 4).Inc()
				set.Fleet.DeliveryPermille.Observe(uint64(i % 1001))
				mm.RecordTransition(i, i%2, (i+1)%2, 0.5)
				// Get-or-create races against other writers and readers.
				reg.Counter("hammer.shared").Inc()
			}
		}(w)
	}
	// Concurrent readers: snapshots, JSON rendering, summary lines.
	var rg sync.WaitGroup
	stopRead := make(chan struct{})
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				_ = reg.Snapshot()
				_ = SummaryLine(reg, "hammer.shared", "gateway.queue.depth")
				_ = set.Tracer.Snapshot(32)
				_ = mm.Events()
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	rg.Wait()

	if got := reg.Counter("hammer.shared").Value(); got != writers*rounds {
		t.Errorf("shared counter %d, want %d", got, writers*rounds)
	}
	if got := set.Link.Retransmissions.Value(); got != writers*rounds {
		t.Errorf("retransmissions %d, want %d", got, writers*rounds)
	}
	if got := set.Gateway.QueueDepth.Value(); got != 0 {
		t.Errorf("queue depth %d, want 0 after balanced adds", got)
	}
	if hi := set.Gateway.QueueDepth.High(); hi < 1 {
		t.Errorf("queue high watermark %d, want >= 1", hi)
	}
	total := uint64(0)
	for s := 0; s < NumStages; s++ {
		total += set.Stages.Stage(Stage(s)).Count()
	}
	if total != writers*rounds {
		t.Errorf("stage observations %d, want %d", total, writers*rounds)
	}
	if mm.Transitions.Value() != writers*rounds {
		t.Errorf("transitions %d, want %d", mm.Transitions.Value(), writers*rounds)
	}
}

package telemetry

import "runtime"

// RuntimeMetrics mirrors the process health figures a long-horizon soak
// watches — heap residency, allocation churn and goroutine count — into
// the ordinary gauge namespace, so the soak watcher reads leak signals
// from the same /metrics endpoint as every domain metric instead of
// scraping a second source. The gauges refresh through a registry
// collector immediately before every snapshot; between snapshots they
// hold the last collected values.
type RuntimeMetrics struct {
	// HeapInuse/HeapSys are runtime.MemStats.HeapInuse/HeapSys in bytes;
	// HeapObjects the live object count; TotalAllocMB the cumulative
	// allocation volume in MiB (monotonic — its growth rate is the churn
	// signal); Goroutines the current goroutine count; GCCycles the
	// completed GC count.
	HeapInuse    *Gauge
	HeapSys      *Gauge
	HeapObjects  *Gauge
	TotalAllocMB *Gauge
	Goroutines   *Gauge
	GCCycles     *Gauge
}

// NewRuntimeMetrics registers the runtime metric family (runtime.*) and
// installs the snapshot-time collector that refreshes it.
func NewRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	r := &RuntimeMetrics{
		HeapInuse:    reg.Gauge("runtime.heap_inuse_bytes"),
		HeapSys:      reg.Gauge("runtime.heap_sys_bytes"),
		HeapObjects:  reg.Gauge("runtime.heap_objects"),
		TotalAllocMB: reg.Gauge("runtime.total_alloc_mb"),
		Goroutines:   reg.Gauge("runtime.goroutines"),
		GCCycles:     reg.Gauge("runtime.gc_cycles"),
	}
	reg.AddCollector(r.Update)
	r.Update()
	return r
}

// Update reads runtime.ReadMemStats and refreshes the gauges. Called
// automatically before every registry snapshot; callers may also invoke
// it directly (ReadMemStats stops the world for microseconds, so it
// must never sit on a per-event path).
func (r *RuntimeMetrics) Update() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapInuse.Set(int64(ms.HeapInuse))
	r.HeapSys.Set(int64(ms.HeapSys))
	r.HeapObjects.Set(int64(ms.HeapObjects))
	r.TotalAllocMB.Set(int64(ms.TotalAlloc >> 20))
	r.Goroutines.Set(int64(runtime.NumGoroutine()))
	r.GCCycles.Set(int64(ms.NumGC))
}

package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Ring is one session's preallocated window-trace store. Each in-flight
// window occupies the slot indexed by its sequence number, so a ring
// sized past the transport's reordering horizon never evicts a live
// window. Recording is a mutex acquire plus field stores — zero
// allocations in steady state (enforced by TestRecordPathZeroAllocs).
//
// All methods are nil-safe on the receiver: layers hold a *Ring and
// record unconditionally, paying nothing when tracing is detached.
type Ring struct {
	c       *Collector
	session uint64
	mu      sync.Mutex
	slots   []Window
}

// Record stores span kind for window id. Recording KindDeliver marks
// the window complete and publishes a copy to the collector's recent
// ring and slowest-N reservoir.
func (r *Ring) Record(id ID, kind Kind, startNs, durNs int64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	w := r.slot(id)
	w.set(kind, Span{StartNs: startNs, DurNs: durNs})
	r.finish(w, kind)
	r.mu.Unlock()
}

// RecordLink stores the node-side ARQ span with its delivery
// annotations (cumulative transmission attempts and radio energy in
// nanojoules). Safe to call repeatedly for one window; the last call
// before gateway delivery wins.
func (r *Ring) RecordLink(id ID, startNs, durNs int64, attempts int, radioNJ uint64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	w := r.slot(id)
	w.set(KindLink, Span{StartNs: startNs, DurNs: durNs})
	w.Attempts = satU16(attempts)
	w.RadioNJ = radioNJ
	r.mu.Unlock()
}

// RecordDecode stores the reconstruction span with its solver
// annotations (iterations run, windows in the dispatched batch).
func (r *Ring) RecordDecode(id ID, startNs, durNs int64, iters, batch int) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	w := r.slot(id)
	w.set(KindDecode, Span{StartNs: startNs, DurNs: durNs})
	w.Iters = satU16(iters)
	w.Batch = satU16(batch)
	r.mu.Unlock()
}

// Window returns a copy of the window currently traced under id, and
// whether one exists. Read side (tests, debugging).
func (r *Ring) Window(id ID) (Window, bool) {
	if r == nil || id == 0 {
		return Window{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &r.slots[uint32(id.Seq())%uint32(len(r.slots))]
	if w.ID != id {
		return Window{}, false
	}
	return *w, true
}

// slot returns the window for id, claiming (and if necessary evicting)
// its slot. Caller holds r.mu.
func (r *Ring) slot(id ID) *Window {
	w := &r.slots[uint32(id.Seq())%uint32(len(r.slots))]
	if w.ID != id {
		if w.ID != 0 && !w.Complete() {
			// A live window outran the ring (sequence gap wider than the
			// ring) — count the loss instead of mixing two windows' spans.
			r.c.dropped.Add(1)
		}
		*w = Window{ID: id, Session: r.session}
	}
	return w
}

// finish publishes the window when kind completed it. Caller holds
// r.mu; the collector mutex nests inside ring mutexes (lock order
// Ring.mu → Collector.mu, never the reverse).
func (r *Ring) finish(w *Window, kind Kind) {
	if kind != KindDeliver {
		return
	}
	r.c.publish(w)
}

func satU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xffff {
		return 0xffff
	}
	return uint16(v)
}

// Collector owns the per-session rings and the completed-window
// exemplar stores: a recent ring (last R completed windows) and a
// slowest-N reservoir keyed by total attributed latency. Both are
// preallocated; publishing a completed window is copies and compares
// only.
type Collector struct {
	ringSize int

	mu       sync.Mutex
	sessions map[uint64]*Ring
	recent   []Window // preallocated ring, valid entries have ID != 0
	next     uint64   // total published; next%len(recent) is the write slot
	slowest  []Window // reservoir, first slowN entries valid
	slowN    int

	recorded atomic.Uint64
	dropped  atomic.Uint64
}

// New creates a collector. ringSize is the per-session in-flight
// window capacity (clamped to ≥ 64, comfortably past the transports'
// reorder horizons), recentSize the completed-window ring, slowestN
// the exemplar reservoir.
func New(ringSize, recentSize, slowestN int) *Collector {
	if ringSize < 64 {
		ringSize = 64
	}
	if recentSize < 1 {
		recentSize = 1
	}
	if slowestN < 1 {
		slowestN = 1
	}
	return &Collector{
		ringSize: ringSize,
		sessions: make(map[uint64]*Ring),
		recent:   make([]Window, recentSize),
		slowest:  make([]Window, slowestN),
	}
}

// Session returns the ring for session id, creating it on first use
// (cold path — steady-state recording never touches the collector map).
// Nil-safe: a nil collector yields a nil ring, and nil rings accept
// records as no-ops.
func (c *Collector) Session(id uint64) *Ring {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.sessions[id]
	if r == nil {
		r = &Ring{c: c, session: id, slots: make([]Window, c.ringSize)}
		c.sessions[id] = r
	}
	return r
}

// DropSession releases session id's ring (published exemplars are
// kept). Call when the owning session is evicted or expires.
func (c *Collector) DropSession(id uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.sessions, id)
	c.mu.Unlock()
}

// publish copies a completed window into the recent ring and, if slow
// enough, the reservoir. Called with the owning ring's mutex held.
func (c *Collector) publish(w *Window) {
	c.recorded.Add(1)
	total := w.TotalNs()
	c.mu.Lock()
	c.recent[c.next%uint64(len(c.recent))] = *w
	c.next++
	// Reservoir: fill first, then displace the current minimum. N is
	// small (default 8) so a linear scan beats heap bookkeeping.
	if c.slowN < len(c.slowest) {
		c.slowest[c.slowN] = *w
		c.slowN++
	} else {
		minI, minT := 0, c.slowest[0].TotalNs()
		for i := 1; i < c.slowN; i++ {
			if t := c.slowest[i].TotalNs(); t < minT {
				minI, minT = i, t
			}
		}
		if total > minT {
			c.slowest[minI] = *w
		}
	}
	c.mu.Unlock()
}

// TreeSpan is one span of a snapshot tree, with its kind-specific
// annotations (attempts/radio_nj on link, iters/batch on decode).
type TreeSpan struct {
	Kind     string `json:"kind"`
	StartNs  int64  `json:"start_ns"`
	DurNs    int64  `json:"dur_ns"`
	Attempts uint16 `json:"attempts,omitempty"`
	RadioNJ  uint64 `json:"radio_nj,omitempty"`
	Iters    uint16 `json:"iters,omitempty"`
	Batch    uint16 `json:"batch,omitempty"`
}

// Tree is one window's span tree, split into its node-side and
// gateway-side halves.
type Tree struct {
	Trace   string     `json:"trace"`
	Session uint64     `json:"session"`
	TotalNs int64      `json:"total_ns"`
	Node    []TreeSpan `json:"node"`
	Gateway []TreeSpan `json:"gateway"`
}

// Snapshot is the collector's read-side view, served by /traces.
type Snapshot struct {
	// Recorded counts completed (delivered) windows; Dropped counts
	// live windows evicted from a ring before completing.
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Recent   []Tree `json:"recent"`
	Slowest  []Tree `json:"slowest"`
}

// Snapshot renders the exemplar stores as JSON-ready trees: the recent
// ring oldest-first and the reservoir slowest-first. The read side
// allocates freely; only the record path is allocation-bound.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	var rec, slow []Window
	c.mu.Lock()
	n := c.next
	if n > uint64(len(c.recent)) {
		n = uint64(len(c.recent))
	}
	rec = make([]Window, 0, n)
	for i := uint64(0); i < n; i++ {
		rec = append(rec, c.recent[(c.next-n+i)%uint64(len(c.recent))])
	}
	slow = append(slow, c.slowest[:c.slowN]...)
	c.mu.Unlock()
	sort.Slice(slow, func(i, j int) bool { return slow[i].TotalNs() > slow[j].TotalNs() })
	s := Snapshot{
		Recorded: c.recorded.Load(),
		Dropped:  c.dropped.Load(),
		Recent:   make([]Tree, 0, len(rec)),
		Slowest:  make([]Tree, 0, len(slow)),
	}
	for i := range rec {
		s.Recent = append(s.Recent, buildTree(&rec[i]))
	}
	for i := range slow {
		s.Slowest = append(s.Slowest, buildTree(&slow[i]))
	}
	return s
}

// buildTree converts one completed window into its snapshot tree.
func buildTree(w *Window) Tree {
	t := Tree{Trace: w.ID.String(), Session: w.Session, TotalNs: w.TotalNs()}
	for k := 0; k < NumKinds; k++ {
		kind := Kind(k)
		if !w.Has(kind) {
			continue
		}
		ts := TreeSpan{Kind: kind.String(), StartNs: w.Spans[k].StartNs, DurNs: w.Spans[k].DurNs}
		switch kind {
		case KindLink:
			ts.Attempts, ts.RadioNJ = w.Attempts, w.RadioNJ
		case KindDecode:
			ts.Iters, ts.Batch = w.Iters, w.Batch
		}
		if kind.NodeSide() {
			t.Node = append(t.Node, ts)
		} else {
			t.Gateway = append(t.Gateway, ts)
		}
	}
	return t
}

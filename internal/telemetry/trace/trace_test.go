package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID(7, 12345)
	if id.Hi() != 7 || id.Seq() != 12345 {
		t.Fatalf("round trip: hi=%d seq=%d", id.Hi(), id.Seq())
	}
	if got, want := id.String(), "00000007-00003039"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if NewID(0, 0) != 0 {
		t.Fatal("zero parts must make the untraced ID")
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < NumKinds; k++ {
		name := Kind(k).String()
		if name == "unknown" || seen[name] {
			t.Fatalf("kind %d has bad/duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if !KindEncode.NodeSide() || !KindLink.NodeSide() {
		t.Fatal("encode/link must be node-side")
	}
	if KindIngest.NodeSide() || KindDeliver.NodeSide() {
		t.Fatal("ingest/deliver must be gateway-side")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	r := c.Session(1) // nil collector → nil ring
	if r != nil {
		t.Fatal("nil collector must hand out nil rings")
	}
	r.Record(NewID(1, 1), KindEncode, 0, 10)
	r.RecordLink(NewID(1, 1), 0, 10, 3, 99)
	r.RecordDecode(NewID(1, 1), 0, 10, 5, 4)
	if _, ok := r.Window(NewID(1, 1)); ok {
		t.Fatal("nil ring must not report windows")
	}
	c.DropSession(1)
	if s := c.Snapshot(); s.Recorded != 0 || len(s.Recent) != 0 {
		t.Fatalf("nil collector snapshot not empty: %+v", s)
	}
}

func TestEndToEndTree(t *testing.T) {
	c := New(64, 16, 4)
	r := c.Session(42)
	id := NewID(3, 9)
	r.Record(id, KindEncode, 100, 50)
	r.RecordLink(id, 150, 200, 2, 777)
	r.Record(id, KindIngest, 400, 30)
	r.Record(id, KindQueueWait, 430, 20)
	r.RecordDecode(id, 450, 500, 40, 8)
	r.Record(id, KindDeliver, 950, 10)

	s := c.Snapshot()
	if s.Recorded != 1 || s.Dropped != 0 {
		t.Fatalf("recorded=%d dropped=%d", s.Recorded, s.Dropped)
	}
	if len(s.Recent) != 1 || len(s.Slowest) != 1 {
		t.Fatalf("recent=%d slowest=%d", len(s.Recent), len(s.Slowest))
	}
	tr := s.Recent[0]
	if tr.Trace != id.String() || tr.Session != 42 {
		t.Fatalf("tree identity: %+v", tr)
	}
	if tr.TotalNs != 50+200+30+20+500+10 {
		t.Fatalf("total_ns = %d", tr.TotalNs)
	}
	if len(tr.Node) != 2 || len(tr.Gateway) != 4 {
		t.Fatalf("node=%d gateway=%d spans", len(tr.Node), len(tr.Gateway))
	}
	if tr.Node[1].Kind != "link" || tr.Node[1].Attempts != 2 || tr.Node[1].RadioNJ != 777 {
		t.Fatalf("link span annotations: %+v", tr.Node[1])
	}
	var decode *TreeSpan
	for i := range tr.Gateway {
		if tr.Gateway[i].Kind == "decode" {
			decode = &tr.Gateway[i]
		}
	}
	if decode == nil || decode.Iters != 40 || decode.Batch != 8 {
		t.Fatalf("decode span annotations: %+v", decode)
	}
	// The snapshot must be valid JSON (served verbatim by /traces).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
}

// TestRingEviction drives sequence numbers past the ring size and
// checks that incomplete overwritten windows count as dropped while
// completed windows never do.
func TestRingEviction(t *testing.T) {
	c := New(64, 8, 4)
	r := c.Session(1)
	// Complete the first lap fully: no drops.
	for seq := uint32(0); seq < 64; seq++ {
		id := NewID(1, seq)
		r.Record(id, KindEncode, int64(seq), 1)
		r.Record(id, KindDeliver, int64(seq)+1, 1)
	}
	// Second lap reuses every slot; prior occupants completed.
	for seq := uint32(64); seq < 128; seq++ {
		id := NewID(1, seq)
		r.Record(id, KindEncode, int64(seq), 1)
	}
	if got := c.Snapshot(); got.Dropped != 0 || got.Recorded != 64 {
		t.Fatalf("after completed lap: %+v", got)
	}
	// Third lap evicts the incomplete second-lap windows.
	for seq := uint32(128); seq < 192; seq++ {
		r.Record(NewID(1, seq), KindEncode, int64(seq), 1)
	}
	if got := c.Snapshot().Dropped; got != 64 {
		t.Fatalf("dropped = %d, want 64", got)
	}
	// Spans recorded for an evicted window must start a fresh window,
	// not resurrect the old one.
	w, ok := r.Window(NewID(1, 128))
	if !ok || w.Has(KindDeliver) || !w.Has(KindEncode) {
		t.Fatalf("evicted slot window: %+v ok=%v", w, ok)
	}
}

func TestRecentRingOrderAndWrap(t *testing.T) {
	c := New(64, 4, 2)
	r := c.Session(9)
	for seq := uint32(0); seq < 10; seq++ {
		id := NewID(9, seq)
		r.Record(id, KindEncode, 0, int64(seq))
		r.Record(id, KindDeliver, 0, 0)
	}
	s := c.Snapshot()
	if len(s.Recent) != 4 {
		t.Fatalf("recent len = %d", len(s.Recent))
	}
	// Oldest-first: windows 6..9.
	for i, tr := range s.Recent {
		want := NewID(9, uint32(6+i)).String()
		if tr.Trace != want {
			t.Fatalf("recent[%d] = %s, want %s", i, tr.Trace, want)
		}
	}
}

func TestSlowestReservoir(t *testing.T) {
	c := New(64, 4, 3)
	r := c.Session(1)
	durs := []int64{5, 100, 1, 50, 70, 2, 99}
	for i, d := range durs {
		id := NewID(1, uint32(i))
		r.Record(id, KindDecode, 0, d)
		r.Record(id, KindDeliver, 0, 0)
	}
	s := c.Snapshot()
	if len(s.Slowest) != 3 {
		t.Fatalf("slowest len = %d", len(s.Slowest))
	}
	want := []int64{100, 99, 70}
	for i, tr := range s.Slowest {
		if tr.TotalNs != want[i] {
			t.Fatalf("slowest[%d].TotalNs = %d, want %d", i, tr.TotalNs, want[i])
		}
	}
}

// TestRecordPathZeroAllocs pins the full per-window record path —
// every span kind including the completing deliver that publishes to
// the recent ring and reservoir — at zero allocations per window.
func TestRecordPathZeroAllocs(t *testing.T) {
	c := New(256, 64, 8)
	r := c.Session(1)
	var seq uint32
	allocs := testing.AllocsPerRun(500, func() {
		id := NewID(1, seq)
		seq++
		r.Record(id, KindEncode, 1, 2)
		r.RecordLink(id, 3, 4, 2, 100)
		r.Record(id, KindIngest, 7, 1)
		r.Record(id, KindQueueWait, 8, 1)
		r.RecordDecode(id, 9, 5, 30, 4)
		r.Record(id, KindDeliver, 14, 1)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentRecordSnapshot hammers one collector from many
// sessions while snapshotting — run under -race in CI.
func TestConcurrentRecordSnapshot(t *testing.T) {
	c := New(64, 32, 8)
	const sessions, windows = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := c.Session(uint64(s))
			for seq := uint32(0); seq < windows; seq++ {
				// s+1: NewID(0,0) is the reserved untraced ID.
				id := NewID(uint32(s+1), seq)
				r.Record(id, KindEncode, 0, 1)
				r.RecordLink(id, 1, 1, 1, 1)
				r.Record(id, KindIngest, 2, 1)
				r.RecordDecode(id, 3, 1, 10, 2)
				r.Record(id, KindDeliver, 4, 1)
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := c.Snapshot().Recorded; got != sessions*windows {
		t.Fatalf("recorded = %d, want %d", got, sessions*windows)
	}
}

func TestDropSession(t *testing.T) {
	c := New(64, 4, 2)
	r1 := c.Session(5)
	c.DropSession(5)
	r2 := c.Session(5)
	if r1 == r2 {
		t.Fatal("DropSession must release the ring")
	}
}

func TestSatU16(t *testing.T) {
	if satU16(-1) != 0 || satU16(70000) != 0xffff || satU16(42) != 42 {
		t.Fatal("satU16 clamping")
	}
}

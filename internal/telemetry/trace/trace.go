// Package trace provides end-to-end per-window tracing for the
// node → link → network gateway → solver pipeline. Where the telemetry
// package's StageSet answers "how long does each stage take in
// aggregate", this package answers "where did *this* window's latency
// go": every CS window is minted a compact 64-bit trace ID at node
// encode time, each layer records its span under that ID, and the
// collector stitches the spans into one tree per window — node side
// (encode, ARQ delivery) and gateway side (session ingest, engine
// queue wait, FISTA decode, ordered delivery).
//
// The design constraints mirror the rest of the repo's observability
// layer (DESIGN.md §10): recording is allocation-free in steady state
// (fixed-size Window structs in preallocated per-session rings, copied
// into a preallocated recent ring and a slowest-N reservoir on
// completion), every write method is nil-safe so layers can trace
// unconditionally, and attaching a collector never changes pipeline
// output — tracing is bit-neutral by construction because the only
// wire change (the link codec's v2 trace block) is confined to the
// TCP transport, where integrity is CRC + go-back-N, not a
// bit-error-rate channel.
package trace

import "fmt"

// ID is a compact per-window trace identifier: a 32-bit stream tag in
// the high half (patient index, record index — whatever the minting
// layer keys its streams by) and the window sequence number in the low
// half. The zero ID means "untraced" everywhere.
type ID uint64

// NewID builds a trace ID from a stream tag and a window sequence.
func NewID(hi, seq uint32) ID { return ID(uint64(hi)<<32 | uint64(seq)) }

// Hi returns the stream tag half.
func (id ID) Hi() uint32 { return uint32(id >> 32) }

// Seq returns the window-sequence half.
func (id ID) Seq() uint32 { return uint32(id) }

// String renders the ID as "hi-seq" hex (read side only).
func (id ID) String() string { return fmt.Sprintf("%08x-%08x", id.Hi(), id.Seq()) }

// Kind identifies one span slot in a window's trace. Kinds are fixed
// (one slot each in the Window struct) so recording never allocates.
type Kind uint8

// Span kinds, in pipeline order.
const (
	// KindEncode is the node-side chunk processing that produced the
	// window's CS measurements (DSP chain + encode + packetise).
	KindEncode Kind = iota
	// KindLink is the node-side ARQ delivery of the window over the
	// lossy radio channel (attempts and radio energy annotated).
	KindLink
	// KindIngest is the gateway-side session inbox wait: frame read off
	// the wire until the session actor picks it up.
	KindIngest
	// KindQueueWait is the reconstruction engine's queue wait: submit
	// until a worker picks the job up.
	KindQueueWait
	// KindDecode is the CS reconstruction (iterations and batch size
	// annotated).
	KindDecode
	// KindDeliver is the in-order append of the reconstructed window to
	// the stream's signal — recording it marks the window complete.
	KindDeliver

	// NumKinds is the kind count (sizes the per-window span array).
	NumKinds = int(KindDeliver) + 1
)

// String returns the kind's snapshot name.
func (k Kind) String() string {
	switch k {
	case KindEncode:
		return "encode"
	case KindLink:
		return "link"
	case KindIngest:
		return "ingest"
	case KindQueueWait:
		return "queue_wait"
	case KindDecode:
		return "decode"
	case KindDeliver:
		return "deliver"
	default:
		return "unknown"
	}
}

// NodeSide reports whether the kind belongs to the node half of the
// span tree (the wearable side of the wire).
func (k Kind) NodeSide() bool { return k <= KindLink }

// Span is one recorded interval. A remote span whose clock did not
// cross the wire is re-anchored to the receiving side's clock
// (StartNs is then an alignment, not a measurement — DurNs always is).
type Span struct {
	StartNs int64
	DurNs   int64
}

// Window is one window's stitched span set plus its annotations — a
// fixed-size struct so per-session rings record with zero allocations
// and completion publishes by plain copy.
type Window struct {
	ID      ID
	Session uint64
	Spans   [NumKinds]Span
	// mask has bit k set when Spans[k] was recorded (a recorded span may
	// legitimately have zero duration).
	mask uint8
	// Attempts and RadioNJ annotate the link span (ARQ transmission
	// attempts, radio energy in nanojoules); Iters and Batch annotate
	// the decode span (solver iterations, batch fill of the dispatch).
	Attempts uint16
	RadioNJ  uint64
	Iters    uint16
	Batch    uint16
}

// Has reports whether kind k's span was recorded.
func (w *Window) Has(k Kind) bool { return w.mask&(1<<uint(k)) != 0 }

// set records span k.
func (w *Window) set(k Kind, s Span) {
	w.Spans[k] = s
	w.mask |= 1 << uint(k)
}

// TotalNs sums the recorded span durations — the window's attributed
// pipeline cost, and the reservoir's slowness key.
func (w *Window) TotalNs() int64 {
	var t int64
	for k := 0; k < NumKinds; k++ {
		if w.Has(Kind(k)) {
			t += w.Spans[k].DurNs
		}
	}
	return t
}

// Complete reports whether the window reached ordered delivery.
func (w *Window) Complete() bool { return w.Has(KindDeliver) }

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SummaryLine renders one compact key=value line from the registry's
// snapshot: counters and floats print their value, gauges
// value/high, histograms count@p50ns. Keys resolve against all four
// metric kinds; unknown keys print k=?. With no keys it prints every
// counter (sorted) — verbose but complete.
func SummaryLine(reg *Registry, keys ...string) string {
	s := reg.Snapshot()
	if len(keys) == 0 {
		keys = make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	var b strings.Builder
	b.WriteString("telemetry:")
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		switch {
		case hasCounter(s, k):
			fmt.Fprintf(&b, "%d", s.Counters[k])
		case hasFloat(s, k):
			fmt.Fprintf(&b, "%.6g", s.Floats[k])
		case hasGauge(s, k):
			g := s.Gauges[k]
			fmt.Fprintf(&b, "%d/hi%d", g.Value, g.High)
		case hasHist(s, k):
			h := s.Histograms[k]
			fmt.Fprintf(&b, "%d@p50=%d", h.Count, h.P50)
		default:
			b.WriteByte('?')
		}
	}
	return b.String()
}

func hasCounter(s Snapshot, k string) bool { _, ok := s.Counters[k]; return ok }
func hasFloat(s Snapshot, k string) bool   { _, ok := s.Floats[k]; return ok }
func hasGauge(s Snapshot, k string) bool   { _, ok := s.Gauges[k]; return ok }
func hasHist(s Snapshot, k string) bool    { _, ok := s.Histograms[k]; return ok }

// StartSummary prints a summary line to w every interval until the
// returned stop function is called (which prints one final line so
// short runs still leave a trace).
func StartSummary(w io.Writer, reg *Registry, interval time.Duration, keys ...string) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, SummaryLine(reg, keys...))
			case <-done:
				fmt.Fprintln(w, SummaryLine(reg, keys...))
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// populateSnapshotSet drives a value into every metric family so the
// stability checks see a realistic key population.
func populateSnapshotSet(set *Set) {
	set.Node.Chunks.Add(4)
	set.Link.Delivered.Add(9)
	set.Link.RadioEnergyJ.Add(0.25)
	set.Gateway.QueueDepth.Set(3)
	set.Gateway.DecodeNs.Observe(1500)
	set.Solver.Record(12, 1, true, true, false)
	set.NetGW.FramesRx.Add(20)
	set.NetGW.Attaches.Add(2)
	set.Fleet.PatientsDone.Inc()
	set.Stages.Record(StageCS, 0, 1, 2000)
}

// TestMetricsSnapshotJSONStability pins the /metrics rendering contract
// benchdiff-style tooling relies on: two captures of identical state
// serialise to identical bytes, so any textual diff is a real metric
// change.
func TestMetricsSnapshotJSONStability(t *testing.T) {
	reg := NewRegistry()
	populateSnapshotSet(NewSet(reg))

	// Same Snapshot value → identical bytes (map iteration order must
	// not leak into the encoding).
	s1 := reg.Snapshot()
	a, err := json.MarshalIndent(s1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(s1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same snapshot marshalled to different bytes")
	}

	// Two captures with no metric traffic in between differ only in the
	// capture timestamp and the pull-style runtime gauges (their
	// collector re-reads MemStats at every snapshot by design):
	// normalise both and the bytes must match.
	s2 := reg.Snapshot()
	s1.TakenUnixNs, s2.TakenUnixNs = 0, 0
	for _, s := range []*Snapshot{&s1, &s2} {
		for name := range s.Gauges {
			if strings.HasPrefix(name, "runtime.") {
				s.Gauges[name] = GaugeSnapshot{}
			}
		}
	}
	a, _ = json.MarshalIndent(s1, "", "  ")
	c, err := json.MarshalIndent(s2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("idle captures differ:\n%s\n----\n%s", a, c)
	}
}

// TestMetricsSnapshotKeyOrdering walks the rendered JSON and asserts
// every metric-family object lists its keys in sorted order — the
// property that makes two captures line-diffable.
func TestMetricsSnapshotKeyOrdering(t *testing.T) {
	reg := NewRegistry()
	populateSnapshotSet(NewSet(reg))
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"counters", "floats", "gauges", "histograms"} {
		raw, ok := doc[family]
		if !ok {
			t.Fatalf("family %q missing from /metrics document", family)
		}
		keys := objectKeysInOrder(t, raw)
		if len(keys) == 0 {
			t.Fatalf("family %q has no keys", family)
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("family %q keys not sorted: %v", family, keys)
		}
	}
}

// objectKeysInOrder returns a JSON object's keys in document order.
func objectKeysInOrder(t *testing.T, raw json.RawMessage) []string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		t.Fatalf("not a JSON object: %v %v", tok, err)
	}
	var keys []string
	depth := 0
	for dec.More() || depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		switch d := tok.(type) {
		case json.Delim:
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		case string:
			if depth == 0 {
				keys = append(keys, d)
				// Skip the value so nested object keys are not counted.
				var v json.RawMessage
				if err := dec.Decode(&v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return keys
}

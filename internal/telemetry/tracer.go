package telemetry

import "sync"

// Span is one recorded pipeline-stage execution.
type Span struct {
	// Stage identifies the pipeline stage.
	Stage Stage `json:"-"`
	// StageName is the stage's display name (filled on snapshot).
	StageName string `json:"stage"`
	// At is the caller's position tag (absolute sample index, window
	// start or sequence number — whatever the layer keys its work by).
	At int64 `json:"at"`
	// StartNs is the wall-clock start (UnixNano); DurNs the duration.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
}

// Tracer keeps the most recent spans in a preallocated ring buffer.
// Record never allocates; a short mutex (a few stores) serialises the
// cursor and the multi-word slot write, which is cheap because spans
// are recorded per chunk/window, not per sample. Write methods are
// nil-safe so layers can trace unconditionally.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	next  uint64
}

// NewTracer builds a tracer holding the last size spans (minimum 16).
func NewTracer(size int) *Tracer {
	if size < 16 {
		size = 16
	}
	return &Tracer{spans: make([]Span, size)}
}

// Record appends one span, overwriting the oldest once the ring is
// full.
func (t *Tracer) Record(stage Stage, at int64, startNs, durNs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := &t.spans[t.next%uint64(len(t.spans))]
	s.Stage = stage
	s.At = at
	s.StartNs = startNs
	s.DurNs = durNs
	t.next++
	t.mu.Unlock()
}

// Len returns how many spans have been recorded in total.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Snapshot returns up to max of the most recent spans, oldest first,
// with stage names resolved.
func (t *Tracer) Snapshot(max int) []Span {
	if t == nil || max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if n > uint64(len(t.spans)) {
		n = uint64(len(t.spans))
	}
	if n > uint64(max) {
		n = uint64(max)
	}
	out := make([]Span, 0, n)
	for i := t.next - n; i < t.next; i++ {
		s := t.spans[i%uint64(len(t.spans))]
		s.StageName = s.Stage.String()
		out = append(out, s)
	}
	return out
}

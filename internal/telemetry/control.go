package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"wbsn/internal/telemetry/trace"
)

// The gateway control plane rides on the telemetry listener: beside
// /metrics it serves /sessions (live per-stream stats), POST
// /sessions/{id}/evict, /traces (end-to-end window span trees),
// /healthz (drain-aware) and /buildinfo. The session endpoints are
// backed by a ControlPlane implementation (netgw.Server); binaries
// without a network gateway still get /traces, /healthz and
// /buildinfo.

// SessionInfo is one live (or recently finished) stream session as
// reported by /sessions.
type SessionInfo struct {
	ID            uint64 `json:"id"`
	StartedUnixNs int64  `json:"started_unix_ns"`
	// Attached reports whether a connection currently feeds the session;
	// Finished whether the stream's fin was processed.
	Attached bool `json:"attached"`
	Finished bool `json:"finished"`
	// SeqHighWater is the next in-order sequence the reassembler
	// expects — everything below it was delivered.
	SeqHighWater uint32 `json:"seq_high_water"`
	Delivered    uint64 `json:"delivered"`
	Rewinds      uint64 `json:"rewinds"`
	Sheds        uint64 `json:"sheds"`
	Corrupt      uint64 `json:"corrupt"`
	// Reconnects counts re-attaches after the first (resume hits).
	Reconnects uint64 `json:"reconnects"`
	// DecodeNsP50/P99 summarise the session's window decode latency
	// (offer-to-delivery of in-order windows).
	DecodeNsP50 uint64 `json:"decode_ns_p50"`
	DecodeNsP99 uint64 `json:"decode_ns_p99"`
}

// ControlPlane is the session surface a gateway server exposes to the
// HTTP layer.
type ControlPlane interface {
	// ControlSessions snapshots the live session table.
	ControlSessions() []SessionInfo
	// EvictSession removes session id, reporting whether it existed. The
	// removal must be observable in the next ControlSessions call.
	EvictSession(id uint64) bool
	// Draining reports whether a graceful shutdown is in progress.
	Draining() bool
}

// HTTPOptions selects the optional control-plane surfaces of the
// telemetry endpoint. The zero value serves /metrics, /traces (empty),
// /healthz and /buildinfo only.
type HTTPOptions struct {
	// Control backs /sessions and /sessions/{id}/evict.
	Control ControlPlane
	// Trace backs /traces.
	Trace *trace.Collector
	// Draining, when set, additionally drives /healthz (a binary with no
	// ControlPlane — wbsn-sim — reports its own drain state here).
	Draining func() bool
}

type sessionsResponse struct {
	Draining bool          `json:"draining"`
	Sessions []SessionInfo `json:"sessions"`
}

func (o *HTTPOptions) draining() bool {
	if o.Draining != nil && o.Draining() {
		return true
	}
	if o.Control != nil && o.Control.Draining() {
		return true
	}
	return false
}

// HandlerOpts returns the inspection-plus-control mux for a registry.
func HandlerOpts(reg *Registry, opts HTTPOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /buildinfo", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, ReadBuild())
	})
	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, opts.Trace.Snapshot())
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, _ *http.Request) {
		resp := sessionsResponse{Draining: opts.draining(), Sessions: []SessionInfo{}}
		if opts.Control != nil {
			if ss := opts.Control.ControlSessions(); ss != nil {
				sort.Slice(ss, func(i, j int) bool { return ss[i].ID < ss[j].ID })
				resp.Sessions = ss
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /sessions/{id}/evict", func(w http.ResponseWriter, r *http.Request) {
		if opts.Control == nil {
			http.Error(w, "no control plane", http.StatusNotImplemented)
			return
		}
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad session id", http.StatusBadRequest)
			return
		}
		if !opts.Control.EvictSession(id) {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]uint64{"evicted": id})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeOpts starts the inspection endpoint with control-plane surfaces
// on addr; see Serve for lifecycle semantics.
func ServeOpts(addr string, reg *Registry, opts HTTPOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	s := &Server{ln: ln, srv: &http.Server{Handler: HandlerOpts(reg, opts)}}
	go s.srv.Serve(ln) //nolint:errcheck — Serve always returns on Close
	return s, nil
}

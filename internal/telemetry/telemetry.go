// Package telemetry is the repo's zero-dependency observability core:
// atomic counters and gauges, fixed-bucket power-of-two histograms with
// lock-free recording, a preallocated ring-buffer pipeline tracer, and
// a registry that renders JSON and expvar snapshots over HTTP.
//
// The design constraint is the same one the node hot path already obeys
// (DESIGN.md §9): recording a metric must never touch the allocator and
// must never take a lock on the write path that a reader can hold for
// long. Writers use atomic adds (histogram record is a count add plus a
// bucket add plus two CAS watermark updates); readers pay the full cost
// of snapshotting. Every metric type is safe for concurrent use, and
// every write method is a no-op on a nil receiver so instrumented code
// can run with telemetry detached at zero branch-misprediction cost.
//
// The stage taxonomy mirrors the paper's pipeline: acquire → filter →
// delineate → classify → CS encode → radio link → gateway decode. Each
// layer records its stage durations into a shared StageSet so the
// /metrics snapshot shows the whole chain's latency profile at once —
// the runtime self-inspection Scrugli et al. (arXiv:2106.06498) make
// the basis for adaptive mode control.
package telemetry

// Stage identifies one pipeline stage for histograms and trace spans.
type Stage uint8

// Pipeline stages, in signal-flow order.
const (
	// StageAcquire is the node's sample buffering and chunk assembly.
	StageAcquire Stage = iota
	// StageFilter is the morphological conditioning pass.
	StageFilter
	// StageDelineate is wavelet delineation over the combined lead.
	StageDelineate
	// StageClassify is per-beat RP projection plus prototype matching.
	StageClassify
	// StageCS is the compressed-sensing encode (plus payload quantise).
	StageCS
	// StageLink is one window's ARQ delivery over the lossy channel.
	StageLink
	// StageGatewayDecode is one window's CS reconstruction at the
	// gateway.
	StageGatewayDecode

	// NumStages is the stage count (for sizing per-stage state).
	NumStages = int(StageGatewayDecode) + 1
)

// String returns the stage's snapshot/metric name.
func (s Stage) String() string {
	switch s {
	case StageAcquire:
		return "acquire"
	case StageFilter:
		return "filter"
	case StageDelineate:
		return "delineate"
	case StageClassify:
		return "classify"
	case StageCS:
		return "cs"
	case StageLink:
		return "link"
	case StageGatewayDecode:
		return "gateway_decode"
	default:
		return "unknown"
	}
}

package graph

import (
	"math"
	"math/rand"
	"testing"

	"errors"
	"wbsn/internal/classify"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/link"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
)

func testLeads(t *testing.T, leads, n int, seed int64) [][]float64 {
	t.Helper()
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: float64(n)/256 + 1})
	out := make([][]float64, leads)
	for i := range out {
		src := rec.Leads[i%len(rec.Leads)]
		if len(src) < n {
			t.Fatalf("record too short: %d < %d", len(src), n)
		}
		out[i] = src[:n]
	}
	return out
}

func wantErrBuild(t *testing.T, name string, build func(b *Builder)) {
	t.Helper()
	b := NewBuilder()
	build(b)
	if _, err := b.Build(); !errors.Is(err, ErrBuild) {
		t.Errorf("%s: Build err = %v, want ErrBuild", name, err)
	}
}

func TestBuilderValidation(t *testing.T) {
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"no input", func(b *Builder) { b.Packetize(Value{}, 12) }},
		{"empty builder", func(b *Builder) {}},
		{"two inputs", func(b *Builder) { b.Input(3, 64); b.Input(3, 64) }},
		{"zero leads", func(b *Builder) { b.Input(0, 64) }},
		{"zero chunk", func(b *Builder) { b.Input(3, 0) }},
		{"fir empty taps", func(b *Builder) { b.FIR(b.Input(3, 64), nil) }},
		{"fir nan tap", func(b *Builder) { b.FIR(b.Input(3, 64), []float64{1, math.NaN()}) }},
		{"biquad zero a0", func(b *Builder) {
			b.Biquad(b.Input(3, 64), [3]float64{1, 0, 0}, [3]float64{0, 0, 0})
		}},
		{"biquad inf coeff", func(b *Builder) {
			b.Biquad(b.Input(3, 64), [3]float64{math.Inf(1), 0, 0}, [3]float64{1, 0, 0})
		}},
		{"median zero window", func(b *Builder) { b.Median(b.Input(3, 64), 0) }},
		{"erode zero se", func(b *Builder) { b.Erode(b.Input(3, 64), 0) }},
		{"morph filter no fs", func(b *Builder) { b.MorphFilter(b.Input(3, 64), morpho.FilterConfig{}) }},
		{"morph filter negative se", func(b *Builder) {
			b.MorphFilter(b.Input(3, 64), morpho.FilterConfig{Fs: 256, NoiseSE: -1})
		}},
		{"gate bad fs", func(b *Builder) { b.GateLeads(b.Input(3, 64), 0, 0.7) }},
		{"gate bad sqi", func(b *Builder) { b.GateLeads(b.Input(3, 64), 256, 1.5) }},
		{"combine on series", func(b *Builder) {
			b.CombineRMS(b.CombineRMS(b.Input(3, 64)))
		}},
		{"atrous on leads", func(b *Builder) { b.Atrous(b.Input(3, 64), 5) }},
		{"atrous zero scales", func(b *Builder) { b.Atrous(b.CombineRMS(b.Input(3, 64)), 0) }},
		{"atrous too many scales", func(b *Builder) { b.Atrous(b.CombineRMS(b.Input(3, 64)), 9) }},
		{"delineate nil", func(b *Builder) {
			b.Delineate(b.Atrous(b.CombineRMS(b.Input(3, 64)), 5), nil)
		}},
		{"delineate few scales", func(b *Builder) {
			b.Delineate(b.Atrous(b.CombineRMS(b.Input(3, 64)), 3), del)
		}},
		{"delineate on series", func(b *Builder) { b.Delineate(b.CombineRMS(b.Input(3, 64)), del) }},
		{"classify nil classifier", func(b *Builder) {
			b.Classify(b.CombineRMS(b.Input(3, 64)), nil, classify.DefaultBeatWindow(256))
		}},
		{"cs nil encoder", func(b *Builder) { b.CSEncode(b.Input(3, 64), nil) }},
		{"quantize on leads", func(b *Builder) { b.Quantize(b.Input(3, 64), 8) }},
		{"packetize zero bits", func(b *Builder) { b.Packetize(b.Input(3, 64), 0) }},
		{"packetize wide bits", func(b *Builder) { b.Packetize(b.Input(3, 64), 33) }},
		{"packetize series", func(b *Builder) { b.Packetize(b.CombineRMS(b.Input(3, 64)), 12) }},
		{"foreign value", func(b *Builder) {
			other := NewBuilder()
			v := other.Input(3, 64)
			b.Input(3, 64)
			_ = v
			b.FIR(Value{}, []float64{1})
		}},
		{"multi consumer", func(b *Builder) {
			in := b.Input(3, 64)
			b.FIR(in, []float64{1})
			b.Median(in, 3)
		}},
		{"lap bad stage", func(b *Builder) { b.Lap(b.Input(3, 64), telemetry.Stage(125)) }},
		{"lap invalid value", func(b *Builder) { b.Input(3, 64); b.Lap(Value{id: 99}, telemetry.StageFilter) }},
	}
	for _, tc := range cases {
		wantErrBuild(t, tc.name, tc.build)
	}
}

func TestBuilderErrPoisons(t *testing.T) {
	b := NewBuilder()
	in := b.Input(3, 64)
	bad := b.Median(in, 0) // records the error
	if bad.Valid() {
		t.Fatal("op after error returned a valid value")
	}
	// Further ops on the poisoned builder are no-ops, not panics.
	b.CombineRMS(bad)
	b.Packetize(bad, 12)
	if _, err := b.Build(); !errors.Is(err, ErrBuild) {
		t.Fatalf("Build err = %v, want the first recorded ErrBuild", err)
	}
	if b.Err() == nil {
		t.Fatal("Err() lost the recorded error")
	}
}

func equalSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s: [%d] = %v, want %v (bit-identity violated)", name, i, got[i], want[i])
		}
	}
}

// TestStreamChainFusionBitIdentity checks the fused FIR→biquad→FIR pass
// against sequential whole-signal dsp applications, per lead, observed
// through the identical RMS combine on both sides.
func TestStreamChainFusionBitIdentity(t *testing.T) {
	const n = 777
	chunk := testLeads(t, 3, n, 11)
	taps1 := []float64{0.2, 0.5, 0.2, 0.1}
	bc := [3]float64{0.4, 0.3, 0.1}
	ac := [3]float64{2, -0.4, 0.2} // exercises the 1/a0 normalisation
	taps2 := []float64{0.6, 0.4}

	b := NewBuilder()
	in := b.Input(3, n)
	v := b.FIR(in, taps1)
	v = b.Biquad(v, bc, ac)
	v = b.FIR(v, taps2)
	b.CombineRMS(v)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.fused != 2 {
		t.Fatalf("fused = %d, want 2 (three stream ops in one stage)", p.fused)
	}
	res, err := p.NewExec().Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	f1, _ := dsp.NewFIR(taps1)
	bq, _ := dsp.NewBiquad(bc, ac)
	f2, _ := dsp.NewFIR(taps2)
	ref := make([][]float64, len(chunk))
	for li, x := range chunk {
		ref[li] = f2.Apply(bq.Apply(f1.Apply(x)))
	}
	equalSlices(t, "stream chain", res.Combined, dsp.CombineRMS(ref))
}

// TestSeriesOpsBitIdentity runs post-combine series stages (stream
// chain, median, morphological ops) against their dsp/morpho references.
func TestSeriesOpsBitIdentity(t *testing.T) {
	const n = 512
	chunk := testLeads(t, 1, n, 7)

	build := func(f func(b *Builder, v Value) Value) []float64 {
		t.Helper()
		b := NewBuilder()
		v := b.CombineRMS(b.Input(1, n))
		f(b, v)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.NewExec().Run(chunk, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Combined
	}
	series := dsp.CombineRMS(chunk)

	got := build(func(b *Builder, v Value) Value {
		return b.Biquad(v, [3]float64{0.3, 0.2, 0.1}, [3]float64{1, -0.5, 0.25})
	})
	bq, _ := dsp.NewBiquad([3]float64{0.3, 0.2, 0.1}, [3]float64{1, -0.5, 0.25})
	equalSlices(t, "series biquad", got, bq.Apply(series))

	got = build(func(b *Builder, v Value) Value { return b.Median(v, 9) })
	ref, err := dsp.MedianFilter(series, 9)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, "series median", got, ref)

	morphoCases := []struct {
		name string
		op   func(b *Builder, v Value) Value
		ref  func(x []float64, k int) ([]float64, error)
		k    int
	}{
		{"erode", func(b *Builder, v Value) Value { return b.Erode(v, 13) }, morpho.ErodeFlat, 13},
		{"dilate", func(b *Builder, v Value) Value { return b.Dilate(v, 13) }, morpho.DilateFlat, 13},
		{"open", func(b *Builder, v Value) Value { return b.Open(v, 7) }, morpho.OpenFlat, 7},
		{"close", func(b *Builder, v Value) Value { return b.Close(v, 7) }, morpho.CloseFlat, 7},
	}
	for _, tc := range morphoCases {
		got = build(tc.op)
		ref, err := tc.ref(series, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		equalSlices(t, "series "+tc.name, got, ref)
	}
}

// TestFilterCombineFusionBitIdentity is the load-bearing fusion check:
// the fused conditioning-filter + RMS combine must match the unfused
// FilterLeads → CombineRMS pair bit for bit.
func TestFilterCombineFusionBitIdentity(t *testing.T) {
	for _, leads := range []int{1, 2, 3, 5} {
		for _, n := range []int{33, 257, 1024} {
			chunk := testLeads(t, leads, n, int64(10*leads+n))
			cfg := morpho.FilterConfig{Fs: 256}

			b := NewBuilder()
			b.CombineRMS(b.MorphFilter(b.Input(leads, n), cfg))
			p, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if len(p.stages) != 1 || p.stages[0].kind != stageFilterCombine {
				t.Fatalf("leads=%d: filter+combine not fused: %v", leads, p.stages)
			}
			res, err := p.NewExec().Run(chunk, 0, nil)
			if err != nil {
				t.Fatal(err)
			}

			filtered, err := morpho.FilterLeads(chunk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			equalSlices(t, "filter+combine", res.Combined, dsp.CombineRMS(filtered))
		}
	}
}

// TestMorphFilterUnfusedBitIdentity pins the unfused path (a consumer
// other than CombineRMS blocks the fusion) to the same reference.
func TestMorphFilterUnfusedBitIdentity(t *testing.T) {
	const n = 400
	chunk := testLeads(t, 3, n, 21)
	cfg := morpho.FilterConfig{Fs: 256}

	b := NewBuilder()
	v := b.MorphFilter(b.Input(3, n), cfg)
	v = b.Median(v, 5)
	b.CombineRMS(v)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.stages[0].kind != stageMorphFilter {
		t.Fatalf("expected unfused morph filter, got %v", p.stages[0].kind)
	}
	res, err := p.NewExec().Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	filtered, err := morpho.FilterLeads(chunk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([][]float64, len(filtered))
	for li := range filtered {
		ref[li], err = dsp.MedianFilter(filtered[li], 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	equalSlices(t, "unfused filter", res.Combined, dsp.CombineRMS(ref))
}

// TestAnalysisPlanBitIdentity compiles the full analysis chain and
// compares combined series and delineated beats against the node's
// batch-style reference path.
func TestAnalysisPlanBitIdentity(t *testing.T) {
	const n = 1024
	chunk := testLeads(t, 3, n, 31)
	cfg := morpho.FilterConfig{Fs: 256}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder()
	v := b.MorphFilter(b.Input(3, n), cfg)
	s := b.CombineRMS(v)
	b.Delineate(b.Atrous(s, 5), del)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExec()
	res, err := e.Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	filtered, err := morpho.FilterLeads(chunk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	combined := dsp.CombineRMS(filtered)
	beats, err := del.Delineate(combined)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, "analysis combined", res.Combined, combined)
	if len(beats) == 0 {
		t.Fatal("reference found no beats; test signal unusable")
	}
	if len(res.Beats) != len(beats) {
		t.Fatalf("beats: %d != %d", len(res.Beats), len(beats))
	}
	for i := range beats {
		if res.Beats[i] != beats[i] {
			t.Fatalf("beat %d: %+v != %+v", i, res.Beats[i], beats[i])
		}
	}

	// A sub-MinInputLen trailing chunk delineates to no beats.
	short, err := e.Run([][]float64{chunk[0][:16], chunk[1][:16], chunk[2][:16]}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Beats) != 0 {
		t.Fatalf("short chunk produced %d beats", len(short.Beats))
	}
}

// TestGateBitIdentity compares the compiled gate against the link-level
// reference masking.
func TestGateBitIdentity(t *testing.T) {
	const n = 1024
	chunk := testLeads(t, 3, n, 41)
	// Corrupt one lead so the gate has something to drop.
	flat := make([]float64, n)
	chunk[2] = flat
	cfg := morpho.FilterConfig{Fs: 256}

	b := NewBuilder()
	v := b.GateLeads(b.Input(3, n), 256, 0.7)
	b.CombineRMS(b.MorphFilter(v, cfg))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.NewExec().Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	mask := link.GoodLeads(chunk, 256, link.SQIConfig{}, 0.7)
	var kept [][]float64
	for li, ok := range mask {
		if ok {
			kept = append(kept, chunk[li])
		}
	}
	if len(kept) == 0 {
		kept = chunk
	}
	if len(kept) == len(chunk) {
		t.Log("gate kept every lead; identity still checked")
	}
	filtered, err := morpho.FilterLeads(kept, cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalSlices(t, "gated combine", res.Combined, dsp.CombineRMS(filtered))
}

type lapRecord struct {
	stage telemetry.Stage
	at    int64
}

type recordingLapper struct{ laps []lapRecord }

func (r *recordingLapper) Lap(stage telemetry.Stage, at int64) {
	r.laps = append(r.laps, lapRecord{stage, at})
}

func newTestEncoder(t *testing.T, window int) *cs.Encoder {
	t.Helper()
	m := cs.MeasurementsForCR(window, 4)
	phi, err := cs.NewSparseBinary(m, window, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return cs.NewEncoder(phi)
}

// TestCSPlanBitIdentity checks the CS encode → quantize → packetize
// chain against the streaming node's reference arithmetic, including
// the no-packet trailing-flush behaviour and its lap suppression.
func TestCSPlanBitIdentity(t *testing.T) {
	const window = 512
	chunk := testLeads(t, 3, window, 51)
	enc := newTestEncoder(t, window)
	const bits = 8

	b := NewBuilder()
	v := b.CSEncode(b.Input(3, window), enc)
	v = b.Quantize(v, bits)
	v = b.Packetize(v, bits)
	b.Lap(v, telemetry.StageCS)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExec()
	var lp recordingLapper
	res, err := e.Run(chunk, 512, &lp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasPacket {
		t.Fatal("full window produced no packet")
	}

	ys := enc.EncodeLeads(chunk)
	for li := range ys {
		q, err := cs.NewQuantizer(bits, cs.AutoScale(ys[li], 1.05))
		if err != nil {
			t.Fatal(err)
		}
		ys[li], _ = q.QuantizeSlice(ys[li])
	}
	wantBytes := (enc.MeasurementLen()*len(chunk)*bits + 7) / 8
	if res.PacketBytes != wantBytes {
		t.Fatalf("packet bytes %d != %d", res.PacketBytes, wantBytes)
	}
	if len(res.Measurements) != len(ys) {
		t.Fatalf("measurement leads %d != %d", len(res.Measurements), len(ys))
	}
	for li := range ys {
		equalSlices(t, "measurements", res.Measurements[li], ys[li])
	}
	if len(lp.laps) != 1 || lp.laps[0] != (lapRecord{telemetry.StageCS, 512}) {
		t.Fatalf("laps = %+v, want one StageCS at 512", lp.laps)
	}

	// Partial trailing window: no packet, no measurements, no laps.
	lp.laps = nil
	short := [][]float64{chunk[0][:100], chunk[1][:100], chunk[2][:100]}
	res, err = e.Run(short, 1024, &lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasPacket || res.Measurements != nil || res.PacketBytes != 0 {
		t.Fatalf("partial window emitted a packet: %+v", res)
	}
	if len(lp.laps) != 0 {
		t.Fatalf("partial window fired laps: %+v", lp.laps)
	}
}

func TestRawPacketPlan(t *testing.T) {
	const n = 512
	chunk := testLeads(t, 2, n, 61)
	b := NewBuilder()
	b.Packetize(b.Input(2, n), 12)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExec()
	res, err := e.Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := (2*n*12 + 7) / 8
	if !res.HasPacket || res.PacketBytes != want {
		t.Fatalf("raw packet = %+v, want %d bytes", res, want)
	}
	// Raw mode packetises partial flush chunks too.
	res, err = e.Run([][]float64{chunk[0][:10], chunk[1][:10]}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasPacket || res.PacketBytes != (2*10*12+7)/8 {
		t.Fatalf("raw flush packet = %+v", res)
	}
}

func TestClassifyBeatBitIdentity(t *testing.T) {
	const n = 1024
	chunk := testLeads(t, 3, n, 71)
	win := classify.DefaultBeatWindow(256)
	rng := rand.New(rand.NewSource(5))
	rp, err := classify.NewRPMatrix(12, win.Len(), rng)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[int][][]float64{}
	for label := 0; label < 2; label++ {
		for k := 0; k < 6; k++ {
			raw := make([]float64, win.Len())
			for i := range raw {
				raw[i] = rng.NormFloat64() + float64(label)
			}
			z, err := rp.ProjectInto(raw, nil)
			if err != nil {
				t.Fatal(err)
			}
			samples[label] = append(samples[label], z)
		}
	}
	cls, err := classify.Train(rp, samples, classify.TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder()
	s := b.CombineRMS(b.MorphFilter(b.Input(3, n), morpho.FilterConfig{Fs: 256}))
	b.Delineate(b.Atrous(s, 5), del)
	cv := b.Classify(s, cls, win)
	b.Lap(cv, telemetry.StageClassify)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasClassifier() {
		t.Fatal("plan lost its classifier")
	}
	e := p.NewExec()
	res, err := e.Run(chunk, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beats) == 0 {
		t.Fatal("no beats to classify")
	}

	classifiedAny := false
	for _, beat := range res.Beats {
		var lp recordingLapper
		label, mem, ok, err := e.ClassifyBeat(beat.R, int64(beat.R), &lp)
		if err != nil {
			t.Fatal(err)
		}
		if len(lp.laps) != 1 || lp.laps[0].stage != telemetry.StageClassify {
			t.Fatalf("classify laps = %+v", lp.laps)
		}
		ref := win.Extract(res.Combined, beat.R)
		if (ref != nil) != ok {
			t.Fatalf("beat %d: classified=%v, reference window nil=%v", beat.R, ok, ref == nil)
		}
		if !ok {
			continue
		}
		classifiedAny = true
		z, err := cls.RP().ProjectInto(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantLabel, wantMem, err := cls.PredictProjected(z)
		if err != nil {
			t.Fatal(err)
		}
		if label != wantLabel || mem != wantMem {
			t.Fatalf("beat %d: (%d, %v) != (%d, %v)", beat.R, label, mem, wantLabel, wantMem)
		}
	}
	if !classifiedAny {
		t.Fatal("no beat had a full extraction window")
	}

	// A plan without a classify op rejects ClassifyBeat.
	b2 := NewBuilder()
	b2.CombineRMS(b2.Input(3, n))
	p2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p2.NewExec().ClassifyBeat(100, 0, nil); !errors.Is(err, ErrExec) {
		t.Fatalf("ClassifyBeat without classify op: err = %v, want ErrExec", err)
	}
}

func TestRunValidation(t *testing.T) {
	b := NewBuilder()
	b.CombineRMS(b.Input(2, 64))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExec()
	good := make([]float64, 64)
	cases := [][][]float64{
		{good},               // wrong lead count
		{good, good, good},   // wrong lead count
		{good, good[:10]},    // ragged
		{good[:0], good[:0]}, // empty chunk
		{make([]float64, 65), make([]float64, 65)}, // over capacity
	}
	for i, chunk := range cases {
		if _, err := e.Run(chunk, 0, nil); !errors.Is(err, ErrExec) {
			t.Errorf("case %d: err = %v, want ErrExec", i, err)
		}
	}
}

// TestRunSteadyStateAllocs pins the arena promise: a warm executor
// processes chunks without allocating (delineation output slices are
// the only per-run product, so the measured plan stops at the à-trous
// stage).
func TestRunSteadyStateAllocs(t *testing.T) {
	const n = 1024
	chunk := testLeads(t, 3, n, 81)
	b := NewBuilder()
	b.Atrous(b.CombineRMS(b.MorphFilter(b.Input(3, n), morpho.FilterConfig{Fs: 256})), 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := p.NewExec()
	if _, err := e.Run(chunk, 0, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := e.Run(chunk, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %.1f objects per chunk, want 0", allocs)
	}
}

func TestPlanArenaPacking(t *testing.T) {
	// Overlapping lifetimes must not share bytes; disjoint ones should.
	a := &bufReq{name: "a", size: 10, def: 0, lastUse: 1}
	bq := &bufReq{name: "b", size: 10, def: 0, lastUse: 1}
	c := &bufReq{name: "c", size: 10, def: 2, lastUse: 3}
	total := planArena([]*bufReq{a, bq, c})
	if a.off == bq.off {
		t.Fatalf("overlapping buffers share offset %d", a.off)
	}
	if c.off != 0 {
		t.Fatalf("disjoint buffer did not reuse offset 0, got %d", c.off)
	}
	if total != 20 {
		t.Fatalf("slab total = %d, want 20", total)
	}

	// A long-lived buffer blocks reuse across its whole span.
	long := &bufReq{name: "long", size: 4, def: 0, lastUse: 10}
	e1 := &bufReq{name: "e1", size: 6, def: 1, lastUse: 2}
	e2 := &bufReq{name: "e2", size: 6, def: 3, lastUse: 4}
	total = planArena([]*bufReq{long, e1, e2})
	if e1.off < long.off+long.size && long.off < e1.off+e1.size {
		t.Fatalf("e1 (%d) overlaps long-lived buffer (%d)", e1.off, long.off)
	}
	if e1.off != e2.off {
		t.Fatalf("disjoint ephemerals did not share: %d vs %d", e1.off, e2.off)
	}
	if total != 10 {
		t.Fatalf("slab total = %d, want 10", total)
	}

	if planArena(nil) != 0 {
		t.Fatal("empty request set should plan an empty slab")
	}
}

func TestDescribe(t *testing.T) {
	const n = 1024
	b := NewBuilder()
	b.CombineRMS(b.MorphFilter(b.Input(3, n), morpho.FilterConfig{Fs: 256}))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkLen() != n || p.Leads() != 3 {
		t.Fatalf("getters: %d leads, %d chunk", p.Leads(), p.ChunkLen())
	}
	if d := p.Describe(); d == "" {
		t.Fatal("empty Describe")
	}
}

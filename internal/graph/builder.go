package graph

import (
	"math"

	"wbsn/internal/classify"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
)

// opKind enumerates the IR node operations.
type opKind int

const (
	opInput opKind = iota
	opGateLeads
	opFIR
	opBiquad
	opMedian
	opErode
	opDilate
	opOpen
	opClose
	opMorphFilter
	opCombineRMS
	opAtrous
	opDelineate
	opClassify
	opCSEncode
	opQuantize
	opPacketize
)

func (k opKind) String() string {
	switch k {
	case opInput:
		return "input"
	case opGateLeads:
		return "gate-leads"
	case opFIR:
		return "fir"
	case opBiquad:
		return "biquad"
	case opMedian:
		return "median"
	case opErode:
		return "erode"
	case opDilate:
		return "dilate"
	case opOpen:
		return "open"
	case opClose:
		return "close"
	case opMorphFilter:
		return "morph-filter"
	case opCombineRMS:
		return "combine-rms"
	case opAtrous:
		return "atrous"
	case opDelineate:
		return "delineate"
	case opClassify:
		return "classify"
	case opCSEncode:
		return "cs-encode"
	case opQuantize:
		return "quantize"
	case opPacketize:
		return "packetize"
	default:
		return "unknown"
	}
}

// irNode is one op of the graph under construction.
type irNode struct {
	id    int
	kind  opKind
	in    int // producer node id (-1 for the input node)
	shape Shape

	// Op parameters (only the fields the kind uses are set).
	taps    []float64           // opFIR
	b, a    [3]float64          // opBiquad
	k       int                 // opMedian/opErode/opDilate/opOpen/opClose SE length
	fcfg    morpho.FilterConfig // opMorphFilter
	scales  int                 // opAtrous
	del     *delineation.WaveletDelineator
	cls     *classify.Classifier // opClassify
	beatWin classify.BeatWindow  // opClassify
	enc     *cs.Encoder          // opCSEncode
	bits    int                  // opQuantize/opPacketize
	fs      float64              // opGateLeads/opMorphFilter
	gateMin float64              // opGateLeads

	// lap tags recorded after this op's compiled stage completes.
	laps []telemetry.Stage
}

// Builder accumulates ops and validation errors. The first invalid op
// poisons the builder: subsequent ops are ignored and Build returns the
// recorded error. Builder methods never panic — malformed graphs are
// reported through Build.
type Builder struct {
	nodes    []*irNode
	err      error
	chunkLen int
	leads    int
	hasInput bool
}

// Value is a typed handle to one op's output.
type Value struct {
	id    int
	shape Shape
	ok    bool
}

// Shape returns the value's static shape (zero Shape for an invalid
// value).
func (v Value) Shape() Shape { return v.shape }

// Valid reports whether the value came from a successful op on a
// healthy builder.
func (v Value) Valid() bool { return v.ok }

// NewBuilder returns an empty pipeline builder.
func NewBuilder() *Builder { return &Builder{} }

// Err returns the first construction error recorded so far.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) Value {
	if b.err == nil {
		b.err = buildErr(format, args...)
	}
	return Value{id: -1}
}

func (b *Builder) add(n *irNode, shape Shape) Value {
	n.id = len(b.nodes)
	n.shape = shape
	b.nodes = append(b.nodes, n)
	return Value{id: n.id, shape: shape, ok: true}
}

// take validates a value handle against the builder and an expected
// shape class set; it returns the producer node or nil (after recording
// the error).
func (b *Builder) take(v Value, kind opKind, want ...ShapeClass) *irNode {
	if b.err != nil {
		return nil
	}
	if !v.ok || v.id < 0 || v.id >= len(b.nodes) {
		b.fail("%v: input is not a valid value of this builder", kind)
		return nil
	}
	n := b.nodes[v.id]
	for _, w := range want {
		if n.shape.Class == w {
			return n
		}
	}
	b.fail("%v: input has shape %v, want one of %v", kind, n.shape.Class, want)
	return nil
}

// Input declares the pipeline source: a lead-major chunk of at most
// chunkLen samples per lead. Exactly one Input is allowed per builder.
func (b *Builder) Input(leads, chunkLen int) Value {
	if b.err != nil {
		return Value{id: -1}
	}
	if b.hasInput {
		return b.fail("input: declared twice")
	}
	if leads < 1 {
		return b.fail("input: lead count %d < 1", leads)
	}
	if chunkLen < 1 {
		return b.fail("input: chunk length %d < 1", chunkLen)
	}
	b.hasInput = true
	b.leads = leads
	b.chunkLen = chunkLen
	return b.add(&irNode{kind: opInput, in: -1}, Shape{Class: ShapeLeads, Leads: leads})
}

// GateLeads inserts per-chunk signal-quality gating: leads whose SQI
// falls below minSQI are dropped for this chunk (at least one lead
// always survives; fewer than two input leads pass through untouched).
func (b *Builder) GateLeads(v Value, fs, minSQI float64) Value {
	n := b.take(v, opGateLeads, ShapeLeads)
	if n == nil {
		return Value{id: -1}
	}
	if fs <= 0 || math.IsNaN(fs) || math.IsInf(fs, 0) {
		return b.fail("gate-leads: sampling rate %v must be finite and positive", fs)
	}
	if minSQI < 0 || minSQI > 1 || math.IsNaN(minSQI) {
		return b.fail("gate-leads: minimum SQI %v outside [0, 1]", minSQI)
	}
	return b.add(&irNode{kind: opGateLeads, in: n.id, fs: fs, gateMin: minSQI}, n.shape)
}

// FIR applies a finite-impulse-response filter (b[0] on the newest
// sample, state reset at every chunk and lead) to each lane of a leads
// or series value.
func (b *Builder) FIR(v Value, taps []float64) Value {
	n := b.take(v, opFIR, ShapeLeads, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if len(taps) == 0 {
		return b.fail("fir: empty tap set")
	}
	for i, t := range taps {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return b.fail("fir: tap %d is %v", i, t)
		}
	}
	cp := make([]float64, len(taps))
	copy(cp, taps)
	return b.add(&irNode{kind: opFIR, in: n.id, taps: cp}, n.shape)
}

// Biquad applies a second-order IIR section (direct form II transposed,
// coefficients normalised by a[0], state reset at every chunk and lead)
// to each lane of a leads or series value.
func (b *Builder) Biquad(v Value, bc, ac [3]float64) Value {
	n := b.take(v, opBiquad, ShapeLeads, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if ac[0] == 0 {
		return b.fail("biquad: a[0] must be non-zero")
	}
	for _, c := range append(bc[:], ac[:]...) {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return b.fail("biquad: non-finite coefficient %v", c)
		}
	}
	return b.add(&irNode{kind: opBiquad, in: n.id, b: bc, a: ac}, n.shape)
}

// Median applies a centred sliding-window median of length k (edge
// replication) to each lane. Medians need the whole window, so this op
// is a fusion barrier.
func (b *Builder) Median(v Value, k int) Value {
	n := b.take(v, opMedian, ShapeLeads, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if k < 1 {
		return b.fail("median: window %d < 1", k)
	}
	return b.add(&irNode{kind: opMedian, in: n.id, k: k}, n.shape)
}

func (b *Builder) morphOp(v Value, kind opKind, k int) Value {
	n := b.take(v, kind, ShapeLeads, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if k < 1 {
		return b.fail("%v: structuring element %d < 1", kind, k)
	}
	return b.add(&irNode{kind: kind, in: n.id, k: k}, n.shape)
}

// Erode applies flat erosion (sliding minimum) with SE length k.
func (b *Builder) Erode(v Value, k int) Value { return b.morphOp(v, opErode, k) }

// Dilate applies flat dilation (sliding maximum) with SE length k.
func (b *Builder) Dilate(v Value, k int) Value { return b.morphOp(v, opDilate, k) }

// Open applies morphological opening (erosion then dilation) with SE
// length k.
func (b *Builder) Open(v Value, k int) Value { return b.morphOp(v, opOpen, k) }

// Close applies morphological closing (dilation then erosion) with SE
// length k.
func (b *Builder) Close(v Value, k int) Value { return b.morphOp(v, opClose, k) }

// MorphFilter applies the two-stage morphological conditioning filter
// (baseline correction then open/close noise suppression) to every
// lead. When its only consumer is CombineRMS the compiler fuses the
// filter tail with the combiner's square-accumulate pass.
func (b *Builder) MorphFilter(v Value, cfg morpho.FilterConfig) Value {
	n := b.take(v, opMorphFilter, ShapeLeads)
	if n == nil {
		return Value{id: -1}
	}
	if cfg.Fs <= 0 || math.IsNaN(cfg.Fs) || math.IsInf(cfg.Fs, 0) {
		return b.fail("morph-filter: sampling rate %v must be finite and positive", cfg.Fs)
	}
	if cfg.BaselineSE < 0 || cfg.NoiseSE < 0 {
		return b.fail("morph-filter: negative structuring element")
	}
	return b.add(&irNode{kind: opMorphFilter, in: n.id, fcfg: cfg}, n.shape)
}

// CombineRMS collapses a multi-lead value into one series by per-sample
// root mean square across the (possibly gated) leads.
func (b *Builder) CombineRMS(v Value) Value {
	n := b.take(v, opCombineRMS, ShapeLeads)
	if n == nil {
		return Value{id: -1}
	}
	return b.add(&irNode{kind: opCombineRMS, in: n.id}, Shape{Class: ShapeSeries})
}

// Atrous computes the undecimated quadratic-spline wavelet transform of
// a series at the given number of dyadic scales (1..8).
func (b *Builder) Atrous(v Value, scales int) Value {
	n := b.take(v, opAtrous, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if scales < 1 || scales > 8 {
		return b.fail("atrous: scale count %d outside [1, 8]", scales)
	}
	return b.add(&irNode{kind: opAtrous, in: n.id, scales: scales}, Shape{Class: ShapeCoeffs, Scales: scales})
}

// Delineate detects and brackets heartbeats from a precomputed à-trous
// coefficient stack (at least 4 scales).
func (b *Builder) Delineate(v Value, del *delineation.WaveletDelineator) Value {
	n := b.take(v, opDelineate, ShapeCoeffs)
	if n == nil {
		return Value{id: -1}
	}
	if del == nil {
		return b.fail("delineate: nil delineator")
	}
	if n.shape.Scales < 4 {
		return b.fail("delineate: needs >= 4 coefficient scales, got %d", n.shape.Scales)
	}
	return b.add(&irNode{kind: opDelineate, in: n.id, del: del}, Shape{Class: ShapeBeats})
}

// Classify attaches per-beat classification to a series value: the
// executor's ClassifyBeat extracts a window around a detected R peak of
// that series, projects it and predicts its class. Classify is a side
// capability — its Value is terminal and consumed by no other op — but
// it extends the series' arena liveness to the end of the run.
func (b *Builder) Classify(v Value, cls *classify.Classifier, win classify.BeatWindow) Value {
	n := b.take(v, opClassify, ShapeSeries)
	if n == nil {
		return Value{id: -1}
	}
	if cls == nil {
		return b.fail("classify: nil classifier")
	}
	if win.Len() < 1 {
		return b.fail("classify: empty beat window")
	}
	return b.add(&irNode{kind: opClassify, in: n.id, cls: cls, beatWin: win}, Shape{Class: ShapeBeats})
}

// CSEncode projects each lead of a full chunk through the compressed-
// sensing measurement matrix. Chunks shorter than the encoder's window
// produce no packet at run time (trailing flush).
func (b *Builder) CSEncode(v Value, enc *cs.Encoder) Value {
	n := b.take(v, opCSEncode, ShapeLeads)
	if n == nil {
		return Value{id: -1}
	}
	if enc == nil {
		return b.fail("cs-encode: nil encoder")
	}
	if enc.WindowLen() != b.chunkLen {
		return b.fail("cs-encode: encoder window %d != input chunk length %d", enc.WindowLen(), b.chunkLen)
	}
	return b.add(&irNode{kind: opCSEncode, in: n.id, enc: enc},
		Shape{Class: ShapeMeasurements, Leads: n.shape.Leads})
}

// Quantize passes CS measurements through an explicit uniform quantiser
// of the given bit depth (per-window auto-scaled); the packetiser then
// charges that depth per measurement.
func (b *Builder) Quantize(v Value, bits int) Value {
	n := b.take(v, opQuantize, ShapeMeasurements)
	if n == nil {
		return Value{id: -1}
	}
	if bits < 1 || bits > 32 {
		return b.fail("quantize: bit depth %d outside [1, 32]", bits)
	}
	return b.add(&irNode{kind: opQuantize, in: n.id, bits: bits}, n.shape)
}

// Packetize terminates a raw or CS pipeline: it sizes the radio payload
// at the given bits per sample (or per measurement).
func (b *Builder) Packetize(v Value, bits int) Value {
	n := b.take(v, opPacketize, ShapeLeads, ShapeMeasurements)
	if n == nil {
		return Value{id: -1}
	}
	if bits < 1 || bits > 32 {
		return b.fail("packetize: bit depth %d outside [1, 32]", bits)
	}
	return b.add(&irNode{kind: opPacketize, in: n.id, bits: bits}, Shape{Class: ShapePacket})
}

// Lap tags a value's producing op with a telemetry stage: the compiled
// stage that computes it records one lap at that tag when it completes.
func (b *Builder) Lap(v Value, stage telemetry.Stage) {
	if b.err != nil {
		return
	}
	if !v.ok || v.id < 0 || v.id >= len(b.nodes) {
		b.fail("lap: not a valid value of this builder")
		return
	}
	if stage < 0 || int(stage) >= telemetry.NumStages {
		b.fail("lap: unknown telemetry stage %d", stage)
		return
	}
	b.nodes[v.id].laps = append(b.nodes[v.id].laps, stage)
}

// Build validates the graph structure and compiles it into an immutable
// execution plan. It never panics: malformed graphs return an error.
func (b *Builder) Build() (*Plan, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.hasInput {
		return nil, buildErr("no input declared")
	}
	// Count chain consumers (Classify is a side capability, not a chain
	// link) and collect classifiers.
	consumers := make([][]int, len(b.nodes))
	var classifyNodes []*irNode
	for _, n := range b.nodes {
		if n.kind == opInput {
			continue
		}
		if n.kind == opClassify {
			classifyNodes = append(classifyNodes, n)
			continue
		}
		consumers[n.in] = append(consumers[n.in], n.id)
	}
	if len(classifyNodes) > 1 {
		return nil, buildErr("at most one classify op per pipeline")
	}
	// Walk the single-consumer chain from the input.
	var chain []*irNode
	cur := 0 // input node id
	for _, n := range b.nodes {
		if n.kind == opInput {
			cur = n.id
			break
		}
	}
	chain = append(chain, b.nodes[cur])
	for {
		next := consumers[cur]
		if len(next) == 0 {
			break
		}
		if len(next) > 1 {
			return nil, buildErr("value of %v consumed by %d ops; pipelines are single-consumer chains",
				b.nodes[cur].kind, len(next))
		}
		cur = next[0]
		chain = append(chain, b.nodes[cur])
	}
	// Every op must be on the chain or be the classify side node.
	if got, want := len(chain)+len(classifyNodes), len(b.nodes); got != want {
		return nil, buildErr("%d op(s) unreachable from the input", want-got)
	}
	for _, cn := range classifyNodes {
		onChain := false
		for _, n := range chain {
			if n.id == cn.in {
				onChain = true
				break
			}
		}
		if !onChain {
			return nil, buildErr("classify input is not on the pipeline chain")
		}
	}
	terminal := chain[len(chain)-1]
	switch terminal.shape.Class {
	case ShapePacket, ShapeBeats, ShapeSeries, ShapeLeads, ShapeCoeffs, ShapeMeasurements:
		// Any terminal shape is executable; packet/beats are the
		// conventional sinks.
	}
	var cn *irNode
	if len(classifyNodes) == 1 {
		cn = classifyNodes[0]
	}
	return compile(b, chain, cn)
}

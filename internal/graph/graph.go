// Package graph is a small typed intermediate representation for the
// node's per-chunk DSP pipelines. A pipeline is assembled through a
// Builder — one op per processing stage (filtering, morphological
// conditioning, lead combination, à-trous decomposition, delineation,
// classification, CS encoding, packetisation) — validated structurally
// and shape-wise at build time, and compiled into an immutable Plan:
//
//   - adjacent per-sample streaming stages (FIR/biquad runs) and the
//     morphological-filter tail feeding the RMS lead combiner are fused
//     into single passes where the fusion is bit-identical;
//   - every inter-stage and intra-stage work buffer is planned into one
//     scratch arena with liveness-based offset reuse, allocated once
//     when an executor is created — steady-state chunk processing does
//     not allocate;
//   - stage-boundary telemetry laps are preplanned: each compiled stage
//     carries the lap tags to record, so the executor takes exactly one
//     clock reading per tagged boundary.
//
// A Plan is shared: it holds no mutable state and any number of Execs
// (one per stream) can run it concurrently. The builder/op/compile
// split follows the same construction idiom as MLIR-style IR builders.
package graph

import (
	"errors"
	"fmt"

	"wbsn/internal/delineation"
	"wbsn/internal/telemetry"
)

// Errors returned by the builder and executor.
var (
	// ErrBuild reports an invalid graph construction: bad op parameters,
	// shape mismatches between producer and consumer, or malformed
	// structure (no input, dangling values, multiple consumers).
	ErrBuild = errors.New("graph: invalid graph")
	// ErrExec reports invalid executor input (wrong lead count, ragged
	// leads, chunk longer than the planned capacity).
	ErrExec = errors.New("graph: invalid executor input")
)

// ShapeClass says what kind of value flows along an edge of the graph.
type ShapeClass int

// Shape classes.
const (
	// ShapeLeads is a lead-major multi-lead sample block [leads][n].
	ShapeLeads ShapeClass = iota
	// ShapeSeries is a single combined signal [n].
	ShapeSeries
	// ShapeCoeffs is an à-trous detail stack [scales][n].
	ShapeCoeffs
	// ShapeBeats is a slice of delineated beats.
	ShapeBeats
	// ShapeMeasurements is a per-lead CS measurement stack [leads][m].
	ShapeMeasurements
	// ShapePacket is a packetised payload (byte count plus optional
	// measurements) — a terminal shape.
	ShapePacket
)

// String names the shape class for error messages.
func (c ShapeClass) String() string {
	switch c {
	case ShapeLeads:
		return "leads"
	case ShapeSeries:
		return "series"
	case ShapeCoeffs:
		return "coeffs"
	case ShapeBeats:
		return "beats"
	case ShapeMeasurements:
		return "measurements"
	case ShapePacket:
		return "packet"
	default:
		return "unknown"
	}
}

// Shape is the static type of a graph value.
type Shape struct {
	Class ShapeClass
	// Leads is the lead count for ShapeLeads/ShapeMeasurements (the
	// maximum: signal-quality gating may drop leads at run time).
	Leads int
	// Scales is the scale count for ShapeCoeffs.
	Scales int
}

// Lapper receives one stage-boundary telemetry lap per tagged compiled
// stage. Implementations chain laps off a shared cursor so each
// boundary costs a single clock reading (DESIGN §10).
type Lapper interface {
	Lap(stage telemetry.Stage, at int64)
}

// Result is the output of executing a compiled plan over one chunk.
type Result struct {
	// Combined is the post-combination series of an analysis plan. It
	// is arena-owned: valid until the executor's next Run.
	Combined []float64
	// Beats holds the delineated beats of an analysis plan (chunk-local
	// sample indices). Freshly allocated per Run; safe to retain.
	Beats []delineation.BeatFiducials
	// HasPacket reports whether the plan produced a radio payload this
	// chunk (a CS plan skips partial trailing windows).
	HasPacket bool
	// PacketBytes is the payload size when HasPacket is set.
	PacketBytes int
	// Measurements holds the per-lead CS measurement vectors of a CS
	// packet (nil for raw packets). Freshly allocated per Run; safe to
	// retain (they travel inside emitted events).
	Measurements [][]float64
}

func buildErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBuild, fmt.Sprintf(format, args...))
}

package graph

import (
	"fmt"

	"wbsn/internal/classify"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
)

// stageKind enumerates the compiled (post-fusion) stage forms.
type stageKind int

const (
	stageGate        stageKind = iota
	stageStreamChain           // fused run of FIR/biquad ops, one pass per lane
	stageMedian
	stageErode
	stageDilate
	stageOpen
	stageClose
	stageMorphFilter   // unfused conditioning filter (custom consumer)
	stageFilterCombine // fused conditioning filter tail + RMS combine
	stageCombine
	stageAtrous
	stageDelineate
	stageEncode
	stageQuantize
	stagePacketRaw
	stagePacketMeas
)

func (k stageKind) String() string {
	switch k {
	case stageGate:
		return "gate"
	case stageStreamChain:
		return "stream-chain"
	case stageMedian:
		return "median"
	case stageErode:
		return "erode"
	case stageDilate:
		return "dilate"
	case stageOpen:
		return "open"
	case stageClose:
		return "close"
	case stageMorphFilter:
		return "morph-filter"
	case stageFilterCombine:
		return "filter+combine"
	case stageCombine:
		return "combine"
	case stageAtrous:
		return "atrous"
	case stageDelineate:
		return "delineate"
	case stageEncode:
		return "cs-encode"
	case stageQuantize:
		return "quantize"
	case stagePacketRaw:
		return "packet-raw"
	case stagePacketMeas:
		return "packet-meas"
	default:
		return "unknown"
	}
}

// streamElem is one element of a fused per-sample filter chain.
type streamElem struct {
	biquad             bool
	taps               []float64
	b0, b1, b2, a1, a2 float64
}

// stage is one compiled execution step. All fields are immutable after
// Build; per-stream mutable state lives in the Exec.
type stage struct {
	kind  stageKind
	laps  []telemetry.Stage
	lanes ShapeClass // ShapeLeads or ShapeSeries for lane-wise ops

	k          int // SE / median window
	elems      []streamElem
	l0, lc, kn int // fused conditioning-filter SE lengths
	fcfg       morpho.FilterConfig
	scales     int
	del        *delineation.WaveletDelineator
	enc        *cs.Encoder
	bits       int
	fs         float64
	gateMin    float64

	out []bufRef // lane (or scale) output buffers in the arena
	tmp []bufRef // intra-stage temporaries in the arena
}

// classifyOp is the compiled per-beat classification capability.
type classifyOp struct {
	cls     *classify.Classifier
	beatWin classify.BeatWindow
	laps    []telemetry.Stage
}

// Plan is a compiled, immutable pipeline. One Plan is built per node
// configuration and shared by every stream (and pooled fleet rig)
// executing it; create one Exec per stream with NewExec.
type Plan struct {
	stages   []stage
	chunkLen int
	leads    int
	slabLen  int
	classify *classifyOp
	fused    int // ops merged away by fusion (for Describe)
	ops      int // builder ops compiled (excluding input)
}

// ChunkLen returns the maximum per-lead chunk length the plan was built
// for.
func (p *Plan) ChunkLen() int { return p.chunkLen }

// Leads returns the lead count the plan was built for.
func (p *Plan) Leads() int { return p.leads }

// HasClassifier reports whether the plan carries a per-beat classify
// capability.
func (p *Plan) HasClassifier() bool { return p.classify != nil }

// Describe summarises the compiled plan for logs: op and stage counts,
// fusion wins and the arena footprint.
func (p *Plan) Describe() string {
	return fmt.Sprintf("%d ops -> %d stages (%d fused away), arena %.1f KiB",
		p.ops, len(p.stages), p.fused, float64(p.slabLen*8)/1024)
}

// compile lowers the validated chain into fused stages and plans the
// scratch arena.
func compile(b *Builder, chain []*irNode, cn *irNode) (*Plan, error) {
	p := &Plan{chunkLen: b.chunkLen, leads: b.leads, ops: len(chain) - 1}
	if cn != nil {
		p.ops++
		p.classify = &classifyOp{cls: cn.cls, beatWin: cn.beatWin, laps: cn.laps}
	}
	L := b.chunkLen

	// Fusion pass: group chain ops into stages.
	ops := chain[1:] // skip the input node
	for i := 0; i < len(ops); i++ {
		n := ops[i]
		switch n.kind {
		case opFIR, opBiquad:
			// Maximal run of per-sample streaming ops fuses into one
			// pass: each element's state depends only on its own input
			// sequence, so interleaving per sample is bit-identical to
			// sequential whole-signal passes.
			sg := stage{kind: stageStreamChain, lanes: n.shape.Class}
			for ; i < len(ops) && (ops[i].kind == opFIR || ops[i].kind == opBiquad); i++ {
				m := ops[i]
				el := streamElem{taps: m.taps}
				if m.kind == opBiquad {
					inv := 1 / m.a[0]
					el = streamElem{biquad: true,
						b0: m.b[0] * inv, b1: m.b[1] * inv, b2: m.b[2] * inv,
						a1: m.a[1] * inv, a2: m.a[2] * inv}
				}
				sg.elems = append(sg.elems, el)
				sg.laps = append(sg.laps, m.laps...)
			}
			i--
			p.fused += len(sg.elems) - 1
			p.stages = append(p.stages, sg)
		case opMorphFilter:
			fc := n.fcfg.WithDefaults()
			l0 := fc.BaselineSE
			if i+1 < len(ops) && ops[i+1].kind == opCombineRMS {
				// The conditioning filter's final open/close average
				// feeds straight into the combiner's square-accumulate:
				// per-element addition order across leads is preserved,
				// so the filtered leads never materialise.
				cb := ops[i+1]
				sg := stage{kind: stageFilterCombine, fcfg: fc,
					l0: l0, lc: l0 + l0/2, kn: fc.NoiseSE}
				sg.laps = append(append(sg.laps, n.laps...), cb.laps...)
				p.fused++
				p.stages = append(p.stages, sg)
				i++
				continue
			}
			p.stages = append(p.stages, stage{kind: stageMorphFilter, fcfg: fc,
				l0: l0, lc: l0 + l0/2, kn: fc.NoiseSE, lanes: ShapeLeads, laps: n.laps})
		case opGateLeads:
			p.stages = append(p.stages, stage{kind: stageGate, fs: n.fs, gateMin: n.gateMin, laps: n.laps})
		case opMedian:
			p.stages = append(p.stages, stage{kind: stageMedian, k: n.k, lanes: n.shape.Class, laps: n.laps})
		case opErode:
			p.stages = append(p.stages, stage{kind: stageErode, k: n.k, lanes: n.shape.Class, laps: n.laps})
		case opDilate:
			p.stages = append(p.stages, stage{kind: stageDilate, k: n.k, lanes: n.shape.Class, laps: n.laps})
		case opOpen:
			p.stages = append(p.stages, stage{kind: stageOpen, k: n.k, lanes: n.shape.Class, laps: n.laps})
		case opClose:
			p.stages = append(p.stages, stage{kind: stageClose, k: n.k, lanes: n.shape.Class, laps: n.laps})
		case opCombineRMS:
			p.stages = append(p.stages, stage{kind: stageCombine, laps: n.laps})
		case opAtrous:
			p.stages = append(p.stages, stage{kind: stageAtrous, scales: n.scales, laps: n.laps})
		case opDelineate:
			p.stages = append(p.stages, stage{kind: stageDelineate, del: n.del, laps: n.laps})
		case opCSEncode:
			p.stages = append(p.stages, stage{kind: stageEncode, enc: n.enc, laps: n.laps})
		case opQuantize:
			p.stages = append(p.stages, stage{kind: stageQuantize, bits: n.bits, laps: n.laps})
		case opPacketize:
			kind := stagePacketRaw
			if b.nodes[n.in].shape.Class == ShapeMeasurements {
				kind = stagePacketMeas
			}
			p.stages = append(p.stages, stage{kind: kind, bits: n.bits, laps: n.laps})
		default:
			return nil, buildErr("op %v cannot be compiled", n.kind)
		}
	}

	// Arena planning: request buffers with stage-index liveness and
	// pack them with interval reuse. A stage's output lives until the
	// next stage consumes it; the exposed combined series (and a series
	// read by per-beat classification) lives until the end of the run.
	S := len(p.stages)
	var reqs []*bufReq
	addReq := func(name string, size, def, lastUse int) *bufReq {
		r := &bufReq{name: name, size: size, def: def, lastUse: lastUse}
		reqs = append(reqs, r)
		return r
	}
	// Track, per stage, the request backing each output so offsets can
	// be resolved after packing.
	outReqs := make([][]*bufReq, S)
	tmpReqs := make([][]*bufReq, S)
	var lastSeries *bufReq
	for si := range p.stages {
		sg := &p.stages[si]
		switch sg.kind {
		case stageStreamChain, stageMedian, stageErode, stageDilate, stageOpen, stageClose, stageMorphFilter:
			lanes := 1
			if sg.lanes == ShapeLeads {
				lanes = b.leads
			}
			for l := 0; l < lanes; l++ {
				outReqs[si] = append(outReqs[si], addReq(fmt.Sprintf("%v.out%d", sg.kind, l), L, si, si+1))
			}
			if sg.lanes == ShapeSeries && lanes == 1 {
				lastSeries = outReqs[si][0]
			}
		case stageFilterCombine:
			for _, nm := range []string{"t", "opened", "base", "corrected", "o", "cl"} {
				tmpReqs[si] = append(tmpReqs[si], addReq("filter."+nm, L, si, si))
			}
			out := addReq("combined", L, si, S)
			outReqs[si] = append(outReqs[si], out)
			lastSeries = out
		case stageCombine:
			out := addReq("combined", L, si, S)
			outReqs[si] = append(outReqs[si], out)
			lastSeries = out
		case stageAtrous:
			last := si
			if si+1 < S && p.stages[si+1].kind == stageDelineate {
				last = si + 1
			}
			for k := 0; k < sg.scales; k++ {
				outReqs[si] = append(outReqs[si], addReq(fmt.Sprintf("atrous.w%d", k), L, si, last))
			}
		}
	}
	if lastSeries != nil {
		lastSeries.lastUse = S
	}
	p.slabLen = planArena(reqs)
	for si := range p.stages {
		sg := &p.stages[si]
		for _, r := range outReqs[si] {
			sg.out = append(sg.out, bufRef{off: r.off, size: r.size})
		}
		for _, r := range tmpReqs[si] {
			sg.tmp = append(sg.tmp, bufRef{off: r.off, size: r.size})
		}
	}
	return p, nil
}

package graph

import (
	"errors"
	"math/rand"
	"testing"

	"wbsn/internal/classify"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/morpho"
	"wbsn/internal/telemetry"
)

// FuzzBuilder drives the builder with an arbitrary op script decoded
// from the fuzz input. The invariant under test: construction and
// compilation never panic — malformed graphs come back as ErrBuild —
// and any graph that does build can be executed without panicking.
func FuzzBuilder(f *testing.F) {
	// Seeds covering the interesting shapes: a full analysis chain, a CS
	// chain, a raw chain, and some junk.
	f.Add([]byte{3, 2, 9, 10, 11, 12})
	f.Add([]byte{3, 13, 14, 15})
	f.Add([]byte{2, 15})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{3, 9, 9, 10, 10})
	f.Add([]byte{1, 4, 5, 6, 7, 8, 9})

	const chunkLen = 64
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		f.Fatal(err)
	}
	phi, err := cs.NewSparseBinary(16, chunkLen, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		f.Fatal(err)
	}
	enc := cs.NewEncoder(phi)
	win := classify.BeatWindow{Before: 8, After: 8}
	rp, err := classify.NewRPMatrix(4, win.Len(), rand.New(rand.NewSource(2)))
	if err != nil {
		f.Fatal(err)
	}
	samples := map[int][][]float64{}
	rng := rand.New(rand.NewSource(3))
	for label := 0; label < 2; label++ {
		for k := 0; k < 4; k++ {
			raw := make([]float64, win.Len())
			for i := range raw {
				raw[i] = rng.NormFloat64()
			}
			z, err := rp.ProjectInto(raw, nil)
			if err != nil {
				f.Fatal(err)
			}
			samples[label] = append(samples[label], z)
		}
	}
	cls, err := classify.Train(rp, samples, classify.TrainConfig{Seed: 4})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		b := NewBuilder()
		// Start from a valid input so deeper op sequences are reachable;
		// a leading 0 byte skips it to also fuzz the no-input path.
		var v Value
		leads := 1
		if len(script) > 0 && script[0] != 0 {
			leads = int(script[0])%4 + 1
			v = b.Input(leads, chunkLen)
			script = script[1:]
		}
		for i := 0; i < len(script); i++ {
			op := script[i]
			arg := 0
			if i+1 < len(script) {
				arg = int(script[i+1])
			}
			switch op % 18 {
			case 0:
				v = b.Input(arg%5, chunkLen) // usually a duplicate-input error
			case 1:
				v = b.GateLeads(v, 256, float64(arg)/255)
			case 2:
				v = b.MorphFilter(v, morpho.FilterConfig{Fs: 256, NoiseSE: arg%8 - 1})
			case 3:
				taps := make([]float64, arg%5) // length 0 is an error path
				for j := range taps {
					taps[j] = float64(j+1) / 8
				}
				v = b.FIR(v, taps)
			case 4:
				v = b.Biquad(v, [3]float64{0.3, 0.2, 0.1}, [3]float64{float64(arg % 3), -0.4, 0.2})
			case 5:
				v = b.Median(v, arg%12)
			case 6:
				v = b.Erode(v, arg%20)
			case 7:
				v = b.Dilate(v, arg%20)
			case 8:
				v = b.Open(v, arg%20)
			case 9:
				v = b.CombineRMS(v)
			case 10:
				v = b.Atrous(v, arg%10)
			case 11:
				v = b.Delineate(v, del)
			case 12:
				b.Classify(v, cls, win)
			case 13:
				v = b.CSEncode(v, enc)
			case 14:
				v = b.Quantize(v, arg%36)
			case 15:
				v = b.Packetize(v, arg%36)
			case 16:
				b.Lap(v, telemetry.Stage(arg%10))
			case 17:
				v = b.Close(v, arg%20)
			}
		}
		p, err := b.Build()
		if err != nil {
			if !errors.Is(err, ErrBuild) {
				t.Fatalf("Build returned a non-ErrBuild error: %v", err)
			}
			return
		}
		// A plan that builds must execute (NewExec runs a warm-up chunk
		// internally) and survive a real chunk plus a short flush chunk.
		e := p.NewExec()
		chunk := make([][]float64, leads)
		for li := range chunk {
			chunk[li] = make([]float64, chunkLen)
			for i := range chunk[li] {
				chunk[li][i] = float64((i+li)%7) - 3
			}
		}
		// Runtime config errors (e.g. quantiser bit ranges) are
		// acceptable; only panics fail the fuzz.
		_, _ = e.Run(chunk, 0, nil)
		short := make([][]float64, leads)
		for li := range short {
			short[li] = chunk[li][:chunkLen/2]
		}
		_, _ = e.Run(short, 0, nil)
	})
}

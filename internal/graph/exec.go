package graph

import (
	"fmt"
	"math"

	"wbsn/internal/cs"
	"wbsn/internal/dsp"
	"wbsn/internal/link"
	"wbsn/internal/morpho"
	"wbsn/internal/wavelet"
)

// firState is the per-element delay line of a fused stream chain. The
// update in runStreamChain mirrors dsp.FIR.Step statement for statement
// so fused output stays bit-identical to sequential whole-signal passes.
type firState struct {
	delay []float64
	pos   int
}

// bqState is the per-element DF2T state of a fused stream chain.
type bqState struct {
	z1, z2 float64
}

// Exec executes a compiled Plan for one stream. It owns every mutable
// work buffer — the scratch slab planned by the arena, filter states,
// morphological and wavelet scratch — all allocated (and warmed) at
// construction, so steady-state Run calls do not allocate. An Exec is
// not safe for concurrent use; create one per stream and share the
// Plan.
type Exec struct {
	plan *Plan
	slab []float64
	// outHdrs[si] holds the slice headers for stage si's outputs; they
	// are refreshed (re-lengthed to the current chunk) each Run so a
	// stage's consumer can read them while the next stage writes its
	// own headers.
	outHdrs               [][][]float64
	kept                  [][]float64
	ms                    morpho.Scratch
	ws                    wavelet.Scratch
	firs                  [][]firState
	bqs                   [][]bqState
	medianWin, medianSort []float64
	beatBuf, featBuf      []float64
	// combined is the exposed post-combination series of the last Run
	// (arena-backed), read by ClassifyBeat.
	combined []float64
}

func execErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrExec, fmt.Sprintf(format, args...))
}

// NewExec allocates an executor for the plan: the scratch slab, filter
// states and header tables, then runs the plan once over a zero chunk
// so demand-grown scratch (morphological wedges, wavelet ping-pong
// buffers, median sort space, delineator pools) is warm before the
// first real chunk.
func (p *Plan) NewExec() *Exec {
	e := &Exec{
		plan:    p,
		slab:    make([]float64, p.slabLen),
		outHdrs: make([][][]float64, len(p.stages)),
		firs:    make([][]firState, len(p.stages)),
		bqs:     make([][]bqState, len(p.stages)),
		kept:    make([][]float64, 0, p.leads),
	}
	for si := range p.stages {
		sg := &p.stages[si]
		if len(sg.out) > 0 {
			e.outHdrs[si] = make([][]float64, len(sg.out))
		}
		switch sg.kind {
		case stageStreamChain:
			frs := make([]firState, len(sg.elems))
			for ei, el := range sg.elems {
				if !el.biquad {
					frs[ei].delay = make([]float64, len(el.taps))
				}
			}
			e.firs[si] = frs
			e.bqs[si] = make([]bqState, len(sg.elems))
		case stageMedian:
			if sg.k > len(e.medianWin) {
				e.medianWin = make([]float64, sg.k)
			}
		}
	}
	if p.classify != nil {
		e.beatBuf = make([]float64, 0, p.classify.beatWin.Len())
	}
	warm := make([][]float64, p.leads)
	zero := make([]float64, p.chunkLen)
	for i := range warm {
		warm[i] = zero
	}
	e.Run(warm, 0, nil) // warm-up only; zero input cannot fail usefully
	return e
}

// Plan returns the compiled plan this executor runs.
func (e *Exec) Plan() *Plan { return e.plan }

// Run executes the plan over one lead-major chunk starting at absolute
// sample index base, firing each compiled stage's telemetry laps on lp
// (when non-nil) as the stage completes. The returned Result's Combined
// series is arena-backed and valid until the next Run.
func (e *Exec) Run(chunk [][]float64, base int, lp Lapper) (Result, error) {
	p := e.plan
	if len(chunk) != p.leads {
		return Result{}, execErr("got %d leads, plan wants %d", len(chunk), p.leads)
	}
	n := len(chunk[0])
	for _, l := range chunk {
		if len(l) != n {
			return Result{}, execErr("ragged leads")
		}
	}
	if n < 1 || n > p.chunkLen {
		return Result{}, execErr("chunk length %d outside [1, %d]", n, p.chunkLen)
	}

	var res Result
	leads := chunk
	var series []float64
	var coeffs [][]float64
	e.combined = nil

	for si := range p.stages {
		sg := &p.stages[si]
		switch sg.kind {
		case stageGate:
			// Mirrors the node's per-chunk gating: fewer than two leads
			// pass through, and an (impossible) empty keep set falls back
			// to every lead.
			if len(leads) >= 2 {
				mask := link.GoodLeads(leads, sg.fs, link.SQIConfig{}, sg.gateMin)
				kept := e.kept[:0]
				for li, ok := range mask {
					if ok {
						kept = append(kept, leads[li])
					}
				}
				if len(kept) > 0 {
					e.kept = kept
					leads = kept
				}
			}

		case stageStreamChain:
			if sg.lanes == ShapeLeads {
				outs := e.outHdrs[si]
				for l := range leads {
					out := sg.out[l].slice(e.slab)[:n]
					e.runStreamChain(si, sg, leads[l], out)
					outs[l] = out
				}
				leads = outs[:len(leads)]
			} else {
				out := sg.out[0].slice(e.slab)[:n]
				e.runStreamChain(si, sg, series, out)
				series = out
			}

		case stageMedian:
			if err := e.runLanes(si, sg, &leads, &series, n, e.medianLane); err != nil {
				return Result{}, err
			}

		case stageErode:
			if err := e.runLanes(si, sg, &leads, &series, n, func(x, out []float64, k int) error {
				return morpho.ErodeFlatInto(x, k, out, &e.ms)
			}); err != nil {
				return Result{}, err
			}

		case stageDilate:
			if err := e.runLanes(si, sg, &leads, &series, n, func(x, out []float64, k int) error {
				return morpho.DilateFlatInto(x, k, out, &e.ms)
			}); err != nil {
				return Result{}, err
			}

		case stageOpen:
			if err := e.runLanes(si, sg, &leads, &series, n, func(x, out []float64, k int) error {
				return morpho.OpenFlatInto(x, k, out, &e.ms)
			}); err != nil {
				return Result{}, err
			}

		case stageClose:
			if err := e.runLanes(si, sg, &leads, &series, n, func(x, out []float64, k int) error {
				return morpho.CloseFlatInto(x, k, out, &e.ms)
			}); err != nil {
				return Result{}, err
			}

		case stageMorphFilter:
			outs := e.outHdrs[si]
			for l := range leads {
				out := sg.out[l].slice(e.slab)[:n]
				if err := morpho.FilterInto(leads[l], sg.fcfg, out, &e.ms); err != nil {
					return Result{}, err
				}
				outs[l] = out
			}
			leads = outs[:len(leads)]

		case stageFilterCombine:
			series = e.runFilterCombine(sg, leads, n)

		case stageCombine:
			series = dsp.CombineRMSInto(leads, sg.out[0].slice(e.slab)[:n])

		case stageAtrous:
			hdrs := e.outHdrs[si]
			for k := range sg.out {
				hdrs[k] = sg.out[k].slice(e.slab)[:n]
			}
			got, err := wavelet.AtrousInto(series, sg.scales, hdrs[:sg.scales], &e.ws)
			if err != nil {
				return Result{}, err
			}
			coeffs = got

		case stageDelineate:
			beats, err := sg.del.DelineateCoeffs(coeffs)
			if err != nil {
				return Result{}, err
			}
			res.Beats = beats

		case stageEncode:
			if n != sg.enc.WindowLen() {
				// Trailing flush: a partial window produces no packet and
				// fires no downstream laps, matching the streaming node.
				e.combined = series
				res.Combined = series
				return res, nil
			}
			res.Measurements = sg.enc.EncodeLeads(leads)

		case stageQuantize:
			for li := range res.Measurements {
				q, err := cs.NewQuantizer(sg.bits, cs.AutoScale(res.Measurements[li], 1.05))
				if err != nil {
					return Result{}, err
				}
				res.Measurements[li], _ = q.QuantizeSlice(res.Measurements[li])
			}

		case stagePacketRaw:
			res.HasPacket = true
			res.PacketBytes = (len(leads)*n*sg.bits + 7) / 8

		case stagePacketMeas:
			res.HasPacket = true
			res.PacketBytes = (len(res.Measurements[0])*len(res.Measurements)*sg.bits + 7) / 8
		}
		if lp != nil {
			for _, tag := range sg.laps {
				lp.Lap(tag, int64(base))
			}
		}
	}
	e.combined = series
	res.Combined = series
	return res, nil
}

// runLanes applies a lane-wise kernel to every lane of the current
// leads (or the single series), advancing the value to this stage's
// arena outputs.
func (e *Exec) runLanes(si int, sg *stage, leads *[][]float64, series *[]float64, n int,
	kernel func(x, out []float64, k int) error) error {
	if sg.lanes == ShapeLeads {
		outs := e.outHdrs[si]
		for l := range *leads {
			out := sg.out[l].slice(e.slab)[:n]
			if err := kernel((*leads)[l], out, sg.k); err != nil {
				return err
			}
			outs[l] = out
		}
		*leads = outs[:len(*leads)]
		return nil
	}
	out := sg.out[0].slice(e.slab)[:n]
	if err := kernel(*series, out, sg.k); err != nil {
		return err
	}
	*series = out
	return nil
}

// medianLane replicates dsp.MedianFilter (centred window, edge
// replication) with the executor's reusable window and sort space.
func (e *Exec) medianLane(x, out []float64, k int) error {
	n := len(x)
	half := k / 2
	win := e.medianWin[:k]
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			idx := i - half + j
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			win[j] = x[idx]
		}
		out[i], e.medianSort = dsp.MedianInto(win, e.medianSort)
	}
	return nil
}

// runStreamChain applies the fused FIR/biquad run to one lane with all
// element states reset, exactly one pass over the signal. Per-sample
// interleaving is bit-identical to sequential whole-signal application
// because each element's state depends only on its own input prefix.
func (e *Exec) runStreamChain(si int, sg *stage, x, out []float64) {
	frs := e.firs[si]
	bqs := e.bqs[si]
	for ei := range sg.elems {
		if sg.elems[ei].biquad {
			bqs[ei] = bqState{}
		} else {
			f := &frs[ei]
			for i := range f.delay {
				f.delay[i] = 0
			}
			f.pos = 0
		}
	}
	for i, v := range x {
		for ei := range sg.elems {
			el := &sg.elems[ei]
			if el.biquad {
				s := &bqs[ei]
				y := el.b0*v + s.z1
				s.z1 = el.b1*v - el.a1*y + s.z2
				s.z2 = el.b2*v - el.a2*y
				v = y
			} else {
				f := &frs[ei]
				f.delay[f.pos] = v
				acc := 0.0
				idx := f.pos
				for _, t := range el.taps {
					acc += t * f.delay[idx]
					idx--
					if idx < 0 {
						idx = len(f.delay) - 1
					}
				}
				f.pos++
				if f.pos == len(f.delay) {
					f.pos = 0
				}
				v = acc
			}
		}
		out[i] = v
	}
}

// runFilterCombine is the fused morphological conditioning filter +
// RMS lead combiner: the filtered leads never materialise. Per output
// element the floating-point operation sequence — the open/close
// average, the square, the across-lead accumulation order and the
// final sqrt(sum*inv) — matches the unfused FilterInto + CombineRMSInto
// pair exactly, so the fusion is bit-identical.
func (e *Exec) runFilterCombine(sg *stage, leads [][]float64, n int) []float64 {
	t := sg.tmp[0].slice(e.slab)[:n]
	opened := sg.tmp[1].slice(e.slab)[:n]
	baseline := sg.tmp[2].slice(e.slab)[:n]
	corrected := sg.tmp[3].slice(e.slab)[:n]
	o := sg.tmp[4].slice(e.slab)[:n]
	cl := sg.tmp[5].slice(e.slab)[:n]
	cm := sg.out[0].slice(e.slab)[:n]
	for i := range cm {
		cm[i] = 0
	}
	inv := 1 / float64(len(leads))
	for _, x := range leads {
		// Baseline estimate: opening with l0 then closing with lc.
		morpho.ErodeFlatInto(x, sg.l0, t, &e.ms)
		morpho.DilateFlatInto(t, sg.l0, opened, &e.ms)
		morpho.DilateFlatInto(opened, sg.lc, t, &e.ms)
		morpho.ErodeFlatInto(t, sg.lc, baseline, &e.ms)
		for i := 0; i < n; i++ {
			corrected[i] = x[i] - baseline[i]
		}
		// Noise suppression: open/close average with the short SE.
		morpho.ErodeFlatInto(corrected, sg.kn, t, &e.ms)
		morpho.DilateFlatInto(t, sg.kn, o, &e.ms)
		morpho.DilateFlatInto(corrected, sg.kn, t, &e.ms)
		morpho.ErodeFlatInto(t, sg.kn, cl, &e.ms)
		for i := 0; i < n; i++ {
			f := 0.5 * (o[i] + cl[i])
			cm[i] += f * f
		}
	}
	for i := 0; i < n; i++ {
		cm[i] = math.Sqrt(cm[i] * inv)
	}
	return cm
}

// ClassifyBeat classifies the beat at chunk-local R index r of the last
// Run's combined series, recording the classify op's telemetry laps at
// absolute index at. classified is false when the beat window falls off
// the series borders (the beat keeps its default label, as in batch
// processing).
func (e *Exec) ClassifyBeat(r int, at int64, lp Lapper) (label int, membership float64, classified bool, err error) {
	c := e.plan.classify
	if c == nil {
		return 0, 0, false, execErr("plan has no classify op")
	}
	if beat := c.beatWin.ExtractInto(e.combined, r, e.beatBuf); beat != nil {
		e.beatBuf = beat
		z, perr := c.cls.RP().ProjectInto(beat, e.featBuf)
		if perr != nil {
			return 0, 0, false, perr
		}
		e.featBuf = z
		label, membership, err = c.cls.PredictProjected(z)
		if err != nil {
			return 0, 0, false, err
		}
		classified = true
	}
	if lp != nil {
		for _, tag := range c.laps {
			lp.Lap(tag, at)
		}
	}
	return label, membership, classified, nil
}

package graph

import "sort"

// The arena planner turns per-stage buffer requests into offsets inside
// one shared float64 slab. Each request carries a liveness interval in
// stage indices: [def, lastUse]. Two requests whose intervals overlap
// get disjoint slab ranges; requests whose lifetimes are disjoint reuse
// the same bytes. The slab is allocated once per executor — chunk
// processing itself never allocates.

// bufReq is one planned buffer: size in float64s and the stage interval
// over which its contents must survive.
type bufReq struct {
	name         string
	size         int
	def, lastUse int
	off          int // assigned by planArena
}

// bufRef locates a planned buffer inside the slab.
type bufRef struct {
	off, size int
}

func (r bufRef) slice(slab []float64) []float64 { return slab[r.off : r.off+r.size : r.off+r.size] }

// planArena assigns slab offsets with greedy interval packing: requests
// are placed in order of definition at the lowest offset that does not
// collide with any live overlapping request. Returns the total slab
// length. O(R²) in the request count, which is ~a dozen per plan and
// paid once at build time.
func planArena(reqs []*bufReq) int {
	order := make([]*bufReq, len(reqs))
	copy(order, reqs)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].def != order[j].def {
			return order[i].def < order[j].def
		}
		return order[i].size > order[j].size
	})
	total := 0
	placed := make([]*bufReq, 0, len(order))
	for _, r := range order {
		// Collect the ranges of already-placed requests whose liveness
		// overlaps r's.
		type rng struct{ lo, hi int }
		var busy []rng
		for _, p := range placed {
			if p.lastUse < r.def || r.lastUse < p.def {
				continue
			}
			busy = append(busy, rng{p.off, p.off + p.size})
		}
		sort.Slice(busy, func(i, j int) bool { return busy[i].lo < busy[j].lo })
		off := 0
		for _, bz := range busy {
			if off+r.size <= bz.lo {
				break
			}
			if bz.hi > off {
				off = bz.hi
			}
		}
		r.off = off
		placed = append(placed, r)
		if end := off + r.size; end > total {
			total = end
		}
	}
	return total
}

package cs

import (
	"math"
	"testing"

	"wbsn/internal/ecg"
)

func smallRecordSet() []*ecg.Record {
	return ecg.GenerateSet(ecg.Config{Duration: 10}, 500, 2)
}

func TestEvaluateCRProducesFiniteSNR(t *testing.T) {
	if testing.Short() {
		t.Skip("CS sweep is slow")
	}
	recs := smallRecordSet()
	pt, err := EvaluateCR(recs, 50, SweepConfig{
		MaxWindowsPerRecord: 1,
		Solver:              SolverConfig{Iters: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pt.SNRSingle) || math.IsNaN(pt.SNRMulti) {
		t.Fatal("NaN SNR from sweep")
	}
	if pt.SNRSingle < 5 {
		t.Errorf("SNR at CR 50 suspiciously low: %v", pt.SNRSingle)
	}
	if pt.CR != 50 {
		t.Errorf("CR echoed wrong: %v", pt.CR)
	}
}

func TestSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("CS sweep is slow")
	}
	recs := smallRecordSet()
	pts, err := Sweep(recs, []float64{30, 60, 90}, SweepConfig{
		MaxWindowsPerRecord: 1,
		SkipMulti:           true,
		Solver:              SolverConfig{Iters: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if !(pts[0].SNRSingle > pts[2].SNRSingle) {
		t.Errorf("SNR should fall with CR: %v vs %v", pts[0].SNRSingle, pts[2].SNRSingle)
	}
}

func TestCrossingCR(t *testing.T) {
	pts := []SweepPoint{
		{CR: 40, SNRSingle: 30, SNRMulti: 35},
		{CR: 60, SNRSingle: 25, SNRMulti: 30},
		{CR: 80, SNRSingle: 15, SNRMulti: 22},
		{CR: 90, SNRSingle: 8, SNRMulti: 12},
	}
	cs := CrossingCR(pts, 20, false)
	if math.Abs(cs-70) > 1e-9 {
		t.Errorf("single-lead 20 dB crossing = %v, want 70", cs)
	}
	cm := CrossingCR(pts, 20, true)
	if math.Abs(cm-82) > 1e-9 {
		t.Errorf("multi-lead 20 dB crossing = %v, want 82", cm)
	}
	// Multi-lead crossing must be at higher CR (the Figure 5 ordering).
	if !(cm > cs) {
		t.Error("multi-lead should cross 20 dB at higher CR")
	}
	if !math.IsNaN(CrossingCR(pts, 1, false)) {
		t.Error("never-crossed target should return NaN")
	}
	if !math.IsNaN(CrossingCR(nil, 20, false)) {
		t.Error("empty curve should return NaN")
	}
}

func TestClampSNR(t *testing.T) {
	if clampSNR(math.Inf(1)) != 60 {
		t.Error("+Inf should clamp to 60")
	}
	if clampSNR(math.Inf(-1)) != -10 {
		t.Error("-Inf should clamp to -10")
	}
	if clampSNR(25) != 25 {
		t.Error("in-range value should pass through")
	}
}

func TestWindowsOf(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Duration: 10, Seed: 1})
	ws := windowsOf(rec, 512, 3)
	if len(ws) != 3 {
		t.Fatalf("got %d windows", len(ws))
	}
	for _, w := range ws {
		if len(w) != 3 {
			t.Fatal("window should have 3 leads")
		}
		for _, l := range w {
			if len(l) != 512 {
				t.Fatal("window lead length wrong")
			}
		}
	}
	// Request more windows than fit: truncated.
	ws = windowsOf(rec, 512, 100)
	if len(ws) != rec.Len()/512 {
		t.Errorf("expected %d windows, got %d", rec.Len()/512, len(ws))
	}
}

package cs

// Batched joint (group-sparse ℓ2,1) reconstruction. Each item's L lead
// planes advance in lockstep under one per-item control state — the
// group soft-threshold couples a window's leads, so the joint batch
// state machine is per item where the leads solver's is per plane. The
// gradient, still per plane, is shared with the leads solver's batched
// pipeline.

import "math"

// objectiveJointItem is objectiveJoint over one item's plane stripes
// (same FP order).
func (d *Decoder) objectiveJointItem(jt *jointState, bs *batchScratch) float64 {
	n := d.n
	objX := bs.objX[:n]
	objAx := bs.objAx[:d.m]
	data := 0.0
	for l := 0; l < jt.L; l++ {
		pi := jt.planeBase + l
		th := nStripe(bs.theta, pi, n)
		if err := d.cfg.Wavelet.InverseInto(th, d.cfg.Levels, objX, &bs.sws); err != nil {
			panic("cs: internal synthesis error: " + err.Error())
		}
		bs.planes[pi].phi.Apply(objX, objAx)
		ysn := bs.y[pi*d.m : pi*d.m+d.m]
		for i, v := range objAx {
			r := v - ysn[i]
			data += r * r
		}
	}
	rw := nStripe(bs.rw, jt.planeBase, n)
	pen := 0.0
	for j := 0; j < n; j++ {
		w := d.weights[j] * rw[j]
		if w == 0 {
			continue
		}
		g := 0.0
		for l := 0; l < jt.L; l++ {
			v := bs.theta[(jt.planeBase+l)*n+j]
			g += v * v
		}
		if g != 0 {
			pen += w * math.Sqrt(g)
		}
	}
	return 0.5*data + jt.lambda*pen
}

// divergedJointItem is divergedJoint over one item's plane stripes
// (same FP order).
func (d *Decoder) divergedJointItem(jt *jointState, bs *batchScratch) bool {
	n := d.n
	objX := bs.objX[:n]
	objAx := bs.objAx[:d.m]
	num, den := 0.0, 0.0
	for l := 0; l < jt.L; l++ {
		pi := jt.planeBase + l
		th := nStripe(bs.theta, pi, n)
		if err := d.cfg.Wavelet.InverseInto(th, d.cfg.Levels, objX, &bs.sws); err != nil {
			panic("cs: internal synthesis error: " + err.Error())
		}
		bs.planes[pi].phi.Apply(objX, objAx)
		ysn := bs.y[pi*d.m : pi*d.m+d.m]
		for i, v := range objAx {
			r := v - ysn[i]
			num += r * r
		}
		for _, v := range ysn {
			den += v * v
		}
	}
	return !(num <= den)
}

// seedJointPass applies solveJoint's per-pass seeding switch to one
// item's planes and resets its per-pass momentum/objective state.
func (d *Decoder) seedJointPass(jt *jointState, items []*BatchItem, bs *batchScratch) {
	n := d.n
	for l := 0; l < jt.L; l++ {
		pi := jt.planeBase + l
		th := nStripe(bs.theta, pi, n)
		pv := nStripe(bs.prev, pi, n)
		mm := nStripe(bs.mom, pi, n)
		switch {
		case jt.warm && jt.pass == 0:
			copy(th, items[jt.item].Warm.seed(l, n))
			copy(mm, th)
		case jt.warm:
			copy(mm, th)
		default:
			for i := range th {
				th[i] = 0
				pv[i] = 0
				mm[i] = 0
			}
		}
	}
	jt.tk = 1
	jt.lastObj = 0
	jt.objValid = false
}

// stepJoint advances one item by one joint FISTA iteration and reports
// whether the item is still active.
func (d *Decoder) stepJoint(ji int, items []*BatchItem, bs *batchScratch) bool {
	jt := &bs.joints[ji]
	st := &items[jt.item].Stats
	n := d.n
	L := jt.L
	step := d.step
	adaptive := d.cfg.Tol > 0
	tol := d.cfg.Tol
	tl := bs.lt[:0]
	pl := bs.lp[:0]
	ml := bs.lm[:0]
	gl := bs.lg[:0]
	for l := 0; l < L; l++ {
		pi := jt.planeBase + l
		tl = append(tl, nStripe(bs.theta, pi, n))
		pl = append(pl, nStripe(bs.prev, pi, n))
		ml = append(ml, nStripe(bs.mom, pi, n))
		gl = append(gl, nStripe(bs.grad, pi, n))
	}
	// Group soft-threshold across leads at each coefficient index, with
	// the prev snapshot fused into the same sweep (elementwise, so the
	// per-element values match the copy-then-threshold order exactly).
	rw := nStripe(bs.rw, jt.planeBase, n)
	lamStep := step * jt.lambda
	weights := d.weights
	if L == 3 {
		// Dominant shape (3-lead joint): hoisting the stripe slices out
		// of the j loop removes the slice-of-slice indirection that
		// otherwise dominates this sweep.
		t0, t1, t2 := tl[0], tl[1], tl[2]
		p0, p1, p2 := pl[0], pl[1], pl[2]
		m0, m1, m2 := ml[0], ml[1], ml[2]
		g0, g1, g2 := gl[0], gl[1], gl[2]
		for j := 0; j < n; j++ {
			p0[j] = t0[j]
			p1[j] = t1[j]
			p2[j] = t2[j]
			v0 := m0[j] - step*g0[j]
			v1 := m1[j] - step*g1[j]
			v2 := m2[j] - step*g2[j]
			t0[j] = v0 // stash pre-threshold value
			t1[j] = v1
			t2[j] = v2
			norm := 0.0
			norm += v0 * v0
			norm += v1 * v1
			norm += v2 * v2
			thr := lamStep * weights[j] * rw[j]
			if thr == 0 {
				continue
			}
			norm = math.Sqrt(norm)
			if norm <= thr {
				t0[j] = 0
				t1[j] = 0
				t2[j] = 0
				continue
			}
			shrink := 1 - thr/norm
			t0[j] = v0 * shrink
			t1[j] = v1 * shrink
			t2[j] = v2 * shrink
		}
	} else {
		for j := 0; j < n; j++ {
			norm := 0.0
			for l := 0; l < L; l++ {
				pl[l][j] = tl[l][j]
				v := ml[l][j] - step*gl[l][j]
				tl[l][j] = v // stash pre-threshold value
				norm += v * v
			}
			thr := lamStep * weights[j] * rw[j]
			if thr == 0 {
				continue
			}
			norm = math.Sqrt(norm)
			if norm <= thr {
				for l := 0; l < L; l++ {
					tl[l][j] = 0
				}
				continue
			}
			shrink := 1 - thr/norm
			for l := 0; l < L; l++ {
				tl[l][j] *= shrink
			}
		}
	}
	st.Iters++
	restart := false
	var diffSq, normSq float64
	if adaptive {
		dot := 0.0
		for l := 0; l < L; l++ {
			tlv, plv, mlv := tl[l], pl[l], ml[l]
			for i := range tlv {
				dd := tlv[i] - plv[i]
				diffSq += dd * dd
				normSq += tlv[i] * tlv[i]
				dot += (mlv[i] - tlv[i]) * dd
			}
		}
		if dot > 0 {
			restart = true
			st.Restarts++
		}
	}
	if adaptive && jt.it+1 >= d.cfg.MinIters && diffSq <= tol*tol*(normSq+tinyNormSq) {
		obj := d.objectiveJointItem(jt, bs)
		if jt.objValid && obj >= jt.lastObj*(1-tol) {
			st.EarlyExit = true
			return d.endJointPass(ji, items, bs)
		}
		jt.lastObj, jt.objValid = obj, true
	}
	if restart {
		jt.tk = 1
		for l := 0; l < L; l++ {
			copy(ml[l], tl[l])
		}
	} else {
		tNext := (1 + math.Sqrt(1+4*jt.tk*jt.tk)) / 2
		beta := (jt.tk - 1) / tNext
		for l := 0; l < L; l++ {
			tlv, plv, mlv := tl[l], pl[l], ml[l]
			for i := range mlv {
				mlv[i] = tlv[i] + beta*(tlv[i]-plv[i])
			}
		}
		jt.tk = tNext
	}
	jt.it++
	if jt.it >= d.cfg.Iters {
		return d.endJointPass(ji, items, bs)
	}
	return true
}

// endJointPass closes one reweighting pass of an item: group-reweight
// and seed the next pass, or finish the item (with warm-divergence
// fallback, per-lead store, rescale and commit).
func (d *Decoder) endJointPass(ji int, items []*BatchItem, bs *batchScratch) bool {
	jt := &bs.joints[ji]
	n := d.n
	if jt.pass < d.cfg.Reweights {
		// Group-level reweighting around the current estimate.
		norms := bs.norms[:n]
		rw := nStripe(bs.rw, jt.planeBase, n)
		peak := 0.0
		for j := 0; j < n; j++ {
			g := 0.0
			for l := 0; l < jt.L; l++ {
				v := bs.theta[(jt.planeBase+l)*n+j]
				g += v * v
			}
			norms[j] = math.Sqrt(g)
			if norms[j] > peak {
				peak = norms[j]
			}
		}
		eps := 0.05*peak + 1e-12
		for j := range rw {
			rw[j] = eps / (norms[j] + eps)
		}
		jt.pass++
		jt.it = 0
		d.seedJointPass(jt, items, bs)
		return true
	}
	item := items[jt.item]
	if jt.warm && d.divergedJointItem(jt, bs) {
		item.Stats.ColdFallback = true
		jt.warm = false
		rw := nStripe(bs.rw, jt.planeBase, n)
		for j := range rw {
			rw[j] = 1
		}
		jt.pass = 0
		jt.it = 0
		d.seedJointPass(jt, items, bs)
		return true
	}
	if jt.warm {
		item.Stats.Warm = true
	}
	for l := 0; l < jt.L; l++ {
		pi := jt.planeBase + l
		th := nStripe(bs.theta, pi, n)
		item.Warm.store(l, th)
		out := item.X[l]
		if err := d.cfg.Wavelet.InverseInto(th, d.cfg.Levels, out, &bs.sws); err != nil {
			panic("cs: internal synthesis error: " + err.Error())
		}
		gain := bs.gains[pi]
		for i := range out {
			out[i] *= gain
		}
	}
	item.Warm.commit()
	return false
}

// ReconstructJointBatch reconstructs every item with the multi-lead
// group-sparse solver in one structure-of-arrays pass. Per item it is
// bit-identical to ReconstructJointWarm(item.Y, item.Warm), at every
// batch size.
func (d *Decoder) ReconstructJointBatch(items []*BatchItem) {
	total := 0
	maxL := 1
	for _, it := range items {
		it.X, it.Err, it.Stats = nil, nil, SolveStats{}
		if len(it.Y) == 0 {
			it.Err = ErrSolver
			continue
		}
		ok := true
		for _, y := range it.Y {
			if len(y) != d.m {
				ok = false
				break
			}
		}
		if !ok {
			it.Err = ErrSolver
			continue
		}
		total += len(it.Y)
		if len(it.Y) > maxL {
			maxL = len(it.Y)
		}
	}
	if total == 0 {
		return
	}
	bs := d.getBatchScratch(total, len(items), maxL)
	defer d.bpool.Put(bs)
	bs.planes = bs.planes[:0]
	bs.joints = bs.joints[:0]
	for ii, it := range items {
		if it.Err != nil {
			continue
		}
		L := len(it.Y)
		base := len(bs.planes)
		it.X = make([][]float64, L)
		for l, y := range it.Y {
			pi := len(bs.planes)
			it.X[l] = make([]float64, d.n)
			// Unit-RMS normalisation per lead, exactly as reconstructJoint.
			rms := 0.0
			for _, v := range y {
				rms += v * v
			}
			rms = math.Sqrt(rms / float64(len(y)))
			if rms == 0 {
				rms = 1
			}
			bs.gains[pi] = rms
			inv := 1 / rms
			ystripe := bs.y[pi*d.m : pi*d.m+d.m]
			for i, v := range y {
				ystripe[i] = v * inv
			}
			bs.planes = append(bs.planes, planeState{
				item: ii, lead: l, phi: d.matrixFor(l), mi: d.matrixIndexFor(l),
			})
		}
		bs.joints = append(bs.joints, jointState{item: ii, planeBase: base, L: L})
	}
	// One batched back-projection feeds every item's group-λ derivation.
	gp := bs.gradPlanes[:0]
	for pi := range bs.planes {
		gp = append(gp, pi)
	}
	d.applyBatchGroups(bs.y, bs.z, gp, bs, false)
	d.analyzeBatch(bs.z, bs.grad, gp, bs)
	for ji := range bs.joints {
		jt := &bs.joints[ji]
		it := items[jt.item]
		norms := bs.norms[:d.n]
		for j := range norms {
			norms[j] = 0
		}
		for l := 0; l < jt.L; l++ {
			g := nStripe(bs.grad, jt.planeBase+l, d.n)
			for j, v := range g {
				norms[j] += v * v
			}
		}
		groupMax := 0.0
		for _, g := range norms {
			if g > groupMax {
				groupMax = g
			}
		}
		jt.lambda = d.cfg.LambdaRel * math.Sqrt(groupMax)
		it.Warm.prepare(jt.L, d.n)
		jt.warm = it.Warm.seedAll(jt.L, d.n) != nil
		rw := nStripe(bs.rw, jt.planeBase, d.n)
		for j := range rw {
			rw[j] = 1
		}
		d.seedJointPass(jt, items, bs)
	}
	active := bs.active[:0]
	for ji := range bs.joints {
		active = append(active, ji)
	}
	spare := bs.next[:0]
	for len(active) > 0 {
		gp = gp[:0]
		for _, ji := range active {
			jt := &bs.joints[ji]
			for l := 0; l < jt.L; l++ {
				gp = append(gp, jt.planeBase+l)
			}
		}
		d.gradBatch(gp, bs)
		next := spare[:0]
		for _, ji := range active {
			if d.stepJoint(ji, items, bs) {
				next = append(next, ji)
			}
		}
		active, spare = next, active[:0]
	}
}

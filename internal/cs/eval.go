package cs

import (
	"math"
	"math/rand"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

// This file is the Figure 5 harness: sweep the compression ratio and
// report the averaged output SNR over a record set, for independent
// single-lead recovery and joint multi-lead recovery.

// SweepPoint is one (CR, SNR) sample of the quality curve.
type SweepPoint struct {
	CR        float64
	SNRSingle float64
	SNRMulti  float64
}

// SweepConfig parameterises the CR sweep.
type SweepConfig struct {
	// Window is the CS window length n (default 512).
	Window int
	// Density is the sparse-binary nonzeros per column (default 4).
	Density int
	// Solver configures the FISTA decoders.
	Solver SolverConfig
	// Seed drives sensing-matrix generation.
	Seed int64
	// MaxWindowsPerRecord bounds work per record (default 4).
	MaxWindowsPerRecord int
	// SkipMulti disables the joint reconstruction (for quick sweeps).
	SkipMulti bool
}

func (c SweepConfig) withDefaults() SweepConfig {
	out := c
	if out.Window <= 0 {
		out.Window = 512
	}
	if out.Density <= 0 {
		out.Density = 4
	}
	if out.MaxWindowsPerRecord <= 0 {
		out.MaxWindowsPerRecord = 4
	}
	return out
}

// windowsOf cuts the first maxW non-overlapping n-sample windows from
// every lead of the record (clean leads: reconstruction quality is
// scored against what was encoded).
func windowsOf(rec *ecg.Record, n, maxW int) [][][]float64 {
	var out [][][]float64 // [window][lead][sample]
	total := rec.Len()
	for w := 0; w < maxW; w++ {
		start := w * n
		if start+n > total {
			break
		}
		leads := make([][]float64, len(rec.Leads))
		for li := range rec.Leads {
			leads[li] = rec.Clean[li][start : start+n]
		}
		out = append(out, leads)
	}
	return out
}

// EvaluateCR measures the averaged single-lead and multi-lead output SNR
// at one compression ratio over the record set. Each lead channel has its
// own sparse-binary sensing matrix (one seed per read-out channel, as the
// distributed-CS setting of ref [6] allows); the single-lead strategy
// decodes each lead independently from the same measurements the joint
// strategy uses, so the comparison isolates the reconstruction model.
func EvaluateCR(records []*ecg.Record, cr float64, cfg SweepConfig) (SweepPoint, error) {
	c := cfg.withDefaults()
	n := c.Window
	m := MeasurementsForCR(n, cr)
	rng := rand.New(rand.NewSource(c.Seed))
	numLeads := 3
	if len(records) > 0 {
		numLeads = len(records[0].Leads)
	}
	phis := make([]Matrix, numLeads)
	encs := make([]*Encoder, numLeads)
	for l := 0; l < numLeads; l++ {
		phi, err := NewSparseBinary(m, n, minInt(c.Density, m), rng)
		if err != nil {
			return SweepPoint{}, err
		}
		phis[l] = phi
		encs[l] = NewEncoder(phi)
	}
	dec, err := NewJointDecoder(phis, c.Solver)
	if err != nil {
		return SweepPoint{}, err
	}
	var snrS, snrM []float64
	for _, rec := range records {
		for _, leads := range windowsOf(rec, n, c.MaxWindowsPerRecord) {
			ys := make([][]float64, len(leads))
			for li := range leads {
				ys[li] = encs[minInt(li, numLeads-1)].Encode(leads[li])
			}
			xs, err := dec.ReconstructLeads(ys)
			if err != nil {
				return SweepPoint{}, err
			}
			for li := range leads {
				snrS = append(snrS, clampSNR(dsp.SNRdB(leads[li], xs[li])))
			}
			if !c.SkipMulti {
				xj, err := dec.ReconstructJoint(ys)
				if err != nil {
					return SweepPoint{}, err
				}
				for li := range leads {
					snrM = append(snrM, clampSNR(dsp.SNRdB(leads[li], xj[li])))
				}
			}
		}
	}
	pt := SweepPoint{CR: cr, SNRSingle: dsp.Mean(snrS)}
	if !c.SkipMulti {
		pt.SNRMulti = dsp.Mean(snrM)
	}
	return pt, nil
}

// clampSNR bounds pathological per-window values so averages stay
// meaningful (a perfectly reconstructed near-zero window gives +Inf).
func clampSNR(v float64) float64 {
	if math.IsInf(v, 1) || v > 60 {
		return 60
	}
	if math.IsInf(v, -1) || v < -10 {
		return -10
	}
	return v
}

// Sweep evaluates a list of compression ratios and returns the quality
// curve, the paper's Figure 5.
func Sweep(records []*ecg.Record, crs []float64, cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(crs))
	for _, cr := range crs {
		pt, err := EvaluateCR(records, cr, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// CrossingCR interpolates the compression ratio at which the quality
// curve falls to the target SNR (the paper reports the CR where the
// averaged SNR crosses 20 dB: 65.9 single-lead, 72.7 multi-lead). The
// curve must be sampled on increasing CR; it returns NaN when the target
// is never crossed.
func CrossingCR(points []SweepPoint, target float64, multi bool) float64 {
	val := func(p SweepPoint) float64 {
		if multi {
			return p.SNRMulti
		}
		return p.SNRSingle
	}
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		va, vb := val(a), val(b)
		if (va >= target && vb < target) || (va > target && vb <= target) {
			// Linear interpolation between the bracketing samples.
			frac := (va - target) / (va - vb)
			return a.CR + frac*(b.CR-a.CR)
		}
	}
	return math.NaN()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

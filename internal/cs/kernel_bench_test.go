package cs

import (
	"math/rand"
	"testing"
)

// BenchmarkApplyTCSR pairs the row-major CSR kernels against the
// column-major reference at the paper's single-lead operating point
// (512-sample window, CR 65.9, d = 4). ApplyT runs twice per FISTA
// iteration — it is the innermost loop of the whole gateway — so this
// pair is the evidence for the kernel-layout choice.
func BenchmarkApplyTCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	m := MeasurementsForCR(512, 65.9)
	sb, err := NewSparseBinary(m, 512, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	r := make([]float64, m)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, 512)
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb.ApplyT(r, z)
		}
	})
	b.Run("colmajor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb.applyTColMajor(r, z)
		}
	})
}

// BenchmarkApplyCSR is the forward-kernel companion pair: the CSR
// Apply reduces each row into a register with one sequential store,
// the column-major reference scatter-adds with a zeroing prologue.
func BenchmarkApplyCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	m := MeasurementsForCR(512, 65.9)
	sb, err := NewSparseBinary(m, 512, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, m)
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb.Apply(x, y)
		}
	})
	b.Run("colmajor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb.applyColMajor(x, y)
		}
	})
}

package cs

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/wavelet"
)

func TestTreeStructure(t *testing.T) {
	parent, err := treeStructure(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: approx [0,8), d3 [8,16), d2 [16,32), d1 [32,64).
	for i := 0; i < 8; i++ {
		if parent[i] != -1 {
			t.Errorf("approx coefficient %d has parent %d", i, parent[i])
		}
	}
	// d3 attaches one-to-one to the approximation band.
	for i := 8; i < 16; i++ {
		if parent[i] != i-8 {
			t.Errorf("d3[%d] parent = %d, want %d", i, parent[i], i-8)
		}
	}
	// d2[k] -> d3[k/2].
	for i := 16; i < 32; i++ {
		want := 8 + (i-16)/2
		if parent[i] != want {
			t.Errorf("d2[%d] parent = %d, want %d", i, parent[i], want)
		}
	}
	// d1[k] -> d2[k/2].
	for i := 32; i < 64; i++ {
		want := 16 + (i-32)/2
		if parent[i] != want {
			t.Errorf("d1[%d] parent = %d, want %d", i, parent[i], want)
		}
	}
	if _, err := treeStructure(100, 3); err == nil {
		t.Error("bad length should fail")
	}
}

func TestProjectTreeRespectsStructure(t *testing.T) {
	n, levels := 64, 3
	parent, _ := treeStructure(n, levels)
	alen := n >> uint(levels)
	theta := make([]float64, n)
	// A child with a huge value whose parent chain is zero: the parent
	// has magnitude 0, so under a tight budget the child must be dropped
	// unless its parent is kept first.
	theta[40] = 100 // d1 band, parent 16+(40-32)/2 = 20, grandparent 8+(20-16)/2=10
	projectTree(theta, parent, alen, 1, make([]bool, n))
	if theta[40] != 0 {
		t.Error("orphan child with zero parent should be dropped at budget 1")
	}
	// With parent and grandparent carrying weight, the chain survives.
	theta = make([]float64, n)
	theta[10] = 5 // d3
	theta[20] = 4 // d2, parent 10
	theta[40] = 3 // d1, parent 20
	projectTree(theta, parent, alen, 3, make([]bool, n))
	if theta[10] == 0 || theta[20] == 0 || theta[40] == 0 {
		t.Errorf("connected chain should survive: %v %v %v", theta[10], theta[20], theta[40])
	}
}

func TestTreeIHTReconstructsTreeSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, levels := 256, 4
	w := wavelet.Daubechies8()
	parent, _ := treeStructure(n, levels)
	alen := n >> uint(levels)
	// Build a tree-sparse coefficient vector: a few rooted chains.
	theta := make([]float64, n)
	for i := 0; i < alen; i++ {
		theta[i] = rng.NormFloat64()
	}
	// Three chains down from d4.
	detail := 0
	for c := 0; c < 3; c++ {
		i := alen + rng.Intn(alen) // coarsest detail band
		for i >= 0 && i < n {
			if theta[i] == 0 {
				theta[i] = 2 * rng.NormFloat64()
				detail++
			}
			// Descend to a child: find some j with parent[j] == i.
			child := -1
			for j := alen; j < n; j++ {
				if parent[j] == i && theta[j] == 0 {
					child = j
					break
				}
			}
			i = child
		}
	}
	x, err := w.Inverse(theta, levels)
	if err != nil {
		t.Fatal(err)
	}
	m := 100
	phi, _ := NewGaussian(m, n, rng)
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := dec.TreeIHT(enc.Encode(x), detail+10, 400)
	if err != nil {
		t.Fatal(err)
	}
	if snr := dsp.SNRdB(x, xhat); snr < 15 {
		t.Errorf("TreeIHT on tree-sparse signal: %.1f dB, want >= 15", snr)
	}
}

func TestTreeIHTValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	phi, _ := NewSparseBinary(64, 256, 4, rng)
	dec, _ := NewDecoder(phi, SolverConfig{})
	if _, err := dec.TreeIHT(make([]float64, 10), 5, 10); err != ErrSolver {
		t.Error("bad measurement length should fail")
	}
	if _, err := dec.TreeIHT(make([]float64, 64), 0, 10); err != ErrSolver {
		t.Error("zero budget should fail")
	}
	if _, err := dec.TreeIHT(make([]float64, 64), 5, 0); err != ErrSolver {
		t.Error("zero iterations should fail")
	}
}

func TestQuickSelect(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if v := quickSelect(append([]float64(nil), xs...), 1); v != 9 {
		t.Errorf("1st largest = %v", v)
	}
	if v := quickSelect(append([]float64(nil), xs...), 3); v != 5 {
		t.Errorf("3rd largest = %v", v)
	}
	if v := quickSelect(append([]float64(nil), xs...), 5); v != 1 {
		t.Errorf("5th largest = %v", v)
	}
	if !math.IsInf(quickSelect(xs, 0), 1) {
		t.Error("k=0 should be +Inf")
	}
	if !math.IsInf(quickSelect(xs, 9), -1) {
		t.Error("k>len should be -Inf")
	}
}

//go:build race

package cs

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because it defeats sync.Pool
// caching (pooled items are dropped to widen the race surface).
const raceEnabled = true

package cs

import (
	"math/rand"
	"sync"
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

// streamWindows cuts a record's lead-0 samples into consecutive
// n-sample windows and encodes each one.
func streamWindows(rec *ecg.Record, enc *Encoder, n, count int) (raw [][]float64, meas [][]float64) {
	for w := 0; w < count; w++ {
		x := rec.Clean[0][w*n : (w+1)*n]
		raw = append(raw, x)
		meas = append(meas, enc.Encode(x))
	}
	return raw, meas
}

// TestSolverEarlyExitAccuracy is the convergence table test: across
// clean, noisy, and AF records, the Tol-driven warm solver must spend
// fewer iterations than the fixed budget while staying within 1% PRD of
// the fixed-200-iteration cold baseline.
func TestSolverEarlyExitAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window solver sweep")
	}
	const n, windows = 512, 8
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	base, err := NewDecoder(phi, SolverConfig{Iters: 200, Reweights: 1})
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := NewDecoder(phi, SolverConfig{Iters: 200, Reweights: 1, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ecg.Config
	}{
		{"clean", ecg.Config{Seed: 41, Duration: 20}},
		{"noisy", ecg.Config{Seed: 42, Duration: 20, Noise: ecg.NoiseConfig{EMG: 0.04, BaselineWander: 0.2}}},
		{"af", ecg.Config{Seed: 43, Duration: 20, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := ecg.Generate(tc.cfg)
			raw, meas := streamWindows(rec, enc, n, windows)
			ws := NewWarmState()
			budget := 200 * 2 // Iters per pass × (1 + Reweights)
			totalIters, earlyExits := 0, 0
			for w := 0; w < windows; w++ {
				ref, err := base.Reconstruct(meas[w])
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := adapt.ReconstructWarm(meas[w], ws)
				if err != nil {
					t.Fatal(err)
				}
				if st.ColdFallback {
					t.Errorf("window %d: unexpected cold fallback", w)
				}
				if w > 0 && !st.Warm {
					t.Errorf("window %d: warm seed not used", w)
				}
				totalIters += st.Iters
				if st.EarlyExit {
					earlyExits++
				}
				basePRD := dsp.PRD(raw[w], ref)
				gotPRD := dsp.PRD(raw[w], got)
				if gotPRD > basePRD*1.01+0.05 {
					t.Errorf("window %d: PRD %.3f%% vs baseline %.3f%% (>1%% worse)", w, gotPRD, basePRD)
				}
			}
			meanIters := float64(totalIters) / float64(windows)
			if meanIters >= float64(budget) {
				t.Errorf("mean iterations %.0f did not beat the fixed budget %d", meanIters, budget)
			}
			if earlyExits == 0 {
				t.Error("early exit never triggered across the stream")
			}
			t.Logf("%s: mean iters %.0f of %d budget, %d/%d windows early-exited",
				tc.name, meanIters, budget, earlyExits, windows)
		})
	}
}

// TestWarmResetPreventsCrossSeeding pins the stream-isolation contract
// at the solver level: after Reset, a decode must be bit-identical to a
// cold decode — no trace of the previous stream's coefficients.
func TestWarmResetPreventsCrossSeeding(t *testing.T) {
	const n = 512
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 60, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	recA := ecg.Generate(ecg.Config{Seed: 51, Duration: 6})
	recB := ecg.Generate(ecg.Config{Seed: 52, Duration: 6, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	yB := enc.Encode(recB.Clean[0][:n])

	cold, stCold, err := dec.ReconstructWarm(yB, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWarmState()
	for w := 0; w < 3; w++ { // absorb patient A's morphology
		if _, _, err := dec.ReconstructWarm(enc.Encode(recA.Clean[0][w*n:(w+1)*n]), ws); err != nil {
			t.Fatal(err)
		}
	}
	if !ws.Valid() {
		t.Fatal("warm state should be valid after solves")
	}
	ws.Reset()
	if ws.Valid() {
		t.Fatal("Reset did not invalidate the warm state")
	}
	got, st, err := dec.ReconstructWarm(yB, ws)
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm {
		t.Error("solve after Reset still reported a warm seed")
	}
	if st.Iters != stCold.Iters {
		t.Errorf("post-Reset solve ran %d iters, cold ran %d", st.Iters, stCold.Iters)
	}
	for i := range cold {
		if got[i] != cold[i] {
			t.Fatalf("post-Reset decode differs from cold at %d: %g vs %g", i, got[i], cold[i])
		}
	}

	// Without Reset the seed must actually flow (the isolation test
	// would pass vacuously if warm state never engaged).
	for w := 0; w < 3; w++ {
		if _, _, err := dec.ReconstructWarm(enc.Encode(recA.Clean[0][w*n:(w+1)*n]), ws); err != nil {
			t.Fatal(err)
		}
	}
	_, st, err = dec.ReconstructWarm(yB, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Warm {
		t.Error("warm seed did not engage without Reset")
	}
}

// TestWarmColdFallback forces a poisoned seed (huge coefficients, tiny
// budget) and checks the solver notices the divergence, re-solves cold,
// and returns exactly the cold answer.
func TestWarmColdFallback(t *testing.T) {
	const n = 512
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 3, MinIters: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	rec := ecg.Generate(ecg.Config{Seed: 61, Duration: 4})
	y := enc.Encode(rec.Clean[0][:n])
	cold, _, err := dec.ReconstructWarm(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWarmState()
	ws.prepare(1, n)
	poison := make([]float64, n)
	for i := range poison {
		poison[i] = 1e12
	}
	ws.store(0, poison)
	ws.commit()
	got, st, err := dec.ReconstructWarm(y, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ColdFallback {
		t.Fatal("poisoned warm seed did not trigger the cold fallback")
	}
	if st.Warm {
		t.Error("fallback solve still flagged as warm")
	}
	for i := range cold {
		if got[i] != cold[i] {
			t.Fatalf("fallback output differs from cold at %d", i)
		}
	}
	// The fallback's result replaces the poison: next solve is warm again.
	_, st, err = dec.ReconstructWarm(y, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Warm || st.ColdFallback {
		t.Errorf("state after fallback: warm=%v fallback=%v, want warm clean solve", st.Warm, st.ColdFallback)
	}
}

// TestWarmStateShape covers the nil-safety and reshaping contract.
func TestWarmStateShape(t *testing.T) {
	var nilWS *WarmState
	nilWS.Reset() // must not panic
	nilWS.prepare(2, 64)
	nilWS.store(0, make([]float64, 64))
	nilWS.commit()
	if nilWS.Valid() || nilWS.Leads() != 0 || nilWS.seed(0, 64) != nil || nilWS.seedAll(1, 64) != nil {
		t.Error("nil WarmState must stay cold")
	}
	ws := NewWarmState()
	ws.prepare(2, 64)
	ws.store(0, make([]float64, 64))
	ws.store(1, make([]float64, 64))
	ws.commit()
	if !ws.Valid() || ws.Leads() != 2 {
		t.Fatal("state should be valid for 2×64")
	}
	if ws.seed(0, 64) == nil || ws.seed(2, 64) != nil || ws.seed(0, 128) != nil {
		t.Error("seed shape checks wrong")
	}
	if ws.seedAll(2, 64) == nil || ws.seedAll(1, 64) != nil {
		t.Error("seedAll shape checks wrong")
	}
	ws.prepare(3, 64) // lead-count growth invalidates
	if ws.Valid() {
		t.Error("lead growth must invalidate")
	}
	ws.commit()
	ws.prepare(3, 128) // length change invalidates and reshapes
	if ws.Valid() || len(ws.theta) != 3 || len(ws.theta[0]) != 128 {
		t.Error("length change must invalidate and reshape")
	}
}

// TestReconstructWarmRaceHammer checks the engine-shaped usage: cloned
// decoders on separate goroutines, each streaming its own windows with
// its own WarmState, must reproduce the serial reference bit for bit.
func TestReconstructWarmRaceHammer(t *testing.T) {
	const n, windows = 512, 4
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 40, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	rec := ecg.Generate(ecg.Config{Seed: 71, Duration: 10})
	_, meas := streamWindows(rec, enc, n, windows)
	refWS := NewWarmState()
	refs := make([][]float64, windows)
	for w := range meas {
		x, _, err := dec.ReconstructWarm(meas[w], refWS)
		if err != nil {
			t.Fatal(err)
		}
		refs[w] = x
	}
	workers := 8
	if raceEnabled {
		workers = 4
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := dec.Clone()
			ws := NewWarmState()
			for rep := 0; rep < 2; rep++ {
				ws.Reset()
				for w := range meas {
					x, _, err := d.ReconstructWarm(meas[w], ws)
					if err != nil {
						t.Errorf("worker %d: %v", g, err)
						return
					}
					for i := range x {
						if x[i] != refs[w][i] {
							t.Errorf("worker %d window %d sample %d: %g != %g", g, w, i, x[i], refs[w][i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReconstructWarmAllocs pins the warm path's steady-state
// allocation budget: only the returned signal may allocate.
func TestReconstructWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	dec, y, ys := buildTestDecoder(t, 30, 0)
	adapt := dec // same matrices; enable tol via a second decoder
	ws := NewWarmState()
	if _, _, err := adapt.ReconstructWarm(y, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := adapt.ReconstructWarm(y, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("ReconstructWarm steady state allocates %.0f, want <= 2", allocs)
	}
	wsj := NewWarmState()
	if _, _, err := adapt.ReconstructJointWarm(ys, wsj); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if _, _, err := adapt.ReconstructJointWarm(ys, wsj); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > float64(len(ys)+2) {
		t.Errorf("ReconstructJointWarm steady state allocates %.0f, want <= %d", allocs, len(ys)+2)
	}
}

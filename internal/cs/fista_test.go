package cs

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/fixedpt"
	"wbsn/internal/wavelet"
)

// testWindow cuts one clean n-sample window per lead from a deterministic
// synthetic record.
func testWindow(n int, seed int64) [][]float64 {
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: float64(n)/256 + 2})
	leads := make([][]float64, len(rec.Clean))
	for i := range leads {
		leads[i] = rec.Clean[i][:n]
	}
	return leads
}

func TestEncoderBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	phi, _ := NewSparseBinary(128, 512, 4, rng)
	enc := NewEncoder(phi)
	if enc.WindowLen() != 512 || enc.MeasurementLen() != 128 {
		t.Error("encoder dims wrong")
	}
	if enc.Matrix() != Matrix(phi) {
		t.Error("Matrix accessor broken")
	}
	if enc.MeasurementBytes(12) != (128*12+7)/8 {
		t.Errorf("MeasurementBytes = %d", enc.MeasurementBytes(12))
	}
	x := make([]float64, 512)
	x[0] = 1
	y := enc.Encode(x)
	if len(y) != 128 {
		t.Fatal("bad measurement length")
	}
}

func TestEncodePanicsOnBadLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	phi, _ := NewSparseBinary(16, 64, 2, rng)
	enc := NewEncoder(phi)
	defer func() {
		if recover() == nil {
			t.Error("Encode with wrong window length should panic")
		}
	}()
	enc.Encode(make([]float64, 63))
}

func TestEncodeQ15MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	phi, _ := NewSparseBinary(32, 128, 4, rng)
	enc := NewEncoder(phi)
	xf := make([]float64, 128)
	for i := range xf {
		xf[i] = rng.Float64()*1.2 - 0.6
	}
	xq := fixedpt.FromSlice(xf)
	yq := enc.EncodeQ15(xq)
	yf := enc.Encode(xf)
	// yq is unscaled (integer adds); yf = scaled by 1/sqrt(d). Compare
	// after normalising.
	scale := math.Sqrt(4) * 32768
	for i := range yf {
		if math.Abs(float64(yq[i])/scale-yf[i]) > 0.01 {
			t.Fatalf("measurement %d: int %v vs float %v", i, float64(yq[i])/scale, yf[i])
		}
	}
}

func TestEncodeQ15RequiresSparseBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := NewGaussian(16, 64, rng)
	enc := NewEncoder(g)
	defer func() {
		if recover() == nil {
			t.Error("EncodeQ15 on Gaussian should panic")
		}
	}()
	enc.EncodeQ15(make([]fixedpt.Q15, 64))
}

func TestNewDecoderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	phi, _ := NewSparseBinary(100, 300, 4, rng) // 300 not divisible by 2^5
	if _, err := NewDecoder(phi, SolverConfig{}); err != ErrSolver {
		t.Error("window not divisible by 2^levels should fail")
	}
}

func TestReconstructLowCR(t *testing.T) {
	// At low compression (CR 25%) the reconstruction should be excellent.
	rng := rand.New(rand.NewSource(6))
	n := 512
	m := MeasurementsForCR(n, 25)
	phi, _ := NewSparseBinary(m, n, 4, rng)
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 150})
	if err != nil {
		t.Fatal(err)
	}
	leads := testWindow(n, 77)
	y := enc.Encode(leads[0])
	xhat, err := dec.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	snr := dsp.SNRdB(leads[0], xhat)
	if snr < 20 {
		t.Errorf("SNR at CR 25%% = %.1f dB, want >= 20", snr)
	}
}

func TestReconstructRejectsBadLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	phi, _ := NewSparseBinary(64, 256, 4, rng)
	dec, _ := NewDecoder(phi, SolverConfig{Iters: 10})
	if _, err := dec.Reconstruct(make([]float64, 63)); err != ErrSolver {
		t.Error("wrong measurement length should fail")
	}
	if _, err := dec.ReconstructJoint(nil); err != ErrSolver {
		t.Error("empty lead set should fail")
	}
	if _, err := dec.ReconstructJoint([][]float64{make([]float64, 63)}); err != ErrSolver {
		t.Error("ragged joint measurement should fail")
	}
}

func TestSNRDegradesWithCR(t *testing.T) {
	// Monotone trend: more compression, lower quality.
	leads := testWindow(512, 101)
	var prev float64 = math.Inf(1)
	for _, cr := range []float64{30, 60, 90} {
		rng := rand.New(rand.NewSource(8))
		m := MeasurementsForCR(512, cr)
		phi, _ := NewSparseBinary(m, 512, 4, rng)
		enc := NewEncoder(phi)
		dec, err := NewDecoder(phi, SolverConfig{Iters: 120})
		if err != nil {
			t.Fatal(err)
		}
		xhat, err := dec.Reconstruct(enc.Encode(leads[0]))
		if err != nil {
			t.Fatal(err)
		}
		snr := dsp.SNRdB(leads[0], xhat)
		if snr > prev+2 { // allow small non-monotonic wiggle
			t.Errorf("SNR rose from %.1f to %.1f when CR increased to %v", prev, snr, cr)
		}
		prev = snr
	}
}

func TestJointBeatsIndependentAtHighCR(t *testing.T) {
	// The core claim of ref [6] / Figure 5: at high CR, joint multi-lead
	// recovery outperforms independent single-lead recovery.
	rng := rand.New(rand.NewSource(9))
	n := 512
	cr := 72.0
	m := MeasurementsForCR(n, cr)
	phis := make([]Matrix, 3)
	encs := make([]*Encoder, 3)
	for l := range phis {
		p, _ := NewSparseBinary(m, n, 4, rng)
		phis[l] = p
		encs[l] = NewEncoder(p)
	}
	dec, err := NewJointDecoder(phis, SolverConfig{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	var sSingle, sJoint float64
	count := 0
	for seed := int64(300); seed < 303; seed++ {
		leads := testWindow(n, seed)
		ys := make([][]float64, len(leads))
		for li := range leads {
			ys[li] = encs[li].Encode(leads[li])
		}
		xi, err := dec.ReconstructLeads(ys)
		if err != nil {
			t.Fatal(err)
		}
		xj, err := dec.ReconstructJoint(ys)
		if err != nil {
			t.Fatal(err)
		}
		for li := range leads {
			sSingle += clampSNR(dsp.SNRdB(leads[li], xi[li]))
			sJoint += clampSNR(dsp.SNRdB(leads[li], xj[li]))
			count++
		}
	}
	sSingle /= float64(count)
	sJoint /= float64(count)
	if sJoint <= sSingle {
		t.Errorf("joint recovery (%.2f dB) should beat independent (%.2f dB) at CR %.0f",
			sJoint, sSingle, cr)
	}
}

func TestOMPReconstructsSparseSignal(t *testing.T) {
	// Exactly k-sparse coefficients: OMP should nail it with enough
	// measurements.
	rng := rand.New(rand.NewSource(10))
	n := 256
	w := wavelet.Daubechies8()
	theta := make([]float64, n)
	for i := 0; i < 8; i++ {
		theta[rng.Intn(n)] = rng.NormFloat64() * 2
	}
	x, err := w.Inverse(theta, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := 128
	phi, _ := NewGaussian(m, n, rng)
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := dec.OMP(enc.Encode(x), 24, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if snr := dsp.SNRdB(x, xhat); snr < 40 {
		t.Errorf("OMP on 8-sparse signal: SNR %.1f dB, want >= 40", snr)
	}
}

func TestOMPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	phi, _ := NewSparseBinary(64, 256, 4, rng)
	dec, _ := NewDecoder(phi, SolverConfig{Iters: 10})
	if _, err := dec.OMP(make([]float64, 10), 5, 0); err != ErrSolver {
		t.Error("bad measurement length should fail")
	}
	// Zero measurements reconstruct to zero.
	xhat, err := dec.OMP(make([]float64, 64), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xhat {
		if v != 0 {
			t.Fatal("zero measurements should give zero signal")
		}
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, th, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.v, c.th); got != c.want {
			t.Errorf("softThreshold(%v,%v) = %v, want %v", c.v, c.th, got, c.want)
		}
	}
}

func TestReweightingImprovesHighCRRecovery(t *testing.T) {
	// The iterative-reweighting passes (Candès-Wakin-Boyd) must buy
	// reconstruction quality at aggressive compression.
	rng := rand.New(rand.NewSource(15))
	n := 512
	m := MeasurementsForCR(n, 70)
	phi, _ := NewSparseBinary(m, n, 4, rng)
	enc := NewEncoder(phi)
	leads := testWindow(n, 512)
	y := enc.Encode(leads[0])
	plain, err := NewDecoder(phi, SolverConfig{Iters: 120})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewDecoder(phi, SolverConfig{Iters: 120, Reweights: 2})
	if err != nil {
		t.Fatal(err)
	}
	x0, err := plain.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := rw.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	s0 := dsp.SNRdB(leads[0], x0)
	s2 := dsp.SNRdB(leads[0], x2)
	if s2 <= s0 {
		t.Errorf("reweighting did not help: %.2f dB vs %.2f dB", s2, s0)
	}
	// Joint solver benefits as well.
	dec3, err := NewJointDecoder([]Matrix{phi}, SolverConfig{Iters: 120, Reweights: 2})
	if err != nil {
		t.Fatal(err)
	}
	ys := enc.EncodeLeads(leads)
	xj, err := dec3.ReconstructJoint(ys)
	if err != nil {
		t.Fatal(err)
	}
	plainJ, _ := NewJointDecoder([]Matrix{phi}, SolverConfig{Iters: 120})
	xj0, err := plainJ.ReconstructJoint(ys)
	if err != nil {
		t.Fatal(err)
	}
	var sRW, sPlain float64
	for li := range leads {
		sRW += clampSNR(dsp.SNRdB(leads[li], xj[li]))
		sPlain += clampSNR(dsp.SNRdB(leads[li], xj0[li]))
	}
	if sRW <= sPlain {
		t.Errorf("joint reweighting did not help: %.2f vs %.2f", sRW/3, sPlain/3)
	}
}

package cs

// Batched structure-of-arrays FISTA. The engine dispatches K windows at
// once; each window's coefficient vectors live as contiguous n-long
// stripes ("planes") of shared backing slices, Φ derived state is read
// once per batch, and every CSR walk / wavelet transform of an
// iteration sweeps all still-active planes (internal/wavelet/batch.go,
// matrix_batch.go). The per-window control flow — reweighting passes,
// adaptive restart, Tol early exit, warm seeding, divergence fallback —
// runs as an explicit per-plane state machine stepped in lockstep
// global iterations, so a converged window simply drops out of the
// active plane list without stalling the rest.
//
// Bit-identity contract: per window the floating-point operation
// sequence equals the sequential solver exactly — solving K windows
// batched returns bit-identical signals and identical SolveStats to K
// sequential Reconstruct*Warm calls, at every K (batch_test.go pins
// this). That is what lets gateway.Engine form batches opportunistically
// without changing any output.

import (
	"math"
	"sync"

	"wbsn/internal/wavelet"
)

// BatchItem is one window's slot in a batched reconstruction. The
// caller fills Y (and optionally Warm); the solver fills X, Stats and
// Err. The WarmState sequencing contract is unchanged: at most one item
// per WarmState per batch, windows of one stream in order.
type BatchItem struct {
	// Y holds the window's per-lead measurement vectors (each of length
	// m).
	Y [][]float64
	// Warm, when non-nil, seeds the solve from (and feeds back into) the
	// stream's carried coefficients, exactly like Reconstruct*Warm.
	Warm *WarmState
	// X receives the reconstructed leads.
	X [][]float64
	// Stats receives the solve's convergence counters.
	Stats SolveStats
	// Err receives ErrSolver when the item's measurements do not match
	// the decoder geometry; such items are skipped, the rest of the
	// batch proceeds.
	Err error
}

// planeState is the per-plane (leads solver: one window-lead; joint
// solver: shared per item) FISTA control state.
type planeState struct {
	item, lead int
	phi        Matrix
	mi         int // index into d.phis, for per-matrix kernel grouping
	warm       bool
	lambda     float64
	pass, it   int
	tk         float64
	lastObj    float64
	objValid   bool
}

// jointState is the per-item control state of the batched joint solver;
// the item's L planes advance together.
type jointState struct {
	item      int
	planeBase int
	L         int
	warm      bool
	lambda    float64
	pass, it  int
	tk        float64
	lastObj   float64
	objValid  bool
}

// batchScratch holds the structure-of-arrays buffers of one batched
// reconstruction. Plane buffers are planeCap×n (or ×m); everything
// grows on demand and is pooled per Decoder.
type batchScratch struct {
	planeCap, itemCap, n, m int

	theta, prev, mom, grad, z, x, rw []float64 // planeCap*n
	y, ax                            []float64 // planeCap*m

	ws  wavelet.BatchScratch // batched DWT ping-pong buffers
	sws wavelet.Scratch      // scalar DWT scratch (objective/output paths)

	objX  []float64 // n — per-plane objective/divergence work
	objAx []float64 // m

	gains []float64 // planeCap — joint per-plane RMS gains
	norms []float64 // n — joint group norms (one item at a time)

	planes        []planeState
	joints        []jointState
	active, next  []int
	gradPlanes    []int   // joint: plane list of the active items
	groups        [][]int // per-matrix plane buckets
	itemRemaining []int   // leads: unfinished planes per item

	lt, lp, lm, lg [][]float64 // joint per-lead stripe views (reused)
}

func (bs *batchScratch) ensure(planes, items, n, m, mats, maxL int) {
	if bs.n != n || bs.m != m {
		bs.planeCap, bs.itemCap = 0, 0
		bs.n, bs.m = n, m
	}
	if planes > bs.planeCap {
		bs.theta = make([]float64, planes*n)
		bs.prev = make([]float64, planes*n)
		bs.mom = make([]float64, planes*n)
		bs.grad = make([]float64, planes*n)
		bs.z = make([]float64, planes*n)
		bs.x = make([]float64, planes*n)
		bs.rw = make([]float64, planes*n)
		bs.y = make([]float64, planes*m)
		bs.ax = make([]float64, planes*m)
		bs.gains = make([]float64, planes)
		bs.planes = make([]planeState, 0, planes)
		bs.joints = make([]jointState, 0, planes)
		bs.active = make([]int, 0, planes)
		bs.next = make([]int, 0, planes)
		bs.gradPlanes = make([]int, 0, planes)
		bs.planeCap = planes
	}
	if items > bs.itemCap {
		bs.itemRemaining = make([]int, items)
		bs.itemCap = items
	}
	if len(bs.objX) < n {
		bs.objX = make([]float64, n)
		bs.norms = make([]float64, n)
	}
	if len(bs.objAx) < m {
		bs.objAx = make([]float64, m)
	}
	for len(bs.groups) < mats {
		bs.groups = append(bs.groups, nil)
	}
	if cap(bs.lt) < maxL {
		bs.lt = make([][]float64, 0, maxL)
		bs.lp = make([][]float64, 0, maxL)
		bs.lm = make([][]float64, 0, maxL)
		bs.lg = make([][]float64, 0, maxL)
	}
}

// nStripe returns plane p's n-long stripe of buf.
func nStripe(buf []float64, p, n int) []float64 { return buf[p*n : p*n+n] }

func (d *Decoder) getBatchScratch(planes, items, maxL int) *batchScratch {
	bs := d.bpool.Get().(*batchScratch)
	bs.ensure(planes, items, d.n, d.m, len(d.phis), maxL)
	return bs
}

func newBatchPool() *sync.Pool {
	return &sync.Pool{New: func() any { return &batchScratch{} }}
}

// matrixIndexFor returns the d.phis index lead l resolves to.
func (d *Decoder) matrixIndexFor(l int) int {
	if l < len(d.phis) {
		return l
	}
	return len(d.phis) - 1
}

// synthBatch / analyzeBatch run the batched DWT over the listed planes.
func (d *Decoder) synthBatch(theta, x []float64, planes []int, bs *batchScratch) {
	if err := d.cfg.Wavelet.InverseBatchInto(theta, d.n, d.cfg.Levels, planes, x, &bs.ws); err != nil {
		panic("cs: internal batch synthesis error: " + err.Error())
	}
}

func (d *Decoder) analyzeBatch(x, theta []float64, planes []int, bs *batchScratch) {
	if err := d.cfg.Wavelet.ForwardBatchInto(x, d.n, d.cfg.Levels, planes, theta, &bs.ws); err != nil {
		panic("cs: internal batch analysis error: " + err.Error())
	}
}

// applyBatchGroups computes y_p = Φ_p x_p over the listed planes,
// bucketing planes by sensing matrix so each matrix's index stream is
// walked once per sweep.
func (d *Decoder) applyBatchGroups(x, y []float64, planes []int, bs *batchScratch, forward bool) {
	apply1 := func(phi Matrix, p int) {
		if forward {
			phi.Apply(nStripe(x, p, d.n), y[p*d.m:p*d.m+d.m])
		} else {
			phi.ApplyT(x[p*d.m:p*d.m+d.m], nStripe(y, p, d.n))
		}
	}
	run := func(phi Matrix, group []int) {
		if ba, ok := phi.(batchApplier); ok {
			if forward {
				ba.applyBatch(x, d.n, y, d.m, group)
			} else {
				ba.applyTBatch(x, d.m, y, d.n, group)
			}
			return
		}
		for _, p := range group {
			apply1(phi, p)
		}
	}
	if len(d.phis) == 1 {
		run(d.phis[0], planes)
		return
	}
	for gi := range bs.groups {
		bs.groups[gi] = bs.groups[gi][:0]
	}
	for _, p := range planes {
		mi := bs.planes[p].mi
		bs.groups[mi] = append(bs.groups[mi], p)
	}
	for gi, g := range bs.groups {
		if len(g) > 0 {
			run(d.phis[gi], g)
		}
	}
}

// gradBatch computes grad_p = ΨᵀΦᵀ(ΦΨ mom_p − y_p) for every listed
// plane: one batched synthesis, one batched Φ, a per-plane residual
// subtraction, one batched Φᵀ and one batched analysis — the sequential
// gradInto pipeline amortised over the active planes.
func (d *Decoder) gradBatch(planes []int, bs *batchScratch) {
	d.synthBatch(bs.mom, bs.x, planes, bs)
	d.applyBatchGroups(bs.x, bs.ax, planes, bs, true)
	m := d.m
	for _, p := range planes {
		ax := bs.ax[p*m : p*m+m]
		y := bs.y[p*m : p*m+m]
		for i := range ax {
			ax[i] -= y[i]
		}
	}
	d.applyBatchGroups(bs.ax, bs.z, planes, bs, false)
	d.analyzeBatch(bs.z, bs.grad, planes, bs)
}

// initLambdas computes every plane's λ = LambdaRel·‖ΨᵀΦᵀy‖∞ with one
// batched back-projection (the leads solver; the joint solver derives
// group λ per item from the same batched back-projection).
func (d *Decoder) initLambdas(planes []int, bs *batchScratch) {
	d.applyBatchGroups(bs.y, bs.z, planes, bs, false)
	d.analyzeBatch(bs.z, bs.grad, planes, bs)
	for _, p := range planes {
		maxAbs := 0.0
		for _, v := range nStripe(bs.grad, p, d.n) {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		bs.planes[p].lambda = d.cfg.LambdaRel * maxAbs
	}
}

// objectivePlane is objectiveSingle over plane state (same FP order).
func (d *Decoder) objectivePlane(phi Matrix, theta, y []float64, lambda float64, rw []float64, bs *batchScratch) float64 {
	objX := bs.objX[:d.n]
	objAx := bs.objAx[:d.m]
	if err := d.cfg.Wavelet.InverseInto(theta, d.cfg.Levels, objX, &bs.sws); err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	phi.Apply(objX, objAx)
	data := 0.0
	for i, v := range objAx {
		r := v - y[i]
		data += r * r
	}
	pen := 0.0
	for i, v := range theta {
		if v != 0 {
			pen += d.weights[i] * rw[i] * math.Abs(v)
		}
	}
	return 0.5*data + lambda*pen
}

// divergedPlane is divergedSingle over plane state (same FP order).
func (d *Decoder) divergedPlane(phi Matrix, theta, y []float64, bs *batchScratch) bool {
	objX := bs.objX[:d.n]
	objAx := bs.objAx[:d.m]
	if err := d.cfg.Wavelet.InverseInto(theta, d.cfg.Levels, objX, &bs.sws); err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	phi.Apply(objX, objAx)
	num, den := 0.0, 0.0
	for i, v := range objAx {
		r := v - y[i]
		num += r * r
	}
	for _, v := range y {
		den += v * v
	}
	return !(num <= den)
}

// seedPlanePass applies solveSingle's per-pass seeding switch to one
// plane and resets its per-pass momentum/objective state.
func (d *Decoder) seedPlanePass(p *planeState, pi int, items []*BatchItem, bs *batchScratch) {
	n := d.n
	th := nStripe(bs.theta, pi, n)
	pv := nStripe(bs.prev, pi, n)
	mm := nStripe(bs.mom, pi, n)
	switch {
	case p.warm && p.pass == 0:
		copy(th, items[p.item].Warm.seed(p.lead, n))
		copy(mm, th)
	case p.warm:
		copy(mm, th)
	default:
		for i := range th {
			th[i] = 0
			pv[i] = 0
			mm[i] = 0
		}
	}
	p.tk = 1
	p.lastObj = 0
	p.objValid = false
}

// stepPlane advances one plane by one FISTA iteration (threshold,
// restart test, convergence test, momentum) and reports whether the
// plane is still active.
func (d *Decoder) stepPlane(pi int, items []*BatchItem, bs *batchScratch) bool {
	p := &bs.planes[pi]
	st := &items[p.item].Stats
	n := d.n
	th := nStripe(bs.theta, pi, n)
	pv := nStripe(bs.prev, pi, n)
	mm := nStripe(bs.mom, pi, n)
	gr := nStripe(bs.grad, pi, n)
	rw := nStripe(bs.rw, pi, n)
	y := bs.y[pi*d.m : pi*d.m+d.m]
	step := d.step
	adaptive := d.cfg.Tol > 0
	tol := d.cfg.Tol
	// One fused sweep: prev snapshot, soft-threshold, convergence and
	// restart accumulators. Each accumulator keeps the sequential
	// solver's i-ascending order and every per-element value is
	// unchanged, so the fusion is bit-identical.
	lamStep := step * p.lambda
	weights := d.weights
	var diffSq, normSq, dot float64
	if adaptive {
		for i := range th {
			old := th[i]
			pv[i] = old
			v := softThreshold(mm[i]-step*gr[i], lamStep*weights[i]*rw[i])
			dd := v - old
			diffSq += dd * dd
			normSq += v * v
			dot += (mm[i] - v) * dd
			th[i] = v
		}
	} else {
		for i := range th {
			pv[i] = th[i]
			th[i] = softThreshold(mm[i]-step*gr[i], lamStep*weights[i]*rw[i])
		}
	}
	st.Iters++
	restart := false
	if adaptive && dot > 0 {
		restart = true
		st.Restarts++
	}
	if adaptive && p.it+1 >= d.cfg.MinIters && diffSq <= tol*tol*(normSq+tinyNormSq) {
		obj := d.objectivePlane(p.phi, th, y, p.lambda, rw, bs)
		if p.objValid && obj >= p.lastObj*(1-tol) {
			st.EarlyExit = true
			return d.endPlanePass(pi, items, bs)
		}
		p.lastObj, p.objValid = obj, true
	}
	if restart {
		p.tk = 1
		copy(mm, th)
	} else {
		tNext := (1 + math.Sqrt(1+4*p.tk*p.tk)) / 2
		beta := (p.tk - 1) / tNext
		for i := range mm {
			mm[i] = th[i] + beta*(th[i]-pv[i])
		}
		p.tk = tNext
	}
	p.it++
	if p.it >= d.cfg.Iters {
		return d.endPlanePass(pi, items, bs)
	}
	return true
}

// endPlanePass closes one reweighting pass: either reweight and seed
// the next pass, or finish the plane (with warm-divergence fallback).
func (d *Decoder) endPlanePass(pi int, items []*BatchItem, bs *batchScratch) bool {
	p := &bs.planes[pi]
	n := d.n
	th := nStripe(bs.theta, pi, n)
	if p.pass < d.cfg.Reweights {
		rw := nStripe(bs.rw, pi, n)
		peak := 0.0
		for _, v := range th {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		eps := 0.05*peak + 1e-12
		for i := range rw {
			rw[i] = eps / (math.Abs(th[i]) + eps)
		}
		p.pass++
		p.it = 0
		d.seedPlanePass(p, pi, items, bs)
		return true
	}
	item := items[p.item]
	y := bs.y[pi*d.m : pi*d.m+d.m]
	if p.warm && d.divergedPlane(p.phi, th, y, bs) {
		// The carried coefficients poisoned the solve: redo this plane
		// from a cold start inside the batch. The extra iterations stay
		// in Stats — they were really spent.
		item.Stats.ColdFallback = true
		p.warm = false
		rw := nStripe(bs.rw, pi, n)
		for i := range rw {
			rw[i] = 1
		}
		p.pass = 0
		p.it = 0
		d.seedPlanePass(p, pi, items, bs)
		return true
	}
	if p.warm {
		item.Stats.Warm = true
	}
	item.Warm.store(p.lead, th)
	if err := d.cfg.Wavelet.InverseInto(th, d.cfg.Levels, item.X[p.lead], &bs.sws); err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	bs.itemRemaining[p.item]--
	if bs.itemRemaining[p.item] == 0 {
		item.Warm.commit()
	}
	return false
}

// ReconstructLeadsBatch reconstructs every item's leads independently
// (the per-lead ℓ1 solver) in one structure-of-arrays pass. Per item it
// is bit-identical to ReconstructLeadsWarm(item.Y, item.Warm), at every
// batch size.
func (d *Decoder) ReconstructLeadsBatch(items []*BatchItem) {
	total := 0
	maxL := 1
	for _, it := range items {
		it.X, it.Err, it.Stats = nil, nil, SolveStats{}
		ok := true
		for _, y := range it.Y {
			if len(y) != d.m {
				ok = false
				break
			}
		}
		if !ok {
			it.Err = ErrSolver
			continue
		}
		total += len(it.Y)
		if len(it.Y) > maxL {
			maxL = len(it.Y)
		}
	}
	bs := d.getBatchScratch(total, len(items), maxL)
	defer d.bpool.Put(bs)
	bs.planes = bs.planes[:0]
	bs.active = bs.active[:0]
	for ii, it := range items {
		if it.Err != nil {
			continue
		}
		it.Warm.prepare(len(it.Y), d.n)
		it.X = make([][]float64, len(it.Y))
		bs.itemRemaining[ii] = len(it.Y)
		for l, y := range it.Y {
			pi := len(bs.planes)
			it.X[l] = make([]float64, d.n)
			copy(bs.y[pi*d.m:pi*d.m+d.m], y)
			warm := it.Warm.seed(l, d.n) != nil
			bs.planes = append(bs.planes, planeState{
				item: ii, lead: l, phi: d.matrixFor(l), mi: d.matrixIndexFor(l), warm: warm,
			})
			rw := nStripe(bs.rw, pi, d.n)
			for i := range rw {
				rw[i] = 1
			}
			bs.active = append(bs.active, pi)
		}
		if len(it.Y) == 0 {
			it.X = [][]float64{}
		}
	}
	if len(bs.active) == 0 {
		return
	}
	d.initLambdas(bs.active, bs)
	for _, pi := range bs.active {
		d.seedPlanePass(&bs.planes[pi], pi, items, bs)
	}
	active := bs.active
	spare := bs.next[:0]
	for len(active) > 0 {
		d.gradBatch(active, bs)
		next := spare[:0]
		for _, pi := range active {
			if d.stepPlane(pi, items, bs) {
				next = append(next, pi)
			}
		}
		active, spare = next, active[:0]
	}
}

package cs

// WarmState carries wavelet coefficients across consecutive windows of
// one stream so the solver starts near the solution instead of at zero.
// Adjacent ECG windows are strongly correlated (same morphology, same
// support), which is exactly the regime where a warm-started FISTA plus
// the Tol early exit trades almost no accuracy for most of the
// iteration budget.
//
// Ownership: one WarmState per stream (per patient, per receiver) —
// never share one across streams, or patient A's coefficients seed
// patient B's windows. The state is NOT safe for concurrent use; the
// single stream it belongs to must decode its windows in order. All
// methods are nil-receiver safe, so call sites can thread an optional
// *WarmState without branching: nil means "always cold".
//
// For the joint solver the stored coefficients live in the solver's
// unit-RMS-normalised domain, so slow lead-gain drift does not stale
// the seed.
type WarmState struct {
	theta [][]float64 // one coefficient vector per lead
	n     int         // coefficient length the state was shaped for
	valid bool        // a complete solve has populated theta
}

// NewWarmState returns an empty (cold) warm state.
func NewWarmState() *WarmState { return &WarmState{} }

// Reset invalidates the carried coefficients: the next solve runs cold.
// Call on stream boundaries (patient switch, rig reuse) and on sequence
// gaps (a lost window means the carried θ no longer describes the
// previous window).
func (w *WarmState) Reset() {
	if w == nil {
		return
	}
	w.valid = false
}

// Valid reports whether the state holds coefficients from a completed
// solve.
func (w *WarmState) Valid() bool { return w != nil && w.valid }

// Leads returns the number of per-lead slots currently allocated.
func (w *WarmState) Leads() int {
	if w == nil {
		return 0
	}
	return len(w.theta)
}

// prepare shapes the state for L leads of n coefficients. A shape
// change invalidates any carried coefficients (they describe a
// different problem). Slot storage is reused across windows, so the
// steady state allocates nothing.
func (w *WarmState) prepare(L, n int) {
	if w == nil {
		return
	}
	if w.n != n || len(w.theta) != L {
		w.valid = false
	}
	if w.n != n {
		w.theta = w.theta[:0]
		w.n = n
	}
	for len(w.theta) < L {
		w.theta = append(w.theta, make([]float64, n))
	}
	if len(w.theta) > L {
		w.theta = w.theta[:L]
	}
}

// seed returns lead's carried coefficients, or nil when the state is
// nil, invalid, or shaped differently — i.e. nil means "solve cold".
func (w *WarmState) seed(lead, n int) []float64 {
	if w == nil || !w.valid || w.n != n || lead >= len(w.theta) {
		return nil
	}
	return w.theta[lead]
}

// seedAll returns all L per-lead seeds, or nil if any lead is cold.
func (w *WarmState) seedAll(L, n int) [][]float64 {
	if w == nil || !w.valid || w.n != n || len(w.theta) != L {
		return nil
	}
	return w.theta
}

// store copies a finished solve's coefficients into lead's slot. The
// state only becomes a usable seed once commit marks the window
// complete, so a partial multi-lead failure cannot leave a half-updated
// valid state.
func (w *WarmState) store(lead int, theta []float64) {
	if w == nil || lead >= len(w.theta) {
		return
	}
	copy(w.theta[lead], theta)
}

// commit marks the stored coefficients as a complete window.
func (w *WarmState) commit() {
	if w == nil || len(w.theta) == 0 {
		return
	}
	w.valid = true
}

// SnapshotLen returns the float32 payload length of a compact snapshot
// for L leads of n coefficients.
func SnapshotLen(L, n int) int { return L * n }

// SnapshotInto compacts the carried coefficients into dst as float32 —
// the cold-tier form a population-scale fleet keeps per patient while
// the patient is off its rig (half the resident bytes of the live
// float64 state). Returns false, storing nothing, when the state holds
// no committed solve or is shaped differently than L leads of n
// coefficients; dst must have length ≥ SnapshotLen(L, n).
//
// The float32 rounding is part of the contract, not an accident: every
// tier crossing — scheduling a patient back onto a rig, writing a
// checkpoint, restoring one — quantises identically, so a soak that
// stops and resumes replays bit-identically against one that never
// stopped.
func (w *WarmState) SnapshotInto(dst []float32, L, n int) bool {
	if w == nil || !w.valid || w.n != n || len(w.theta) != L {
		return false
	}
	for li, theta := range w.theta {
		row := dst[li*n : (li+1)*n]
		for i, v := range theta {
			row[i] = float32(v)
		}
	}
	return true
}

// RestoreFrom rehydrates the state from a compact snapshot: the next
// solve warm-starts from the float32-rounded coefficients. src must
// have length ≥ SnapshotLen(L, n).
func (w *WarmState) RestoreFrom(src []float32, L, n int) {
	if w == nil {
		return
	}
	w.prepare(L, n)
	for li := 0; li < L; li++ {
		row := src[li*n : (li+1)*n]
		theta := w.theta[li]
		for i, v := range row {
			theta[i] = float64(v)
		}
	}
	w.valid = true
}

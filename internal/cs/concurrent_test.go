package cs

import (
	"math/rand"
	"sync"
	"testing"

	"wbsn/internal/ecg"
)

// buildTestDecoder returns a decoder plus an encoded ECG window.
func buildTestDecoder(t testing.TB, iters, reweights int) (*Decoder, []float64, [][]float64) {
	t.Helper()
	rec := ecg.Generate(ecg.Config{Seed: 31, Duration: 4})
	m := MeasurementsForCR(512, 65.9)
	phi, err := NewSparseBinary(m, 512, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(phi, SolverConfig{Iters: iters, Reweights: reweights})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	y := enc.Encode(rec.Clean[0][:512])
	ys := make([][]float64, 3)
	for l := range ys {
		ys[l] = enc.Encode(rec.Clean[l][:512])
	}
	return dec, y, ys
}

// Reconstruction must be a pure function of the measurements: repeated
// calls through the pooled scratch path must agree bit for bit, and so
// must calls racing on one decoder from many goroutines. This is the
// determinism contract the parallel gateway engine depends on.
func TestReconstructDeterministicUnderConcurrency(t *testing.T) {
	dec, y, ys := buildTestDecoder(t, 40, 1)
	ref, err := dec.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	refJoint, err := dec.ReconstructJoint(ys)
	if err != nil {
		t.Fatal(err)
	}
	refTree, err := dec.TreeIHT(y, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, err := dec.Reconstruct(y)
				if err != nil {
					errs <- err
					return
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("worker %d rep %d: Reconstruct[%d] = %g, want %g", w, rep, i, got[i], ref[i])
						return
					}
				}
				gotJ, err := dec.ReconstructJoint(ys)
				if err != nil {
					errs <- err
					return
				}
				for l := range refJoint {
					for i := range refJoint[l] {
						if gotJ[l][i] != refJoint[l][i] {
							t.Errorf("worker %d rep %d: Joint[%d][%d] differs", w, rep, l, i)
							return
						}
					}
				}
				gotT, err := dec.TreeIHT(y, 60, 40)
				if err != nil {
					errs <- err
					return
				}
				for i := range refTree {
					if gotT[i] != refTree[i] {
						t.Errorf("worker %d rep %d: TreeIHT[%d] differs", w, rep, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Clones must reconstruct identically to their source: they share the
// sensing matrices and every derived constant.
func TestCloneReconstructsIdentically(t *testing.T) {
	dec, y, ys := buildTestDecoder(t, 40, 1)
	clone := dec.Clone()
	a, err := dec.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clone.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone Reconstruct[%d] = %g, want %g", i, b[i], a[i])
		}
	}
	aj, err := dec.ReconstructJoint(ys)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := clone.ReconstructJoint(ys)
	if err != nil {
		t.Fatal(err)
	}
	for l := range aj {
		for i := range aj[l] {
			if aj[l][i] != bj[l][i] {
				t.Fatalf("clone Joint[%d][%d] differs", l, i)
			}
		}
	}
}

// Steady-state Reconstruct must stay at or under 2 allocs per call (the
// returned signal plus pool bookkeeping) — the PR's allocation-discipline
// acceptance bar. A small slack absorbs GC-emptied pools mid-run.
func TestReconstructSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts are meaningless")
	}
	dec, y, ys := buildTestDecoder(t, 15, 0)
	if _, err := dec.Reconstruct(y); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := dec.Reconstruct(y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Reconstruct steady state: %.2f allocs/op, want <= 2", allocs)
	}
	if _, err := dec.ReconstructJoint(ys); err != nil {
		t.Fatal(err)
	}
	jallocs := testing.AllocsPerRun(20, func() {
		if _, err := dec.ReconstructJoint(ys); err != nil {
			t.Fatal(err)
		}
	})
	// Joint returns L+1 fresh slices; everything else must be pooled.
	if jallocs > float64(len(ys))+2 {
		t.Errorf("ReconstructJoint steady state: %.2f allocs/op, want <= %d", jallocs, len(ys)+2)
	}
}

package cs

import "wbsn/internal/fixedpt"

// Encoder is the on-node compression stage: it projects each n-sample
// window into m measurements with a fixed sensing matrix. The same
// matrix (same seed) must be used by the receiver-side decoder.
type Encoder struct {
	phi Matrix
}

// NewEncoder wraps a sensing matrix as a window encoder.
func NewEncoder(phi Matrix) *Encoder { return &Encoder{phi: phi} }

// Matrix returns the underlying sensing operator.
func (e *Encoder) Matrix() Matrix { return e.phi }

// WindowLen returns the input window length n.
func (e *Encoder) WindowLen() int { return e.phi.Cols() }

// MeasurementLen returns the output measurement count m.
func (e *Encoder) MeasurementLen() int { return e.phi.Rows() }

// Encode compresses one window, returning a fresh measurement slice.
// It panics if len(x) differs from the window length.
func (e *Encoder) Encode(x []float64) []float64 {
	if len(x) != e.phi.Cols() {
		panic("cs: Encode window length mismatch")
	}
	y := make([]float64, e.phi.Rows())
	e.phi.Apply(x, y)
	return y
}

// EncodeLeads compresses one window per lead with the shared sensing
// matrix (the multi-lead setting of ref [6] uses the same Φ on every
// lead so the receiver can exploit the common support).
func (e *Encoder) EncodeLeads(leads [][]float64) [][]float64 {
	out := make([][]float64, len(leads))
	for i, l := range leads {
		out[i] = e.Encode(l)
	}
	return out
}

// EncodeQ15 is the integer-only encoder the node actually runs: for a
// sparse-binary matrix it is d additions per sample followed by one
// shift. Measurements are returned as int32 in the same fixed-point
// scale as the input (Q15 times sqrt(d) kept in integer form to avoid
// the irrational scale on-node; the receiver divides by sqrt(d)).
// It panics if the encoder's matrix is not sparse-binary or the window
// length mismatches.
func (e *Encoder) EncodeQ15(x []fixedpt.Q15) []int32 {
	sb, ok := e.phi.(*SparseBinary)
	if !ok {
		panic("cs: EncodeQ15 requires a sparse-binary sensing matrix")
	}
	if len(x) != sb.n {
		panic("cs: EncodeQ15 window length mismatch")
	}
	y := make([]int32, sb.m)
	for c := 0; c < sb.n; c++ {
		v := int32(x[c])
		if v == 0 {
			continue
		}
		for _, r := range sb.col(c) {
			y[r] += v
		}
	}
	return y
}

// MeasurementBytes returns the payload size in bytes for one encoded
// window at the given bits-per-measurement quantisation (the radio model
// of Figure 6 charges energy per transmitted byte).
func (e *Encoder) MeasurementBytes(bitsPerMeasurement int) int {
	bits := e.phi.Rows() * bitsPerMeasurement
	return (bits + 7) / 8
}

package cs

import (
	"errors"
	"math/rand"
)

// This file models the "analog CS" direction of Section III.A: "This
// so-called 'analog CS', where compression occurs directly in the analog
// sensor readout electronics prior to analog-to-digital conversion,
// could thus be of great importance ... although designing a truly
// CS-based A2I still remains a challenge" (refs [7][8]).
//
// The analog-to-information converter is modelled behaviourally: each
// measurement integrates the sensor signal through a ±1 chipping
// sequence (random demodulator) and digitises only the m integrals, so
// the expensive instrumentation path runs m conversions per window
// instead of n. The model exposes exactly what the energy accounting
// needs — conversions per window and integrator imperfections (gain
// error, integrator leakage, comparator noise) that bound the achievable
// reconstruction quality.

// ErrA2I is returned for invalid A2I configurations.
var ErrA2I = errors.New("cs: invalid A2I configuration")

// A2IConfig parameterises the analog front-end model.
type A2IConfig struct {
	// Window is the input length n per compression window.
	Window int
	// Measurements is m, the number of integrate-and-dump channels.
	Measurements int
	// GainSigma is the per-channel multiplicative gain mismatch (σ of a
	// lognormal-ish 1+N(0,σ)); 0 = ideal.
	GainSigma float64
	// LeakPerSample is the fraction of the integrator state lost per
	// input sample (integrator droop); 0 = ideal.
	LeakPerSample float64
	// NoiseSigma is additive noise per measurement, relative to a
	// unit-amplitude input; 0 = ideal.
	NoiseSigma float64
	// Seed draws the chipping sequences and imperfections.
	Seed int64
}

// A2I is a behavioural analog-to-information converter.
type A2I struct {
	cfg   A2IConfig
	chips [][]int8 // ±1 per (measurement, sample)
	gains []float64
	rng   *rand.Rand
}

// NewA2I validates the configuration and draws the chipping sequences.
func NewA2I(cfg A2IConfig) (*A2I, error) {
	if cfg.Window <= 0 || cfg.Measurements <= 0 || cfg.Measurements > cfg.Window {
		return nil, ErrA2I
	}
	if cfg.GainSigma < 0 || cfg.LeakPerSample < 0 || cfg.LeakPerSample >= 1 || cfg.NoiseSigma < 0 {
		return nil, ErrA2I
	}
	a := &A2I{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	a.chips = make([][]int8, cfg.Measurements)
	for i := range a.chips {
		row := make([]int8, cfg.Window)
		for j := range row {
			if a.rng.Intn(2) == 0 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		a.chips[i] = row
	}
	a.gains = make([]float64, cfg.Measurements)
	for i := range a.gains {
		a.gains[i] = 1 + cfg.GainSigma*a.rng.NormFloat64()
	}
	return a, nil
}

// Convert integrates one analog window (represented by its ideal sampled
// values) through the chipping channels and returns the m digitised
// measurements, applying the configured imperfections.
func (a *A2I) Convert(x []float64) ([]float64, error) {
	if len(x) != a.cfg.Window {
		return nil, ErrA2I
	}
	y := make([]float64, a.cfg.Measurements)
	retain := 1 - a.cfg.LeakPerSample
	for i, row := range a.chips {
		acc := 0.0
		for j, v := range x {
			acc = acc*retain + float64(row[j])*v
		}
		y[i] = a.gains[i]*acc + a.cfg.NoiseSigma*a.rng.NormFloat64()
	}
	return y, nil
}

// Matrix returns the ideal (imperfection-free) sensing operator realised
// by the chipping sequences, for receiver-side reconstruction. With
// integrator leak the true physical operator differs — the mismatch is
// part of what the A2I ablation measures.
func (a *A2I) Matrix() Matrix {
	return &chipMatrix{chips: a.chips, n: a.cfg.Window}
}

// ConversionsPerWindow returns the ADC conversion count per window (m),
// against n for a conventional sample-then-compress front end — the
// energy argument for analog CS.
func (a *A2I) ConversionsPerWindow() int { return a.cfg.Measurements }

// chipMatrix applies the ±1 chipping sequences as a dense sensing
// operator, scaled by 1/√n for unit-ish column norms.
type chipMatrix struct {
	chips [][]int8
	n     int
}

// Rows returns the measurement count.
func (c *chipMatrix) Rows() int { return len(c.chips) }

// Cols returns the window length.
func (c *chipMatrix) Cols() int { return c.n }

// Apply computes y = Φx.
func (c *chipMatrix) Apply(x, y []float64) {
	for i, row := range c.chips {
		acc := 0.0
		for j, v := range x {
			acc += float64(row[j]) * v
		}
		y[i] = acc
	}
}

// ApplyT computes z = Φᵀr.
func (c *chipMatrix) ApplyT(r, z []float64) {
	for j := range z {
		z[j] = 0
	}
	for i, row := range c.chips {
		ri := r[i]
		if ri == 0 {
			continue
		}
		for j := range z {
			z[j] += float64(row[j]) * ri
		}
	}
}

package cs

import (
	"sync"

	"wbsn/internal/wavelet"
)

// solverScratch holds every intermediate buffer the FISTA/IHT solvers
// need, so the hot reconstruction paths allocate nothing in steady state
// beyond the returned signal. One scratch serves one reconstruction at a
// time; the Decoder hands them out through a sync.Pool, which is what
// makes a single Decoder safe to hammer from many goroutines at once.
type solverScratch struct {
	x    []float64 // n — signal-domain work vector
	ax   []float64 // m — measurement-domain work vector
	z    []float64 // n — back-projection work vector
	aty  []float64 // n — ΨᵀΦᵀy
	grad []float64 // n — current gradient

	theta, prev, mom, rw []float64 // n — FISTA state

	ws wavelet.Scratch // DWT ping-pong buffers

	// TreeIHT state.
	gS      []float64 // n — support-restricted gradient
	kept    []bool    // n — tree-projection membership
	support []bool    // n — debias support

	// Joint-solver per-lead buffers, grown on first multi-lead use.
	gains                      []float64   // L — per-lead RMS gains
	norms                      []float64   // n — group norms
	ysn                        [][]float64 // L×m — unit-RMS measurements
	jtheta, jprev, jmom, jgrad [][]float64 // L×n
}

func newSolverScratch(n, m int) *solverScratch {
	return &solverScratch{
		x:       make([]float64, n),
		ax:      make([]float64, m),
		z:       make([]float64, n),
		aty:     make([]float64, n),
		grad:    make([]float64, n),
		theta:   make([]float64, n),
		prev:    make([]float64, n),
		mom:     make([]float64, n),
		rw:      make([]float64, n),
		gS:      make([]float64, n),
		kept:    make([]bool, n),
		support: make([]bool, n),
		norms:   make([]float64, n),
	}
}

// ensureLeads grows the joint-solver buffers to cover L leads.
func (s *solverScratch) ensureLeads(L, n, m int) {
	if cap(s.gains) < L {
		s.gains = make([]float64, L)
	}
	for len(s.ysn) < L {
		s.ysn = append(s.ysn, make([]float64, m))
	}
	for len(s.jtheta) < L {
		s.jtheta = append(s.jtheta, make([]float64, n))
		s.jprev = append(s.jprev, make([]float64, n))
		s.jmom = append(s.jmom, make([]float64, n))
		s.jgrad = append(s.jgrad, make([]float64, n))
	}
}

func newScratchPool(n, m int) *sync.Pool {
	return &sync.Pool{New: func() any { return newSolverScratch(n, m) }}
}

package cs

import "math"

// OMP implements orthogonal matching pursuit over the wavelet-synthesis
// dictionary A = ΦΨ, the greedy reconstruction baseline against which
// convex (FISTA) recovery is compared. It selects atoms until either
// maxAtoms coefficients are active or the residual drops below
// tolFrac·||y||.
//
// OMP materialises A column-by-column through the decoder's synthesis
// operator; with n=512 this stays comfortably laptop-scale, but it is the
// expensive baseline — the benchmarks show why the node-side design puts
// all reconstruction cost on the receiver.
func (d *Decoder) OMP(y []float64, maxAtoms int, tolFrac float64) ([]float64, error) {
	if len(y) != d.m {
		return nil, ErrSolver
	}
	if maxAtoms <= 0 || maxAtoms > d.m {
		maxAtoms = d.m / 2
	}
	if tolFrac <= 0 {
		tolFrac = 1e-4
	}
	// Precompute columns of A = ΦΨ lazily: column j is Φ(Ψ e_j).
	colCache := make(map[int][]float64)
	column := func(j int) []float64 {
		if c, ok := colCache[j]; ok {
			return c
		}
		e := make([]float64, d.n)
		e[j] = 1
		x := d.synth(e)
		c := make([]float64, d.m)
		d.phis[0].Apply(x, c)
		colCache[j] = c
		return c
	}
	yNorm := 0.0
	for _, v := range y {
		yNorm += v * v
	}
	yNorm = math.Sqrt(yNorm)
	if yNorm == 0 {
		return make([]float64, d.n), nil
	}
	residual := make([]float64, d.m)
	copy(residual, y)
	var support []int
	inSupport := make([]bool, d.n)
	// Gram-Schmidt basis of the selected columns for fast LS updates.
	var qBasis [][]float64
	var rCoef [][]float64 // upper-triangular factors
	for len(support) < maxAtoms {
		// Correlations via Aᵀr = Ψᵀ Φᵀ r.
		z := make([]float64, d.n)
		d.phis[0].ApplyT(residual, z)
		corr := d.analyze(z)
		best, bestAbs := -1, 0.0
		for j, v := range corr {
			if inSupport[j] {
				continue
			}
			if a := math.Abs(v); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best < 0 || bestAbs < 1e-12 {
			break
		}
		inSupport[best] = true
		support = append(support, best)
		// Orthogonalise the new column against the existing basis.
		newCol := make([]float64, d.m)
		copy(newCol, column(best))
		coefs := make([]float64, len(qBasis))
		for qi, q := range qBasis {
			dot := 0.0
			for i := range q {
				dot += q[i] * newCol[i]
			}
			coefs[qi] = dot
			for i := range newCol {
				newCol[i] -= dot * q[i]
			}
		}
		norm := 0.0
		for _, v := range newCol {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Column linearly dependent; drop it from the support.
			support = support[:len(support)-1]
			inSupport[best] = false
			break
		}
		inv := 1 / norm
		for i := range newCol {
			newCol[i] *= inv
		}
		qBasis = append(qBasis, newCol)
		rCoef = append(rCoef, append(coefs, norm))
		// Update residual: subtract projection of y on the new basis
		// vector (basis is orthonormal, so residual update is direct).
		dot := 0.0
		for i := range newCol {
			dot += newCol[i] * y[i]
		}
		for i := range residual {
			residual[i] = 0
		}
		copy(residual, y)
		for _, q := range qBasis {
			qd := 0.0
			for i := range q {
				qd += q[i] * y[i]
			}
			for i := range residual {
				residual[i] -= qd * q[i]
			}
		}
		rn := 0.0
		for _, v := range residual {
			rn += v * v
		}
		if math.Sqrt(rn) < tolFrac*yNorm {
			break
		}
	}
	// Solve the least-squares coefficients by back substitution on R.
	k := len(support)
	theta := make([]float64, d.n)
	if k > 0 {
		// qy[i] = q_i · y
		qy := make([]float64, k)
		for i, q := range qBasis {
			dot := 0.0
			for j := range q {
				dot += q[j] * y[j]
			}
			qy[i] = dot
		}
		coef := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			v := qy[i]
			for j := i + 1; j < k; j++ {
				v -= rCoef[j][i] * coef[j]
			}
			coef[i] = v / rCoef[i][i]
		}
		for i, j := range support {
			theta[j] = coef[i]
		}
	}
	return d.synth(theta), nil
}

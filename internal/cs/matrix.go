// Package cs implements the compressed-sensing chain of Section III.A:
// sparse-binary sensing matrices (ref [16]: "few non-zero elements in the
// sensing matrix suffice to achieve close-to-optimal results ... while
// minimizing the run-time workload"), the on-node encoder, and the two
// reconstruction solvers evaluated in Figure 5 — independent single-lead
// ℓ1 recovery (refs [4][16]) and joint multi-lead group-sparse (ℓ2,1)
// recovery that exploits the shared sparsity structure across leads
// (ref [6]).
//
// Conventions: signals are windows of n samples; the encoder computes
// y = Φx with Φ an m×n matrix, m < n. The compression ratio follows the
// paper's definition CR = 100·(n−m)/n, so larger CR means fewer
// measurements. Reconstruction solves a basis-pursuit-denoising problem
// over wavelet coefficients θ (x = Ψθ with Ψ an orthonormal Daubechies
// synthesis operator from internal/wavelet).
package cs

import (
	"errors"
	"math"
	"math/rand"
)

// Errors returned by matrix constructors and the encoder.
var (
	ErrDims    = errors.New("cs: invalid matrix dimensions")
	ErrDensity = errors.New("cs: nonzeros per column must be in [1, m]")
)

// Matrix is a sensing operator Φ: it can apply itself and its transpose.
type Matrix interface {
	// Rows returns m, the number of measurements.
	Rows() int
	// Cols returns n, the signal window length.
	Cols() int
	// Apply computes y = Φx, writing into y (len m). x has len n.
	Apply(x, y []float64)
	// ApplyT computes z = Φᵀr, writing into z (len n). r has len m.
	ApplyT(r, z []float64)
}

// SparseBinary is the sensing matrix of ref [16]: each column holds
// exactly d entries of value 1/√d at uniformly-chosen rows. The encoder
// then needs only d additions per input sample and no multiplications —
// the property that makes CS encoding nearly free on the node (Figure 6's
// tiny "Comp." share).
type SparseBinary struct {
	m, n int
	d    int
	// idx is the flattened column index list: idx[c*d : (c+1)*d] holds
	// the d row indices of column c. One contiguous allocation instead of
	// n small slices keeps Apply/ApplyT — the innermost kernels of every
	// FISTA iteration — walking a single cache-friendly array.
	idx   []int32
	scale float64
}

// NewSparseBinary builds an m×n sparse-binary sensing matrix with d
// non-zeros per column, drawn from rng (deterministic per seed).
func NewSparseBinary(m, n, d int, rng *rand.Rand) (*SparseBinary, error) {
	if m <= 0 || n <= 0 || m > n {
		return nil, ErrDims
	}
	if d < 1 || d > m {
		return nil, ErrDensity
	}
	sb := &SparseBinary{m: m, n: n, d: d, idx: make([]int32, n*d), scale: 1 / math.Sqrt(float64(d))}
	perm := make([]int, m)
	for c := 0; c < n; c++ {
		// Sample d distinct rows by partial Fisher-Yates.
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < d; i++ {
			j := i + rng.Intn(m-i)
			perm[i], perm[j] = perm[j], perm[i]
			sb.idx[c*d+i] = int32(perm[i])
		}
	}
	return sb, nil
}

// col returns the row indices of column c.
func (s *SparseBinary) col(c int) []int32 { return s.idx[c*s.d : (c+1)*s.d] }

// Rows returns the number of measurements m.
func (s *SparseBinary) Rows() int { return s.m }

// Cols returns the window length n.
func (s *SparseBinary) Cols() int { return s.n }

// Density returns d, the non-zeros per column.
func (s *SparseBinary) Density() int { return s.d }

// Apply computes y = Φx.
func (s *SparseBinary) Apply(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	d := s.d
	for c, v := range x[:s.n] {
		if v == 0 {
			continue
		}
		for _, r := range s.idx[c*d : (c+1)*d] {
			y[r] += v
		}
	}
	for i := range y {
		y[i] *= s.scale
	}
}

// ApplyT computes z = Φᵀr.
func (s *SparseBinary) ApplyT(r, z []float64) {
	d := s.d
	for c := 0; c < s.n; c++ {
		acc := 0.0
		for _, ri := range s.idx[c*d : (c+1)*d] {
			acc += r[ri]
		}
		z[c] = acc * s.scale
	}
}

// AddsPerWindow returns the number of integer additions the on-node
// encoder performs per window: d adds per input sample. This count feeds
// the compression-energy model of Figure 6.
func (s *SparseBinary) AddsPerWindow() int { return s.d * s.n }

// Gaussian is a dense i.i.d. N(0, 1/m) sensing matrix, the classical CS
// baseline against which the sparse-binary design is ablated.
type Gaussian struct {
	m, n int
	a    []float64 // row-major m×n
}

// NewGaussian builds a dense Gaussian sensing matrix.
func NewGaussian(m, n int, rng *rand.Rand) (*Gaussian, error) {
	if m <= 0 || n <= 0 || m > n {
		return nil, ErrDims
	}
	g := &Gaussian{m: m, n: n, a: make([]float64, m*n)}
	sd := 1 / math.Sqrt(float64(m))
	for i := range g.a {
		g.a[i] = sd * rng.NormFloat64()
	}
	return g, nil
}

// Rows returns the number of measurements m.
func (g *Gaussian) Rows() int { return g.m }

// Cols returns the window length n.
func (g *Gaussian) Cols() int { return g.n }

// Apply computes y = Φx.
func (g *Gaussian) Apply(x, y []float64) {
	for i := 0; i < g.m; i++ {
		row := g.a[i*g.n : (i+1)*g.n]
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
}

// ApplyT computes z = Φᵀr.
func (g *Gaussian) ApplyT(r, z []float64) {
	for j := range z {
		z[j] = 0
	}
	for i := 0; i < g.m; i++ {
		ri := r[i]
		if ri == 0 {
			continue
		}
		row := g.a[i*g.n : (i+1)*g.n]
		for j, v := range row {
			z[j] += v * ri
		}
	}
}

// OperatorNorm estimates ||Φ||₂² (the largest squared singular value) by
// power iteration; it upper-bounds the Lipschitz constant needed by the
// FISTA solvers. iters of 30 is ample for these well-conditioned random
// matrices.
func OperatorNorm(phi Matrix, iters int, rng *rand.Rand) float64 {
	n := phi.Cols()
	m := phi.Rows()
	x := make([]float64, n)
	y := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	norm := 0.0
	for it := 0; it < iters; it++ {
		phi.Apply(x, y)
		phi.ApplyT(y, x)
		norm = 0
		for _, v := range x {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		inv := 1 / norm
		for i := range x {
			x[i] *= inv
		}
	}
	return norm // ||ΦᵀΦ|| = ||Φ||²
}

// MeasurementsForCR returns the measurement count m for a window of n
// samples at compression ratio cr per the paper's definition
// CR = 100(n−m)/n, clamped to [1, n].
func MeasurementsForCR(n int, cr float64) int {
	m := int(math.Round(float64(n) * (1 - cr/100)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// CRForMeasurements returns the compression ratio achieved by m
// measurements of an n-sample window.
func CRForMeasurements(n, m int) float64 {
	return 100 * float64(n-m) / float64(n)
}

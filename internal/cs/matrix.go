// Package cs implements the compressed-sensing chain of Section III.A:
// sparse-binary sensing matrices (ref [16]: "few non-zero elements in the
// sensing matrix suffice to achieve close-to-optimal results ... while
// minimizing the run-time workload"), the on-node encoder, and the two
// reconstruction solvers evaluated in Figure 5 — independent single-lead
// ℓ1 recovery (refs [4][16]) and joint multi-lead group-sparse (ℓ2,1)
// recovery that exploits the shared sparsity structure across leads
// (ref [6]).
//
// Conventions: signals are windows of n samples; the encoder computes
// y = Φx with Φ an m×n matrix, m < n. The compression ratio follows the
// paper's definition CR = 100·(n−m)/n, so larger CR means fewer
// measurements. Reconstruction solves a basis-pursuit-denoising problem
// over wavelet coefficients θ (x = Ψθ with Ψ an orthonormal Daubechies
// synthesis operator from internal/wavelet).
package cs

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Errors returned by matrix constructors and the encoder.
var (
	ErrDims    = errors.New("cs: invalid matrix dimensions")
	ErrDensity = errors.New("cs: nonzeros per column must be in [1, m]")
)

// Matrix is a sensing operator Φ: it can apply itself and its transpose.
type Matrix interface {
	// Rows returns m, the number of measurements.
	Rows() int
	// Cols returns n, the signal window length.
	Cols() int
	// Apply computes y = Φx, writing into y (len m). x has len n.
	Apply(x, y []float64)
	// ApplyT computes z = Φᵀr, writing into z (len n). r has len m.
	ApplyT(r, z []float64)
}

// SparseBinary is the sensing matrix of ref [16]: each column holds
// exactly d entries of value 1/√d at uniformly-chosen rows. The encoder
// then needs only d additions per input sample and no multiplications —
// the property that makes CS encoding nearly free on the node (Figure 6's
// tiny "Comp." share).
type SparseBinary struct {
	m, n int
	d    int
	// idx is the flattened column index list: idx[c*d : (c+1)*d] holds
	// the d row indices of column c, sorted ascending. One contiguous
	// allocation instead of n small slices keeps the kernels walking a
	// single cache-friendly array; the ascending order makes the
	// column-major and row-major traversals accumulate each output in
	// the same order, so both kernel layouts are bit-identical.
	idx []int32
	// rowPtr/rowCols are the row-major CSR companion of idx: row i's
	// column indices are rowCols[rowPtr[i]:rowPtr[i+1]], ascending.
	// Apply/ApplyT — the innermost kernels of every FISTA iteration,
	// executed twice per iteration — walk these contiguous per-row entry
	// lists: Apply reduces each row into a register and stores y
	// sequentially (no output zeroing, no read-modify-write), and ApplyT
	// loads each residual element exactly once per row instead of d
	// scattered gathers per column.
	rowPtr  []int32
	rowCols []int32
	scale   float64
}

// NewSparseBinary builds an m×n sparse-binary sensing matrix with d
// non-zeros per column, drawn from rng (deterministic per seed).
func NewSparseBinary(m, n, d int, rng *rand.Rand) (*SparseBinary, error) {
	if m <= 0 || n <= 0 || m > n {
		return nil, ErrDims
	}
	if d < 1 || d > m {
		return nil, ErrDensity
	}
	sb := &SparseBinary{m: m, n: n, d: d, idx: make([]int32, n*d), scale: 1 / math.Sqrt(float64(d))}
	perm := make([]int, m)
	for c := 0; c < n; c++ {
		// Sample d distinct rows by partial Fisher-Yates.
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < d; i++ {
			j := i + rng.Intn(m-i)
			perm[i], perm[j] = perm[j], perm[i]
			sb.idx[c*d+i] = int32(perm[i])
		}
		// Ascending row order per column: the canonical accumulation
		// order shared by the column-major and CSR traversals.
		col := sb.idx[c*d : (c+1)*d]
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
	}
	sb.buildCSR()
	return sb, nil
}

// buildCSR derives the row-major companion index from the column list
// with a counting pass (no sort): rowPtr[i] is the offset of row i's
// column list in rowCols. Because the column loop visits c ascending,
// each row's columns land in rowCols already sorted.
func (s *SparseBinary) buildCSR() {
	s.rowPtr = make([]int32, s.m+1)
	s.rowCols = make([]int32, len(s.idx))
	for _, r := range s.idx {
		s.rowPtr[r+1]++
	}
	for i := 0; i < s.m; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	next := make([]int32, s.m)
	copy(next, s.rowPtr[:s.m])
	d := s.d
	for c := 0; c < s.n; c++ {
		for _, r := range s.idx[c*d : (c+1)*d] {
			s.rowCols[next[r]] = int32(c)
			next[r]++
		}
	}
}

// col returns the row indices of column c.
func (s *SparseBinary) col(c int) []int32 { return s.idx[c*s.d : (c+1)*s.d] }

// Rows returns the number of measurements m.
func (s *SparseBinary) Rows() int { return s.m }

// Cols returns the window length n.
func (s *SparseBinary) Cols() int { return s.n }

// Density returns d, the non-zeros per column.
func (s *SparseBinary) Density() int { return s.d }

// Apply computes y = Φx by walking the CSR companion: each measurement
// reduces its contiguous column list into a register and stores once —
// no output zeroing and no scattered read-modify-write. Bit-identical
// to the column-major traversal (each y[i] sums its columns ascending
// either way).
func (s *SparseBinary) Apply(x, y []float64) {
	rowPtr, rowCols := s.rowPtr, s.rowCols
	scale := s.scale
	for i := range y[:s.m] {
		acc := 0.0
		for _, c := range rowCols[rowPtr[i]:rowPtr[i+1]] {
			acc += x[c]
		}
		y[i] = acc * scale
	}
}

// ApplyT computes z = Φᵀr over the CSR companion: the residual element
// r[i] is loaded once per row and added into its contiguous column
// list. Because every column's row indices are stored ascending, the
// per-z[c] accumulation order matches the column-major traversal
// exactly, so the kernels agree bit for bit (TestApplyCSRMatchesColumnMajor).
func (s *SparseBinary) ApplyT(r, z []float64) {
	for c := range z[:s.n] {
		z[c] = 0
	}
	rowPtr, rowCols := s.rowPtr, s.rowCols
	for i := 0; i < s.m; i++ {
		ri := r[i]
		if ri == 0 {
			continue
		}
		for _, c := range rowCols[rowPtr[i]:rowPtr[i+1]] {
			z[c] += ri
		}
	}
	scale := s.scale
	for c := range z[:s.n] {
		z[c] *= scale
	}
}

// applyColMajor is the pre-CSR column-major y = Φx kernel, kept as the
// bit-identity reference for tests and the ApplyTCSR benchmark pair.
func (s *SparseBinary) applyColMajor(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	d := s.d
	for c, v := range x[:s.n] {
		if v == 0 {
			continue
		}
		for _, r := range s.idx[c*d : (c+1)*d] {
			y[r] += v
		}
	}
	for i := range y {
		y[i] *= s.scale
	}
}

// applyTColMajor is the pre-CSR column-major z = Φᵀr kernel: every
// column gathers its d residual entries (scattered loads). Kept as the
// bit-identity reference for tests and the ApplyTCSR benchmark pair.
func (s *SparseBinary) applyTColMajor(r, z []float64) {
	d := s.d
	for c := 0; c < s.n; c++ {
		acc := 0.0
		for _, ri := range s.idx[c*d : (c+1)*d] {
			acc += r[ri]
		}
		z[c] = acc * s.scale
	}
}

// AddsPerWindow returns the number of integer additions the on-node
// encoder performs per window: d adds per input sample. This count feeds
// the compression-energy model of Figure 6.
func (s *SparseBinary) AddsPerWindow() int { return s.d * s.n }

// Gaussian is a dense i.i.d. N(0, 1/m) sensing matrix, the classical CS
// baseline against which the sparse-binary design is ablated.
type Gaussian struct {
	m, n int
	a    []float64 // row-major m×n
}

// NewGaussian builds a dense Gaussian sensing matrix.
func NewGaussian(m, n int, rng *rand.Rand) (*Gaussian, error) {
	if m <= 0 || n <= 0 || m > n {
		return nil, ErrDims
	}
	g := &Gaussian{m: m, n: n, a: make([]float64, m*n)}
	sd := 1 / math.Sqrt(float64(m))
	for i := range g.a {
		g.a[i] = sd * rng.NormFloat64()
	}
	return g, nil
}

// Rows returns the number of measurements m.
func (g *Gaussian) Rows() int { return g.m }

// Cols returns the window length n.
func (g *Gaussian) Cols() int { return g.n }

// Apply computes y = Φx.
func (g *Gaussian) Apply(x, y []float64) {
	for i := 0; i < g.m; i++ {
		row := g.a[i*g.n : (i+1)*g.n]
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
}

// ApplyT computes z = Φᵀr.
func (g *Gaussian) ApplyT(r, z []float64) {
	for j := range z {
		z[j] = 0
	}
	for i := 0; i < g.m; i++ {
		ri := r[i]
		if ri == 0 {
			continue
		}
		row := g.a[i*g.n : (i+1)*g.n]
		for j, v := range row {
			z[j] += v * ri
		}
	}
}

// OperatorNorm estimates ||Φ||₂² (the largest squared singular value) by
// power iteration; it upper-bounds the Lipschitz constant needed by the
// FISTA solvers. iters of 30 is ample for these well-conditioned random
// matrices.
func OperatorNorm(phi Matrix, iters int, rng *rand.Rand) float64 {
	n := phi.Cols()
	m := phi.Rows()
	x := make([]float64, n)
	y := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	norm := 0.0
	for it := 0; it < iters; it++ {
		phi.Apply(x, y)
		phi.ApplyT(y, x)
		norm = 0
		for _, v := range x {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		inv := 1 / norm
		for i := range x {
			x[i] *= inv
		}
	}
	return norm // ||ΦᵀΦ|| = ||Φ||²
}

// MeasurementsForCR returns the measurement count m for a window of n
// samples at compression ratio cr per the paper's definition
// CR = 100(n−m)/n, clamped to [1, n].
func MeasurementsForCR(n int, cr float64) int {
	m := int(math.Round(float64(n) * (1 - cr/100)))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// CRForMeasurements returns the compression ratio achieved by m
// measurements of an n-sample window.
func CRForMeasurements(n, m int) float64 {
	return 100 * float64(n-m) / float64(n)
}

package cs

// Batched (structure-of-arrays) sensing-matrix kernels. The batched
// FISTA solver applies one Φ to K windows per iteration; walking the CSR
// companion once per plane would reload the index stream K times, so the
// batch kernels walk it once and tile four planes per sweep — the index
// loads amortise over the tile and the four accumulators give the FP
// units independent dependency chains.
//
// Bit-identity contract: per plane the accumulation order equals the
// scalar Apply/ApplyT kernels exactly. ApplyT's zero-residual row skip
// is dropped in the batch kernel — adding ±0.0 into accumulators that
// start at +0.0 can never change a bit, so the unconditional walk is
// bitwise identical (TestBatchKernelsMatchScalar pins this).

// batchApplier is implemented by sensing matrices that can apply
// themselves across a structure-of-arrays plane set in one sweep. x/z
// buffers hold n-long stripes, y/r buffers m-long stripes; planes lists
// the stripe indices to process.
type batchApplier interface {
	applyBatch(x []float64, n int, y []float64, m int, planes []int)
	applyTBatch(r []float64, m int, z []float64, n int, planes []int)
}

// applyBatch computes y_p = Φx_p for every listed plane, walking the CSR
// row lists once per 4-plane tile.
func (s *SparseBinary) applyBatch(x []float64, n int, y []float64, m int, planes []int) {
	rowPtr, rowCols := s.rowPtr, s.rowCols
	scale := s.scale
	t := 0
	for ; t+4 <= len(planes); t += 4 {
		x0 := x[planes[t]*n : planes[t]*n+n]
		x1 := x[planes[t+1]*n : planes[t+1]*n+n]
		x2 := x[planes[t+2]*n : planes[t+2]*n+n]
		x3 := x[planes[t+3]*n : planes[t+3]*n+n]
		y0 := y[planes[t]*m : planes[t]*m+m]
		y1 := y[planes[t+1]*m : planes[t+1]*m+m]
		y2 := y[planes[t+2]*m : planes[t+2]*m+m]
		y3 := y[planes[t+3]*m : planes[t+3]*m+m]
		for i := 0; i < s.m; i++ {
			var a0, a1, a2, a3 float64
			for _, c := range rowCols[rowPtr[i]:rowPtr[i+1]] {
				a0 += x0[c]
				a1 += x1[c]
				a2 += x2[c]
				a3 += x3[c]
			}
			y0[i] = a0 * scale
			y1[i] = a1 * scale
			y2[i] = a2 * scale
			y3[i] = a3 * scale
		}
	}
	for ; t < len(planes); t++ {
		p := planes[t]
		s.Apply(x[p*n:p*n+n], y[p*m:p*m+m])
	}
}

// applyTBatch computes z_p = Φᵀr_p for every listed plane. The residual
// elements of the tile are loaded once per row and scattered into four
// stripes; per plane the per-z[c] accumulation order matches ApplyT.
func (s *SparseBinary) applyTBatch(r []float64, m int, z []float64, n int, planes []int) {
	rowPtr, rowCols := s.rowPtr, s.rowCols
	scale := s.scale
	t := 0
	for ; t+4 <= len(planes); t += 4 {
		r0 := r[planes[t]*m : planes[t]*m+m]
		r1 := r[planes[t+1]*m : planes[t+1]*m+m]
		r2 := r[planes[t+2]*m : planes[t+2]*m+m]
		r3 := r[planes[t+3]*m : planes[t+3]*m+m]
		z0 := z[planes[t]*n : planes[t]*n+n]
		z1 := z[planes[t+1]*n : planes[t+1]*n+n]
		z2 := z[planes[t+2]*n : planes[t+2]*n+n]
		z3 := z[planes[t+3]*n : planes[t+3]*n+n]
		for c := 0; c < n; c++ {
			z0[c] = 0
			z1[c] = 0
			z2[c] = 0
			z3[c] = 0
		}
		for i := 0; i < s.m; i++ {
			v0, v1, v2, v3 := r0[i], r1[i], r2[i], r3[i]
			for _, c := range rowCols[rowPtr[i]:rowPtr[i+1]] {
				z0[c] += v0
				z1[c] += v1
				z2[c] += v2
				z3[c] += v3
			}
		}
		for c := 0; c < n; c++ {
			z0[c] *= scale
			z1[c] *= scale
			z2[c] *= scale
			z3[c] *= scale
		}
	}
	for ; t < len(planes); t++ {
		p := planes[t]
		s.ApplyT(r[p*m:p*m+m], z[p*n:p*n+n])
	}
}

package cs

import "math"

// This file models the measurement quantisation on the radio path: the
// node transmits each CS measurement at a fixed bit width, and the
// receiver reconstructs from the dequantised values. The bits-per-
// measurement setting trades payload size against quantisation noise —
// the knob behind Figure 6's payload accounting.

// Quantizer is a uniform mid-rise quantiser over a symmetric range.
type Quantizer struct {
	bits  int
	scale float64 // full-scale amplitude
}

// NewQuantizer builds a quantiser with the given bit width (2..16) and
// full-scale amplitude (values beyond ±scale clip).
func NewQuantizer(bits int, scale float64) (*Quantizer, error) {
	if bits < 2 || bits > 16 || scale <= 0 {
		return nil, ErrSolver
	}
	return &Quantizer{bits: bits, scale: scale}, nil
}

// Bits returns the configured bit width.
func (q *Quantizer) Bits() int { return q.bits }

// Quantize maps a measurement to its integer code in
// [-2^(bits-1), 2^(bits-1)-1].
func (q *Quantizer) Quantize(v float64) int32 {
	levels := int32(1) << uint(q.bits-1)
	c := int32(math.Round(v / q.scale * float64(levels)))
	if c > levels-1 {
		c = levels - 1
	}
	if c < -levels {
		c = -levels
	}
	return c
}

// Dequantize maps a code back to its reconstruction value.
func (q *Quantizer) Dequantize(c int32) float64 {
	levels := float64(int32(1) << uint(q.bits-1))
	return float64(c) / levels * q.scale
}

// QuantizeSlice round-trips a measurement vector through the quantiser,
// returning the dequantised values the receiver would see plus the
// payload size in bytes.
func (q *Quantizer) QuantizeSlice(y []float64) (recon []float64, payloadBytes int) {
	recon = make([]float64, len(y))
	for i, v := range y {
		recon[i] = q.Dequantize(q.Quantize(v))
	}
	payloadBytes = (len(y)*q.bits + 7) / 8
	return recon, payloadBytes
}

// AutoScale returns a full-scale amplitude covering the given
// measurements with the specified headroom factor (>= 1).
func AutoScale(y []float64, headroom float64) float64 {
	if headroom < 1 {
		headroom = 1
	}
	peak := 0.0
	for _, v := range y {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return 1
	}
	return peak * headroom
}

package cs

import (
	"math"

	"wbsn/internal/wavelet"
)

// This file implements the connected-tree recovery model of ref [17]
// (Duarte, Wakin, Baraniuk, SPARS'05), which Section IV.A describes:
// "wavelet coefficients are naturally organized into a tree structure,
// and the largest coefficients cluster along the branches of this tree.
// A CS reconstruction algorithm based on the connected tree model has
// been proposed in [17]."
//
// TreeIHT is a model-based iterative hard thresholding: the gradient
// step is followed by a projection onto rooted-connected-tree supports —
// a child detail coefficient survives only if its parent at the next
// coarser scale survives — which encodes the persistence of ECG wave
// edges across scales.

// treeStructure precomputes the parent index of every pyramid-ordered
// coefficient (approximation coefficients are roots with parent -1).
func treeStructure(n, levels int) ([]int, error) {
	slices, err := wavelet.LevelSlices(n, levels)
	if err != nil {
		return nil, err
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	// slices[0] is the approximation band; slices[1] the coarsest detail
	// band d_L, then d_{L-1}, ..., d_1. A detail coefficient's parent is
	// the coefficient at half its in-band offset in the next coarser
	// band; the coarsest details attach to the approximation band.
	for si := 2; si < len(slices); si++ {
		child := slices[si]
		par := slices[si-1]
		for i := child[0]; i < child[1]; i++ {
			off := i - child[0]
			parent[i] = par[0] + off/2
		}
	}
	if len(slices) > 1 {
		d := slices[1]
		a := slices[0]
		for i := d[0]; i < d[1]; i++ {
			parent[i] = a[0] + (i - d[0])
		}
	}
	return parent, nil
}

// projectTree keeps the approximation band plus the best k detail
// coefficients subject to the rooted-tree constraint, zeroing the rest
// of theta in place. Selection is iterative greedy: at each step the
// largest-magnitude coefficient whose parent is already kept joins the
// support — the standard greedy approximation of the (harder) exact
// tree projection used in model-based CS practice. kept is caller-owned
// scratch of len(theta).
func projectTree(theta []float64, parent []int, alen, k int, kept []bool) {
	n := len(theta)
	for i := 0; i < alen; i++ {
		kept[i] = true // roots always survive
	}
	for i := alen; i < n; i++ {
		kept[i] = false
	}
	if k >= n-alen {
		return // everything admissible fits
	}
	for budget := k; budget > 0; budget-- {
		best, bestMag := -1, 0.0
		for i := alen; i < n; i++ {
			if kept[i] || !kept[parent[i]] {
				continue
			}
			if m := math.Abs(theta[i]); m > bestMag {
				bestMag, best = m, i
			}
		}
		if best < 0 || bestMag == 0 {
			break
		}
		kept[best] = true
	}
	for i := alen; i < n; i++ {
		if !kept[i] {
			theta[i] = 0
		}
	}
}

// quickSelect returns the k-th largest value of xs (destructive).
func quickSelect(xs []float64, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	if k > len(xs) {
		return math.Inf(-1)
	}
	lo, hi := 0, len(xs)-1
	target := k - 1 // index in descending order
	for {
		if lo >= hi {
			return xs[lo]
		}
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] > pivot {
				i++
			}
			for xs[j] < pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			return xs[target]
		}
	}
}

// TreeIHT reconstructs a window from measurements with model-based
// iterative hard thresholding over the rooted wavelet tree: k is the
// detail-coefficient budget (the approximation band is always kept).
// The step size is 1/L with L the decoder's Lipschitz estimate. The tree
// tables are built once at decoder construction and all iteration state
// comes from the decoder's scratch pool.
func (d *Decoder) TreeIHT(y []float64, k, iters int) ([]float64, error) {
	if len(y) != d.m {
		return nil, ErrSolver
	}
	if k <= 0 || iters <= 0 {
		return nil, ErrSolver
	}
	s := d.pool.Get().(*solverScratch)
	defer d.pool.Put(s)
	parent, alen := d.parent, d.alen
	phi := d.phis[0]
	theta := s.theta
	for i := range theta {
		theta[i] = 0
	}
	for it := 0; it < iters; it++ {
		d.gradInto(phi, theta, y, s.grad, s)
		// Normalized-IHT step (Blumensath-Davies): the optimal step for
		// the gradient restricted to the current support,
		// ||g_S||² / ||A g_S||², which keeps the iteration stable without
		// a global Lipschitz bound. On the first iteration (empty
		// support) the unrestricted gradient is used.
		gS := s.gS
		restricted := false
		for i := range theta {
			if theta[i] != 0 || i < alen {
				gS[i] = s.grad[i]
				restricted = true
			} else {
				gS[i] = 0
			}
		}
		if !restricted {
			copy(gS, s.grad)
		}
		d.synthInto(gS, s.x, s)
		phi.Apply(s.x, s.ax)
		var num, den float64
		for _, v := range gS {
			num += v * v
		}
		for _, v := range s.ax {
			den += v * v
		}
		step := d.step
		if den > 0 && num > 0 {
			step = num / den
		}
		for i := range theta {
			theta[i] -= step * s.grad[i]
		}
		projectTree(theta, parent, alen, k, s.kept)
	}
	// Debias: least squares restricted to the final support (gradient
	// descent with the NIHT step keeps it matrix-free).
	support := s.support
	for i := range theta {
		support[i] = theta[i] != 0 || i < alen
	}
	for it := 0; it < 60; it++ {
		d.gradInto(phi, theta, y, s.grad, s)
		for i := range s.grad {
			if !support[i] {
				s.grad[i] = 0
			}
		}
		d.synthInto(s.grad, s.x, s)
		phi.Apply(s.x, s.ax)
		var num, den float64
		for _, v := range s.grad {
			num += v * v
		}
		for _, v := range s.ax {
			den += v * v
		}
		if den == 0 || num == 0 {
			break
		}
		step := num / den
		for i := range theta {
			theta[i] -= step * s.grad[i]
		}
	}
	out := make([]float64, d.n)
	d.synthInto(theta, out, s)
	return out, nil
}

package cs

import (
	"errors"
	"math"
	"math/rand"

	"wbsn/internal/wavelet"
)

// ErrSolver is returned when solver inputs are inconsistent.
var ErrSolver = errors.New("cs: inconsistent solver inputs")

// SolverConfig parameterises the FISTA reconstructions.
type SolverConfig struct {
	// Wavelet is the orthonormal sparsity basis (default Daubechies8).
	Wavelet *wavelet.Orthogonal
	// Levels is the DWT depth (default 5).
	Levels int
	// Iters is the number of FISTA iterations (default 200).
	Iters int
	// LambdaRel sets the ℓ1 weight as a fraction of ||ΨᵀΦᵀy||∞
	// (default 0.01).
	LambdaRel float64
	// Reweights is the number of iterative-reweighting passes after the
	// first solve (Candès-Wakin-Boyd style: w_i ∝ 1/(|θ_i|+ε), a
	// log-penalty surrogate that sharpens recovery of the large
	// coefficients). 0 disables reweighting.
	Reweights int
	// PenalizeApprox also penalises the coarse approximation band; by
	// default it is left unpenalised (its few coefficients carry the
	// signal trend and are not sparse — standard practice in wavelet-CS).
	PenalizeApprox bool
	// Seed drives the power iteration for the Lipschitz estimate.
	Seed int64
}

func (c SolverConfig) withDefaults() SolverConfig {
	out := c
	if out.Wavelet == nil {
		out.Wavelet = wavelet.Daubechies8()
	}
	if out.Levels <= 0 {
		out.Levels = 5
	}
	if out.Iters <= 0 {
		out.Iters = 200
	}
	if out.LambdaRel <= 0 {
		out.LambdaRel = 0.01
	}
	return out
}

// Decoder reconstructs windows from CS measurements. It is receiver-side
// machinery (phones/servers in the paper's architecture) and therefore
// uses floating point freely.
//
// A Decoder holds one sensing matrix per lead. With a single matrix all
// leads share it (the cheapest node design); with per-lead matrices the
// joint solver additionally benefits from measurement diversity across
// channels, as each lead then observes the common support through a
// different projection (the JSM-2 setting of the distributed-CS
// literature underlying ref [6]).
type Decoder struct {
	phis    []Matrix
	cfg     SolverConfig
	lip     float64 // max ||Φ_l||² (orthonormal Ψ preserves operator norms)
	n, m    int
	weights []float64 // per-coefficient penalty weights (0 = unpenalised)
}

// NewDecoder builds a decoder in which every lead shares the one sensing
// matrix.
func NewDecoder(phi Matrix, cfg SolverConfig) (*Decoder, error) {
	return NewJointDecoder([]Matrix{phi}, cfg)
}

// NewJointDecoder builds a decoder with one sensing matrix per lead. All
// matrices must agree in dimensions. Leads beyond len(phis) reuse the
// last matrix.
func NewJointDecoder(phis []Matrix, cfg SolverConfig) (*Decoder, error) {
	if len(phis) == 0 {
		return nil, ErrSolver
	}
	c := cfg.withDefaults()
	n, m := phis[0].Cols(), phis[0].Rows()
	for _, p := range phis[1:] {
		if p.Cols() != n || p.Rows() != m {
			return nil, ErrSolver
		}
	}
	if n%(1<<uint(c.Levels)) != 0 {
		return nil, ErrSolver
	}
	rng := rand.New(rand.NewSource(c.Seed + 777))
	lip := 0.0
	for _, p := range phis {
		if l := OperatorNorm(p, 30, rng); l > lip {
			lip = l
		}
	}
	if lip <= 0 {
		return nil, ErrSolver
	}
	d := &Decoder{phis: phis, cfg: c, lip: lip * 1.02, n: n, m: m}
	d.weights = make([]float64, n)
	for i := range d.weights {
		d.weights[i] = 1
	}
	if !c.PenalizeApprox {
		alen := n >> uint(c.Levels)
		for i := 0; i < alen; i++ {
			d.weights[i] = 0
		}
	}
	return d, nil
}

// matrixFor returns the sensing matrix used by lead l.
func (d *Decoder) matrixFor(l int) Matrix {
	if l < len(d.phis) {
		return d.phis[l]
	}
	return d.phis[len(d.phis)-1]
}

// synth maps wavelet coefficients to the signal domain (x = Ψθ).
func (d *Decoder) synth(theta []float64) []float64 {
	x, err := d.cfg.Wavelet.Inverse(theta, d.cfg.Levels)
	if err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	return x
}

// analyze maps a signal to wavelet coefficients (θ = Ψᵀx).
func (d *Decoder) analyze(x []float64) []float64 {
	t, err := d.cfg.Wavelet.Forward(x, d.cfg.Levels)
	if err != nil {
		panic("cs: internal analysis error: " + err.Error())
	}
	return t
}

// gradient computes ∇f(θ) = Ψᵀ Φᵀ(Φ Ψ θ − y) for the given lead matrix.
func (d *Decoder) gradient(phi Matrix, theta, y []float64) []float64 {
	x := d.synth(theta)
	ax := make([]float64, d.m)
	phi.Apply(x, ax)
	for i := range ax {
		ax[i] -= y[i]
	}
	z := make([]float64, d.n)
	phi.ApplyT(ax, z)
	return d.analyze(z)
}

// softThreshold applies the ℓ1 proximal operator elementwise.
func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Reconstruct solves min_θ ½||ΦΨθ − y||² + λ||Wθ||₁ with FISTA and
// returns x̂ = Ψθ̂, using lead 0's sensing matrix. λ is set relative to
// ||ΨᵀΦᵀy||∞.
func (d *Decoder) Reconstruct(y []float64) ([]float64, error) {
	return d.reconstructWith(d.phis[0], y)
}

func (d *Decoder) reconstructWith(phi Matrix, y []float64) ([]float64, error) {
	if len(y) != d.m {
		return nil, ErrSolver
	}
	z := make([]float64, d.n)
	phi.ApplyT(y, z)
	aty := d.analyze(z)
	maxAbs := 0.0
	for _, v := range aty {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	lambda := d.cfg.LambdaRel * maxAbs
	step := 1 / d.lip
	theta := make([]float64, d.n)
	prev := make([]float64, d.n)
	mom := make([]float64, d.n)
	rw := make([]float64, d.n)
	for i := range rw {
		rw[i] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		for i := range theta {
			theta[i] = 0
			prev[i] = 0
			mom[i] = 0
		}
		tk := 1.0
		for it := 0; it < d.cfg.Iters; it++ {
			grad := d.gradient(phi, mom, y)
			copy(prev, theta)
			for i := range theta {
				theta[i] = softThreshold(mom[i]-step*grad[i], step*lambda*d.weights[i]*rw[i])
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for i := range mom {
				mom[i] = theta[i] + beta*(theta[i]-prev[i])
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Candès-Wakin-Boyd reweighting around the current estimate.
		peak := 0.0
		for _, v := range theta {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		eps := 0.05*peak + 1e-12
		for i := range rw {
			rw[i] = eps / (math.Abs(theta[i]) + eps)
		}
	}
	return d.synth(theta), nil
}

// ReconstructLeads reconstructs each lead independently — the
// "Single-Lead CS" strategy of Figure 5 applied per lead. Lead l uses
// its own sensing matrix when the decoder was built with per-lead
// matrices.
func (d *Decoder) ReconstructLeads(ys [][]float64) ([][]float64, error) {
	out := make([][]float64, len(ys))
	for i, y := range ys {
		x, err := d.reconstructWith(d.matrixFor(i), y)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// ReconstructJoint solves the multi-lead problem of ref [6]: the leads
// share sparsity structure, so the solver minimises
//
//	½ Σ_l ||Φ_l Ψθ_l − y_l||² + λ Σ_j w_j ||θ_{·j}||₂
//
// where the second term is the mixed ℓ2,1 norm grouping coefficient j
// across all leads. The proximal step is group soft-thresholding, which
// keeps a coefficient alive in every lead when the group's joint energy
// is high — recovering weak-lead detail that independent ℓ1 loses.
// Because the leads project the same dipole with very different gains,
// each lead's measurements are normalised to unit RMS for the solve and
// rescaled afterwards.
func (d *Decoder) ReconstructJoint(ys [][]float64) ([][]float64, error) {
	L := len(ys)
	if L == 0 {
		return nil, ErrSolver
	}
	for _, y := range ys {
		if len(y) != d.m {
			return nil, ErrSolver
		}
	}
	gains := make([]float64, L)
	ysn := make([][]float64, L)
	for l, y := range ys {
		rms := 0.0
		for _, v := range y {
			rms += v * v
		}
		rms = math.Sqrt(rms / float64(len(y)))
		if rms == 0 {
			rms = 1
		}
		gains[l] = rms
		yn := make([]float64, len(y))
		inv := 1 / rms
		for i, v := range y {
			yn[i] = v * inv
		}
		ysn[l] = yn
	}
	// λ from the group norms of the back-projected data.
	groupMax := 0.0
	atys := make([][]float64, L)
	for l, y := range ysn {
		z := make([]float64, d.n)
		d.matrixFor(l).ApplyT(y, z)
		atys[l] = d.analyze(z)
	}
	for j := 0; j < d.n; j++ {
		g := 0.0
		for l := 0; l < L; l++ {
			g += atys[l][j] * atys[l][j]
		}
		if g > groupMax {
			groupMax = g
		}
	}
	lambda := d.cfg.LambdaRel * math.Sqrt(groupMax)
	step := 1 / d.lip
	theta := make([][]float64, L)
	prev := make([][]float64, L)
	mom := make([][]float64, L)
	for l := 0; l < L; l++ {
		theta[l] = make([]float64, d.n)
		prev[l] = make([]float64, d.n)
		mom[l] = make([]float64, d.n)
	}
	grads := make([][]float64, L)
	rw := make([]float64, d.n)
	for j := range rw {
		rw[j] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		for l := 0; l < L; l++ {
			for i := range theta[l] {
				theta[l][i] = 0
				prev[l][i] = 0
				mom[l][i] = 0
			}
		}
		tk := 1.0
		for it := 0; it < d.cfg.Iters; it++ {
			for l := 0; l < L; l++ {
				grads[l] = d.gradient(d.matrixFor(l), mom[l], ysn[l])
			}
			for l := 0; l < L; l++ {
				copy(prev[l], theta[l])
			}
			// Group soft-threshold across leads at each coefficient index.
			for j := 0; j < d.n; j++ {
				norm := 0.0
				for l := 0; l < L; l++ {
					v := mom[l][j] - step*grads[l][j]
					theta[l][j] = v // stash pre-threshold value
					norm += v * v
				}
				th := step * lambda * d.weights[j] * rw[j]
				if th == 0 {
					continue
				}
				norm = math.Sqrt(norm)
				if norm <= th {
					for l := 0; l < L; l++ {
						theta[l][j] = 0
					}
					continue
				}
				shrink := 1 - th/norm
				for l := 0; l < L; l++ {
					theta[l][j] *= shrink
				}
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for l := 0; l < L; l++ {
				for i := range mom[l] {
					mom[l][i] = theta[l][i] + beta*(theta[l][i]-prev[l][i])
				}
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Group-level reweighting around the current estimate.
		norms := make([]float64, d.n)
		peak := 0.0
		for j := 0; j < d.n; j++ {
			g := 0.0
			for l := 0; l < L; l++ {
				g += theta[l][j] * theta[l][j]
			}
			norms[j] = math.Sqrt(g)
			if norms[j] > peak {
				peak = norms[j]
			}
		}
		eps := 0.05*peak + 1e-12
		for j := range rw {
			rw[j] = eps / (norms[j] + eps)
		}
	}
	out := make([][]float64, L)
	for l := 0; l < L; l++ {
		out[l] = d.synth(theta[l])
		for i := range out[l] {
			out[l][i] *= gains[l]
		}
	}
	return out, nil
}

package cs

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"wbsn/internal/wavelet"
)

// ErrSolver is returned when solver inputs are inconsistent.
var ErrSolver = errors.New("cs: inconsistent solver inputs")

// SolverConfig parameterises the FISTA reconstructions.
type SolverConfig struct {
	// Wavelet is the orthonormal sparsity basis (default Daubechies8).
	Wavelet *wavelet.Orthogonal
	// Levels is the DWT depth (default 5).
	Levels int
	// Iters is the number of FISTA iterations (default 200).
	Iters int
	// LambdaRel sets the ℓ1 weight as a fraction of ||ΨᵀΦᵀy||∞
	// (default 0.01).
	LambdaRel float64
	// Reweights is the number of iterative-reweighting passes after the
	// first solve (Candès-Wakin-Boyd style: w_i ∝ 1/(|θ_i|+ε), a
	// log-penalty surrogate that sharpens recovery of the large
	// coefficients). 0 disables reweighting.
	Reweights int
	// PenalizeApprox also penalises the coarse approximation band; by
	// default it is left unpenalised (its few coefficients carry the
	// signal trend and are not sparse — standard practice in wavelet-CS).
	PenalizeApprox bool
	// Seed drives the power iteration for the Lipschitz estimate.
	Seed int64
}

func (c SolverConfig) withDefaults() SolverConfig {
	out := c
	if out.Wavelet == nil {
		out.Wavelet = wavelet.Daubechies8()
	}
	if out.Levels <= 0 {
		out.Levels = 5
	}
	if out.Iters <= 0 {
		out.Iters = 200
	}
	if out.LambdaRel <= 0 {
		out.LambdaRel = 0.01
	}
	return out
}

// Decoder reconstructs windows from CS measurements. It is receiver-side
// machinery (phones/servers in the paper's architecture) and therefore
// uses floating point freely.
//
// A Decoder holds one sensing matrix per lead. With a single matrix all
// leads share it (the cheapest node design); with per-lead matrices the
// joint solver additionally benefits from measurement diversity across
// channels, as each lead then observes the common support through a
// different projection (the JSM-2 setting of the distributed-CS
// literature underlying ref [6]).
// All fields are immutable after construction; per-call work buffers come
// from the scratch pool, so one Decoder may reconstruct from many
// goroutines concurrently.
type Decoder struct {
	phis    []Matrix
	cfg     SolverConfig
	lip     float64 // max ||Φ_l||² (orthonormal Ψ preserves operator norms)
	step    float64 // 1/lip, the FISTA gradient step (cached)
	n, m    int
	weights []float64 // per-coefficient penalty weights (0 = unpenalised)
	alen    int       // approximation-band length n >> Levels
	parent  []int     // rooted wavelet-tree parents (TreeIHT model)
	pool    *sync.Pool // *solverScratch
}

// NewDecoder builds a decoder in which every lead shares the one sensing
// matrix.
func NewDecoder(phi Matrix, cfg SolverConfig) (*Decoder, error) {
	return NewJointDecoder([]Matrix{phi}, cfg)
}

// NewJointDecoder builds a decoder with one sensing matrix per lead. All
// matrices must agree in dimensions. Leads beyond len(phis) reuse the
// last matrix.
func NewJointDecoder(phis []Matrix, cfg SolverConfig) (*Decoder, error) {
	if len(phis) == 0 {
		return nil, ErrSolver
	}
	c := cfg.withDefaults()
	n, m := phis[0].Cols(), phis[0].Rows()
	for _, p := range phis[1:] {
		if p.Cols() != n || p.Rows() != m {
			return nil, ErrSolver
		}
	}
	if n%(1<<uint(c.Levels)) != 0 {
		return nil, ErrSolver
	}
	rng := rand.New(rand.NewSource(c.Seed + 777))
	lip := 0.0
	for _, p := range phis {
		if l := OperatorNorm(p, 30, rng); l > lip {
			lip = l
		}
	}
	if lip <= 0 {
		return nil, ErrSolver
	}
	d := &Decoder{phis: phis, cfg: c, lip: lip * 1.02, n: n, m: m}
	d.step = 1 / d.lip
	d.alen = n >> uint(c.Levels)
	d.weights = make([]float64, n)
	for i := range d.weights {
		d.weights[i] = 1
	}
	if !c.PenalizeApprox {
		for i := 0; i < d.alen; i++ {
			d.weights[i] = 0
		}
	}
	parent, err := treeStructure(n, c.Levels)
	if err != nil {
		return nil, err
	}
	d.parent = parent
	d.pool = newScratchPool(n, m)
	return d, nil
}

// Clone returns a decoder that shares every piece of immutable derived
// state — sensing matrices, Lipschitz bound, penalty weights, tree
// tables — but owns a private scratch pool. Engine workers use clones so
// their steady-state buffers never migrate between OS threads.
func (d *Decoder) Clone() *Decoder {
	out := *d
	out.pool = newScratchPool(d.n, d.m)
	return &out
}

// matrixFor returns the sensing matrix used by lead l.
func (d *Decoder) matrixFor(l int) Matrix {
	if l < len(d.phis) {
		return d.phis[l]
	}
	return d.phis[len(d.phis)-1]
}

// synth maps wavelet coefficients to the signal domain (x = Ψθ).
func (d *Decoder) synth(theta []float64) []float64 {
	x, err := d.cfg.Wavelet.Inverse(theta, d.cfg.Levels)
	if err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	return x
}

// analyze maps a signal to wavelet coefficients (θ = Ψᵀx).
func (d *Decoder) analyze(x []float64) []float64 {
	t, err := d.cfg.Wavelet.Forward(x, d.cfg.Levels)
	if err != nil {
		panic("cs: internal analysis error: " + err.Error())
	}
	return t
}

// synthInto is synth writing into out, drawing DWT intermediates from s.
func (d *Decoder) synthInto(theta, out []float64, s *solverScratch) {
	if err := d.cfg.Wavelet.InverseInto(theta, d.cfg.Levels, out, &s.ws); err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
}

// analyzeInto is analyze writing into out, drawing DWT intermediates
// from s.
func (d *Decoder) analyzeInto(x, out []float64, s *solverScratch) {
	if err := d.cfg.Wavelet.ForwardInto(x, d.cfg.Levels, out, &s.ws); err != nil {
		panic("cs: internal analysis error: " + err.Error())
	}
}

// gradInto computes ∇f(θ) = Ψᵀ Φᵀ(Φ Ψ θ − y) into dst for the given lead
// matrix. It clobbers s.x, s.ax and s.z; dst must not alias them.
func (d *Decoder) gradInto(phi Matrix, theta, y, dst []float64, s *solverScratch) {
	d.synthInto(theta, s.x, s)
	phi.Apply(s.x, s.ax)
	for i := range s.ax {
		s.ax[i] -= y[i]
	}
	phi.ApplyT(s.ax, s.z)
	d.analyzeInto(s.z, dst, s)
}

// softThreshold applies the ℓ1 proximal operator elementwise.
func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Reconstruct solves min_θ ½||ΦΨθ − y||² + λ||Wθ||₁ with FISTA and
// returns x̂ = Ψθ̂, using lead 0's sensing matrix. λ is set relative to
// ||ΨᵀΦᵀy||∞.
func (d *Decoder) Reconstruct(y []float64) ([]float64, error) {
	return d.reconstructWith(d.phis[0], y)
}

func (d *Decoder) reconstructWith(phi Matrix, y []float64) ([]float64, error) {
	if len(y) != d.m {
		return nil, ErrSolver
	}
	s := d.pool.Get().(*solverScratch)
	defer d.pool.Put(s)
	phi.ApplyT(y, s.z)
	d.analyzeInto(s.z, s.aty, s)
	maxAbs := 0.0
	for _, v := range s.aty {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	lambda := d.cfg.LambdaRel * maxAbs
	step := d.step
	theta, prev, mom, rw := s.theta, s.prev, s.mom, s.rw
	for i := range rw {
		rw[i] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		for i := range theta {
			theta[i] = 0
			prev[i] = 0
			mom[i] = 0
		}
		tk := 1.0
		for it := 0; it < d.cfg.Iters; it++ {
			d.gradInto(phi, mom, y, s.grad, s)
			copy(prev, theta)
			for i := range theta {
				theta[i] = softThreshold(mom[i]-step*s.grad[i], step*lambda*d.weights[i]*rw[i])
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for i := range mom {
				mom[i] = theta[i] + beta*(theta[i]-prev[i])
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Candès-Wakin-Boyd reweighting around the current estimate.
		peak := 0.0
		for _, v := range theta {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		eps := 0.05*peak + 1e-12
		for i := range rw {
			rw[i] = eps / (math.Abs(theta[i]) + eps)
		}
	}
	out := make([]float64, d.n)
	d.synthInto(theta, out, s)
	return out, nil
}

// ReconstructLeads reconstructs each lead independently — the
// "Single-Lead CS" strategy of Figure 5 applied per lead. Lead l uses
// its own sensing matrix when the decoder was built with per-lead
// matrices.
func (d *Decoder) ReconstructLeads(ys [][]float64) ([][]float64, error) {
	out := make([][]float64, len(ys))
	for i, y := range ys {
		x, err := d.reconstructWith(d.matrixFor(i), y)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// ReconstructJoint solves the multi-lead problem of ref [6]: the leads
// share sparsity structure, so the solver minimises
//
//	½ Σ_l ||Φ_l Ψθ_l − y_l||² + λ Σ_j w_j ||θ_{·j}||₂
//
// where the second term is the mixed ℓ2,1 norm grouping coefficient j
// across all leads. The proximal step is group soft-thresholding, which
// keeps a coefficient alive in every lead when the group's joint energy
// is high — recovering weak-lead detail that independent ℓ1 loses.
// Because the leads project the same dipole with very different gains,
// each lead's measurements are normalised to unit RMS for the solve and
// rescaled afterwards.
func (d *Decoder) ReconstructJoint(ys [][]float64) ([][]float64, error) {
	L := len(ys)
	if L == 0 {
		return nil, ErrSolver
	}
	for _, y := range ys {
		if len(y) != d.m {
			return nil, ErrSolver
		}
	}
	s := d.pool.Get().(*solverScratch)
	defer d.pool.Put(s)
	s.ensureLeads(L, d.n, d.m)
	gains := s.gains[:L]
	ysn := s.ysn[:L]
	for l, y := range ys {
		rms := 0.0
		for _, v := range y {
			rms += v * v
		}
		rms = math.Sqrt(rms / float64(len(y)))
		if rms == 0 {
			rms = 1
		}
		gains[l] = rms
		inv := 1 / rms
		for i, v := range y {
			ysn[l][i] = v * inv
		}
	}
	// λ from the group norms of the back-projected data, accumulated
	// lead by lead so the per-lead back-projections need no storage.
	norms := s.norms
	for j := range norms {
		norms[j] = 0
	}
	for l := 0; l < L; l++ {
		d.matrixFor(l).ApplyT(ysn[l], s.z)
		d.analyzeInto(s.z, s.aty, s)
		for j, v := range s.aty {
			norms[j] += v * v
		}
	}
	groupMax := 0.0
	for _, g := range norms {
		if g > groupMax {
			groupMax = g
		}
	}
	lambda := d.cfg.LambdaRel * math.Sqrt(groupMax)
	step := d.step
	theta := s.jtheta[:L]
	prev := s.jprev[:L]
	mom := s.jmom[:L]
	grads := s.jgrad[:L]
	rw := s.rw
	for j := range rw {
		rw[j] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		for l := 0; l < L; l++ {
			for i := range theta[l] {
				theta[l][i] = 0
				prev[l][i] = 0
				mom[l][i] = 0
			}
		}
		tk := 1.0
		for it := 0; it < d.cfg.Iters; it++ {
			for l := 0; l < L; l++ {
				d.gradInto(d.matrixFor(l), mom[l], ysn[l], grads[l], s)
			}
			for l := 0; l < L; l++ {
				copy(prev[l], theta[l])
			}
			// Group soft-threshold across leads at each coefficient index.
			for j := 0; j < d.n; j++ {
				norm := 0.0
				for l := 0; l < L; l++ {
					v := mom[l][j] - step*grads[l][j]
					theta[l][j] = v // stash pre-threshold value
					norm += v * v
				}
				th := step * lambda * d.weights[j] * rw[j]
				if th == 0 {
					continue
				}
				norm = math.Sqrt(norm)
				if norm <= th {
					for l := 0; l < L; l++ {
						theta[l][j] = 0
					}
					continue
				}
				shrink := 1 - th/norm
				for l := 0; l < L; l++ {
					theta[l][j] *= shrink
				}
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for l := 0; l < L; l++ {
				for i := range mom[l] {
					mom[l][i] = theta[l][i] + beta*(theta[l][i]-prev[l][i])
				}
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Group-level reweighting around the current estimate.
		peak := 0.0
		for j := 0; j < d.n; j++ {
			g := 0.0
			for l := 0; l < L; l++ {
				g += theta[l][j] * theta[l][j]
			}
			norms[j] = math.Sqrt(g)
			if norms[j] > peak {
				peak = norms[j]
			}
		}
		eps := 0.05*peak + 1e-12
		for j := range rw {
			rw[j] = eps / (norms[j] + eps)
		}
	}
	out := make([][]float64, L)
	for l := 0; l < L; l++ {
		out[l] = make([]float64, d.n)
		d.synthInto(theta[l], out[l], s)
		for i := range out[l] {
			out[l][i] *= gains[l]
		}
	}
	return out, nil
}

package cs

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"wbsn/internal/wavelet"
)

// ErrSolver is returned when solver inputs are inconsistent.
var ErrSolver = errors.New("cs: inconsistent solver inputs")

// SolverConfig parameterises the FISTA reconstructions.
type SolverConfig struct {
	// Wavelet is the orthonormal sparsity basis (default Daubechies8).
	Wavelet *wavelet.Orthogonal
	// Levels is the DWT depth (default 5).
	Levels int
	// Iters is the FISTA iteration budget per pass (default 200). With
	// Tol == 0 the solver always runs the full budget.
	Iters int
	// LambdaRel sets the ℓ1 weight as a fraction of ||ΨᵀΦᵀy||∞
	// (default 0.01).
	LambdaRel float64
	// Reweights is the number of iterative-reweighting passes after the
	// first solve (Candès-Wakin-Boyd style: w_i ∝ 1/(|θ_i|+ε), a
	// log-penalty surrogate that sharpens recovery of the large
	// coefficients). 0 disables reweighting.
	Reweights int
	// PenalizeApprox also penalises the coarse approximation band; by
	// default it is left unpenalised (its few coefficients carry the
	// signal trend and are not sparse — standard practice in wavelet-CS).
	PenalizeApprox bool
	// Seed drives the power iteration for the Lipschitz estimate.
	Seed int64
	// Tol enables the convergence-aware solver: a pass stops early once
	// the relative iterate change ‖θ_k − θ_{k−1}‖/‖θ_k‖ drops below Tol
	// AND the objective has stopped decreasing by more than a Tol
	// fraction between consecutive checks. Tol > 0 also arms the
	// O'Donoghue–Candès adaptive momentum restart. Tol == 0 (the
	// default) keeps the fixed-budget solver bit-identical to the
	// pre-convergence-aware implementation.
	Tol float64
	// MinIters floors the iteration count of each pass before the
	// convergence test may fire (default 10 when Tol > 0). It guards
	// against exiting on the flat early iterations of a cold start.
	MinIters int
}

func (c SolverConfig) withDefaults() SolverConfig {
	out := c
	if out.Wavelet == nil {
		out.Wavelet = wavelet.Daubechies8()
	}
	if out.Levels <= 0 {
		out.Levels = 5
	}
	if out.Iters <= 0 {
		out.Iters = 200
	}
	if out.LambdaRel <= 0 {
		out.LambdaRel = 0.01
	}
	if out.Tol > 0 && out.MinIters <= 0 {
		out.MinIters = 10
	}
	return out
}

// SolveStats reports one reconstruction's convergence behaviour. All
// counters aggregate over reweighting passes (and, for the multi-lead
// independent solver, over leads).
type SolveStats struct {
	// Iters is the number of FISTA iterations actually executed.
	Iters int
	// Restarts counts adaptive momentum restarts (tk reset to 1).
	Restarts int
	// EarlyExit reports whether at least one pass stopped before its
	// iteration budget.
	EarlyExit bool
	// Warm reports whether the solve was seeded from a WarmState.
	Warm bool
	// ColdFallback reports that a warm solve diverged and the window was
	// re-solved from a cold start (the returned signal is the cold one).
	ColdFallback bool
}

// add accumulates another solve's counters (per-lead aggregation).
func (st *SolveStats) add(o SolveStats) {
	st.Iters += o.Iters
	st.Restarts += o.Restarts
	st.EarlyExit = st.EarlyExit || o.EarlyExit
	st.Warm = st.Warm || o.Warm
	st.ColdFallback = st.ColdFallback || o.ColdFallback
}

// tinyNormSq keeps the relative-change test meaningful when the
// iterate is exactly zero (silent windows converge immediately instead
// of dividing by zero).
const tinyNormSq = 1e-24

// Decoder reconstructs windows from CS measurements. It is receiver-side
// machinery (phones/servers in the paper's architecture) and therefore
// uses floating point freely.
//
// A Decoder holds one sensing matrix per lead. With a single matrix all
// leads share it (the cheapest node design); with per-lead matrices the
// joint solver additionally benefits from measurement diversity across
// channels, as each lead then observes the common support through a
// different projection (the JSM-2 setting of the distributed-CS
// literature underlying ref [6]).
// All fields are immutable after construction; per-call work buffers come
// from the scratch pool, so one Decoder may reconstruct from many
// goroutines concurrently. Cross-window solver state lives in caller-
// owned WarmState values, never in the Decoder.
type Decoder struct {
	phis    []Matrix
	cfg     SolverConfig
	lip     float64 // max ||Φ_l||² (orthonormal Ψ preserves operator norms)
	step    float64 // 1/lip, the FISTA gradient step (cached)
	n, m    int
	weights []float64  // per-coefficient penalty weights (0 = unpenalised)
	alen    int        // approximation-band length n >> Levels
	parent  []int      // rooted wavelet-tree parents (TreeIHT model)
	pool    *sync.Pool // *solverScratch
	bpool   *sync.Pool // *batchScratch
}

// NewDecoder builds a decoder in which every lead shares the one sensing
// matrix.
func NewDecoder(phi Matrix, cfg SolverConfig) (*Decoder, error) {
	return NewJointDecoder([]Matrix{phi}, cfg)
}

// NewJointDecoder builds a decoder with one sensing matrix per lead. All
// matrices must agree in dimensions. Leads beyond len(phis) reuse the
// last matrix.
func NewJointDecoder(phis []Matrix, cfg SolverConfig) (*Decoder, error) {
	if len(phis) == 0 {
		return nil, ErrSolver
	}
	c := cfg.withDefaults()
	n, m := phis[0].Cols(), phis[0].Rows()
	for _, p := range phis[1:] {
		if p.Cols() != n || p.Rows() != m {
			return nil, ErrSolver
		}
	}
	if n%(1<<uint(c.Levels)) != 0 {
		return nil, ErrSolver
	}
	rng := rand.New(rand.NewSource(c.Seed + 777))
	lip := 0.0
	for _, p := range phis {
		if l := OperatorNorm(p, 30, rng); l > lip {
			lip = l
		}
	}
	if lip <= 0 {
		return nil, ErrSolver
	}
	d := &Decoder{phis: phis, cfg: c, lip: lip * 1.02, n: n, m: m}
	d.step = 1 / d.lip
	d.alen = n >> uint(c.Levels)
	d.weights = make([]float64, n)
	for i := range d.weights {
		d.weights[i] = 1
	}
	if !c.PenalizeApprox {
		for i := 0; i < d.alen; i++ {
			d.weights[i] = 0
		}
	}
	parent, err := treeStructure(n, c.Levels)
	if err != nil {
		return nil, err
	}
	d.parent = parent
	d.pool = newScratchPool(n, m)
	d.bpool = newBatchPool()
	return d, nil
}

// Clone returns a decoder that shares every piece of immutable derived
// state — sensing matrices, Lipschitz bound, penalty weights, tree
// tables — but owns a private scratch pool. Engine workers use clones so
// their steady-state buffers never migrate between OS threads.
func (d *Decoder) Clone() *Decoder {
	out := *d
	out.pool = newScratchPool(d.n, d.m)
	out.bpool = newBatchPool()
	return &out
}

// Config returns the effective solver configuration (defaults applied).
func (d *Decoder) Config() SolverConfig { return d.cfg }

// matrixFor returns the sensing matrix used by lead l.
func (d *Decoder) matrixFor(l int) Matrix {
	if l < len(d.phis) {
		return d.phis[l]
	}
	return d.phis[len(d.phis)-1]
}

// synth maps wavelet coefficients to the signal domain (x = Ψθ).
func (d *Decoder) synth(theta []float64) []float64 {
	x, err := d.cfg.Wavelet.Inverse(theta, d.cfg.Levels)
	if err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
	return x
}

// analyze maps a signal to wavelet coefficients (θ = Ψᵀx).
func (d *Decoder) analyze(x []float64) []float64 {
	t, err := d.cfg.Wavelet.Forward(x, d.cfg.Levels)
	if err != nil {
		panic("cs: internal analysis error: " + err.Error())
	}
	return t
}

// synthInto is synth writing into out, drawing DWT intermediates from s.
func (d *Decoder) synthInto(theta, out []float64, s *solverScratch) {
	if err := d.cfg.Wavelet.InverseInto(theta, d.cfg.Levels, out, &s.ws); err != nil {
		panic("cs: internal synthesis error: " + err.Error())
	}
}

// analyzeInto is analyze writing into out, drawing DWT intermediates
// from s.
func (d *Decoder) analyzeInto(x, out []float64, s *solverScratch) {
	if err := d.cfg.Wavelet.ForwardInto(x, d.cfg.Levels, out, &s.ws); err != nil {
		panic("cs: internal analysis error: " + err.Error())
	}
}

// gradInto computes ∇f(θ) = Ψᵀ Φᵀ(Φ Ψ θ − y) into dst for the given lead
// matrix. It clobbers s.x, s.ax and s.z; dst must not alias them.
func (d *Decoder) gradInto(phi Matrix, theta, y, dst []float64, s *solverScratch) {
	d.synthInto(theta, s.x, s)
	phi.Apply(s.x, s.ax)
	for i := range s.ax {
		s.ax[i] -= y[i]
	}
	phi.ApplyT(s.ax, s.z)
	d.analyzeInto(s.z, dst, s)
}

// softThreshold applies the ℓ1 proximal operator elementwise.
func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// objectiveSingle evaluates F(θ) = ½‖ΦΨθ − y‖² + λ‖W·rw·θ‖₁ for the
// current reweighting. It clobbers s.x and s.ax (both free between
// iterations); called only when the relative-change test has already
// passed, so its cost — about half a gradient — is paid a handful of
// times per solve.
func (d *Decoder) objectiveSingle(phi Matrix, theta, y []float64, lambda float64, rw []float64, s *solverScratch) float64 {
	d.synthInto(theta, s.x, s)
	phi.Apply(s.x, s.ax)
	data := 0.0
	for i, v := range s.ax {
		r := v - y[i]
		data += r * r
	}
	pen := 0.0
	for i, v := range theta {
		if v != 0 {
			pen += d.weights[i] * rw[i] * math.Abs(v)
		}
	}
	return 0.5*data + lambda*pen
}

// divergedSingle reports whether the final iterate explains the data
// worse than the zero vector (‖ΦΨθ − y‖² > ‖y‖², or non-finite) — the
// warm-start fallback trigger.
func (d *Decoder) divergedSingle(phi Matrix, theta, y []float64, s *solverScratch) bool {
	d.synthInto(theta, s.x, s)
	phi.Apply(s.x, s.ax)
	num, den := 0.0, 0.0
	for i, v := range s.ax {
		r := v - y[i]
		num += r * r
	}
	for _, v := range y {
		den += v * v
	}
	return !(num <= den)
}

// solveSingle runs the (re-weighted) single-lead FISTA solve for one
// measurement vector, leaving the final coefficients in s.theta. warm,
// when non-nil, seeds the first pass (and each reweighting pass then
// refines the running estimate instead of restarting from zero); st,
// when non-nil, accumulates convergence counters.
//
// With cfg.Tol == 0 and warm == nil this is bit-identical to the
// fixed-budget solver of the previous revision: the adaptive branches
// (restart, early exit) are armed only by Tol > 0.
func (d *Decoder) solveSingle(phi Matrix, y []float64, s *solverScratch, warm []float64, st *SolveStats) {
	phi.ApplyT(y, s.z)
	d.analyzeInto(s.z, s.aty, s)
	maxAbs := 0.0
	for _, v := range s.aty {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	lambda := d.cfg.LambdaRel * maxAbs
	step := d.step
	adaptive := d.cfg.Tol > 0
	tol := d.cfg.Tol
	theta, prev, mom, rw := s.theta, s.prev, s.mom, s.rw
	for i := range rw {
		rw[i] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		switch {
		case warm != nil && pass == 0:
			copy(theta, warm)
			copy(mom, theta)
		case warm != nil:
			// Warm reweighting passes continue from the running estimate.
			copy(mom, theta)
		default:
			for i := range theta {
				theta[i] = 0
				prev[i] = 0
				mom[i] = 0
			}
		}
		tk := 1.0
		lastObj := 0.0
		objValid := false
		for it := 0; it < d.cfg.Iters; it++ {
			d.gradInto(phi, mom, y, s.grad, s)
			copy(prev, theta)
			var diffSq, normSq float64
			if adaptive {
				for i := range theta {
					v := softThreshold(mom[i]-step*s.grad[i], step*lambda*d.weights[i]*rw[i])
					dd := v - prev[i]
					diffSq += dd * dd
					normSq += v * v
					theta[i] = v
				}
			} else {
				for i := range theta {
					theta[i] = softThreshold(mom[i]-step*s.grad[i], step*lambda*d.weights[i]*rw[i])
				}
			}
			if st != nil {
				st.Iters++
			}
			restart := false
			if adaptive {
				// O'Donoghue–Candès gradient-scheme restart: the composite
				// gradient mapping (mom − θ_new) points against the actual
				// step (θ_new − θ_old) when the momentum has overshot —
				// drop it and re-accelerate from rest.
				dot := 0.0
				for i := range theta {
					dot += (mom[i] - theta[i]) * (theta[i] - prev[i])
				}
				if dot > 0 {
					restart = true
					if st != nil {
						st.Restarts++
					}
				}
			}
			if adaptive && it+1 >= d.cfg.MinIters && diffSq <= tol*tol*(normSq+tinyNormSq) {
				// Relative change has flattened; confirm the objective has
				// stopped decreasing before stopping (a momentum stall can
				// flatten θ while F still has room to fall).
				obj := d.objectiveSingle(phi, theta, y, lambda, rw, s)
				if objValid && obj >= lastObj*(1-tol) {
					if st != nil {
						st.EarlyExit = true
					}
					break
				}
				lastObj, objValid = obj, true
			}
			if restart {
				tk = 1
				copy(mom, theta)
				continue
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for i := range mom {
				mom[i] = theta[i] + beta*(theta[i]-prev[i])
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Candès-Wakin-Boyd reweighting around the current estimate.
		peak := 0.0
		for _, v := range theta {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		eps := 0.05*peak + 1e-12
		for i := range rw {
			rw[i] = eps / (math.Abs(theta[i]) + eps)
		}
	}
}

// Reconstruct solves min_θ ½||ΦΨθ − y||² + λ||Wθ||₁ with FISTA and
// returns x̂ = Ψθ̂, using lead 0's sensing matrix. λ is set relative to
// ||ΨᵀΦᵀy||∞.
func (d *Decoder) Reconstruct(y []float64) ([]float64, error) {
	return d.reconstructWith(d.phis[0], y)
}

func (d *Decoder) reconstructWith(phi Matrix, y []float64) ([]float64, error) {
	x, _, err := d.reconstructWarmWith(phi, y, nil, 0)
	return x, err
}

// reconstructWarmWith is the shared single-lead entry point: it solves
// for one lead, optionally seeded from (and saved back to) slot `lead`
// of ws, and reports convergence stats.
func (d *Decoder) reconstructWarmWith(phi Matrix, y []float64, ws *WarmState, lead int) ([]float64, SolveStats, error) {
	var st SolveStats
	if len(y) != d.m {
		return nil, st, ErrSolver
	}
	s := d.pool.Get().(*solverScratch)
	defer d.pool.Put(s)
	warm := ws.seed(lead, d.n)
	st.Warm = warm != nil
	d.solveSingle(phi, y, s, warm, &st)
	if warm != nil && d.divergedSingle(phi, s.theta, y, s) {
		// The carried coefficients poisoned the solve (corrupted window,
		// morphology jump): redo from a cold start. The extra iterations
		// stay in st — they were really spent.
		st.ColdFallback = true
		st.Warm = false
		d.solveSingle(phi, y, s, nil, &st)
	}
	ws.store(lead, s.theta)
	out := make([]float64, d.n)
	d.synthInto(s.theta, out, s)
	return out, st, nil
}

// ReconstructWarm is Reconstruct seeded from (and feeding) a WarmState:
// consecutive ECG windows are highly correlated, so the previous
// window's coefficients start the solver near the solution and the
// Tol-driven early exit converts that proximity into skipped
// iterations. Falls back to a cold start when the warm solve diverges.
// ws may be nil (plain cold solve with stats).
func (d *Decoder) ReconstructWarm(y []float64, ws *WarmState) ([]float64, SolveStats, error) {
	if ws != nil {
		ws.prepare(1, d.n)
	}
	x, st, err := d.reconstructWarmWith(d.phis[0], y, ws, 0)
	if err != nil {
		return nil, st, err
	}
	ws.commit()
	return x, st, nil
}

// ReconstructLeads reconstructs each lead independently — the
// "Single-Lead CS" strategy of Figure 5 applied per lead. Lead l uses
// its own sensing matrix when the decoder was built with per-lead
// matrices.
func (d *Decoder) ReconstructLeads(ys [][]float64) ([][]float64, error) {
	out := make([][]float64, len(ys))
	for i, y := range ys {
		x, err := d.reconstructWith(d.matrixFor(i), y)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// ReconstructLeadsWarm is ReconstructLeads carrying one warm slot per
// lead. Stats aggregate across leads. ws may be nil.
func (d *Decoder) ReconstructLeadsWarm(ys [][]float64, ws *WarmState) ([][]float64, SolveStats, error) {
	var st SolveStats
	if ws != nil {
		ws.prepare(len(ys), d.n)
	}
	out := make([][]float64, len(ys))
	for i, y := range ys {
		x, lst, err := d.reconstructWarmWith(d.matrixFor(i), y, ws, i)
		if err != nil {
			return nil, st, err
		}
		st.add(lst)
		out[i] = x
	}
	ws.commit()
	return out, st, nil
}

// ReconstructJoint solves the multi-lead problem of ref [6]: the leads
// share sparsity structure, so the solver minimises
//
//	½ Σ_l ||Φ_l Ψθ_l − y_l||² + λ Σ_j w_j ||θ_{·j}||₂
//
// where the second term is the mixed ℓ2,1 norm grouping coefficient j
// across all leads. The proximal step is group soft-thresholding, which
// keeps a coefficient alive in every lead when the group's joint energy
// is high — recovering weak-lead detail that independent ℓ1 loses.
// Because the leads project the same dipole with very different gains,
// each lead's measurements are normalised to unit RMS for the solve and
// rescaled afterwards.
func (d *Decoder) ReconstructJoint(ys [][]float64) ([][]float64, error) {
	out, _, err := d.reconstructJoint(ys, nil)
	return out, err
}

// ReconstructJointWarm is ReconstructJoint seeded from (and feeding) a
// WarmState. The carried coefficients live in the solver's unit-RMS
// domain, so slowly drifting lead gains do not stale the seed. ws may
// be nil (cold solve with stats).
func (d *Decoder) ReconstructJointWarm(ys [][]float64, ws *WarmState) ([][]float64, SolveStats, error) {
	return d.reconstructJoint(ys, ws)
}

func (d *Decoder) reconstructJoint(ys [][]float64, ws *WarmState) ([][]float64, SolveStats, error) {
	var st SolveStats
	L := len(ys)
	if L == 0 {
		return nil, st, ErrSolver
	}
	for _, y := range ys {
		if len(y) != d.m {
			return nil, st, ErrSolver
		}
	}
	s := d.pool.Get().(*solverScratch)
	defer d.pool.Put(s)
	s.ensureLeads(L, d.n, d.m)
	gains := s.gains[:L]
	ysn := s.ysn[:L]
	for l, y := range ys {
		rms := 0.0
		for _, v := range y {
			rms += v * v
		}
		rms = math.Sqrt(rms / float64(len(y)))
		if rms == 0 {
			rms = 1
		}
		gains[l] = rms
		inv := 1 / rms
		for i, v := range y {
			ysn[l][i] = v * inv
		}
	}
	// λ from the group norms of the back-projected data, accumulated
	// lead by lead so the per-lead back-projections need no storage.
	norms := s.norms
	for j := range norms {
		norms[j] = 0
	}
	for l := 0; l < L; l++ {
		d.matrixFor(l).ApplyT(ysn[l], s.z)
		d.analyzeInto(s.z, s.aty, s)
		for j, v := range s.aty {
			norms[j] += v * v
		}
	}
	groupMax := 0.0
	for _, g := range norms {
		if g > groupMax {
			groupMax = g
		}
	}
	lambda := d.cfg.LambdaRel * math.Sqrt(groupMax)
	if ws != nil {
		ws.prepare(L, d.n)
	}
	warm := ws.seedAll(L, d.n)
	st.Warm = warm != nil
	d.solveJoint(ysn, L, lambda, s, warm, &st)
	if warm != nil && d.divergedJoint(ysn, L, s) {
		st.ColdFallback = true
		st.Warm = false
		d.solveJoint(ysn, L, lambda, s, nil, &st)
	}
	theta := s.jtheta[:L]
	out := make([][]float64, L)
	for l := 0; l < L; l++ {
		ws.store(l, theta[l])
		out[l] = make([]float64, d.n)
		d.synthInto(theta[l], out[l], s)
		for i := range out[l] {
			out[l][i] *= gains[l]
		}
	}
	ws.commit()
	return out, st, nil
}

// objectiveJoint evaluates the group-sparse objective
// Σ_l ½‖Φ_l Ψθ_l − ysn_l‖² + λ Σ_j w_j rw_j ‖θ_{·j}‖₂ on the
// normalised measurements. Clobbers s.x and s.ax.
func (d *Decoder) objectiveJoint(ysn [][]float64, L int, lambda float64, s *solverScratch) float64 {
	theta := s.jtheta[:L]
	data := 0.0
	for l := 0; l < L; l++ {
		d.synthInto(theta[l], s.x, s)
		d.matrixFor(l).Apply(s.x, s.ax)
		for i, v := range s.ax {
			r := v - ysn[l][i]
			data += r * r
		}
	}
	pen := 0.0
	for j := 0; j < d.n; j++ {
		w := d.weights[j] * s.rw[j]
		if w == 0 {
			continue
		}
		g := 0.0
		for l := 0; l < L; l++ {
			g += theta[l][j] * theta[l][j]
		}
		if g != 0 {
			pen += w * math.Sqrt(g)
		}
	}
	return 0.5*data + lambda*pen
}

// divergedJoint is divergedSingle for the joint iterate: the summed
// data term must not exceed the energy of the (unit-RMS) measurements.
func (d *Decoder) divergedJoint(ysn [][]float64, L int, s *solverScratch) bool {
	theta := s.jtheta[:L]
	num, den := 0.0, 0.0
	for l := 0; l < L; l++ {
		d.synthInto(theta[l], s.x, s)
		d.matrixFor(l).Apply(s.x, s.ax)
		for i, v := range s.ax {
			r := v - ysn[l][i]
			num += r * r
		}
		for _, v := range ysn[l] {
			den += v * v
		}
	}
	return !(num <= den)
}

// solveJoint runs the (re-weighted) group-sparse FISTA solve over the
// normalised measurements, leaving the final coefficients in
// s.jtheta[:L]. warm, when non-nil, holds one unit-RMS-domain seed per
// lead. Bit-identical to the previous fixed-budget implementation when
// cfg.Tol == 0 and warm == nil.
func (d *Decoder) solveJoint(ysn [][]float64, L int, lambda float64, s *solverScratch, warm [][]float64, st *SolveStats) {
	step := d.step
	adaptive := d.cfg.Tol > 0
	tol := d.cfg.Tol
	theta := s.jtheta[:L]
	prev := s.jprev[:L]
	mom := s.jmom[:L]
	grads := s.jgrad[:L]
	rw := s.rw
	norms := s.norms
	for j := range rw {
		rw[j] = 1
	}
	for pass := 0; pass <= d.cfg.Reweights; pass++ {
		switch {
		case warm != nil && pass == 0:
			for l := 0; l < L; l++ {
				copy(theta[l], warm[l])
				copy(mom[l], theta[l])
			}
		case warm != nil:
			for l := 0; l < L; l++ {
				copy(mom[l], theta[l])
			}
		default:
			for l := 0; l < L; l++ {
				for i := range theta[l] {
					theta[l][i] = 0
					prev[l][i] = 0
					mom[l][i] = 0
				}
			}
		}
		tk := 1.0
		lastObj := 0.0
		objValid := false
		for it := 0; it < d.cfg.Iters; it++ {
			for l := 0; l < L; l++ {
				d.gradInto(d.matrixFor(l), mom[l], ysn[l], grads[l], s)
			}
			for l := 0; l < L; l++ {
				copy(prev[l], theta[l])
			}
			// Group soft-threshold across leads at each coefficient index.
			for j := 0; j < d.n; j++ {
				norm := 0.0
				for l := 0; l < L; l++ {
					v := mom[l][j] - step*grads[l][j]
					theta[l][j] = v // stash pre-threshold value
					norm += v * v
				}
				th := step * lambda * d.weights[j] * rw[j]
				if th == 0 {
					continue
				}
				norm = math.Sqrt(norm)
				if norm <= th {
					for l := 0; l < L; l++ {
						theta[l][j] = 0
					}
					continue
				}
				shrink := 1 - th/norm
				for l := 0; l < L; l++ {
					theta[l][j] *= shrink
				}
			}
			if st != nil {
				st.Iters++
			}
			restart := false
			var diffSq, normSq float64
			if adaptive {
				dot := 0.0
				for l := 0; l < L; l++ {
					tl, pl, ml := theta[l], prev[l], mom[l]
					for i := range tl {
						dd := tl[i] - pl[i]
						diffSq += dd * dd
						normSq += tl[i] * tl[i]
						dot += (ml[i] - tl[i]) * dd
					}
				}
				if dot > 0 {
					restart = true
					if st != nil {
						st.Restarts++
					}
				}
			}
			if adaptive && it+1 >= d.cfg.MinIters && diffSq <= tol*tol*(normSq+tinyNormSq) {
				obj := d.objectiveJoint(ysn, L, lambda, s)
				if objValid && obj >= lastObj*(1-tol) {
					if st != nil {
						st.EarlyExit = true
					}
					break
				}
				lastObj, objValid = obj, true
			}
			if restart {
				tk = 1
				for l := 0; l < L; l++ {
					copy(mom[l], theta[l])
				}
				continue
			}
			tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
			beta := (tk - 1) / tNext
			for l := 0; l < L; l++ {
				for i := range mom[l] {
					mom[l][i] = theta[l][i] + beta*(theta[l][i]-prev[l][i])
				}
			}
			tk = tNext
		}
		if pass == d.cfg.Reweights {
			break
		}
		// Group-level reweighting around the current estimate.
		peak := 0.0
		for j := 0; j < d.n; j++ {
			g := 0.0
			for l := 0; l < L; l++ {
				g += theta[l][j] * theta[l][j]
			}
			norms[j] = math.Sqrt(g)
			if norms[j] > peak {
				peak = norms[j]
			}
		}
		eps := 0.05*peak + 1e-12
		for j := range rw {
			rw[j] = eps / (norms[j] + eps)
		}
	}
}

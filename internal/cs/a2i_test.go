package cs

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

func TestNewA2IValidation(t *testing.T) {
	if _, err := NewA2I(A2IConfig{Window: 0, Measurements: 10}); err != ErrA2I {
		t.Error("zero window should fail")
	}
	if _, err := NewA2I(A2IConfig{Window: 64, Measurements: 100}); err != ErrA2I {
		t.Error("m > n should fail")
	}
	if _, err := NewA2I(A2IConfig{Window: 64, Measurements: 16, LeakPerSample: 1}); err != ErrA2I {
		t.Error("full leak should fail")
	}
	if _, err := NewA2I(A2IConfig{Window: 64, Measurements: 16, GainSigma: -1}); err != ErrA2I {
		t.Error("negative gain sigma should fail")
	}
}

func TestA2IIdealMatchesMatrix(t *testing.T) {
	a, err := NewA2I(A2IConfig{Window: 128, Measurements: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 128)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y, err := a.Convert(x)
	if err != nil {
		t.Fatal(err)
	}
	yMat := make([]float64, 32)
	a.Matrix().Apply(x, yMat)
	for i := range y {
		if math.Abs(y[i]-yMat[i]) > 1e-9 {
			t.Fatalf("ideal A2I measurement %d = %v, matrix %v", i, y[i], yMat[i])
		}
	}
	if a.ConversionsPerWindow() != 32 {
		t.Error("conversion count wrong")
	}
	if _, err := a.Convert(make([]float64, 100)); err != ErrA2I {
		t.Error("bad window length should fail")
	}
}

func TestA2IReconstruction(t *testing.T) {
	// End-to-end: analog conversion at CR 50, digital reconstruction
	// through the ideal chip matrix.
	rec := ecg.Generate(ecg.Config{Seed: 31, Duration: 5})
	x := rec.Clean[0][:512]
	m := MeasurementsForCR(512, 50)
	a, err := NewA2I(A2IConfig{Window: 512, Measurements: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	y, err := a.Convert(x)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(a.Matrix(), SolverConfig{Iters: 150, Reweights: 1})
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := dec.Reconstruct(y)
	if err != nil {
		t.Fatal(err)
	}
	if snr := dsp.SNRdB(x, xhat); snr < 18 {
		t.Errorf("ideal A2I reconstruction %.1f dB at CR 50", snr)
	}
}

func TestA2IImperfectionsDegradeQuality(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 32, Duration: 5})
	x := rec.Clean[0][:512]
	m := MeasurementsForCR(512, 50)
	run := func(cfg A2IConfig) float64 {
		cfg.Window = 512
		cfg.Measurements = m
		cfg.Seed = 5
		a, err := NewA2I(cfg)
		if err != nil {
			t.Fatal(err)
		}
		y, err := a.Convert(x)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(a.Matrix(), SolverConfig{Iters: 120})
		if err != nil {
			t.Fatal(err)
		}
		xhat, err := dec.Reconstruct(y)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.SNRdB(x, xhat)
	}
	ideal := run(A2IConfig{})
	leaky := run(A2IConfig{LeakPerSample: 0.01})
	mismatched := run(A2IConfig{GainSigma: 0.10})
	if leaky >= ideal {
		t.Errorf("integrator leak should degrade quality: %v vs %v", leaky, ideal)
	}
	if mismatched >= ideal {
		t.Errorf("gain mismatch should degrade quality: %v vs %v", mismatched, ideal)
	}
	// The "A2I remains a challenge" observation: realistic imperfections
	// cost several dB.
	if ideal-leaky < 1 {
		t.Errorf("1%% leak cost only %.2f dB; model too forgiving", ideal-leaky)
	}
}

func TestQuantizerBasics(t *testing.T) {
	if _, err := NewQuantizer(1, 1); err == nil {
		t.Error("1-bit quantiser should fail")
	}
	if _, err := NewQuantizer(8, 0); err == nil {
		t.Error("zero scale should fail")
	}
	q, err := NewQuantizer(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bits() != 8 {
		t.Error("Bits accessor wrong")
	}
	// Round trip within half an LSB.
	lsb := 2.0 / 128
	for _, v := range []float64{0, 0.5, -0.5, 1.9, -1.9} {
		got := q.Dequantize(q.Quantize(v))
		if math.Abs(got-v) > lsb {
			t.Errorf("quantise round trip of %v = %v", v, got)
		}
	}
	// Clipping at full scale.
	if q.Dequantize(q.Quantize(5)) > 2 {
		t.Error("positive overload should clip")
	}
	if q.Dequantize(q.Quantize(-5)) < -2.1 {
		t.Error("negative overload should clip")
	}
}

func TestQuantizeSlicePayload(t *testing.T) {
	q, _ := NewQuantizer(12, 1)
	y := make([]float64, 100)
	_, bytes := q.QuantizeSlice(y)
	if bytes != (100*12+7)/8 {
		t.Errorf("payload = %d bytes", bytes)
	}
}

func TestAutoScale(t *testing.T) {
	if AutoScale(nil, 1.2) != 1 {
		t.Error("empty input should give scale 1")
	}
	if AutoScale([]float64{0, 0}, 1.2) != 1 {
		t.Error("zero input should give scale 1")
	}
	if got := AutoScale([]float64{-3, 2}, 1.5); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("AutoScale = %v, want 4.5", got)
	}
	if got := AutoScale([]float64{1}, 0.5); got != 1 {
		t.Errorf("headroom below 1 should clamp: %v", got)
	}
}

func TestQuantizedReconstructionBitsSweep(t *testing.T) {
	// More bits per measurement, better reconstruction — saturating at
	// the unquantised quality.
	rec := ecg.Generate(ecg.Config{Seed: 33, Duration: 5})
	x := rec.Clean[0][:512]
	m := MeasurementsForCR(512, 50)
	rng := rand.New(rand.NewSource(6))
	phi, _ := NewSparseBinary(m, 512, 4, rng)
	enc := NewEncoder(phi)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 120})
	if err != nil {
		t.Fatal(err)
	}
	y := enc.Encode(x)
	scale := AutoScale(y, 1.1)
	var prev float64 = math.Inf(-1)
	for _, bits := range []int{4, 8, 12} {
		q, err := NewQuantizer(bits, scale)
		if err != nil {
			t.Fatal(err)
		}
		yq, _ := q.QuantizeSlice(y)
		xhat, err := dec.Reconstruct(yq)
		if err != nil {
			t.Fatal(err)
		}
		snr := dsp.SNRdB(x, xhat)
		if snr < prev-1 {
			t.Errorf("quality fell from %.1f to %.1f dB when bits rose to %d", prev, snr, bits)
		}
		prev = snr
	}
	if prev < 15 {
		t.Errorf("12-bit quantised reconstruction only %.1f dB", prev)
	}
}

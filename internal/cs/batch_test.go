package cs

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"wbsn/internal/ecg"
)

// batchFixture builds a shared matrix, encoder and a multi-lead record
// cut into per-window measurement sets (leads × m) for batch tests.
func batchFixture(t *testing.T, n, windows int, seed int64) (*SparseBinary, [][][]float64) {
	t.Helper()
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: float64(windows*n)/256 + 1})
	meas := make([][][]float64, windows)
	for w := 0; w < windows; w++ {
		leads := make([][]float64, len(rec.Clean))
		for li := range rec.Clean {
			leads[li] = enc.Encode(rec.Clean[li][w*n : (w+1)*n])
		}
		meas[w] = leads
	}
	return phi, meas
}

// expectIdentical compares a batch item against the sequential solver's
// output and stats bit for bit.
func expectIdentical(t *testing.T, label string, it *BatchItem, ref [][]float64, refSt SolveStats, refErr error) {
	t.Helper()
	if (it.Err == nil) != (refErr == nil) {
		t.Fatalf("%s: err = %v, sequential %v", label, it.Err, refErr)
	}
	if it.Err != nil {
		return
	}
	if it.Stats != refSt {
		t.Fatalf("%s: stats = %+v, sequential %+v", label, it.Stats, refSt)
	}
	if len(it.X) != len(ref) {
		t.Fatalf("%s: %d leads, sequential %d", label, len(it.X), len(ref))
	}
	for l := range ref {
		for i := range ref[l] {
			if it.X[l][i] != ref[l][i] {
				t.Fatalf("%s: lead %d sample %d = %v, sequential %v", label, l, i, it.X[l][i], ref[l][i])
			}
		}
	}
}

// TestBatchBitIdentity pins the central contract: for every batch size,
// solver family (independent ℓ1 / joint ℓ2,1), budget mode (fixed /
// Tol-adaptive) and seeding (cold / warm across two windows), the
// batched solver's outputs and stats equal K sequential solves bit for
// bit. K=1 covers the engine's low-load path; the larger K prove the
// SoA kernels preserve per-window FP order.
func TestBatchBitIdentity(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 2, 21)
	cfgs := []struct {
		name string
		cfg  SolverConfig
	}{
		{"fixed", SolverConfig{Iters: 30, Reweights: 1}},
		{"earlyexit", SolverConfig{Iters: 60, Reweights: 1, Tol: 1e-3}},
	}
	for _, tc := range cfgs {
		dec, err := NewDecoder(phi, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, joint := range []bool{false, true} {
			mode := "leads"
			if joint {
				mode = "joint"
			}
			for _, K := range []int{1, 2, 4, 8} {
				// K independent streams, two windows each: window 0 solves
				// cold, window 1 warm — batched along the stream axis.
				seqOut := make([][][][]float64, K)
				seqSt := make([][]SolveStats, K)
				for s := 0; s < K; s++ {
					ws := NewWarmState()
					for w := 0; w < 2; w++ {
						var x [][]float64
						var st SolveStats
						var err error
						if joint {
							x, st, err = dec.ReconstructJointWarm(meas[w], ws)
						} else {
							x, st, err = dec.ReconstructLeadsWarm(meas[w], ws)
						}
						if err != nil {
							t.Fatal(err)
						}
						seqOut[s] = append(seqOut[s], x)
						seqSt[s] = append(seqSt[s], st)
					}
				}
				states := make([]*WarmState, K)
				for s := range states {
					states[s] = NewWarmState()
				}
				for w := 0; w < 2; w++ {
					items := make([]*BatchItem, K)
					for s := 0; s < K; s++ {
						items[s] = &BatchItem{Y: meas[w], Warm: states[s]}
					}
					if joint {
						dec.ReconstructJointBatch(items)
					} else {
						dec.ReconstructLeadsBatch(items)
					}
					for s := 0; s < K; s++ {
						label := tc.name + "/" + mode
						expectIdentical(t, label, items[s], seqOut[s][w], seqSt[s][w], nil)
					}
				}
			}
		}
	}
}

// TestBatchPRDEquivalence states the acceptance bar in signal terms:
// reconstructing K distinct windows in one SoA pass leaves each
// window's PRD within 0.1 percentage points of its sequential solve.
// Bit identity makes the delta exactly zero today; measuring it end to
// end from real ECG windows catches any future relaxation of the
// contract in the units the paper reports.
func TestBatchPRDEquivalence(t *testing.T) {
	const n, windows = 512, 8
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(phi)
	rec := ecg.Generate(ecg.Config{Seed: 33, Duration: float64(windows*n)/256 + 1})
	dec, err := NewDecoder(phi, SolverConfig{Iters: 60, Reweights: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	prd := func(ref, x []float64) float64 {
		var num, den float64
		for i := range ref {
			d := x[i] - ref[i]
			num += d * d
			den += ref[i] * ref[i]
		}
		return 100 * math.Sqrt(num/den)
	}
	for _, K := range []int{2, 4, 8} {
		items := make([]*BatchItem, K)
		ys := make([][][]float64, K)
		for k := 0; k < K; k++ {
			w := k % windows
			leads := make([][]float64, len(rec.Clean))
			for li := range rec.Clean {
				leads[li] = enc.Encode(rec.Clean[li][w*n : (w+1)*n])
			}
			ys[k] = leads
			items[k] = &BatchItem{Y: leads}
		}
		dec.ReconstructJointBatch(items)
		for k, it := range items {
			if it.Err != nil {
				t.Fatal(it.Err)
			}
			w := k % windows
			seqX, _, err := dec.ReconstructJointWarm(ys[k], nil)
			if err != nil {
				t.Fatal(err)
			}
			for li := range it.X {
				clean := rec.Clean[li][w*n : (w+1)*n]
				want := prd(clean, seqX[li])
				got := prd(clean, it.X[li])
				if math.Abs(got-want) > 0.1 {
					t.Errorf("K=%d window %d lead %d: batched PRD %.4f%%, sequential %.4f%%",
						K, w, li, got, want)
				}
			}
		}
	}
}

// TestBatchEarlyExitMasking batches windows that converge at different
// iteration counts and checks each window's stats and signal still
// match its solo solve — a converged window must drop out of the batch
// without perturbing (or being perturbed by) the stragglers.
func TestBatchEarlyExitMasking(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 6, 33)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 80, Reweights: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]*BatchItem, len(meas))
	iters := map[int]bool{}
	refs := make([][][]float64, len(meas))
	sts := make([]SolveStats, len(meas))
	for w := range meas {
		items[w] = &BatchItem{Y: meas[w]}
		x, st, err := dec.ReconstructJointWarm(meas[w], nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[w], sts[w] = x, st
		iters[st.Iters] = true
	}
	if len(iters) < 2 {
		t.Fatalf("fixture too uniform: all %d windows converge in the same iteration count", len(meas))
	}
	dec.ReconstructJointBatch(items)
	for w := range items {
		expectIdentical(t, "mask", items[w], refs[w], sts[w], nil)
	}
}

// TestBatchWarmCommitAcrossRecords drives two records through batched
// warm streams with a Reset at the record boundary, checking the warm
// state commits per window and the boundary reset forces the first
// window of record two cold — exactly like the sequential stream.
func TestBatchWarmCommitAcrossRecords(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 4, 55)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 60, Reweights: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: windows 0,1 are record A; 2,3 record B.
	ws := NewWarmState()
	var refs [][][]float64
	var sts []SolveStats
	for w := 0; w < 4; w++ {
		if w == 2 {
			ws.Reset()
		}
		x, st, err := dec.ReconstructJointWarm(meas[w], ws)
		if err != nil {
			t.Fatal(err)
		}
		refs, sts = append(refs, x), append(sts, st)
	}
	// Batched: the stream's windows stay sequential (one per batch, the
	// warm sequencing contract) but share each batch with another
	// independent stream to keep the batch path multi-plane.
	bws := NewWarmState()
	other := NewWarmState()
	for w := 0; w < 4; w++ {
		if w == 2 {
			bws.Reset()
		}
		items := []*BatchItem{
			{Y: meas[w], Warm: bws},
			{Y: meas[(w+1)%4], Warm: other},
		}
		dec.ReconstructJointBatch(items)
		expectIdentical(t, "stream", items[0], refs[w], sts[w], nil)
		if w == 0 || w == 2 {
			if items[0].Stats.Warm {
				t.Fatalf("window %d: expected cold solve after boundary", w)
			}
		} else if !items[0].Stats.Warm {
			t.Fatalf("window %d: warm seed not used", w)
		}
	}
}

// TestBatchColdFallback poisons one item's warm state inside a batch
// and checks that item re-solves cold (bit-identical to a cold solve)
// while its batchmates are untouched.
func TestBatchColdFallback(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 2, 61)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 3, MinIters: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	poison := func(leads int) *WarmState {
		ws := NewWarmState()
		ws.prepare(leads, n)
		bad := make([]float64, n)
		for i := range bad {
			bad[i] = 1e12
		}
		for l := 0; l < leads; l++ {
			ws.store(l, bad)
		}
		ws.commit()
		return ws
	}
	for _, joint := range []bool{false, true} {
		solveSeq := func(y [][]float64, ws *WarmState) ([][]float64, SolveStats) {
			var x [][]float64
			var st SolveStats
			var err error
			if joint {
				x, st, err = dec.ReconstructJointWarm(y, ws)
			} else {
				x, st, err = dec.ReconstructLeadsWarm(y, ws)
			}
			if err != nil {
				t.Fatal(err)
			}
			return x, st
		}
		coldX, _ := solveSeq(meas[0], nil)
		refPoisonX, refPoisonSt := solveSeq(meas[0], poison(len(meas[0])))
		cleanX, cleanSt := solveSeq(meas[1], nil)
		items := []*BatchItem{
			{Y: meas[0], Warm: poison(len(meas[0]))},
			{Y: meas[1]},
		}
		if joint {
			dec.ReconstructJointBatch(items)
		} else {
			dec.ReconstructLeadsBatch(items)
		}
		if !items[0].Stats.ColdFallback {
			t.Fatal("poisoned warm seed did not trigger the batched cold fallback")
		}
		if items[0].Stats.Warm {
			t.Error("fallback item still flagged warm")
		}
		expectIdentical(t, "fallback", items[0], refPoisonX, refPoisonSt, nil)
		for l := range coldX {
			for i := range coldX[l] {
				if items[0].X[l][i] != coldX[l][i] {
					t.Fatalf("fallback output differs from cold at lead %d sample %d", l, i)
				}
			}
		}
		expectIdentical(t, "batchmate", items[1], cleanX, cleanSt, nil)
	}
}

// TestBatchRejectsMalformedItems checks a geometry-mismatched item gets
// ErrSolver while the rest of the batch still solves.
func TestBatchRejectsMalformedItems(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 1, 71)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	ref, refSt, err := dec.ReconstructJointWarm(meas[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	items := []*BatchItem{
		{Y: [][]float64{make([]float64, 7)}},
		{Y: meas[0]},
		{},
	}
	dec.ReconstructJointBatch(items)
	if items[0].Err != ErrSolver || items[2].Err != ErrSolver {
		t.Fatalf("malformed items: err = %v, %v, want ErrSolver", items[0].Err, items[2].Err)
	}
	expectIdentical(t, "survivor", items[1], ref, refSt, nil)
	dec.ReconstructLeadsBatch(items[:2])
	if items[0].Err != ErrSolver {
		t.Fatalf("leads batch malformed item: err = %v", items[0].Err)
	}
	lref, lrefSt, err := dec.ReconstructLeadsWarm(meas[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, "leads survivor", items[1], lref, lrefSt, nil)
}

// TestBatchKernelsMatchScalar pins the bit-identity of the batched
// sensing-matrix kernels against Apply/ApplyT, including zero residual
// entries (whose row skip the batch kernel intentionally drops).
func TestBatchKernelsMatchScalar(t *testing.T) {
	const n = 256
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	for _, P := range []int{1, 3, 4, 5, 9} {
		x := make([]float64, P*n)
		r := make([]float64, P*m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range r {
			// A quarter of the residual entries exactly zero (and some
			// negative zero) to exercise the dropped ri==0 skip.
			switch rng.Intn(8) {
			case 0:
				r[i] = 0
			case 1:
				r[i] = math_Copysign0()
			default:
				r[i] = rng.NormFloat64()
			}
		}
		planes := make([]int, P)
		for p := range planes {
			planes[p] = p
		}
		y := make([]float64, P*m)
		z := make([]float64, P*n)
		phi.applyBatch(x, n, y, m, planes)
		phi.applyTBatch(r, m, z, n, planes)
		for p := 0; p < P; p++ {
			yRef := make([]float64, m)
			zRef := make([]float64, n)
			phi.Apply(x[p*n:(p+1)*n], yRef)
			phi.ApplyT(r[p*m:(p+1)*m], zRef)
			for i := range yRef {
				if y[p*m+i] != yRef[i] {
					t.Fatalf("P=%d plane %d: applyBatch[%d] = %v, scalar %v", P, p, i, y[p*m+i], yRef[i])
				}
			}
			for i := range zRef {
				if z[p*n+i] != zRef[i] {
					t.Fatalf("P=%d plane %d: applyTBatch[%d] = %v, scalar %v", P, p, i, z[p*n+i], zRef[i])
				}
			}
		}
	}
}

// math_Copysign0 returns negative zero without tripping vet's literal
// -0.0 (which is +0.0 in Go constant arithmetic).
func math_Copysign0() float64 {
	z := 0.0
	return -z
}

// TestBatchRaceHammer hammers one shared decoder with concurrent
// batched reconstructions (the engine-worker shape) and checks outputs
// stay bit-identical to the serial reference.
func TestBatchRaceHammer(t *testing.T) {
	const n = 512
	phi, meas := batchFixture(t, n, 4, 91)
	dec, err := NewDecoder(phi, SolverConfig{Iters: 12, Reweights: 1, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([][][]float64, len(meas))
	for w := range meas {
		x, _, err := dec.ReconstructJointWarm(meas[w], nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[w] = x
	}
	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := dec
			if g%2 == 1 {
				d = dec.Clone()
			}
			for round := 0; round < rounds; round++ {
				items := make([]*BatchItem, len(meas))
				for w := range meas {
					items[w] = &BatchItem{Y: meas[w]}
				}
				d.ReconstructJointBatch(items)
				for w, it := range items {
					if it.Err != nil {
						errs <- it.Err.Error()
						return
					}
					for l := range refs[w] {
						for i := range refs[w][l] {
							if it.X[l][i] != refs[w][l][i] {
								errs <- "bit mismatch under concurrency"
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

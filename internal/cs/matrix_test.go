package cs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseBinaryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSparseBinary(0, 10, 1, rng); err != ErrDims {
		t.Error("m=0 should fail")
	}
	if _, err := NewSparseBinary(20, 10, 1, rng); err != ErrDims {
		t.Error("m>n should fail")
	}
	if _, err := NewSparseBinary(10, 20, 0, rng); err != ErrDensity {
		t.Error("d=0 should fail")
	}
	if _, err := NewSparseBinary(10, 20, 11, rng); err != ErrDensity {
		t.Error("d>m should fail")
	}
}

func TestSparseBinaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, d := 64, 128, 4
	sb, err := NewSparseBinary(m, n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Rows() != m || sb.Cols() != n || sb.Density() != d {
		t.Error("dimensions not reported correctly")
	}
	for c := 0; c < n; c++ {
		rows := sb.col(c)
		if len(rows) != d {
			t.Fatalf("column %d has %d nonzeros, want %d", c, len(rows), d)
		}
		seen := map[int32]bool{}
		for _, r := range rows {
			if r < 0 || int(r) >= m {
				t.Fatalf("column %d row index %d out of range", c, r)
			}
			if seen[r] {
				t.Fatalf("column %d has duplicate row %d", c, r)
			}
			seen[r] = true
		}
	}
	if sb.AddsPerWindow() != d*n {
		t.Errorf("AddsPerWindow = %d, want %d", sb.AddsPerWindow(), d*n)
	}
}

func TestSparseBinaryColumnNorm(t *testing.T) {
	// Each column has d entries of 1/sqrt(d): unit column norm.
	rng := rand.New(rand.NewSource(3))
	sb, _ := NewSparseBinary(32, 64, 8, rng)
	x := make([]float64, 64)
	y := make([]float64, 32)
	for c := 0; c < 64; c++ {
		for i := range x {
			x[i] = 0
		}
		x[c] = 1
		sb.Apply(x, y)
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Fatalf("column %d norm² = %v, want 1", c, norm)
		}
	}
}

// Property: <Φx, r> == <x, Φᵀr> (adjoint consistency), for both matrix
// types.
func TestAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sb, _ := NewSparseBinary(40, 100, 6, rng)
	ga, _ := NewGaussian(40, 100, rng)
	mats := []Matrix{sb, ga}
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		x := make([]float64, 100)
		r := make([]float64, 40)
		for i := range x {
			x[i] = r1.NormFloat64()
		}
		for i := range r {
			r[i] = r1.NormFloat64()
		}
		for _, mat := range mats {
			y := make([]float64, 40)
			z := make([]float64, 100)
			mat.Apply(x, y)
			mat.ApplyT(r, z)
			var lhs, rhs float64
			for i := range y {
				lhs += y[i] * r[i]
			}
			for i := range x {
				rhs += x[i] * z[i]
			}
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGaussianValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewGaussian(0, 5, rng); err != ErrDims {
		t.Error("m=0 should fail")
	}
	if _, err := NewGaussian(10, 5, rng); err != ErrDims {
		t.Error("m>n should fail")
	}
	g, err := NewGaussian(20, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 20 || g.Cols() != 50 {
		t.Error("Gaussian dims wrong")
	}
}

func TestOperatorNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Sparse binary with unit columns: ||Φ||² is near n/m * d-ish; just
	// sanity-check it's finite, positive, and an upper bound validated by
	// random vectors.
	sb, _ := NewSparseBinary(64, 256, 4, rng)
	lip := OperatorNorm(sb, 40, rng)
	if lip <= 0 || math.IsNaN(lip) {
		t.Fatalf("OperatorNorm = %v", lip)
	}
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 256)
		var nx float64
		for i := range x {
			x[i] = rng.NormFloat64()
			nx += x[i] * x[i]
		}
		y := make([]float64, 64)
		sb.Apply(x, y)
		var ny float64
		for _, v := range y {
			ny += v * v
		}
		if ny > lip*nx*1.01 {
			t.Fatalf("||Φx||²=%v exceeds estimated bound %v·||x||²", ny, lip*nx)
		}
	}
}

func TestMeasurementsForCR(t *testing.T) {
	if m := MeasurementsForCR(512, 50); m != 256 {
		t.Errorf("CR 50 of 512 = %d, want 256", m)
	}
	if m := MeasurementsForCR(512, 0); m != 512 {
		t.Errorf("CR 0 = %d, want 512", m)
	}
	if m := MeasurementsForCR(512, 100); m != 1 {
		t.Errorf("CR 100 = %d, want 1 (clamped)", m)
	}
	if cr := CRForMeasurements(512, 256); cr != 50 {
		t.Errorf("CRForMeasurements = %v", cr)
	}
	// Round trip within rounding error.
	for _, cr := range []float64{10, 33.3, 65.9, 72.7, 90} {
		m := MeasurementsForCR(512, cr)
		back := CRForMeasurements(512, m)
		if math.Abs(back-cr) > 100.0/512 {
			t.Errorf("CR %v -> m=%d -> %v", cr, m, back)
		}
	}
}

// TestApplyCSRMatchesColumnMajor pins the kernel-layout contract: the
// row-major CSR traversal used by Apply/ApplyT must agree bit for bit
// with the column-major reference, because each output element
// accumulates its entries in the same ascending order either way
// (columns store their rows sorted; rows store their columns sorted).
// Gateway digests therefore do not depend on which layout decodes.
func TestApplyCSRMatchesColumnMajor(t *testing.T) {
	for _, dims := range []struct{ m, n, d int }{
		{175, 512, 4}, {64, 256, 2}, {40, 96, 7},
	} {
		rng := rand.New(rand.NewSource(int64(dims.m)))
		sb, err := NewSparseBinary(dims.m, dims.n, dims.d, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, dims.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		x[0], x[1] = 0, math.Copysign(0, -1) // exercise the zero-skip paths
		yCSR := make([]float64, dims.m)
		yCol := make([]float64, dims.m)
		sb.Apply(x, yCSR)
		sb.applyColMajor(x, yCol)
		for i := range yCSR {
			if yCSR[i] != yCol[i] {
				t.Fatalf("m=%d: Apply CSR y[%d]=%g, column-major %g", dims.m, i, yCSR[i], yCol[i])
			}
		}
		r := make([]float64, dims.m)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		r[0] = 0
		zCSR := make([]float64, dims.n)
		zCol := make([]float64, dims.n)
		sb.ApplyT(r, zCSR)
		sb.applyTColMajor(r, zCol)
		for c := range zCSR {
			if zCSR[c] != zCol[c] {
				t.Fatalf("m=%d: ApplyT CSR z[%d]=%g, column-major %g", dims.m, c, zCSR[c], zCol[c])
			}
		}
	}
}

// TestSparseBinaryCSRStructure checks the companion index is a
// permutation-consistent view of the column list: every (row, col)
// entry appears in both, rows partition the nonzeros, and per-row
// column lists are sorted.
func TestSparseBinaryCSRStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, n, d := 48, 128, 5
	sb, err := NewSparseBinary(m, n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(sb.rowPtr[m]), n*d; got != want {
		t.Fatalf("rowPtr[m] = %d, want %d nonzeros", got, want)
	}
	count := 0
	for i := 0; i < m; i++ {
		cols := sb.rowCols[sb.rowPtr[i]:sb.rowPtr[i+1]]
		for j, c := range cols {
			if j > 0 && cols[j-1] >= c {
				t.Fatalf("row %d columns not strictly ascending", i)
			}
			found := false
			for _, r := range sb.col(int(c)) {
				if int(r) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("CSR entry (%d,%d) missing from column list", i, c)
			}
			count++
		}
	}
	if count != n*d {
		t.Fatalf("CSR holds %d entries, want %d", count, n*d)
	}
}

func TestSparseBinaryDeterministic(t *testing.T) {
	a, _ := NewSparseBinary(32, 64, 4, rand.New(rand.NewSource(9)))
	b, _ := NewSparseBinary(32, 64, 4, rand.New(rand.NewSource(9)))
	for i := range a.idx {
		if a.idx[i] != b.idx[i] {
			t.Fatal("same seed gave different matrices")
		}
	}
}

package cs

import (
	"math"
	"testing"
)

// TestWarmSnapshotRoundTrip pins the tiered-state contract: a committed
// warm state compacts to float32, and restoring yields exactly the
// float32-rounded coefficients — so two round trips are idempotent and
// a checkpointed snapshot replays bit-identically to an in-memory one.
func TestWarmSnapshotRoundTrip(t *testing.T) {
	const L, n = 3, 16
	w := NewWarmState()
	w.prepare(L, n)
	for li := 0; li < L; li++ {
		theta := make([]float64, n)
		for i := range theta {
			theta[i] = math.Sin(float64(li*n+i)) * 1e-3 / 3.0 // not float32-exact
		}
		w.store(li, theta)
	}
	w.commit()

	buf := make([]float32, SnapshotLen(L, n))
	if !w.SnapshotInto(buf, L, n) {
		t.Fatal("committed state refused to snapshot")
	}

	r := NewWarmState()
	r.RestoreFrom(buf, L, n)
	if !r.Valid() {
		t.Fatal("restored state not valid")
	}
	for li := 0; li < L; li++ {
		seed := r.seed(li, n)
		if seed == nil {
			t.Fatalf("lead %d: restored state yields no seed", li)
		}
		orig := w.seed(li, n)
		for i := range seed {
			want := float64(float32(orig[i]))
			if seed[i] != want {
				t.Fatalf("lead %d coeff %d: %g, want float32-rounded %g", li, i, seed[i], want)
			}
		}
	}

	// Idempotence: snapshotting the restored state reproduces the same
	// float32 payload bit for bit.
	buf2 := make([]float32, SnapshotLen(L, n))
	if !r.SnapshotInto(buf2, L, n) {
		t.Fatal("restored state refused to snapshot")
	}
	for i := range buf {
		if math.Float32bits(buf[i]) != math.Float32bits(buf2[i]) {
			t.Fatalf("payload %d: %x != %x after round trip", i, buf[i], buf2[i])
		}
	}
}

// TestWarmSnapshotRefusals pins the failure modes: invalid, reset,
// mis-shaped and nil states must refuse to snapshot, and nil restore is
// a no-op.
func TestWarmSnapshotRefusals(t *testing.T) {
	buf := make([]float32, SnapshotLen(2, 8))
	w := NewWarmState()
	if w.SnapshotInto(buf, 2, 8) {
		t.Error("empty state snapshotted")
	}
	w.prepare(2, 8)
	w.store(0, make([]float64, 8))
	w.store(1, make([]float64, 8))
	w.commit()
	if !w.SnapshotInto(buf, 2, 8) {
		t.Error("committed state refused")
	}
	if w.SnapshotInto(make([]float32, SnapshotLen(3, 8)), 3, 8) {
		t.Error("lead-count mismatch snapshotted")
	}
	if w.SnapshotInto(make([]float32, SnapshotLen(2, 4)), 2, 4) {
		t.Error("length mismatch snapshotted")
	}
	w.Reset()
	if w.SnapshotInto(buf, 2, 8) {
		t.Error("reset state snapshotted")
	}
	var nilState *WarmState
	if nilState.SnapshotInto(buf, 2, 8) {
		t.Error("nil state snapshotted")
	}
	nilState.RestoreFrom(buf, 2, 8) // must not panic
}

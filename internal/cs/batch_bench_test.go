package cs

import (
	"fmt"
	"math/rand"
	"testing"

	"wbsn/internal/ecg"
)

// BenchmarkFISTABatch measures the structure-of-arrays payoff at the
// solver level: W joint windows solved one call at a time (batch=1)
// versus one batched call, at the gateway's operating point (512-sample
// windows, CR 65.9, 3-lead joint, Tol early exit). windows/s is the
// records/s numerator the engine benchmarks inherit.
func BenchmarkFISTABatch(b *testing.B) {
	const n = 512
	const W = 8
	m := MeasurementsForCR(n, 65.9)
	phi, err := NewSparseBinary(m, n, 4, rand.New(rand.NewSource(23)))
	if err != nil {
		b.Fatal(err)
	}
	enc := NewEncoder(phi)
	rec := ecg.Generate(ecg.Config{Seed: 23, Duration: float64(W*n)/256 + 1})
	meas := make([][][]float64, W)
	for w := 0; w < W; w++ {
		leads := make([][]float64, len(rec.Clean))
		for li := range rec.Clean {
			leads[li] = enc.Encode(rec.Clean[li][w*n : (w+1)*n])
		}
		meas[w] = leads
	}
	dec, err := NewDecoder(phi, SolverConfig{Iters: 150, Reweights: 1, Tol: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for at := 0; at < W; at += batch {
					end := at + batch
					if end > W {
						end = W
					}
					items := make([]*BatchItem, 0, batch)
					for w := at; w < end; w++ {
						items = append(items, &BatchItem{Y: meas[w]})
					}
					dec.ReconstructJointBatch(items)
					for _, it := range items {
						if it.Err != nil {
							b.Fatal(it.Err)
						}
					}
				}
			}
			windows := float64(b.N) * W
			b.ReportMetric(windows/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

//go:build !race

package cs

// raceEnabled reports whether the race detector is active.
const raceEnabled = false

package fleet

import (
	"encoding/binary"
	"hash"
	"math"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
)

// The digest helpers feed a patient's observable behaviour — node
// events, the gateway's reconstructed signal and the recovered
// fiducials — into an FNV-1a hash. Floats are hashed by their IEEE-754
// bit pattern, so equal digests certify bit-identical results, the
// property the fleet guarantees across shard counts.

func hashInt(h hash.Hash64, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	h.Write(b[:])
}

func hashFloat(h hash.Hash64, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func hashFloats(h hash.Hash64, xs []float64) {
	hashInt(h, len(xs))
	for _, v := range xs {
		hashFloat(h, v)
	}
}

func hashWave(h hash.Hash64, w delineation.Wave) {
	hashInt(h, w.On)
	hashInt(h, w.Peak)
	hashInt(h, w.Off)
}

func hashBeat(h hash.Hash64, b delineation.BeatFiducials) {
	hashInt(h, b.R)
	hashWave(h, b.QRS)
	hashWave(h, b.P)
	hashWave(h, b.T)
}

func hashEvent(h hash.Hash64, ev core.Event) {
	hashInt(h, int(ev.Kind))
	hashInt(h, ev.At)
	hashInt(h, ev.Bytes)
	hashInt(h, len(ev.Measurements))
	for _, lead := range ev.Measurements {
		hashFloats(h, lead)
	}
	hashBeat(h, ev.Beat.Fiducials)
	hashInt(h, ev.Beat.Label)
	hashFloat(h, ev.Beat.Membership)
	if ev.Kind == core.EventAF {
		hashInt(h, boolInt(ev.AF.AF))
		hashFloat(h, ev.AF.Score)
		hashInt(h, ev.AF.StartBeat)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

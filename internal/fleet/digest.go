package fleet

import (
	"encoding/binary"
	"hash"
	"math"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
)

// The digest helpers feed a patient's observable behaviour — node
// events, the gateway's reconstructed signal and the recovered
// fiducials — into an FNV-1a hash. Floats are hashed by their IEEE-754
// bit pattern, so equal digests certify bit-identical results, the
// property the fleet guarantees across shard counts.

// FNV-1a 64-bit parameters (identical to hash/fnv's New64a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a is a resumable FNV-1a 64-bit hash: the entire hash state is
// the running sum, so a patient's digest checkpoints as 8 bytes (the
// PatientState.Digest field) and resumes bit-identically across
// scheduling turns, checkpoint files and process restarts. It hashes
// byte-for-byte identically to hash/fnv's New64a, which the flat
// engine used historically — TestFNVMatchesStdlib pins the
// equivalence.
type fnv64a struct{ sum uint64 }

// newFNV64a resumes a digest from a stored state (use fnvOffset64 for
// a fresh hash).
func newFNV64a(state uint64) *fnv64a { return &fnv64a{sum: state} }

func (h *fnv64a) Write(p []byte) (int, error) {
	s := h.sum
	for _, b := range p {
		s ^= uint64(b)
		s *= fnvPrime64
	}
	h.sum = s
	return len(p), nil
}

func (h *fnv64a) Sum64() uint64  { return h.sum }
func (h *fnv64a) Reset()         { h.sum = fnvOffset64 }
func (h *fnv64a) Size() int      { return 8 }
func (h *fnv64a) BlockSize() int { return 1 }

func (h *fnv64a) Sum(b []byte) []byte {
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], h.sum)
	return append(b, out[:]...)
}

func hashInt(h hash.Hash64, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	h.Write(b[:])
}

func hashFloat(h hash.Hash64, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func hashFloats(h hash.Hash64, xs []float64) {
	hashInt(h, len(xs))
	for _, v := range xs {
		hashFloat(h, v)
	}
}

func hashWave(h hash.Hash64, w delineation.Wave) {
	hashInt(h, w.On)
	hashInt(h, w.Peak)
	hashInt(h, w.Off)
}

func hashBeat(h hash.Hash64, b delineation.BeatFiducials) {
	hashInt(h, b.R)
	hashWave(h, b.QRS)
	hashWave(h, b.P)
	hashWave(h, b.T)
}

func hashEvent(h hash.Hash64, ev core.Event) {
	hashInt(h, int(ev.Kind))
	hashInt(h, ev.At)
	hashInt(h, ev.Bytes)
	hashInt(h, len(ev.Measurements))
	for _, lead := range ev.Measurements {
		hashFloats(h, lead)
	}
	hashBeat(h, ev.Beat.Fiducials)
	hashInt(h, ev.Beat.Label)
	hashFloat(h, ev.Beat.Membership)
	if ev.Kind == core.EventAF {
		hashInt(h, boolInt(ev.AF.AF))
		hashFloat(h, ev.AF.Score)
		hashInt(h, ev.AF.StartBeat)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

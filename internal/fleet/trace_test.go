package fleet

import (
	"testing"

	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

// TestFleetTraceContinuity drives a lossy fleet with the trace collector
// attached and asserts end-to-end stitching: every published tree (a
// tree is only published when its window reaches ordered delivery)
// carries both node-side spans (encode, link) and gateway-side spans
// (decode, deliver), i.e. the trace ID survived the node → ARQ →
// reassembly → reconstruction chain intact.
func TestFleetTraceContinuity(t *testing.T) {
	cfg := fastCfg(4, 2)
	cfg.Channel = link.ChannelConfig{
		PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.02, LossBad: 0.5,
	}
	set := telemetry.NewSet(telemetry.NewRegistry())
	cfg.Telemetry = set
	res := runFleet(t, cfg)

	var delivered int
	for _, pr := range res.Patients {
		delivered += pr.Delivered
	}
	if delivered == 0 {
		t.Fatal("no windows delivered; channel config too hostile for the test")
	}

	snap := set.Trace.Snapshot()
	if snap.Recorded == 0 {
		t.Fatal("trace collector recorded nothing")
	}
	if len(snap.Recent) == 0 {
		t.Fatal("no trace trees published")
	}
	for i, tr := range append(snap.Recent, snap.Slowest...) {
		if tr.Trace == "" {
			t.Fatalf("tree %d: empty trace id", i)
		}
		node := map[string]bool{}
		for _, sp := range tr.Node {
			node[sp.Kind] = true
		}
		gw := map[string]bool{}
		for _, sp := range tr.Gateway {
			gw[sp.Kind] = true
		}
		if !node["encode"] || !node["link"] {
			t.Errorf("tree %d (%s): node side incomplete: %v", i, tr.Trace, node)
		}
		if !gw["decode"] || !gw["deliver"] {
			t.Errorf("tree %d (%s): gateway side incomplete: %v", i, tr.Trace, gw)
		}
		if tr.TotalNs <= 0 {
			t.Errorf("tree %d (%s): non-positive total %d", i, tr.Trace, tr.TotalNs)
		}
	}
	// Link spans must carry the ARQ annotations the fleet is uniquely
	// positioned to produce (retransmissions under a lossy channel).
	var sawAttempts, sawEnergy bool
	for _, tr := range append(snap.Recent, snap.Slowest...) {
		for _, sp := range tr.Node {
			if sp.Kind == "link" {
				if sp.Attempts > 0 {
					sawAttempts = true
				}
				if sp.RadioNJ > 0 {
					sawEnergy = true
				}
			}
		}
	}
	if !sawAttempts || !sawEnergy {
		t.Errorf("link spans missing ARQ annotations: attempts=%v energy=%v", sawAttempts, sawEnergy)
	}
}

package fleet

import (
	"math"
	"runtime"
	"testing"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

// fastCfg keeps fleet tests quick: short records and a reduced FISTA
// budget (reconstruction quality is irrelevant to scheduling and
// determinism, which is what these tests pin down).
func fastCfg(patients, shards int) Config {
	return Config{
		Patients:    patients,
		Shards:      shards,
		DurationS:   6,
		Seed:        100,
		SolverIters: 30,
	}
}

func runFleet(t testing.TB, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetBitIdentity is the engine's core guarantee: every patient's
// digest (events + reconstructed signal + recovered fiducials) is
// identical whatever the shard count, so parallel execution is
// indistinguishable from serial.
func TestFleetBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	base := fastCfg(5, 1)
	serial := runFleet(t, base)
	for _, shards := range []int{2, 3, 5} {
		cfg := base
		cfg.Shards = shards
		res := runFleet(t, cfg)
		if res.Shards != shards {
			t.Fatalf("shards: got %d want %d", res.Shards, shards)
		}
		for p := range serial.Patients {
			s, g := serial.Patients[p], res.Patients[p]
			if g.Digest != s.Digest {
				t.Errorf("shards=%d patient %d: digest %#x != serial %#x", shards, p, g.Digest, s.Digest)
			}
			if g.Events != s.Events || g.Packets != s.Packets || g.Beats != s.Beats {
				t.Errorf("shards=%d patient %d: counts diverged from serial", shards, p)
			}
			if g.Se != s.Se || g.PPV != s.PPV {
				t.Errorf("shards=%d patient %d: scores diverged from serial", shards, p)
			}
		}
	}
}

// TestFleetPooledRigReuse replays the same population twice through one
// Engine: the second run reuses warmed rigs via Reset and must reproduce
// the first run's digests exactly (no state bleed between runs or
// between the patients sharing a shard's rig).
func TestFleetPooledRigReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	e, err := NewEngine(fastCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p := range first.Patients {
		if first.Patients[p].Digest != second.Patients[p].Digest {
			t.Errorf("patient %d: rig reuse changed the digest", p)
		}
	}
}

// TestFleetPatientsIndependent checks the seeding discipline: distinct
// patients produce distinct records and digests, and each patient's
// simulated duration and delivery accounting is filled in.
func TestFleetPatientsIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	res := runFleet(t, fastCfg(4, 2))
	seen := make(map[uint64]int)
	for _, pr := range res.Patients {
		if prev, dup := seen[pr.Digest]; dup {
			t.Errorf("patients %d and %d share digest %#x", prev, pr.Patient, pr.Digest)
		}
		seen[pr.Digest] = pr.Patient
		if pr.Packets == 0 || pr.Delivered != pr.Packets {
			t.Errorf("patient %d: clean link delivered %d/%d", pr.Patient, pr.Delivered, pr.Packets)
		}
		if pr.DeliveryRatio != 1 {
			t.Errorf("patient %d: delivery ratio %.3f on a clean link", pr.Patient, pr.DeliveryRatio)
		}
		if pr.RadioEnergyJ <= 0 || pr.RadioEnergyJ != pr.IdealEnergyJ {
			t.Errorf("patient %d: clean-link energy %.3e (ideal %.3e)", pr.Patient, pr.RadioEnergyJ, pr.IdealEnergyJ)
		}
		if math.IsNaN(pr.Se) || pr.Se <= 0 {
			t.Errorf("patient %d: Se %.3f", pr.Patient, pr.Se)
		}
		if pr.SimSeconds != 6 {
			t.Errorf("patient %d: sim seconds %.1f", pr.Patient, pr.SimSeconds)
		}
	}
	if res.SimSeconds != 24 {
		t.Errorf("fleet sim seconds %.1f, want 24", res.SimSeconds)
	}
	if res.RealTimeFactor <= 0 {
		t.Errorf("real-time factor %.2f", res.RealTimeFactor)
	}
	if res.MeanDelivery != 1 || math.IsNaN(res.MeanSe) || math.IsNaN(res.MeanPPV) {
		t.Errorf("aggregates: delivery %.3f Se %.3f PPV %.3f", res.MeanDelivery, res.MeanSe, res.MeanPPV)
	}
}

// TestFleetLossyChannel runs the population over a bursty channel and
// checks the radio accounting reacts: retransmission energy above the
// lossless baseline and (with the retry budget) a delivery ratio that is
// still counted coherently. Determinism must hold under loss too.
func TestFleetLossyChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	cfg := fastCfg(3, 1)
	cfg.Channel = link.ChannelConfig{
		PGoodToBad: 0.25,
		PBadToGood: 0.3,
		LossGood:   0.35,
		LossBad:    0.7,
	}
	serial := runFleet(t, cfg)
	cfg.Shards = 3
	sharded := runFleet(t, cfg)
	anyRetx := false
	for p, pr := range serial.Patients {
		if pr.Digest != sharded.Patients[p].Digest {
			t.Errorf("patient %d: lossy run not deterministic across shard counts", p)
		}
		if pr.Delivered+pr.Lost != pr.Packets {
			t.Errorf("patient %d: %d delivered + %d lost != %d packets", p, pr.Delivered, pr.Lost, pr.Packets)
		}
		if pr.RadioEnergyJ > pr.IdealEnergyJ {
			anyRetx = true
		}
	}
	if !anyRetx {
		t.Error("no patient spent retransmission energy on a 5-50% loss channel")
	}
}

// TestFleetAnalysisMode runs a node-side analysis fleet (no radio hop,
// no gateway): beats come from the node delineator and the link metrics
// stay at their idle defaults.
func TestFleetAnalysisMode(t *testing.T) {
	cfg := Config{
		Patients:  4,
		Shards:    2,
		DurationS: 10,
		Seed:      7,
		Node:      core.Config{Mode: core.ModeDelineation},
		Noise: ecg.NoiseConfig{
			BaselineWander: 0.1,
			EMG:            0.02,
		},
	}
	res := runFleet(t, cfg)
	for _, pr := range res.Patients {
		if pr.Beats == 0 {
			t.Errorf("patient %d: node delineator found no beats", pr.Patient)
		}
		if pr.Packets != 0 || pr.DeliveryRatio != 1 || pr.RadioEnergyJ != 0 {
			t.Errorf("patient %d: link metrics non-idle without a radio hop", pr.Patient)
		}
		if math.IsNaN(pr.Se) || pr.Se < 0.8 {
			t.Errorf("patient %d: Se %.3f", pr.Patient, pr.Se)
		}
	}
	cfg.Shards = 1
	serial := runFleet(t, cfg)
	for p := range serial.Patients {
		if serial.Patients[p].Digest != res.Patients[p].Digest {
			t.Errorf("patient %d: analysis fleet not shard-invariant", p)
		}
	}
}

// TestFleetBatchDigestInvariance is the fleet-level face of the solver
// bit-identity contract: per-patient digests are identical whatever the
// engine batch size — cold or warm-started — because each window's
// reconstruction inside a structure-of-arrays batch equals the
// sequential solve bit for bit.
func TestFleetBatchDigestInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	for _, warm := range []bool{false, true} {
		base := fastCfg(4, 2)
		base.EngineWorkers = 2
		if warm {
			base.SolverTol = 1e-3
			base.WarmStart = true
		}
		serial := runFleet(t, base)
		for _, batch := range []int{2, 4} {
			cfg := base
			cfg.EngineBatch = batch
			cfg.EngineBatchWait = time.Millisecond
			res := runFleet(t, cfg)
			for p := range serial.Patients {
				if res.Patients[p].Digest != serial.Patients[p].Digest {
					t.Errorf("warm=%v batch=%d patient %d: digest diverged from sequential dispatch",
						warm, batch, p)
				}
			}
		}
	}
}

// TestFleetConfigDefaults pins the zero-value behaviour: a zero Config
// becomes the paper's CS fleet sized to the host.
func TestFleetConfigDefaults(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c := e.Config()
	if c.Patients != 8 || c.DurationS != 30 || c.BlockS != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if want := runtime.GOMAXPROCS(0); c.Shards != want && c.Shards != c.Patients {
		t.Fatalf("default shards %d", c.Shards)
	}
	if c.Node.Mode != core.ModeCS || c.Node.CSRatio != 60 {
		t.Fatalf("default node %+v", c.Node)
	}
}

// TestFleetRaceHammer drives many small patients across many shards
// through the shared reconstruction pool; under -race this exercises the
// shard/engine interleavings for data races (CI runs it explicitly).
func TestFleetRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	cfg := Config{
		Patients:      8,
		Shards:        8,
		DurationS:     4,
		Seed:          55,
		SolverIters:   15,
		EngineWorkers: 4,
		Channel: link.ChannelConfig{
			PGoodToBad: 0.1,
			PBadToGood: 0.4,
			LossBad:    0.4,
		},
	}
	res := runFleet(t, cfg)
	for _, pr := range res.Patients {
		if pr.Packets == 0 {
			t.Errorf("patient %d pushed no packets", pr.Patient)
		}
	}
}

// TestFleetTelemetryDigestIdentity is the observability invariant: a
// fleet run with the full metric family attached produces bit-identical
// per-patient digests to the same run without it — telemetry observes,
// never perturbs — while actually populating every layer's metrics.
func TestFleetTelemetryDigestIdentity(t *testing.T) {
	cfg := fastCfg(4, 2)
	cfg.Channel = link.ChannelConfig{
		PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.02, LossBad: 0.5,
	}
	bare := runFleet(t, cfg)

	set := telemetry.NewSet(telemetry.NewRegistry())
	cfg.Telemetry = set
	instrumented := runFleet(t, cfg)

	for p := range bare.Patients {
		b, g := bare.Patients[p], instrumented.Patients[p]
		if g.Digest != b.Digest {
			t.Errorf("patient %d: digest %#x with telemetry, %#x without", p, g.Digest, b.Digest)
		}
		if g.Events != b.Events || g.Packets != b.Packets || g.Delivered != b.Delivered {
			t.Errorf("patient %d: counts diverged under telemetry", p)
		}
	}

	// Every layer saw the traffic.
	if got := set.Fleet.PatientsDone.Value(); got != uint64(cfg.Patients) {
		t.Errorf("patients done %d, want %d", got, cfg.Patients)
	}
	if set.Fleet.DeliveryPermille.Count() != uint64(cfg.Patients) {
		t.Error("delivery rollup missing patients")
	}
	if set.Fleet.PRDCentiPct.Count() == 0 {
		t.Error("PRD rollup empty")
	}
	if set.Fleet.RadioEnergyJ.Value() <= 0 {
		t.Error("fleet radio energy not accumulated")
	}
	if set.Node.Chunks.Value() == 0 || set.Node.Samples.Value() == 0 {
		t.Error("node metrics empty")
	}
	if set.Link.Packets.Value() == 0 || set.Link.Attempts.Value() == 0 {
		t.Error("link metrics empty")
	}
	if set.Gateway.Decoded.Value() == 0 {
		t.Error("gateway metrics empty")
	}
	if set.Stages.Stage(telemetry.StageCS).Count() == 0 ||
		set.Stages.Stage(telemetry.StageLink).Count() == 0 ||
		set.Stages.Stage(telemetry.StageGatewayDecode).Count() == 0 {
		t.Error("stage histograms missing pipeline coverage")
	}
	shardSum := uint64(0)
	for s := 0; s < cfg.Shards; s++ {
		shardSum += set.Fleet.Shard(s).Value()
	}
	if shardSum != uint64(cfg.Patients) {
		t.Errorf("shard counters sum %d, want %d", shardSum, cfg.Patients)
	}
	if set.Fleet.RTFMilli.Value() <= 0 {
		t.Error("real-time factor gauge not set")
	}
}

// Package fleet scales the paper's single-patient pipeline to a
// population: N independent patients — each with its own ECG generator
// seed, streaming node, lossy radio link and gateway receiver — are
// simulated concurrently on a fixed set of shard workers. The package is
// the load harness behind the ROADMAP's production north star: per-node
// cost bounds how many wearers one host core can serve, so the fleet
// reports a real-time factor (simulated seconds per wall second)
// alongside the clinical and radio metrics.
//
// Determinism is the design invariant: every patient's chain is a pure
// function of its seeds (record synthesis, channel fading, ACK loss) and
// the CS reconstruction is bit-identical however it is scheduled (the
// gateway engine decodes with cloned, immutable solver state). Patient p
// therefore produces the same event stream and the same digest whether
// the fleet runs on 1 shard or 64 — which is what TestFleetBitIdentity
// and the wbsn-sim -fleet sweep verify.
//
// Shard model: patients are dealt round-robin to Shards worker
// goroutines. Each shard owns one pooled rig — a core.Stream and a
// gateway.Receiver that are Reset between patients instead of rebuilt,
// plus reusable block headers — so steady-state patient turnover does
// not touch the allocator beyond the per-patient link/channel state and
// the record itself. CS windows from every shard funnel into one shared
// gateway.Engine worker pool for reconstruction.
package fleet

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// ErrFleet is returned for invalid fleet configurations.
var ErrFleet = errors.New("fleet: invalid configuration")

// ErrBudget is returned by NewCluster when the planned per-patient
// residency exceeds ClusterConfig.BudgetBytesPerPatient.
var ErrBudget = errors.New("fleet: memory budget exceeded")

// ErrDrift is returned by Cluster.VerifyPatient when a from-scratch
// replay disagrees with the live cold-tier digest.
var ErrDrift = errors.New("fleet: digest drift")

// Config parameterises a fleet run.
type Config struct {
	// Patients is the population size (default 8).
	Patients int
	// Shards is the worker-goroutine count (default GOMAXPROCS, clamped
	// to Patients).
	Shards int
	// DurationS is the per-patient record length in seconds (default 30).
	DurationS float64
	// Seed is the base seed: patient p derives its record, channel and
	// ARQ randomness from Seed+p, so populations are reproducible and
	// patients are mutually independent.
	Seed int64
	// Node configures every patient's sensor node (default ModeCS at the
	// paper's 60% ratio; the sensing-matrix seed is shared fleet-wide,
	// exactly like a deployed firmware image).
	Node core.Config
	// Noise is the additive noise mix of every synthesised record.
	Noise ecg.NoiseConfig
	// Channel is the Gilbert–Elliott radio channel of every patient (its
	// Seed field is overridden per patient). The zero value is a
	// lossless link.
	Channel link.ChannelConfig
	// ARQ configures the stop-and-wait sender (per-patient Seed
	// override; the zero value uses the link defaults).
	ARQ link.ARQConfig
	// SolverIters overrides the gateway's FISTA iteration budget
	// (0 keeps the gateway default of 150).
	SolverIters int
	// SolverTol enables the convergence-aware solver: reconstructions
	// stop once the iterate stabilises instead of spending the full
	// budget (0 keeps the fixed-budget solver, bit-identical to earlier
	// revisions).
	SolverTol float64
	// WarmStart carries each patient's wavelet coefficients from window
	// to window through the pooled rigs. The warm cache is per receiver
	// (one stream per shard at a time) and is cleared on every patient
	// boundary by the rig Reset, so coefficients never leak between
	// patients; digests remain shard-count invariant because each
	// patient's window sequence decodes in order either way.
	WarmStart bool
	// EngineWorkers sizes the shared reconstruction pool (default
	// GOMAXPROCS). Negative disables the engine: receivers decode
	// inline on their shard.
	EngineWorkers int
	// EngineBatch is the most queued windows one engine worker dispatch
	// reconstructs in a single structure-of-arrays solver pass (default
	// 1 — sequential dispatch). Per window the reconstruction is
	// bit-identical at every batch size, so patient digests stay
	// batch-size-invariant (TestFleetBatchDigestInvariance).
	EngineBatch int
	// EngineBatchWait bounds how long an engine worker holding a
	// partial batch waits for more windows before dispatching (0
	// dispatches greedily with whatever is queued).
	EngineBatchWait time.Duration
	// BlockS is the acquisition block in seconds: samples are pushed in
	// blocks and the resulting events drained in one batch per block
	// (default 1 s).
	BlockS float64
	// Scenario, when set, overrides the population-wide chain defaults
	// per patient, so one fleet can model a heterogeneous cohort (AF
	// cases, noisy ambulatory leads, congested radio cells). It MUST be
	// a pure function of the patient index: it is consulted on every
	// scheduling turn and again after a checkpoint restore, so any
	// state- or time-dependence breaks the fleet's bit-identity
	// invariant.
	Scenario func(p int) Scenario
	// Telemetry, when set, wires every layer's metric family into the
	// run: node stage timings, link ARQ counters, gateway queue/latency
	// and the per-patient fleet rollups — plus end-to-end window traces
	// when the set carries a trace collector (one ring per shard, window
	// IDs tagged by patient). Pure observation — digests are
	// bit-identical with or without it (TestFleetTelemetryDigestIdentity).
	Telemetry *telemetry.Set
}

func (c Config) withDefaults() Config {
	out := c
	if out.Patients <= 0 {
		out.Patients = 8
	}
	if out.Shards <= 0 {
		out.Shards = runtime.GOMAXPROCS(0)
	}
	if out.Shards > out.Patients {
		out.Shards = out.Patients
	}
	if out.DurationS <= 0 {
		out.DurationS = 30
	}
	if out.Node.Mode == core.ModeRawStreaming && out.Node.CSRatio == 0 {
		// Zero Node means "the paper's CS node".
		out.Node = core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: out.Seed}
	}
	if out.Channel.PBadToGood == 0 && out.Channel.PGoodToBad == 0 {
		out.Channel.PBadToGood = 1 // valid Markov chain for the clean default
	}
	if out.BlockS <= 0 {
		out.BlockS = 1
	}
	return out
}

// Scenario is one patient's deviation from the population defaults.
// Nil fields keep the fleet-wide setting; non-nil fields replace it
// wholesale for that patient (Seed fields are still overridden per
// patient, and a zero-transition channel is normalised to the lossless
// chain exactly like the fleet default).
type Scenario struct {
	Rhythm  *ecg.RhythmConfig
	Noise   *ecg.NoiseConfig
	Channel *link.ChannelConfig
	ARQ     *link.ARQConfig
}

func (e *Engine) scenarioFor(p int) Scenario {
	if e.cfg.Scenario == nil {
		return Scenario{}
	}
	return e.cfg.Scenario(p)
}

// PatientResult is one patient's end-to-end outcome.
type PatientResult struct {
	// Patient is the population index, Seed the derived patient seed.
	Patient int
	Seed    int64
	// Shard is the worker that simulated this patient.
	Shard int
	// Events counts the node's emitted events; Packets/Delivered/Lost
	// count the radio windows through the ARQ link.
	Events    int
	Packets   int
	Delivered int
	Lost      int
	// DeliveryRatio is Delivered/Packets (1 for an idle link).
	DeliveryRatio float64
	// RadioEnergyJ is the radio energy spent including retransmissions;
	// IdealEnergyJ is the lossless-link baseline (energy.RadioModel).
	RadioEnergyJ float64
	IdealEnergyJ float64
	// Beats is the number of beats recovered by the remote (gateway)
	// delineator in CS mode, or emitted by the node in analysis modes.
	Beats int
	// Se and PPV score the recovered R peaks against the record's ground
	// truth (NaN when the record holds no annotated beats). PPV is the
	// "specificity" of the delineation-evaluation literature.
	Se, PPV float64
	// Digest fingerprints the patient's full event stream, reconstructed
	// signal and recovered fiducials; equal digests mean bit-identical
	// end-to-end behaviour.
	Digest uint64
	// SimSeconds is the simulated signal duration.
	SimSeconds float64
}

// Result aggregates one fleet run.
type Result struct {
	// Patients holds the per-patient outcomes in population order.
	Patients []PatientResult
	// Shards is the worker count actually used.
	Shards int
	// WallSeconds is the elapsed time of the parallel section;
	// SimSeconds the summed simulated signal time.
	WallSeconds float64
	SimSeconds  float64
	// RealTimeFactor is SimSeconds/WallSeconds — how many live patients
	// this host could serve at this configuration.
	RealTimeFactor float64
	// MeanSe, MeanPPV and MeanDelivery average the per-patient scores
	// (NaN scores are excluded).
	MeanSe       float64
	MeanPPV      float64
	MeanDelivery float64
	// RadioEnergyJ sums the fleet's radio spend.
	RadioEnergyJ float64
	// PlanDescription summarises the compiled node pipeline every rig
	// executed (one plan fleet-wide; each rig runs it through a private
	// executor).
	PlanDescription string
}

// rig is one shard's pooled per-patient state: constructed once,
// Reset between patients.
type rig struct {
	stream *core.Stream
	rx     *gateway.Receiver
	block  [][]float64
	// tr is the shard's window-trace ring (nil when the telemetry set
	// carries no trace collector). One ring per shard: a shard runs one
	// patient at a time, and patient p tags its windows with hi=p, so
	// trace IDs stay unique fleet-wide.
	tr *trace.Ring
}

// Engine runs fleet simulations. It owns the shared node template and
// the gateway reconstruction pool; one Engine can run many fleets
// (records are replayed through pooled rigs).
type Engine struct {
	cfg  Config
	node *core.Node
	gcfg gateway.Config
	pool *gateway.Engine
}

// NewEngine validates the configuration and builds the shared state:
// the node template (one sensing matrix fleet-wide) and the
// reconstruction worker pool.
func NewEngine(cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	node, err := core.NewNode(c.Node)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: c, node: node}
	if node.Config().Mode == core.ModeCS {
		e.gcfg = gateway.MatchNode(node.Config())
		if c.SolverIters > 0 {
			e.gcfg.Solver.Iters = c.SolverIters
		}
		e.gcfg.Solver.Tol = c.SolverTol
		e.gcfg.WarmStart = c.WarmStart
		if c.EngineWorkers >= 0 {
			ecfg := gateway.EngineConfig{Workers: c.EngineWorkers, Batch: c.EngineBatch, BatchWait: c.EngineBatchWait}
			if c.Telemetry != nil {
				ecfg.Metrics = c.Telemetry.Gateway
			}
			pool, err := gateway.NewEngine(e.gcfg, ecfg)
			if err != nil {
				return nil, err
			}
			e.pool = pool
		}
	}
	return e, nil
}

// Config returns the effective fleet configuration.
func (e *Engine) Config() Config { return e.cfg }

// PlanDescription summarises the compiled execution plan shared by every
// rig of this engine.
func (e *Engine) PlanDescription() string { return e.node.Plan().Describe() }

// Close releases the shared reconstruction pool.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// newRig builds one shard's pooled state.
func (e *Engine) newRig(shard int) (*rig, error) {
	stream, err := e.node.NewStream()
	if err != nil {
		return nil, err
	}
	if tel := e.cfg.Telemetry; tel != nil {
		stream.SetTelemetry(tel.Node)
	}
	r := &rig{stream: stream}
	if tel := e.cfg.Telemetry; tel != nil && tel.Trace != nil {
		r.tr = tel.Trace.Session(uint64(shard))
	}
	if e.node.Config().Mode == core.ModeCS {
		rx, err := gateway.NewReceiver(e.gcfg)
		if err != nil {
			return nil, err
		}
		if e.pool != nil {
			if err := rx.AttachEngine(e.pool); err != nil {
				return nil, err
			}
		} else if tel := e.cfg.Telemetry; tel != nil {
			// Inline decoding on the shard: convergence stats flow through
			// the receiver (the engine path records via pool metrics).
			rx.SetTelemetry(tel.Solver)
		}
		rx.SetTrace(r.tr)
		r.rx = rx
	}
	return r, nil
}

// Run simulates the configured population and returns the aggregated
// result. Safe to call repeatedly; each call replays the same
// population (same seeds) through fresh pooled rigs.
func (e *Engine) Run() (*Result, error) {
	c := e.cfg
	res := &Result{
		Patients:        make([]PatientResult, c.Patients),
		Shards:          c.Shards,
		PlanDescription: e.PlanDescription(),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for shard := 0; shard < c.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			r, err := e.newRig(shard)
			if err == nil {
				var fb *telemetry.FleetBatch
				if tel := c.Telemetry; tel != nil {
					fb = tel.Fleet.NewBatch(shard)
				}
				for p := shard; p < c.Patients; p += c.Shards {
					pr, perr := e.runPatient(r, p, shard, fb)
					if perr != nil {
						err = perr
						break
					}
					res.Patients[p] = pr
					// Per-patient flush keeps the flat engine's metric
					// freshness (a scraper never lags more than one patient).
					fb.Flush()
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(shard)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	var seSum, ppvSum float64
	var seN, ppvN int
	for _, pr := range res.Patients {
		res.SimSeconds += pr.SimSeconds
		res.MeanDelivery += pr.DeliveryRatio
		res.RadioEnergyJ += pr.RadioEnergyJ
		if !math.IsNaN(pr.Se) {
			seSum += pr.Se
			seN++
		}
		if !math.IsNaN(pr.PPV) {
			ppvSum += pr.PPV
			ppvN++
		}
	}
	if c.Patients > 0 {
		res.MeanDelivery /= float64(c.Patients)
	}
	res.MeanSe, res.MeanPPV = math.NaN(), math.NaN()
	if seN > 0 {
		res.MeanSe = seSum / float64(seN)
	}
	if ppvN > 0 {
		res.MeanPPV = ppvSum / float64(ppvN)
	}
	if res.WallSeconds > 0 {
		res.RealTimeFactor = res.SimSeconds / res.WallSeconds
	}
	if tel := c.Telemetry; tel != nil {
		tel.Fleet.RTFMilli.Set(int64(res.RealTimeFactor * 1000))
	}
	return res, nil
}

// runPatient simulates one patient on the shard's pooled rig: a fresh
// cold state, one session covering the whole record, then the fold
// into the flat-engine result shape.
func (e *Engine) runPatient(r *rig, p, shard int, fb *telemetry.FleetBatch) (PatientResult, error) {
	c := e.cfg
	seed := c.Seed + int64(p)
	st := PatientState{Digest: fnvOffset64}
	if err := e.runSession(r, &st, p, seed, c.DurationS, nil, fb); err != nil {
		return PatientResult{Patient: p, Seed: seed, Shard: shard, SimSeconds: c.DurationS}, err
	}
	return st.result(p, seed, shard, c.DurationS), nil
}

// runSession replays durS seconds of patient p through a pooled rig and
// folds the outcome into the patient's cold state. The digest resumes
// from st.Digest — the entire FNV-1a hash state — so a multi-round
// patient (Cluster scheduling slices, checkpoint restores) accumulates
// the exact hash a single uninterrupted run would produce, and round 0
// seeded with Seed+p reproduces the flat engine's digests bit for bit.
//
// warm, when non-nil, is the cold-tier snapshot store: the patient's
// compact float32 coefficients are rehydrated into the rig's receiver
// before the first window and captured back after the last. fb, when
// non-nil, receives the session's telemetry rollups (flushed by the
// caller, bounded fan-in).
func (e *Engine) runSession(r *rig, st *PatientState, p int, seed int64, durS float64, warm *warmStore, fb *telemetry.FleetBatch) error {
	c := e.cfg
	sc := e.scenarioFor(p)
	ecfg := ecg.Config{Seed: seed, Duration: durS, Noise: c.Noise}
	if sc.Noise != nil {
		ecfg.Noise = *sc.Noise
	}
	if sc.Rhythm != nil {
		ecfg.Rhythm = *sc.Rhythm
	}
	rec := ecg.Generate(ecfg)

	r.stream.Reset()
	if r.tr != nil {
		// Windows of patient p carry trace IDs tagged hi=p; the ring is
		// the shard's, reused across its patients.
		r.stream.SetTrace(r.tr, uint32(p))
	}
	var lk *link.Link
	if r.rx != nil {
		r.rx.Reset()
		warm.restore(p, r.rx)
		chCfg := c.Channel
		if sc.Channel != nil {
			chCfg = *sc.Channel
			if chCfg.PBadToGood == 0 && chCfg.PGoodToBad == 0 {
				chCfg.PBadToGood = 1 // same normalisation as the fleet default
			}
		}
		chCfg.Seed = seed
		ch, err := link.NewChannel(chCfg)
		if err != nil {
			return err
		}
		arq := c.ARQ
		if sc.ARQ != nil {
			arq = *sc.ARQ
		}
		arq.Seed = seed
		lk, err = link.NewLink(arq, ch, r.rx)
		if err != nil {
			return err
		}
		if tel := c.Telemetry; tel != nil {
			lk.SetTelemetry(tel.Link)
		}
		lk.SetTrace(r.tr)
	}

	digest := newFNV64a(st.Digest)
	var nodeBeats []delineation.BeatFiducials
	var events int
	consume := func(evs []core.Event) error {
		for _, ev := range evs {
			events++
			hashEvent(digest, ev)
			switch ev.Kind {
			case core.EventPacket:
				if ev.Measurements != nil && lk != nil {
					// SendTraced with a zero ID is exactly SendMeasurements,
					// so the untraced path is unchanged.
					if _, err := lk.SendTraced(ev.At, ev.Trace, ev.Measurements); err != nil {
						return err
					}
				}
			case core.EventBeat:
				nodeBeats = append(nodeBeats, ev.Beat.Fiducials)
			}
		}
		return nil
	}

	// Batched acquisition: push one block, drain its events in one batch.
	blockLen := int(c.BlockS * e.node.Config().Fs)
	if blockLen < 1 {
		blockLen = 1
	}
	if cap(r.block) < len(rec.Leads) {
		r.block = make([][]float64, len(rec.Leads))
	}
	r.block = r.block[:len(rec.Leads)]
	for at := 0; at < rec.Len(); at += blockLen {
		end := at + blockLen
		if end > rec.Len() {
			end = rec.Len()
		}
		for li := range rec.Leads {
			r.block[li] = rec.Leads[li][at:end]
		}
		evs, err := r.stream.PushBlock(r.block)
		if err != nil {
			return err
		}
		if err := consume(evs); err != nil {
			return err
		}
	}
	evs, err := r.stream.Flush()
	if err != nil {
		return err
	}
	if err := consume(evs); err != nil {
		return err
	}

	// Close the radio hop, score the remote reconstruction.
	recovered := nodeBeats
	var packets, delivered, lost int
	var radioJ, idealJ float64
	delivery := 1.0
	if lk != nil {
		if err := lk.Close(); err != nil {
			return err
		}
		report := lk.Report()
		packets, delivered, lost = report.Packets, report.Delivered, report.Lost
		delivery = report.DeliveryRatio()
		radioJ, idealJ = report.EnergyJ, report.IdealEnergyJ
		for _, lead := range r.rx.Signal() {
			hashFloats(digest, lead)
		}
		recovered, err = r.rx.Delineate()
		if err != nil {
			return err
		}
		warm.capture(p, r.rx)
	}
	for _, b := range recovered {
		hashBeat(digest, b)
	}
	var tp, fp, fn int
	if len(rec.Beats) > 0 {
		rep := delineation.Evaluate(rec, recovered, delineation.DefaultTolerances())
		tp, fp, fn = rep.R.TP, rep.R.FP, rep.R.FN
	}

	st.Digest = digest.Sum64()
	st.Events += uint32(events)
	st.Packets += uint32(packets)
	st.Delivered += uint32(delivered)
	st.Lost += uint32(lost)
	st.Beats += uint32(len(recovered))
	st.TP += uint32(tp)
	st.FP += uint32(fp)
	st.FN += uint32(fn)
	st.RadioEnergyJ += radioJ
	st.IdealEnergyJ += idealJ
	st.Rounds++

	if fb != nil {
		se, ppv := int64(-1), int64(-1)
		if tp+fn > 0 {
			se = int64(float64(tp)/float64(tp+fn)*1000 + 0.5)
		}
		if tp+fp > 0 {
			ppv = int64(float64(tp)/float64(tp+fp)*1000 + 0.5)
		}
		// PRD (percent RMS difference, the CS literature's distortion
		// metric) is derived here — a pure read of the already-final
		// reconstruction — so the digest path never changes.
		prd := int64(-1)
		if lk != nil {
			if v := prdPercent(rec.Leads, r.rx.Signal()); !math.IsNaN(v) {
				prd = int64(v*100 + 0.5)
			}
		}
		fb.RecordPatient(uint64(events), radioJ, int64(delivery*1000+0.5), se, ppv, prd, int64(radioJ*1e6))
	}
	return nil
}

// prdPercent computes the percent RMS difference between the original
// and reconstructed multi-lead signals over their overlapping span.
func prdPercent(orig, recon [][]float64) float64 {
	var num, den float64
	for li := range orig {
		if li >= len(recon) {
			break
		}
		n := len(orig[li])
		if len(recon[li]) < n {
			n = len(recon[li])
		}
		for i := 0; i < n; i++ {
			d := orig[li][i] - recon[li][i]
			num += d * d
			den += orig[li][i] * orig[li][i]
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return 100 * math.Sqrt(num/den)
}

// Run is the one-shot convenience wrapper: build an engine, simulate,
// tear down.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Run()
}

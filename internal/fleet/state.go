package fleet

import (
	"math"

	"wbsn/internal/cs"
	"wbsn/internal/gateway"
)

// PatientState is the cold tier of the fleet's two-tier memory model:
// everything a patient owns while it is NOT on a rig, packed into 64
// bytes and allocated as one flat slice for the whole population —
// zero pointers, zero per-patient allocations, and a fixed, auditable
// bytes/patient figure. The hot tier (core.Stream, gateway.Receiver,
// reassembler buffers, trace rings) stays pooled per shard exactly as
// before; a scheduling turn rehydrates a patient onto a rig, runs one
// session, and folds the outcome back into this struct.
//
// Digest is a resumable FNV-1a state, so cumulative bit-identity
// survives any scheduling: flat vs hierarchical, any shard/group
// topology, and a checkpoint/restore boundary. Clinical scores
// accumulate as exact TP/FP/FN counts (not ratios), so aggregation is
// order-free and restores lose nothing.
type PatientState struct {
	// Digest is the running FNV-1a state over the patient's full event
	// stream, reconstructed signal and recovered fiducials.
	Digest uint64
	// RadioEnergyJ / IdealEnergyJ accumulate the radio ledger.
	RadioEnergyJ float64
	IdealEnergyJ float64
	// Events/Packets/Delivered/Lost/Beats accumulate the chain counters.
	Events    uint32
	Packets   uint32
	Delivered uint32
	Lost      uint32
	Beats     uint32
	// TP/FP/FN accumulate the R-peak match counts against ground truth.
	TP uint32
	FP uint32
	FN uint32
	// Rounds counts completed scheduling turns.
	Rounds uint32

	_pad uint32
}

// patientStateBytes is the pinned cold-tier size (TestPatientStateSize
// fails if the struct drifts).
const patientStateBytes = 64

// Se returns the accumulated sensitivity TP/(TP+FN), NaN with no
// annotated truths.
func (s *PatientState) Se() float64 {
	if s.TP+s.FN == 0 {
		return math.NaN()
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// PPV returns the accumulated positive predictive value TP/(TP+FP),
// NaN with no detections.
func (s *PatientState) PPV() float64 {
	if s.TP+s.FP == 0 {
		return math.NaN()
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// DeliveryRatio returns Delivered/Packets (1 for an idle link).
func (s *PatientState) DeliveryRatio() float64 {
	if s.Packets == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Packets)
}

// result unfolds the cold state into the flat engine's per-patient
// result shape (derived ratios recomputed from the exact counts, so a
// single-session state reproduces the historical PatientResult bit for
// bit).
func (s *PatientState) result(p int, seed int64, shard int, simS float64) PatientResult {
	return PatientResult{
		Patient:       p,
		Seed:          seed,
		Shard:         shard,
		Events:        int(s.Events),
		Packets:       int(s.Packets),
		Delivered:     int(s.Delivered),
		Lost:          int(s.Lost),
		DeliveryRatio: s.DeliveryRatio(),
		RadioEnergyJ:  s.RadioEnergyJ,
		IdealEnergyJ:  s.IdealEnergyJ,
		Beats:         int(s.Beats),
		Se:            s.Se(),
		PPV:           s.PPV(),
		Digest:        s.Digest,
		SimSeconds:    simS,
	}
}

// warmStore is the optional third residency tier: one compact float32
// warm-start snapshot per patient (the solver coefficients
// cs.WarmState carries window to window), kept while the patient is
// off its rig and rehydrated on its next scheduling turn. This is the
// dominant per-patient resident when enabled — leads × window × 4
// bytes, ~6 KiB at the paper's 3-lead 512-sample window — which is
// exactly why it is a separate, budget-gated tier instead of part of
// PatientState.
//
// Storage is two flat slabs (payloads + valid bytes); slot p is a
// fixed offset, so the store itself never allocates after
// construction.
type warmStore struct {
	leads, n int
	// base is the population index of slot 0 (0 for the fleet store; a
	// single-patient verification store sets base=p so the same
	// runSession path addresses it).
	base  int
	data  []float32
	valid []uint8
}

func newWarmStore(patients, leads, n int) *warmStore {
	return newWarmStoreAt(0, patients, leads, n)
}

func newWarmStoreAt(base, patients, leads, n int) *warmStore {
	return &warmStore{
		leads: leads,
		n:     n,
		base:  base,
		data:  make([]float32, patients*cs.SnapshotLen(leads, n)),
		valid: make([]uint8, patients),
	}
}

// bytesPerPatient is the store's per-patient residency.
func warmBytesPerPatient(leads, n int) int { return cs.SnapshotLen(leads, n)*4 + 1 }

func (s *warmStore) slot(p int) []float32 {
	stride := cs.SnapshotLen(s.leads, s.n)
	i := p - s.base
	return s.data[i*stride : (i+1)*stride]
}

// restore rehydrates patient p's snapshot into a rig receiver's warm
// state (no-op when the slot holds no committed snapshot — the next
// solve runs cold, exactly like a fresh patient).
func (s *warmStore) restore(p int, rx *gateway.Receiver) {
	if s == nil || rx == nil || s.valid[p-s.base] == 0 {
		return
	}
	rx.WarmState().RestoreFrom(s.slot(p), s.leads, s.n)
}

// capture compacts the rig's warm state back into patient p's slot.
// An invalid warm state (stream ended on a lost window, or warm start
// disabled) invalidates the slot so a stale snapshot never seeds a
// later session.
func (s *warmStore) capture(p int, rx *gateway.Receiver) {
	if s == nil || rx == nil {
		return
	}
	if rx.WarmState().SnapshotInto(s.slot(p), s.leads, s.n) {
		s.valid[p-s.base] = 1
	} else {
		s.valid[p-s.base] = 0
	}
}

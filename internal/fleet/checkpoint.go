package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Checkpoint format (all little-endian, version 1):
//
//	magic   [8]byte  "WBSNCKP1"
//	flags   u8       bit0 = carry-warm tier present
//	_       [7]byte  reserved (zero)
//	seed    i64      base fleet seed
//	patients u64     population size
//	rounds  u32      completed scheduling rounds
//	warmLeads u32    warm tier shape (0 when absent)
//	warmN   u32
//	_       u32      reserved (zero)
//	sessionS f64     seconds per round (IEEE-754 bits)
//	states  patients × 64 B   PatientState, field order below
//	warm    patients × (1 + 4·leads·n) B   valid byte then float32 bits
//	footer  u64      FNV-1a of every preceding byte
//
// The footer reuses the fleet's own resumable FNV-1a, so a corrupted or
// truncated file fails loudly instead of resuming a silently wrong
// population. The header pins everything the digest stream depends on:
// restore refuses a checkpoint whose seed, population, session length
// or warm shape disagree with the receiving cluster, because resuming
// such a file could only produce drifting digests.
var ckptMagic = [8]byte{'W', 'B', 'S', 'N', 'C', 'K', 'P', '1'}

// ErrCheckpoint is returned for malformed, corrupted or mismatched
// checkpoint files.
var ErrCheckpoint = errors.New("fleet: bad checkpoint")

const ckptHeaderLen = 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 8

// putState serialises one PatientState into a 64-byte buffer.
func putState(b []byte, st *PatientState) {
	binary.LittleEndian.PutUint64(b[0:], st.Digest)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(st.RadioEnergyJ))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(st.IdealEnergyJ))
	binary.LittleEndian.PutUint32(b[24:], st.Events)
	binary.LittleEndian.PutUint32(b[28:], st.Packets)
	binary.LittleEndian.PutUint32(b[32:], st.Delivered)
	binary.LittleEndian.PutUint32(b[36:], st.Lost)
	binary.LittleEndian.PutUint32(b[40:], st.Beats)
	binary.LittleEndian.PutUint32(b[44:], st.TP)
	binary.LittleEndian.PutUint32(b[48:], st.FP)
	binary.LittleEndian.PutUint32(b[52:], st.FN)
	binary.LittleEndian.PutUint32(b[56:], st.Rounds)
	binary.LittleEndian.PutUint32(b[60:], 0)
}

func getState(b []byte, st *PatientState) {
	st.Digest = binary.LittleEndian.Uint64(b[0:])
	st.RadioEnergyJ = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	st.IdealEnergyJ = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	st.Events = binary.LittleEndian.Uint32(b[24:])
	st.Packets = binary.LittleEndian.Uint32(b[28:])
	st.Delivered = binary.LittleEndian.Uint32(b[32:])
	st.Lost = binary.LittleEndian.Uint32(b[36:])
	st.Beats = binary.LittleEndian.Uint32(b[40:])
	st.TP = binary.LittleEndian.Uint32(b[44:])
	st.FP = binary.LittleEndian.Uint32(b[48:])
	st.FN = binary.LittleEndian.Uint32(b[52:])
	st.Rounds = binary.LittleEndian.Uint32(b[56:])
}

// WriteCheckpoint serialises the cluster's resumable state — seeds,
// per-patient progress and digests, and the warm snapshot tier — so a
// later ReadCheckpoint into an identically configured cluster resumes
// bit-identically: the remaining rounds produce exactly the digests an
// uninterrupted run would have.
//
// Call between rounds only (the cold tier is consistent exactly at
// round boundaries).
func (cl *Cluster) WriteCheckpoint(w io.Writer) error {
	h := newFNV64a(fnvOffset64)
	hw := io.MultiWriter(w, h)

	hdr := make([]byte, ckptHeaderLen)
	copy(hdr, ckptMagic[:])
	var flags byte
	if cl.warm != nil {
		flags |= 1
	}
	hdr[8] = flags
	binary.LittleEndian.PutUint64(hdr[16:], uint64(cl.cfg.Fleet.Seed))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(cl.states)))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(cl.rounds))
	if cl.warm != nil {
		binary.LittleEndian.PutUint32(hdr[36:], uint32(cl.warm.leads))
		binary.LittleEndian.PutUint32(hdr[40:], uint32(cl.warm.n))
	}
	binary.LittleEndian.PutUint64(hdr[48:], math.Float64bits(cl.cfg.SessionS))
	if _, err := hw.Write(hdr); err != nil {
		return err
	}

	buf := make([]byte, patientStateBytes)
	for p := range cl.states {
		putState(buf, &cl.states[p])
		if _, err := hw.Write(buf); err != nil {
			return err
		}
	}

	if cl.warm != nil {
		stride := len(cl.warm.slot(0))
		wbuf := make([]byte, 1+4*stride)
		for p := range cl.states {
			wbuf[0] = cl.warm.valid[p]
			slot := cl.warm.slot(p)
			for i, v := range slot {
				binary.LittleEndian.PutUint32(wbuf[1+4*i:], math.Float32bits(v))
			}
			if _, err := hw.Write(wbuf); err != nil {
				return err
			}
		}
	}

	var footer [8]byte
	binary.LittleEndian.PutUint64(footer[:], h.Sum64())
	_, err := w.Write(footer[:])
	return err
}

// ReadCheckpoint restores the cluster's resumable state from a
// WriteCheckpoint stream. The receiving cluster must be freshly built
// with the same seed, population, session length and warm tier as the
// writer — any mismatch (or a corrupted stream, caught by the FNV
// footer) returns ErrCheckpoint and leaves no partial state applied:
// the population arrays are only swapped in after full validation.
func (cl *Cluster) ReadCheckpoint(r io.Reader) error {
	h := newFNV64a(fnvOffset64)
	hr := io.TeeReader(r, h)

	hdr := make([]byte, ckptHeaderLen)
	if _, err := io.ReadFull(hr, hdr); err != nil {
		return fmt.Errorf("%w: header: %v", ErrCheckpoint, err)
	}
	if [8]byte(hdr[:8]) != ckptMagic {
		return fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	flags := hdr[8]
	seed := int64(binary.LittleEndian.Uint64(hdr[16:]))
	patients := binary.LittleEndian.Uint64(hdr[24:])
	rounds := binary.LittleEndian.Uint32(hdr[32:])
	warmLeads := int(binary.LittleEndian.Uint32(hdr[36:]))
	warmN := int(binary.LittleEndian.Uint32(hdr[40:]))
	sessionS := math.Float64frombits(binary.LittleEndian.Uint64(hdr[48:]))

	if seed != cl.cfg.Fleet.Seed {
		return fmt.Errorf("%w: seed %d, cluster has %d", ErrCheckpoint, seed, cl.cfg.Fleet.Seed)
	}
	if patients != uint64(len(cl.states)) {
		return fmt.Errorf("%w: %d patients, cluster has %d", ErrCheckpoint, patients, len(cl.states))
	}
	if sessionS != cl.cfg.SessionS {
		return fmt.Errorf("%w: session %gs, cluster has %gs", ErrCheckpoint, sessionS, cl.cfg.SessionS)
	}
	hasWarm := flags&1 != 0
	if hasWarm != (cl.warm != nil) {
		return fmt.Errorf("%w: warm tier mismatch (checkpoint %v, cluster %v)", ErrCheckpoint, hasWarm, cl.warm != nil)
	}
	if hasWarm && (warmLeads != cl.warm.leads || warmN != cl.warm.n) {
		return fmt.Errorf("%w: warm shape %dx%d, cluster has %dx%d",
			ErrCheckpoint, warmLeads, warmN, cl.warm.leads, cl.warm.n)
	}

	states := make([]PatientState, len(cl.states))
	buf := make([]byte, patientStateBytes)
	for p := range states {
		if _, err := io.ReadFull(hr, buf); err != nil {
			return fmt.Errorf("%w: state %d: %v", ErrCheckpoint, p, err)
		}
		getState(buf, &states[p])
	}

	var warm *warmStore
	if hasWarm {
		warm = newWarmStore(len(states), warmLeads, warmN)
		stride := len(warm.slot(0))
		wbuf := make([]byte, 1+4*stride)
		for p := range states {
			if _, err := io.ReadFull(hr, wbuf); err != nil {
				return fmt.Errorf("%w: warm %d: %v", ErrCheckpoint, p, err)
			}
			warm.valid[p] = wbuf[0]
			slot := warm.slot(p)
			for i := range slot {
				slot[i] = math.Float32frombits(binary.LittleEndian.Uint32(wbuf[1+4*i:]))
			}
		}
	}

	want := h.Sum64()
	var footer [8]byte
	if _, err := io.ReadFull(r, footer[:]); err != nil {
		return fmt.Errorf("%w: footer: %v", ErrCheckpoint, err)
	}
	if got := binary.LittleEndian.Uint64(footer[:]); got != want {
		return fmt.Errorf("%w: FNV footer %016x, computed %016x", ErrCheckpoint, got, want)
	}

	cl.states = states
	cl.warm = warm
	cl.rounds = int(rounds)
	return nil
}

package fleet

import (
	"bytes"
	"errors"
	"hash/fnv"
	"testing"
	"unsafe"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
	"wbsn/internal/link"
)

// TestFNVMatchesStdlib pins the resumable digest to hash/fnv's New64a:
// the flat engine hashed with the stdlib for nine PRs, so every stored
// digest depends on byte-for-byte equivalence.
func TestFNVMatchesStdlib(t *testing.T) {
	chunks := [][]byte{
		nil,
		{0x00},
		{0xff, 0x01, 0x80},
		[]byte("wearable cardiac monitoring"),
		bytes.Repeat([]byte{0xa5, 0x5a}, 257),
	}
	std := fnv.New64a()
	ours := newFNV64a(fnvOffset64)
	for _, c := range chunks {
		std.Write(c)
		ours.Write(c)
		if std.Sum64() != ours.Sum64() {
			t.Fatalf("after %d bytes: stdlib %016x, ours %016x", len(c), std.Sum64(), ours.Sum64())
		}
	}
	// Resumability: continuing from a stored Sum64 state equals one
	// uninterrupted hash.
	resumed := newFNV64a(ours.Sum64())
	tail := []byte("resumed after checkpoint")
	std.Write(tail)
	resumed.Write(tail)
	if std.Sum64() != resumed.Sum64() {
		t.Fatalf("resumed hash diverged: stdlib %016x, ours %016x", std.Sum64(), resumed.Sum64())
	}
	if got := len(ours.Sum(nil)); got != 8 {
		t.Fatalf("Sum length %d", got)
	}
}

// TestPatientStateSize pins the cold tier to its budgeted 64 bytes —
// residency math all over the cluster depends on it.
func TestPatientStateSize(t *testing.T) {
	if got := unsafe.Sizeof(PatientState{}); got != patientStateBytes {
		t.Fatalf("PatientState is %d bytes, budget says %d", got, patientStateBytes)
	}
}

// TestSessionSeedDerivation pins the seed schedule: round 0 must be the
// flat engine's Seed+p (that is what makes a one-round cluster
// digest-identical to the flat fleet), later rounds must differ per
// round and stay deterministic.
func TestSessionSeedDerivation(t *testing.T) {
	if got := sessionSeed(100, 7, 0); got != 107 {
		t.Fatalf("round 0 seed %d, want 107", got)
	}
	seen := map[int64]int{}
	for round := 0; round < 16; round++ {
		seen[sessionSeed(100, 7, round)]++
	}
	if len(seen) != 16 {
		t.Fatalf("16 rounds produced %d distinct seeds", len(seen))
	}
	if sessionSeed(100, 7, 3) != sessionSeed(100, 7, 3) {
		t.Fatal("seed derivation not deterministic")
	}
}

func clusterCfg(patients int) ClusterConfig {
	return ClusterConfig{
		Fleet: Config{
			Patients:    patients,
			DurationS:   4,
			Seed:        100,
			SolverIters: 20,
			SolverTol:   1e-3,
			WarmStart:   true,
		},
		SessionS: 4,
	}
}

func runCluster(t testing.TB, cfg ClusterConfig) (*Cluster, *ClusterReport) {
	t.Helper()
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run()
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	return cl, rep
}

// TestClusterFlatParity is acceptance criterion one: a one-round
// cluster reproduces the flat engine's per-patient digests bit for bit,
// whatever the group topology.
func TestClusterFlatParity(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	const patients = 6
	fcfg := clusterCfg(patients).Fleet
	fcfg.Shards = 2
	flat := runFleet(t, fcfg)
	for _, topo := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 1}} {
		cfg := clusterCfg(patients)
		cfg.Groups, cfg.GroupShards = topo[0], topo[1]
		cl, _ := runCluster(t, cfg)
		for p := 0; p < patients; p++ {
			got := cl.Result(p)
			want := flat.Patients[p]
			if got.Digest != want.Digest {
				t.Errorf("topology %dx%d patient %d: digest %016x, flat %016x",
					topo[0], topo[1], p, got.Digest, want.Digest)
			}
			if got.Events != want.Events || got.Beats != want.Beats ||
				got.Packets != want.Packets || got.Se != want.Se {
				t.Errorf("topology %dx%d patient %d: counters diverged: %+v vs %+v",
					topo[0], topo[1], p, got, want)
			}
		}
		cl.Close()
	}
}

// TestClusterTopologyInvariance extends bit-identity to multi-round
// runs with the warm tier carried: the full cold state (digest and
// every counter) must not depend on the group/shard topology.
func TestClusterTopologyInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	const patients = 5
	base := clusterCfg(patients)
	base.Rounds = 3
	base.SessionS = 2
	base.CarryWarm = true
	ref, refRep := runCluster(t, base)
	defer ref.Close()
	for _, topo := range [][2]int{{1, 2}, {2, 1}, {2, 2}, {5, 1}} {
		cfg := base
		cfg.Groups, cfg.GroupShards = topo[0], topo[1]
		cl, rep := runCluster(t, cfg)
		for p := 0; p < patients; p++ {
			if got, want := cl.State(p), ref.State(p); got != want {
				t.Errorf("topology %dx%d patient %d: state diverged:\n got %+v\nwant %+v",
					topo[0], topo[1], p, got, want)
			}
		}
		if rep.DigestFold != refRep.DigestFold {
			t.Errorf("topology %dx%d: digest fold %016x, want %016x",
				topo[0], topo[1], rep.DigestFold, refRep.DigestFold)
		}
		cl.Close()
	}
}

// TestClusterCheckpointIdentity is acceptance criterion three: stop a
// soak after two rounds, checkpoint, restore into a fresh cluster (a
// different topology, even), finish the remaining round — and land on
// exactly the digests of the uninterrupted run.
func TestClusterCheckpointIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	const patients = 4
	base := clusterCfg(patients)
	base.Rounds = 3
	base.SessionS = 2
	base.CarryWarm = true

	straight, _ := runCluster(t, base)
	defer straight.Close()

	interrupted, err := NewCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if _, err := interrupted.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := interrupted.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	interrupted.Close()

	resumedCfg := base
	resumedCfg.Groups, resumedCfg.GroupShards = 2, 2 // restore across a topology change
	resumed, err := NewCluster(resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.ReadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := resumed.RoundsDone(); got != 2 {
		t.Fatalf("restored RoundsDone %d, want 2", got)
	}
	rep, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 3 {
		t.Fatalf("resumed run finished %d rounds, want 3", rep.Rounds)
	}
	for p := 0; p < patients; p++ {
		if got, want := resumed.State(p), straight.State(p); got != want {
			t.Errorf("patient %d: resumed state diverged:\n got %+v\nwant %+v", p, got, want)
		}
	}

	// Corruption must be caught by the FNV footer, not resumed.
	bad := append([]byte(nil), ckpt.Bytes()...)
	bad[len(bad)/2] ^= 0x40
	fresh, err := NewCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.ReadCheckpoint(bytes.NewReader(bad)); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("corrupted checkpoint: err %v, want ErrCheckpoint", err)
	}

	// A mismatched cluster (different seed) must refuse the file.
	other := base
	other.Fleet.Seed = 999
	wrong, err := NewCluster(other)
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if err := wrong.ReadCheckpoint(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("seed-mismatched checkpoint: err %v, want ErrCheckpoint", err)
	}
}

// TestClusterBudget pins the enforcement: a budget below the planned
// cold+warm residency fails fast with ErrBudget, one at the plan
// passes, and MemStats reports the arithmetic.
func TestClusterBudget(t *testing.T) {
	cfg := clusterCfg(16)
	cfg.CarryWarm = true
	cfg.BudgetBytesPerPatient = patientStateBytes // no room for the warm tier
	if _, err := NewCluster(cfg); !errors.Is(err, ErrBudget) {
		t.Fatalf("under-budget cluster: err %v, want ErrBudget", err)
	}

	cfg.BudgetBytesPerPatient = 1 << 14
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Mem()
	if m.ColdBytesPerPatient != patientStateBytes {
		t.Errorf("cold bytes %d, want %d", m.ColdBytesPerPatient, patientStateBytes)
	}
	if m.WarmBytesPerPatient == 0 {
		t.Error("warm tier enabled but WarmBytesPerPatient is 0")
	}
	if m.PlannedBytesPerPatient != m.ColdBytesPerPatient+m.WarmBytesPerPatient {
		t.Errorf("planned %d != cold %d + warm %d",
			m.PlannedBytesPerPatient, m.ColdBytesPerPatient, m.WarmBytesPerPatient)
	}
	if m.PlannedBytesPerPatient > cfg.BudgetBytesPerPatient {
		t.Errorf("planned %d exceeds budget %d", m.PlannedBytesPerPatient, cfg.BudgetBytesPerPatient)
	}
	if m.HeapInuseBytes == 0 || m.Goroutines == 0 {
		t.Error("Mem() did not sample the runtime")
	}

	// CarryWarm without a warm-started fleet is a configuration error,
	// not silent dead weight.
	bad := clusterCfg(4)
	bad.Fleet.WarmStart = false
	bad.CarryWarm = true
	if _, err := NewCluster(bad); !errors.Is(err, ErrFleet) {
		t.Fatalf("CarryWarm without WarmStart: err %v, want ErrFleet", err)
	}
}

// TestClusterVerifyPatient exercises the drift detector both ways: a
// healthy cluster verifies clean, and a corrupted cold-tier digest is
// reported as ErrDrift.
func TestClusterVerifyPatient(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	cfg := clusterCfg(3)
	cfg.Rounds = 2
	cfg.SessionS = 2
	cfg.CarryWarm = true
	cl, _ := runCluster(t, cfg)
	defer cl.Close()
	for p := 0; p < 3; p++ {
		if err := cl.VerifyPatient(p); err != nil {
			t.Fatalf("healthy patient %d reported drift: %v", p, err)
		}
	}
	cl.states[1].Digest ^= 1
	if err := cl.VerifyPatient(1); !errors.Is(err, ErrDrift) {
		t.Fatalf("corrupted digest: err %v, want ErrDrift", err)
	}
	if err := cl.VerifyPatient(99); !errors.Is(err, ErrFleet) {
		t.Fatalf("out-of-range patient: err %v, want ErrFleet", err)
	}
}

// TestFleetRigReuseHygiene pins rig-pooling hygiene directly: two
// patients with adversarially different scenarios — different rhythm
// class, noise mix, channel statistics and ARQ policy — run back to
// back through ONE pooled rig, and each digest must equal the digest of
// a fleet where that patient runs alone on a fresh rig. Any state
// leaking across the rig Reset (warm coefficients, reassembler windows,
// stream state) breaks the equality.
func TestFleetRigReuseHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	noisy := ecg.NoiseConfig{BaselineWander: 0.3, EMG: 0.12, Powerline: 0.08, MotionRate: 4, MotionAmp: 0.5}
	af := ecg.RhythmConfig{Kind: ecg.RhythmAF, MeanHR: 110}
	lossy := link.ChannelConfig{PGoodToBad: 0.3, PBadToGood: 0.2, LossBad: 0.7, LossGood: 0.05, PDuplicate: 0.05, PReorder: 0.05}
	tinyARQ := link.ARQConfig{MaxRetries: 1}
	scenario := func(p int) Scenario {
		if p%2 == 1 {
			return Scenario{Rhythm: &af, Noise: &noisy, Channel: &lossy, ARQ: &tinyARQ}
		}
		return Scenario{}
	}

	shared := fastCfg(2, 1) // one shard: both patients share one rig
	shared.WarmStart = true
	shared.SolverTol = 1e-3
	shared.Scenario = scenario
	res := runFleet(t, shared)

	// Each patient alone: a fresh engine, a fresh rig, same scenario
	// mapping (patient index preserved via the hook).
	for p := 0; p < 2; p++ {
		p := p
		solo := fastCfg(1, 1)
		solo.WarmStart = true
		solo.SolverTol = 1e-3
		solo.Seed = shared.Seed + int64(p)
		// Same firmware image: the sensing-matrix seed is fleet-wide and
		// must not shift with the base seed.
		solo.Node = core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: shared.Seed}
		solo.Scenario = func(int) Scenario { return scenario(p) }
		soloRes := runFleet(t, solo)
		if got, want := res.Patients[p].Digest, soloRes.Patients[0].Digest; got != want {
			t.Errorf("patient %d: pooled-rig digest %016x, fresh-rig %016x — rig state leaked",
				p, got, want)
		}
	}
	if res.Patients[0].Digest == res.Patients[1].Digest {
		t.Error("adversarial scenarios produced identical digests — scenario hook inert")
	}
}

package fleet

import (
	"testing"

	"wbsn/internal/telemetry"
)

// warmCfg is fastCfg with the convergence-aware warm-started solver on.
func warmCfg(patients, shards int) Config {
	cfg := fastCfg(patients, shards)
	cfg.SolverTol = 1e-3
	cfg.WarmStart = true
	return cfg
}

// TestFleetWarmShardInvariance extends the bit-identity guarantee to
// the warm-started solver: each patient's windows decode in order on
// whichever shard owns the patient, and the rig Reset drops the warm
// cache at every patient boundary, so digests must not depend on the
// shard count. A stale θ crossing patients inside a shared rig would
// shift every later solve on that shard and break this comparison.
func TestFleetWarmShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	serial := runFleet(t, warmCfg(5, 1))
	cold := runFleet(t, fastCfg(5, 1))
	warmChanged := false
	for p := range serial.Patients {
		if serial.Patients[p].Digest != cold.Patients[p].Digest {
			warmChanged = true
			break
		}
	}
	if !warmChanged {
		t.Fatal("warm+tol run matches the cold run bit for bit — the adaptive solver never engaged")
	}
	for _, shards := range []int{2, 5} {
		res := runFleet(t, warmCfg(5, shards))
		for p := range serial.Patients {
			if res.Patients[p].Digest != serial.Patients[p].Digest {
				t.Errorf("shards=%d patient %d: warm digest %#x != serial %#x",
					shards, p, res.Patients[p].Digest, serial.Patients[p].Digest)
			}
		}
	}
}

// TestFleetWarmRigReuse replays one warm population twice through one
// Engine: reused rigs must reproduce the first run's digests exactly,
// proving the Reset between patients (and between runs) clears the
// warm cache.
func TestFleetWarmRigReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	e, err := NewEngine(warmCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p := range first.Patients {
		if first.Patients[p].Digest != second.Patients[p].Digest {
			t.Errorf("patient %d: warm rig reuse changed the digest", p)
		}
	}
}

// TestFleetWarmTelemetry asserts the early-exit path actually fires
// under fleet load and that the iterations histogram is non-degenerate:
// solves observed, warm seeds used, and the median iteration count
// strictly below the configured budget.
func TestFleetWarmTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("CS reconstruction sweep")
	}
	set := telemetry.NewSet(telemetry.NewRegistry())
	cfg := warmCfg(3, 2)
	// Give the convergence test headroom: with the tight 30-iteration
	// test budget most passes exhaust the budget before the tolerance is
	// met, which would make this smoke vacuous.
	cfg.SolverIters = 100
	cfg.Telemetry = set
	runFleet(t, cfg)

	sm := set.Solver
	if sm.Solves.Value() == 0 {
		t.Fatal("no solves recorded")
	}
	if sm.WarmSolves.Value() == 0 {
		t.Error("no warm solves recorded across contiguous windows")
	}
	if sm.EarlyExits.Value() == 0 {
		t.Error("early exit never fired — the convergence criterion is dead under fleet load")
	}
	if sm.Iters.Count() != sm.Solves.Value() {
		t.Errorf("iters histogram observations %d != solves %d", sm.Iters.Count(), sm.Solves.Value())
	}
	snap := sm.Iters.Snapshot()
	budget := uint64(100 * 2) // SolverIters × (1 + default reweight pass)
	if snap.P50 >= budget {
		t.Errorf("median iterations %d did not beat the %d budget", snap.P50, budget)
	}
	if snap.Min == snap.Max {
		t.Errorf("iterations histogram degenerate: every solve took %d iterations", snap.Min)
	}
}

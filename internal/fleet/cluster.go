package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/telemetry"
)

// Cluster is the hierarchical fleet-of-fleets engine: the population is
// block-partitioned across shard-groups, each group runs its own worker
// shards over pooled rigs, and every aggregate — digest folds, round
// rollups, telemetry — combines worker→group→cluster, so no path
// serialises the whole population through one goroutine. The flat
// Engine certifies tens of patients; the Cluster is built for 10⁵–10⁶.
//
// Memory is the first-class axis. Per patient, the cluster keeps only
// the cold tier: one 64-byte PatientState, plus (opt-in) one compact
// float32 warm-start snapshot. The hot tier — streams, receivers,
// reassembler windows, trace rings — exists only per worker shard,
// exactly Groups×GroupShards rigs however large the population. The
// planned bytes/patient figure is computed before any population
// allocation and enforced against BudgetBytesPerPatient, and MemStats
// reports both the plan and the observed heap residency.
//
// Time advances in rounds: round r simulates SessionS seconds of every
// patient. Round 0 derives patient p's session seed exactly like the
// flat engine (Seed+p), so a one-round cluster reproduces the flat
// digests bit for bit at any Groups×GroupShards topology; later rounds
// mix the round index in deterministically. The cumulative digest lives
// in PatientState (a resumable FNV-1a), so scheduling, topology and
// checkpoint/restore boundaries are all invisible to it.
type Cluster struct {
	cfg    ClusterConfig
	eng    *Engine
	states []PatientState
	warm   *warmStore
	rigs   []*rig
	mem    MemStats
	rounds int
	// wallS accumulates the parallel-section time of completed rounds.
	wallS float64
	// verifyRig is the spare rig used by VerifyPatient (built lazily;
	// trace-session id Groups×GroupShards, past every worker's).
	verifyRig *rig
}

// ClusterConfig parameterises a hierarchical run.
type ClusterConfig struct {
	// Fleet is the population-wide chain configuration. Patients is the
	// population size; Shards is ignored (the cluster topology below
	// governs concurrency); DurationS is ignored in favour of SessionS.
	Fleet Config
	// Groups is the number of shard-groups (default 1). The population
	// is block-partitioned across groups.
	Groups int
	// GroupShards is the worker count per group (default GOMAXPROCS,
	// clamped so the cluster never has more workers than patients).
	GroupShards int
	// Rounds is the number of scheduling rounds Run executes (default
	// 1). Each round simulates SessionS seconds of every patient.
	Rounds int
	// SessionS is the simulated seconds per patient per round (default
	// Fleet.DurationS's default, 30).
	SessionS float64
	// CarryWarm keeps each patient's warm-start solver coefficients
	// across rounds in the compact float32 cold tier. Requires a
	// warm-started CS fleet; costs warmBytesPerPatient of residency.
	CarryWarm bool
	// BudgetBytesPerPatient caps the planned cold-tier residency.
	// NewCluster fails with ErrBudget before allocating the population
	// if the plan exceeds it (0 disables enforcement).
	BudgetBytesPerPatient int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	out := c
	out.Fleet = out.Fleet.withDefaults()
	if out.Groups <= 0 {
		out.Groups = 1
	}
	if out.GroupShards <= 0 {
		out.GroupShards = runtime.GOMAXPROCS(0)
	}
	if out.Groups > out.Fleet.Patients {
		out.Groups = out.Fleet.Patients
	}
	perGroup := (out.Fleet.Patients + out.Groups - 1) / out.Groups
	if out.GroupShards > perGroup {
		out.GroupShards = perGroup
	}
	if out.Rounds <= 0 {
		out.Rounds = 1
	}
	if out.SessionS <= 0 {
		out.SessionS = out.Fleet.DurationS
	}
	return out
}

// MemStats is the cluster's memory report: the per-patient plan the
// budget enforces, and the observed process heap at Mem() time.
type MemStats struct {
	// Patients is the population size; Rigs the hot-tier rig count
	// (Groups×GroupShards, population-independent).
	Patients int
	Rigs     int
	// ColdBytesPerPatient is the fixed PatientState size;
	// WarmBytesPerPatient the compact snapshot size (0 when CarryWarm
	// is off); PlannedBytesPerPatient their sum — the figure enforced
	// against BudgetBytesPerPatient.
	ColdBytesPerPatient    int
	WarmBytesPerPatient    int
	PlannedBytesPerPatient int
	BudgetBytesPerPatient  int
	// HeapInuseBytes/HeapSysBytes/Goroutines sample the Go runtime at
	// Mem() time; ObservedBytesPerPatient is HeapInuse/Patients — an
	// upper bound on true per-patient residency since it includes the
	// population-independent baseline (rigs, solver state, binaries').
	HeapInuseBytes          uint64
	HeapSysBytes            uint64
	Goroutines              int
	ObservedBytesPerPatient float64
}

// RoundReport summarises one scheduling round.
type RoundReport struct {
	// Round is the 0-based index of the completed round.
	Round int
	// Patients is the population size; SimSeconds = Patients×SessionS.
	Patients    int
	WallSeconds float64
	SimSeconds  float64
	// RealTimeFactor is SimSeconds/WallSeconds for this round.
	RealTimeFactor float64
	// DigestFold is the order-free fold of every patient's cumulative
	// digest after this round (combined worker→group→cluster).
	DigestFold uint64
}

// ClusterReport aggregates a whole run.
type ClusterReport struct {
	Patients int
	// Rounds is the number of completed rounds; SimSeconds the total
	// simulated signal time (Patients×Rounds×SessionS).
	Rounds      int
	SimSeconds  float64
	WallSeconds float64
	// RealTimeFactor is SimSeconds/WallSeconds — patients/core is
	// RealTimeFactor at a 1-core GOMAXPROCS.
	RealTimeFactor float64
	// DigestFold is the order-free fold of all patient digests.
	DigestFold uint64
	// Chain counter totals across the population.
	Events    uint64
	Packets   uint64
	Delivered uint64
	Lost      uint64
	Beats     uint64
	// RadioEnergyJ sums the population's radio spend.
	RadioEnergyJ float64
	// MeanSe/MeanPPV/MeanDelivery average the per-patient accumulated
	// scores (patients with no scorable beats excluded).
	MeanSe       float64
	MeanPPV      float64
	MeanDelivery float64
}

// NewCluster validates the configuration, enforces the memory budget,
// and allocates the tiered state: the flat cold-tier population array,
// the optional warm snapshot store, and Groups×GroupShards pooled rigs.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	c := cfg.withDefaults()
	eng, err := NewEngine(c.Fleet)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{cfg: c, eng: eng}
	nodeCfg := eng.node.Config()
	if c.CarryWarm {
		if nodeCfg.Mode != core.ModeCS || !c.Fleet.WarmStart {
			eng.Close()
			return nil, fmt.Errorf("%w: CarryWarm requires a warm-started CS fleet (Mode=CS, WarmStart=true)", ErrFleet)
		}
	}

	// Budget gate: plan the per-patient residency before allocating any
	// of it, so an over-budget configuration fails in O(1).
	mem := MemStats{
		Patients:              c.Fleet.Patients,
		Rigs:                  c.Groups * c.GroupShards,
		ColdBytesPerPatient:   patientStateBytes,
		BudgetBytesPerPatient: c.BudgetBytesPerPatient,
	}
	if c.CarryWarm {
		mem.WarmBytesPerPatient = warmBytesPerPatient(nodeCfg.Leads, nodeCfg.CSWindow)
	}
	mem.PlannedBytesPerPatient = mem.ColdBytesPerPatient + mem.WarmBytesPerPatient
	if c.BudgetBytesPerPatient > 0 && mem.PlannedBytesPerPatient > c.BudgetBytesPerPatient {
		eng.Close()
		return nil, fmt.Errorf("%w: planned %d B/patient (cold %d + warm %d) exceeds budget %d",
			ErrBudget, mem.PlannedBytesPerPatient, mem.ColdBytesPerPatient,
			mem.WarmBytesPerPatient, c.BudgetBytesPerPatient)
	}
	cl.mem = mem

	cl.states = make([]PatientState, c.Fleet.Patients)
	for p := range cl.states {
		cl.states[p].Digest = fnvOffset64
	}
	if c.CarryWarm {
		cl.warm = newWarmStore(c.Fleet.Patients, nodeCfg.Leads, nodeCfg.CSWindow)
	}
	cl.rigs = make([]*rig, c.Groups*c.GroupShards)
	for i := range cl.rigs {
		r, err := eng.newRig(i)
		if err != nil {
			eng.Close()
			return nil, err
		}
		cl.rigs[i] = r
	}
	return cl, nil
}

// Config returns the effective cluster configuration.
func (cl *Cluster) Config() ClusterConfig { return cl.cfg }

// Close releases the shared reconstruction pool.
func (cl *Cluster) Close() { cl.eng.Close() }

// RoundsDone returns the number of completed scheduling rounds.
func (cl *Cluster) RoundsDone() int { return cl.rounds }

// State returns patient p's cold-tier state (a copy).
func (cl *Cluster) State(p int) PatientState { return cl.states[p] }

// Result unfolds patient p's cold state into the flat engine's result
// shape. Nothing is retained per patient beyond the cold tier — the
// result is derived on demand, which is why the cluster has no
// []PatientResult array to budget. Shard is -1: a cluster patient has
// no fixed worker.
func (cl *Cluster) Result(p int) PatientResult {
	st := &cl.states[p]
	return st.result(p, cl.cfg.Fleet.Seed+int64(p), -1, float64(st.Rounds)*cl.cfg.SessionS)
}

// Mem returns the memory report with the runtime fields sampled now.
func (cl *Cluster) Mem() MemStats {
	m := cl.mem
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapInuseBytes = ms.HeapInuse
	m.HeapSysBytes = ms.HeapSys
	m.Goroutines = runtime.NumGoroutine()
	if m.Patients > 0 {
		m.ObservedBytesPerPatient = float64(ms.HeapInuse) / float64(m.Patients)
	}
	return m
}

// splitmix64 is the seed mixer for round derivation: deterministic,
// dependency-free, and a bijection on uint64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sessionSeed derives patient p's seed for one scheduling round. Round
// 0 is exactly the flat engine's Seed+p, so a one-round cluster is
// digest-identical to the flat fleet; later rounds mix the round index
// through splitmix64 so each slice sees fresh, reproducible randomness
// that depends only on (Seed, p, round) — never on topology or
// scheduling order.
func sessionSeed(base int64, p, round int) int64 {
	if round == 0 {
		return base + int64(p)
	}
	return int64(splitmix64(uint64(base+int64(p)) ^ uint64(round)*0x9e3779b97f4a7c15))
}

// foldDigest mixes one patient's digest into an order-free fold: each
// (patient, digest) pair maps through splitmix64 and the results XOR,
// so worker/group/cluster partial folds combine associatively and the
// fold is identical at any topology.
func foldDigest(p int, d uint64) uint64 {
	return splitmix64(d ^ splitmix64(uint64(p)))
}

// RunRound simulates SessionS seconds of every patient: each group's
// workers deal the group's block of patients round-robin, rehydrate the
// cold (and warm) tiers onto their rig, run one session, and fold the
// outcome back. Telemetry flushes once per worker per round and digest
// folds combine worker→group→cluster, so the fan-in at every node of
// the aggregation tree is bounded by the topology, not the population.
func (cl *Cluster) RunRound() (*RoundReport, error) {
	c := cl.cfg
	P := c.Fleet.Patients
	perGroup := (P + c.Groups - 1) / c.Groups
	round := cl.rounds
	groupFolds := make([]uint64, c.Groups)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for g := 0; g < c.Groups; g++ {
		lo := g * perGroup
		hi := lo + perGroup
		if hi > P {
			hi = P
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			workerFolds := make([]uint64, c.GroupShards)
			var (
				gwg  sync.WaitGroup
				gmu  sync.Mutex
				gerr error
			)
			for s := 0; s < c.GroupShards; s++ {
				gwg.Add(1)
				go func(s int) {
					defer gwg.Done()
					r := cl.rigs[g*c.GroupShards+s]
					var fb *telemetry.FleetBatch
					if tel := c.Fleet.Telemetry; tel != nil {
						fb = tel.Fleet.NewBatch(g*c.GroupShards + s)
					}
					fold := uint64(0)
					for p := lo + s; p < hi; p += c.GroupShards {
						seed := sessionSeed(c.Fleet.Seed, p, round)
						if err := cl.eng.runSession(r, &cl.states[p], p, seed, c.SessionS, cl.warm, fb); err != nil {
							gmu.Lock()
							if gerr == nil {
								gerr = err
							}
							gmu.Unlock()
							return
						}
						fold ^= foldDigest(p, cl.states[p].Digest)
					}
					fb.Flush()
					workerFolds[s] = fold
				}(s)
			}
			gwg.Wait()
			if gerr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = gerr
				}
				mu.Unlock()
				return
			}
			fold := uint64(0)
			for _, f := range workerFolds {
				fold ^= f
			}
			groupFolds[g] = fold
		}(g, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	cl.rounds++
	wall := time.Since(start).Seconds()
	cl.wallS += wall
	rr := &RoundReport{
		Round:       round,
		Patients:    P,
		WallSeconds: wall,
		SimSeconds:  float64(P) * c.SessionS,
	}
	for _, f := range groupFolds {
		rr.DigestFold ^= f
	}
	if wall > 0 {
		rr.RealTimeFactor = rr.SimSeconds / wall
	}
	if tel := c.Fleet.Telemetry; tel != nil {
		tel.Fleet.RTFMilli.Set(int64(rr.RealTimeFactor * 1000))
	}
	return rr, nil
}

// Run executes the configured rounds that have not run yet (all of
// them on a fresh cluster; the remainder after a checkpoint restore)
// and returns the aggregate report.
func (cl *Cluster) Run() (*ClusterReport, error) {
	for cl.rounds < cl.cfg.Rounds {
		if _, err := cl.RunRound(); err != nil {
			return nil, err
		}
	}
	return cl.Report(), nil
}

// Report folds the population's cold states into the aggregate report.
// The fold runs one goroutine per group over that group's block — the
// same bounded fan-in shape as the simulation itself.
func (cl *Cluster) Report() *ClusterReport {
	c := cl.cfg
	P := c.Fleet.Patients
	rep := &ClusterReport{
		Patients:    P,
		Rounds:      cl.rounds,
		SimSeconds:  float64(P) * float64(cl.rounds) * c.SessionS,
		WallSeconds: cl.wallS,
	}
	type partial struct {
		fold                                    uint64
		events, packets, delivered, lost, beats uint64
		radioJ, seSum, ppvSum, deliverySum      float64
		seN, ppvN                               int
	}
	parts := make([]partial, c.Groups)
	perGroup := (P + c.Groups - 1) / c.Groups
	var wg sync.WaitGroup
	for g := 0; g < c.Groups; g++ {
		lo := g * perGroup
		hi := lo + perGroup
		if hi > P {
			hi = P
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			pt := &parts[g]
			for p := lo; p < hi; p++ {
				st := &cl.states[p]
				pt.fold ^= foldDigest(p, st.Digest)
				pt.events += uint64(st.Events)
				pt.packets += uint64(st.Packets)
				pt.delivered += uint64(st.Delivered)
				pt.lost += uint64(st.Lost)
				pt.beats += uint64(st.Beats)
				pt.radioJ += st.RadioEnergyJ
				pt.deliverySum += st.DeliveryRatio()
				if se := st.Se(); !math.IsNaN(se) {
					pt.seSum += se
					pt.seN++
				}
				if ppv := st.PPV(); !math.IsNaN(ppv) {
					pt.ppvSum += ppv
					pt.ppvN++
				}
			}
		}(g, lo, hi)
	}
	wg.Wait()
	var seSum, ppvSum, deliverySum float64
	var seN, ppvN int
	for i := range parts {
		pt := &parts[i]
		rep.DigestFold ^= pt.fold
		rep.Events += pt.events
		rep.Packets += pt.packets
		rep.Delivered += pt.delivered
		rep.Lost += pt.lost
		rep.Beats += pt.beats
		rep.RadioEnergyJ += pt.radioJ
		seSum += pt.seSum
		ppvSum += pt.ppvSum
		deliverySum += pt.deliverySum
		seN += pt.seN
		ppvN += pt.ppvN
	}
	rep.MeanSe, rep.MeanPPV = math.NaN(), math.NaN()
	if seN > 0 {
		rep.MeanSe = seSum / float64(seN)
	}
	if ppvN > 0 {
		rep.MeanPPV = ppvSum / float64(ppvN)
	}
	if P > 0 {
		rep.MeanDelivery = deliverySum / float64(P)
	}
	if rep.WallSeconds > 0 {
		rep.RealTimeFactor = rep.SimSeconds / rep.WallSeconds
	}
	return rep
}

// VerifyPatient is the digest-drift detector: it replays patient p's
// entire history so far — every completed round, from a cold state, on
// a spare rig — and compares the replayed digest against the live cold
// tier. A mismatch means the pooled-rig/tiered-state machinery diverged
// from the pure per-patient computation, which is exactly the corruption
// a long soak must catch. Cost is RoundsDone×SessionS of simulation for
// one patient, so a soak can afford one verification per round.
func (cl *Cluster) VerifyPatient(p int) error {
	if p < 0 || p >= len(cl.states) {
		return fmt.Errorf("%w: patient %d out of range", ErrFleet, p)
	}
	if cl.verifyRig == nil {
		r, err := cl.eng.newRig(cl.cfg.Groups * cl.cfg.GroupShards)
		if err != nil {
			return err
		}
		cl.verifyRig = r
	}
	st := PatientState{Digest: fnvOffset64}
	var warm *warmStore
	if cl.warm != nil {
		warm = newWarmStoreAt(p, 1, cl.warm.leads, cl.warm.n)
	}
	rounds := int(cl.states[p].Rounds)
	for round := 0; round < rounds; round++ {
		seed := sessionSeed(cl.cfg.Fleet.Seed, p, round)
		if err := cl.eng.runSession(cl.verifyRig, &st, p, seed, cl.cfg.SessionS, warm, nil); err != nil {
			return err
		}
	}
	if st.Digest != cl.states[p].Digest {
		return fmt.Errorf("%w: patient %d digest drift: live %016x, replay %016x",
			ErrDrift, p, cl.states[p].Digest, st.Digest)
	}
	return nil
}

// Package biosig implements the multi-modal cardiac-parameter estimation
// of Section IV.C: a photoplethysmogram (PPG) model time-locked to the
// ECG, pulse-arrival-time (PAT) measurement, pulse-wave-velocity and
// blood-pressure estimation from PAT (ref [20]), and the noise-reduction
// techniques that exploit the time-locking of cardiac bio-signals to the
// ECG stimulus: ensemble averaging (EA) and the adaptive impulse
// correlated filter (AICF, refs [21][22][23]).
package biosig

import (
	"errors"
	"math"
	"math/rand"
)

// Errors returned by the biosig package.
var (
	ErrConfig = errors.New("biosig: invalid configuration")
	ErrNoData = errors.New("biosig: not enough data")
)

// PPGConfig parameterises PPG synthesis.
type PPGConfig struct {
	// Fs is the sampling rate in Hz.
	Fs float64
	// PathLength is the effective arterial path length in metres used by
	// the PWV relationship (default 0.65, heart-to-finger).
	PathLength float64
	// NoiseRMS is additive white noise on the PPG (default 0).
	NoiseRMS float64
	// Seed drives noise generation.
	Seed int64
}

func (c PPGConfig) withDefaults() (PPGConfig, error) {
	out := c
	if out.Fs <= 0 {
		return out, ErrConfig
	}
	if out.PathLength <= 0 {
		out.PathLength = 0.65
	}
	return out, nil
}

// PATForBP returns the pulse arrival time (seconds) corresponding to a
// systolic blood pressure (mmHg), inverting the Moens–Korteweg-style
// relation used in PAT-based BP estimation (ref [20]): the pulse-wave
// velocity grows with pressure as PWV = c0·exp(α·BP), and
// PAT = pathLength / PWV + PEP where PEP is the pre-ejection period.
func PATForBP(bp, pathLength float64) float64 {
	const (
		c0  = 1.2    // m/s at BP = 0 (model intercept)
		al  = 0.0115 // 1/mmHg
		pep = 0.06   // pre-ejection period, s
	)
	pwv := c0 * math.Exp(al*bp)
	return pathLength/pwv + pep
}

// BPForPAT inverts PATForBP.
func BPForPAT(pat, pathLength float64) float64 {
	const (
		c0  = 1.2
		al  = 0.0115
		pep = 0.06
	)
	tt := pat - pep
	if tt <= 0 {
		tt = 1e-3
	}
	pwv := pathLength / tt
	return math.Log(pwv/c0) / al
}

// PWVFromPAT converts a pulse arrival time to pulse-wave velocity given
// the arterial path length, after removing the pre-ejection period.
func PWVFromPAT(pat, pathLength float64) float64 {
	tt := pat - 0.06
	if tt <= 0 {
		tt = 1e-3
	}
	return pathLength / tt
}

// SynthesizePPG renders a PPG signal of n samples time-locked to the
// given ECG R-peak sample indices: each beat produces a systolic upstroke
// arriving PAT(bp[i]) seconds after its R peak, with a dicrotic secondary
// wave. bp supplies the per-beat systolic pressure (mmHg) driving the
// arrival time; pass a constant slice for stationary pressure. The
// returned onsets slice holds the exact pulse-foot sample of each beat
// (ground truth for PAT estimation).
func SynthesizePPG(n int, rPeaks []int, bp []float64, cfg PPGConfig) (ppg []float64, onsets []int, err error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(rPeaks) != len(bp) {
		return nil, nil, ErrConfig
	}
	ppg = make([]float64, n)
	rng := rand.New(rand.NewSource(c.Seed))
	for bi, r := range rPeaks {
		pat := PATForBP(bp[bi], c.PathLength)
		foot := r + int(pat*c.Fs+0.5)
		if foot >= n {
			continue
		}
		onsets = append(onsets, foot)
		// Systolic wave: fast rise, slower fall; dicrotic wave at +0.25 s.
		sysW := 0.09 * c.Fs // systolic width in samples
		dicW := 0.14 * c.Fs // dicrotic width
		dicDelay := 0.25 * c.Fs
		lo := foot
		hi := foot + int(0.7*c.Fs)
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			t := float64(i - foot)
			// Asymmetric systolic pulse: gamma-like rise.
			v := 0.0
			if t >= 0 {
				v = (t / sysW) * math.Exp(1-t/sysW)
			}
			d := t - dicDelay
			dic := 0.0
			if d > -3*dicW {
				dic = 0.25 * math.Exp(-d*d/(2*dicW*dicW))
			}
			ppg[i] += v + dic
		}
	}
	if c.NoiseRMS > 0 {
		for i := range ppg {
			ppg[i] += c.NoiseRMS * rng.NormFloat64()
		}
	}
	return ppg, onsets, nil
}

// DetectPulseFeet locates the foot (onset) of each PPG pulse following an
// ECG R peak: the minimum preceding the steepest upslope within the
// search window after the R peak. Returns one foot index per R peak (or
// -1 when the window is out of range).
func DetectPulseFeet(ppg []float64, rPeaks []int, fs float64) []int {
	out := make([]int, len(rPeaks))
	winLo, winHi := int(0.10*fs), int(0.55*fs)
	for bi, r := range rPeaks {
		out[bi] = -1
		lo, hi := r+winLo, r+winHi
		if lo < 1 || hi >= len(ppg) {
			continue
		}
		// Steepest upslope in the window.
		best, bestIdx := 0.0, -1
		for i := lo; i < hi; i++ {
			if d := ppg[i] - ppg[i-1]; d > best {
				best, bestIdx = d, i
			}
		}
		if bestIdx < 0 {
			continue
		}
		// Walk back to the local minimum (the pulse foot).
		f := bestIdx
		for f > lo && ppg[f-1] <= ppg[f] {
			f--
		}
		out[bi] = f
	}
	return out
}

// EstimatePAT returns the per-beat pulse arrival time in seconds from
// R peaks and detected pulse feet (skipping undetected feet).
func EstimatePAT(rPeaks, feet []int, fs float64) []float64 {
	var out []float64
	for i := range rPeaks {
		if i >= len(feet) || feet[i] < 0 {
			continue
		}
		out = append(out, float64(feet[i]-rPeaks[i])/fs)
	}
	return out
}

// BPCalibration is a two-point linear calibration BP = a + b·(1/PAT)
// fitted against reference cuff measurements, the standard clinical
// procedure for PAT-based BP monitors (ref [20] compares exactly this
// against a cuff).
type BPCalibration struct {
	A, B float64
}

// FitBPCalibration least-squares fits the calibration from paired
// (PAT, reference BP) samples. At least two distinct PATs are required.
func FitBPCalibration(pats, bps []float64) (BPCalibration, error) {
	if len(pats) != len(bps) || len(pats) < 2 {
		return BPCalibration{}, ErrNoData
	}
	// Regress BP on x = 1/PAT.
	var sx, sy, sxx, sxy float64
	n := float64(len(pats))
	for i := range pats {
		if pats[i] <= 0 {
			return BPCalibration{}, ErrNoData
		}
		x := 1 / pats[i]
		sx += x
		sy += bps[i]
		sxx += x * x
		sxy += x * bps[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return BPCalibration{}, ErrNoData
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return BPCalibration{A: a, B: b}, nil
}

// Estimate returns the calibrated BP for a PAT measurement.
func (c BPCalibration) Estimate(pat float64) float64 {
	if pat <= 0 {
		return c.A
	}
	return c.A + c.B/pat
}

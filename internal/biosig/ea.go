package biosig

// This file implements the two ECG-time-locked noise-reduction methods of
// Section IV.C. "Most cardiac bio-signals originate from the response to
// the bioelectric stimuli reflected in the ECG" and are therefore
// time-locked to it; noise is not. Ensemble averaging (EA) exploits this
// by averaging beat-aligned windows — at the cost of losing beat-to-beat
// variation — while the adaptive impulse correlated filter (AICF,
// refs [22][23]) tracks dynamic changes with an LMS-adapted template.

// EnsembleAverage aligns windows of length w starting `offset` samples
// after each event index (typically ECG R peaks) and returns their mean.
// Windows that do not fit inside the signal are skipped; nil is returned
// when no window fits.
func EnsembleAverage(x []float64, events []int, offset, w int) []float64 {
	if w <= 0 {
		return nil
	}
	sum := make([]float64, w)
	count := 0
	for _, e := range events {
		lo := e + offset
		if lo < 0 || lo+w > len(x) {
			continue
		}
		for i := 0; i < w; i++ {
			sum[i] += x[lo+i]
		}
		count++
	}
	if count == 0 {
		return nil
	}
	inv := 1 / float64(count)
	for i := range sum {
		sum[i] *= inv
	}
	return sum
}

// AICF is the adaptive impulse correlated filter of Laguna et al.
// (ref [22]): a transversal filter whose reference input is an impulse
// train at the event (beat) instants. Because the reference is an
// impulse, the LMS weight update reduces to a per-beat exponential
// template update
//
//	T ← T + μ·(x_beat − T)
//
// which converges to the ensemble average for stationary signals but,
// unlike EA, tracks morphology changes with time constant ≈ 1/μ beats.
type AICF struct {
	mu       float64
	offset   int
	template []float64
	beats    int
}

// NewAICF creates a filter with template length w starting `offset`
// samples after each event, adapting with step mu in (0, 1].
func NewAICF(w, offset int, mu float64) (*AICF, error) {
	if w <= 0 || mu <= 0 || mu > 1 {
		return nil, ErrConfig
	}
	return &AICF{mu: mu, offset: offset, template: make([]float64, w)}, nil
}

// Template returns a copy of the current template estimate.
func (f *AICF) Template() []float64 {
	out := make([]float64, len(f.template))
	copy(out, f.template)
	return out
}

// Beats returns how many beat windows have been absorbed.
func (f *AICF) Beats() int { return f.beats }

// Update absorbs the beat window at event e from x and returns the
// post-update template (the filter's denoised output for this beat), or
// nil when the window does not fit.
func (f *AICF) Update(x []float64, e int) []float64 {
	lo := e + f.offset
	w := len(f.template)
	if lo < 0 || lo+w > len(x) {
		return nil
	}
	if f.beats == 0 {
		copy(f.template, x[lo:lo+w])
	} else {
		for i := 0; i < w; i++ {
			f.template[i] += f.mu * (x[lo+i] - f.template[i])
		}
	}
	f.beats++
	return f.Template()
}

// Filter runs the AICF over all events in order and returns the denoised
// beat windows (one per event whose window fits).
func (f *AICF) Filter(x []float64, events []int) [][]float64 {
	var out [][]float64
	for _, e := range events {
		if t := f.Update(x, e); t != nil {
			out = append(out, t)
		}
	}
	return out
}

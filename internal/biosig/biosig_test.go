package biosig

import (
	"math"
	"math/rand"
	"testing"

	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

func TestPATBPInverses(t *testing.T) {
	for _, bp := range []float64{80, 100, 120, 140, 160} {
		pat := PATForBP(bp, 0.65)
		back := BPForPAT(pat, 0.65)
		if math.Abs(back-bp) > 0.01 {
			t.Errorf("BPForPAT(PATForBP(%v)) = %v", bp, back)
		}
	}
}

func TestPATDecreasesWithBP(t *testing.T) {
	prev := math.Inf(1)
	for bp := 80.0; bp <= 180; bp += 10 {
		pat := PATForBP(bp, 0.65)
		if pat >= prev {
			t.Fatalf("PAT should fall with BP: %v at %v", pat, bp)
		}
		if pat < 0.06 {
			t.Fatalf("PAT %v below pre-ejection period", pat)
		}
		prev = pat
	}
}

func TestPWVFromPAT(t *testing.T) {
	pat := PATForBP(120, 0.65)
	pwv := PWVFromPAT(pat, 0.65)
	want := 1.2 * math.Exp(0.0115*120)
	if math.Abs(pwv-want) > 0.01 {
		t.Errorf("PWV = %v, want %v", pwv, want)
	}
	// Degenerate PAT below PEP clamps rather than exploding.
	if v := PWVFromPAT(0.01, 0.65); math.IsInf(v, 0) || v <= 0 {
		t.Errorf("degenerate PAT gave PWV %v", v)
	}
}

func TestSynthesizePPGValidation(t *testing.T) {
	if _, _, err := SynthesizePPG(100, []int{1}, []float64{100}, PPGConfig{}); err != ErrConfig {
		t.Error("missing Fs should fail")
	}
	if _, _, err := SynthesizePPG(100, []int{1, 2}, []float64{100}, PPGConfig{Fs: 256}); err != ErrConfig {
		t.Error("mismatched rPeaks/bp should fail")
	}
}

func TestSynthesizePPGOnsets(t *testing.T) {
	fs := 256.0
	rPeaks := []int{200, 500, 800}
	bp := []float64{120, 120, 120}
	ppg, onsets, err := SynthesizePPG(1200, rPeaks, bp, PPGConfig{Fs: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(onsets) != 3 {
		t.Fatalf("got %d onsets", len(onsets))
	}
	wantPAT := PATForBP(120, 0.65)
	for i, o := range onsets {
		gotPAT := float64(o-rPeaks[i]) / fs
		if math.Abs(gotPAT-wantPAT) > 2.0/fs {
			t.Errorf("onset %d PAT %v, want %v", i, gotPAT, wantPAT)
		}
	}
	// Signal rises after each onset.
	for _, o := range onsets {
		if ppg[o+10] <= ppg[o] {
			t.Errorf("PPG does not rise after onset %d", o)
		}
	}
}

func TestDetectPulseFeetRecoversPAT(t *testing.T) {
	fs := 256.0
	rec := ecg.Generate(ecg.Config{Seed: 3, Duration: 30})
	rPeaks := rec.RPeaks()
	bp := make([]float64, len(rPeaks))
	for i := range bp {
		bp[i] = 125
	}
	ppg, _, err := SynthesizePPG(rec.Len(), rPeaks, bp, PPGConfig{Fs: fs, NoiseRMS: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	feet := DetectPulseFeet(ppg, rPeaks, fs)
	pats := EstimatePAT(rPeaks, feet, fs)
	if len(pats) < len(rPeaks)*8/10 {
		t.Fatalf("only %d/%d PATs measured", len(pats), len(rPeaks))
	}
	truth := PATForBP(125, 0.65)
	if err := math.Abs(dsp.Mean(pats) - truth); err > 0.015 {
		t.Errorf("mean PAT error %v s", err)
	}
}

func TestBPEstimationEndToEnd(t *testing.T) {
	// Forward-synthesize PPG under a BP ramp, calibrate on the first
	// half, and track the ramp on the second half.
	fs := 256.0
	rec := ecg.Generate(ecg.Config{Seed: 6, Duration: 120})
	rPeaks := rec.RPeaks()
	bp := make([]float64, len(rPeaks))
	for i := range bp {
		bp[i] = 110 + 30*float64(i)/float64(len(bp)) // 110→140 mmHg drift
	}
	ppg, _, err := SynthesizePPG(rec.Len(), rPeaks, bp, PPGConfig{Fs: fs, NoiseRMS: 0.005, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	feet := DetectPulseFeet(ppg, rPeaks, fs)
	half := len(rPeaks) / 2
	var calPAT, calBP, tstPAT, tstBP []float64
	for i, f := range feet {
		if f < 0 {
			continue
		}
		pat := float64(f-rPeaks[i]) / fs
		if i < half {
			calPAT = append(calPAT, pat)
			calBP = append(calBP, bp[i])
		} else {
			tstPAT = append(tstPAT, pat)
			tstBP = append(tstBP, bp[i])
		}
	}
	cal, err := FitBPCalibration(calPAT, calBP)
	if err != nil {
		t.Fatal(err)
	}
	var absErr float64
	for i := range tstPAT {
		absErr += math.Abs(cal.Estimate(tstPAT[i]) - tstBP[i])
	}
	absErr /= float64(len(tstPAT))
	// AAMI-style acceptability is ~5 mmHg mean error; the clean model
	// should do much better.
	if absErr > 5 {
		t.Errorf("mean BP estimation error %.2f mmHg", absErr)
	}
}

func TestFitBPCalibrationValidation(t *testing.T) {
	if _, err := FitBPCalibration([]float64{0.2}, []float64{120}); err != ErrNoData {
		t.Error("single point should fail")
	}
	if _, err := FitBPCalibration([]float64{0.2, 0.2}, []float64{120, 120}); err != ErrNoData {
		t.Error("identical PATs should fail")
	}
	if _, err := FitBPCalibration([]float64{0.2, -0.1}, []float64{120, 130}); err != ErrNoData {
		t.Error("non-positive PAT should fail")
	}
	if c := (BPCalibration{A: 100, B: 2}); c.Estimate(0) != 100 {
		t.Error("degenerate PAT should return intercept")
	}
}

func TestEnsembleAverageReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fs := 256.0
	n := int(60 * fs)
	// Template pulse repeated at known events + noise.
	template := make([]float64, 64)
	for i := range template {
		template[i] = math.Sin(math.Pi * float64(i) / 64)
	}
	x := make([]float64, n)
	var events []int
	for e := 100; e+64 < n; e += 230 {
		for i := range template {
			x[e+i] += template[i]
		}
		events = append(events, e)
	}
	for i := range x {
		x[i] += 0.4 * rng.NormFloat64()
	}
	avg := EnsembleAverage(x, events, 0, 64)
	if avg == nil {
		t.Fatal("no average produced")
	}
	if rmse := dsp.RMSE(template, avg); rmse > 0.1 {
		t.Errorf("EA residual %v, want < 0.1 (noise RMS 0.4, %d beats)", rmse, len(events))
	}
	if EnsembleAverage(x, []int{n + 5}, 0, 64) != nil {
		t.Error("out-of-range events should give nil")
	}
	if EnsembleAverage(x, events, 0, 0) != nil {
		t.Error("zero window should give nil")
	}
}

func TestAICFValidation(t *testing.T) {
	if _, err := NewAICF(0, 0, 0.1); err != ErrConfig {
		t.Error("zero window should fail")
	}
	if _, err := NewAICF(10, 0, 0); err != ErrConfig {
		t.Error("zero mu should fail")
	}
	if _, err := NewAICF(10, 0, 1.5); err != ErrConfig {
		t.Error("mu > 1 should fail")
	}
}

func TestAICFConvergesToTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	template := make([]float64, 32)
	for i := range template {
		template[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	n := 20000
	x := make([]float64, n)
	var events []int
	for e := 50; e+32 < n; e += 200 {
		for i := range template {
			x[e+i] += template[i]
		}
		events = append(events, e)
	}
	for i := range x {
		x[i] += 0.3 * rng.NormFloat64()
	}
	f, err := NewAICF(32, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	outs := f.Filter(x, events)
	if len(outs) != len(events) {
		t.Fatalf("got %d outputs for %d events", len(outs), len(events))
	}
	if f.Beats() != len(events) {
		t.Error("beat counter wrong")
	}
	if rmse := dsp.RMSE(template, outs[len(outs)-1]); rmse > 0.15 {
		t.Errorf("AICF residual %v after %d beats", rmse, len(events))
	}
}

func TestAICFTracksMorphologyChange(t *testing.T) {
	// The advantage over EA: halve the amplitude midway; the AICF
	// template must follow while the global EA stays in between.
	n := 40000
	x := make([]float64, n)
	var events []int
	amp := 1.0
	count := 0
	for e := 50; e+32 < n; e += 200 {
		if count == 100 {
			amp = 0.5
		}
		for i := 0; i < 32; i++ {
			x[e+i] += amp * math.Sin(2*math.Pi*float64(i)/32)
		}
		events = append(events, e)
		count++
	}
	f, _ := NewAICF(32, 0, 0.15)
	outs := f.Filter(x, events)
	lastPeak := 0.0
	for _, v := range outs[len(outs)-1] {
		if v > lastPeak {
			lastPeak = v
		}
	}
	if math.Abs(lastPeak-0.5) > 0.05 {
		t.Errorf("AICF final template peak %v, want ~0.5 (tracked change)", lastPeak)
	}
	ea := EnsembleAverage(x, events, 0, 32)
	eaPeak := 0.0
	for _, v := range ea {
		if v > eaPeak {
			eaPeak = v
		}
	}
	if eaPeak < 0.6 || eaPeak > 0.95 {
		t.Errorf("EA peak %v should sit between the two amplitudes (lost dynamics)", eaPeak)
	}
	// Update with non-fitting event returns nil.
	if f.Update(x, n) != nil {
		t.Error("out-of-range update should return nil")
	}
}

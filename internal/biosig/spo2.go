package biosig

import (
	"math"
	"math/rand"
)

// This file models pulse oximetry, the second vital sign the paper's
// introduction names ("cardiac parameters of patients, such as
// electrocardiogram (ECG) and pulse oximetry (SpO2)"). A pulse oximeter
// drives the finger probe at two wavelengths; oxygenated and
// deoxygenated haemoglobin absorb them differently, so the arterial
// oxygen saturation follows from the "ratio of ratios"
//
//	R = (AC_red/DC_red) / (AC_ir/DC_ir)
//
// through the standard empirical calibration SpO2 ≈ 110 − 25·R.

// SpO2CalibA and SpO2CalibB are the empirical calibration constants of
// the classic ratio-of-ratios curve SpO2 = A − B·R.
const (
	SpO2CalibA = 110.0
	SpO2CalibB = 25.0
)

// RatioForSpO2 inverts the calibration: the ratio-of-ratios a probe
// would measure at the given saturation (percent).
func RatioForSpO2(spo2 float64) float64 {
	return (SpO2CalibA - spo2) / SpO2CalibB
}

// SpO2ForRatio applies the calibration curve, clamped to [0, 100].
func SpO2ForRatio(r float64) float64 {
	s := SpO2CalibA - SpO2CalibB*r
	if s > 100 {
		s = 100
	}
	if s < 0 {
		s = 0
	}
	return s
}

// OximeterConfig parameterises the two-wavelength probe model.
type OximeterConfig struct {
	// Fs is the sampling rate in Hz.
	Fs float64
	// DCRed and DCIR are the baseline (non-pulsatile) absorption levels.
	// Defaults 1.0 each.
	DCRed, DCIR float64
	// PerfusionIR is the IR perfusion index AC/DC (default 0.02, a
	// typical finger value).
	PerfusionIR float64
	// NoiseRMS is additive noise on both channels.
	NoiseRMS float64
	// Seed drives noise generation.
	Seed int64
}

func (c OximeterConfig) withDefaults() (OximeterConfig, error) {
	out := c
	if out.Fs <= 0 {
		return out, ErrConfig
	}
	if out.DCRed <= 0 {
		out.DCRed = 1
	}
	if out.DCIR <= 0 {
		out.DCIR = 1
	}
	if out.PerfusionIR <= 0 {
		out.PerfusionIR = 0.02
	}
	return out, nil
}

// SynthesizeOximeter renders the red and infrared PPG channels of a
// probe on a subject with the given per-beat SpO2 values, time-locked to
// the ECG R peaks like SynthesizePPG. Channel values are light
// intensities: DC level minus the pulsatile absorption.
func SynthesizeOximeter(n int, rPeaks []int, spo2 []float64, cfg OximeterConfig) (red, ir []float64, err error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if len(rPeaks) != len(spo2) {
		return nil, nil, ErrConfig
	}
	// Unit-amplitude pulse waveform from the PPG model at fixed PAT.
	bp := make([]float64, len(rPeaks))
	for i := range bp {
		bp[i] = 120
	}
	pulse, _, err := SynthesizePPG(n, rPeaks, bp, PPGConfig{Fs: c.Fs})
	if err != nil {
		return nil, nil, err
	}
	// Normalise the pulse to unit peak so perfusion sets the AC size.
	peak := 0.0
	for _, v := range pulse {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		peak = 1
	}
	red = make([]float64, n)
	ir = make([]float64, n)
	rng := rand.New(rand.NewSource(c.Seed))
	// Per-sample SpO2 by holding each beat's value until the next beat.
	beat := 0
	for i := 0; i < n; i++ {
		for beat+1 < len(rPeaks) && i >= rPeaks[beat+1] {
			beat++
		}
		ratio := RatioForSpO2(spo2[beat])
		acIR := c.PerfusionIR * c.DCIR
		acRed := ratio * c.PerfusionIR * c.DCRed
		p := pulse[i] / peak
		ir[i] = c.DCIR - acIR*p + c.NoiseRMS*rng.NormFloat64()
		red[i] = c.DCRed - acRed*p + c.NoiseRMS*rng.NormFloat64()
	}
	return red, ir, nil
}

// EstimateSpO2 computes the saturation over one analysis window of the
// two channels by the ratio-of-ratios method: AC as the RMS of the
// mean-removed channel, DC as its mean. Returns the estimate and the
// measured ratio. Degenerate windows (no pulsation) return SpO2 = 0.
func EstimateSpO2(red, ir []float64) (spo2, ratio float64) {
	if len(red) != len(ir) || len(red) == 0 {
		return 0, 0
	}
	acDC := func(x []float64) (ac, dc float64) {
		for _, v := range x {
			dc += v
		}
		dc /= float64(len(x))
		for _, v := range x {
			d := v - dc
			ac += d * d
		}
		ac = math.Sqrt(ac / float64(len(x)))
		return ac, dc
	}
	acR, dcR := acDC(red)
	acI, dcI := acDC(ir)
	if dcR <= 0 || dcI <= 0 || acI == 0 {
		return 0, 0
	}
	ratio = (acR / dcR) / (acI / dcI)
	return SpO2ForRatio(ratio), ratio
}

// EstimateSpO2Windows slides a window of `win` samples with hop `hop`
// over the channels and returns one SpO2 estimate per window.
func EstimateSpO2Windows(red, ir []float64, win, hop int) []float64 {
	if win <= 0 || hop <= 0 || len(red) != len(ir) {
		return nil
	}
	var out []float64
	for start := 0; start+win <= len(red); start += hop {
		s, _ := EstimateSpO2(red[start:start+win], ir[start:start+win])
		out = append(out, s)
	}
	return out
}

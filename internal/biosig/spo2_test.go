package biosig

import (
	"math"
	"testing"

	"wbsn/internal/ecg"
)

func TestSpO2CalibrationInverses(t *testing.T) {
	for _, s := range []float64{85, 90, 95, 98, 100} {
		r := RatioForSpO2(s)
		back := SpO2ForRatio(r)
		if math.Abs(back-s) > 1e-9 {
			t.Errorf("round trip of %v = %v", s, back)
		}
	}
	if SpO2ForRatio(-1) != 100 {
		t.Error("negative ratio should clamp to 100")
	}
	if SpO2ForRatio(10) != 0 {
		t.Error("huge ratio should clamp to 0")
	}
}

func TestSynthesizeOximeterValidation(t *testing.T) {
	if _, _, err := SynthesizeOximeter(100, []int{1}, []float64{98}, OximeterConfig{}); err != ErrConfig {
		t.Error("missing Fs should fail")
	}
	if _, _, err := SynthesizeOximeter(100, []int{1, 2}, []float64{98}, OximeterConfig{Fs: 256}); err != ErrConfig {
		t.Error("length mismatch should fail")
	}
}

func TestSpO2RoundTripThroughProbe(t *testing.T) {
	fs := 256.0
	rec := ecg.Generate(ecg.Config{Seed: 12, Duration: 60})
	rPeaks := rec.RPeaks()
	for _, truth := range []float64{85, 92, 98} {
		spo2 := make([]float64, len(rPeaks))
		for i := range spo2 {
			spo2[i] = truth
		}
		red, ir, err := SynthesizeOximeter(rec.Len(), rPeaks, spo2, OximeterConfig{Fs: fs, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Skip the lead-in before the first pulse.
		lo := rPeaks[0] + 100
		est, _ := EstimateSpO2(red[lo:], ir[lo:])
		if math.Abs(est-truth) > 1.5 {
			t.Errorf("SpO2 %v estimated as %.2f", truth, est)
		}
	}
}

func TestSpO2TracksDesaturation(t *testing.T) {
	// A desaturation event (e.g. apnea in the sleep scenario): windowed
	// estimates must follow the drop.
	fs := 256.0
	rec := ecg.Generate(ecg.Config{Seed: 13, Duration: 120})
	rPeaks := rec.RPeaks()
	spo2 := make([]float64, len(rPeaks))
	for i := range spo2 {
		if i < len(spo2)/2 {
			spo2[i] = 98
		} else {
			spo2[i] = 88
		}
	}
	red, ir, err := SynthesizeOximeter(rec.Len(), rPeaks, spo2, OximeterConfig{Fs: fs, NoiseRMS: 1e-4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	win, hop := int(10*fs), int(5*fs)
	ests := EstimateSpO2Windows(red, ir, win, hop)
	if len(ests) < 5 {
		t.Fatalf("only %d windows", len(ests))
	}
	first := ests[1] // skip the lead-in window
	last := ests[len(ests)-1]
	if math.Abs(first-98) > 2 {
		t.Errorf("pre-event SpO2 %.2f, want ~98", first)
	}
	if math.Abs(last-88) > 2 {
		t.Errorf("post-event SpO2 %.2f, want ~88", last)
	}
	if !(last < first-5) {
		t.Errorf("desaturation not tracked: %.1f -> %.1f", first, last)
	}
}

func TestEstimateSpO2Degenerate(t *testing.T) {
	if s, _ := EstimateSpO2(nil, nil); s != 0 {
		t.Error("empty channels should give 0")
	}
	if s, _ := EstimateSpO2([]float64{1}, []float64{1, 2}); s != 0 {
		t.Error("mismatched channels should give 0")
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 1
	}
	if s, _ := EstimateSpO2(flat, flat); s != 0 {
		t.Error("no pulsation should give 0")
	}
	if EstimateSpO2Windows(flat, flat, 0, 5) != nil {
		t.Error("bad window params should give nil")
	}
}

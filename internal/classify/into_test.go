package classify

import (
	"math/rand"
	"testing"
)

func TestExtractIntoMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	w := DefaultBeatWindow(256)
	var buf []float64
	for _, r := range []int{w.Before, 500, 1000, len(x) - w.After} {
		want := w.Extract(x, r)
		got := w.ExtractInto(x, r, buf)
		if (got == nil) != (want == nil) {
			t.Fatalf("r=%d: nil mismatch", r)
		}
		if got == nil {
			continue
		}
		buf = got
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("r=%d sample %d: %v != %v", r, i, got[i], want[i])
			}
		}
	}
	// Out-of-range window: nil result, scratch untouched for next beat.
	if got := w.ExtractInto(x, 0, buf); got != nil {
		t.Fatal("window before signal start should not fit")
	}
	if a := testing.AllocsPerRun(20, func() {
		buf = w.ExtractInto(x, 700, buf)
	}); a > 0 {
		t.Fatalf("warm ExtractInto allocates %.0f times", a)
	}
}

func TestProjectIntoMatchesProject(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rp, err := NewRPMatrix(16, 166, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 166)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := rp.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	var z []float64
	z, err = rp.ProjectInto(x, z)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("feature %d: %v != %v", i, z[i], want[i])
		}
	}
	if _, err := rp.ProjectInto(x[:10], z); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if a := testing.AllocsPerRun(20, func() {
		z, _ = rp.ProjectInto(x, z)
	}); a > 0 {
		t.Fatalf("warm ProjectInto allocates %.0f times", a)
	}
}

// TestPredictProjectedAllocFree pins the hot prediction path: with the
// membership map folded into the argmax, classifying a projected vector
// performs zero allocations.
func TestPredictProjectedAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rp, err := NewRPMatrix(8, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[int][][]float64{}
	for label := 0; label < 3; label++ {
		for s := 0; s < 6; s++ {
			v := make([]float64, 8)
			for i := range v {
				v[i] = float64(label) + 0.1*rng.NormFloat64()
			}
			samples[label] = append(samples[label], v)
		}
	}
	cl, err := Train(rp, samples, TrainConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cl.UseLinExp = true
	z := samples[1][0]
	label, _, err := cl.PredictProjected(z)
	if err != nil {
		t.Fatal(err)
	}
	// The map-based Memberships path must agree with the folded argmax.
	mem := cl.Memberships(z)
	bestLabel, bestVal := cl.Classes()[0], -1.0
	for _, l := range cl.Classes() {
		if mem[l] > bestVal {
			bestLabel, bestVal = l, mem[l]
		}
	}
	if bestVal > 0 && label != bestLabel {
		t.Fatalf("PredictProjected label %d != Memberships argmax %d", label, bestLabel)
	}
	if a := testing.AllocsPerRun(50, func() {
		if _, _, err := cl.PredictProjected(z); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Fatalf("PredictProjected allocates %.0f times", a)
	}
}

package classify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wbsn/internal/ecg"
	"wbsn/internal/fixedpt"
)

func TestNewRPMatrixValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRPMatrix(0, 10, rng); err != ErrRPDims {
		t.Error("k=0 should fail")
	}
	if _, err := NewRPMatrix(10, 0, rng); err != ErrRPDims {
		t.Error("n=0 should fail")
	}
}

func TestRPMatrixEntryDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewRPMatrix(32, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for r := 0; r < m.K(); r++ {
		for c := 0; c < m.N(); c++ {
			counts[m.entry(r, c)]++
		}
	}
	total := 32 * 128
	// Achlioptas: P(+1)=P(−1)=1/6, P(0)=2/3.
	fPlus := float64(counts[1]) / float64(total)
	fMinus := float64(counts[-1]) / float64(total)
	fZero := float64(counts[0]) / float64(total)
	if math.Abs(fPlus-1.0/6) > 0.03 || math.Abs(fMinus-1.0/6) > 0.03 || math.Abs(fZero-2.0/3) > 0.04 {
		t.Errorf("entry distribution off: +1=%.3f −1=%.3f 0=%.3f", fPlus, fMinus, fZero)
	}
}

func TestRPMatrixMemoryPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewRPMatrix(16, 166, rng) // the paper's 7.2 kB regime is this scale
	packed := m.MemoryBytes()
	unpacked := 16 * 166 * 8 // float64 storage
	if packed*16 > unpacked {
		t.Errorf("2-bit packing should be ≥16x smaller: %d vs %d", packed, unpacked)
	}
}

// Property: projection approximately preserves distances
// (Johnson–Lindenstrauss). With k=64 the distortion of most pairs stays
// within ~50%.
func TestRPJohnsonLindenstrauss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k, n := 64, 256
	m, _ := NewRPMatrix(k, n, rng)
	within := 0
	trials := 60
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		za, err := m.Project(a)
		if err != nil {
			t.Fatal(err)
		}
		zb, _ := m.Project(b)
		dOrig := math.Sqrt(sqDist(a, b))
		dProj := math.Sqrt(sqDist(za, zb))
		ratio := dProj / dOrig
		if ratio > 0.5 && ratio < 1.5 {
			within++
		}
	}
	if within < trials*8/10 {
		t.Errorf("only %d/%d pairs within 50%% distortion", within, trials)
	}
}

func TestProjectRejectsBadLength(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewRPMatrix(8, 32, rng)
	if _, err := m.Project(make([]float64, 31)); err != ErrBadInput {
		t.Error("wrong input length should fail")
	}
	if _, err := m.ProjectQ15(make([]fixedpt.Q15, 31)); err != ErrBadInput {
		t.Error("wrong Q15 input length should fail")
	}
}

func TestProjectQ15MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := NewRPMatrix(16, 128, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 128)
		for i := range x {
			x[i] = r.Float64()*0.2 - 0.1 // keep projections in Q15 range
		}
		zf, err := m.Project(x)
		if err != nil {
			return false
		}
		zq, err := m.ProjectQ15(fixedpt.FromSlice(x))
		if err != nil {
			return false
		}
		for i := range zf {
			if math.Abs(zq[i].Float()-zf[i]) > 0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAddsPerProjectionMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := NewRPMatrix(16, 300, rng)
	adds := m.AddsPerProjection()
	expect := float64(16*300) / 3 // 1/3 of entries non-zero
	if math.Abs(float64(adds)-expect) > expect*0.15 {
		t.Errorf("AddsPerProjection = %d, expected about %.0f", adds, expect)
	}
}

func TestBeatWindowExtract(t *testing.T) {
	fs := 256.0
	w := DefaultBeatWindow(fs)
	if w.Len() != w.Before+w.After {
		t.Error("Len inconsistent")
	}
	x := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i%100) / 50
	}
	if w.Extract(x, 10) != nil {
		t.Error("window off the left edge should return nil")
	}
	if w.Extract(x, 999) != nil {
		t.Error("window off the right edge should return nil")
	}
	beat := w.Extract(x, 500)
	if beat == nil || len(beat) != w.Len() {
		t.Fatal("valid window extraction failed")
	}
	// Normalised: zero mean, peak |amplitude| 1.
	mean, peak := 0.0, 0.0
	for _, v := range beat {
		mean += v
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	mean /= float64(len(beat))
	if math.Abs(mean) > 1e-9 {
		t.Errorf("extracted beat mean = %v", mean)
	}
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("extracted beat peak = %v", peak)
	}
	// All-zero segment stays zero without dividing by zero.
	flat := w.Extract(make([]float64, 1000), 500)
	for _, v := range flat {
		if v != 0 {
			t.Error("flat window should stay zero")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rp, _ := NewRPMatrix(4, 16, rng)
	if _, err := Train(rp, nil, TrainConfig{}); err != ErrNoSamples {
		t.Error("empty sample map should fail")
	}
	if _, err := Train(rp, map[int][][]float64{1: {}}, TrainConfig{}); err != ErrNoSamples {
		t.Error("class with no samples should fail")
	}
}

func TestClassifierSeparatesGaussianBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rp, _ := NewRPMatrix(4, 16, rng)
	mk := func(center float64, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			v := make([]float64, 4)
			for j := range v {
				v[j] = center + 0.05*rng.NormFloat64()
			}
			out[i] = v
		}
		return out
	}
	samples := map[int][][]float64{0: mk(0, 40), 1: mk(1, 40), 2: mk(-1, 40)}
	cl, err := Train(rp, samples, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Classes(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Classes() = %v", got)
	}
	for label, center := range map[int]float64{0: 0, 1: 1, 2: -1} {
		z := []float64{center, center, center, center}
		pred, mem, err := cl.PredictProjected(z)
		if err != nil {
			t.Fatal(err)
		}
		if pred != label {
			t.Errorf("blob at %v predicted %d, want %d", center, pred, label)
		}
		if mem <= 0 || mem > 1 {
			t.Errorf("membership %v out of (0,1]", mem)
		}
	}
}

func TestPredictOnUntrained(t *testing.T) {
	cl := &Classifier{}
	if _, _, err := cl.PredictProjected([]float64{1}); err != ErrNoturn {
		t.Error("untrained classifier should refuse to predict")
	}
}

func TestLinExpClassifierAgreesWithExact(t *testing.T) {
	// Section IV.A: the 4-segment linearization achieves close-to-optimal
	// classification. Verify the two kernel paths agree on nearly all
	// test beats.
	recs := ecg.GenerateSet(ecg.Config{Duration: 60, Rhythm: ecg.RhythmConfig{PVCRate: 0.1}}, 70, 3)
	fs := 256.0
	w := DefaultBeatWindow(fs)
	rng := rand.New(rand.NewSource(10))
	rp, _ := NewRPMatrix(16, w.Len(), rng)
	ds, err := BuildDataset(recs, 0, w, rp)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.6)
	cl, err := Train(rp, train.ByClass, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for _, vecs := range test.ByClass {
		for _, z := range vecs {
			cl.UseLinExp = false
			pExact, _, _ := cl.PredictProjected(z)
			cl.UseLinExp = true
			pLin, _, _ := cl.PredictProjected(z)
			if pExact == pLin {
				agree++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no test beats")
	}
	if float64(agree)/float64(total) < 0.97 {
		t.Errorf("linearized kernel agrees on %d/%d beats, want >= 97%%", agree, total)
	}
}

func TestEndToEndHeartbeatClassification(t *testing.T) {
	// The RP-CLASS pipeline on synthetic beats with ectopy: accuracy must
	// clear 90% (ref [14] reports comparable figures on MIT-BIH).
	recs := ecg.GenerateSet(ecg.Config{
		Duration: 90,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.1, APBRate: 0.06},
		Noise:    ecg.NoiseConfig{EMG: 0.02},
	}, 42, 4)
	fs := 256.0
	w := DefaultBeatWindow(fs)
	rng := rand.New(rand.NewSource(11))
	rp, _ := NewRPMatrix(16, w.Len(), rng)
	ds, err := BuildDataset(recs, 0, w, rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.ByClass) < 3 {
		t.Fatalf("expected 3 classes, got %d", len(ds.ByClass))
	}
	train, test := ds.Split(0.6)
	cl, err := Train(rp, train.ByClass, TrainConfig{PrototypesPerClass: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := EvaluateClassifier(cl, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.90 {
		t.Errorf("classification accuracy %.3f, want >= 0.90", acc)
	}
	// PVC (label 1) detection quality is the clinically critical number.
	if se := cm.Sensitivity(int(ecg.LabelPVC)); se < 0.85 {
		t.Errorf("PVC sensitivity %.3f", se)
	}
	if sp := cm.Specificity(int(ecg.LabelPVC)); sp < 0.90 {
		t.Errorf("PVC specificity %.3f", sp)
	}
}

func TestConfusionMatrixMath(t *testing.T) {
	cm := &ConfusionMatrix{
		Labels: []int{0, 1},
		Counts: map[int]map[int]int{
			0: {0: 90, 1: 10},
			1: {0: 5, 1: 45},
		},
	}
	if math.Abs(cm.Accuracy()-135.0/150) > 1e-12 {
		t.Errorf("Accuracy = %v", cm.Accuracy())
	}
	if math.Abs(cm.Sensitivity(1)-0.9) > 1e-12 {
		t.Errorf("Sensitivity(1) = %v", cm.Sensitivity(1))
	}
	if math.Abs(cm.Specificity(1)-0.9) > 1e-12 {
		t.Errorf("Specificity(1) = %v", cm.Specificity(1))
	}
	if cm.Sensitivity(99) != 0 {
		t.Error("unknown label sensitivity should be 0")
	}
	if cm.Specificity(99) != 1 {
		t.Error("unknown label specificity should be 1 (no false positives)")
	}
	empty := &ConfusionMatrix{Counts: map[int]map[int]int{}}
	if empty.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
}

func TestDatasetSplitProportions(t *testing.T) {
	ds := &Dataset{ByClass: map[int][][]float64{
		0: make([][]float64, 10),
		1: make([][]float64, 4),
	}, Count: 14}
	train, test := ds.Split(0.5)
	if len(train.ByClass[0]) != 5 || len(test.ByClass[0]) != 5 {
		t.Error("class 0 split wrong")
	}
	if len(train.ByClass[1]) != 2 || len(test.ByClass[1]) != 2 {
		t.Error("class 1 split wrong")
	}
	if train.Count+test.Count != ds.Count {
		t.Error("split loses samples")
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// All identical points: k-means must not hang or panic.
	vecs := make([][]float64, 5)
	for i := range vecs {
		vecs[i] = []float64{1, 1}
	}
	centers, assign := kMeans(vecs, 3, 10, rng)
	if len(centers) != 3 || len(assign) != 5 {
		t.Error("degenerate k-means shapes wrong")
	}
	for _, c := range centers {
		if c[0] != 1 || c[1] != 1 {
			t.Error("degenerate centres should coincide with the data")
		}
	}
}

func TestKFoldPartitioning(t *testing.T) {
	ds := &Dataset{ByClass: map[int][][]float64{
		0: make([][]float64, 10),
		1: make([][]float64, 7),
	}, Count: 17}
	folds := ds.KFold(3)
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	totalTest := 0
	for _, f := range folds {
		totalTest += f.Test.Count
		if f.Train.Count+f.Test.Count != ds.Count {
			t.Error("fold does not partition the dataset")
		}
	}
	if totalTest != ds.Count {
		t.Errorf("test folds cover %d of %d vectors", totalTest, ds.Count)
	}
	if ds.KFold(1) != nil {
		t.Error("k<2 should return nil")
	}
}

func TestCrossValidatedClassification(t *testing.T) {
	// The ref [14] protocol in miniature: 3-fold cross-validation over a
	// mixed beat population; pooled accuracy must stay high.
	recs := ecg.GenerateSet(ecg.Config{
		Duration: 90,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.1, APBRate: 0.06},
	}, 120, 3)
	w := DefaultBeatWindow(256)
	rng := rand.New(rand.NewSource(20))
	rp, _ := NewRPMatrix(16, w.Len(), rng)
	ds, err := BuildDataset(recs, 0, w, rp)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := CrossValidate(rp, ds, 3, TrainConfig{PrototypesPerClass: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.9 {
		t.Errorf("cross-validated accuracy %.3f", acc)
	}
	totalScored := 0
	for _, row := range cm.Counts {
		for _, n := range row {
			totalScored += n
		}
	}
	if totalScored != ds.Count {
		t.Errorf("scored %d of %d beats", totalScored, ds.Count)
	}
}

package classify

import (
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

// BeatWindow is the fixed beat excerpt the classifier consumes: samples
// centred on the R peak, amplitude-normalised. Ref [14] classifies on a
// window wide enough to span the whole QRS plus the ST segment.
type BeatWindow struct {
	// Before and After are the sample counts taken before and after R.
	Before, After int
}

// DefaultBeatWindow returns the window used by the RP-CLASS workload:
// 250 ms before to 400 ms after the R peak at the given sampling rate.
func DefaultBeatWindow(fs float64) BeatWindow {
	return BeatWindow{Before: int(0.25 * fs), After: int(0.40 * fs)}
}

// Len returns the window length in samples.
func (w BeatWindow) Len() int { return w.Before + w.After }

// Extract cuts the beat window around sample r from x and normalises it
// to zero mean and unit peak amplitude (amplitude jitter must not drive
// the classifier). Returns nil when the window does not fit.
func (w BeatWindow) Extract(x []float64, r int) []float64 {
	return w.ExtractInto(x, r, nil)
}

// ExtractInto is Extract writing into out, which is reused when its
// capacity suffices and grown otherwise — allocation-free with a warm
// buffer. Returns nil when the window does not fit (out is untouched, so
// the caller can keep it for the next beat).
func (w BeatWindow) ExtractInto(x []float64, r int, out []float64) []float64 {
	lo, hi := r-w.Before, r+w.After
	if lo < 0 || hi > len(x) {
		return nil
	}
	if cap(out) < w.Len() {
		out = make([]float64, w.Len())
	}
	out = out[:w.Len()]
	copy(out, x[lo:hi])
	m := dsp.Mean(out)
	peak := 0.0
	for i := range out {
		out[i] -= m
		if a := abs(out[i]); a > peak {
			peak = a
		}
	}
	if peak > 0 {
		inv := 1 / peak
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Dataset is a labelled set of projected beat features.
type Dataset struct {
	// ByClass maps a beat label (int(ecg.BeatLabel)) to feature vectors.
	ByClass map[int][][]float64
	// Count is the total number of beats.
	Count int
}

// BuildDataset extracts, normalises and projects every annotated beat of
// the records, keyed by its ground-truth label. Signals are taken from
// the given lead of each record. Beats whose window does not fit are
// skipped.
func BuildDataset(records []*ecg.Record, lead int, w BeatWindow, rp *RPMatrix) (*Dataset, error) {
	ds := &Dataset{ByClass: make(map[int][][]float64)}
	for _, rec := range records {
		if lead >= len(rec.Leads) {
			continue
		}
		x := rec.Leads[lead]
		for _, b := range rec.Beats {
			beat := w.Extract(x, b.Fid.RPeak)
			if beat == nil {
				continue
			}
			z, err := rp.Project(beat)
			if err != nil {
				return nil, err
			}
			ds.ByClass[int(b.Label)] = append(ds.ByClass[int(b.Label)], z)
			ds.Count++
		}
	}
	return ds, nil
}

// Split partitions the dataset into train and test subsets with the given
// train fraction, preserving per-class proportions (deterministic:
// the first ⌈frac·n⌉ of each class go to train).
func (d *Dataset) Split(frac float64) (train, test *Dataset) {
	train = &Dataset{ByClass: make(map[int][][]float64)}
	test = &Dataset{ByClass: make(map[int][][]float64)}
	for label, vecs := range d.ByClass {
		cut := int(frac*float64(len(vecs)) + 0.5)
		if cut < 1 {
			cut = 1
		}
		if cut > len(vecs) {
			cut = len(vecs)
		}
		train.ByClass[label] = vecs[:cut]
		test.ByClass[label] = vecs[cut:]
		train.Count += cut
		test.Count += len(vecs) - cut
	}
	return train, test
}

// ConfusionMatrix counts predictions: Counts[truth][predicted].
type ConfusionMatrix struct {
	Labels []int
	Counts map[int]map[int]int
}

// Evaluate classifies every test vector and tallies the confusion matrix.
func EvaluateClassifier(c *Classifier, test *Dataset) (*ConfusionMatrix, error) {
	cm := &ConfusionMatrix{Labels: c.Classes(), Counts: make(map[int]map[int]int)}
	for truth, vecs := range test.ByClass {
		if cm.Counts[truth] == nil {
			cm.Counts[truth] = make(map[int]int)
		}
		for _, z := range vecs {
			pred, _, err := c.PredictProjected(z)
			if err != nil {
				return nil, err
			}
			cm.Counts[truth][pred]++
		}
	}
	return cm, nil
}

// Accuracy returns overall fraction correct.
func (m *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for truth, row := range m.Counts {
		for pred, n := range row {
			total += n
			if pred == truth {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Sensitivity returns the per-class recall TP/(TP+FN) for the label.
func (m *ConfusionMatrix) Sensitivity(label int) float64 {
	row := m.Counts[label]
	total := 0
	for _, n := range row {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(row[label]) / float64(total)
}

// Specificity returns TN/(TN+FP) for the label (all other classes
// correctly not predicted as label).
func (m *ConfusionMatrix) Specificity(label int) float64 {
	tn, fp := 0, 0
	for truth, row := range m.Counts {
		if truth == label {
			continue
		}
		for pred, n := range row {
			if pred == label {
				fp += n
			} else {
				tn += n
			}
		}
	}
	if tn+fp == 0 {
		return 0
	}
	return float64(tn) / float64(tn+fp)
}

// KFold partitions the dataset into k folds per class (round-robin) and
// returns, for fold i, the training set (all other folds) and test set
// (fold i). Used for the cross-validated evaluation protocol of
// ref [14].
func (d *Dataset) KFold(k int) []struct{ Train, Test *Dataset } {
	if k < 2 {
		return nil
	}
	out := make([]struct{ Train, Test *Dataset }, k)
	for i := range out {
		out[i].Train = &Dataset{ByClass: make(map[int][][]float64)}
		out[i].Test = &Dataset{ByClass: make(map[int][][]float64)}
	}
	for label, vecs := range d.ByClass {
		for vi, v := range vecs {
			fold := vi % k
			for i := range out {
				if i == fold {
					out[i].Test.ByClass[label] = append(out[i].Test.ByClass[label], v)
					out[i].Test.Count++
				} else {
					out[i].Train.ByClass[label] = append(out[i].Train.ByClass[label], v)
					out[i].Train.Count++
				}
			}
		}
	}
	return out
}

// CrossValidate trains and evaluates over k folds, returning the pooled
// confusion matrix. Folds whose training set misses a class are skipped
// (their test beats are not scored).
func CrossValidate(rp *RPMatrix, d *Dataset, k int, cfg TrainConfig) (*ConfusionMatrix, error) {
	pooled := &ConfusionMatrix{Counts: make(map[int]map[int]int)}
	for _, fold := range d.KFold(k) {
		ok := true
		for label := range d.ByClass {
			if len(fold.Train.ByClass[label]) == 0 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		cl, err := Train(rp, fold.Train.ByClass, cfg)
		if err != nil {
			return nil, err
		}
		cl.UseLinExp = true
		cm, err := EvaluateClassifier(cl, fold.Test)
		if err != nil {
			return nil, err
		}
		pooled.Labels = cm.Labels
		for truth, row := range cm.Counts {
			if pooled.Counts[truth] == nil {
				pooled.Counts[truth] = make(map[int]int)
			}
			for pred, n := range row {
				pooled.Counts[truth][pred] += n
			}
		}
	}
	return pooled, nil
}

package classify

import (
	"math"
	"math/rand"

	"wbsn/internal/fixedpt"
)

// Prototype is one Gaussian kernel of the neuro-fuzzy classifier: a
// centroid in feature space with an isotropic width.
type Prototype struct {
	Center []float64
	// InvTwoSigma2 is 1/(2σ²), precomputed for the distance scaling.
	InvTwoSigma2 float64
}

// Classifier is the neuro-fuzzy heartbeat classifier of ref [14]: each
// class holds a small set of Gaussian prototypes (learned by k-means on
// projected training beats); a beat's membership in a class is the
// maximum kernel response over the class's prototypes, and the predicted
// class is the one with the largest membership.
type Classifier struct {
	rp      *RPMatrix
	classes []int // class labels in training order
	protos  map[int][]Prototype
	// UseLinExp selects the embedded four-segment exponential instead of
	// math.Exp (the Section IV.A approximation).
	UseLinExp bool
}

// TrainConfig parameterises classifier training.
type TrainConfig struct {
	// PrototypesPerClass is the k-means cluster count per class
	// (default 3).
	PrototypesPerClass int
	// KMeansIters bounds the Lloyd iterations (default 25).
	KMeansIters int
	// Seed drives k-means initialisation.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	out := c
	if out.PrototypesPerClass <= 0 {
		out.PrototypesPerClass = 3
	}
	if out.KMeansIters <= 0 {
		out.KMeansIters = 25
	}
	return out
}

// Train learns prototypes from projected feature vectors. samples maps a
// class label to that class's feature vectors (already projected). Every
// class must have at least one sample.
func Train(rp *RPMatrix, samples map[int][][]float64, cfg TrainConfig) (*Classifier, error) {
	c := cfg.withDefaults()
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	cl := &Classifier{rp: rp, protos: make(map[int][]Prototype)}
	rng := rand.New(rand.NewSource(c.Seed + 99))
	for label, vecs := range samples {
		if len(vecs) == 0 {
			return nil, ErrNoSamples
		}
		k := c.PrototypesPerClass
		if k > len(vecs) {
			k = len(vecs)
		}
		centers, assign := kMeans(vecs, k, c.KMeansIters, rng)
		// Class-level spread: RMS distance of the class's vectors to
		// their own centroid, used as a floor so sparse clusters do not
		// degenerate into needle kernels whose response underflows.
		classMean := make([]float64, len(vecs[0]))
		for _, v := range vecs {
			for j, x := range v {
				classMean[j] += x
			}
		}
		for j := range classMean {
			classMean[j] /= float64(len(vecs))
		}
		classVar := 0.0
		for _, v := range vecs {
			classVar += sqDist(v, classMean)
		}
		classSigma := math.Sqrt(classVar / float64(len(vecs)))
		if classSigma == 0 {
			classSigma = 0.1
		}
		// σ per prototype: mean distance of its members, floored at half
		// the class spread.
		for ci, ctr := range centers {
			sum, cnt := 0.0, 0
			for vi, a := range assign {
				if a == ci {
					sum += math.Sqrt(sqDist(vecs[vi], ctr))
					cnt++
				}
			}
			sigma := 0.5 * classSigma
			if cnt > 0 && sum > 0 {
				if s := sum / float64(cnt); s > sigma {
					sigma = s
				}
			}
			cl.protos[label] = append(cl.protos[label], Prototype{
				Center:       ctr,
				InvTwoSigma2: 1 / (2 * sigma * sigma),
			})
		}
		cl.classes = append(cl.classes, label)
	}
	// Deterministic class order.
	for i := 1; i < len(cl.classes); i++ {
		for j := i; j > 0 && cl.classes[j] < cl.classes[j-1]; j-- {
			cl.classes[j], cl.classes[j-1] = cl.classes[j-1], cl.classes[j]
		}
	}
	return cl, nil
}

// Classes returns the trained class labels in ascending order.
func (c *Classifier) Classes() []int {
	out := make([]int, len(c.classes))
	copy(out, c.classes)
	return out
}

// RP returns the classifier's random-projection front end.
func (c *Classifier) RP() *RPMatrix { return c.rp }

// kernel evaluates exp(-u) through the configured path.
func (c *Classifier) kernel(u float64) float64 {
	if c.UseLinExp {
		return fixedpt.ExpNegLin4(u)
	}
	return math.Exp(-u)
}

// Memberships returns the fuzzy membership of the projected feature
// vector in every class, keyed by label.
func (c *Classifier) Memberships(z []float64) map[int]float64 {
	out := make(map[int]float64, len(c.classes))
	for _, label := range c.classes {
		best := 0.0
		for _, p := range c.protos[label] {
			u := sqDist(z, p.Center) * p.InvTwoSigma2
			if v := c.kernel(u); v > best {
				best = v
			}
		}
		out[label] = best
	}
	return out
}

// Predict projects the raw beat window and returns the most likely class
// label and its membership.
func (c *Classifier) Predict(beat []float64) (label int, membership float64, err error) {
	z, err := c.rp.Project(beat)
	if err != nil {
		return 0, 0, err
	}
	return c.PredictProjected(z)
}

// PredictProjected classifies an already-projected feature vector. When
// every kernel response underflows (the linearized exponential truncates
// at 4σ, so a far-off beat can score zero in every class) the decision
// falls back to the nearest prototype in scaled-distance terms — the
// same argmax the exact exponential would produce. The hot path is
// allocation-free: memberships are folded into the argmax directly
// instead of materialising the Memberships map.
func (c *Classifier) PredictProjected(z []float64) (label int, membership float64, err error) {
	if len(c.classes) == 0 {
		return 0, 0, ErrNoturn
	}
	bestLabel, bestVal := c.classes[0], -1.0
	for _, l := range c.classes {
		best := 0.0
		for _, p := range c.protos[l] {
			u := sqDist(z, p.Center) * p.InvTwoSigma2
			if v := c.kernel(u); v > best {
				best = v
			}
		}
		if best > bestVal {
			bestLabel, bestVal = l, best
		}
	}
	if bestVal > 0 {
		return bestLabel, bestVal, nil
	}
	// Underflow fallback: minimal scaled squared distance.
	bestU := math.Inf(1)
	for _, l := range c.classes {
		for _, p := range c.protos[l] {
			if u := sqDist(z, p.Center) * p.InvTwoSigma2; u < bestU {
				bestU, bestLabel = u, l
			}
		}
	}
	return bestLabel, 0, nil
}

// sqDist returns squared Euclidean distance (panics on length mismatch
// via index bounds, which cannot happen for vectors from one projection).
func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kMeans is Lloyd's algorithm with k-means++-style seeding from rng.
// It returns the centroids and the final assignment of each vector.
func kMeans(vecs [][]float64, k, iters int, rng *rand.Rand) ([][]float64, []int) {
	n := len(vecs)
	dim := len(vecs[0])
	centers := make([][]float64, 0, k)
	// Seeding: first centre uniform, others proportional to squared
	// distance from the nearest existing centre.
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), vecs[first]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centres; duplicate one.
			centers = append(centers, append([]float64(nil), vecs[rng.Intn(n)]...))
			continue
		}
		u := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			u -= d
			if u <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), vecs[idx]...))
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if d := sqDist(v, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, len(centers))
		sums := make([][]float64, len(centers))
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, v := range vecs {
			counts[assign[i]]++
			for j, x := range v {
				sums[assign[i]][j] += x
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				continue
			}
			inv := 1 / float64(counts[ci])
			for j := range centers[ci] {
				centers[ci][j] = sums[ci][j] * inv
			}
		}
		if !changed {
			break
		}
	}
	return centers, assign
}

// Package classify implements the embedded heartbeat classifier of
// ref [14] (Braojos et al., DATE 2013) described in Sections III.D and
// IV.A of the paper: beats are reduced to a small feature vector by a
// random projection whose matrix contains only {−1, 0, +1} (Achlioptas,
// ref [15]) packed two bits per entry, and classified by a neuro-fuzzy
// network of Gaussian prototypes whose exponentials are evaluated with
// the four-segment linearization from internal/fixedpt.
package classify

import (
	"errors"
	"math"
	"math/rand"

	"wbsn/internal/fixedpt"
)

// Errors returned by the classification package.
var (
	ErrRPDims    = errors.New("classify: projection dimensions must be positive")
	ErrBadInput  = errors.New("classify: input length mismatch")
	ErrNoturn    = errors.New("classify: classifier has not been trained")
	ErrNoSamples = errors.New("classify: training requires samples of every class")
)

// RPMatrix is a k×n Achlioptas random projection: entries take the value
// +1 with probability 1/6, −1 with probability 1/6 and 0 otherwise, and
// the projection is scaled by √(3/k) (ref [15] shows this sparse scheme
// satisfies the Johnson–Lindenstrauss property). Entries are stored
// packed at two bits each — the memory optimisation Section IV.A calls
// out ("a projection matrix only composed by elements of value 0, 1 and
// −1, which can be represented using only two bits per component").
type RPMatrix struct {
	k, n  int
	bits  []uint64 // 2-bit entries, row-major: 00 zero, 01 +1, 10 −1
	scale float64
}

// NewRPMatrix draws a k×n sparse random projection from rng.
func NewRPMatrix(k, n int, rng *rand.Rand) (*RPMatrix, error) {
	if k <= 0 || n <= 0 {
		return nil, ErrRPDims
	}
	total := k * n
	m := &RPMatrix{k: k, n: n, bits: make([]uint64, (total+31)/32), scale: math.Sqrt(3 / float64(k))}
	for i := 0; i < total; i++ {
		u := rng.Float64()
		var code uint64
		switch {
		case u < 1.0/6:
			code = 1 // +1
		case u < 2.0/6:
			code = 2 // −1
		default:
			code = 0
		}
		m.bits[i/32] |= code << uint((i%32)*2)
	}
	return m, nil
}

// K returns the projected dimension.
func (m *RPMatrix) K() int { return m.k }

// N returns the input dimension.
func (m *RPMatrix) N() int { return m.n }

// entry returns the {−1,0,+1} value at row r, column c.
func (m *RPMatrix) entry(r, c int) int {
	i := r*m.n + c
	code := (m.bits[i/32] >> uint((i%32)*2)) & 3
	switch code {
	case 1:
		return 1
	case 2:
		return -1
	default:
		return 0
	}
}

// MemoryBytes returns the packed storage size, the figure the ablation
// bench compares against a float64 matrix (16× smaller at two bits per
// entry vs 64).
func (m *RPMatrix) MemoryBytes() int { return len(m.bits) * 8 }

// Project computes z = (√(3/k))·R·x. It returns ErrBadInput if len(x)
// differs from the input dimension.
func (m *RPMatrix) Project(x []float64) ([]float64, error) {
	return m.ProjectInto(x, nil)
}

// ProjectInto is Project writing into z, which is reused when its
// capacity suffices and grown otherwise — allocation-free with a warm
// buffer. It returns the (possibly regrown) feature vector.
func (m *RPMatrix) ProjectInto(x, z []float64) ([]float64, error) {
	if len(x) != m.n {
		return nil, ErrBadInput
	}
	if cap(z) < m.k {
		z = make([]float64, m.k)
	}
	z = z[:m.k]
	for r := 0; r < m.k; r++ {
		acc := 0.0
		base := r * m.n
		for c := 0; c < m.n; c++ {
			i := base + c
			code := (m.bits[i/32] >> uint((i%32)*2)) & 3
			switch code {
			case 1:
				acc += x[c]
			case 2:
				acc -= x[c]
			}
		}
		z[r] = acc * m.scale
	}
	return z, nil
}

// ProjectQ15 is the integer path the node runs: additions and
// subtractions only, one wide accumulator per output, scaled at the end.
// The output stays in a Q15-compatible range provided the input beats
// are amplitude-normalised (the feature extractor guarantees it).
func (m *RPMatrix) ProjectQ15(x []fixedpt.Q15) ([]fixedpt.Q15, error) {
	if len(x) != m.n {
		return nil, ErrBadInput
	}
	z := make([]fixedpt.Q15, m.k)
	scaleQ := int64(m.scale * 32768)
	for r := 0; r < m.k; r++ {
		var acc int64
		base := r * m.n
		for c := 0; c < m.n; c++ {
			i := base + c
			code := (m.bits[i/32] >> uint((i%32)*2)) & 3
			switch code {
			case 1:
				acc += int64(x[c])
			case 2:
				acc -= int64(x[c])
			}
		}
		v := (acc * scaleQ) >> 15
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		z[r] = fixedpt.Q15(v)
	}
	return z, nil
}

// AddsPerProjection counts the additions/subtractions one projection
// performs (the non-zero entries), feeding the energy model.
func (m *RPMatrix) AddsPerProjection() int {
	count := 0
	for r := 0; r < m.k; r++ {
		for c := 0; c < m.n; c++ {
			if m.entry(r, c) != 0 {
				count++
			}
		}
	}
	return count
}
